/**
 * @file
 * The full compiler-optimization pipeline of paper §III-D1 on one video:
 *
 *   1. Profile: transcode training inputs under the profile collector
 *      (AutoFDO's `perf record` stage).
 *   2. Optimize: apply Pettis-Hansen relayout + branch-polarity flips
 *      (recompiling with the profile), and separately enable the
 *      Graphite-style loop restructurings.
 *   3. Measure: simulate the same transcode before/after each
 *      optimization and report where the cycles went.
 *
 *   ./build/examples/compiler_opt [--video landscape] [--seconds 1]
 */

#include <cstdio>

#include "codec/loopflags.h"
#include "codec/transcode.h"
#include "common/cli.h"
#include "core/workload.h"
#include "layout/profile.h"
#include "layout/relayout.h"
#include "trace/probe.h"
#include "uarch/config.h"

int
main(int argc, char** argv)
{
    using namespace vtrans;
    Cli cli(argc, argv);
    setVerbose(false);
    const std::string video = cli.str("video", "landscape");
    const double seconds = cli.real("seconds", 1.0);

    core::RunConfig run;
    run.video = video;
    run.seconds = seconds;
    run.params = codec::presetParams("medium");
    run.core = uarch::baselineConfig();

    trace::registry().resetLayout();
    codec::setLoopOptFlags({});

    auto report = [](const char* label, const core::RunResult& r) {
        const auto td = r.core.topdown();
        std::printf("%-22s %8.3f ms | FE %5.2f%%  BS %5.2f%%  BE "
                    "%5.2f%% | L1i %5.2f  L1d %5.2f MPKI | taken-branch "
                    "bubbles via BTB misses: %llu\n",
                    label, r.transcode_seconds * 1000.0,
                    td.frontend * 100, td.bad_speculation * 100,
                    td.backend() * 100, r.core.l1iMpki(),
                    r.core.l1dMpki(),
                    static_cast<unsigned long long>(r.core.btb_misses));
    };

    // Baseline measurement.
    const auto baseline = core::runInstrumented(run);
    report("baseline", baseline);

    // --- AutoFDO-style: profile, relayout, re-measure ----------------
    std::printf("\ncollecting training profile (transcoding %s + bbb "
                "with perf-style instrumentation)...\n",
                video.c_str());
    layout::ProfileCollector profile;
    trace::setSink(&profile);
    for (const char* training : {video.c_str(), "bbb"}) {
        const auto& source = core::mezzanine(training, seconds);
        trace::arena().reset();
        codec::transcode(source, run.params);
    }
    trace::setSink(nullptr);

    const auto relayout = layout::applyProfileGuidedLayout(profile);
    std::printf("%s\n", layout::describe(relayout).c_str());

    const auto fdo = core::runInstrumented(run);
    report("profile-guided layout", fdo);
    std::printf("  -> speedup %.2f%%\n",
                (baseline.transcode_seconds / fdo.transcode_seconds - 1.0)
                    * 100.0);
    trace::registry().resetLayout();

    // --- Graphite-style: loop restructuring --------------------------
    std::printf("\nenabling loop restructurings (deblock interchange + "
                "lookahead fusion)...\n");
    codec::setLoopOptFlags({true, true});
    const auto graphite = core::runInstrumented(run);
    codec::setLoopOptFlags({});
    report("loop restructuring", graphite);
    std::printf("  -> speedup %.2f%%\n",
                (baseline.transcode_seconds / graphite.transcode_seconds
                 - 1.0)
                    * 100.0);

    // --- Both together ------------------------------------------------
    layout::applyProfileGuidedLayout(profile);
    codec::setLoopOptFlags({true, true});
    const auto both = core::runInstrumented(run);
    codec::setLoopOptFlags({});
    trace::registry().resetLayout();
    report("both combined", both);
    std::printf("  -> speedup %.2f%%\n",
                (baseline.transcode_seconds / both.transcode_seconds
                 - 1.0)
                    * 100.0);
    return 0;
}

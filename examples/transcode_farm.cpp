/**
 * @file
 * A continuous transcoding-farm service: hundreds of upload->rendition
 * jobs stream into a bounded queue and are dispatched — no waves, no
 * barriers — across a heterogeneous pool of Table IV servers by the
 * characterization-driven smart dispatcher (the paper's §III-D2 scheduler
 * grown into a service). Compares dispatch policies end to end and prints
 * the run-log aggregate metrics; optionally writes the per-job JSON-lines
 * run log.
 *
 *   ./build/examples/transcode_farm [--jobs 48] [--seconds 0.4]
 *       [--workers 0] [--policy smart|random|round_robin|smart_deadline]
 *       [--queue fifo|priority|edf] [--faults 0.0] [--retries 2]
 *       [--seed 7] [--log runlog.jsonl] [--trace-out trace.json]
 *       [--metrics] [--verbose] [--uarch-report]
 *       [--uarch-report-out uarch.json] [--phase-window N]
 *
 * `--uarch-report[-out]` enables per-site µarch attribution across the
 * farm's worker runs (cycles, Top-down slots, and misses charged to code
 * sites) and prints/exports the aggregated attribution report;
 * `--phase-window N` additionally samples the attributed counters every
 * N retired instructions into counter tracks of the `--trace-out`
 * Chrome trace.
 *
 * With `--zipf-s S` the request stream's content popularity follows a
 * Zipf(S) distribution over the catalog (instead of round-robin) with
 * exponential inter-arrival gaps, and the content-addressed result
 * cache *serves* repeats: a job whose (source, params, class) digest is
 * already cached completes at hit cost, concurrent identical requests
 * single-flight behind one encode. `--cache-mb M` sizes the cache
 * (default 256). The run prints the cache hit/miss/eviction counters
 * next to the service metrics.
 *
 * With `--chunked` every request is submitted as a GOP-chunked job graph
 * (split -> parallel chunk encodes -> dependent stitch, see
 * chunk/chunk.h): `--chunk-frames N` sets the boundary spacing in frames
 * (default 3), `--max-chunks M` caps the chunks per graph (0 = one per
 * GOP segment). The run log then carries per-graph boundary-cost deltas
 * vs the unchunked encode, and a graph summary is printed.
 */

#include <cstdio>
#include <vector>

#include "bench/benchutil.h"
#include "chunk/chunk.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/status.h"
#include "farm/farm.h"
#include "obs/hotspots.h"
#include "obs/metrics.h"
#include "obs/spans.h"
#include "obs/uarch.h"

namespace {

using namespace vtrans;

/** The service's job mix: content classes cycled with seeded priorities,
 *  deadlines, and Poisson-ish arrival spacing. */
std::vector<farm::JobRequest>
makeJobStream(int jobs, int retries, uint64_t seed, double zipf_s)
{
    const std::vector<sched::Task> catalog = {
        {"desktop", 30, 8, "veryfast"}, {"holi", 10, 1, "slow"},
        {"presentation", 35, 6, "veryfast"}, {"game2", 15, 2, "medium"},
        {"hall", 26, 3, "medium"},      {"bike", 20, 4, "fast"},
        {"chicken", 28, 2, "faster"},   {"girl", 24, 3, "medium"},
        {"cat", 23, 3, "fast"},         {"cricket", 21, 3, "veryfast"},
        {"house", 23, 3, "medium"},     {"landscape", 27, 2, "faster"},
    };
    Rng rng(seed);
    // Zipf mode: content popularity instead of round-robin — the
    // repeat-heavy shape of a real rendition service, which is what the
    // result cache converts into hit-cost completions.
    bench::ZipfSampler zipf(catalog.size(), zipf_s > 0.0 ? zipf_s : 1.0,
                            seed ^ 0x5a1full);
    std::vector<farm::JobRequest> stream;
    double t = 0.0;
    for (int i = 0; i < jobs; ++i) {
        farm::JobRequest req;
        req.task = catalog[zipf_s > 0.0 ? zipf.next()
                                        : i % catalog.size()];
        req.submit_time = t;
        req.priority = static_cast<int>(rng.below(3)); // 0..2
        if (rng.chance(0.3)) {
            // A third of the jobs are latency-sensitive (live-ish).
            req.deadline = t + 0.002 + 0.004 * rng.uniform();
        }
        req.retry_budget = retries;
        stream.push_back(req);
        // Mean inter-arrival ~0.25 ms of simulated time: enough pressure
        // to keep a backlog in front of the four-server fleet.
        t += zipf_s > 0.0 ? zipf.nextArrivalGap(4000.0)
                          : 0.0005 * rng.uniform();
    }
    return stream;
}

/** Prints a per-graph summary of a chunked run (stitch records). */
void
printGraphSummary(const farm::RunLog& log)
{
    size_t graphs = 0;
    size_t chunk_jobs = 0;
    size_t done = 0;
    double chunk_sum = 0.0;
    double stitch_sum = 0.0;
    double dpsnr_sum = 0.0;
    double dbitrate_sum = 0.0;
    for (const auto& r : log.records()) {
        if (r.kind == "chunk") {
            ++chunk_jobs;
            continue;
        }
        if (r.kind != "stitch") {
            continue;
        }
        ++graphs;
        chunk_sum += r.chunk_count;
        if (r.state == farm::JobState::Done) {
            ++done;
            stitch_sum += r.actual_seconds;
            dpsnr_sum += r.delta_psnr_db;
            dbitrate_sum += r.delta_bitrate_kbps;
        }
    }
    if (graphs == 0) {
        return;
    }
    std::printf("chunked graphs: %zu (%zu chunk jobs, %.1f chunks/graph, "
                "%zu stitched)\n",
                graphs, chunk_jobs, chunk_sum / graphs, done);
    if (done > 0) {
        std::printf("mean stitch latency: %.3f sim ms; boundary cost: "
                    "%+.3f dB PSNR, %+.1f kbps vs unchunked\n\n",
                    stitch_sum / done * 1000.0, dpsnr_sum / done,
                    dbitrate_sum / done);
    }
}

farm::FarmMetrics
runPolicy(const std::vector<farm::JobRequest>& stream,
          farm::DispatchPolicy policy, farm::QueuePolicy queue_policy,
          const farm::FarmOptions& base, bool print, std::string log_path,
          std::string trace_path = "",
          const chunk::ChunkOptions* chunking = nullptr)
{
    farm::FarmOptions options = base;
    options.dispatch = policy;
    options.queue_policy = queue_policy;
    farm::Farm service(options);
    // Route the workers' phase counter samples (if a --phase-window is
    // set) onto the same trace the job-lifecycle spans export to.
    if (obs::phaseWindow() > 0) {
        obs::setGlobalTracer(&service.tracer());
    }
    for (const auto& req : stream) {
        if (chunking != nullptr && chunking->enabled()) {
            service.submitChunked(req, *chunking);
        } else {
            service.submit(req);
        }
    }
    service.drain();
    if (obs::phaseWindow() > 0) {
        obs::setGlobalTracer(nullptr);
    }
    if (print) {
        std::printf("%s\n",
                    service.log().metricsTable(service.fleet())
                        .toText().c_str());
        printGraphSummary(service.log());
    }
    if (print && options.cache_serve_hits) {
        const farm::CacheStats cs = service.cacheDrainStats();
        size_t done = 0;
        size_t hits = 0;
        for (const auto& r : service.log().records()) {
            if (r.state == farm::JobState::Done) {
                ++done;
                hits += r.cache_hit ? 1 : 0;
            }
        }
        std::printf("result cache: %zu/%zu jobs served as hits "
                    "(%.1f%%); store: %llu lookups = %llu hits + %llu "
                    "misses, %llu single-flight waits, %llu evictions, "
                    "%.2f MiB in %llu entries\n\n",
                    hits, done,
                    done == 0 ? 0.0 : 100.0 * hits / done,
                    static_cast<unsigned long long>(cs.lookups),
                    static_cast<unsigned long long>(cs.hits),
                    static_cast<unsigned long long>(cs.misses),
                    static_cast<unsigned long long>(cs.inflight_waits),
                    static_cast<unsigned long long>(cs.evictions),
                    static_cast<double>(cs.bytes) / (1024.0 * 1024.0),
                    static_cast<unsigned long long>(cs.entries));
    }
    if (!log_path.empty()) {
        // A failed export must not take down the service run — the
        // results above are already computed and printed.
        if (service.log().writeJsonl(log_path)) {
            std::printf("wrote %zu run-log records to %s\n\n",
                        service.log().records().size(), log_path.c_str());
        } else {
            std::printf("run log NOT written: cannot open %s\n\n",
                        log_path.c_str());
        }
    }
    if (!trace_path.empty()) {
        if (service.writeTrace(trace_path)) {
            std::printf("wrote %zu job-lifecycle spans to %s\n\n",
                        service.spans().size(), trace_path.c_str());
        } else {
            std::printf("trace NOT written: cannot open %s\n\n",
                        trace_path.c_str());
        }
    }
    return service.metrics();
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    setVerbose(cli.has("verbose"));
    const int jobs = static_cast<int>(cli.num("jobs", 48));
    const int retries = static_cast<int>(cli.num("retries", 2));
    const uint64_t seed = static_cast<uint64_t>(cli.num("seed", 7));

    farm::FarmOptions base;
    base.clip_seconds = cli.real("seconds", 0.4);
    base.workers = static_cast<int>(cli.num("workers", 0));
    base.fault_rate = cli.real("faults", 0.0);
    base.verbose = cli.has("verbose");
    const double zipf_s = cli.real("zipf-s", 0.0);
    base.cache.max_bytes =
        static_cast<size_t>(cli.num("cache-mb", 256)) << 20;
    base.cache_serve_hits = zipf_s > 0.0;
    const auto queue_policy =
        farm::queuePolicyFromName(cli.str("queue", "fifo"));

    chunk::ChunkOptions chunking;
    if (cli.has("chunked")) {
        chunking.chunk_frames =
            static_cast<int>(cli.num("chunk-frames", 3));
        chunking.max_chunks = static_cast<int>(cli.num("max-chunks", 0));
    }

    const auto stream = makeJobStream(jobs, retries, seed, zipf_s);
    std::printf("Transcoding farm: %d jobs, %.2fs clips, fault rate "
                "%.0f%%, queue=%s%s%s\n\n",
                jobs, base.clip_seconds, base.fault_rate * 100.0,
                farm::toString(queue_policy).c_str(),
                chunking.enabled() ? ", chunked" : "",
                zipf_s > 0.0 ? ", zipf + result cache" : "");

    // Validate flags before the (multi-second) warm-up, so a typo fails
    // fast; then pre-warm outside any comparison so every policy pays
    // equal costs.
    const bool single_policy = cli.has("policy");
    const auto policy =
        farm::dispatchPolicyFromName(cli.str("policy", "smart"));
    const bool uarch_report = cli.has("uarch-report");
    const std::string uarch_out = cli.str("uarch-report-out", "");
    const int64_t phase = cli.num("phase-window", 0);
    farm::Farm::warmupProcess();

    // Enable attribution only after the warm-up so the report covers the
    // measured service runs, not the cache-priming transcodes.
    if (uarch_report || !uarch_out.empty()) {
        obs::setUarchAttributionEnabled(true);
        obs::setHotspotsEnabled(true);
        obs::hotspotReport().reset();
    }
    obs::setPhaseWindow(phase <= 0 ? 0 : static_cast<uint64_t>(phase));

    auto uarchReport = [&]() {
        if (uarch_report) {
            std::printf("\nuarch attribution (all attributed runs):\n%s\n",
                        obs::hotspotReport().uarchTable().c_str());
        }
        if (!uarch_out.empty()) {
            if (obs::hotspotReport().writeJson(uarch_out)) {
                std::printf("uarch attribution report: %s\n",
                            uarch_out.c_str());
            } else {
                std::printf("uarch report NOT written (cannot open %s)\n",
                            uarch_out.c_str());
            }
        }
    };

    if (single_policy) {
        // Single-policy mode: full metrics + optional JSONL run log
        // and Chrome trace of the job lifecycle.
        std::printf("policy: %s\n", farm::toString(policy).c_str());
        runPolicy(stream, policy, queue_policy, base, true,
                  cli.str("log", ""), cli.str("trace-out", ""),
                  &chunking);
        uarchReport();
        if (cli.has("metrics")) {
            std::printf("\n%s", obs::metrics().exposition().c_str());
        }
        return 0;
    }

    // Policy comparison: the same job stream under every dispatcher.
    Table t({"policy", "completed", "failed", "shed", "retries",
             "mean latency (ms)", "p95 (ms)", "makespan (ms)",
             "pred err"});
    farm::FarmMetrics random_m, smart_m;
    for (const auto policy :
         {farm::DispatchPolicy::RoundRobin, farm::DispatchPolicy::Random,
          farm::DispatchPolicy::Smart,
          farm::DispatchPolicy::SmartDeadline}) {
        const auto m =
            runPolicy(stream, policy, queue_policy, base, false, "");
        if (policy == farm::DispatchPolicy::Random) {
            random_m = m;
        }
        if (policy == farm::DispatchPolicy::Smart) {
            smart_m = m;
        }
        t.beginRow();
        t.cell(farm::toString(policy));
        t.cell(static_cast<int64_t>(m.completed));
        t.cell(static_cast<int64_t>(m.failed));
        t.cell(static_cast<int64_t>(m.shed));
        t.cell(static_cast<int64_t>(m.retries));
        t.cell(m.mean_latency * 1000.0, 3);
        t.cell(m.p95_latency * 1000.0, 3);
        t.cell(m.makespan * 1000.0, 3);
        t.cell(formatPercent(m.mean_prediction_error, 1));
    }
    std::printf("%s\n", t.toText().c_str());

    if (smart_m.mean_latency < random_m.mean_latency) {
        std::printf("smart dispatch beats random: mean latency %.3f ms "
                    "vs %.3f ms (%.1f%% lower)\n",
                    smart_m.mean_latency * 1000.0,
                    random_m.mean_latency * 1000.0,
                    (1.0 - smart_m.mean_latency / random_m.mean_latency)
                        * 100.0);
    } else {
        std::printf("smart dispatch did NOT beat random on this stream "
                    "(%.3f ms vs %.3f ms)\n",
                    smart_m.mean_latency * 1000.0,
                    random_m.mean_latency * 1000.0);
    }

    // Detailed metrics for the smart policy, plus optional run log and
    // job-lifecycle trace.
    std::printf("\nsmart-policy service metrics:\n");
    runPolicy(stream, farm::DispatchPolicy::Smart, queue_policy, base,
              true, cli.str("log", ""), cli.str("trace-out", ""));
    uarchReport();
    if (cli.has("metrics")) {
        std::printf("\n%s", obs::metrics().exposition().c_str());
    }
    return 0;
}

/**
 * @file
 * A miniature transcoding farm: a batch of upload->rendition jobs is
 * scheduled across a pool of heterogeneous servers (the Table IV
 * configurations) using the characterization-driven smart scheduler —
 * the scenario the paper's §III-D2 motivates for streaming providers.
 *
 *   ./build/examples/transcode_farm [--seconds 1] [--jobs 6]
 */

#include <cstdio>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "core/workload.h"
#include "sched/scheduler.h"
#include "uarch/config.h"

int
main(int argc, char** argv)
{
    using namespace vtrans;
    Cli cli(argc, argv);
    setVerbose(false);
    const double seconds = cli.real("seconds", 0.6);
    const int jobs = static_cast<int>(cli.num("jobs", 4));

    // A job mix: different content classes and delivery targets.
    const std::vector<sched::Task> catalog = {
        {"desktop", 30, 8, "veryfast"}, {"holi", 10, 1, "slow"},
        {"presentation", 35, 6, "veryfast"}, {"game2", 15, 2, "medium"},
        {"hall", 26, 3, "medium"},      {"bike", 20, 4, "fast"},
        {"chicken", 28, 2, "faster"},   {"girl", 24, 3, "medium"},
    };
    std::vector<sched::Task> batch(
        catalog.begin(),
        catalog.begin() + std::min<size_t>(jobs, catalog.size()));

    // The server pool: one machine per Table IV variant. With more jobs
    // than servers, schedule in waves of pool-size.
    const auto pool = uarch::optimizedConfigs();
    std::vector<std::string> names;
    for (const auto& p : pool) {
        names.push_back(p.name);
    }

    std::printf("Scheduling %zu transcoding jobs across %zu servers "
                "(%s)\n\n",
                batch.size(), pool.size(),
                "fe_op, be_op1, be_op2, bs_op");

    double random_total = 0.0;
    double smart_total = 0.0;
    double best_total = 0.0;
    Table t({"job", "video", "preset", "crf", "refs", "assigned server",
             "time (ms)", "best server"});

    for (size_t wave = 0; wave < batch.size(); wave += pool.size()) {
        std::vector<sched::Task> tasks(
            batch.begin() + wave,
            batch.begin()
                + std::min(batch.size(), wave + pool.size()));

        std::vector<double> baseline;
        std::vector<std::vector<double>> times(tasks.size());
        std::vector<uarch::TopDown> profiles;
        for (size_t i = 0; i < tasks.size(); ++i) {
            core::RunConfig run;
            run.video = tasks[i].video;
            run.seconds = seconds;
            run.params = tasks[i].params();
            run.core = uarch::baselineConfig();
            const auto base = core::runInstrumented(run);
            baseline.push_back(base.transcode_seconds);
            profiles.push_back(base.core.topdown());
            for (const auto& core_params : pool) {
                run.core = core_params;
                times[i].push_back(
                    core::runInstrumented(run).transcode_seconds);
            }
        }

        const auto result = sched::evaluateSchedulers(
            tasks, names, baseline, times, profiles);

        for (size_t i = 0; i < tasks.size(); ++i) {
            t.beginRow();
            t.cell(static_cast<int64_t>(wave + i + 1));
            t.cell(tasks[i].video);
            t.cell(tasks[i].preset);
            t.cell(static_cast<int64_t>(tasks[i].crf));
            t.cell(static_cast<int64_t>(tasks[i].refs));
            t.cell(names[result.smart[i]]);
            t.cell(times[i][result.smart[i]] * 1000.0, 3);
            t.cell(names[result.best[i]]);

            smart_total += times[i][result.smart[i]];
            best_total += times[i][result.best[i]];
            double mean = 0.0;
            for (double s : times[i]) {
                mean += s;
            }
            random_total += mean / times[i].size();
        }
    }

    std::printf("%s\n", t.toText().c_str());
    std::printf("batch makespan (sum of job times):\n");
    std::printf("  random assignment: %.3f ms\n", random_total * 1000.0);
    std::printf("  smart assignment:  %.3f ms (%.2f%% faster than "
                "random)\n",
                smart_total * 1000.0,
                (random_total / smart_total - 1.0) * 100.0);
    std::printf("  best (oracle):     %.3f ms\n", best_total * 1000.0);
    return 0;
}

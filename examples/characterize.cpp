/**
 * @file
 * Characterize one transcoding operation the way the paper does with
 * VTune + perf (§III-B): pick a video, transcoding parameters, and a
 * machine configuration; get the Top-down breakdown, event rates, and
 * transcoding metrics.
 *
 *   ./build/examples/characterize --video hall --crf 30 --refs 8 \
 *       --preset slow --config be_op1 [--seconds 2]
 */

#include <cstdio>

#include "common/cli.h"
#include "common/table.h"
#include "core/workload.h"
#include "uarch/config.h"
#include "video/vbench.h"

int
main(int argc, char** argv)
{
    using namespace vtrans;
    Cli cli(argc, argv);
    setVerbose(false);

    core::RunConfig run;
    run.video = cli.str("video", "cricket");
    run.seconds = cli.real("seconds", 1.0);
    run.params = codec::presetParams(cli.str("preset", "medium"));
    run.params.crf = static_cast<int>(cli.num("crf", 23));
    run.params.refs = static_cast<int>(cli.num("refs", 3));
    run.core = uarch::configByName(cli.str("config", "baseline"));
    run.params.validate();

    const auto& spec = video::findVideo(run.video);
    std::printf("workload: %s (%dx%d, entropy %.1f), preset %s, crf %d, "
                "refs %d\n",
                run.video.c_str(), spec.width, spec.height, spec.entropy,
                run.params.preset.c_str(), run.params.crf,
                run.params.refs);
    std::printf("machine:  %s (L1d %uK, L1i %uK, L2 %uK, L3 %uK%s, ROB "
                "%d, RS %d, %s predictor)\n\n",
                run.core.name.c_str(), run.core.l1d.size_bytes / 1024,
                run.core.l1i.size_bytes / 1024,
                run.core.l2.size_bytes / 1024,
                run.core.l3.size_bytes / 1024,
                run.core.l4_size
                    ? (", L4 " + std::to_string(run.core.l4_size / 1024)
                       + "K")
                          .c_str()
                    : "",
                run.core.rob_size, run.core.rs_size,
                run.core.predictor.c_str());

    const auto result = core::runInstrumented(run);
    const auto& s = result.core;
    const auto td = s.topdown();

    Table summary({"metric", "value"});
    auto row = [&](const std::string& name, const std::string& value) {
        summary.beginRow();
        summary.cell(name);
        summary.cell(value);
    };
    row("simulated transcode time",
        formatDouble(result.transcode_seconds * 1000.0, 3) + " ms");
    row("instructions", formatDouble(s.instructions / 1e6, 2) + " M");
    row("cycles", formatDouble(s.cycles / 1e6, 2) + " M");
    row("IPC", formatDouble(s.ipc(), 3));
    row("output bitrate",
        formatDouble(result.bitrate_kbps, 1) + " kbps");
    row("output PSNR", formatDouble(result.psnr, 2) + " dB");
    std::printf("%s\n", summary.toText().c_str());

    Table topdown({"top-down category", "pipeline slots"});
    auto trow = [&](const std::string& name, double fraction) {
        topdown.beginRow();
        topdown.cell(name);
        topdown.cell(formatPercent(fraction, 1));
    };
    trow("retiring", td.retiring);
    trow("front-end bound", td.frontend);
    trow("bad speculation", td.bad_speculation);
    trow("back-end bound (memory)", td.backend_memory);
    trow("back-end bound (core)", td.backend_core);
    std::printf("%s\n", topdown.toText().c_str());

    Table events({"event", "rate"});
    auto erow = [&](const std::string& name, double v,
                    const std::string& unit) {
        events.beginRow();
        events.cell(name);
        events.cell(formatDouble(v, 3) + " " + unit);
    };
    erow("branch mispredicts", s.branchMpki(), "MPKI");
    erow("L1d misses", s.l1dMpki(), "MPKI");
    erow("L2 misses (data)", s.l2Mpki(), "MPKI");
    erow("L3 misses (data)", s.l3Mpki(), "MPKI");
    erow("L1i misses", s.l1iMpki(), "MPKI");
    erow("iTLB misses", 1000.0 * s.itlb_misses / s.instructions, "MPKI");
    erow("ROB stalls", s.robStallsPki(), "cycles/KI");
    erow("RS stalls", s.rsStallsPki(), "cycles/KI");
    erow("SB stalls", s.sbStallsPki(), "cycles/KI");
    std::printf("%s", events.toText().c_str());
    return 0;
}

/**
 * @file
 * The canonical cloud-transcoding workload from the paper's introduction:
 * one uploaded mezzanine transcoded into a ladder of delivery renditions
 * (different quality targets for different network conditions), with the
 * CPU cost of each rung measured on the simulated baseline machine.
 *
 *   ./build/examples/bitrate_ladder [--video girl] [--seconds 1.5]
 */

#include <cstdio>

#include "common/cli.h"
#include "common/table.h"
#include "core/workload.h"
#include "uarch/config.h"
#include "video/vbench.h"

int
main(int argc, char** argv)
{
    using namespace vtrans;
    Cli cli(argc, argv);
    setVerbose(false);
    const std::string video = cli.str("video", "girl");
    const double seconds = cli.real("seconds", 1.0);

    const auto& spec = video::findVideo(video);
    std::printf("Upload: '%s' (%s class, entropy %.1f) -> %d-rung "
                "delivery ladder\n\n",
                spec.name.c_str(), spec.resolution_class.c_str(),
                spec.entropy, 5);

    // The rung definitions: quality-targeted CRF encodes from premium to
    // data-saver, the faster presets on the cheap rungs as providers do.
    struct Rung
    {
        const char* name;
        int crf;
        const char* preset;
    };
    const Rung ladder[] = {
        {"premium", 18, "slow"},    {"high", 23, "medium"},
        {"standard", 28, "medium"}, {"low", 34, "fast"},
        {"data-saver", 40, "veryfast"},
    };

    Table t({"rung", "preset", "crf", "kbps", "PSNR (dB)",
             "CPU time (ms)", "cycles/pixel"});
    double total_seconds = 0.0;
    for (const auto& rung : ladder) {
        core::RunConfig run;
        run.video = video;
        run.seconds = seconds;
        run.params = codec::presetParams(rung.preset);
        run.params.crf = rung.crf;
        run.core = uarch::baselineConfig();
        const auto r = core::runInstrumented(run);
        total_seconds += r.transcode_seconds;

        const double pixels = static_cast<double>(spec.width)
                              * spec.height * spec.fps * seconds;
        t.beginRow();
        t.cell(std::string(rung.name));
        t.cell(std::string(rung.preset));
        t.cell(static_cast<int64_t>(rung.crf));
        t.cell(r.bitrate_kbps, 1);
        t.cell(r.psnr, 2);
        t.cell(r.transcode_seconds * 1000.0, 3);
        t.cell(r.core.cycles / pixels, 1);
    }
    std::printf("%s\n", t.toText().c_str());
    std::printf("Total ladder CPU time: %.3f ms of simulated compute "
                "per %.1f s of content (x%.1f realtime on one core)\n",
                total_seconds * 1000.0, seconds,
                seconds / total_seconds);
    std::printf("\nEvery uploaded video pays this cost at least once "
                "(paper §II: >500 hours uploaded to YouTube per "
                "minute) — the motivation for the paper's few-percent "
                "optimizations.\n");
    return 0;
}

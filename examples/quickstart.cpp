/**
 * @file
 * Quickstart: the minimal end-to-end use of the vtrans public API.
 *
 *   1. Generate a synthetic clip (a vbench stand-in).
 *   2. Encode it with the VX1 encoder at a chosen crf.
 *   3. Decode it back and measure PSNR and bitrate.
 *   4. Transcode the stream to a smaller rendition and profile the
 *      transcode on the simulated baseline CPU.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [--video cricket] [--crf 23]
 */

#include <cstdio>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "codec/transcode.h"
#include "common/cli.h"
#include "core/workload.h"
#include "uarch/config.h"
#include "video/generate.h"
#include "video/quality.h"
#include "video/vbench.h"

int
main(int argc, char** argv)
{
    using namespace vtrans;
    Cli cli(argc, argv);
    setVerbose(false);

    const std::string video = cli.str("video", "cricket");
    const int crf = static_cast<int>(cli.num("crf", 23));

    // 1. A synthetic clip matching one row of the vbench corpus.
    video::VideoSpec spec = video::findVideo(video);
    spec.seconds = 1.0;
    std::printf("Generating '%s': %dx%d @ %d fps, entropy %.1f, %d "
                "frames\n",
                spec.name.c_str(), spec.width, spec.height, spec.fps,
                spec.entropy, spec.frames());
    const auto frames = video::generateVideo(spec);

    // 2. Encode with the medium preset at the chosen quality.
    codec::EncoderParams params = codec::presetParams("medium");
    params.crf = crf;
    codec::Encoder encoder(params, spec.fps);
    codec::EncodeStats stats;
    const auto stream = encoder.encode(frames, &stats);
    std::printf("\nEncoded at crf %d: %zu bytes (%.0f kbps), "
                "PSNR %.2f dB\n",
                crf, stream.size(), stats.bitrate_kbps, stats.psnr);
    std::printf("  frames: %d I, %d P, %d B; macroblocks: %llu skip, "
                "%llu inter16, %llu inter8x8, %llu intra16, %llu "
                "intra4\n",
                stats.i_frames, stats.p_frames, stats.b_frames,
                static_cast<unsigned long long>(stats.mb_skip),
                static_cast<unsigned long long>(stats.mb_inter16),
                static_cast<unsigned long long>(stats.mb_inter8x8),
                static_cast<unsigned long long>(stats.mb_intra16),
                static_cast<unsigned long long>(stats.mb_intra4));

    // 3. Decode and verify the reconstruction quality independently.
    const auto decoded = codec::decode(stream);
    std::printf("\nDecoded %zu frames; measured PSNR vs source: %.2f "
                "dB\n",
                decoded.frames.size(),
                video::sequencePsnr(frames, decoded.frames));

    // 4. Transcode to a smaller rendition under the simulated CPU.
    core::RunConfig run;
    run.video = video;
    run.seconds = 1.0;
    run.params = codec::presetParams("medium");
    run.params.crf = crf + 8; // a smaller delivery rendition
    run.core = uarch::baselineConfig();
    const auto result = core::runInstrumented(run);
    const auto td = result.core.topdown();

    std::printf("\nTranscode to crf %d on the simulated baseline core:\n",
                run.params.crf);
    std::printf("  %.1fM instructions, %.1fM cycles (IPC %.2f), "
                "simulated time %.1f ms\n",
                result.core.instructions / 1e6, result.core.cycles / 1e6,
                result.core.ipc(), result.transcode_seconds * 1000.0);
    std::printf("  Top-down: retiring %.1f%%, front-end %.1f%%, bad "
                "speculation %.1f%%, back-end %.1f%% (memory %.1f%% + "
                "core %.1f%%)\n",
                td.retiring * 100, td.frontend * 100,
                td.bad_speculation * 100, td.backend() * 100,
                td.backend_memory * 100, td.backend_core * 100);
    std::printf("  MPKI: branch %.2f, L1d %.2f, L2 %.2f, L3 %.2f, L1i "
                "%.2f\n",
                result.core.branchMpki(), result.core.l1dMpki(),
                result.core.l2Mpki(), result.core.l3Mpki(),
                result.core.l1iMpki());
    std::printf("  Output: %.0f kbps at %.2f dB\n", result.bitrate_kbps,
                result.psnr);
    return 0;
}

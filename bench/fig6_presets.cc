/**
 * @file
 * Regenerates paper Figure 6 (a-d): the ten presets at crf 23, refs 3 —
 * (a) time/bitrate/PSNR, (b) FE/BE/BS bound slots, (c) branch & cache
 * MPKI, (d) resource stalls.
 */

#include <cstdio>

#include "bench/benchutil.h"
#include "common/table.h"
#include "core/studies.h"

int
main(int argc, char** argv)
{
    using namespace vtrans;
    auto options = bench::parseBenchOptions(argc, argv);
    // The preset ladder's slow end (tesa, refs irrelevant at 3) is heavy;
    // a 720p-class clip keeps placebo tractable by default.
    Cli cli(argc, argv);
    if (!cli.has("video")) {
        options.study.video = "cricket";
    }

    bench::banner("Figure 6: the ten presets at crf=23, refs=3");
    std::printf("video=%s, %.2fs clips, %d job(s)\n",
                options.study.video.c_str(), options.study.seconds,
                core::resolveJobs(options.study.jobs));

    core::SweepStats stats;
    const auto results = core::parallelPresetStudy(options.study, &stats);

    std::printf("\n(a) Transcoding time, bitrate, PSNR\n\n");
    Table a({"preset", "time (ms)", "bitrate (kbps)", "PSNR (dB)"});
    for (const auto& r : results) {
        a.beginRow();
        a.cell(r.preset);
        a.cell(r.run.transcode_seconds * 1000.0, 3);
        a.cell(r.run.bitrate_kbps, 1);
        a.cell(r.run.psnr, 2);
    }
    std::printf("%sCSV:\n%s", a.toText().c_str(), a.toCsv().c_str());

    std::printf("\n(b) Pipeline-slot breakdown (%%)\n\n");
    Table b({"preset", "retiring", "front-end", "bad-spec", "BE-memory",
             "BE-core"});
    for (const auto& r : results) {
        const auto td = r.run.core.topdown();
        b.beginRow();
        b.cell(r.preset);
        b.cell(td.retiring * 100.0, 1);
        b.cell(td.frontend * 100.0, 1);
        b.cell(td.bad_speculation * 100.0, 1);
        b.cell(td.backend_memory * 100.0, 1);
        b.cell(td.backend_core * 100.0, 1);
    }
    std::printf("%sCSV:\n%s", b.toText().c_str(), b.toCsv().c_str());

    std::printf("\n(c) Branch and cache MPKI\n\n");
    Table c({"preset", "branch", "L1d", "L2", "L3", "L1i"});
    for (const auto& r : results) {
        c.beginRow();
        c.cell(r.preset);
        c.cell(r.run.core.branchMpki(), 2);
        c.cell(r.run.core.l1dMpki(), 2);
        c.cell(r.run.core.l2Mpki(), 2);
        c.cell(r.run.core.l3Mpki(), 2);
        c.cell(r.run.core.l1iMpki(), 2);
    }
    std::printf("%sCSV:\n%s", c.toText().c_str(), c.toCsv().c_str());

    std::printf("\n(d) Resource stalls (cycles per kilo-instruction)\n\n");
    Table d({"preset", "any", "ROB", "RS", "SB"});
    for (const auto& r : results) {
        d.beginRow();
        d.cell(r.preset);
        d.cell(r.run.core.anyResourceStallsPki(), 2);
        d.cell(r.run.core.robStallsPki(), 2);
        d.cell(r.run.core.rsStallsPki(), 2);
        d.cell(r.run.core.sbStallsPki(), 2);
    }
    std::printf("%sCSV:\n%s", d.toText().c_str(), d.toCsv().c_str());

    bench::sweepReport(stats);
    bench::observabilityReport(options);
    std::printf(
        "\nPaper Fig 6 expectation: time rises along the ladder; "
        "bitrate improves sharply up to veryfast then plateaus; "
        "data-cache MPKI and memory-bound slots fall with slower "
        "presets (higher operational intensity); branch MPKI "
        "fluctuates without a clear direction.\n");
    return 0;
}

#ifndef VTRANS_BENCH_BENCHUTIL_H_
#define VTRANS_BENCH_BENCHUTIL_H_

/**
 * @file
 * Shared helpers for the figure/table regeneration binaries: flag
 * handling, grid selection, and formatting. Every bench prints (1) the
 * rendered table/heatmap and (2) machine-readable CSV, so results can be
 * compared against the paper's figures directly.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/status.h"
#include "core/parallel.h"
#include "core/studies.h"

namespace vtrans::bench {

/** Common sweep options from the command line. */
struct BenchOptions
{
    core::StudyOptions study;
    std::vector<int> crf_grid;
    std::vector<int> refs_grid;
};

/**
 * Parses the standard bench flags:
 *   --video <name>    sweep video (default "funny", a 1080p-class clip)
 *   --seconds <s>     clip length per point (default 1.0)
 *   --jobs <n>        worker threads for the sweep (default 1 = serial;
 *                     0 = hardware concurrency)
 *   --coarse          6x5 grid (fast preview)
 *   --fine            11x8 grid (crf Delta-5, 88 points)
 *   --full            the paper's full 816-point grid
 *   --quiet           suppress progress
 * Default grid: 8x5 (40 points).
 */
inline BenchOptions
parseBenchOptions(int argc, char** argv)
{
    Cli cli(argc, argv);
    BenchOptions options;
    options.study.video = cli.str("video", "funny");
    options.study.seconds = cli.real("seconds", 0.8);
    options.study.jobs = static_cast<int>(cli.num("jobs", 1));
    options.study.verbose = !cli.has("quiet");
    setVerbose(!cli.has("quiet"));

    if (cli.has("full")) {
        options.crf_grid = core::fullCrfGrid();
        options.refs_grid = core::fullRefsGrid();
    } else if (cli.has("fine")) {
        options.crf_grid = core::defaultCrfGrid();
        options.refs_grid = core::defaultRefsGrid();
    } else if (cli.has("coarse")) {
        options.crf_grid = {1, 11, 21, 31, 41, 51};
        options.refs_grid = {1, 2, 4, 8, 16};
    } else {
        options.crf_grid = {1, 8, 15, 22, 29, 36, 43, 50};
        options.refs_grid = {1, 2, 4, 8, 16};
    }
    return options;
}

/** Prints a section banner. */
inline void
banner(const std::string& title)
{
    std::printf("\n==== %s ====\n\n", title.c_str());
}

/**
 * Prints the wall-clock report of a pool-executed sweep: wall time,
 * serial-equivalent cost (the sum of per-point wall times), and the
 * measured speedup. `busy_seconds / wall_seconds` is what a serial run
 * of the same points would have cost, so the speedup is measured, not
 * estimated.
 */
inline void
sweepReport(const core::SweepStats& stats)
{
    std::printf("\nsweep: %zu points on %d worker%s in %.2fs wall "
                "(serial-equivalent %.2fs, speedup x%.2f)\n",
                stats.points, stats.jobs, stats.jobs == 1 ? "" : "s",
                stats.wall_seconds, stats.busy_seconds, stats.speedup());
}

} // namespace vtrans::bench

#endif // VTRANS_BENCH_BENCHUTIL_H_

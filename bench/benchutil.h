#ifndef VTRANS_BENCH_BENCHUTIL_H_
#define VTRANS_BENCH_BENCHUTIL_H_

/**
 * @file
 * Shared helpers for the figure/table regeneration binaries: flag
 * handling, grid selection, and formatting. Every bench prints (1) the
 * rendered table/heatmap and (2) machine-readable CSV, so results can be
 * compared against the paper's figures directly.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "codec/strategies/strategies.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/parallel.h"
#include "core/studies.h"
#include "obs/diff.h"
#include "obs/hotspots.h"
#include "obs/metrics.h"
#include "obs/spans.h"
#include "obs/uarch.h"
#include "trace/probe.h"

namespace vtrans::bench {

/** Common sweep options from the command line. */
struct BenchOptions
{
    core::StudyOptions study;
    std::vector<int> crf_grid;
    std::vector<int> refs_grid;

    bool hotspots = false;    ///< Print the hotspot table after the run.
    std::string hotspots_out; ///< Hotspot JSON report path ("" = none).
    std::string trace_out;    ///< Chrome trace JSON path ("" = none).
    bool metrics = false;     ///< Dump the Prometheus exposition.

    bool uarch_report = false;  ///< Print the µarch attribution table.
    std::string uarch_report_out; ///< Attribution JSON path ("" = none).
    std::string uarch_baseline; ///< Baseline JSON to diff against.
    uint64_t phase_window = 0;  ///< Phase sample window (instructions).
};

/**
 * Fixed-seed Zipf(s) rank sampler — the popularity model of a
 * repeat-heavy transcoding service, where a handful of titles dominate
 * the request stream. Rank 0 is the most popular item; rank k is drawn
 * with probability proportional to 1/(k+1)^s via inverse-CDF over the
 * precomputed cumulative weights, so sampling is O(log n) and the
 * sequence is a pure function of (n, s, seed) — deterministic across
 * platforms, shared verbatim by the sustained-load bench, the farm
 * example's --zipf-s mode, and the distribution sanity test.
 */
class ZipfSampler
{
  public:
    ZipfSampler(size_t items, double s, uint64_t seed)
        : rng_(seed), cdf_(items)
    {
        VT_ASSERT(items > 0, "Zipf needs at least one item");
        VT_ASSERT(s >= 0.0, "Zipf exponent must be >= 0, got ", s);
        double sum = 0.0;
        for (size_t k = 0; k < items; ++k) {
            sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
            cdf_[k] = sum;
        }
        for (double& c : cdf_) {
            c /= sum;
        }
    }

    /** Draws the next rank in [0, items). */
    size_t next()
    {
        const double u = rng_.uniform();
        const size_t rank = static_cast<size_t>(
            std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
        return std::min(rank, cdf_.size() - 1);
    }

    /**
     * Draws an exponential inter-arrival gap at `rate` requests per
     * simulated second (the Poisson arrival process the sustained-load
     * mode paces submissions with).
     */
    double nextArrivalGap(double rate)
    {
        VT_ASSERT(rate > 0.0, "arrival rate must be positive");
        return -std::log1p(-rng_.uniform()) / rate;
    }

    /** The exact sampling probability of a rank. */
    double probability(size_t rank) const
    {
        return cdf_.at(rank) - (rank == 0 ? 0.0 : cdf_[rank - 1]);
    }

    size_t items() const { return cdf_.size(); }

  private:
    Rng rng_;
    std::vector<double> cdf_; ///< Normalized cumulative popularity.
};

/** The tracer wall-time sweep spans land in when --trace-out is set. */
inline obs::SpanTracer&
benchTracer()
{
    static obs::SpanTracer tracer;
    return tracer;
}

/**
 * Parses the standard bench flags:
 *   --video <name>    sweep video (default "funny", a 1080p-class clip)
 *   --seconds <s>     clip length per point (default 1.0)
 *   --jobs <n>        worker threads for the sweep (default 1 = serial;
 *                     0 = hardware concurrency)
 *   --coarse          6x5 grid (fast preview)
 *   --fine            11x8 grid (crf Delta-5, 88 points)
 *   --full            the paper's full 816-point grid
 *   --quiet           suppress progress
 *   --batch-size <n>  probe-pipeline batch capacity (0 = per-event
 *                     dispatch; default from VTRANS_PROBE_BATCH or the
 *                     microbench-chosen trace::kDefaultProbeBatch)
 *   --kernels <isa>   kernel backend: scalar, sse41, avx2 or auto
 *                     (default from VTRANS_KERNEL_ISA, else auto; every
 *                     backend is bit-identical)
 *   --kernel-model <m> simulated kernel cost model: scalar (default,
 *                     bit-identical fingerprints) or vector (SIMD-form
 *                     probe sites, see uarch/simdcost.h)
 * Observability (see observabilityReport()):
 *   --hotspots        collect + print the VTune-style hotspot table
 *   --hotspots-out <p> collect + write the hotspot report as JSON
 *   --trace-out <p>   export sweep stage spans as Chrome trace JSON
 *   --metrics         dump the Prometheus-style metrics exposition
 *   --uarch-report    per-site µarch attribution (cycles/top-down/MPKI
 *                     per code site); prints the attribution table
 *   --uarch-report-out <p> write the attribution report as JSON (the
 *                     format tools/uarch_diff and --uarch-baseline read)
 *   --uarch-baseline <p> after the run, diff this baseline JSON report
 *                     against the run's report and print the deltas
 *   --phase-window <n> sample attributed counters every n retired
 *                     instructions into "C" counter events on the
 *                     Chrome trace (use with --trace-out)
 * Default grid: 8x5 (40 points).
 */
inline BenchOptions
parseBenchOptions(int argc, char** argv)
{
    Cli cli(argc, argv);
    BenchOptions options;
    options.study.video = cli.str("video", "funny");
    options.study.seconds = cli.real("seconds", 0.8);
    options.study.jobs = static_cast<int>(cli.num("jobs", 1));
    options.study.verbose = !cli.has("quiet");
    setVerbose(!cli.has("quiet"));

    // A/B knob for the batched probe pipeline (bit-identical either way).
    const int64_t batch = cli.num(
        "batch-size", static_cast<int64_t>(trace::defaultBatchCapacity()));
    trace::setDefaultBatchCapacity(
        batch <= 0 ? 0 : static_cast<uint32_t>(batch));

    // Kernel backend (bit-identical across values) and simulated cost
    // model (vector is the opt-in SIMD-form probe model).
    const std::string kernels = cli.str("kernels", "");
    if (!kernels.empty() && !codec::setKernelIsa(kernels)) {
        VT_FATAL("--kernels must be scalar, sse41, avx2 or auto (and "
                 "supported by this CPU); got ", kernels);
    }
    const std::string kernel_model = cli.str("kernel-model", "");
    if (!kernel_model.empty() && !codec::setKernelModel(kernel_model)) {
        VT_FATAL("--kernel-model must be scalar or vector; got ",
                 kernel_model);
    }

    if (cli.has("full")) {
        options.crf_grid = core::fullCrfGrid();
        options.refs_grid = core::fullRefsGrid();
    } else if (cli.has("fine")) {
        options.crf_grid = core::defaultCrfGrid();
        options.refs_grid = core::defaultRefsGrid();
    } else if (cli.has("coarse")) {
        options.crf_grid = {1, 11, 21, 31, 41, 51};
        options.refs_grid = {1, 2, 4, 8, 16};
    } else {
        options.crf_grid = {1, 8, 15, 22, 29, 36, 43, 50};
        options.refs_grid = {1, 2, 4, 8, 16};
    }

    options.hotspots = cli.has("hotspots");
    options.hotspots_out = cli.str("hotspots-out", "");
    options.trace_out = cli.str("trace-out", "");
    options.metrics = cli.has("metrics");
    options.uarch_report = cli.has("uarch-report");
    options.uarch_report_out = cli.str("uarch-report-out", "");
    options.uarch_baseline = cli.str("uarch-baseline", "");
    const int64_t phase = cli.num("phase-window", 0);
    options.phase_window = phase <= 0 ? 0 : static_cast<uint64_t>(phase);
    if (options.hotspots || !options.hotspots_out.empty()) {
        obs::setHotspotsEnabled(true);
    }
    if (options.uarch_report || !options.uarch_report_out.empty()
        || !options.uarch_baseline.empty()) {
        // Attribution implies hotspot collection: the report needs the
        // per-site instruction denominators for CPI/MPKI.
        obs::setUarchAttributionEnabled(true);
        obs::setHotspotsEnabled(true);
    }
    obs::setPhaseWindow(options.phase_window);
    if (!options.trace_out.empty() || options.phase_window > 0) {
        obs::setGlobalTracer(&benchTracer());
    }
    return options;
}

/** Prints a section banner. */
inline void
banner(const std::string& title)
{
    std::printf("\n==== %s ====\n\n", title.c_str());
}

/**
 * Prints the wall-clock report of a pool-executed sweep: wall time,
 * serial-equivalent cost (the sum of per-point wall times), and the
 * measured speedup. `busy_seconds / wall_seconds` is what a serial run
 * of the same points would have cost, so the speedup is measured, not
 * estimated.
 */
inline void
sweepReport(const core::SweepStats& stats)
{
    std::printf("\nsweep: %zu points on %d worker%s in %.2fs wall "
                "(serial-equivalent %.2fs, speedup x%.2f)\n",
                stats.points, stats.jobs, stats.jobs == 1 ? "" : "s",
                stats.wall_seconds, stats.busy_seconds, stats.speedup());
}

/**
 * Emits whatever observability output the flags requested: the hotspot
 * table (--hotspots), the hotspot JSON report (--hotspots-out), the
 * Chrome trace of the sweep's stage spans (--trace-out), and the
 * Prometheus metrics exposition (--metrics). Call once, after the
 * bench's sweeps have run. Export failures are reported, not fatal —
 * the bench's results have already been printed.
 */
inline void
observabilityReport(const BenchOptions& options)
{
    if (options.hotspots) {
        banner("hotspots");
        std::printf("%s\n", obs::hotspotReport().table().c_str());
    }
    if (!options.hotspots_out.empty()) {
        if (obs::hotspotReport().writeJson(options.hotspots_out)) {
            std::printf("hotspot report: %s\n",
                        options.hotspots_out.c_str());
        } else {
            std::printf("hotspot report NOT written (cannot open %s)\n",
                        options.hotspots_out.c_str());
        }
    }
    if (!options.trace_out.empty()) {
        obs::setGlobalTracer(nullptr);
        if (benchTracer().writeChromeTrace(options.trace_out)) {
            std::printf("chrome trace: %s (%zu spans)\n",
                        options.trace_out.c_str(), benchTracer().size());
        } else {
            std::printf("chrome trace NOT written (cannot open %s)\n",
                        options.trace_out.c_str());
        }
    }
    if (options.uarch_report) {
        banner("uarch attribution");
        std::printf("%s\n", obs::hotspotReport().uarchTable().c_str());
    }
    if (!options.uarch_report_out.empty()) {
        if (obs::hotspotReport().writeJson(options.uarch_report_out)) {
            std::printf("uarch attribution report: %s\n",
                        options.uarch_report_out.c_str());
        } else {
            std::printf("uarch report NOT written (cannot open %s)\n",
                        options.uarch_report_out.c_str());
        }
    }
    if (!options.uarch_baseline.empty()) {
        obs::ReportData baseline;
        obs::ReportData current;
        std::string error;
        if (!obs::loadReport(options.uarch_baseline, &baseline, &error)) {
            std::printf("uarch baseline NOT loaded (%s)\n", error.c_str());
        } else if (!obs::parseReport(obs::hotspotReport().toJson(),
                                     &current, &error)) {
            std::printf("uarch diff NOT computed (%s)\n", error.c_str());
        } else {
            banner("uarch diff vs baseline (this run minus baseline)");
            std::printf(
                "%s\n",
                obs::diffTable(obs::diffReports(baseline, current))
                    .c_str());
        }
    }
    if (options.metrics) {
        banner("metrics");
        std::printf("%s", obs::metrics().exposition().c_str());
    }
}

} // namespace vtrans::bench

#endif // VTRANS_BENCH_BENCHUTIL_H_

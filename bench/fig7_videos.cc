/**
 * @file
 * Regenerates paper Figure 7 (a-c): all vbench videos at the medium
 * preset (crf 23, refs 3), grouped by resolution class and ordered by
 * entropy — (a) FE/BE/BS slots, (b) branch & cache MPKI, (c) resource
 * stalls.
 */

#include <algorithm>
#include <cstdio>

#include "bench/benchutil.h"
#include "common/table.h"
#include "core/studies.h"

int
main(int argc, char** argv)
{
    using namespace vtrans;
    auto options = bench::parseBenchOptions(argc, argv);

    bench::banner("Figure 7: across vbench videos (medium, crf=23, refs=3)");
    std::printf("%.2fs clips, %d job(s)\n", options.study.seconds,
                core::resolveJobs(options.study.jobs));

    core::SweepStats stats;
    auto results = core::parallelVideoStudy(options.study, &stats);
    // Paper ordering: group by resolution class, entropy ascending within.
    std::stable_sort(results.begin(), results.end(),
                     [](const core::VideoResult& a,
                        const core::VideoResult& b) {
                         if (a.resolution_class != b.resolution_class) {
                             return a.resolution_class
                                    < b.resolution_class;
                         }
                         return a.entropy < b.entropy;
                     });

    std::printf("\n(a) Pipeline-slot breakdown (%%)\n\n");
    Table a({"video", "class", "entropy", "retiring", "front-end",
             "bad-spec", "back-end"});
    for (const auto& r : results) {
        const auto td = r.run.core.topdown();
        a.beginRow();
        a.cell(r.video);
        a.cell(r.resolution_class);
        a.cell(r.entropy, 1);
        a.cell(td.retiring * 100.0, 1);
        a.cell(td.frontend * 100.0, 1);
        a.cell(td.bad_speculation * 100.0, 1);
        a.cell(td.backend() * 100.0, 1);
    }
    std::printf("%sCSV:\n%s", a.toText().c_str(), a.toCsv().c_str());

    std::printf("\n(b) Branch and cache MPKI\n\n");
    Table b({"video", "entropy", "branch", "L1d", "L2", "L3", "L1i"});
    for (const auto& r : results) {
        b.beginRow();
        b.cell(r.video);
        b.cell(r.entropy, 1);
        b.cell(r.run.core.branchMpki(), 2);
        b.cell(r.run.core.l1dMpki(), 2);
        b.cell(r.run.core.l2Mpki(), 2);
        b.cell(r.run.core.l3Mpki(), 2);
        b.cell(r.run.core.l1iMpki(), 2);
    }
    std::printf("%sCSV:\n%s", b.toText().c_str(), b.toCsv().c_str());

    std::printf("\n(c) Resource stalls (cycles per kilo-instruction)\n\n");
    Table c({"video", "entropy", "any", "ROB", "RS", "SB"});
    for (const auto& r : results) {
        c.beginRow();
        c.cell(r.video);
        c.cell(r.entropy, 1);
        c.cell(r.run.core.anyResourceStallsPki(), 2);
        c.cell(r.run.core.robStallsPki(), 2);
        c.cell(r.run.core.rsStallsPki(), 2);
        c.cell(r.run.core.sbStallsPki(), 2);
    }
    std::printf("%sCSV:\n%s", c.toText().c_str(), c.toCsv().c_str());

    bench::sweepReport(stats);
    bench::observabilityReport(options);
    std::printf(
        "\nPaper Fig 7 expectation: within a resolution group, higher "
        "entropy raises front-end and bad-speculation bound slots "
        "(branch MPKI follows bad speculation) and lowers back-end "
        "bound slots; cache MPKI follows the memory-bound component.\n");
    return 0;
}

/**
 * @file
 * Regenerates paper Figure 2: the transcoding speed / video quality /
 * file size triangle. Measures the sign of each crf and refs effect on
 * the three metrics and prints the measured triangle, marking active
 * (intended) vs passive (side-effect) edges as the paper does.
 */

#include <cstdio>

#include "bench/benchutil.h"
#include "common/table.h"
#include "core/studies.h"

int
main(int argc, char** argv)
{
    using namespace vtrans;
    auto options = bench::parseBenchOptions(argc, argv);
    // Only four points are measured, so afford longer clips by default:
    // the refs -> size effect needs enough anchor frames to show.
    Cli cli(argc, argv);
    if (!cli.has("seconds")) {
        options.study.seconds = 2.5;
    }

    bench::banner("Figure 2: speed / quality / size triangle");

    // Measure the four corners needed to sign the six edges.
    core::StudyOptions study = options.study;
    core::SweepStats stats;
    const auto points =
        core::parallelCrfRefsSweep({18, 36}, {1, 8}, study, &stats);

    auto at = [&](int crf, int refs) -> const core::RunResult& {
        for (const auto& p : points) {
            if (p.crf == crf && p.refs == refs) {
                return p.run;
            }
        }
        VT_FATAL("missing sweep point");
    };

    const auto& base = at(18, 1);
    const auto& more_crf = at(36, 1);
    const auto& more_refs = at(18, 8);

    Table t({"Increase", "Transcoding time", "Quality (PSNR)",
             "File size (bitrate)", "Kind"});
    auto sign = [](double delta, double tol) {
        return delta > tol ? "+ (increases)"
               : delta < -tol ? "- (decreases)"
                              : "~ (neutral)";
    };
    t.beginRow();
    t.cell(std::string("crf"));
    t.cell(std::string(sign(more_crf.transcode_seconds
                                - base.transcode_seconds,
                            0.0)));
    t.cell(std::string(sign(more_crf.psnr - base.psnr, 0.05)));
    t.cell(std::string(sign(more_crf.bitrate_kbps - base.bitrate_kbps,
                            0.5)));
    t.cell(std::string("quality active; time/size passive"));
    t.beginRow();
    t.cell(std::string("refs"));
    t.cell(std::string(sign(more_refs.transcode_seconds
                                - base.transcode_seconds,
                            0.0)));
    t.cell(std::string(sign(more_refs.psnr - base.psnr, 0.05)));
    t.cell(std::string(sign(more_refs.bitrate_kbps - base.bitrate_kbps,
                            0.5)));
    t.cell(std::string("size active; time passive"));
    std::printf("%s\n", t.toText().c_str());

    std::printf("Measured values (video=%s):\n",
                options.study.video.c_str());
    Table v({"crf", "refs", "time (ms)", "PSNR (dB)", "bitrate (kbps)"});
    for (const auto& p : points) {
        v.beginRow();
        v.cell(static_cast<int64_t>(p.crf));
        v.cell(static_cast<int64_t>(p.refs));
        v.cell(p.run.transcode_seconds * 1000.0, 3);
        v.cell(p.run.psnr, 2);
        v.cell(p.run.bitrate_kbps, 1);
    }
    std::printf("%s\nCSV:\n%s", v.toText().c_str(), v.toCsv().c_str());

    bench::sweepReport(stats);
    bench::observabilityReport(options);
    std::printf(
        "\nPaper Fig 2 expectation: crf+ -> quality-, time-, size-;\n"
        "refs+ -> size-, time+, quality unchanged.\n");
    return 0;
}

/**
 * @file
 * Regenerates paper Table IV: the five microarchitecture configurations
 * of the scheduler study (capacities are scaled per DESIGN.md §5; every
 * relationship between rows matches the paper exactly).
 */

#include <cstdio>

#include "bench/benchutil.h"
#include "common/table.h"
#include "uarch/config.h"

int
main(int argc, char** argv)
{
    using namespace vtrans;
    Cli cli(argc, argv);
    setVerbose(false);

    bench::banner(
        "Table IV: microarchitectural configurations (scaled sizes)");

    Table t({"Config", "L1d", "L1i", "L2", "L3", "L4", "iTLB", "ROB", "RS",
             "issue@dispatch", "branch predictor"});
    for (const auto& p : uarch::tableIVConfigs()) {
        t.beginRow();
        t.cell(p.name);
        t.cell(std::to_string(p.l1d.size_bytes / 1024) + "K");
        t.cell(std::to_string(p.l1i.size_bytes / 1024) + "K");
        t.cell(std::to_string(p.l2.size_bytes / 1024) + "K");
        t.cell(std::to_string(p.l3.size_bytes / 1024) + "K");
        t.cell(p.l4_size > 0 ? std::to_string(p.l4_size / 1024) + "K"
                             : std::string("none"));
        t.cell(static_cast<int64_t>(p.itlb_entries));
        t.cell(static_cast<int64_t>(p.rob_size));
        t.cell(static_cast<int64_t>(p.rs_size));
        t.cell(p.issue_at_dispatch ? "yes" : "no");
        t.cell(p.predictor);
    }
    std::printf("%s\n", t.toText().c_str());
    std::printf("CSV:\n%s", t.toCsv().c_str());
    std::printf(
        "\nNote: capacities are scaled with the 1/12-area videos "
        "(DESIGN.md 5); Table IV relationships (2x L1i/iTLB for fe_op; "
        "2x L1d/L2, L3/2, +L4=2xL3 for be_op1; 2x ROB/RS for be_op2; "
        "TAGE for bs_op) hold exactly.\n");
    return 0;
}

/**
 * @file
 * Farm service benchmark: (1) wall-clock throughput scaling of the worker
 * pool from 1 thread to hardware concurrency on one fixed job stream,
 * with a bit-identical-results check of every parallel run against the
 * serial reference; (2) dispatch-policy quality — smart vs. random mean
 * service latency on the same stream (the §III-D2 claim, online).
 *
 *   ./build/bench/farm_throughput [--jobs 24] [--seconds 0.2] [--seed 7]
 *       [--retries 2] [--faults 0.1] [--batch-size N]
 *
 * --batch-size A/Bs the batched probe pipeline (0 = per-event dispatch;
 * default from VTRANS_PROBE_BATCH or trace::kDefaultProbeBatch). Results
 * are bit-identical either way — only the wall clock moves.
 *
 * Note: wall-clock speedup tracks the *physical* core count. On a
 * single-core host every worker count measures ~1x; the determinism
 * check is unaffected.
 */

#include <chrono>
#include <cstdio>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table.h"
#include "core/workload.h"
#include "farm/farm.h"
#include "trace/probe.h"

namespace {

using namespace vtrans;

std::vector<farm::JobRequest>
makeJobStream(int jobs, int retries, uint64_t seed)
{
    const std::vector<sched::Task> catalog = {
        {"desktop", 30, 8, "veryfast"}, {"holi", 10, 1, "slow"},
        {"presentation", 35, 6, "veryfast"}, {"game2", 15, 2, "medium"},
        {"hall", 26, 3, "medium"},      {"bike", 20, 4, "fast"},
        {"cat", 23, 3, "fast"},         {"girl", 24, 3, "medium"},
    };
    Rng rng(seed);
    std::vector<farm::JobRequest> stream;
    double t = 0.0;
    for (int i = 0; i < jobs; ++i) {
        farm::JobRequest req;
        req.task = catalog[i % catalog.size()];
        req.submit_time = t;
        req.priority = static_cast<int>(rng.below(3));
        req.retry_budget = retries;
        stream.push_back(req);
        t += 0.0005 * rng.uniform();
    }
    return stream;
}

/** Runs the stream at a worker count; returns per-job fingerprints and
 *  the wall-clock seconds spent inside drain(). */
std::map<uint64_t, uint64_t>
runAt(const std::vector<farm::JobRequest>& stream,
      const farm::FarmOptions& base, int workers,
      farm::DispatchPolicy policy, double* wall_seconds,
      farm::FarmMetrics* metrics)
{
    farm::FarmOptions options = base;
    options.workers = workers;
    options.dispatch = policy;
    farm::Farm service(options);
    for (const auto& req : stream) {
        service.submit(req);
    }
    const auto t0 = std::chrono::steady_clock::now();
    service.drain();
    const auto t1 = std::chrono::steady_clock::now();
    if (wall_seconds) {
        *wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    }
    if (metrics) {
        *metrics = service.metrics();
    }
    std::map<uint64_t, uint64_t> prints;
    for (const auto& r : service.log().records()) {
        prints[r.id] = r.result_fingerprint;
    }
    return prints;
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    setVerbose(false);
    const int jobs = static_cast<int>(cli.num("jobs", 24));
    const uint64_t seed = static_cast<uint64_t>(cli.num("seed", 7));
    const int retries = static_cast<int>(cli.num("retries", 2));
    const int64_t batch = cli.num(
        "batch-size", static_cast<int64_t>(trace::defaultBatchCapacity()));
    trace::setDefaultBatchCapacity(
        batch <= 0 ? 0 : static_cast<uint32_t>(batch));

    farm::FarmOptions base;
    base.clip_seconds = cli.real("seconds", 0.2);
    base.fault_rate = cli.real("faults", 0.1);

    const auto stream = makeJobStream(jobs, retries, seed);

    // Pre-warm outside the timed region: probe code sites (layout order)
    // and every mezzanine stream the jobs will decode.
    farm::Farm::warmupProcess();
    std::set<std::string> videos{base.reference_video};
    for (const auto& req : stream) {
        videos.insert(req.task.video);
    }
    for (const auto& v : videos) {
        core::mezzanine(v, base.clip_seconds);
    }

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("farm_throughput: %d jobs, %.2fs clips, fault rate "
                "%.0f%%, %u hardware threads\n\n",
                jobs, base.clip_seconds, base.fault_rate * 100.0, hw);

    // --- Part 1: wall-clock scaling + determinism ---------------------
    // Always exercise 2 and 4 workers (the determinism check is about
    // thread interleaving, not physical cores); extend to hw beyond 4.
    std::vector<int> worker_counts{1, 2, 4};
    for (int w = 8; w <= static_cast<int>(hw); w *= 2) {
        worker_counts.push_back(w);
    }

    Table scaling({"workers", "wall (s)", "jobs/s (wall)", "speedup",
                   "identical to serial"});
    std::map<uint64_t, uint64_t> reference;
    double serial_wall = 0.0;
    bool all_identical = true;
    for (int workers : worker_counts) {
        double wall = 0.0;
        const auto prints = runAt(stream, base, workers,
                                  farm::DispatchPolicy::Smart, &wall,
                                  nullptr);
        bool identical = true;
        if (workers == 1) {
            reference = prints;
            serial_wall = wall;
        } else {
            identical = prints == reference;
            all_identical = all_identical && identical;
        }
        scaling.beginRow();
        scaling.cell(static_cast<int64_t>(workers));
        scaling.cell(wall, 2);
        scaling.cell(jobs / wall, 2);
        scaling.cell(serial_wall / wall, 2);
        scaling.cell(workers == 1 ? "(reference)"
                                  : (identical ? "yes" : "NO"));
    }
    std::printf("%s\n", scaling.toText().c_str());
    std::printf("determinism: %s\n\n",
                all_identical
                    ? "PASS - per-job results bit-identical at every "
                      "worker count"
                    : "FAIL - results differ across worker counts");

    // --- Part 2: dispatch-policy quality ------------------------------
    farm::FarmMetrics random_m, smart_m;
    runAt(stream, base, 0, farm::DispatchPolicy::Random, nullptr,
          &random_m);
    runAt(stream, base, 0, farm::DispatchPolicy::Smart, nullptr,
          &smart_m);
    Table quality({"policy", "completed", "failed", "retries",
                   "mean latency (ms)", "p95 (ms)", "makespan (ms)"});
    const std::vector<std::pair<std::string, const farm::FarmMetrics*>>
        rows = {{"random", &random_m}, {"smart", &smart_m}};
    for (const auto& [name, m] : rows) {
        quality.beginRow();
        quality.cell(name);
        quality.cell(static_cast<int64_t>(m->completed));
        quality.cell(static_cast<int64_t>(m->failed));
        quality.cell(static_cast<int64_t>(m->retries));
        quality.cell(m->mean_latency * 1000.0, 3);
        quality.cell(m->p95_latency * 1000.0, 3);
        quality.cell(m->makespan * 1000.0, 3);
    }
    std::printf("%s\n", quality.toText().c_str());

    const bool smart_wins = smart_m.mean_latency < random_m.mean_latency;
    std::printf("policy quality: %s - smart mean latency %.3f ms vs "
                "random %.3f ms\n",
                smart_wins ? "PASS" : "FAIL",
                smart_m.mean_latency * 1000.0,
                random_m.mean_latency * 1000.0);

    return (all_identical && smart_wins) ? 0 : 1;
}

/**
 * @file
 * Farm service benchmark: (1) wall-clock throughput scaling of the worker
 * pool from 1 thread to hardware concurrency on one fixed job stream,
 * with a bit-identical-results check of every parallel run against the
 * serial reference; (2) dispatch-policy quality — smart vs. random mean
 * service latency on the same stream (the §III-D2 claim, online).
 *
 *   ./build/bench/farm_throughput [--jobs 24] [--seconds 0.2] [--seed 7]
 *       [--retries 2] [--faults 0.1] [--batch-size N] [--chunk-frames G]
 *
 * --batch-size A/Bs the batched probe pipeline (0 = per-event dispatch;
 * default from VTRANS_PROBE_BATCH or trace::kDefaultProbeBatch). Results
 * are bit-identical either way — only the wall clock moves.
 *
 * --chunk-frames G adds a third part: the same mixed-size stream
 * dispatched whole vs as GOP-chunked job graphs (boundary spacing G,
 * see chunk/chunk.h), comparing p50/p99 service latency of both arms
 * and reporting the chunk-boundary quality/size cost.
 *
 * --zipf-s S adds a fourth part: a Zipf(S)-popular, Poisson-paced
 * sustained-load stream (default 2000 jobs over a 48-item catalog)
 * run with the result cache serving hits vs not — the throughput/p99
 * cliff content addressing removes on a repeat-heavy service.
 * --zipf-jobs N, --zipf-items K, --zipf-load L (arrival rate as a
 * multiple of measured fleet capacity, default 1.2), --cache-mb M size
 * the experiment; --out writes the A/B as BENCH_cache.json and
 * --min-p99-gain G gates cached p99 at >= G x better than uncached.
 * --zipf-knee additionally sweeps load x {smart,random} and prints the
 * shed/latency knee per dispatch policy.
 *
 * Note: wall-clock speedup tracks the *physical* core count. On a
 * single-core host every worker count measures ~1x; the determinism
 * check is unaffected.
 */

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "bench/benchutil.h"
#include "chunk/chunk.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table.h"
#include "core/workload.h"
#include "farm/farm.h"
#include "trace/probe.h"

namespace {

using namespace vtrans;

std::vector<farm::JobRequest>
makeJobStream(int jobs, int retries, uint64_t seed)
{
    const std::vector<sched::Task> catalog = {
        {"desktop", 30, 8, "veryfast"}, {"holi", 10, 1, "slow"},
        {"presentation", 35, 6, "veryfast"}, {"game2", 15, 2, "medium"},
        {"hall", 26, 3, "medium"},      {"bike", 20, 4, "fast"},
        {"cat", 23, 3, "fast"},         {"girl", 24, 3, "medium"},
    };
    Rng rng(seed);
    std::vector<farm::JobRequest> stream;
    double t = 0.0;
    for (int i = 0; i < jobs; ++i) {
        farm::JobRequest req;
        req.task = catalog[i % catalog.size()];
        req.submit_time = t;
        req.priority = static_cast<int>(rng.below(3));
        req.retry_budget = retries;
        stream.push_back(req);
        t += 0.0005 * rng.uniform();
    }
    return stream;
}

/** Runs the stream at a worker count; returns per-job fingerprints and
 *  the wall-clock seconds spent inside drain(). */
std::map<uint64_t, uint64_t>
runAt(const std::vector<farm::JobRequest>& stream,
      const farm::FarmOptions& base, int workers,
      farm::DispatchPolicy policy, double* wall_seconds,
      farm::FarmMetrics* metrics)
{
    farm::FarmOptions options = base;
    options.workers = workers;
    options.dispatch = policy;
    farm::Farm service(options);
    for (const auto& req : stream) {
        service.submit(req);
    }
    const auto t0 = std::chrono::steady_clock::now();
    service.drain();
    const auto t1 = std::chrono::steady_clock::now();
    if (wall_seconds) {
        *wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    }
    if (metrics) {
        *metrics = service.metrics();
    }
    std::map<uint64_t, uint64_t> prints;
    for (const auto& r : service.log().records()) {
        prints[r.id] = r.result_fingerprint;
    }
    return prints;
}

/** A catalog of `items` distinct renditions (the periods of the four
 *  cycled dimensions are coprime enough that tuples stay unique for any
 *  catalog under 408 items). */
std::vector<sched::Task>
makeZipfCatalog(int items)
{
    const std::vector<std::string> videos = {
        "desktop", "holi",    "presentation", "game2",
        "hall",    "bike",    "cat",          "girl",
    };
    const std::vector<std::string> presets = {"veryfast", "fast",
                                              "medium"};
    std::vector<sched::Task> catalog;
    for (int i = 0; i < items; ++i) {
        sched::Task t;
        t.video = videos[i % videos.size()];
        t.preset = presets[(i / videos.size()) % presets.size()];
        t.crf = 18 + i % 17;
        t.refs = 1 + (i / 2) % 4;
        catalog.push_back(t);
    }
    return catalog;
}

/** A Zipf-popular, Poisson-paced request stream: ranks drawn Zipf(s)
 *  over the catalog, inter-arrival gaps exponential at `rate` requests
 *  per simulated second. Pure function of (catalog, jobs, s, rate,
 *  seed). */
std::vector<farm::JobRequest>
makeZipfStream(const std::vector<sched::Task>& catalog, int jobs,
               double s, double rate, uint64_t seed)
{
    bench::ZipfSampler zipf(catalog.size(), s, seed);
    std::vector<farm::JobRequest> stream;
    double t = 0.0;
    for (int i = 0; i < jobs; ++i) {
        farm::JobRequest req;
        req.task = catalog[zipf.next()];
        t += zipf.nextArrivalGap(rate);
        req.submit_time = t;
        stream.push_back(req);
    }
    return stream;
}

/** Outcome of one sustained-load arm. */
struct ZipfArm
{
    farm::FarmMetrics metrics;
    farm::CacheStats cache;  ///< Store activity during the drain.
    double hit_fraction = 0; ///< Done jobs served as hit/wait.
};

/**
 * Runs the stream once. `serve_hits` is the A/B lever: both arms share
 * `memo` so the real encodes happen once across the whole experiment —
 * only the *modeled* schedule differs. The cached arm plans cold
 * (cache_plan_cold) so it measures a cache filling under load, not one
 * pre-warmed by the opposite arm.
 */
ZipfArm
runZipfArm(const std::vector<farm::JobRequest>& stream,
           const farm::FarmOptions& base,
           std::shared_ptr<farm::ResultCache> memo, bool serve_hits,
           farm::DispatchPolicy policy)
{
    farm::FarmOptions options = base;
    options.workers = 0;
    options.dispatch = policy;
    options.shared_cache = std::move(memo);
    options.cache_serve_hits = serve_hits;
    options.cache_plan_cold = serve_hits;
    farm::Farm service(options);
    for (const auto& req : stream) {
        service.submit(req);
    }
    service.drain();
    ZipfArm arm;
    arm.metrics = service.metrics();
    arm.cache = service.cacheDrainStats();
    size_t done = 0;
    size_t hits = 0;
    for (const auto& r : service.log().records()) {
        if (r.state == farm::JobState::Done) {
            ++done;
            hits += r.cache_hit ? 1 : 0;
        }
    }
    arm.hit_fraction =
        done == 0 ? 0.0 : static_cast<double>(hits) / done;
    return arm;
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    setVerbose(false);
    const int jobs = static_cast<int>(cli.num("jobs", 24));
    const uint64_t seed = static_cast<uint64_t>(cli.num("seed", 7));
    const int retries = static_cast<int>(cli.num("retries", 2));
    const int64_t batch = cli.num(
        "batch-size", static_cast<int64_t>(trace::defaultBatchCapacity()));
    trace::setDefaultBatchCapacity(
        batch <= 0 ? 0 : static_cast<uint32_t>(batch));

    farm::FarmOptions base;
    base.clip_seconds = cli.real("seconds", 0.2);
    base.fault_rate = cli.real("faults", 0.1);

    const auto stream = makeJobStream(jobs, retries, seed);

    // Pre-warm outside the timed region: probe code sites (layout order)
    // and every mezzanine stream the jobs will decode.
    farm::Farm::warmupProcess();
    std::set<std::string> videos{base.reference_video};
    for (const auto& req : stream) {
        videos.insert(req.task.video);
    }
    for (const auto& v : videos) {
        core::mezzanine(v, base.clip_seconds);
    }

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("farm_throughput: %d jobs, %.2fs clips, fault rate "
                "%.0f%%, %u hardware threads\n\n",
                jobs, base.clip_seconds, base.fault_rate * 100.0, hw);

    // --- Part 1: wall-clock scaling + determinism ---------------------
    // Always exercise 2 and 4 workers (the determinism check is about
    // thread interleaving, not physical cores); extend to hw beyond 4.
    std::vector<int> worker_counts{1, 2, 4};
    for (int w = 8; w <= static_cast<int>(hw); w *= 2) {
        worker_counts.push_back(w);
    }

    Table scaling({"workers", "wall (s)", "jobs/s (wall)", "speedup",
                   "identical to serial"});
    std::map<uint64_t, uint64_t> reference;
    double serial_wall = 0.0;
    bool all_identical = true;
    for (int workers : worker_counts) {
        double wall = 0.0;
        const auto prints = runAt(stream, base, workers,
                                  farm::DispatchPolicy::Smart, &wall,
                                  nullptr);
        bool identical = true;
        if (workers == 1) {
            reference = prints;
            serial_wall = wall;
        } else {
            identical = prints == reference;
            all_identical = all_identical && identical;
        }
        scaling.beginRow();
        scaling.cell(static_cast<int64_t>(workers));
        scaling.cell(wall, 2);
        scaling.cell(jobs / wall, 2);
        scaling.cell(serial_wall / wall, 2);
        scaling.cell(workers == 1 ? "(reference)"
                                  : (identical ? "yes" : "NO"));
    }
    std::printf("%s\n", scaling.toText().c_str());
    std::printf("determinism: %s\n\n",
                all_identical
                    ? "PASS - per-job results bit-identical at every "
                      "worker count"
                    : "FAIL - results differ across worker counts");

    // --- Part 2: dispatch-policy quality ------------------------------
    farm::FarmMetrics random_m, smart_m;
    runAt(stream, base, 0, farm::DispatchPolicy::Random, nullptr,
          &random_m);
    runAt(stream, base, 0, farm::DispatchPolicy::Smart, nullptr,
          &smart_m);
    Table quality({"policy", "completed", "failed", "retries",
                   "mean latency (ms)", "p95 (ms)", "makespan (ms)"});
    const std::vector<std::pair<std::string, const farm::FarmMetrics*>>
        rows = {{"random", &random_m}, {"smart", &smart_m}};
    for (const auto& [name, m] : rows) {
        quality.beginRow();
        quality.cell(name);
        quality.cell(static_cast<int64_t>(m->completed));
        quality.cell(static_cast<int64_t>(m->failed));
        quality.cell(static_cast<int64_t>(m->retries));
        quality.cell(m->mean_latency * 1000.0, 3);
        quality.cell(m->p95_latency * 1000.0, 3);
        quality.cell(m->makespan * 1000.0, 3);
    }
    std::printf("%s\n", quality.toText().c_str());

    const bool smart_wins = smart_m.mean_latency < random_m.mean_latency;
    std::printf("policy quality: %s - smart mean latency %.3f ms vs "
                "random %.3f ms\n",
                smart_wins ? "PASS" : "FAIL",
                smart_m.mean_latency * 1000.0,
                random_m.mean_latency * 1000.0);

    // --- Part 3: whole vs GOP-chunked dispatch (--chunk-frames) -------
    bool chunk_pass = true;
    if (cli.has("chunk-frames")) {
        chunk::ChunkOptions chunking;
        chunking.chunk_frames =
            static_cast<int>(cli.num("chunk-frames", 3));

        // Chunking converts idle capacity into lower time-to-ready, so
        // the A/B stream must leave capacity to convert: mostly light
        // jobs with a heavy slow-preset job mixed in, arrivals spaced
        // wide enough that the fleet is not a saturated batch (under
        // saturation p99 is just makespan, and splitting only adds
        // closed-GOP work). Faults stay off in both arms — the retry
        // backoff (20 sim ms) dwarfs job latency (~0.5 ms) and would
        // swamp the dispatch comparison; fault recovery is parts 1-2's
        // and the test suite's job.
        const std::vector<sched::Task> light = {
            {"desktop", 30, 8, "veryfast"},
            {"presentation", 35, 6, "veryfast"},
            {"cat", 23, 3, "fast"},
            {"bike", 20, 4, "fast"},
        };
        const sched::Task heavy = {"holi", 10, 1, "slow"};
        std::vector<farm::JobRequest> mixed;
        double at = 0.0;
        for (int i = 0; i < jobs; ++i) {
            farm::JobRequest req;
            req.task = i % 4 == 3 ? heavy : light[i % light.size()];
            req.submit_time = at;
            req.retry_budget = 0;
            mixed.push_back(req);
            at += 0.0015;
        }

        // Both arms run the same stream on the default Table IV fleet:
        // whole jobs vs split->encode->stitch graphs. A graph's service
        // latency is its stitch record's submit-to-finish time — the
        // rendition is not deliverable before the remux lands.
        auto arm = [&](bool chunked, std::vector<double>* latencies,
                       double* dpsnr, double* dbitrate) {
            farm::FarmOptions options = base;
            options.workers = 0;
            options.fault_rate = 0.0;
            options.dispatch = farm::DispatchPolicy::Smart;
            farm::Farm service(options);
            for (const auto& req : mixed) {
                if (chunked) {
                    service.submitChunked(req, chunking);
                } else {
                    service.submit(req);
                }
            }
            service.drain();
            size_t stitched = 0;
            for (const auto& r : service.log().records()) {
                if (r.state != farm::JobState::Done) {
                    continue;
                }
                if (chunked ? r.kind == "stitch" : r.kind == "transcode") {
                    latencies->push_back(r.latency());
                }
                if (r.kind == "stitch") {
                    ++stitched;
                    if (dpsnr) {
                        *dpsnr += r.delta_psnr_db;
                    }
                    if (dbitrate) {
                        *dbitrate += r.delta_bitrate_kbps;
                    }
                }
            }
            if (stitched > 0) {
                if (dpsnr) {
                    *dpsnr /= stitched;
                }
                if (dbitrate) {
                    *dbitrate /= stitched;
                }
            }
        };
        std::vector<double> whole_lat, chunked_lat;
        double dpsnr = 0.0;
        double dbitrate = 0.0;
        arm(false, &whole_lat, nullptr, nullptr);
        arm(true, &chunked_lat, &dpsnr, &dbitrate);

        Table ab({"arm", "done", "p50 latency (ms)", "p99 latency (ms)"});
        const std::vector<std::pair<std::string, std::vector<double>*>>
            arms = {{"whole", &whole_lat}, {"chunked", &chunked_lat}};
        for (const auto& [name, lat] : arms) {
            ab.beginRow();
            ab.cell(name);
            ab.cell(static_cast<int64_t>(lat->size()));
            ab.cell(farm::RunLog::percentile(*lat, 50.0) * 1000.0, 3);
            ab.cell(farm::RunLog::percentile(*lat, 99.0) * 1000.0, 3);
        }
        std::printf("\n%s\n", ab.toText().c_str());

        const double whole_p99 =
            farm::RunLog::percentile(whole_lat, 99.0);
        const double chunked_p99 =
            farm::RunLog::percentile(chunked_lat, 99.0);
        chunk_pass = !chunked_lat.empty() && chunked_p99 < whole_p99;
        std::printf("chunked dispatch (gop=%d): %s - p99 %.3f ms vs "
                    "whole %.3f ms; boundary cost %+.3f dB PSNR, "
                    "%+.1f kbps\n",
                    chunking.chunk_frames, chunk_pass ? "PASS" : "FAIL",
                    chunked_p99 * 1000.0, whole_p99 * 1000.0, dpsnr,
                    dbitrate);
    }

    // --- Part 4: Zipf sustained load, cache on vs off (--zipf-s) ------
    bool zipf_pass = true;
    if (cli.has("zipf-s")) {
        const double s = cli.real("zipf-s", 1.1);
        const int zjobs = static_cast<int>(cli.num("zipf-jobs", 2000));
        const int zitems = static_cast<int>(cli.num("zipf-items", 48));
        const double load = cli.real("zipf-load", 1.2);
        const double min_gain = cli.real("min-p99-gain", 0.0);
        const auto catalog = makeZipfCatalog(zitems);

        farm::FarmOptions zbase = base;
        zbase.fault_rate = 0.0; // Clean A/B: no retry noise in either arm.
        farm::CacheOptions cache_opts;
        cache_opts.max_bytes =
            static_cast<size_t>(cli.num("cache-mb", 256)) << 20;
        auto memo = std::make_shared<farm::ResultCache>(cache_opts);

        // Calibrate fleet capacity: one drain with each catalog item
        // exactly once (serve off). Its mean measured service time sets
        // the arrival rate at `load` x capacity — and its encodes warm
        // the shared memo, so the arms below are wall-cheap while their
        // *simulated* schedules stay exactly what a cold run measures.
        size_t fleet_size = 0;
        double mean_svc = 0.0;
        {
            farm::FarmOptions options = zbase;
            options.workers = 0;
            options.shared_cache = memo;
            farm::Farm service(options);
            double at = 0.0;
            for (const auto& task : catalog) {
                farm::JobRequest req;
                req.task = task;
                req.submit_time = at;
                service.submit(req);
                at += 1e-4;
            }
            service.drain();
            fleet_size = service.fleet().size();
            size_t done = 0;
            for (const auto& r : service.log().records()) {
                if (r.state == farm::JobState::Done) {
                    mean_svc += r.actual_seconds;
                    ++done;
                }
            }
            VT_ASSERT(done > 0, "Zipf calibration drain completed nothing");
            mean_svc /= static_cast<double>(done);
        }
        const double rate =
            load * static_cast<double>(fleet_size) / mean_svc;
        const auto zstream =
            makeZipfStream(catalog, zjobs, s, rate, seed);

        const auto uncached =
            runZipfArm(zstream, zbase, memo, false,
                       farm::DispatchPolicy::Smart);
        const auto cached =
            runZipfArm(zstream, zbase, memo, true,
                       farm::DispatchPolicy::Smart);

        std::printf("\nzipf sustained load: %d jobs over %d items, "
                    "s=%.2f, rate %.0f jobs/sim-s (%.1fx capacity)\n\n",
                    zjobs, zitems, s, rate, load);
        Table ab({"arm", "completed", "shed", "jobs/sim-s",
                  "p50 (ms)", "p95 (ms)", "p99 (ms)", "hit rate"});
        const std::vector<std::pair<std::string, const ZipfArm*>> arms = {
            {"uncached", &uncached}, {"cached", &cached}};
        for (const auto& [name, arm] : arms) {
            ab.beginRow();
            ab.cell(name);
            ab.cell(static_cast<int64_t>(arm->metrics.completed));
            ab.cell(static_cast<int64_t>(arm->metrics.shed));
            ab.cell(arm->metrics.throughput, 1);
            ab.cell(arm->metrics.p50_latency * 1000.0, 3);
            ab.cell(arm->metrics.p95_latency * 1000.0, 3);
            ab.cell(arm->metrics.p99_latency * 1000.0, 3);
            ab.cell(formatPercent(arm->hit_fraction, 1));
        }
        std::printf("%s\n", ab.toText().c_str());

        const double p99_gain =
            uncached.metrics.p99_latency
            / std::max(cached.metrics.p99_latency, 1e-12);
        const double thr_gain =
            cached.metrics.throughput
            / std::max(uncached.metrics.throughput, 1e-12);
        const bool reconciled =
            cached.cache.lookups
                == cached.cache.hits + cached.cache.misses
            && cached.cache.bytes <= cache_opts.max_bytes;
        zipf_pass = reconciled && cached.hit_fraction > 0.0
                    && cached.metrics.completed
                           >= uncached.metrics.completed
                    && (min_gain <= 0.0
                        || (p99_gain >= min_gain && thr_gain >= 1.0));
        std::printf("cache A/B: %s - p99 gain x%.2f, throughput gain "
                    "x%.2f, hit rate %.1f%%, store %s (lookups %llu = "
                    "hits %llu + misses %llu, %.1f MiB retained)\n",
                    zipf_pass ? "PASS" : "FAIL", p99_gain, thr_gain,
                    cached.hit_fraction * 100.0,
                    reconciled ? "reconciled" : "INCONSISTENT",
                    static_cast<unsigned long long>(cached.cache.lookups),
                    static_cast<unsigned long long>(cached.cache.hits),
                    static_cast<unsigned long long>(cached.cache.misses),
                    static_cast<double>(cached.cache.bytes)
                        / (1024.0 * 1024.0));

        const std::string out_path = cli.str("out", "");
        if (!out_path.empty()) {
            std::FILE* f = std::fopen(out_path.c_str(), "w");
            if (f == nullptr) {
                std::printf("bench json NOT written (cannot open %s)\n",
                            out_path.c_str());
            } else {
                auto arm_json = [&](const char* name, const ZipfArm& a) {
                    std::fprintf(
                        f,
                        "  \"%s\": {\"completed\": %zu, \"shed\": %zu, "
                        "\"throughput_jobs_per_sim_s\": %.3f, "
                        "\"p50_ms\": %.4f, \"p95_ms\": %.4f, "
                        "\"p99_ms\": %.4f, \"hit_rate\": %.4f}",
                        name, a.metrics.completed, a.metrics.shed,
                        a.metrics.throughput,
                        a.metrics.p50_latency * 1000.0,
                        a.metrics.p95_latency * 1000.0,
                        a.metrics.p99_latency * 1000.0, a.hit_fraction);
                };
                std::fprintf(f,
                             "{\n  \"bench\": \"zipf_sustained_load\",\n"
                             "  \"jobs\": %d,\n  \"items\": %d,\n"
                             "  \"zipf_s\": %.3f,\n  \"load\": %.3f,\n"
                             "  \"rate_jobs_per_sim_s\": %.3f,\n"
                             "  \"fleet\": %zu,\n",
                             zjobs, zitems, s, load, rate, fleet_size);
                arm_json("uncached", uncached);
                std::fprintf(f, ",\n");
                arm_json("cached", cached);
                std::fprintf(f,
                             ",\n  \"p99_gain\": %.4f,\n"
                             "  \"throughput_gain\": %.4f,\n"
                             "  \"pass\": %s\n}\n",
                             p99_gain, thr_gain,
                             zipf_pass ? "true" : "false");
                std::fclose(f);
                std::printf("bench json: %s\n", out_path.c_str());
            }
        }

        // Optional knee sweep: where does each dispatch policy start
        // shedding, and what does the cache do to that knee?
        if (cli.has("zipf-knee")) {
            Table knee({"load", "policy", "arm", "completed", "shed",
                        "p99 (ms)"});
            for (const double l : {0.6, 0.9, 1.2, 1.5}) {
                const double r = l * static_cast<double>(fleet_size)
                                 / mean_svc;
                const auto ks =
                    makeZipfStream(catalog, zjobs, s, r, seed);
                for (const auto policy : {farm::DispatchPolicy::Smart,
                                          farm::DispatchPolicy::Random}) {
                    for (const bool serve : {false, true}) {
                        const auto arm =
                            runZipfArm(ks, zbase, memo, serve, policy);
                        knee.beginRow();
                        knee.cell(l, 1);
                        knee.cell(farm::toString(policy));
                        knee.cell(serve ? "cached" : "uncached");
                        knee.cell(static_cast<int64_t>(
                            arm.metrics.completed));
                        knee.cell(
                            static_cast<int64_t>(arm.metrics.shed));
                        knee.cell(arm.metrics.p99_latency * 1000.0, 3);
                    }
                }
            }
            std::printf("\nshed/latency knee per dispatch policy:\n%s\n",
                        knee.toText().c_str());
        }
    }

    return (all_identical && smart_wins && chunk_pass && zipf_pass) ? 0
                                                                    : 1;
}

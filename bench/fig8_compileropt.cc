/**
 * @file
 * Regenerates paper Figure 8: per-video speedup from the AutoFDO stand-in
 * (profile-guided code relayout) and the Graphite stand-in (loop
 * restructuring), averaged over transcoding-parameter combinations.
 */

#include <cstdio>

#include "bench/benchutil.h"
#include "common/table.h"
#include "core/studies.h"

int
main(int argc, char** argv)
{
    using namespace vtrans;
    Cli cli(argc, argv);
    setVerbose(!cli.has("quiet"));

    core::OptStudyOptions options;
    options.seconds = cli.real("seconds", 0.5);
    options.verbose = !cli.has("quiet");
    if (cli.has("video")) {
        options.videos = {cli.str("video", "")};
    }
    if (cli.has("combos")) {
        // More parameter combinations per video (closer to the paper's
        // 32) at proportional cost.
        options.crf_values = {11, 17, 23, 30};
        options.refs_values = {1, 3, 6, 12};
    }

    bench::banner("Figure 8: AutoFDO- and Graphite-style speedups");
    const auto results = core::optimizationStudy(options);

    Table t({"video", "AutoFDO speedup", "Graphite speedup",
             "baseline (ms)"});
    double fdo_sum = 0.0;
    double graphite_sum = 0.0;
    double fdo_max = 0.0;
    double graphite_max = 0.0;
    for (const auto& r : results) {
        t.beginRow();
        t.cell(r.video);
        t.cell(formatPercent(r.autofdo_speedup, 2));
        t.cell(formatPercent(r.graphite_speedup, 2));
        t.cell(r.baseline_seconds * 1000.0, 3);
        fdo_sum += r.autofdo_speedup;
        graphite_sum += r.graphite_speedup;
        fdo_max = std::max(fdo_max, r.autofdo_speedup);
        graphite_max = std::max(graphite_max, r.graphite_speedup);
    }
    t.beginRow();
    t.cell(std::string("AVERAGE"));
    t.cell(formatPercent(fdo_sum / results.size(), 2));
    t.cell(formatPercent(graphite_sum / results.size(), 2));
    t.cell(std::string(""));
    std::printf("%sCSV:\n%s", t.toText().c_str(), t.toCsv().c_str());

    std::printf("\nMaxima: AutoFDO %s, Graphite %s\n",
                formatPercent(fdo_max, 2).c_str(),
                formatPercent(graphite_max, 2).c_str());
    std::printf(
        "\nPaper Fig 8 reference: AutoFDO avg 4.66%% (max 5.2%%); "
        "Graphite avg 4.42%% (max 4.87%%). AutoFDO attacks i-cache "
        "misses and branch redirect bubbles; Graphite attacks d-cache "
        "misses.\n");
    return 0;
}

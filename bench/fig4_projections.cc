/**
 * @file
 * Regenerates paper Figure 4: projection A (PSNR vs bitrate, one line per
 * crf as refs varies — line length shows the benefit of refs) and
 * projection B (transcoding time vs refs per crf — the elbow of
 * diminishing returns).
 */

#include <cstdio>

#include "bench/benchutil.h"
#include "common/table.h"
#include "core/studies.h"

int
main(int argc, char** argv)
{
    using namespace vtrans;
    auto options = bench::parseBenchOptions(argc, argv);
    // Projections need few crf lines but the full refs axis.
    Cli cli(argc, argv);
    if (!cli.has("full") && !cli.has("coarse")) {
        options.crf_grid = {6, 16, 26, 36, 46};
    }

    bench::banner("Figure 4: projections A and B");
    core::SweepStats stats;
    const auto points = core::parallelCrfRefsSweep(options.crf_grid,
                                                   options.refs_grid,
                                                   options.study, &stats);

    std::printf("Projection A: quality (PSNR) vs file size (bitrate); "
                "one line per crf, points along refs\n\n");
    Table a({"crf", "refs", "bitrate (kbps)", "PSNR (dB)"});
    for (const auto& p : points) {
        a.beginRow();
        a.cell(static_cast<int64_t>(p.crf));
        a.cell(static_cast<int64_t>(p.refs));
        a.cell(p.run.bitrate_kbps, 1);
        a.cell(p.run.psnr, 2);
    }
    std::printf("%sCSV:\n%s", a.toText().c_str(), a.toCsv().c_str());

    // Line length of projection A per crf: bitrate range across refs.
    std::printf("\nLine lengths (bitrate range across refs; longer = "
                "more benefit from refs):\n");
    Table len({"crf", "max kbps", "min kbps", "range (kbps)",
               "range (%)"});
    for (int crf : options.crf_grid) {
        double lo = 1e18;
        double hi = 0.0;
        for (const auto& p : points) {
            if (p.crf == crf) {
                lo = std::min(lo, p.run.bitrate_kbps);
                hi = std::max(hi, p.run.bitrate_kbps);
            }
        }
        len.beginRow();
        len.cell(static_cast<int64_t>(crf));
        len.cell(hi, 1);
        len.cell(lo, 1);
        len.cell(hi - lo, 2);
        len.cell((hi - lo) / hi * 100.0, 2);
    }
    std::printf("%s", len.toText().c_str());

    std::printf("\nProjection B: transcoding time vs refs, per crf\n\n");
    Table b({"crf", "refs", "time (ms)", "vs refs=1"});
    for (int crf : options.crf_grid) {
        double base = 0.0;
        for (const auto& p : points) {
            if (p.crf != crf) {
                continue;
            }
            if (base == 0.0) {
                base = p.run.transcode_seconds;
            }
            b.beginRow();
            b.cell(static_cast<int64_t>(crf));
            b.cell(static_cast<int64_t>(p.refs));
            b.cell(p.run.transcode_seconds * 1000.0, 3);
            b.cell("x" + formatDouble(p.run.transcode_seconds / base, 3));
        }
    }
    std::printf("%sCSV:\n%s", b.toText().c_str(), b.toCsv().c_str());

    bench::sweepReport(stats);
    bench::observabilityReport(options);
    std::printf(
        "\nPaper Fig 4 expectation: low crf lines are longer (low crf "
        "benefits more from refs); time grows with refs with an elbow "
        "of diminishing returns; high crf flattens the time line.\n");
    return 0;
}

/**
 * @file
 * Regenerates paper Figure 5 (a-h): heatmaps over the crf x refs grid of
 * (a) branch MPKI, (b-d) L1/L2/L3 data-cache MPKI, and (e-h) resource
 * stalls per kilo-instruction (any / ROB / RS / SB).
 */

#include <cstdio>
#include <functional>

#include "bench/benchutil.h"
#include "common/heatmap.h"
#include "core/studies.h"

int
main(int argc, char** argv)
{
    using namespace vtrans;
    const auto options = bench::parseBenchOptions(argc, argv);

    bench::banner(
        "Figure 5: microarchitectural event rates over crf x refs");
    std::printf("video=%s, %zu x %zu grid, %.2fs clips, %d job(s)\n",
                options.study.video.c_str(), options.crf_grid.size(),
                options.refs_grid.size(), options.study.seconds,
                core::resolveJobs(options.study.jobs));

    core::SweepStats stats;
    const auto points = core::parallelCrfRefsSweep(options.crf_grid,
                                                   options.refs_grid,
                                                   options.study, &stats);

    std::vector<std::string> rows;
    for (int crf : options.crf_grid) {
        rows.push_back("crf" + std::to_string(crf));
    }
    std::vector<std::string> cols;
    for (int refs : options.refs_grid) {
        cols.push_back(std::to_string(refs));
    }

    struct Panel
    {
        const char* title;
        std::function<double(const uarch::CoreStats&)> value;
    };
    const Panel panels[] = {
        {"(a) Branch MPKI",
         [](const uarch::CoreStats& s) { return s.branchMpki(); }},
        {"(b) L1d MPKI",
         [](const uarch::CoreStats& s) { return s.l1dMpki(); }},
        {"(c) L2 MPKI",
         [](const uarch::CoreStats& s) { return s.l2Mpki(); }},
        {"(d) L3 MPKI",
         [](const uarch::CoreStats& s) { return s.l3Mpki(); }},
        {"(e) Resource stalls - Any (cycles/KI)",
         [](const uarch::CoreStats& s) {
             return s.anyResourceStallsPki();
         }},
        {"(f) Resource stalls - ROB (cycles/KI)",
         [](const uarch::CoreStats& s) { return s.robStallsPki(); }},
        {"(g) Resource stalls - RS (cycles/KI)",
         [](const uarch::CoreStats& s) { return s.rsStallsPki(); }},
        {"(h) Resource stalls - SB (cycles/KI)",
         [](const uarch::CoreStats& s) { return s.sbStallsPki(); }},
    };

    for (const auto& panel : panels) {
        Heatmap hm(panel.title, rows, cols);
        size_t i = 0;
        for (size_t r = 0; r < rows.size(); ++r) {
            for (size_t c = 0; c < cols.size(); ++c) {
                hm.set(r, c, panel.value(points[i++].run.core));
            }
        }
        std::printf("\n%s\nCSV:\n%s", hm.render().c_str(),
                    hm.toCsv().c_str());
    }

    bench::sweepReport(stats);
    bench::observabilityReport(options);
    std::printf(
        "\nPaper Fig 5 expectation: branch MPKI decreases as crf/refs "
        "increase; data-cache MPKI and ROB/RS stalls deteriorate "
        "(increase); SB stalls increase with crf but decrease with "
        "refs (better compression -> fewer stores).\n");
    return 0;
}

/**
 * @file
 * Kernel-strategies microbenchmark: ns/call for every hot codec kernel
 * (SAD, SATD, forward/inverse DCT, quant/dequant, bilinear MC, average)
 * under every available backend (scalar, sse41, avx2), on deterministic
 * pseudo-random pixel data walked through an out-of-L1 synthetic plane.
 *
 *   ./build/bench/microbench_kernels [--calls 200000] [--reps 5]
 *       [--min-speedup 0] [--out BENCH_kernels.json] [--smoke] [--quiet]
 *
 * Every backend's checksum over the full run is compared against the
 * scalar reference — a cheap always-on exactness check riding along with
 * the timing (the exhaustive differential suite is tests/test_kernels.cc).
 *
 * --min-speedup gates the *best* vector backend's speedup on the ME cost
 * kernels (sad16x16, satd4x4) — the kernels the paper's hotspot profile
 * is dominated by; tools/check.sh runs this gate at 2.0 on Release
 * builds. The other kernels are reported but not gated (the 4x4
 * transforms are too small to promise a fixed margin on every host).
 *
 * --smoke additionally runs one instrumented transcode per backend and
 * requires bit-identical bitstream bytes and result fingerprints —
 * end-to-end proof that backend selection never changes results.
 *
 * Exits non-zero on any checksum mismatch, smoke mismatch, or gate miss.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "codec/strategies/strategies.h"
#include "codec/tables.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/workload.h"
#include "farm/runlog.h"

namespace {

using namespace vtrans;
using codec::KernelOps;
using Clock = std::chrono::steady_clock;

/** Synthetic plane geometry: big enough that block walks stream through
 *  L2 rather than staying L1-resident, like real motion search. */
constexpr int kPlaneW = 1024;
constexpr int kPlaneH = 320;
constexpr int kPositions = 4096;

struct TestData
{
    std::vector<uint8_t> cur;  ///< "Current frame" plane.
    std::vector<uint8_t> ref;  ///< "Reference frame" plane.
    std::vector<int> pos;      ///< Interior (x, y) pairs, flattened.
    std::vector<int16_t> blocks; ///< 4x4 coefficient blocks (x 512).
    std::vector<uint8_t> dst;  ///< 16x16 output tile + average buffers.

    TestData()
    {
        Rng rng(0x5eed5ca1e5ull);
        cur.resize(static_cast<size_t>(kPlaneW) * kPlaneH);
        ref.resize(cur.size());
        for (size_t i = 0; i < cur.size(); ++i) {
            cur[i] = static_cast<uint8_t>(rng.next());
            // Reference correlates with current (noise around it) so SAD
            // magnitudes look like motion search, not white noise.
            ref[i] = static_cast<uint8_t>(
                cur[i] + static_cast<uint8_t>(rng.below(32)) - 16);
        }
        pos.reserve(2 * kPositions);
        for (int i = 0; i < kPositions; ++i) {
            // Interior with a 17-pixel margin: valid for 16-wide loads
            // plus the bilinear +1 column/row.
            pos.push_back(static_cast<int>(rng.below(kPlaneW - 18)));
            pos.push_back(static_cast<int>(rng.below(kPlaneH - 18)));
        }
        blocks.resize(512 * 16);
        for (auto& v : blocks) {
            // Residual-scaled coefficients (9-bit range, both signs).
            v = static_cast<int16_t>(rng.range(-255, 255));
        }
        dst.resize(1024);
    }
};

/** One backend's timing of one kernel. */
struct Timing
{
    std::string isa;
    double ns_per_call = 0.0;
    uint64_t checksum = 0;
    double speedup = 1.0; ///< scalar ns / this ns.
};

struct KernelReport
{
    std::string name;
    uint64_t calls = 0;
    bool exact = true; ///< All backends matched the scalar checksum.
    std::vector<Timing> timings;

    /** Best vector-backend speedup (1.0 when only scalar exists). */
    double
    bestSpeedup() const
    {
        double best = timings.size() > 1 ? 0.0 : 1.0;
        for (size_t i = 1; i < timings.size(); ++i) {
            best = std::max(best, timings[i].speedup);
        }
        return best;
    }
};

/** Times `body(ops)` best-of-reps per backend; body returns a checksum. */
template <typename Body>
KernelReport
measure(const std::string& name, uint64_t calls, int reps,
        const std::vector<std::pair<std::string, const KernelOps*>>& backends,
        bool quiet, Body body)
{
    KernelReport report;
    report.name = name;
    report.calls = calls;
    for (const auto& [isa, ops] : backends) {
        Timing t;
        t.isa = isa;
        double best = 1e100;
        for (int rep = 0; rep < reps; ++rep) {
            const auto t0 = Clock::now();
            t.checksum = body(*ops);
            const double secs =
                std::chrono::duration<double>(Clock::now() - t0).count();
            best = std::min(best, secs);
        }
        t.ns_per_call = best * 1e9 / static_cast<double>(calls);
        if (!report.timings.empty()) {
            t.speedup = report.timings.front().ns_per_call / t.ns_per_call;
            if (t.checksum != report.timings.front().checksum) {
                std::fprintf(stderr,
                             "EXACTNESS FAIL [%s] %s checksum %llx != "
                             "scalar %llx\n",
                             name.c_str(), isa.c_str(),
                             static_cast<unsigned long long>(t.checksum),
                             static_cast<unsigned long long>(
                                 report.timings.front().checksum));
                report.exact = false;
            }
        }
        if (!quiet) {
            std::printf("%-12s %-7s %8.1f ns/call   x%.2f\n", name.c_str(),
                        isa.c_str(), t.ns_per_call, t.speedup);
        }
        report.timings.push_back(std::move(t));
    }
    return report;
}

/**
 * One instrumented transcode per backend; bitstream bytes and result
 * fingerprints must be bit-identical across all of them.
 */
bool
smokeIdentity(bool quiet)
{
    core::RunConfig config;
    config.video = "funny";
    config.seconds = 0.4;
    config.keep_output = true;
    core::mezzanine(config.video, config.seconds); // Warm the cache.

    bool ok = true;
    std::vector<uint8_t> ref_output;
    uint64_t ref_print = 0;
    std::string ref_isa;
    for (const auto& isa : codec::availableKernelIsas()) {
        VT_ASSERT(codec::setKernelIsa(isa), "advertised ISA must select");
        const core::RunResult result = core::runInstrumented(config);
        const uint64_t print = farm::fingerprint(result);
        if (ref_isa.empty()) {
            ref_isa = isa;
            ref_output = result.output;
            ref_print = print;
        } else if (result.output != ref_output || print != ref_print) {
            std::fprintf(stderr,
                         "SMOKE FAIL: %s transcode differs from %s "
                         "(fingerprint %llx vs %llx)\n",
                         isa.c_str(), ref_isa.c_str(),
                         static_cast<unsigned long long>(print),
                         static_cast<unsigned long long>(ref_print));
            ok = false;
        }
        if (!quiet) {
            std::printf("smoke %-7s fingerprint %016llx  (%zu bytes)\n",
                        isa.c_str(),
                        static_cast<unsigned long long>(print),
                        result.output.size());
        }
    }
    codec::setKernelIsa("auto");
    return ok;
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    setVerbose(false);
    const uint64_t calls = static_cast<uint64_t>(cli.num("calls", 200000));
    const int reps = static_cast<int>(cli.num("reps", 5));
    const double min_speedup = cli.real("min-speedup", 0.0);
    const std::string out = cli.str("out", "");
    const bool smoke = cli.has("smoke");
    const bool quiet = cli.has("quiet");

    std::vector<std::pair<std::string, const KernelOps*>> backends;
    backends.emplace_back("scalar", &codec::scalarKernels());
    if (const KernelOps* sse41 = codec::sse41Kernels()) {
        backends.emplace_back(sse41->name, sse41);
    }
    if (const KernelOps* avx2 = codec::avx2Kernels()) {
        backends.emplace_back(avx2->name, avx2);
    }

    TestData data;
    const uint8_t* cur = data.cur.data();
    const uint8_t* ref = data.ref.data();
    const int* pos = data.pos.data();
    const int16_t* blocks = data.blocks.data();
    uint8_t* dst = data.dst.data();
    const int32_t* mf = codec::quantMfRow(26);
    const int32_t* dv = codec::dequantVRow(26);
    const int shift = codec::quantShift(26);
    const int32_t f = (1 << shift) / 3;

    auto at = [&](const uint8_t* plane, uint64_t i) {
        const int x = pos[(i % kPositions) * 2];
        const int y = pos[(i % kPositions) * 2 + 1];
        return plane + static_cast<size_t>(y) * kPlaneW + x;
    };

    std::vector<KernelReport> reports;
    reports.push_back(measure(
        "sad16x16", calls, reps, backends, quiet, [&](const KernelOps& k) {
            uint64_t sum = 0;
            for (uint64_t i = 0; i < calls; ++i) {
                sum += static_cast<uint64_t>(k.sad_rows(
                    at(cur, i), kPlaneW, at(ref, i * 7 + 1), kPlaneW, 16,
                    16));
            }
            return sum;
        }));
    reports.push_back(measure(
        "sad8x8", calls, reps, backends, quiet, [&](const KernelOps& k) {
            uint64_t sum = 0;
            for (uint64_t i = 0; i < calls; ++i) {
                sum += static_cast<uint64_t>(k.sad_rows(
                    at(cur, i), kPlaneW, at(ref, i * 7 + 1), kPlaneW, 8, 8));
            }
            return sum;
        }));
    reports.push_back(measure(
        "satd4x4", calls, reps, backends, quiet, [&](const KernelOps& k) {
            uint64_t sum = 0;
            for (uint64_t i = 0; i < calls; ++i) {
                sum += static_cast<uint64_t>(k.satd4x4(
                    at(cur, i), kPlaneW, at(ref, i * 7 + 1), kPlaneW));
            }
            return sum;
        }));
    reports.push_back(measure(
        "fdct4x4", calls, reps, backends, quiet, [&](const KernelOps& k) {
            uint64_t sum = 0;
            int16_t tmp[16];
            for (uint64_t i = 0; i < calls; ++i) {
                std::memcpy(tmp, blocks + (i % 512) * 16, sizeof(tmp));
                k.forward_dct4x4(tmp);
                sum += static_cast<uint16_t>(tmp[i % 16]);
            }
            return sum;
        }));
    reports.push_back(measure(
        "idct4x4", calls, reps, backends, quiet, [&](const KernelOps& k) {
            uint64_t sum = 0;
            int16_t tmp[16];
            for (uint64_t i = 0; i < calls; ++i) {
                std::memcpy(tmp, blocks + (i % 512) * 16, sizeof(tmp));
                k.inverse_dct4x4(tmp);
                sum += static_cast<uint16_t>(tmp[i % 16]);
            }
            return sum;
        }));
    reports.push_back(measure(
        "quant4x4", calls, reps, backends, quiet, [&](const KernelOps& k) {
            uint64_t sum = 0;
            int16_t tmp[16];
            for (uint64_t i = 0; i < calls; ++i) {
                std::memcpy(tmp, blocks + (i % 512) * 16, sizeof(tmp));
                sum += static_cast<uint64_t>(k.quantize4x4(tmp, mf, f,
                                                           shift));
                sum += static_cast<uint16_t>(tmp[i % 16]);
            }
            return sum;
        }));
    reports.push_back(measure(
        "dequant4x4", calls, reps, backends, quiet, [&](const KernelOps& k) {
            uint64_t sum = 0;
            int16_t tmp[16];
            for (uint64_t i = 0; i < calls; ++i) {
                std::memcpy(tmp, blocks + (i % 512) * 16, sizeof(tmp));
                k.dequantize4x4(tmp, dv, 26 / 6);
                sum += static_cast<uint16_t>(tmp[i % 16]);
            }
            return sum;
        }));
    reports.push_back(measure(
        "mc16x16", calls, reps, backends, quiet, [&](const KernelOps& k) {
            uint64_t sum = 0;
            for (uint64_t i = 0; i < calls; ++i) {
                k.mc_bilinear(dst, 16, at(ref, i), kPlaneW, 16, 16,
                              1 + static_cast<int>(i % 3),
                              1 + static_cast<int>((i >> 2) % 3));
                sum += dst[i % 256];
            }
            return sum;
        }));
    reports.push_back(measure(
        "average256", calls, reps, backends, quiet, [&](const KernelOps& k) {
            uint64_t sum = 0;
            for (uint64_t i = 0; i < calls; ++i) {
                k.average(dst, at(cur, i), at(ref, i * 3 + 1), 256);
                sum += dst[i % 256];
            }
            return sum;
        }));

    bool exact = true;
    for (const auto& r : reports) {
        exact = exact && r.exact;
    }

    // --- Gate: best vector backend on the ME cost kernels.
    const std::vector<std::string> gated{"sad16x16", "satd4x4"};
    bool gate_pass = true;
    if (min_speedup > 0.0 && backends.size() > 1) {
        for (const auto& r : reports) {
            if (std::find(gated.begin(), gated.end(), r.name)
                == gated.end()) {
                continue;
            }
            if (r.bestSpeedup() < min_speedup) {
                std::fprintf(stderr,
                             "SPEEDUP FAIL: %s best x%.2f < required "
                             "x%.2f\n",
                             r.name.c_str(), r.bestSpeedup(), min_speedup);
                gate_pass = false;
            }
        }
    } else if (min_speedup > 0.0 && !quiet) {
        std::printf("gate skipped: no vector backend on this host\n");
    }

    bool smoke_ok = true;
    if (smoke) {
        smoke_ok = smokeIdentity(quiet);
    }

    std::printf("\nbackends: %zu, exactness %s%s\n", backends.size(),
                exact ? "OK (all backends bit-identical)" : "FAILED",
                smoke ? (smoke_ok ? ", smoke identical" : ", smoke FAILED")
                      : "");

    // --- Machine-readable report (BENCH_kernels.json).
    if (!out.empty()) {
        FILE* fp = std::fopen(out.c_str(), "w");
        if (fp == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", out.c_str());
            return 1;
        }
        std::fprintf(fp, "{\n  \"bench\": \"microbench_kernels\",\n");
        std::fprintf(fp, "  \"calls_per_kernel\": %llu,\n",
                     static_cast<unsigned long long>(calls));
        std::fprintf(fp, "  \"reps\": %d,\n", reps);
        std::fprintf(fp, "  \"isas\": [");
        for (size_t i = 0; i < backends.size(); ++i) {
            std::fprintf(fp, "\"%s\"%s", backends[i].first.c_str(),
                         i + 1 < backends.size() ? ", " : "");
        }
        std::fprintf(fp, "],\n");
        std::fprintf(fp, "  \"exact\": %s,\n", exact ? "true" : "false");
        if (smoke) {
            std::fprintf(fp, "  \"smoke_identical\": %s,\n",
                         smoke_ok ? "true" : "false");
        }
        std::fprintf(fp, "  \"kernels\": [\n");
        for (size_t i = 0; i < reports.size(); ++i) {
            const auto& r = reports[i];
            std::fprintf(fp, "    {\"kernel\": \"%s\", \"timings\": [",
                         r.name.c_str());
            for (size_t j = 0; j < r.timings.size(); ++j) {
                const auto& t = r.timings[j];
                std::fprintf(fp,
                             "{\"isa\": \"%s\", \"ns_per_call\": %.1f, "
                             "\"speedup\": %.2f}%s",
                             t.isa.c_str(), t.ns_per_call, t.speedup,
                             j + 1 < r.timings.size() ? ", " : "");
            }
            std::fprintf(fp, "]}%s\n", i + 1 < reports.size() ? "," : "");
        }
        std::fprintf(fp, "  ],\n");
        std::fprintf(fp,
                     "  \"gate\": {\"min_speedup\": %.2f, \"kernels\": "
                     "[\"sad16x16\", \"satd4x4\"], \"pass\": %s}\n",
                     min_speedup, gate_pass ? "true" : "false");
        std::fprintf(fp, "}\n");
        std::fclose(fp);
        std::printf("report: %s\n", out.c_str());
    }

    return exact && gate_pass && smoke_ok ? 0 : 1;
}

/**
 * @file
 * google-benchmark microbenchmarks of the hot kernels underneath every
 * experiment: pixel costs (SAD/SATD), the 4x4 transform pipeline, trellis
 * quantization, motion-estimation searches, the cache/branch-predictor
 * models, and end-to-end encode throughput. Useful for spotting native
 * performance regressions of the harness itself.
 */

#include <benchmark/benchmark.h>

#include "codec/dct.h"
#include "codec/encoder.h"
#include "codec/me.h"
#include "codec/pixel.h"
#include "codec/trellis.h"
#include "common/rng.h"
#include "trace/probe.h"
#include "uarch/branch.h"
#include "uarch/cache.h"
#include "video/generate.h"
#include "video/vbench.h"

namespace {

using namespace vtrans;

video::Frame
texturedFrame(int w, int h, uint64_t seed)
{
    video::Frame f(w, h);
    Rng rng(seed);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            f.at(video::Plane::Y, x, y) =
                static_cast<uint8_t>(rng.below(256));
        }
    }
    return f;
}

void
BM_Sad16x16(benchmark::State& state)
{
    const auto cur = texturedFrame(128, 128, 1);
    const auto ref = texturedFrame(128, 128, 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(codec::sadBlock(
            cur, 32, 32, ref, 34, 30, 16, 16, INT32_MAX));
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_Sad16x16);

void
BM_Satd4x4(benchmark::State& state)
{
    const auto cur = texturedFrame(64, 64, 3);
    uint8_t pred[16] = {};
    for (auto _ : state) {
        benchmark::DoNotOptimize(codec::satd4x4(
            cur, 16, 16, pred, 4,
            static_cast<uint64_t>(codec::Scratch::Pred)));
    }
}
BENCHMARK(BM_Satd4x4);

void
BM_DctQuantRoundtrip(benchmark::State& state)
{
    const int qp = static_cast<int>(state.range(0));
    Rng rng(4);
    int16_t blk[16];
    for (auto _ : state) {
        for (int i = 0; i < 16; ++i) {
            blk[i] = static_cast<int16_t>(rng.range(-80, 80));
        }
        codec::forwardDct4x4(blk);
        codec::quantize4x4(blk, qp, false);
        codec::dequantize4x4(blk, qp);
        codec::inverseDct4x4(blk);
        benchmark::DoNotOptimize(blk[0]);
    }
}
BENCHMARK(BM_DctQuantRoundtrip)->Arg(10)->Arg(30)->Arg(50);

void
BM_TrellisQuant(benchmark::State& state)
{
    Rng rng(5);
    int16_t blk[16];
    for (auto _ : state) {
        for (int i = 0; i < 16; ++i) {
            blk[i] = static_cast<int16_t>(rng.range(-80, 80));
        }
        codec::forwardDct4x4(blk);
        benchmark::DoNotOptimize(
            codec::trellisQuantize4x4(blk, 26, false, 64));
    }
}
BENCHMARK(BM_TrellisQuant);

void
BM_MotionSearch(benchmark::State& state)
{
    const auto method = static_cast<codec::MeMethod>(state.range(0));
    const auto cur = texturedFrame(128, 128, 6);
    const auto ref = texturedFrame(128, 128, 7);
    std::vector<const video::Frame*> refs{&ref};
    codec::MeContext ctx;
    ctx.cur = &cur;
    ctx.refs = &refs;
    ctx.method = method;
    ctx.merange = 16;
    ctx.subme = 4;
    ctx.lambda_fp = 32;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            codec::searchAllRefs(ctx, 48, 48, 16, 16, codec::Mv{}));
    }
}
BENCHMARK(BM_MotionSearch)
    ->Arg(static_cast<int>(codec::MeMethod::Dia))
    ->Arg(static_cast<int>(codec::MeMethod::Hex))
    ->Arg(static_cast<int>(codec::MeMethod::Umh))
    ->Arg(static_cast<int>(codec::MeMethod::Esa));

void
BM_CacheAccess(benchmark::State& state)
{
    uarch::Cache cache("bench", {32 * 1024, 8, 64});
    Rng rng(8);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(rng.below(1 << 20)));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_TagePredict(benchmark::State& state)
{
    uarch::TagePredictor tage;
    Rng rng(9);
    uint64_t pc = 0x400000;
    for (auto _ : state) {
        const bool taken = rng.chance(0.6);
        benchmark::DoNotOptimize(tage.predict(pc));
        tage.update(pc, taken);
        pc = 0x400000 + (pc + 64) % 4096;
    }
}
BENCHMARK(BM_TagePredict);

void
BM_EncodeNative(benchmark::State& state)
{
    video::VideoSpec spec = video::findVideo("cricket");
    spec.seconds = 0.2;
    const auto frames = video::generateVideo(spec);
    codec::EncoderParams params = codec::presetParams("medium");
    for (auto _ : state) {
        codec::Encoder enc(params, spec.fps);
        benchmark::DoNotOptimize(enc.encode(frames));
    }
    state.SetItemsProcessed(state.iterations() * frames.size());
}
BENCHMARK(BM_EncodeNative)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * Probe-pipeline microbenchmark: events/sec through the probe bus for the
 * per-event virtual-dispatch path vs the batched ProbeEvent pipeline, over
 * three consumers of increasing weight —
 *
 *   count  a trivial counting sink (pure pipeline dispatch cost),
 *   model  uarch::CoreModel (the common instrumented-run configuration),
 *   tee    TeeSink{CoreModel, HotspotProfiler} (the --hotspots path),
 *
 * on a deterministic synthetic event stream shaped like the codec's hot
 * kernels (macroblock row: block, loads, dependent block, store, early-exit
 * branch, loop branch). Every mode's CoreStats (and profiler totals) are
 * asserted bit-identical to the per-event baseline — the batch pipeline is
 * an optimization, never a semantic change.
 *
 *   ./build/bench/microbench_probe [--events 4000000] [--reps 3]
 *       [--stream block|branch|mem|mixed] [--min-speedup 1.0]
 *       [--min-model-speedup 0] [--attr-overhead 0]
 *       [--out BENCH_probe.json] [--e2e] [--e2e-seconds 0.12] [--quiet]
 *
 * --stream selects the synthetic mix: `block` (pure basic-block
 * retirement — the dispatch fast-forward), `branch` (predictor-bound),
 * `mem` (loads/stores — caches, MSHR, store buffer), or the default
 * codec-shaped `mixed`. --e2e additionally A/Bs two real workloads end
 * to end (per-event vs the default batch capacity), checking fingerprint
 * identity and reporting wall clocks: the fig3 crf x refs sweep on 1
 * worker, and a farm drain. --min-model-speedup R (0 = off) runs the
 * model sink's event-driven fast-forward against the retained
 * instruction-stepped reference path in the same binary, asserts their
 * CoreStats are bit-identical, and fails below R x. --attr-overhead R
 * (0 = off) measures the model sink at the default batch with per-site
 * attribution on vs off, asserts the CoreStats are identical
 * (attribution is pure accounting), and fails if the attributed run is
 * more than R x slower. --out writes the machine-readable
 * BENCH_probe.json consumed by tools/check.sh and quoted in README.md.
 *
 * Exits non-zero if any identity check fails, if the batched pipeline's
 * events/sec (count mode, default batch) falls below --min-speedup x the
 * per-event baseline, if attribution overhead exceeds --attr-overhead,
 * or if a consumer-bound mode (model/tee) comes out slower than
 * per-event beyond timing noise.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/status.h"
#include "core/parallel.h"
#include "core/studies.h"
#include "core/workload.h"
#include "farm/farm.h"
#include "farm/runlog.h"
#include "obs/hotspots.h"
#include "trace/probe.h"
#include "uarch/config.h"
#include "uarch/core.h"

namespace {

using namespace vtrans;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Counts events and nothing else: the pipeline's floor cost. */
class CountingSink : public trace::ProbeSink
{
  public:
    void onBlock(const trace::CodeSite&) override { ++events_; }
    void onBranch(const trace::CodeSite&, bool) override { ++events_; }
    void onLoad(uint64_t, uint32_t) override { ++events_; }
    void onStore(uint64_t, uint32_t) override { ++events_; }
    void
    onBatch(const trace::ProbeEvent* events, size_t count) override
    {
        // Fused block+branch records count as two events, matching the
        // per-event path's tally.
        for (size_t i = 0; i < count; ++i) {
            events_ += events[i].kind == trace::ProbeEvent::kBlockBranch
                           ? 2
                           : 1;
        }
    }
    uint64_t events() const { return events_; }

  private:
    uint64_t events_ = 0;
};

/** Probe calls emitted per emitStream() iteration (every stream kind). */
constexpr uint64_t kCallsPerIter = 8;

/** Which synthetic event mix to emit (--stream). */
enum class StreamKind
{
    Block,  ///< Pure basic-block retirement: the dispatch fast-forward.
    Branch, ///< Branch-dominated: the predictor hot path.
    Mem,    ///< Loads and stores: caches, MSHR, store buffer.
    Mixed,  ///< Codec-shaped mix of all of the above (the default).
};

const char*
streamName(StreamKind kind)
{
    switch (kind) {
      case StreamKind::Block:
        return "block";
      case StreamKind::Branch:
        return "branch";
      case StreamKind::Mem:
        return "mem";
      case StreamKind::Mixed:
        return "mixed";
    }
    return "mixed";
}

StreamKind
parseStream(const std::string& name)
{
    if (name == "block") {
        return StreamKind::Block;
    }
    if (name == "branch") {
        return StreamKind::Branch;
    }
    if (name == "mem") {
        return StreamKind::Mem;
    }
    if (name == "mixed") {
        return StreamKind::Mixed;
    }
    VT_FATAL("unknown --stream kind: ", name,
             " (known: block, branch, mem, mixed)");
}

/**
 * Emits `iters` iterations of a deterministic synthetic event stream,
 * kCallsPerIter probe calls each. `mixed` is the codec-shaped mix: an
 * ALU block, current+reference row loads, a load-dependent block, a
 * prediction store, a data-dependent early-exit branch, and a
 * mostly-taken loop branch, streaming through a 4 MiB frame with a
 * strided reference window so the cache model sees realistic hit/miss
 * behaviour. The single-flavour streams isolate one model subsystem
 * each (see StreamKind).
 */
void
emitStream(StreamKind kind, uint64_t iters)
{
    VT_SITE(site_alu, "mb.alu", 96, 12, Block);
    VT_SITE(site_dep, "mb.loaddep", 80, 10, BlockLoadDep);
    VT_SITE(site_early, "mb.early_exit", 12, 1, BranchLoadDep);
    VT_SITE(site_loop, "mb.loop", 12, 1, Branch);
    VT_SITE(site_blk2, "mb.blk2", 64, 7, Block);
    VT_SITE(site_blk3, "mb.blk3", 180, 19, Block);
    VT_SITE(site_br2, "mb.br2", 12, 1, Branch);

    constexpr uint64_t kCur = trace::SimArena::kHeapBase;
    constexpr uint64_t kRef = kCur + (4u << 20);
    constexpr uint64_t kDst = kRef + (4u << 20);
    constexpr uint64_t kFrameMask = (4u << 20) - 1;

    switch (kind) {
      case StreamKind::Block:
        // Retirement-dominated: a loop body of straight-line blocks.
        for (uint64_t i = 0; i < iters; ++i) {
            trace::block(site_alu);
            trace::block(site_blk2);
            trace::block(site_blk3);
            trace::block(site_alu);
            trace::block(site_blk2);
            trace::block(site_alu);
            trace::block(site_blk3);
            trace::block(site_alu);
        }
        return;
      case StreamKind::Branch:
        // Branch-dominated: learnable loop exits, a hard data-dependent
        // branch, and enough block work to keep dispatch moving.
        for (uint64_t i = 0; i < iters; ++i) {
            trace::block(site_alu);
            trace::branch(site_loop, (i & 7) != 7);
            trace::branch(site_br2, (i & 3) != 3);
            trace::branch(site_early,
                          ((i * 2654435761u) >> 27 & 31) == 0);
            trace::branch(site_loop, (i & 15) != 15);
            trace::branch(site_br2, ((i * 0x9e3779b9u) >> 28 & 7) < 3);
            trace::branch(site_loop, true);
            trace::branch(site_early, (i & 63) == 0);
        }
        return;
      case StreamKind::Mem:
        // Memory-dominated: streaming and strided loads plus a store
        // train, stressing the hierarchy, MSHR, and store buffer.
        for (uint64_t i = 0; i < iters; ++i) {
            const uint64_t row = (i * 64) & kFrameMask;
            const uint64_t ref = (i * 320 + ((i >> 4) * 8192)) & kFrameMask;
            trace::load(kCur + row, 16);
            trace::load(kRef + ref, 16);
            trace::load(kRef + ((ref + 4096) & kFrameMask), 16);
            trace::load(kCur + ((row + 64) & kFrameMask), 16);
            trace::load(kRef + ((ref + 64) & kFrameMask), 16);
            trace::store(kDst + row, 16);
            trace::store(kDst + ((row + 64) & kFrameMask), 16);
            trace::load(kRef + ((ref * 7) & kFrameMask), 16);
        }
        return;
      case StreamKind::Mixed:
        break;
    }
    for (uint64_t i = 0; i < iters; ++i) {
        const uint64_t row = (i * 64) & kFrameMask;
        const uint64_t ref = (i * 192 + ((i >> 5) * 4096)) & kFrameMask;
        trace::block(site_alu);
        trace::load(kCur + row, 16);
        trace::load(kRef + ref, 16);
        trace::block(site_dep);
        trace::load(kRef + ((ref + 64) & kFrameMask), 16);
        trace::store(kDst + row, 16);
        // Data-shaped direction: mispredicts at a realistic few-percent
        // rate. Deterministic, so every mode sees the same stream.
        trace::branch(site_early, ((i * 2654435761u) >> 27 & 31) == 0);
        trace::branch(site_loop, (i & 7) != 7);
    }
}

/** One measured configuration: sink flavour x batch capacity. */
struct Measurement
{
    std::string sink;   ///< "count" / "model" / "tee".
    uint32_t batch = 0; ///< 0 = per-event dispatch.
    double best_seconds = 0.0;
    double events_per_sec = 0.0;
    uarch::CoreStats stats;         ///< model/tee modes.
    uint64_t profiler_instr = 0;    ///< tee mode.
    uint64_t counted = 0;           ///< count mode.
};

Measurement
runMode(const std::string& sink_kind, uint32_t batch, uint64_t iters,
        int reps, bool attribute = false,
        StreamKind stream = StreamKind::Mixed, bool reference = false)
{
    Measurement m;
    m.sink = sink_kind;
    m.batch = batch;
    m.best_seconds = 1e100;
    for (int rep = 0; rep < reps; ++rep) {
        uarch::CoreParams params = uarch::baselineConfig();
        params.attribute_sites = attribute;
        params.reference_stepping = reference;
        uarch::CoreModel model(params);
        obs::HotspotProfiler profiler;
        trace::TeeSink tee({&model, &profiler});
        CountingSink counter;
        trace::ProbeSink* sink = &counter;
        if (sink_kind == "model") {
            sink = &model;
        } else if (sink_kind == "tee") {
            sink = &tee;
        }
        const auto t0 = Clock::now();
        trace::setSink(sink, batch);
        emitStream(stream, iters);
        trace::setSink(nullptr); // Flushes pending events.
        const double secs = secondsSince(t0);
        m.best_seconds = std::min(m.best_seconds, secs);
        if (rep == reps - 1) {
            // Stats are deterministic across reps; keep the last one.
            if (sink_kind != "count") {
                m.stats = model.finish();
            }
            m.profiler_instr = profiler.totalInstructions();
            m.counted = counter.events();
        }
    }
    m.events_per_sec =
        static_cast<double>(iters * kCallsPerIter) / m.best_seconds;
    return m;
}

/** Field-by-field CoreStats comparison; prints every mismatch. */
bool
statsIdentical(const uarch::CoreStats& a, const uarch::CoreStats& b,
               const std::string& label)
{
    bool ok = true;
    auto check = [&](const char* field, uint64_t x, uint64_t y) {
        if (x != y) {
            std::fprintf(stderr,
                         "IDENTITY FAIL [%s] %s: %llu != %llu\n",
                         label.c_str(), field,
                         static_cast<unsigned long long>(x),
                         static_cast<unsigned long long>(y));
            ok = false;
        }
    };
    check("instructions", a.instructions, b.instructions);
    check("cycles", a.cycles, b.cycles);
    check("branches", a.branches, b.branches);
    check("branch_mispredicts", a.branch_mispredicts,
          b.branch_mispredicts);
    check("l1d_accesses", a.l1d_accesses, b.l1d_accesses);
    check("l1d_misses", a.l1d_misses, b.l1d_misses);
    check("l2_misses", a.l2_misses, b.l2_misses);
    check("l3_misses", a.l3_misses, b.l3_misses);
    check("l1i_accesses", a.l1i_accesses, b.l1i_accesses);
    check("l1i_misses", a.l1i_misses, b.l1i_misses);
    check("itlb_misses", a.itlb_misses, b.itlb_misses);
    check("btb_misses", a.btb_misses, b.btb_misses);
    check("slots_total", a.slots_total, b.slots_total);
    check("slots_retiring", a.slots_retiring, b.slots_retiring);
    check("slots_frontend", a.slots_frontend, b.slots_frontend);
    check("slots_bad_spec", a.slots_bad_spec, b.slots_bad_spec);
    check("slots_backend_memory", a.slots_backend_memory,
          b.slots_backend_memory);
    check("slots_backend_core", a.slots_backend_core,
          b.slots_backend_core);
    check("slots_rob_stall", a.slots_rob_stall, b.slots_rob_stall);
    check("slots_rs_stall", a.slots_rs_stall, b.slots_rs_stall);
    check("slots_sb_stall", a.slots_sb_stall, b.slots_sb_stall);
    return ok;
}

/** End-to-end A/B of one workload: per-event vs batched wall clock. */
struct E2eResult
{
    double per_event_seconds = 0.0;
    double batched_seconds = 0.0;
    bool identical = false;

    double
    speedup() const
    {
        return batched_seconds > 0.0 ? per_event_seconds / batched_seconds
                                     : 0.0;
    }
};

/** The fig3 crf x refs sweep on 1 worker (trimmed grid). */
E2eResult
e2eSweep(double seconds, uint32_t batch)
{
    const std::vector<int> crf{1, 21, 41};
    const std::vector<int> refs{1, 4, 16};
    core::StudyOptions options;
    options.video = "funny";
    options.seconds = seconds;
    options.jobs = 1;
    options.verbose = false;
    core::mezzanine(options.video, options.seconds); // Warm, untimed.

    auto fingerprints = [&](uint32_t capacity) {
        trace::setDefaultBatchCapacity(capacity);
        const auto t0 = Clock::now();
        const auto points = core::parallelCrfRefsSweep(crf, refs, options);
        const double secs = secondsSince(t0);
        std::vector<uint64_t> prints;
        for (const auto& p : points) {
            prints.push_back(farm::fingerprint(p.run));
        }
        return std::make_pair(secs, prints);
    };
    const auto per_event = fingerprints(0);
    const auto batched = fingerprints(batch);

    E2eResult r;
    r.per_event_seconds = per_event.first;
    r.batched_seconds = batched.first;
    r.identical = per_event.second == batched.second;
    return r;
}

/** A farm drain (mixed job stream, 2 workers). */
E2eResult
e2eFarm(double seconds, uint32_t batch)
{
    const std::vector<sched::Task> catalog = {
        {"desktop", 30, 8, "veryfast"},
        {"cat", 23, 3, "fast"},
        {"game2", 15, 2, "medium"},
        {"bike", 20, 4, "fast"},
    };
    farm::FarmOptions options;
    options.workers = 2;
    options.clip_seconds = seconds;
    farm::Farm::warmupProcess();
    core::mezzanine(options.reference_video, options.clip_seconds);
    for (const auto& task : catalog) {
        core::mezzanine(task.video, options.clip_seconds);
    }

    auto drain = [&](uint32_t capacity) {
        trace::setDefaultBatchCapacity(capacity);
        farm::Farm service(options);
        for (int i = 0; i < 12; ++i) {
            farm::JobRequest req;
            req.task = catalog[i % catalog.size()];
            req.submit_time = 0.0001 * i;
            service.submit(req);
        }
        const auto t0 = Clock::now();
        service.drain();
        const double secs = secondsSince(t0);
        std::map<uint64_t, uint64_t> prints;
        for (const auto& rec : service.log().records()) {
            prints[rec.id] = rec.result_fingerprint;
        }
        return std::make_pair(secs, prints);
    };
    const auto per_event = drain(0);
    const auto batched = drain(batch);

    E2eResult r;
    r.per_event_seconds = per_event.first;
    r.batched_seconds = batched.first;
    r.identical = per_event.second == batched.second;
    return r;
}

} // namespace

void
printHelp(const char* prog)
{
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "Probe-pipeline microbenchmark: events/sec for per-event vs batched\n"
        "delivery over count/model/tee sinks, with bit-identity checks.\n"
        "\n"
        "  --events N            probe calls per rep (default 4000000)\n"
        "  --reps N              timed repetitions, best-of (default 3)\n"
        "  --stream KIND         synthetic event mix (default mixed):\n"
        "                          block   pure basic-block retirement\n"
        "                                  (dispatch fast-forward path)\n"
        "                          branch  branch-dominated (predictor)\n"
        "                          mem     loads/stores (caches, MSHR, SB)\n"
        "                          mixed   codec-shaped mix of all three\n"
        "  --min-speedup R       fail if count-sink batched/per-event < R\n"
        "  --min-model-speedup R fail if the model sink's event-driven\n"
        "                        fast-forward is < R x the retained\n"
        "                        instruction-stepped reference (also\n"
        "                        asserts their CoreStats are bit-identical)\n"
        "  --attr-overhead R     fail if per-site attribution costs > R x\n"
        "                        (0 = skip; also asserts identity)\n"
        "  --e2e                 A/B two real workloads end to end\n"
        "  --e2e-seconds S       clip length for --e2e (default 0.12)\n"
        "  --out FILE            write machine-readable BENCH_probe.json\n"
        "  --quiet               suppress the per-capacity sweep lines\n",
        prog);
}

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    setVerbose(false);
    if (cli.has("help")) {
        printHelp(cli.program().c_str());
        return 0;
    }
    const uint64_t events =
        static_cast<uint64_t>(cli.num("events", 4000000));
    const uint64_t iters = std::max<uint64_t>(events / kCallsPerIter, 1);
    const int reps = static_cast<int>(cli.num("reps", 3));
    const double min_speedup = cli.real("min-speedup", 1.0);
    const double min_model_speedup = cli.real("min-model-speedup", 0.0);
    const double attr_overhead = cli.real("attr-overhead", 0.0);
    const StreamKind stream = parseStream(cli.str("stream", "mixed"));
    const std::string out = cli.str("out", "");
    const bool e2e = cli.has("e2e");
    const double e2e_seconds = cli.real("e2e-seconds", 0.12);
    const bool quiet = cli.has("quiet");
    const uint32_t default_batch = trace::kDefaultProbeBatch;

    const std::vector<uint32_t> capacities{0, 16, 64, 256, 1024};
    const std::vector<std::string> sinks{"count", "model", "tee"};

    // Warm up: register the synthetic sites and fault in the buffers.
    runMode("count", 0, std::min<uint64_t>(iters, 10000), 1, false, stream);
    if (!quiet) {
        std::printf("stream: %s\n", streamName(stream));
    }

    std::vector<Measurement> sweep;
    std::map<std::string, Measurement> per_event;
    for (const auto& sink : sinks) {
        for (uint32_t batch : capacities) {
            Measurement m = runMode(sink, batch, iters, reps, false, stream);
            if (batch == 0) {
                per_event[sink] = m;
            }
            if (!quiet) {
                std::printf("%-6s batch %-5u  %8.1f M events/s%s\n",
                            sink.c_str(), batch,
                            m.events_per_sec / 1e6,
                            batch == 0 ? "  (per-event baseline)" : "");
            }
            sweep.push_back(std::move(m));
        }
    }

    // --- Identity: every batched mode must match its per-event baseline.
    bool identical = true;
    for (const auto& m : sweep) {
        if (m.batch == 0) {
            continue;
        }
        const Measurement& base = per_event[m.sink];
        if (m.sink == "count") {
            if (m.counted != base.counted) {
                std::fprintf(stderr,
                             "IDENTITY FAIL [count] %llu != %llu events\n",
                             static_cast<unsigned long long>(m.counted),
                             static_cast<unsigned long long>(base.counted));
                identical = false;
            }
        } else {
            const std::string label =
                m.sink + " batch " + std::to_string(m.batch);
            identical &= statsIdentical(m.stats, base.stats, label);
            if (m.sink == "tee" && m.profiler_instr != base.profiler_instr) {
                std::fprintf(stderr, "IDENTITY FAIL [tee] profiler %llu != "
                                     "%llu instructions\n",
                             static_cast<unsigned long long>(
                                 m.profiler_instr),
                             static_cast<unsigned long long>(
                                 base.profiler_instr));
                identical = false;
            }
        }
    }

    // --- Speedup at the shipped default capacity, per sink flavour.
    std::map<std::string, double> speedup;
    for (const auto& m : sweep) {
        if (m.batch == default_batch) {
            speedup[m.sink] =
                m.events_per_sec / per_event[m.sink].events_per_sec;
        }
    }
    std::printf("\nspeedup at batch %u (vs per-event): "
                "pipeline x%.2f, model x%.2f, tee x%.2f\n",
                default_batch, speedup["count"], speedup["model"],
                speedup["tee"]);
    std::printf("identity: %s\n", identical ? "OK (bit-identical)"
                                            : "FAILED");

    // --- Optional attribution-overhead gate: the model sink at the
    // default batch with per-site attribution off vs on. Attribution is
    // pure accounting, so the CoreStats must not change at all; the
    // wall-clock slowdown must stay under --attr-overhead.
    // --- Optional model-sink gate: the event-driven fast-forward vs the
    // retained instruction-stepped reference path, same stream, same
    // binary (so the ratio is machine-independent). The two must be
    // bit-identical; the fast-forward must be at least
    // --min-model-speedup x faster.
    double model_speedup_vs_reference = 0.0;
    if (min_model_speedup > 0.0) {
        const Measurement ref = runMode("model", default_batch, iters,
                                        reps, false, stream, true);
        const Measurement opt = runMode("model", default_batch, iters,
                                        reps, false, stream, false);
        model_speedup_vs_reference =
            opt.best_seconds > 0.0 ? ref.best_seconds / opt.best_seconds
                                   : 0.0;
        identical &= statsIdentical(opt.stats, ref.stats,
                                    "fast-forward vs reference stepping");
        std::printf("model fast-forward vs reference stepping: x%.2f "
                    "(required x%.2f)\n",
                    model_speedup_vs_reference, min_model_speedup);
    }

    double attr_slowdown = 0.0;
    if (attr_overhead > 0.0) {
        const Measurement off =
            runMode("model", default_batch, iters, reps, false, stream);
        const Measurement on =
            runMode("model", default_batch, iters, reps, true, stream);
        attr_slowdown = off.best_seconds > 0.0
                            ? on.best_seconds / off.best_seconds
                            : 0.0;
        identical &= statsIdentical(on.stats, off.stats,
                                    "attribution on vs off");
        std::printf("attribution overhead (model, batch %u): x%.3f "
                    "(limit x%.3f)\n",
                    default_batch, attr_slowdown, attr_overhead);
    }

    // --- Optional end-to-end A/B on real workloads.
    E2eResult sweep_e2e;
    E2eResult farm_e2e;
    if (e2e) {
        if (!quiet) {
            std::printf("\nend-to-end A/B (batch 0 vs %u)...\n",
                        default_batch);
        }
        sweep_e2e = e2eSweep(e2e_seconds, default_batch);
        farm_e2e = e2eFarm(e2e_seconds, default_batch);
        trace::setDefaultBatchCapacity(default_batch);
        std::printf("fig3 sweep --jobs 1: %.3fs per-event, %.3fs batched "
                    "(x%.2f, %s)\n",
                    sweep_e2e.per_event_seconds, sweep_e2e.batched_seconds,
                    sweep_e2e.speedup(),
                    sweep_e2e.identical ? "identical" : "MISMATCH");
        std::printf("farm drain:          %.3fs per-event, %.3fs batched "
                    "(x%.2f, %s)\n",
                    farm_e2e.per_event_seconds, farm_e2e.batched_seconds,
                    farm_e2e.speedup(),
                    farm_e2e.identical ? "identical" : "MISMATCH");
        identical = identical && sweep_e2e.identical && farm_e2e.identical;
    }

    // --- Machine-readable report (BENCH_probe.json).
    if (!out.empty()) {
        FILE* f = std::fopen(out.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", out.c_str());
            return 1;
        }
        std::fprintf(f, "{\n  \"bench\": \"microbench_probe\",\n");
        std::fprintf(f, "  \"stream\": \"%s\",\n", streamName(stream));
        std::fprintf(f, "  \"events_per_rep\": %llu,\n",
                     static_cast<unsigned long long>(iters * kCallsPerIter));
        std::fprintf(f, "  \"reps\": %d,\n", reps);
        std::fprintf(f, "  \"default_batch\": %u,\n", default_batch);
        std::fprintf(f, "  \"identical\": %s,\n",
                     identical ? "true" : "false");
        std::fprintf(f, "  \"sweep\": [\n");
        for (size_t i = 0; i < sweep.size(); ++i) {
            std::fprintf(f,
                         "    {\"sink\": \"%s\", \"batch\": %u, "
                         "\"events_per_sec\": %.0f}%s\n",
                         sweep[i].sink.c_str(), sweep[i].batch,
                         sweep[i].events_per_sec,
                         i + 1 < sweep.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        std::fprintf(f,
                     "  \"speedup_at_default\": {\"pipeline\": %.3f, "
                     "\"model\": %.3f, \"tee\": %.3f}",
                     speedup["count"], speedup["model"], speedup["tee"]);
        if (min_model_speedup > 0.0) {
            std::fprintf(f,
                         ",\n  \"model_speedup_vs_reference\": "
                         "{\"speedup\": %.3f, \"min_required\": %.3f}",
                         model_speedup_vs_reference, min_model_speedup);
        }
        if (attr_overhead > 0.0) {
            std::fprintf(f,
                         ",\n  \"attribution\": {\"slowdown\": %.3f, "
                         "\"max_allowed\": %.3f}",
                         attr_slowdown, attr_overhead);
        }
        if (e2e) {
            std::fprintf(
                f,
                ",\n  \"end_to_end\": {\n"
                "    \"fig3_heatmaps_jobs1\": {\"per_event_seconds\": %.4f, "
                "\"batched_seconds\": %.4f, \"speedup\": %.3f, "
                "\"identical\": %s},\n"
                "    \"farm_throughput\": {\"per_event_seconds\": %.4f, "
                "\"batched_seconds\": %.4f, \"speedup\": %.3f, "
                "\"identical\": %s}\n  }",
                sweep_e2e.per_event_seconds, sweep_e2e.batched_seconds,
                sweep_e2e.speedup(),
                sweep_e2e.identical ? "true" : "false",
                farm_e2e.per_event_seconds, farm_e2e.batched_seconds,
                farm_e2e.speedup(), farm_e2e.identical ? "true" : "false");
        }
        std::fprintf(f, "\n}\n");
        std::fclose(f);
        std::printf("report: %s\n", out.c_str());
    }

    if (!identical) {
        return 1;
    }
    if (min_model_speedup > 0.0
        && model_speedup_vs_reference < min_model_speedup) {
        std::fprintf(stderr,
                     "MODEL SPEEDUP FAIL: fast-forward x%.3f < required "
                     "x%.3f vs reference stepping\n",
                     model_speedup_vs_reference, min_model_speedup);
        return 1;
    }
    if (attr_overhead > 0.0 && attr_slowdown > attr_overhead) {
        std::fprintf(stderr,
                     "ATTRIBUTION OVERHEAD FAIL: x%.3f > allowed x%.3f\n",
                     attr_slowdown, attr_overhead);
        return 1;
    }
    for (const auto& [sink, x] : speedup) {
        // --min-speedup gates the pure pipeline (count). The consumer-
        // bound modes spend most of their time inside the consumer, so
        // their ratio sits near 1.0 and is noise-dominated: since the
        // model's event-driven fast-forward, single-vCPU CI jitter
        // swings the batch-256/per-event model ratio between ~0.78 and
        // ~1.13 run-to-run on the default mix. The floor here only
        // catches gross batching breakage; fine-grained delivery QA is
        // the count gate, --min-model-speedup, and the committed
        // end-to-end A/B. The isolation streams skip the floor — they
        // exist to measure the fast-forward ratio, and e.g. the
        // pure-block stream makes the model sink fast enough that
        // batching's per-event site-id registry lookup shows as a net
        // loss there by design.
        if (sink != "count" && stream != StreamKind::Mixed) {
            continue;
        }
        const double floor = sink == "count" ? min_speedup : 0.75;
        if (x < floor) {
            std::fprintf(stderr,
                         "SPEEDUP FAIL: %s x%.3f < required x%.3f\n",
                         sink.c_str(), x, floor);
            return 1;
        }
    }
    return 0;
}

/**
 * @file
 * Regenerates paper Figure 3: heatmaps of front-end, back-end, and bad
 * speculation bound pipeline slots (%) over the crf x refs grid.
 * Default: 88-point subsampled grid; --full runs all 816 combinations.
 */

#include <cstdio>
#include <functional>

#include "bench/benchutil.h"
#include "common/heatmap.h"
#include "core/studies.h"

int
main(int argc, char** argv)
{
    using namespace vtrans;
    const auto options = bench::parseBenchOptions(argc, argv);

    bench::banner("Figure 3: FE / BE / BS bound pipeline slots (%)");
    std::printf("video=%s, %zu x %zu grid, %.2fs clips, %d job(s)\n",
                options.study.video.c_str(), options.crf_grid.size(),
                options.refs_grid.size(), options.study.seconds,
                core::resolveJobs(options.study.jobs));

    core::SweepStats stats;
    const auto points = core::parallelCrfRefsSweep(options.crf_grid,
                                                   options.refs_grid,
                                                   options.study, &stats);

    std::vector<std::string> rows;
    for (int crf : options.crf_grid) {
        rows.push_back("crf" + std::to_string(crf));
    }
    std::vector<std::string> cols;
    for (int refs : options.refs_grid) {
        cols.push_back(std::to_string(refs));
    }

    struct Panel
    {
        const char* title;
        std::function<double(const core::RunResult&)> value;
    };
    const Panel panels[] = {
        {"(a) Front-end bound (%)",
         [](const core::RunResult& r) {
             return r.core.topdown().frontend * 100.0;
         }},
        {"(b) Back-end bound (%)",
         [](const core::RunResult& r) {
             return r.core.topdown().backend() * 100.0;
         }},
        {"(c) Bad speculation bound (%)",
         [](const core::RunResult& r) {
             return r.core.topdown().bad_speculation * 100.0;
         }},
    };

    for (const auto& panel : panels) {
        Heatmap hm(panel.title, rows, cols);
        size_t i = 0;
        for (size_t r = 0; r < rows.size(); ++r) {
            for (size_t c = 0; c < cols.size(); ++c) {
                hm.set(r, c, panel.value(points[i++].run));
            }
        }
        std::printf("\n%s\nCSV:\n%s", hm.render().c_str(),
                    hm.toCsv().c_str());
    }

    bench::sweepReport(stats);
    bench::observabilityReport(options);
    std::printf(
        "\nPaper Fig 3 expectation: increasing crf and refs reduces "
        "front-end and bad-speculation bound slots and increases "
        "back-end bound slots.\n");
    return 0;
}

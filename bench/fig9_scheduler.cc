/**
 * @file
 * Regenerates paper Figure 9 (and prints Table III): the Table III
 * transcoding tasks simulated on the Table IV configurations, comparing
 * the random, smart (one-to-one), and best schedulers.
 */

#include <cstdio>

#include "bench/benchutil.h"
#include "common/table.h"
#include "core/studies.h"

int
main(int argc, char** argv)
{
    using namespace vtrans;
    Cli cli(argc, argv);
    setVerbose(!cli.has("quiet"));
    const double seconds = cli.real("seconds", 1.0);

    bench::banner("Table III: transcoding tasks");
    {
        Table t({"Task#", "Video", "crf", "refs", "Preset"});
        int i = 1;
        for (const auto& task : sched::tableIIITasks()) {
            t.beginRow();
            t.cell(static_cast<int64_t>(i++));
            t.cell(task.video);
            t.cell(static_cast<int64_t>(task.crf));
            t.cell(static_cast<int64_t>(task.refs));
            t.cell(task.preset);
        }
        std::printf("%s", t.toText().c_str());
    }

    const auto result = core::schedulerStudy(seconds, !cli.has("quiet"));

    bench::banner("Simulated transcoding time per (task, configuration)");
    {
        std::vector<std::string> headers = {"task", "baseline (ms)"};
        for (const auto& n : result.config_names) {
            headers.push_back(n + " (ms)");
        }
        headers.push_back("smart ->");
        headers.push_back("best ->");
        Table t(headers);
        for (size_t i = 0; i < result.tasks.size(); ++i) {
            t.beginRow();
            t.cell(result.tasks[i].video);
            t.cell(result.baseline_seconds[i] * 1000.0, 4);
            for (double s : result.seconds[i]) {
                t.cell(s * 1000.0, 4);
            }
            t.cell(result.config_names[result.smart[i]]);
            t.cell(result.config_names[result.best[i]]);
        }
        std::printf("%sCSV:\n%s", t.toText().c_str(), t.toCsv().c_str());
    }

    bench::banner("Figure 9: scheduler speedup over the baseline uarch");
    {
        Table t({"scheduler", "speedup over baseline", "note"});
        t.beginRow();
        t.cell(std::string("random"));
        t.cell(formatPercent(result.randomSpeedup() - 1.0, 2));
        t.cell(std::string("mean over the four servers per task"));
        t.beginRow();
        t.cell(std::string("smart"));
        t.cell(formatPercent(result.smartSpeedup() - 1.0, 2));
        t.cell(std::string("one-to-one constraint"));
        t.beginRow();
        t.cell(std::string("best"));
        t.cell(formatPercent(result.bestSpeedup() - 1.0, 2));
        t.cell(std::string("per-task best, unconstrained"));
        std::printf("%s", t.toText().c_str());
    }

    const double smart_vs_random =
        result.smartSpeedup() / result.randomSpeedup() - 1.0;
    std::printf("\nsmart vs random: %s better; smart matches best on "
                "%d of %zu tasks (%.0f%%)\n",
                formatPercent(smart_vs_random, 2).c_str(),
                result.smartMatchesBest(), result.tasks.size(),
                100.0 * result.smartMatchesBest() / result.tasks.size());
    std::printf(
        "\nPaper Fig 9 reference: smart beats random by 3.72%% and "
        "matches the best scheduler 75%% of the time; note that two "
        "Table III tasks share the same best server here, capping "
        "matches at 3 of 4 under the one-to-one constraint.\n");
    return 0;
}

/**
 * @file
 * Codec ablation: the cost/benefit of each encoder feature on the
 * speed/quality/size triangle plus the microarchitectural profile —
 * trellis levels, adaptive quantization, deblocking, sub-pel depth,
 * partitions, and B-frames. The design-choice study behind the codec's
 * option surface.
 */

#include <cstdio>

#include "bench/benchutil.h"
#include "common/table.h"
#include "core/workload.h"
#include "uarch/config.h"

int
main(int argc, char** argv)
{
    using namespace vtrans;
    Cli cli(argc, argv);
    setVerbose(!cli.has("quiet"));

    const std::string video = cli.str("video", "cricket");
    const double seconds = cli.real("seconds", 1.0);

    bench::banner("Codec feature ablation (crf 23 on " + video + ")");

    Table t({"variant", "time (ms)", "kbps", "PSNR", "BS%", "BE%",
             "skip MBs", "i4 MBs"});

    auto measure = [&](const std::string& name,
                       const codec::EncoderParams& params) {
        core::RunConfig run;
        run.video = video;
        run.seconds = seconds;
        run.params = params;
        run.core = uarch::baselineConfig();
        const auto r = core::runInstrumented(run);
        const auto td = r.core.topdown();
        t.beginRow();
        t.cell(name);
        t.cell(r.transcode_seconds * 1000.0, 3);
        t.cell(r.bitrate_kbps, 1);
        t.cell(r.psnr, 2);
        t.cell(td.bad_speculation * 100.0, 2);
        t.cell(td.backend() * 100.0, 2);
        t.cell(static_cast<int64_t>(r.encode.mb_skip));
        t.cell(static_cast<int64_t>(r.encode.mb_intra4));
    };

    const codec::EncoderParams medium = codec::presetParams("medium");
    measure("medium (reference)", medium);

    {
        auto p = medium;
        p.trellis = 0;
        measure("trellis 0", p);
    }
    {
        auto p = medium;
        p.trellis = 2;
        measure("trellis 2", p);
    }
    {
        auto p = medium;
        p.aq_mode = 0;
        measure("no AQ", p);
    }
    {
        auto p = medium;
        p.deblock = false;
        measure("no deblock", p);
    }
    {
        auto p = medium;
        p.subme = 0;
        measure("subme 0 (full-pel)", p);
    }
    {
        auto p = medium;
        p.subme = 11;
        measure("subme 11", p);
    }
    {
        auto p = medium;
        p.partitions = {false, false, false};
        measure("no partitions", p);
    }
    {
        auto p = medium;
        p.bframes = 0;
        measure("no B-frames", p);
    }
    {
        auto p = medium;
        p.bframes = 8;
        p.b_adapt = 0;
        measure("8 B fixed", p);
    }
    {
        auto p = medium;
        p.scenecut = 0;
        measure("no scenecut", p);
    }
    {
        auto p = medium;
        p.me = codec::MeMethod::Esa;
        measure("esa search", p);
    }

    std::printf("%sCSV:\n%s", t.toText().c_str(), t.toCsv().c_str());
    std::printf(
        "\nReading guide: trellis and AQ trade encode time for rate "
        "(bits at equal quality); deblocking costs time and raises "
        "PSNR at low rates; sub-pel depth and partitions buy rate with "
        "ME time; B-frames buy rate with latency and reorder "
        "complexity.\n");
    return 0;
}

/**
 * @file
 * Regenerates paper Table II: the important encoder options of the ten
 * x264 presets as implemented by this codec.
 */

#include <cstdio>

#include "bench/benchutil.h"
#include "codec/params.h"
#include "common/table.h"

int
main(int argc, char** argv)
{
    using namespace vtrans;
    Cli cli(argc, argv);
    setVerbose(false);

    bench::banner("Table II: selection of important options per preset");

    Table t({"Option", "ultrafast", "superfast", "veryfast", "faster",
             "fast", "medium", "slow", "slower", "veryslow", "placebo"});

    auto row = [&](const std::string& name, auto getter) {
        t.beginRow();
        t.cell(name);
        for (const auto& preset : codec::presetNames()) {
            t.cell(getter(codec::presetParams(preset, true)));
        }
    };

    using P = codec::EncoderParams;
    row("aq-mode",
        [](const P& p) { return std::to_string(p.aq_mode); });
    row("b-adapt",
        [](const P& p) { return std::to_string(p.b_adapt); });
    row("bframes",
        [](const P& p) { return std::to_string(p.bframes); });
    row("deblock", [](const P& p) {
        return p.deblock ? "[" + std::to_string(p.deblock_alpha) + ":"
                               + std::to_string(p.deblock_beta) + "]"
                         : "off";
    });
    row("me", [](const P& p) { return codec::toString(p.me); });
    row("merange",
        [](const P& p) { return std::to_string(p.merange); });
    row("partitions", [](const P& p) {
        std::string out;
        if (p.partitions.p8x8) {
            out += "+p8x8";
        }
        if (p.partitions.i4x4) {
            out += "+i4x4";
        }
        if (p.partitions.i8x8) {
            out += "+i8x8";
        }
        return out.empty() ? std::string("none") : out;
    });
    row("refs", [](const P& p) { return std::to_string(p.refs); });
    row("scenecut",
        [](const P& p) { return std::to_string(p.scenecut); });
    row("subme", [](const P& p) { return std::to_string(p.subme); });
    row("trellis",
        [](const P& p) { return std::to_string(p.trellis); });

    std::printf("%s\n", t.toText().c_str());
    std::printf("CSV:\n%s", t.toCsv().c_str());
    return 0;
}

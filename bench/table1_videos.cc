/**
 * @file
 * Regenerates paper Table I: the vbench video corpus — names, (scaled)
 * resolutions, frame rates and entropy — plus measured content statistics
 * of our synthetic stand-ins demonstrating that the entropy ordering is
 * realized (spatial complexity and temporal change grow with entropy).
 */

#include <cstdio>

#include "bench/benchutil.h"
#include "common/table.h"
#include "video/generate.h"
#include "video/quality.h"
#include "video/vbench.h"

int
main(int argc, char** argv)
{
    using namespace vtrans;
    Cli cli(argc, argv);
    setVerbose(false);

    bench::banner("Table I: vbench videos (scaled corpus)");

    Table t({"Short Name", "Class", "Scaled Res", "FPS", "Entropy",
             "SpatialCplx", "TemporalMSE"});
    for (const auto& spec : video::vbenchCorpus()) {
        // Measure the realized complexity of the synthetic stand-in on a
        // short prefix of the clip.
        video::VideoSpec probe = spec;
        probe.seconds = 0.5;
        const auto frames = video::generateVideo(probe);
        double temporal = 0.0;
        for (size_t i = 1; i < frames.size(); ++i) {
            temporal += video::planeMse(frames[i], frames[i - 1],
                                        video::Plane::Y);
        }
        temporal /= frames.size() - 1;

        t.beginRow();
        t.cell(spec.name);
        t.cell(spec.resolution_class);
        t.cell(std::to_string(spec.width) + "x"
               + std::to_string(spec.height));
        t.cell(static_cast<int64_t>(spec.fps));
        t.cell(spec.entropy, 1);
        t.cell(video::spatialComplexity(frames[0]), 1);
        t.cell(temporal, 1);
    }
    std::printf("%s\n", t.toText().c_str());
    std::printf("CSV:\n%s", t.toCsv().c_str());
    return 0;
}

/**
 * @file
 * Microarchitecture ablation: sensitivity of the default transcoding
 * workload to each design choice of the simulated machine — cache sizes,
 * window sizes, MSHR count (memory-level parallelism), branch predictor,
 * and mispredict penalty. This is the ablation study DESIGN.md calls out
 * for the simulator's design parameters: it shows which knob moves which
 * Top-down category, the rationale behind the Table IV variants.
 */

#include <cstdio>

#include "bench/benchutil.h"
#include "common/table.h"
#include "core/workload.h"
#include "uarch/config.h"

int
main(int argc, char** argv)
{
    using namespace vtrans;
    Cli cli(argc, argv);
    setVerbose(!cli.has("quiet"));

    core::RunConfig base;
    base.video = cli.str("video", "funny");
    base.seconds = cli.real("seconds", 1.0);
    base.params = codec::presetParams("medium");
    base.core = uarch::baselineConfig();

    bench::banner("Microarchitecture ablation (medium/23/3 on "
                  + base.video + ")");

    Table t({"variant", "time (ms)", "vs base", "FE%", "BS%", "BE-mem%",
             "BE-core%", "L1d MPKI", "L1i MPKI", "br MPKI"});

    double base_seconds = 0.0;
    auto measure = [&](const std::string& name,
                       const uarch::CoreParams& core) {
        core::RunConfig run = base;
        run.core = core;
        const auto r = core::runInstrumented(run);
        const auto td = r.core.topdown();
        if (name == "baseline") {
            base_seconds = r.transcode_seconds;
        }
        t.beginRow();
        t.cell(name);
        t.cell(r.transcode_seconds * 1000.0, 3);
        t.cell(base_seconds > 0
                   ? formatPercent(
                         base_seconds / r.transcode_seconds - 1.0, 2)
                   : std::string("-"));
        t.cell(td.frontend * 100.0, 2);
        t.cell(td.bad_speculation * 100.0, 2);
        t.cell(td.backend_memory * 100.0, 2);
        t.cell(td.backend_core * 100.0, 2);
        t.cell(r.core.l1dMpki(), 2);
        t.cell(r.core.l1iMpki(), 2);
        t.cell(r.core.branchMpki(), 2);
    };

    measure("baseline", uarch::baselineConfig());

    // One knob at a time.
    {
        auto c = uarch::baselineConfig();
        c.l1d.size_bytes *= 2;
        measure("L1d x2", c);
    }
    {
        auto c = uarch::baselineConfig();
        c.l1d.size_bytes /= 2;
        measure("L1d /2", c);
    }
    {
        auto c = uarch::baselineConfig();
        c.l1i.size_bytes *= 2;
        measure("L1i x2", c);
    }
    {
        auto c = uarch::baselineConfig();
        c.l2.size_bytes *= 2;
        measure("L2 x2", c);
    }
    {
        auto c = uarch::baselineConfig();
        c.l3.size_bytes *= 2;
        measure("L3 x2", c);
    }
    {
        auto c = uarch::baselineConfig();
        c.rob_size *= 2;
        measure("ROB x2", c);
    }
    {
        auto c = uarch::baselineConfig();
        c.rs_size *= 2;
        measure("RS x2", c);
    }
    {
        auto c = uarch::baselineConfig();
        c.issue_at_dispatch = true;
        measure("issue@dispatch", c);
    }
    {
        auto c = uarch::baselineConfig();
        c.mshr_entries = 1;
        measure("MSHR=1 (no MLP)", c);
    }
    {
        auto c = uarch::baselineConfig();
        c.mshr_entries = 32;
        measure("MSHR=32", c);
    }
    {
        auto c = uarch::baselineConfig();
        c.predictor = "tage";
        measure("TAGE predictor", c);
    }
    {
        auto c = uarch::baselineConfig();
        c.mispredict_penalty *= 2;
        measure("2x flush penalty", c);
    }
    {
        auto c = uarch::baselineConfig();
        c.itlb_entries *= 4;
        measure("iTLB x4", c);
    }
    {
        auto c = uarch::baselineConfig();
        c.width = 6;
        measure("6-wide dispatch", c);
    }

    std::printf("%sCSV:\n%s", t.toText().c_str(), t.toCsv().c_str());
    std::printf(
        "\nReading guide: each Table IV variant bundles the knobs that "
        "move its target category — fe_op = {L1i x2, iTLB x2}, be_op1 = "
        "{L1d x2, L2 x2, +L4}, be_op2 = {ROB x2, RS x2, "
        "issue@dispatch}, bs_op = {TAGE}.\n");
    return 0;
}

#ifndef VTRANS_COMMON_STATS_H_
#define VTRANS_COMMON_STATS_H_

/**
 * @file
 * Lightweight named statistics used throughout the simulator: ordered
 * name -> double pairs with merge and pretty-print support.
 */

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vtrans {

/**
 * An insertion-ordered collection of named scalar statistics.
 *
 * Deliberately simpler than gem5's stats package: counters are plain
 * doubles, lookup is linear (counts are small), and rendering goes through
 * Table. Suitable for per-run summaries, not per-cycle hot paths.
 */
/**
 * The p-th percentile (0..100) of a sample by linear interpolation
 * between order statistics; 0 for an empty sample, p clamped to [0, 100].
 * The single definition of percentile semantics shared by the farm run
 * log and the observability metrics histograms.
 */
double percentile(std::vector<double> values, double p);

class StatSet
{
  public:
    /** Adds `delta` to the named stat, creating it at zero if absent. */
    void add(const std::string& name, double delta);

    /** Sets the named stat, creating it if absent. */
    void set(const std::string& name, double value);

    /** Returns the named stat's value, or 0.0 if absent. */
    double get(const std::string& name) const;

    /** True if the stat exists. */
    bool has(const std::string& name) const;

    /** Accumulates every stat from `other` into this set. */
    void merge(const StatSet& other);

    /** All stats in insertion order. */
    const std::vector<std::pair<std::string, double>>& entries() const
    {
        return entries_;
    }

    /** Renders a two-column name/value text table. */
    std::string toText() const;

  private:
    std::vector<std::pair<std::string, double>> entries_;
};

} // namespace vtrans

#endif // VTRANS_COMMON_STATS_H_

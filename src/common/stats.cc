#include "common/stats.h"

#include "common/table.h"

namespace vtrans {

void
StatSet::add(const std::string& name, double delta)
{
    for (auto& [n, v] : entries_) {
        if (n == name) {
            v += delta;
            return;
        }
    }
    entries_.emplace_back(name, delta);
}

void
StatSet::set(const std::string& name, double value)
{
    for (auto& [n, v] : entries_) {
        if (n == name) {
            v = value;
            return;
        }
    }
    entries_.emplace_back(name, value);
}

double
StatSet::get(const std::string& name) const
{
    for (const auto& [n, v] : entries_) {
        if (n == name) {
            return v;
        }
    }
    return 0.0;
}

bool
StatSet::has(const std::string& name) const
{
    for (const auto& [n, v] : entries_) {
        if (n == name) {
            return true;
        }
    }
    return false;
}

void
StatSet::merge(const StatSet& other)
{
    for (const auto& [n, v] : other.entries_) {
        add(n, v);
    }
}

std::string
StatSet::toText() const
{
    Table t({"stat", "value"});
    for (const auto& [n, v] : entries_) {
        t.beginRow();
        t.cell(n);
        t.cell(v, 4);
    }
    return t.toText();
}

} // namespace vtrans

#include "common/stats.h"

#include <algorithm>

#include "common/table.h"

namespace vtrans {

double
percentile(std::vector<double> values, double p)
{
    if (values.empty()) {
        return 0.0;
    }
    std::sort(values.begin(), values.end());
    const double rank =
        std::clamp(p, 0.0, 100.0) / 100.0 * (values.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - lo;
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

void
StatSet::add(const std::string& name, double delta)
{
    for (auto& [n, v] : entries_) {
        if (n == name) {
            v += delta;
            return;
        }
    }
    entries_.emplace_back(name, delta);
}

void
StatSet::set(const std::string& name, double value)
{
    for (auto& [n, v] : entries_) {
        if (n == name) {
            v = value;
            return;
        }
    }
    entries_.emplace_back(name, value);
}

double
StatSet::get(const std::string& name) const
{
    for (const auto& [n, v] : entries_) {
        if (n == name) {
            return v;
        }
    }
    return 0.0;
}

bool
StatSet::has(const std::string& name) const
{
    for (const auto& [n, v] : entries_) {
        if (n == name) {
            return true;
        }
    }
    return false;
}

void
StatSet::merge(const StatSet& other)
{
    for (const auto& [n, v] : other.entries_) {
        add(n, v);
    }
}

std::string
StatSet::toText() const
{
    Table t({"stat", "value"});
    for (const auto& [n, v] : entries_) {
        t.beginRow();
        t.cell(n);
        t.cell(v, 4);
    }
    return t.toText();
}

} // namespace vtrans

#ifndef VTRANS_COMMON_RNG_H_
#define VTRANS_COMMON_RNG_H_

/**
 * @file
 * Deterministic pseudo-random number generation. All stochastic behaviour
 * in vtrans (synthetic video content, random scheduling baselines) flows
 * through Rng so that every experiment is exactly reproducible from a seed.
 */

#include <cmath>
#include <cstdint>

namespace vtrans {

/**
 * A small, fast, deterministic PRNG (splitmix64-seeded xorshift128+).
 *
 * Not cryptographically secure; statistical quality is more than adequate
 * for workload synthesis. Copyable; copies continue independent streams.
 */
class Rng
{
  public:
    /** Constructs a generator from a 64-bit seed. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initializes the state from a seed via splitmix64. */
    void
    reseed(uint64_t seed)
    {
        s0_ = splitmix(seed);
        s1_ = splitmix(seed);
        if (s0_ == 0 && s1_ == 0) {
            s1_ = 1;
        }
    }

    /** Returns the next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t x = s0_;
        const uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Returns a uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    below(uint64_t bound)
    {
        // Multiply-shift reduction; bias is negligible for our bounds.
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Returns a uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
                        below(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Returns a uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Returns true with the given probability. */
    bool chance(double p) { return uniform() < p; }

    /** Returns a sample from a standard normal (Box-Muller). */
    double
    gaussian()
    {
        if (have_spare_) {
            have_spare_ = false;
            return spare_;
        }
        double u1 = 0.0;
        while (u1 <= 1e-12) {
            u1 = uniform();
        }
        const double u2 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * M_PI * u2;
        spare_ = r * std::sin(theta);
        have_spare_ = true;
        return r * std::cos(theta);
    }

  private:
    static uint64_t
    splitmix(uint64_t& x)
    {
        x += 0x9e3779b97f4a7c15ull;
        uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    uint64_t s0_ = 0;
    uint64_t s1_ = 0;
    double spare_ = 0.0;
    bool have_spare_ = false;
};

} // namespace vtrans

#endif // VTRANS_COMMON_RNG_H_

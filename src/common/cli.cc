#include "common/cli.h"

#include <cstdlib>

namespace vtrans {

Cli::Cli(int argc, const char* const* argv)
{
    program_ = argc > 0 ? argv[0] : "";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            flags_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0
                   && (std::string(argv[i + 1]).empty()
                       || std::string(argv[i + 1])[0] != '-')) {
            // `--key value` form; consume the next token as the value.
            flags_.emplace_back(arg, argv[++i]);
        } else {
            flags_.emplace_back(arg, "");
        }
    }
}

bool
Cli::has(const std::string& name) const
{
    for (const auto& [k, v] : flags_) {
        if (k == name) {
            return true;
        }
    }
    return false;
}

std::string
Cli::str(const std::string& name, const std::string& def) const
{
    for (const auto& [k, v] : flags_) {
        if (k == name) {
            return v;
        }
    }
    return def;
}

int64_t
Cli::num(const std::string& name, int64_t def) const
{
    for (const auto& [k, v] : flags_) {
        if (k == name && !v.empty()) {
            return std::strtoll(v.c_str(), nullptr, 10);
        }
    }
    return def;
}

double
Cli::real(const std::string& name, double def) const
{
    for (const auto& [k, v] : flags_) {
        if (k == name && !v.empty()) {
            return std::strtod(v.c_str(), nullptr);
        }
    }
    return def;
}

} // namespace vtrans

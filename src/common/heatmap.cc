#include "common/heatmap.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/status.h"
#include "common/table.h"

namespace vtrans {

namespace {
// Light-to-dark shade ramp; index 0 is the minimum bucket.
const char kRamp[] = {' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'};
constexpr int kRampSize = sizeof(kRamp);
} // namespace

Heatmap::Heatmap(std::string title, std::vector<std::string> row_labels,
                 std::vector<std::string> col_labels)
    : title_(std::move(title)),
      row_labels_(std::move(row_labels)),
      col_labels_(std::move(col_labels)),
      values_(row_labels_.size() * col_labels_.size(), 0.0)
{
    VT_ASSERT(!row_labels_.empty() && !col_labels_.empty(),
              "heatmap needs non-empty axes");
}

void
Heatmap::set(size_t row, size_t col, double value)
{
    VT_ASSERT(row < rows() && col < cols(), "heatmap index out of range");
    values_[row * cols() + col] = value;
}

double
Heatmap::at(size_t row, size_t col) const
{
    VT_ASSERT(row < rows() && col < cols(), "heatmap index out of range");
    return values_[row * cols() + col];
}

double
Heatmap::minValue() const
{
    return *std::min_element(values_.begin(), values_.end());
}

double
Heatmap::maxValue() const
{
    return *std::max_element(values_.begin(), values_.end());
}

std::string
Heatmap::render() const
{
    const double lo = minValue();
    const double hi = maxValue();
    const double span = (hi - lo) > 1e-12 ? (hi - lo) : 1.0;

    size_t label_w = 0;
    for (const auto& l : row_labels_) {
        label_w = std::max(label_w, l.size());
    }

    std::ostringstream os;
    os << title_ << "  [min=" << formatDouble(lo, 3)
       << " max=" << formatDouble(hi, 3) << "]\n";

    // Column header (first character of each label, plus full legend).
    os << std::string(label_w + 1, ' ');
    for (const auto& c : col_labels_) {
        os << (c.empty() ? ' ' : c.back());
    }
    os << "\n";

    for (size_t r = 0; r < rows(); ++r) {
        os << row_labels_[r]
           << std::string(label_w - row_labels_[r].size() + 1, ' ');
        for (size_t c = 0; c < cols(); ++c) {
            const double norm = (at(r, c) - lo) / span;
            int bucket = static_cast<int>(norm * (kRampSize - 1) + 0.5);
            bucket = std::clamp(bucket, 0, kRampSize - 1);
            os << kRamp[bucket];
        }
        os << '\n';
    }

    os << "ramp: ";
    for (int i = 0; i < kRampSize; ++i) {
        os << '\'' << kRamp[i] << '\'';
        if (i + 1 < kRampSize) {
            os << ' ';
        }
    }
    os << "  (low -> high)\n";
    os << "cols: ";
    for (size_t c = 0; c < cols(); ++c) {
        os << col_labels_[c] << (c + 1 < cols() ? " " : "");
    }
    os << '\n';
    return os.str();
}

std::string
Heatmap::toCsv() const
{
    std::ostringstream os;
    os << title_;
    for (const auto& c : col_labels_) {
        os << ',' << c;
    }
    os << '\n';
    for (size_t r = 0; r < rows(); ++r) {
        os << row_labels_[r];
        for (size_t c = 0; c < cols(); ++c) {
            os << ',' << formatDouble(at(r, c), 6);
        }
        os << '\n';
    }
    return os.str();
}

} // namespace vtrans

#ifndef VTRANS_COMMON_STATUS_H_
#define VTRANS_COMMON_STATUS_H_

/**
 * @file
 * Error-reporting and status-message helpers, in the spirit of gem5's
 * logging conventions: panic() for internal invariant violations (a bug in
 * vtrans itself), fatal() for unrecoverable user errors (bad configuration,
 * invalid arguments), and warn()/inform() for non-fatal status messages.
 */

#include <cstdlib>
#include <sstream>
#include <string>

namespace vtrans {

namespace detail {

/** Formats and emits a message with a severity prefix, then aborts/exits. */
[[noreturn]] void panicImpl(const char* file, int line, const std::string& msg);
[[noreturn]] void fatalImpl(const char* file, int line, const std::string& msg);
void warnImpl(const std::string& msg);
void informImpl(const std::string& msg);

/** Concatenates a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Toggles whether inform() messages are printed (default: on). */
void setVerbose(bool verbose);
bool verbose();

} // namespace vtrans

/**
 * Reports an internal invariant violation (a vtrans bug) and aborts.
 * Use for conditions that should never happen regardless of user input.
 */
#define VT_PANIC(...) \
    ::vtrans::detail::panicImpl(__FILE__, __LINE__, \
                                ::vtrans::detail::concat(__VA_ARGS__))

/**
 * Reports an unrecoverable user error (bad configuration or arguments) and
 * exits with status 1.
 */
#define VT_FATAL(...) \
    ::vtrans::detail::fatalImpl(__FILE__, __LINE__, \
                                ::vtrans::detail::concat(__VA_ARGS__))

/** Emits a non-fatal warning to stderr. */
#define VT_WARN(...) \
    ::vtrans::detail::warnImpl(::vtrans::detail::concat(__VA_ARGS__))

/** Emits an informational status message to stderr (if verbose). */
#define VT_INFORM(...) \
    ::vtrans::detail::informImpl(::vtrans::detail::concat(__VA_ARGS__))

/** Panics with a message if the given invariant does not hold. */
#define VT_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            VT_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

#endif // VTRANS_COMMON_STATUS_H_

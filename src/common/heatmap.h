#ifndef VTRANS_COMMON_HEATMAP_H_
#define VTRANS_COMMON_HEATMAP_H_

/**
 * @file
 * ASCII heatmap rendering for the crf x refs grids of Figures 3 and 5.
 * Each cell's value is bucketed into a ramp of shade characters so the
 * gradient direction is visible directly in a terminal.
 */

#include <string>
#include <vector>

namespace vtrans {

/**
 * A dense 2-D grid of doubles with labelled axes, renderable as an ASCII
 * shade map plus a numeric legend.
 */
class Heatmap
{
  public:
    /**
     * Creates a rows x cols heatmap.
     * @param title Figure caption printed above the map.
     * @param row_labels One label per row (e.g. crf values).
     * @param col_labels One label per column (e.g. refs values).
     */
    Heatmap(std::string title, std::vector<std::string> row_labels,
            std::vector<std::string> col_labels);

    /** Sets the value of one cell. */
    void set(size_t row, size_t col, double value);
    /** Reads a cell value. */
    double at(size_t row, size_t col) const;

    size_t rows() const { return row_labels_.size(); }
    size_t cols() const { return col_labels_.size(); }

    /** Minimum over all cells. */
    double minValue() const;
    /** Maximum over all cells. */
    double maxValue() const;

    /** Renders the shade map with axis labels and a legend. */
    std::string render() const;

    /** Renders the raw values as CSV (rows x cols, with labels). */
    std::string toCsv() const;

  private:
    std::string title_;
    std::vector<std::string> row_labels_;
    std::vector<std::string> col_labels_;
    std::vector<double> values_;
};

} // namespace vtrans

#endif // VTRANS_COMMON_HEATMAP_H_

#ifndef VTRANS_COMMON_TABLE_H_
#define VTRANS_COMMON_TABLE_H_

/**
 * @file
 * Column-aligned text tables and CSV emission, used by every bench binary
 * to print the rows/series of the paper's tables and figures.
 */

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace vtrans {

/**
 * A simple row/column table that renders either as aligned text or CSV.
 *
 * Cells are strings; numeric helpers format with a fixed precision. Rows
 * must not exceed the header width (shorter rows are padded with blanks).
 */
class Table
{
  public:
    /** Creates a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Starts a new, empty row. */
    void beginRow();

    /** Appends a string cell to the current row. */
    void cell(const std::string& value);
    /** Appends an integer cell to the current row. */
    void cell(int64_t value);
    /** Appends an unsigned integer cell to the current row. */
    void cell(uint64_t value);
    /** Appends a floating-point cell with the given decimal places. */
    void cell(double value, int precision = 3);

    /** Number of data rows so far. */
    size_t rows() const { return rows_.size(); }

    /** Renders as a column-aligned text table. */
    std::string toText() const;
    /** Renders as CSV (header row first). */
    std::string toCsv() const;

    /** Writes the text rendering to the stream. */
    void print(std::ostream& os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Formats a double with fixed precision (no trailing garbage). */
std::string formatDouble(double value, int precision);

/** Formats a fraction as a percentage string, e.g. 0.123 -> "12.3%". */
std::string formatPercent(double fraction, int precision = 1);

} // namespace vtrans

#endif // VTRANS_COMMON_TABLE_H_

#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/status.h"

namespace vtrans {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    VT_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::beginRow()
{
    rows_.emplace_back();
}

void
Table::cell(const std::string& value)
{
    VT_ASSERT(!rows_.empty(), "beginRow() before cell()");
    VT_ASSERT(rows_.back().size() < headers_.size(),
              "row wider than header (", headers_.size(), " columns)");
    rows_.back().push_back(value);
}

void
Table::cell(int64_t value)
{
    cell(std::to_string(value));
}

void
Table::cell(uint64_t value)
{
    cell(std::to_string(value));
}

void
Table::cell(double value, int precision)
{
    cell(formatDouble(value, precision));
}

std::string
Table::toText() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < headers_.size(); ++c) {
            const std::string& v = c < row.size() ? row[c] : std::string();
            os << (c == 0 ? "" : "  ");
            os << v;
            os << std::string(widths[c] - v.size(), ' ');
        }
        os << '\n';
    };

    emit_row(headers_);
    size_t total = headers_.size() - 1;
    for (size_t w : widths) {
        total += w + 1;
    }
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) {
        emit_row(row);
    }
    return os.str();
}

std::string
Table::toCsv() const
{
    auto escape = [](const std::string& v) {
        if (v.find_first_of(",\"\n") == std::string::npos) {
            return v;
        }
        std::string out = "\"";
        for (char ch : v) {
            if (ch == '"') {
                out += '"';
            }
            out += ch;
        }
        out += '"';
        return out;
    };

    std::ostringstream os;
    for (size_t c = 0; c < headers_.size(); ++c) {
        os << (c == 0 ? "" : ",") << escape(headers_[c]);
    }
    os << '\n';
    for (const auto& row : rows_) {
        for (size_t c = 0; c < headers_.size(); ++c) {
            os << (c == 0 ? "" : ",")
               << (c < row.size() ? escape(row[c]) : std::string());
        }
        os << '\n';
    }
    return os.str();
}

void
Table::print(std::ostream& os) const
{
    os << toText();
}

std::string
formatDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
formatPercent(double fraction, int precision)
{
    return formatDouble(fraction * 100.0, precision) + "%";
}

} // namespace vtrans

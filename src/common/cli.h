#ifndef VTRANS_COMMON_CLI_H_
#define VTRANS_COMMON_CLI_H_

/**
 * @file
 * A minimal command-line flag parser shared by the bench and example
 * binaries. Supports `--flag`, `--key=value` and `--key value` forms.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace vtrans {

/** Parsed command-line flags with typed accessors and defaults. */
class Cli
{
  public:
    /** Parses argv; unknown positional arguments are kept in order. */
    Cli(int argc, const char* const* argv);

    /** True if `--name` was present (with or without a value). */
    bool has(const std::string& name) const;

    /** Returns the string value of `--name[=value]`, or `def`. */
    std::string str(const std::string& name, const std::string& def) const;

    /** Returns the integer value of `--name`, or `def`. */
    int64_t num(const std::string& name, int64_t def) const;

    /** Returns the floating value of `--name`, or `def`. */
    double real(const std::string& name, double def) const;

    /** Positional (non-flag) arguments. */
    const std::vector<std::string>& positional() const { return positional_; }

    /** The binary name (argv[0]). */
    const std::string& program() const { return program_; }

  private:
    std::string program_;
    std::vector<std::pair<std::string, std::string>> flags_;
    std::vector<std::string> positional_;
};

} // namespace vtrans

#endif // VTRANS_COMMON_CLI_H_

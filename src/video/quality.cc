#include "video/quality.h"

#include <cmath>

#include "common/status.h"

namespace vtrans::video {

double
planeMse(const Frame& a, const Frame& b, Plane p)
{
    VT_ASSERT(a.width() == b.width() && a.height() == b.height(),
              "PSNR operands must have identical geometry");
    const uint8_t* pa = a.data(p);
    const uint8_t* pb = b.data(p);
    const size_t n =
        static_cast<size_t>(a.stride(p)) * a.planeHeight(p);
    uint64_t sum = 0;
    for (size_t i = 0; i < n; ++i) {
        const int d = static_cast<int>(pa[i]) - static_cast<int>(pb[i]);
        sum += static_cast<uint64_t>(d) * d;
    }
    return static_cast<double>(sum) / static_cast<double>(n);
}

double
framePsnr(const Frame& a, const Frame& b)
{
    const double mse_y = planeMse(a, b, Plane::Y);
    const double mse_cb = planeMse(a, b, Plane::Cb);
    const double mse_cr = planeMse(a, b, Plane::Cr);
    const double mse = (4.0 * mse_y + mse_cb + mse_cr) / 6.0;
    if (mse < 1e-9) {
        return 99.0;
    }
    return std::min(99.0, 10.0 * std::log10(255.0 * 255.0 / mse));
}

double
sequencePsnr(const std::vector<Frame>& a, const std::vector<Frame>& b)
{
    VT_ASSERT(a.size() == b.size() && !a.empty(),
              "sequences must be non-empty and equal length");
    double total = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        total += framePsnr(a[i], b[i]);
    }
    return total / static_cast<double>(a.size());
}

double
spatialComplexity(const Frame& frame)
{
    const int bw = frame.width() / 16;
    const int bh = frame.height() / 16;
    double total = 0.0;
    for (int by = 0; by < bh; ++by) {
        for (int bx = 0; bx < bw; ++bx) {
            int64_t sum = 0;
            int64_t sq = 0;
            for (int y = 0; y < 16; ++y) {
                for (int x = 0; x < 16; ++x) {
                    const int v = frame.at(Plane::Y, bx * 16 + x, by * 16 + y);
                    sum += v;
                    sq += static_cast<int64_t>(v) * v;
                }
            }
            const double mean = sum / 256.0;
            total += sq / 256.0 - mean * mean;
        }
    }
    return total / (bw * bh);
}

} // namespace vtrans::video

#ifndef VTRANS_VIDEO_GENERATE_H_
#define VTRANS_VIDEO_GENERATE_H_

/**
 * @file
 * Synthetic video synthesis. Stands in for the actual vbench clips (which
 * are not redistributable and not available offline) by generating content
 * whose complexity knobs — motion magnitude, scene-cut frequency, spatial
 * detail, and sensor noise — are driven by the vbench entropy value of
 * each VideoSpec. See DESIGN.md §2 for the substitution argument.
 */

#include <vector>

#include "common/rng.h"
#include "video/frame.h"
#include "video/spec.h"

namespace vtrans::video {

/**
 * Generates the frames of a clip, deterministically from spec.seed.
 *
 * Content model: a textured panning background, a population of moving
 * textured objects, per-pixel noise, and Bernoulli scene cuts that
 * re-randomize the scene. All rates scale with spec.entropy so that
 * low-entropy specs ("desktop") are near-static and clean while
 * high-entropy specs ("hall", "holi") have fast motion, frequent cuts and
 * heavy texture.
 */
class Generator
{
  public:
    /** Prepares the scene for frame 0. */
    explicit Generator(const VideoSpec& spec);

    /** Renders the next frame of the clip. */
    void renderNext(Frame& frame);

    /** Frames rendered so far. */
    int framesRendered() const { return frame_index_; }

    /** True if the previous renderNext() started a new scene. */
    bool lastFrameWasSceneCut() const { return last_was_cut_; }

  private:
    struct Object
    {
        double x, y;        ///< Top-left position (can be off-screen).
        double vx, vy;      ///< Velocity in pixels/frame.
        int w, h;           ///< Size in pixels.
        int luma;           ///< Base luma.
        int cb, cr;         ///< Chroma.
        double tex_freq;    ///< Texture spatial frequency.
        double tex_phase;   ///< Texture phase (animates for shimmer).
        double phase_rate;  ///< Phase change per frame.
    };

    void newScene();
    void stepScene();
    void renderInto(Frame& frame);

    VideoSpec spec_;
    Rng rng_;
    int frame_index_ = 0;
    bool last_was_cut_ = false;

    // Scene state.
    double bg_phase_x_ = 0.0;
    double bg_phase_y_ = 0.0;
    double bg_vel_x_ = 0.0;
    double bg_vel_y_ = 0.0;
    double bg_freq_ = 0.05;
    int bg_luma_ = 128;
    int bg_cb_ = 128;
    int bg_cr_ = 128;
    std::vector<Object> objects_;
    double noise_sigma_ = 0.0;
    double cut_probability_ = 0.0;
};

/** Convenience helper: generates all frames of the clip. */
std::vector<Frame> generateVideo(const VideoSpec& spec);

} // namespace vtrans::video

#endif // VTRANS_VIDEO_GENERATE_H_

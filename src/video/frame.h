#ifndef VTRANS_VIDEO_FRAME_H_
#define VTRANS_VIDEO_FRAME_H_

/**
 * @file
 * Raw video frames in 8-bit YUV 4:2:0 planar format — the decoded
 * intermediate representation that transcoding produces and re-encodes.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vtrans::video {

/** Identifies one of the three planes of a YUV 4:2:0 frame. */
enum class Plane : uint8_t { Y = 0, Cb = 1, Cr = 2 };

/**
 * One raw frame of YUV 4:2:0 video.
 *
 * The luma plane is width x height; each chroma plane is subsampled 2x2.
 * Every frame reserves a deterministic simulated address range so that
 * instrumented pixel accesses are reproducible across runs (see
 * trace::SimArena). Width and height must be multiples of 16 (whole
 * macroblocks); the synthetic generator guarantees this.
 */
class Frame
{
  public:
    /** Constructs a zero-initialized frame. Dimensions must be mod-16. */
    Frame(int width, int height);

    int width() const { return width_; }
    int height() const { return height_; }
    int chromaWidth() const { return width_ / 2; }
    int chromaHeight() const { return height_ / 2; }

    /** Mutable pixel access into a plane (no bounds checks in release). */
    uint8_t& at(Plane p, int x, int y);
    /** Read-only pixel access into a plane. */
    uint8_t at(Plane p, int x, int y) const;

    /** Raw pointer to a plane's first pixel (row-major, tightly packed). */
    uint8_t* data(Plane p);
    const uint8_t* data(Plane p) const;

    /** Row stride (== plane width) of a plane. */
    int stride(Plane p) const { return p == Plane::Y ? width_ : width_ / 2; }
    /** Height of a plane. */
    int planeHeight(Plane p) const
    {
        return p == Plane::Y ? height_ : height_ / 2;
    }

    /** Simulated address of pixel (x, y) in plane `p` for probing. */
    uint64_t
    simAddr(Plane p, int x, int y) const
    {
        return plane_base_[static_cast<int>(p)]
               + static_cast<uint64_t>(y) * stride(p) + x;
    }

    /** Total pixel bytes across all planes. */
    size_t byteSize() const { return y_.size() + cb_.size() + cr_.size(); }

    /** Fills every plane with a constant value. */
    void fill(uint8_t y, uint8_t cb, uint8_t cr);

    /** Deep-copies pixels from another frame of identical geometry. */
    void copyFrom(const Frame& other);

  private:
    int width_;
    int height_;
    std::vector<uint8_t> y_;
    std::vector<uint8_t> cb_;
    std::vector<uint8_t> cr_;
    uint64_t plane_base_[3];
};

} // namespace vtrans::video

#endif // VTRANS_VIDEO_FRAME_H_

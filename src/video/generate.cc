#include "video/generate.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace vtrans::video {

namespace {

/** Clamps a value into the 8-bit pixel range. */
inline uint8_t
pixel(double v)
{
    return static_cast<uint8_t>(std::clamp(v, 0.0, 255.0));
}

/** Normalizes an entropy value into [0, 1] against vbench's observed max. */
inline double
entropyNorm(double entropy)
{
    return std::clamp(entropy / 7.7, 0.0, 1.0);
}

} // namespace

Generator::Generator(const VideoSpec& spec) : spec_(spec), rng_(spec.seed)
{
    VT_ASSERT(spec_.width % 16 == 0 && spec_.height % 16 == 0,
              "spec dimensions must be whole macroblocks");
    const double e = entropyNorm(spec_.entropy);
    noise_sigma_ = 0.3 + 5.0 * e;
    // Expected scene cuts over a standard 5 s clip roughly equals the
    // entropy value (high-entropy vbench clips cut every second or two);
    // the per-frame probability is independent of the clip length.
    cut_probability_ = spec_.entropy / (5.0 * spec_.fps);
    newScene();
}

void
Generator::newScene()
{
    const double e = entropyNorm(spec_.entropy);

    bg_luma_ = static_cast<int>(rng_.range(40, 200));
    bg_cb_ = static_cast<int>(rng_.range(108, 148));
    bg_cr_ = static_cast<int>(rng_.range(108, 148));
    bg_freq_ = 0.02 + 0.25 * e * rng_.uniform();
    bg_phase_x_ = rng_.uniform() * 2.0 * M_PI;
    bg_phase_y_ = rng_.uniform() * 2.0 * M_PI;
    // Background pan speed in pixels/frame grows with entropy.
    const double pan = 0.05 + 2.5 * e;
    bg_vel_x_ = (rng_.uniform() * 2.0 - 1.0) * pan;
    bg_vel_y_ = (rng_.uniform() * 2.0 - 1.0) * pan * 0.5;

    const int count = 2 + static_cast<int>(e * 8.0 + rng_.below(2));
    objects_.clear();
    objects_.reserve(count);
    for (int i = 0; i < count; ++i) {
        Object obj;
        obj.w = static_cast<int>(
            rng_.range(spec_.width / 10 + 2, spec_.width / 3 + 2));
        obj.h = static_cast<int>(
            rng_.range(spec_.height / 10 + 2, spec_.height / 3 + 2));
        obj.x = rng_.uniform() * spec_.width - obj.w / 2.0;
        obj.y = rng_.uniform() * spec_.height - obj.h / 2.0;
        const double speed = 0.1 + 4.0 * e;
        obj.vx = (rng_.uniform() * 2.0 - 1.0) * speed;
        obj.vy = (rng_.uniform() * 2.0 - 1.0) * speed;
        obj.luma = static_cast<int>(rng_.range(30, 225));
        obj.cb = static_cast<int>(rng_.range(90, 166));
        obj.cr = static_cast<int>(rng_.range(90, 166));
        obj.tex_freq = 0.05 + 0.9 * e * rng_.uniform();
        obj.tex_phase = rng_.uniform() * 2.0 * M_PI;
        obj.phase_rate = 0.4 * e * (rng_.uniform() * 2.0 - 1.0);
        objects_.push_back(obj);
    }
}

void
Generator::stepScene()
{
    bg_phase_x_ += bg_vel_x_ * bg_freq_;
    bg_phase_y_ += bg_vel_y_ * bg_freq_;
    for (auto& obj : objects_) {
        obj.x += obj.vx;
        obj.y += obj.vy;
        obj.tex_phase += obj.phase_rate;
        // Bounce off the frame so objects stay mostly visible.
        if (obj.x < -obj.w) {
            obj.x = -obj.w;
            obj.vx = std::abs(obj.vx);
        }
        if (obj.x > spec_.width) {
            obj.x = spec_.width;
            obj.vx = -std::abs(obj.vx);
        }
        if (obj.y < -obj.h) {
            obj.y = -obj.h;
            obj.vy = std::abs(obj.vy);
        }
        if (obj.y > spec_.height) {
            obj.y = spec_.height;
            obj.vy = -std::abs(obj.vy);
        }
    }
}

void
Generator::renderInto(Frame& frame)
{
    const int w = spec_.width;
    const int h = spec_.height;
    uint8_t* luma = frame.data(Plane::Y);

    // Background: two crossed sinusoids over a base level, panning.
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            const double tex =
                18.0 * std::sin(bg_freq_ * x + bg_phase_x_)
                + 12.0 * std::sin(bg_freq_ * 1.7 * y + bg_phase_y_);
            luma[y * w + x] = pixel(bg_luma_ + tex);
        }
    }
    uint8_t* cb = frame.data(Plane::Cb);
    uint8_t* cr = frame.data(Plane::Cr);
    const int cw = frame.chromaWidth();
    const int ch = frame.chromaHeight();
    std::fill(cb, cb + static_cast<size_t>(cw) * ch,
              static_cast<uint8_t>(bg_cb_));
    std::fill(cr, cr + static_cast<size_t>(cw) * ch,
              static_cast<uint8_t>(bg_cr_));

    // Objects: textured rectangles painted over the background.
    for (const auto& obj : objects_) {
        const int x0 = std::max(0, static_cast<int>(obj.x));
        const int y0 = std::max(0, static_cast<int>(obj.y));
        const int x1 = std::min(w, static_cast<int>(obj.x) + obj.w);
        const int y1 = std::min(h, static_cast<int>(obj.y) + obj.h);
        for (int y = y0; y < y1; ++y) {
            for (int x = x0; x < x1; ++x) {
                const double tex =
                    25.0 * std::sin(obj.tex_freq * (x + y) + obj.tex_phase)
                    + 15.0 * std::sin(obj.tex_freq * 2.3 * (x - y));
                luma[y * w + x] = pixel(obj.luma + tex);
            }
        }
        for (int y = y0 / 2; y < y1 / 2; ++y) {
            for (int x = x0 / 2; x < x1 / 2; ++x) {
                cb[y * cw + x] = static_cast<uint8_t>(obj.cb);
                cr[y * cw + x] = static_cast<uint8_t>(obj.cr);
            }
        }
    }

    // Sensor noise on luma; amplitude scales with entropy.
    if (noise_sigma_ > 0.05) {
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                const double n = rng_.gaussian() * noise_sigma_;
                luma[y * w + x] = pixel(luma[y * w + x] + n);
            }
        }
    }
}

void
Generator::renderNext(Frame& frame)
{
    VT_ASSERT(frame.width() == spec_.width && frame.height() == spec_.height,
              "frame geometry must match the spec");
    last_was_cut_ = false;
    if (frame_index_ > 0) {
        if (rng_.chance(cut_probability_)) {
            newScene();
            last_was_cut_ = true;
        } else {
            stepScene();
        }
    }
    renderInto(frame);
    ++frame_index_;
}

std::vector<Frame>
generateVideo(const VideoSpec& spec)
{
    Generator gen(spec);
    std::vector<Frame> frames;
    frames.reserve(spec.frames());
    for (int i = 0; i < spec.frames(); ++i) {
        frames.emplace_back(spec.width, spec.height);
        gen.renderNext(frames.back());
    }
    return frames;
}

} // namespace vtrans::video

#ifndef VTRANS_VIDEO_SPEC_H_
#define VTRANS_VIDEO_SPEC_H_

/**
 * @file
 * Video workload descriptors. A VideoSpec carries everything the synthetic
 * generator needs to produce a clip whose complexity profile matches one
 * row of the paper's Table I (the vbench corpus).
 */

#include <cstdint>
#include <string>

namespace vtrans::video {

/**
 * Describes a video clip: identity, geometry, duration, and complexity.
 *
 * `entropy` follows vbench's definition — the bits needed for visually
 * lossless encoding, a proxy for motion, scene transitions and detail. It
 * parameterizes the synthetic content model (higher entropy => faster
 * motion, more frequent scene cuts, more texture and noise).
 */
struct VideoSpec
{
    std::string name;        ///< Short name, e.g. "cricket".
    std::string resolution_class; ///< Paper's class, e.g. "720p".
    int width = 0;           ///< Scaled luma width (multiple of 16).
    int height = 0;          ///< Scaled luma height (multiple of 16).
    int fps = 30;            ///< Frames per second.
    double seconds = 5.0;    ///< Clip duration (vbench clips are 5 s).
    double entropy = 1.0;    ///< vbench entropy (0.2 .. 7.7).
    uint64_t seed = 1;       ///< Content seed (derived from name).

    /** Total frame count of the clip. */
    int frames() const { return static_cast<int>(seconds * fps + 0.5); }

    /** Macroblocks per frame. */
    int macroblocks() const { return (width / 16) * (height / 16); }
};

} // namespace vtrans::video

#endif // VTRANS_VIDEO_SPEC_H_

#include "video/frame.h"

#include "common/status.h"
#include "trace/probe.h"

namespace vtrans::video {

Frame::Frame(int width, int height)
    : width_(width),
      height_(height),
      y_(static_cast<size_t>(width) * height, 0),
      cb_(static_cast<size_t>(width / 2) * (height / 2), 0),
      cr_(static_cast<size_t>(width / 2) * (height / 2), 0)
{
    VT_ASSERT(width > 0 && height > 0, "frame dimensions must be positive");
    VT_ASSERT(width % 16 == 0 && height % 16 == 0,
              "frame dimensions must be whole macroblocks: ", width, "x",
              height);
    auto& arena = trace::arena();
    plane_base_[0] = arena.alloc(y_.size());
    plane_base_[1] = arena.alloc(cb_.size());
    plane_base_[2] = arena.alloc(cr_.size());
}

uint8_t&
Frame::at(Plane p, int x, int y)
{
    switch (p) {
      case Plane::Y:
        return y_[static_cast<size_t>(y) * width_ + x];
      case Plane::Cb:
        return cb_[static_cast<size_t>(y) * (width_ / 2) + x];
      default:
        return cr_[static_cast<size_t>(y) * (width_ / 2) + x];
    }
}

uint8_t
Frame::at(Plane p, int x, int y) const
{
    return const_cast<Frame*>(this)->at(p, x, y);
}

uint8_t*
Frame::data(Plane p)
{
    switch (p) {
      case Plane::Y:
        return y_.data();
      case Plane::Cb:
        return cb_.data();
      default:
        return cr_.data();
    }
}

const uint8_t*
Frame::data(Plane p) const
{
    return const_cast<Frame*>(this)->data(p);
}

void
Frame::fill(uint8_t y, uint8_t cb, uint8_t cr)
{
    std::fill(y_.begin(), y_.end(), y);
    std::fill(cb_.begin(), cb_.end(), cb);
    std::fill(cr_.begin(), cr_.end(), cr);
}

void
Frame::copyFrom(const Frame& other)
{
    VT_ASSERT(other.width_ == width_ && other.height_ == height_,
              "frame geometry mismatch in copyFrom");
    y_ = other.y_;
    cb_ = other.cb_;
    cr_ = other.cr_;
}

} // namespace vtrans::video

#ifndef VTRANS_VIDEO_QUALITY_H_
#define VTRANS_VIDEO_QUALITY_H_

/**
 * @file
 * Objective quality metrics for transcoded video: MSE and PSNR, the
 * quality axis of the paper's speed/quality/size triangle (Fig 2).
 */

#include <vector>

#include "video/frame.h"

namespace vtrans::video {

/** Mean squared error between two planes of equal geometry. */
double planeMse(const Frame& a, const Frame& b, Plane p);

/**
 * Frame PSNR in dB over all three planes (weighted 4:1:1 like YUV420
 * sample counts). Identical frames return 99 dB (capped, like x264).
 */
double framePsnr(const Frame& a, const Frame& b);

/** Average PSNR across a pair of equal-length frame sequences. */
double sequencePsnr(const std::vector<Frame>& a, const std::vector<Frame>& b);

/**
 * Average luma sample variance per 16x16 block — a cheap spatial
 * complexity measure used by adaptive quantization and for sanity checks
 * that generated entropy ordering is monotone.
 */
double spatialComplexity(const Frame& frame);

} // namespace vtrans::video

#endif // VTRANS_VIDEO_QUALITY_H_

#include "video/vbench.h"

#include "common/status.h"

namespace vtrans::video {

namespace {

/** FNV-1a hash of a name, used as the deterministic content seed. */
uint64_t
nameSeed(const std::string& name)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (char c : name) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h | 1;
}

VideoSpec
makeSpec(const std::string& name, const std::string& res_class, int fps,
         double entropy)
{
    VideoSpec spec;
    spec.name = name;
    spec.resolution_class = res_class;
    auto [w, h] = scaledResolution(res_class);
    spec.width = w;
    spec.height = h;
    spec.fps = fps;
    spec.seconds = 5.0;
    spec.entropy = entropy;
    spec.seed = nameSeed(name);
    return spec;
}

} // namespace

std::pair<int, int>
scaledResolution(const std::string& resolution_class)
{
    // 1/12 scale of the paper's resolutions, rounded to whole macroblocks.
    // 854x480 -> 80x48, 1280x720 -> 112x64, 1920x1080 -> 160x96,
    // 3840x2160 -> 320x176. MB-count ratios (15:28:60:220) track the
    // paper's pixel-count ratios (1:2.2:5.1:20.3).
    if (resolution_class == "480p") {
        return {80, 48};
    }
    if (resolution_class == "720p") {
        return {112, 64};
    }
    if (resolution_class == "1080p") {
        return {160, 96};
    }
    if (resolution_class == "2160p") {
        return {320, 176};
    }
    VT_FATAL("unknown resolution class: ", resolution_class);
}

const std::vector<VideoSpec>&
vbenchCorpus()
{
    // Table I of the paper: short name, resolution class, FPS, entropy.
    static const std::vector<VideoSpec> corpus = {
        makeSpec("desktop", "720p", 30, 0.2),
        makeSpec("presentation", "1080p", 25, 0.2),
        makeSpec("bike", "720p", 29, 0.9),
        makeSpec("funny", "1080p", 30, 2.5),
        makeSpec("cricket", "720p", 30, 3.4),
        makeSpec("house", "1080p", 30, 3.6),
        makeSpec("game1", "1080p", 60, 4.6),
        makeSpec("game2", "720p", 30, 4.9),
        makeSpec("girl", "720p", 30, 5.9),
        makeSpec("chicken", "2160p", 30, 5.9),
        makeSpec("game3", "720p", 59, 6.1),
        makeSpec("cat", "480p", 29, 6.8),
        makeSpec("holi", "480p", 30, 7.0),
        makeSpec("landscape", "1080p", 29, 7.2),
        makeSpec("hall", "1080p", 29, 7.7),
    };
    return corpus;
}

const VideoSpec&
bigBuckBunny()
{
    static const VideoSpec spec = makeSpec("bbb", "1080p", 30, 3.0);
    return spec;
}

const VideoSpec&
findVideo(const std::string& name)
{
    for (const auto& spec : vbenchCorpus()) {
        if (spec.name == name) {
            return spec;
        }
    }
    if (name == bigBuckBunny().name) {
        return bigBuckBunny();
    }
    VT_FATAL("unknown video: ", name,
             " (known: vbench corpus short names and 'bbb')");
}

} // namespace vtrans::video

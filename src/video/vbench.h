#ifndef VTRANS_VIDEO_VBENCH_H_
#define VTRANS_VIDEO_VBENCH_H_

/**
 * @file
 * The scaled vbench corpus (paper Table I) plus Big Buck Bunny.
 *
 * The paper profiles all 15 vbench videos; each is 5 seconds long. We keep
 * the names, frame rates, entropy values, and resolution *classes* of
 * Table I, but generate content at 1/12-scale resolutions so full
 * cycle-accounted sweeps are tractable (DESIGN.md §5). Relative macroblock
 * counts between resolution classes are preserved.
 */

#include <vector>

#include "video/spec.h"

namespace vtrans::video {

/** Returns the 15 vbench video specs in Table I order (entropy ascending
 *  within the table's listing). */
const std::vector<VideoSpec>& vbenchCorpus();

/** Returns the Big Buck Bunny spec studied alongside vbench. */
const VideoSpec& bigBuckBunny();

/** Finds a corpus video by short name; fatal error if unknown. */
const VideoSpec& findVideo(const std::string& name);

/** Scaled pixel dimensions for a paper resolution class ("480p".."2160p").
 *  Returns {width, height}, both multiples of 16. */
std::pair<int, int> scaledResolution(const std::string& resolution_class);

} // namespace vtrans::video

#endif // VTRANS_VIDEO_VBENCH_H_

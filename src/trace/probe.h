#ifndef VTRANS_TRACE_PROBE_H_
#define VTRANS_TRACE_PROBE_H_

/**
 * @file
 * The probe bus: the contract between instrumented workload code (the
 * codec's hot kernels) and observers (the microarchitecture simulator, the
 * AutoFDO-style profile collector).
 *
 * Instrumented code declares static CodeSites — symbolic basic blocks with
 * a size in code bytes, an instruction count, and a mutable layout address —
 * and emits dynamic events through the free functions block()/branch()/
 * load()/store(). When no sink is attached the per-event cost is a single
 * predictable branch, so the codec can also run "natively".
 *
 * Dispatch to an attached sink runs in one of two modes:
 *
 *  - **Per-event** (`setSink(sink)`): every emit makes a virtual call into
 *    the sink immediately. This is the original bus and remains the
 *    reference semantics.
 *  - **Batched** (`setSink(sink, capacity)` with capacity >= 2): emits
 *    append compact `ProbeEvent` PODs to a thread-local ring buffer that is
 *    flushed to `ProbeSink::onBatch()` whenever it fills (and on flush()/
 *    detach). The default `onBatch` replays the per-event virtuals in
 *    order, so every sink observes the exact same event sequence either
 *    way — batching only amortizes the dispatch cost, it never reorders,
 *    drops, or duplicates events. Results are bit-identical by
 *    construction.
 *
 * In the batched pipeline a conditional branch is one fused block+branch
 * record (`ProbeEvent::kBlockBranch`) instead of the two separate virtual
 * calls the per-event path pays, so branch sites cost a single dispatch.
 *
 * This layer is the stand-in for binary instrumentation / hardware
 * performance counters in the paper's methodology (Intel VTune + Linux
 * perf, §III-B): instead of sampling a real PMU we observe the actual
 * dynamic instruction, memory, and branch stream of the same algorithms.
 */

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace vtrans::trace {

/** Classifies what a code site represents. */
enum class SiteKind : uint8_t {
    Block,         ///< Straight-line code; no terminating conditional.
    BlockLoadDep,  ///< Straight-line code consuming just-loaded data.
    Branch,        ///< Ends in a conditional branch (direction is probed).
    BranchLoadDep, ///< Conditional branch whose condition depends on a load.
};

/**
 * A static basic block of the (virtual) workload binary.
 *
 * `address` is the block's position in the virtual code layout; the
 * AutoFDO-style relayout pass rewrites it. `invert` models branch-polarity
 * flipping by basic-block chaining: when set, the dynamic direction fed to
 * the frontend is inverted so that the hot successor becomes fall-through.
 */
struct CodeSite
{
    uint32_t id = 0;           ///< Dense index into the registry.
    std::string name;          ///< Hierarchical name, e.g. "me.sad.row".
    uint32_t bytes = 0;        ///< Static code size of the block in bytes.
    uint32_t instructions = 0; ///< Non-memory, non-branch instructions.
    SiteKind kind = SiteKind::Block;
    uint64_t address = 0;      ///< Current layout address (mutable).
    bool invert = false;       ///< Branch polarity flip from relayout.
};

/**
 * One dynamic event of the batched pipeline, as a compact 16-byte POD.
 *
 * Only the operand fields a kind defines are written on append; the rest
 * keep whatever the buffer slot last held, so consumers must not read
 * them. Branch records carry the direction *after* layout polarity is
 * applied (exactly what the per-event path hands to `onBranch`).
 */
struct ProbeEvent
{
    enum Kind : uint8_t {
        kBlock = 0,       ///< Block executed. aux = site id.
        kBlockBranch = 1, ///< Fused block + terminating conditional branch.
                          ///< aux = site id, flags bit 0 = taken.
        kLoad = 2,        ///< Data load. addr = address, aux = bytes.
        kStore = 3,       ///< Data store. addr = address, aux = bytes.
    };

    uint64_t addr;  ///< Load/store simulated address.
    uint32_t aux;   ///< Site id (block/branch) or byte count (load/store).
    uint8_t kind;   ///< A Kind value.
    uint8_t flags;  ///< kBlockBranch: bit 0 = taken (post-polarity).
    uint16_t reserved;
};

static_assert(sizeof(ProbeEvent) == 16, "probe events must stay compact");

/** Receives dynamic events from instrumented code. */
class ProbeSink
{
  public:
    virtual ~ProbeSink() = default;

    /** A basic block executed (implies fetch of its bytes). */
    virtual void onBlock(const CodeSite& site) = 0;

    /**
     * The conditional branch terminating `site` executed.
     * @param taken Direction after layout polarity is applied.
     */
    virtual void onBranch(const CodeSite& site, bool taken) = 0;

    /** A data load of `bytes` at simulated address `addr`. */
    virtual void onLoad(uint64_t addr, uint32_t bytes) = 0;

    /** A data store of `bytes` at simulated address `addr`. */
    virtual void onStore(uint64_t addr, uint32_t bytes) = 0;

    /**
     * A block of events from the batched pipeline, in emission order.
     *
     * The default implementation replays the per-event virtuals (a fused
     * kBlockBranch record replays as onBlock then onBranch), so existing
     * sinks work under batching unchanged. Performance-critical sinks
     * override this to consume the records directly and skip the
     * per-event virtual dispatch entirely.
     */
    virtual void onBatch(const ProbeEvent* events, size_t count);
};

/**
 * Fans every probe event out to a chain of sinks, in order.
 *
 * This is how an observer (the hotspot profiler, an event recorder) taps
 * the same event stream the core timing model consumes without perturbing
 * it: `g_sink` stays a single thread-local pointer, and the tee forwards
 * each event to every chained sink before returning. Sinks are invoked in
 * chain order, so a pure observer placed after the model sees exactly the
 * stream the model has already accounted.
 *
 * Under the batched pipeline the tee forwards each flushed batch whole:
 * sink 1 consumes the entire block before sink 2 starts. Each sink still
 * observes the identical event sequence in the identical order, so any
 * per-sink result is unchanged; only the interleaving *between* sinks
 * differs from the per-event path, which no sink can observe.
 *
 * The tee itself is not thread-safe; like any sink it is attached to one
 * thread via `setSink` and owned by that thread's run.
 */
class TeeSink : public ProbeSink
{
  public:
    TeeSink() = default;
    explicit TeeSink(std::vector<ProbeSink*> sinks);

    /** Appends a sink to the chain (must not be null). */
    void add(ProbeSink* sink);

    /** The chained sinks, in dispatch order. */
    const std::vector<ProbeSink*>& sinks() const { return sinks_; }

    void onBlock(const CodeSite& site) override;
    void onBranch(const CodeSite& site, bool taken) override;
    void onLoad(uint64_t addr, uint32_t bytes) override;
    void onStore(uint64_t addr, uint32_t bytes) override;
    void onBatch(const ProbeEvent* events, size_t count) override;

  private:
    std::vector<ProbeSink*> sinks_;
};

/**
 * The global table of code sites plus the default code layout.
 *
 * Sites register once (function-local statics in kernel code) and persist
 * for the process lifetime; registration and layout reset are mutex-guarded
 * so worker threads may run instrumented code concurrently (site storage is
 * stable, so readers need no lock). Registration *order* still determines
 * the default layout — processes that run workers should register all sites
 * serially first (see `farm::Farm::warmupProcess()`).
 * The default layout emulates a compiled binary
 * without profile feedback: blocks appear in registration order, separated
 * by cold-code padding, so the hot working set is diluted across many
 * instruction-cache lines.
 */
class SiteRegistry
{
  public:
    /** Bytes of cold padding placed after each block by default. Sized so
     *  the default layout dilutes the hot working set across many cache
     *  lines and pages, as an unoptimized binary's interleaved cold code
     *  does — the inefficiency profile-guided relayout removes. */
    static constexpr uint32_t kDefaultColdPadding = 1600;
    /** Base virtual address of the text segment. */
    static constexpr uint64_t kTextBase = 0x400000;

    /** Static code sizes are declared per probe block; the surrounding
     *  always-executed function body (prologue, address math, the code
     *  between probes) is modelled by scaling the declared size. This
     *  puts the per-macroblock code walk at a realistic multiple of the
     *  L1i capacity, as in x264. */
    static constexpr uint32_t kCodeScale = 6;

    /** Registers a site and assigns its default-layout address. */
    CodeSite& define(std::string name, uint32_t bytes, uint32_t instructions,
                     SiteKind kind);

    /** All registered sites (stable storage; index == id). */
    const std::vector<CodeSite*>& sites() const { return sites_; }

    /** Looks up a site by id. */
    CodeSite& site(uint32_t id) { return *sites_.at(id); }

    /** Restores default-layout addresses and clears polarity flips. */
    void resetLayout();

    /** Total span of the default layout in bytes (footprint proxy). */
    uint64_t defaultSpan() const { return next_address_ - kTextBase; }

  private:
    std::mutex mu_; ///< Guards registration and layout reset.
    std::vector<CodeSite*> sites_;
    uint64_t next_address_ = kTextBase;
};

/** The process-wide site registry. */
SiteRegistry& registry();

/**
 * The currently attached sink (nullptr when tracing is off).
 *
 * Thread-local: each farm worker attaches its own core model and observes
 * only the events its own thread emits, so concurrent instrumented runs
 * never cross-talk.
 */
extern thread_local ProbeSink* g_sink;

namespace detail {

/**
 * The calling thread's batch cursor. `pos == nullptr` means per-event
 * dispatch; otherwise events append at `pos` within [begin, end) and the
 * block flushes to the sink when full.
 */
struct BatchCursor
{
    ProbeEvent* pos = nullptr;
    ProbeEvent* end = nullptr;
    ProbeEvent* begin = nullptr;
};

extern thread_local BatchCursor g_cursor;

/** Delivers the pending events of this thread's batch to the sink. */
void flushBatch();

} // namespace detail

/** Attaches a sink on this thread in per-event mode (replacing any);
 *  nullptr detaches. Pending batched events of the previously attached
 *  sink are flushed to it first, so no event is ever lost. */
void setSink(ProbeSink* sink);

/**
 * Attaches a sink on this thread with batched dispatch: events accumulate
 * in a thread-local buffer of `batch_capacity` records and are delivered
 * via `ProbeSink::onBatch`. A capacity of 0 or 1 degenerates to per-event
 * dispatch. As with the per-event overload, the previous sink's pending
 * events are flushed before it is replaced.
 */
void setSink(ProbeSink* sink, uint32_t batch_capacity);

/** Delivers any pending batched events on this thread to the sink now.
 *  (Detaching with setSink(nullptr) flushes implicitly.) */
void flush();

/** Compiled-in default batch capacity, chosen from the
 *  bench/microbench_probe capacity sweep (see BENCH_probe.json). */
inline constexpr uint32_t kDefaultProbeBatch = 256;

/**
 * The process-wide default batch capacity used by instrumented runs
 * (core::runInstrumented, uarch::simulate). Initialized on first read
 * from the VTRANS_PROBE_BATCH environment variable when set, else
 * kDefaultProbeBatch; benches override it with --batch-size. 0 selects
 * the per-event path, which is how the pipeline is A/B'd.
 */
uint32_t defaultBatchCapacity();

/** Overrides the process-wide default batch capacity (0 = per-event). */
void setDefaultBatchCapacity(uint32_t capacity);

/** True when a sink is attached on this thread. Kernels use this to skip
 *  probe-argument computation (simulated-address math) on native runs. */
inline bool
active()
{
    return g_sink != nullptr;
}

/** Emits a basic-block execution event. */
inline void
block(const CodeSite& site)
{
    if (g_sink == nullptr) {
        return;
    }
    detail::BatchCursor& cur = detail::g_cursor;
    if (cur.pos != nullptr) {
        ProbeEvent& e = *cur.pos++;
        e.aux = site.id;
        e.kind = ProbeEvent::kBlock;
        if (cur.pos == cur.end) {
            detail::flushBatch();
        }
        return;
    }
    g_sink->onBlock(site);
}

/** Emits a block + conditional-branch event with layout polarity applied.
 *  Batched, this is a single fused record (one dispatch per branch site);
 *  per-event it remains the onBlock + onBranch pair. */
inline void
branch(const CodeSite& site, bool taken)
{
    if (g_sink == nullptr) {
        return;
    }
    const bool direction = taken != site.invert;
    detail::BatchCursor& cur = detail::g_cursor;
    if (cur.pos != nullptr) {
        ProbeEvent& e = *cur.pos++;
        e.aux = site.id;
        e.kind = ProbeEvent::kBlockBranch;
        e.flags = direction ? 1 : 0;
        if (cur.pos == cur.end) {
            detail::flushBatch();
        }
        return;
    }
    g_sink->onBlock(site);
    g_sink->onBranch(site, direction);
}

/** Emits a data-load event. */
inline void
load(uint64_t addr, uint32_t bytes)
{
    if (g_sink == nullptr) {
        return;
    }
    detail::BatchCursor& cur = detail::g_cursor;
    if (cur.pos != nullptr) {
        ProbeEvent& e = *cur.pos++;
        e.addr = addr;
        e.aux = bytes;
        e.kind = ProbeEvent::kLoad;
        if (cur.pos == cur.end) {
            detail::flushBatch();
        }
        return;
    }
    g_sink->onLoad(addr, bytes);
}

/** Emits a data-store event. */
inline void
store(uint64_t addr, uint32_t bytes)
{
    if (g_sink == nullptr) {
        return;
    }
    detail::BatchCursor& cur = detail::g_cursor;
    if (cur.pos != nullptr) {
        ProbeEvent& e = *cur.pos++;
        e.addr = addr;
        e.aux = bytes;
        e.kind = ProbeEvent::kStore;
        if (cur.pos == cur.end) {
            detail::flushBatch();
        }
        return;
    }
    g_sink->onStore(addr, bytes);
}

/**
 * Deterministic simulated-address allocator for workload data structures.
 *
 * Host pointer values vary run to run; every probed buffer instead reserves
 * a range here so data-cache behaviour is exactly reproducible. Addresses
 * are 64-byte aligned and dense, mimicking a heap without randomization.
 */
class SimArena
{
  public:
    /** Base virtual address of the simulated heap. */
    static constexpr uint64_t kHeapBase = 0x100000000ull;

    /** Reserves `bytes` and returns the range's base address.
     *  `align` must be a power of two; an allocation that would wrap the
     *  64-bit simulated address space is an invariant violation. */
    uint64_t
    alloc(uint64_t bytes, uint64_t align = 64)
    {
        VT_ASSERT(align != 0 && (align & (align - 1)) == 0,
                  "arena alignment must be a power of two, got ", align);
        const uint64_t base = (next_ + align - 1) & ~(align - 1);
        VT_ASSERT(base >= next_,
                  "arena alignment overflows the simulated address space");
        VT_ASSERT(bytes <= UINT64_MAX - base,
                  "arena allocation of ", bytes,
                  " bytes overflows the simulated address space");
        next_ = base + bytes;
        return base;
    }

    /** Returns the allocator to an empty heap (new measurement run). */
    void reset() { next_ = kHeapBase; }

    /** Bytes allocated since the last reset. */
    uint64_t used() const { return next_ - kHeapBase; }

  private:
    uint64_t next_ = kHeapBase;
};

/** The simulated heap of the calling thread (one arena per thread, so
 *  concurrent runs allocate identical, non-interfering address ranges). */
SimArena& arena();

} // namespace vtrans::trace

/**
 * Declares (once) a static code site bound to a local reference.
 * Usage: VT_SITE(site, "me.sad.row", 48, 10, Block);
 */
#define VT_SITE(var, name, bytes, instrs, kindtag) \
    static ::vtrans::trace::CodeSite& var = \
        ::vtrans::trace::registry().define( \
            name, bytes, instrs, ::vtrans::trace::SiteKind::kindtag)

#endif // VTRANS_TRACE_PROBE_H_

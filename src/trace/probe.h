#ifndef VTRANS_TRACE_PROBE_H_
#define VTRANS_TRACE_PROBE_H_

/**
 * @file
 * The probe bus: the contract between instrumented workload code (the
 * codec's hot kernels) and observers (the microarchitecture simulator, the
 * AutoFDO-style profile collector).
 *
 * Instrumented code declares static CodeSites — symbolic basic blocks with
 * a size in code bytes, an instruction count, and a mutable layout address —
 * and emits dynamic events through the free functions block()/branch()/
 * load()/store(). When no sink is attached the per-event cost is a single
 * predictable branch, so the codec can also run "natively".
 *
 * This layer is the stand-in for binary instrumentation / hardware
 * performance counters in the paper's methodology (Intel VTune + Linux
 * perf, §III-B): instead of sampling a real PMU we observe the actual
 * dynamic instruction, memory, and branch stream of the same algorithms.
 */

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace vtrans::trace {

/** Classifies what a code site represents. */
enum class SiteKind : uint8_t {
    Block,         ///< Straight-line code; no terminating conditional.
    BlockLoadDep,  ///< Straight-line code consuming just-loaded data.
    Branch,        ///< Ends in a conditional branch (direction is probed).
    BranchLoadDep, ///< Conditional branch whose condition depends on a load.
};

/**
 * A static basic block of the (virtual) workload binary.
 *
 * `address` is the block's position in the virtual code layout; the
 * AutoFDO-style relayout pass rewrites it. `invert` models branch-polarity
 * flipping by basic-block chaining: when set, the dynamic direction fed to
 * the frontend is inverted so that the hot successor becomes fall-through.
 */
struct CodeSite
{
    uint32_t id = 0;           ///< Dense index into the registry.
    std::string name;          ///< Hierarchical name, e.g. "me.sad.row".
    uint32_t bytes = 0;        ///< Static code size of the block in bytes.
    uint32_t instructions = 0; ///< Non-memory, non-branch instructions.
    SiteKind kind = SiteKind::Block;
    uint64_t address = 0;      ///< Current layout address (mutable).
    bool invert = false;       ///< Branch polarity flip from relayout.
};

/** Receives dynamic events from instrumented code. */
class ProbeSink
{
  public:
    virtual ~ProbeSink() = default;

    /** A basic block executed (implies fetch of its bytes). */
    virtual void onBlock(const CodeSite& site) = 0;

    /**
     * The conditional branch terminating `site` executed.
     * @param taken Direction after layout polarity is applied.
     */
    virtual void onBranch(const CodeSite& site, bool taken) = 0;

    /** A data load of `bytes` at simulated address `addr`. */
    virtual void onLoad(uint64_t addr, uint32_t bytes) = 0;

    /** A data store of `bytes` at simulated address `addr`. */
    virtual void onStore(uint64_t addr, uint32_t bytes) = 0;
};

/**
 * Fans every probe event out to a chain of sinks, in order.
 *
 * This is how an observer (the hotspot profiler, an event recorder) taps
 * the same event stream the core timing model consumes without perturbing
 * it: `g_sink` stays a single thread-local pointer, and the tee forwards
 * each event to every chained sink before returning. Sinks are invoked in
 * chain order, so a pure observer placed after the model sees exactly the
 * stream the model has already accounted.
 *
 * The tee itself is not thread-safe; like any sink it is attached to one
 * thread via `setSink` and owned by that thread's run.
 */
class TeeSink : public ProbeSink
{
  public:
    TeeSink() = default;
    explicit TeeSink(std::vector<ProbeSink*> sinks);

    /** Appends a sink to the chain (must not be null). */
    void add(ProbeSink* sink);

    /** The chained sinks, in dispatch order. */
    const std::vector<ProbeSink*>& sinks() const { return sinks_; }

    void onBlock(const CodeSite& site) override;
    void onBranch(const CodeSite& site, bool taken) override;
    void onLoad(uint64_t addr, uint32_t bytes) override;
    void onStore(uint64_t addr, uint32_t bytes) override;

  private:
    std::vector<ProbeSink*> sinks_;
};

/**
 * The global table of code sites plus the default code layout.
 *
 * Sites register once (function-local statics in kernel code) and persist
 * for the process lifetime; registration and layout reset are mutex-guarded
 * so worker threads may run instrumented code concurrently (site storage is
 * stable, so readers need no lock). Registration *order* still determines
 * the default layout — processes that run workers should register all sites
 * serially first (see `farm::Farm::warmupProcess()`).
 * The default layout emulates a compiled binary
 * without profile feedback: blocks appear in registration order, separated
 * by cold-code padding, so the hot working set is diluted across many
 * instruction-cache lines.
 */
class SiteRegistry
{
  public:
    /** Bytes of cold padding placed after each block by default. Sized so
     *  the default layout dilutes the hot working set across many cache
     *  lines and pages, as an unoptimized binary's interleaved cold code
     *  does — the inefficiency profile-guided relayout removes. */
    static constexpr uint32_t kDefaultColdPadding = 1600;
    /** Base virtual address of the text segment. */
    static constexpr uint64_t kTextBase = 0x400000;

    /** Static code sizes are declared per probe block; the surrounding
     *  always-executed function body (prologue, address math, the code
     *  between probes) is modelled by scaling the declared size. This
     *  puts the per-macroblock code walk at a realistic multiple of the
     *  L1i capacity, as in x264. */
    static constexpr uint32_t kCodeScale = 6;

    /** Registers a site and assigns its default-layout address. */
    CodeSite& define(std::string name, uint32_t bytes, uint32_t instructions,
                     SiteKind kind);

    /** All registered sites (stable storage; index == id). */
    const std::vector<CodeSite*>& sites() const { return sites_; }

    /** Looks up a site by id. */
    CodeSite& site(uint32_t id) { return *sites_.at(id); }

    /** Restores default-layout addresses and clears polarity flips. */
    void resetLayout();

    /** Total span of the default layout in bytes (footprint proxy). */
    uint64_t defaultSpan() const { return next_address_ - kTextBase; }

  private:
    std::mutex mu_; ///< Guards registration and layout reset.
    std::vector<CodeSite*> sites_;
    uint64_t next_address_ = kTextBase;
};

/** The process-wide site registry. */
SiteRegistry& registry();

/**
 * The currently attached sink (nullptr when tracing is off).
 *
 * Thread-local: each farm worker attaches its own core model and observes
 * only the events its own thread emits, so concurrent instrumented runs
 * never cross-talk.
 */
extern thread_local ProbeSink* g_sink;

/** Attaches a sink on this thread (replacing any); nullptr detaches. */
void setSink(ProbeSink* sink);

/** Emits a basic-block execution event. */
inline void
block(const CodeSite& site)
{
    if (g_sink) {
        g_sink->onBlock(site);
    }
}

/** Emits a block + conditional-branch event with layout polarity applied. */
inline void
branch(const CodeSite& site, bool taken)
{
    if (g_sink) {
        g_sink->onBlock(site);
        g_sink->onBranch(site, taken != site.invert);
    }
}

/** Emits a data-load event. */
inline void
load(uint64_t addr, uint32_t bytes)
{
    if (g_sink) {
        g_sink->onLoad(addr, bytes);
    }
}

/** Emits a data-store event. */
inline void
store(uint64_t addr, uint32_t bytes)
{
    if (g_sink) {
        g_sink->onStore(addr, bytes);
    }
}

/**
 * Deterministic simulated-address allocator for workload data structures.
 *
 * Host pointer values vary run to run; every probed buffer instead reserves
 * a range here so data-cache behaviour is exactly reproducible. Addresses
 * are 64-byte aligned and dense, mimicking a heap without randomization.
 */
class SimArena
{
  public:
    /** Base virtual address of the simulated heap. */
    static constexpr uint64_t kHeapBase = 0x100000000ull;

    /** Reserves `bytes` and returns the range's base address. */
    uint64_t
    alloc(uint64_t bytes, uint64_t align = 64)
    {
        uint64_t base = (next_ + align - 1) & ~(align - 1);
        next_ = base + bytes;
        return base;
    }

    /** Returns the allocator to an empty heap (new measurement run). */
    void reset() { next_ = kHeapBase; }

    /** Bytes allocated since the last reset. */
    uint64_t used() const { return next_ - kHeapBase; }

  private:
    uint64_t next_ = kHeapBase;
};

/** The simulated heap of the calling thread (one arena per thread, so
 *  concurrent runs allocate identical, non-interfering address ranges). */
SimArena& arena();

} // namespace vtrans::trace

/**
 * Declares (once) a static code site bound to a local reference.
 * Usage: VT_SITE(site, "me.sad.row", 48, 10, Block);
 */
#define VT_SITE(var, name, bytes, instrs, kindtag) \
    static ::vtrans::trace::CodeSite& var = \
        ::vtrans::trace::registry().define( \
            name, bytes, instrs, ::vtrans::trace::SiteKind::kindtag)

#endif // VTRANS_TRACE_PROBE_H_

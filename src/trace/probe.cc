#include "trace/probe.h"

#include <atomic>
#include <cstdlib>

#include "common/status.h"

namespace vtrans::trace {

thread_local ProbeSink* g_sink = nullptr;

namespace detail {

thread_local BatchCursor g_cursor;

namespace {

/// Backing storage for this thread's batch buffer. Owned here (not in the
/// cursor) so the hot emit path only touches the three cursor pointers.
thread_local std::vector<ProbeEvent> t_batch_storage;

} // namespace

void
flushBatch()
{
    BatchCursor& cur = g_cursor;
    const size_t count = static_cast<size_t>(cur.pos - cur.begin);
    cur.pos = cur.begin;
    if (count > 0 && g_sink != nullptr) {
        g_sink->onBatch(cur.begin, count);
    }
}

} // namespace detail

namespace {

/// Sentinel meaning "not yet initialized from the environment".
constexpr uint32_t kBatchUnset = UINT32_MAX;

std::atomic<uint32_t> g_default_batch{kBatchUnset};

uint32_t
batchCapacityFromEnv()
{
    const char* env = std::getenv("VTRANS_PROBE_BATCH");
    if (env != nullptr && *env != '\0') {
        char* end = nullptr;
        const long value = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && value >= 0 &&
            value < static_cast<long>(kBatchUnset)) {
            return static_cast<uint32_t>(value);
        }
    }
    return kDefaultProbeBatch;
}

} // namespace

uint32_t
defaultBatchCapacity()
{
    uint32_t value = g_default_batch.load(std::memory_order_relaxed);
    if (value == kBatchUnset) {
        value = batchCapacityFromEnv();
        g_default_batch.store(value, std::memory_order_relaxed);
    }
    return value;
}

void
setDefaultBatchCapacity(uint32_t capacity)
{
    VT_ASSERT(capacity != kBatchUnset, "batch capacity out of range");
    g_default_batch.store(capacity, std::memory_order_relaxed);
}

void
setSink(ProbeSink* sink)
{
    flush();
    g_sink = sink;
    detail::g_cursor = detail::BatchCursor{};
}

void
setSink(ProbeSink* sink, uint32_t batch_capacity)
{
    flush();
    g_sink = sink;
    if (sink != nullptr && batch_capacity >= 2) {
        std::vector<ProbeEvent>& storage = detail::t_batch_storage;
        if (storage.size() < batch_capacity) {
            storage.resize(batch_capacity);
        }
        detail::g_cursor.begin = storage.data();
        detail::g_cursor.pos = storage.data();
        detail::g_cursor.end = storage.data() + batch_capacity;
    } else {
        detail::g_cursor = detail::BatchCursor{};
    }
}

void
flush()
{
    if (detail::g_cursor.pos != nullptr) {
        detail::flushBatch();
    }
}

void
ProbeSink::onBatch(const ProbeEvent* events, size_t count)
{
    SiteRegistry& reg = registry();
    for (size_t i = 0; i < count; ++i) {
        const ProbeEvent& e = events[i];
        switch (e.kind) {
        case ProbeEvent::kBlock:
            onBlock(reg.site(e.aux));
            break;
        case ProbeEvent::kBlockBranch: {
            const CodeSite& site = reg.site(e.aux);
            onBlock(site);
            onBranch(site, (e.flags & 1) != 0);
            break;
        }
        case ProbeEvent::kLoad:
            onLoad(e.addr, e.aux);
            break;
        case ProbeEvent::kStore:
            onStore(e.addr, e.aux);
            break;
        default:
            VT_PANIC("corrupt probe event kind ", static_cast<int>(e.kind));
        }
    }
}

TeeSink::TeeSink(std::vector<ProbeSink*> sinks)
{
    for (ProbeSink* sink : sinks) {
        add(sink);
    }
}

void
TeeSink::add(ProbeSink* sink)
{
    VT_ASSERT(sink != nullptr, "cannot chain a null probe sink");
    sinks_.push_back(sink);
}

void
TeeSink::onBlock(const CodeSite& site)
{
    for (ProbeSink* sink : sinks_) {
        sink->onBlock(site);
    }
}

void
TeeSink::onBranch(const CodeSite& site, bool taken)
{
    for (ProbeSink* sink : sinks_) {
        sink->onBranch(site, taken);
    }
}

void
TeeSink::onLoad(uint64_t addr, uint32_t bytes)
{
    for (ProbeSink* sink : sinks_) {
        sink->onLoad(addr, bytes);
    }
}

void
TeeSink::onStore(uint64_t addr, uint32_t bytes)
{
    for (ProbeSink* sink : sinks_) {
        sink->onStore(addr, bytes);
    }
}

void
TeeSink::onBatch(const ProbeEvent* events, size_t count)
{
    // Forward the batch whole: each sink consumes the identical event
    // sequence in the identical order, so per-sink results match the
    // per-event tee exactly; only the (unobservable) interleaving between
    // independent sinks differs.
    for (ProbeSink* sink : sinks_) {
        sink->onBatch(events, count);
    }
}

SiteRegistry&
registry()
{
    static SiteRegistry instance;
    return instance;
}

SimArena&
arena()
{
    thread_local SimArena instance;
    return instance;
}

CodeSite&
SiteRegistry::define(std::string name, uint32_t bytes, uint32_t instructions,
                     SiteKind kind)
{
    VT_ASSERT(bytes > 0, "code site must have non-zero size: ", name);
    std::lock_guard<std::mutex> lock(mu_);
    auto* site = new CodeSite;
    site->id = static_cast<uint32_t>(sites_.size());
    site->name = std::move(name);
    site->bytes = bytes * kCodeScale;
    site->instructions = instructions;
    site->kind = kind;
    site->address = next_address_;
    next_address_ += site->bytes + kDefaultColdPadding;
    sites_.push_back(site);
    return *site;
}

void
SiteRegistry::resetLayout()
{
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t addr = kTextBase;
    for (CodeSite* site : sites_) {
        site->address = addr;
        site->invert = false;
        addr += site->bytes + kDefaultColdPadding;
    }
    next_address_ = addr;
}

} // namespace vtrans::trace

#include "trace/probe.h"

#include "common/status.h"

namespace vtrans::trace {

thread_local ProbeSink* g_sink = nullptr;

void
setSink(ProbeSink* sink)
{
    g_sink = sink;
}

TeeSink::TeeSink(std::vector<ProbeSink*> sinks)
{
    for (ProbeSink* sink : sinks) {
        add(sink);
    }
}

void
TeeSink::add(ProbeSink* sink)
{
    VT_ASSERT(sink != nullptr, "cannot chain a null probe sink");
    sinks_.push_back(sink);
}

void
TeeSink::onBlock(const CodeSite& site)
{
    for (ProbeSink* sink : sinks_) {
        sink->onBlock(site);
    }
}

void
TeeSink::onBranch(const CodeSite& site, bool taken)
{
    for (ProbeSink* sink : sinks_) {
        sink->onBranch(site, taken);
    }
}

void
TeeSink::onLoad(uint64_t addr, uint32_t bytes)
{
    for (ProbeSink* sink : sinks_) {
        sink->onLoad(addr, bytes);
    }
}

void
TeeSink::onStore(uint64_t addr, uint32_t bytes)
{
    for (ProbeSink* sink : sinks_) {
        sink->onStore(addr, bytes);
    }
}

SiteRegistry&
registry()
{
    static SiteRegistry instance;
    return instance;
}

SimArena&
arena()
{
    thread_local SimArena instance;
    return instance;
}

CodeSite&
SiteRegistry::define(std::string name, uint32_t bytes, uint32_t instructions,
                     SiteKind kind)
{
    VT_ASSERT(bytes > 0, "code site must have non-zero size: ", name);
    std::lock_guard<std::mutex> lock(mu_);
    auto* site = new CodeSite;
    site->id = static_cast<uint32_t>(sites_.size());
    site->name = std::move(name);
    site->bytes = bytes * kCodeScale;
    site->instructions = instructions;
    site->kind = kind;
    site->address = next_address_;
    next_address_ += site->bytes + kDefaultColdPadding;
    sites_.push_back(site);
    return *site;
}

void
SiteRegistry::resetLayout()
{
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t addr = kTextBase;
    for (CodeSite* site : sites_) {
        site->address = addr;
        site->invert = false;
        addr += site->bytes + kDefaultColdPadding;
    }
    next_address_ = addr;
}

} // namespace vtrans::trace

#ifndef VTRANS_LAYOUT_PROFILE_H_
#define VTRANS_LAYOUT_PROFILE_H_

/**
 * @file
 * Execution profiling for feedback-directed code layout — the stand-in for
 * AutoFDO's perf-sample collection (paper §III-B3): per-block execution
 * counts, per-branch direction counts, and dynamic block-successor edge
 * counts (the call/fallthrough affinity graph Pettis-Hansen chaining
 * needs).
 */

#include <cstdint>
#include <tuple>
#include <vector>

#include "trace/probe.h"

namespace vtrans::layout {

/** Profile counters for one code site. */
struct SiteProfile
{
    uint64_t executions = 0;
    uint64_t taken = 0;      ///< Branch sites: times the branch was taken.
    uint64_t not_taken = 0;
};

/**
 * A ProbeSink that records the execution profile of a workload run.
 * Attach with trace::setSink, run the training workload, detach.
 */
class ProfileCollector : public trace::ProbeSink
{
  public:
    ProfileCollector();

    void onBlock(const trace::CodeSite& site) override;
    void onBranch(const trace::CodeSite& site, bool taken) override;
    void onLoad(uint64_t, uint32_t) override {}
    void onStore(uint64_t, uint32_t) override {}

    /** Per-site counters (indexed by site id; grows as sites register). */
    const std::vector<SiteProfile>& sites() const { return sites_; }

    /** Dynamic successor-edge count from site `a` to site `b`. */
    uint64_t edgeCount(uint32_t a, uint32_t b) const;

    /** All edges with non-zero counts as (from, to, count). */
    std::vector<std::tuple<uint32_t, uint32_t, uint64_t>> edges() const;

    /** Total block events observed. */
    uint64_t totalExecutions() const { return total_; }

  private:
    void ensureSize(uint32_t id);

    std::vector<SiteProfile> sites_;
    // Successor counts as a flat hash: key = (from << 32) | to.
    std::vector<std::pair<uint64_t, uint64_t>> edge_slots_;
    uint32_t last_site_ = UINT32_MAX;
    uint64_t total_ = 0;
};

} // namespace vtrans::layout

#endif // VTRANS_LAYOUT_PROFILE_H_

#include "layout/relayout.h"

#include <algorithm>
#include <sstream>

#include "common/status.h"
#include "trace/probe.h"

namespace vtrans::layout {

namespace {

/** Union-find over chain ids with chain order bookkeeping. */
struct Chains
{
    // For each site: the chain it belongs to; chains are vectors of site
    // ids in placement order.
    std::vector<int> chain_of;
    std::vector<std::vector<uint32_t>> members;

    explicit Chains(size_t n) : chain_of(n)
    {
        members.resize(n);
        for (size_t i = 0; i < n; ++i) {
            chain_of[i] = static_cast<int>(i);
            members[i] = {static_cast<uint32_t>(i)};
        }
    }

    /** Merges b's chain onto the tail of a's chain if a ends its chain
     *  and b starts its own (classic Pettis-Hansen condition). */
    bool
    tryMerge(uint32_t a, uint32_t b)
    {
        const int ca = chain_of[a];
        const int cb = chain_of[b];
        if (ca == cb) {
            return false;
        }
        if (members[ca].back() != a || members[cb].front() != b) {
            return false;
        }
        for (uint32_t m : members[cb]) {
            chain_of[m] = ca;
        }
        members[ca].insert(members[ca].end(), members[cb].begin(),
                           members[cb].end());
        members[cb].clear();
        return true;
    }
};

} // namespace

RelayoutResult
applyProfileGuidedLayout(const ProfileCollector& profile,
                         const RelayoutOptions& options)
{
    auto& registry = trace::registry();
    const auto& sites = registry.sites();
    const size_t n = sites.size();
    RelayoutResult result;
    result.span_before = registry.defaultSpan();
    if (n == 0) {
        return result;
    }

    auto execCount = [&](uint32_t id) -> uint64_t {
        return id < profile.sites().size()
                   ? profile.sites()[id].executions
                   : 0;
    };

    uint64_t hottest = 0;
    for (size_t i = 0; i < n; ++i) {
        hottest = std::max(hottest, execCount(static_cast<uint32_t>(i)));
    }
    const uint64_t cold_cutoff = static_cast<uint64_t>(
        static_cast<double>(hottest) * options.cold_fraction);

    // --- Pettis-Hansen chaining over the successor-affinity graph -----
    auto edges = profile.edges();
    std::sort(edges.begin(), edges.end(), [](const auto& a, const auto& b) {
        return std::get<2>(a) > std::get<2>(b);
    });

    Chains chains(n);
    for (const auto& [from, to, count] : edges) {
        if (count == 0 || from >= n || to >= n) {
            continue;
        }
        chains.tryMerge(from, to);
    }

    // Order chains by total heat, descending.
    struct ChainInfo
    {
        uint64_t heat = 0;
        const std::vector<uint32_t>* members = nullptr;
    };
    std::vector<ChainInfo> order;
    for (const auto& members : chains.members) {
        if (members.empty()) {
            continue;
        }
        ChainInfo info;
        info.members = &members;
        for (uint32_t m : members) {
            info.heat += execCount(m);
        }
        order.push_back(info);
    }
    std::sort(order.begin(), order.end(),
              [](const ChainInfo& a, const ChainInfo& b) {
                  return a.heat > b.heat;
              });

    // --- Placement: hot chains packed first, cold blocks after --------
    uint64_t addr = trace::SiteRegistry::kTextBase;
    auto place = [&](uint32_t id) {
        trace::CodeSite& site = registry.site(id);
        addr = (addr + options.block_align - 1)
               & ~static_cast<uint64_t>(options.block_align - 1);
        site.address = addr;
        addr += site.bytes;
    };

    std::vector<uint32_t> cold;
    for (const auto& info : order) {
        const bool is_cold = info.heat <= cold_cutoff;
        for (uint32_t m : *info.members) {
            if (is_cold) {
                cold.push_back(m);
            } else {
                place(m);
            }
        }
        if (!is_cold) {
            ++result.chains;
        }
    }
    result.hot_bytes = addr - trace::SiteRegistry::kTextBase;
    for (uint32_t m : cold) {
        place(m);
    }
    result.cold_bytes =
        addr - trace::SiteRegistry::kTextBase - result.hot_bytes;
    result.span_after = addr - trace::SiteRegistry::kTextBase;

    // --- Branch polarity: make the hot direction fall-through ---------
    for (size_t i = 0; i < n; ++i) {
        trace::CodeSite& site = *sites[i];
        if (site.kind != trace::SiteKind::Branch
            && site.kind != trace::SiteKind::BranchLoadDep) {
            continue;
        }
        const SiteProfile& sp =
            i < profile.sites().size() ? profile.sites()[i] : SiteProfile{};
        const uint64_t total = sp.taken + sp.not_taken;
        if (total == 0) {
            continue;
        }
        const double taken_fraction =
            static_cast<double>(sp.taken) / static_cast<double>(total);
        if (taken_fraction > options.invert_threshold) {
            site.invert = true;
            ++result.inverted_branches;
        }
    }
    return result;
}

std::string
describe(const RelayoutResult& result)
{
    std::ostringstream os;
    os << "relayout: " << result.chains << " hot chains, "
       << result.hot_bytes << "B hot + " << result.cold_bytes
       << "B cold (span " << result.span_before << "B -> "
       << result.span_after << "B), " << result.inverted_branches
       << " branches inverted";
    return os.str();
}

} // namespace vtrans::layout

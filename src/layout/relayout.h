#ifndef VTRANS_LAYOUT_RELAYOUT_H_
#define VTRANS_LAYOUT_RELAYOUT_H_

/**
 * @file
 * Feedback-directed code relayout — the AutoFDO stand-in (paper §III-B3).
 *
 * Two classic mechanisms, both driven by the collected profile:
 *  1. Pettis-Hansen basic-block chaining: blocks that execute
 *     consecutively are merged into chains along the heaviest successor
 *     edges; chains are packed contiguously, hottest first. This shrinks
 *     the hot code's L1i/iTLB footprint (cold padding no longer
 *     interleaves it).
 *  2. Branch-polarity alignment: a branch whose hot direction is "taken"
 *     is inverted so the hot successor becomes the fall-through,
 *     eliminating taken-branch redirect bubbles on the hot path.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "layout/profile.h"

namespace vtrans::layout {

/** Options for the relayout pass. */
struct RelayoutOptions
{
    /** Alignment of each placed block (bytes). */
    uint32_t block_align = 16;
    /** Flip branches whose taken-fraction exceeds this threshold. */
    double invert_threshold = 0.5;
    /** Blocks colder than this fraction of the hottest block are packed
     *  into a separate cold region after the hot chains. */
    double cold_fraction = 1e-4;
};

/** Summary of what the pass changed (for reports and tests). */
struct RelayoutResult
{
    uint64_t hot_bytes = 0;     ///< Bytes in the packed hot region.
    uint64_t cold_bytes = 0;    ///< Bytes in the trailing cold region.
    int chains = 0;             ///< Chains formed by Pettis-Hansen merging.
    int inverted_branches = 0;  ///< Branch sites whose polarity flipped.
    uint64_t span_before = 0;   ///< Address span of the default layout.
    uint64_t span_after = 0;    ///< Address span of the optimized layout.
};

/**
 * Rewrites the addresses (and branch polarities) of every registered code
 * site according to the profile. Call trace::registry().resetLayout() to
 * undo.
 */
RelayoutResult applyProfileGuidedLayout(const ProfileCollector& profile,
                                        const RelayoutOptions& options = {});

/** Renders a short human-readable summary of a relayout. */
std::string describe(const RelayoutResult& result);

} // namespace vtrans::layout

#endif // VTRANS_LAYOUT_RELAYOUT_H_

#include "layout/profile.h"

#include <tuple>

#include "common/status.h"

namespace vtrans::layout {

namespace {
// Open-addressed edge table; plenty for a few hundred sites.
constexpr size_t kEdgeSlots = 1 << 16;
constexpr size_t kEdgeMask = kEdgeSlots - 1;

inline size_t
hashKey(uint64_t key)
{
    key *= 0x9e3779b97f4a7c15ull;
    return static_cast<size_t>(key >> 40) & kEdgeMask;
}
} // namespace

ProfileCollector::ProfileCollector() : edge_slots_(kEdgeSlots, {0, 0}) {}

void
ProfileCollector::ensureSize(uint32_t id)
{
    if (id >= sites_.size()) {
        sites_.resize(id + 1);
    }
}

void
ProfileCollector::onBlock(const trace::CodeSite& site)
{
    ensureSize(site.id);
    ++sites_[site.id].executions;
    ++total_;

    if (last_site_ != UINT32_MAX && last_site_ != site.id) {
        const uint64_t key =
            ((static_cast<uint64_t>(last_site_) << 32) | site.id) + 1;
        size_t slot = hashKey(key);
        while (true) {
            auto& [k, v] = edge_slots_[slot];
            if (k == key) {
                ++v;
                break;
            }
            if (k == 0) {
                k = key;
                v = 1;
                break;
            }
            slot = (slot + 1) & kEdgeMask;
        }
    }
    last_site_ = site.id;
}

void
ProfileCollector::onBranch(const trace::CodeSite& site, bool taken)
{
    ensureSize(site.id);
    if (taken) {
        ++sites_[site.id].taken;
    } else {
        ++sites_[site.id].not_taken;
    }
}

uint64_t
ProfileCollector::edgeCount(uint32_t a, uint32_t b) const
{
    const uint64_t key = ((static_cast<uint64_t>(a) << 32) | b) + 1;
    size_t slot = hashKey(key);
    while (true) {
        const auto& [k, v] = edge_slots_[slot];
        if (k == key) {
            return v;
        }
        if (k == 0) {
            return 0;
        }
        slot = (slot + 1) & kEdgeMask;
    }
}

std::vector<std::tuple<uint32_t, uint32_t, uint64_t>>
ProfileCollector::edges() const
{
    std::vector<std::tuple<uint32_t, uint32_t, uint64_t>> out;
    for (const auto& [k, v] : edge_slots_) {
        if (k != 0) {
            const uint64_t key = k - 1;
            out.emplace_back(static_cast<uint32_t>(key >> 32),
                             static_cast<uint32_t>(key & 0xffffffff), v);
        }
    }
    return out;
}

} // namespace vtrans::layout

#include "codec/arith.h"

#include "common/status.h"
#include "trace/probe.h"

namespace vtrans::codec {

namespace {
/** Renormalization threshold of the 32-bit range. */
constexpr uint32_t kTop = 1u << 24;
} // namespace

// ---- Encoder ---------------------------------------------------------------

void
ArithEncoder::shiftLow()
{
    if (static_cast<uint32_t>(low_ >> 32) != 0
        || static_cast<uint32_t>(low_) < 0xFF000000u) {
        const auto carry = static_cast<uint8_t>(low_ >> 32);
        while (cache_size_ != 0) {
            out_.push_back(static_cast<uint8_t>(cache_ + carry));
            cache_ = 0xFF;
            --cache_size_;
        }
        cache_ = static_cast<uint8_t>(low_ >> 24);
    }
    ++cache_size_;
    low_ = (low_ & 0x00FFFFFFull) << 8;
}

void
ArithEncoder::encodeBit(BinModel& model, int bit)
{
    VT_ASSERT(!finished_, "encode after finish()");
    VT_SITE(site, "arith.encodebit", 48, 7, Block);
    VT_SITE(site_b, "arith.encodebit.br", 12, 1, BranchLoadDep);
    trace::block(site);
    trace::branch(site_b, bit != 0);

    const uint32_t bound = (range_ >> 11) * model.prob0;
    if (bit == 0) {
        range_ = bound;
    } else {
        low_ += bound;
        range_ -= bound;
    }
    model.update(bit);
    while (range_ < kTop) {
        shiftLow();
        range_ <<= 8;
    }
}

void
ArithEncoder::encodeBypass(int bit)
{
    VT_ASSERT(!finished_, "encode after finish()");
    range_ >>= 1;
    if (bit != 0) {
        low_ += range_;
    }
    while (range_ < kTop) {
        shiftLow();
        range_ <<= 8;
    }
}

void
ArithEncoder::encodeBypassBits(uint32_t value, int count)
{
    VT_ASSERT(count >= 0 && count <= 32, "bypass count out of range");
    for (int i = count - 1; i >= 0; --i) {
        encodeBypass(static_cast<int>((value >> i) & 1));
    }
}

void
ArithEncoder::encodeUe(ValueModels& models, uint32_t value)
{
    // Adaptive Elias-gamma: unary-coded bit length of (value + 1) over
    // per-position contexts, then the payload bits in bypass.
    const uint64_t code = static_cast<uint64_t>(value) + 1;
    int len = 0;
    while ((code >> (len + 1)) != 0) {
        ++len;
    }
    for (int i = 0; i < len; ++i) {
        encodeBit(models.length[i], 1);
    }
    encodeBit(models.length[len], 0);
    if (len > 0) {
        encodeBypassBits(static_cast<uint32_t>(code & ((1u << len) - 1)),
                         len);
    }
}

void
ArithEncoder::encodeSe(ValueModels& models, int32_t value)
{
    const uint32_t magnitude =
        value < 0 ? static_cast<uint32_t>(-static_cast<int64_t>(value))
                  : static_cast<uint32_t>(value);
    encodeUe(models, magnitude);
    if (magnitude != 0) {
        encodeBit(models.sign, value < 0 ? 1 : 0);
    }
}

const std::vector<uint8_t>&
ArithEncoder::finish()
{
    if (!finished_) {
        for (int i = 0; i < 5; ++i) {
            shiftLow();
        }
        finished_ = true;
    }
    return out_;
}

// ---- Decoder ---------------------------------------------------------------

ArithDecoder::ArithDecoder(const std::vector<uint8_t>& data) : data_(data)
{
    // The first emitted byte is the encoder's initial cache (always 0);
    // prime the code window with the next four real bytes after it.
    nextByte();
    for (int i = 0; i < 4; ++i) {
        code_ = (code_ << 8) | nextByte();
    }
}

uint8_t
ArithDecoder::nextByte()
{
    // Reading past the end yields zeros: the encoder's final flush pads
    // with enough bytes that any over-read cannot change decoded symbols.
    return pos_ < data_.size() ? data_[pos_++] : 0;
}

int
ArithDecoder::decodeBit(BinModel& model)
{
    VT_SITE(site, "arith.decodebit", 48, 7, Block);
    trace::block(site);

    const uint32_t bound = (range_ >> 11) * model.prob0;
    int bit;
    if (code_ < bound) {
        range_ = bound;
        bit = 0;
    } else {
        code_ -= bound;
        range_ -= bound;
        bit = 1;
    }
    VT_SITE(site_b, "arith.decodebit.br", 12, 1, BranchLoadDep);
    trace::branch(site_b, bit != 0);
    model.update(bit);
    while (range_ < kTop) {
        range_ <<= 8;
        code_ = (code_ << 8) | nextByte();
    }
    return bit;
}

int
ArithDecoder::decodeBypass()
{
    range_ >>= 1;
    int bit = 0;
    if (code_ >= range_) {
        code_ -= range_;
        bit = 1;
    }
    while (range_ < kTop) {
        range_ <<= 8;
        code_ = (code_ << 8) | nextByte();
    }
    return bit;
}

uint32_t
ArithDecoder::decodeBypassBits(int count)
{
    VT_ASSERT(count >= 0 && count <= 32, "bypass count out of range");
    uint32_t value = 0;
    for (int i = 0; i < count; ++i) {
        value = (value << 1) | static_cast<uint32_t>(decodeBypass());
    }
    return value;
}

uint32_t
ArithDecoder::decodeUe(ValueModels& models)
{
    int len = 0;
    while (decodeBit(models.length[len]) == 1) {
        ++len;
        VT_ASSERT(len < 32, "malformed adaptive gamma code");
    }
    uint64_t code = 1;
    if (len > 0) {
        code = (1ull << len) | decodeBypassBits(len);
    }
    return static_cast<uint32_t>(code - 1);
}

int32_t
ArithDecoder::decodeSe(ValueModels& models)
{
    const uint32_t magnitude = decodeUe(models);
    if (magnitude == 0) {
        return 0;
    }
    const int negative = decodeBit(models.sign);
    return negative ? -static_cast<int32_t>(magnitude)
                    : static_cast<int32_t>(magnitude);
}

} // namespace vtrans::codec

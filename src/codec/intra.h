#ifndef VTRANS_CODEC_INTRA_H_
#define VTRANS_CODEC_INTRA_H_

/**
 * @file
 * Intra-frame prediction (paper §II-A): 16x16 luma modes (V/H/DC/Planar),
 * 4x4 luma modes (V/H/DC/diagonal down-left/down-right), and DC chroma
 * prediction. Predictions read already-reconstructed neighbor pixels so
 * encoder and decoder agree exactly.
 */

#include <cstdint>

#include "video/frame.h"

namespace vtrans::codec {

/** Intra 16x16 luma prediction modes. */
enum class Intra16Mode : uint8_t { V = 0, H = 1, DC = 2, Planar = 3 };
constexpr int kIntra16Modes = 4;

/** Intra 4x4 luma prediction modes. */
enum class Intra4Mode : uint8_t {
    V = 0,
    H = 1,
    DC = 2,
    DiagDL = 3,
    DiagDR = 4,
};
constexpr int kIntra4Modes = 5;

/**
 * Predicts a 16x16 luma macroblock at pixel (mx, my) from reconstructed
 * neighbors in `recon` into `pred` (stride 16). Unavailable neighbors
 * (frame edges) degrade per the usual rules (DC 128 fallback, etc.).
 */
void predictIntra16(const video::Frame& recon, int mx, int my,
                    Intra16Mode mode, uint8_t pred[256]);

/**
 * Predicts a 4x4 luma block at pixel (x, y) into `pred` (stride 4).
 * Neighbors to the left/top must already be reconstructed in `recon`.
 */
void predictIntra4(const video::Frame& recon, int x, int y, Intra4Mode mode,
                   uint8_t pred[16]);

/**
 * Predicts an 8x8 chroma block (plane Cb/Cr) at chroma pixel (cx, cy)
 * using DC prediction from reconstructed neighbors.
 */
void predictChromaDc(const video::Frame& recon, video::Plane plane, int cx,
                     int cy, uint8_t pred[64]);

/**
 * Evaluates all 16x16 modes and returns the best by SAD/SATD cost plus
 * a per-mode rate penalty.
 * @param use_satd Use Hadamard SATD (subme >= 7 class decisions).
 * @param lambda_fp Fixed-point lambda (see tables.h).
 * @param cost_out Receives the winning cost.
 */
Intra16Mode chooseIntra16(const video::Frame& cur, const video::Frame& recon,
                          int mx, int my, bool use_satd, int lambda_fp,
                          int* cost_out);

/**
 * Evaluates all 4x4 modes for the block at (x, y) and returns the best.
 */
Intra4Mode chooseIntra4(const video::Frame& cur, const video::Frame& recon,
                        int x, int y, bool use_satd, int lambda_fp,
                        int* cost_out);

} // namespace vtrans::codec

#endif // VTRANS_CODEC_INTRA_H_

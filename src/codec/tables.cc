#include "codec/tables.h"

#include <cmath>

#include "common/status.h"

namespace vtrans::codec {

namespace {

// H.264 forward-quant multipliers, rows = QP % 6, columns = position
// class: a = {(0,0),(0,2),(2,0),(2,2)}, b = {(1,1),(1,3),(3,1),(3,3)},
// c = the remaining positions.
const int kMf[6][3] = {
    {13107, 5243, 8066}, {11916, 4660, 7490}, {10082, 4194, 6554},
    {9362, 3647, 5825},  {8192, 3355, 5243},  {7282, 2893, 4559},
};

// H.264 dequant multipliers with the same (row, class) layout.
const int kV[6][3] = {
    {10, 16, 13}, {11, 18, 14}, {13, 20, 16},
    {14, 23, 18}, {16, 25, 20}, {18, 29, 23},
};

/** Position class (0=a, 1=b, 2=c) of a raster position in a 4x4 block. */
int
posClass(int raster)
{
    const int r = raster >> 2;
    const int c = raster & 3;
    const bool r_even = (r % 2) == 0;
    const bool c_even = (c % 2) == 0;
    if (r_even && c_even) {
        return 0;
    }
    if (!r_even && !c_even) {
        return 1;
    }
    return 2;
}

/** kMf/kV expanded to contiguous per-position rows (one row per QP%6),
 *  so vector quant kernels can load 16 multipliers directly. */
struct ExpandedQuantTables
{
    int32_t mf[6][16];
    int32_t v[6][16];

    ExpandedQuantTables()
    {
        for (int rem = 0; rem < 6; ++rem) {
            for (int pos = 0; pos < 16; ++pos) {
                mf[rem][pos] = kMf[rem][posClass(pos)];
                v[rem][pos] = kV[rem][posClass(pos)];
            }
        }
    }
};

const ExpandedQuantTables&
expandedTables()
{
    static const ExpandedQuantTables tables;
    return tables;
}

} // namespace

const uint8_t kZigzag4x4[16] = {0, 1,  4,  8,  5, 2,  3,  6,
                                9, 12, 13, 10, 7, 11, 14, 15};

const uint8_t kZigzag4x4Inv[16] = {0, 1, 5, 6,  2,  4,  7,  12,
                                   3, 8, 11, 13, 9, 10, 14, 15};

double
qpToQstep(int qp)
{
    VT_ASSERT(qp >= 0 && qp < kQpCount, "QP out of range: ", qp);
    return 0.85 * std::pow(2.0, (qp - 12) / 6.0);
}

int
qstepToQp(double qstep)
{
    if (qstep <= 0.0) {
        return 0;
    }
    const int qp =
        static_cast<int>(std::lround(12.0 + 6.0 * std::log2(qstep / 0.85)));
    return qp < 0 ? 0 : (qp >= kQpCount ? kQpCount - 1 : qp);
}

int
lambdaFp(int qp)
{
    VT_ASSERT(qp >= 0 && qp < kQpCount, "QP out of range: ", qp);
    // x264-style: lambda grows as 2^((qp-12)/6); fixed point with 4
    // fractional bits, floor of 1.
    const double lambda = 0.85 * std::pow(2.0, (qp - 12) / 6.0);
    const int fp = static_cast<int>(std::lround(lambda * 16.0));
    return fp < 1 ? 1 : fp;
}

int
quantMf(int qp, int pos)
{
    VT_ASSERT(qp >= 0 && qp < kQpCount, "QP out of range: ", qp);
    VT_ASSERT(pos >= 0 && pos < 16, "position out of range");
    return kMf[qp % 6][posClass(pos)];
}

int
dequantV(int qp, int pos)
{
    VT_ASSERT(qp >= 0 && qp < kQpCount, "QP out of range: ", qp);
    VT_ASSERT(pos >= 0 && pos < 16, "position out of range");
    return kV[qp % 6][posClass(pos)];
}

const int32_t*
quantMfRow(int qp)
{
    VT_ASSERT(qp >= 0 && qp < kQpCount, "QP out of range: ", qp);
    return expandedTables().mf[qp % 6];
}

const int32_t*
dequantVRow(int qp)
{
    VT_ASSERT(qp >= 0 && qp < kQpCount, "QP out of range: ", qp);
    return expandedTables().v[qp % 6];
}

} // namespace vtrans::codec

#include "codec/intra.h"

#include <algorithm>
#include <cstdlib>

#include "codec/pixel.h"
#include "common/status.h"
#include "trace/probe.h"

namespace vtrans::codec {

using video::Frame;
using video::Plane;

namespace {

/** Gathers the 16 top and 16 left reconstructed neighbors of an MB. */
struct Neighbors16
{
    uint8_t top[16];
    uint8_t left[16];
    bool have_top = false;
    bool have_left = false;
};

Neighbors16
gatherNeighbors16(const Frame& recon, int mx, int my)
{
    VT_SITE(site, "intra.gather16", 64, 18, Block);
    trace::block(site);
    Neighbors16 n;
    if (my > 0) {
        n.have_top = true;
        trace::load(recon.simAddr(Plane::Y, mx, my - 1), 16);
        for (int x = 0; x < 16; ++x) {
            n.top[x] = recon.at(Plane::Y, mx + x, my - 1);
        }
    }
    if (mx > 0) {
        n.have_left = true;
        for (int y = 0; y < 16; ++y) {
            n.left[y] = recon.at(Plane::Y, mx - 1, my + y);
        }
        trace::load(recon.simAddr(Plane::Y, mx - 1, my), 1);
        trace::load(recon.simAddr(Plane::Y, mx - 1, my + 15), 1);
    }
    return n;
}

} // namespace

void
predictIntra16(const Frame& recon, int mx, int my, Intra16Mode mode,
               uint8_t pred[256])
{
    VT_SITE(site, "intra.pred16", 144, 30, Block);
    trace::block(site);
    trace::store(static_cast<uint64_t>(Scratch::Pred), 256);

    const Neighbors16 n = gatherNeighbors16(recon, mx, my);

    switch (mode) {
      case Intra16Mode::V: {
        for (int y = 0; y < 16; ++y) {
            for (int x = 0; x < 16; ++x) {
                pred[y * 16 + x] = n.have_top ? n.top[x] : 128;
            }
        }
        break;
      }
      case Intra16Mode::H: {
        for (int y = 0; y < 16; ++y) {
            const uint8_t v = n.have_left ? n.left[y] : 128;
            for (int x = 0; x < 16; ++x) {
                pred[y * 16 + x] = v;
            }
        }
        break;
      }
      case Intra16Mode::DC: {
        int sum = 0;
        int count = 0;
        if (n.have_top) {
            for (int x = 0; x < 16; ++x) {
                sum += n.top[x];
            }
            count += 16;
        }
        if (n.have_left) {
            for (int y = 0; y < 16; ++y) {
                sum += n.left[y];
            }
            count += 16;
        }
        const uint8_t dc =
            count > 0 ? static_cast<uint8_t>((sum + count / 2) / count) : 128;
        std::fill(pred, pred + 256, dc);
        break;
      }
      case Intra16Mode::Planar: {
        // Simplified plane fit from the corner gradients.
        const int tl = (n.have_top && n.have_left)
                           ? (n.top[0] + n.left[0]) / 2
                           : 128;
        const int tr = n.have_top ? n.top[15] : tl;
        const int bl = n.have_left ? n.left[15] : tl;
        for (int y = 0; y < 16; ++y) {
            for (int x = 0; x < 16; ++x) {
                const int v = tl + ((tr - tl) * x + (bl - tl) * y + 8) / 16;
                pred[y * 16 + x] =
                    static_cast<uint8_t>(std::clamp(v, 0, 255));
            }
        }
        break;
      }
    }
}

void
predictIntra4(const Frame& recon, int x, int y, Intra4Mode mode,
              uint8_t pred[16])
{
    VT_SITE(site, "intra.pred4", 96, 20, Block);
    trace::block(site);
    trace::store(static_cast<uint64_t>(Scratch::Pred), 16);

    const bool have_top = y > 0;
    const bool have_left = x > 0;

    // Eight top neighbors (with top-right replication past the frame edge)
    // and four left neighbors.
    uint8_t top[8];
    uint8_t left[4];
    if (have_top) {
        trace::load(recon.simAddr(Plane::Y, x, y - 1), 8);
        for (int i = 0; i < 8; ++i) {
            const int tx = std::min(x + i, recon.width() - 1);
            top[i] = recon.at(Plane::Y, tx, y - 1);
        }
    } else {
        std::fill(top, top + 8, 128);
    }
    if (have_left) {
        trace::load(recon.simAddr(Plane::Y, x - 1, y), 1);
        for (int i = 0; i < 4; ++i) {
            left[i] = recon.at(Plane::Y, x - 1, y + i);
        }
    } else {
        std::fill(left, left + 4, 128);
    }
    const uint8_t tl = (have_top && have_left)
                           ? recon.at(Plane::Y, x - 1, y - 1)
                           : 128;

    switch (mode) {
      case Intra4Mode::V: {
        for (int r = 0; r < 4; ++r) {
            for (int c = 0; c < 4; ++c) {
                pred[r * 4 + c] = top[c];
            }
        }
        break;
      }
      case Intra4Mode::H: {
        for (int r = 0; r < 4; ++r) {
            for (int c = 0; c < 4; ++c) {
                pred[r * 4 + c] = left[r];
            }
        }
        break;
      }
      case Intra4Mode::DC: {
        int sum = 0;
        int count = 0;
        if (have_top) {
            sum += top[0] + top[1] + top[2] + top[3];
            count += 4;
        }
        if (have_left) {
            sum += left[0] + left[1] + left[2] + left[3];
            count += 4;
        }
        const uint8_t dc =
            count > 0 ? static_cast<uint8_t>((sum + count / 2) / count) : 128;
        std::fill(pred, pred + 16, dc);
        break;
      }
      case Intra4Mode::DiagDL: {
        for (int r = 0; r < 4; ++r) {
            for (int c = 0; c < 4; ++c) {
                const int i = r + c;
                const uint8_t a = top[std::min(i, 7)];
                const uint8_t b = top[std::min(i + 1, 7)];
                pred[r * 4 + c] = static_cast<uint8_t>((a + b + 1) >> 1);
            }
        }
        break;
      }
      case Intra4Mode::DiagDR: {
        for (int r = 0; r < 4; ++r) {
            for (int c = 0; c < 4; ++c) {
                const int d = c - r;
                uint8_t v;
                if (d > 0) {
                    v = top[d - 1];
                } else if (d < 0) {
                    v = left[-d - 1];
                } else {
                    v = tl;
                }
                pred[r * 4 + c] = v;
            }
        }
        break;
      }
    }
}

void
predictChromaDc(const Frame& recon, Plane plane, int cx, int cy,
                uint8_t pred[64])
{
    VT_SITE(site, "intra.predchroma", 72, 16, Block);
    trace::block(site);
    trace::store(static_cast<uint64_t>(Scratch::Pred), 64);

    int sum = 0;
    int count = 0;
    if (cy > 0) {
        trace::load(recon.simAddr(plane, cx, cy - 1), 8);
        for (int x = 0; x < 8; ++x) {
            sum += recon.at(plane, cx + x, cy - 1);
        }
        count += 8;
    }
    if (cx > 0) {
        trace::load(recon.simAddr(plane, cx - 1, cy), 1);
        for (int y = 0; y < 8; ++y) {
            sum += recon.at(plane, cx - 1, cy + y);
        }
        count += 8;
    }
    const uint8_t dc =
        count > 0 ? static_cast<uint8_t>((sum + count / 2) / count) : 128;
    std::fill(pred, pred + 64, dc);
}

Intra16Mode
chooseIntra16(const Frame& cur, const Frame& recon, int mx, int my,
              bool use_satd, int lambda_fp, int* cost_out)
{
    uint8_t pred[256];
    int best_cost = INT32_MAX;
    Intra16Mode best_mode = Intra16Mode::DC;
    for (int m = 0; m < kIntra16Modes; ++m) {
        const auto mode = static_cast<Intra16Mode>(m);
        predictIntra16(recon, mx, my, mode, pred);
        int cost;
        if (use_satd) {
            cost = satdBlock(cur, mx, my, pred, 16, 16, 16,
                             static_cast<uint64_t>(Scratch::Pred));
        } else {
            VT_SITE(site_sad, "intra.sad16", 72, 20, Block);
            trace::block(site_sad);
            cost = 0;
            for (int y = 0; y < 16; ++y) {
                trace::load(cur.simAddr(Plane::Y, mx, my + y), 16);
                trace::load(
                    static_cast<uint64_t>(Scratch::Pred) + y * 16ull, 16);
                for (int x = 0; x < 16; ++x) {
                    cost += std::abs(
                        static_cast<int>(cur.at(Plane::Y, mx + x, my + y))
                        - pred[y * 16 + x]);
                }
            }
        }
        cost += (lambda_fp * 2) >> 4; // ~2 bits per mode signal
        VT_SITE(site_cmp, "intra.cmp16", 12, 1, BranchLoadDep);
        const bool better = cost < best_cost;
        trace::branch(site_cmp, better);
        if (better) {
            best_cost = cost;
            best_mode = mode;
        }
    }
    *cost_out = best_cost;
    return best_mode;
}

Intra4Mode
chooseIntra4(const Frame& cur, const Frame& recon, int x, int y,
             bool use_satd, int lambda_fp, int* cost_out)
{
    uint8_t pred[16];
    int best_cost = INT32_MAX;
    Intra4Mode best_mode = Intra4Mode::DC;
    for (int m = 0; m < kIntra4Modes; ++m) {
        const auto mode = static_cast<Intra4Mode>(m);
        predictIntra4(recon, x, y, mode, pred);
        int cost;
        if (use_satd) {
            cost = satd4x4(cur, x, y, pred, 4,
                           static_cast<uint64_t>(Scratch::Pred));
        } else {
            VT_SITE(site_sad, "intra.sad4", 48, 12, Block);
            trace::block(site_sad);
            cost = 0;
            for (int r = 0; r < 4; ++r) {
                trace::load(cur.simAddr(Plane::Y, x, y + r), 4);
                for (int c = 0; c < 4; ++c) {
                    cost += std::abs(
                        static_cast<int>(cur.at(Plane::Y, x + c, y + r))
                        - pred[r * 4 + c]);
                }
            }
        }
        cost += (lambda_fp * 3) >> 4; // ~3 bits per 4x4 mode signal
        VT_SITE(site_cmp, "intra.cmp4", 12, 1, BranchLoadDep);
        const bool better = cost < best_cost;
        trace::branch(site_cmp, better);
        if (better) {
            best_cost = cost;
            best_mode = mode;
        }
    }
    *cost_out = best_cost;
    return best_mode;
}

} // namespace vtrans::codec

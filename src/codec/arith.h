#ifndef VTRANS_CODEC_ARITH_H_
#define VTRANS_CODEC_ARITH_H_

/**
 * @file
 * Adaptive binary arithmetic coding — the CABAC-style entropy-coding
 * substrate. x264's default entropy coder is CABAC (the paper's Table II
 * trellis levels are tuned against it); VX1's default stream uses
 * exp-Golomb for decode-simplicity, and this module provides the
 * arithmetic alternative: an LZMA-style binary range coder with
 * shift-adapted probability models and adaptive Elias-gamma-shaped
 * binarization for unsigned/signed values.
 *
 * The coder is bit-exact and deterministic: encode(decode(x)) == x for
 * any symbol sequence, verified property-style in the tests, and is
 * instrumented with probes like the rest of the codec so its branchy
 * bin-by-bin profile can be studied under the simulator.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vtrans::codec {

/**
 * One adaptive binary probability model (context).
 * 11-bit probability of the bit being 0, shift-adapted by 1/32 per
 * observation — the classic LZMA/CABAC-state behaviour.
 */
struct BinModel
{
    uint16_t prob0 = 1 << 10; ///< P(bit == 0) in [1, 2047] / 2048.

    void
    update(int bit)
    {
        if (bit == 0) {
            prob0 = static_cast<uint16_t>(prob0 + ((2048 - prob0) >> 5));
        } else {
            prob0 = static_cast<uint16_t>(prob0 - (prob0 >> 5));
        }
    }
};

/** A bank of contexts for adaptive value binarization. */
struct ValueModels
{
    /** Unary-prefix contexts: one per bit-length position. */
    BinModel length[32];
    /** Sign context for signed values. */
    BinModel sign;
};

/** Encodes bits into a byte buffer with an adaptive range coder. */
class ArithEncoder
{
  public:
    /** Encodes one bit under an adaptive context. */
    void encodeBit(BinModel& model, int bit);

    /** Encodes one equiprobable (bypass) bit. */
    void encodeBypass(int bit);

    /** Encodes `count` bypass bits, MSB first. */
    void encodeBypassBits(uint32_t value, int count);

    /**
     * Encodes an unsigned value: the bit-length of value+1 as an
     * adaptive unary code over `models.length`, then the low bits in
     * bypass (adaptive Elias-gamma).
     */
    void encodeUe(ValueModels& models, uint32_t value);

    /** Encodes a signed value: magnitude via encodeUe plus a sign bit. */
    void encodeSe(ValueModels& models, int32_t value);

    /** Flushes and returns the byte stream. */
    const std::vector<uint8_t>& finish();

    /** Bytes emitted so far (grows as the range renormalizes). */
    size_t byteCount() const { return out_.size(); }

  private:
    void shiftLow();

    uint64_t low_ = 0;
    uint32_t range_ = 0xFFFFFFFFu;
    uint8_t cache_ = 0;
    uint64_t cache_size_ = 1;
    std::vector<uint8_t> out_;
    bool finished_ = false;
};

/** Decodes the stream produced by ArithEncoder. */
class ArithDecoder
{
  public:
    /** Wraps an encoded buffer (not owned; must outlive the decoder). */
    explicit ArithDecoder(const std::vector<uint8_t>& data);

    /** Decodes one bit under an adaptive context. */
    int decodeBit(BinModel& model);

    /** Decodes one bypass bit. */
    int decodeBypass();

    /** Decodes `count` bypass bits, MSB first. */
    uint32_t decodeBypassBits(int count);

    /** Decodes a value written by encodeUe. */
    uint32_t decodeUe(ValueModels& models);

    /** Decodes a value written by encodeSe. */
    int32_t decodeSe(ValueModels& models);

  private:
    uint8_t nextByte();

    const std::vector<uint8_t>& data_;
    size_t pos_ = 0;
    uint32_t range_ = 0xFFFFFFFFu;
    uint32_t code_ = 0;
};

} // namespace vtrans::codec

#endif // VTRANS_CODEC_ARITH_H_

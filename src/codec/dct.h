#ifndef VTRANS_CODEC_DCT_H_
#define VTRANS_CODEC_DCT_H_

/**
 * @file
 * The 4x4 integer core transform (H.264-style) and scalar quantization.
 * Encoder path: forwardDct -> quantize (-> trellis) -> bitstream;
 * reconstruction path: dequantize -> inverseDct -> add prediction. The
 * integer design guarantees bit-exact encoder/decoder agreement.
 */

#include <cstdint>

namespace vtrans::codec {

/**
 * Forward 4x4 core transform of a residual block (row-major int16).
 * Output coefficients overwrite the input array.
 */
void forwardDct4x4(int16_t block[16]);

/**
 * Inverse 4x4 core transform of dequantized coefficients, producing the
 * residual (with the standard >> 6 normalization folded in).
 */
void inverseDct4x4(int16_t block[16]);

/**
 * Quantizes transform coefficients in place with a dead-zone quantizer.
 * @param qp Quantization parameter 0..51.
 * @param intra Intra blocks use a larger dead-zone share (1/3 vs 1/6).
 * @return Number of non-zero quantized levels.
 */
int quantize4x4(int16_t block[16], int qp, bool intra);

/** Dequantizes levels in place (inverse of quantize4x4's scaling). */
void dequantize4x4(int16_t block[16], int qp);

} // namespace vtrans::codec

#endif // VTRANS_CODEC_DCT_H_

#include "codec/params.h"

#include <cstdio>
#include <sstream>

#include "common/status.h"

namespace vtrans::codec {

void
EncoderParams::validate() const
{
    if (crf < 0 || crf > 51) {
        VT_FATAL("crf must be in [0, 51], got ", crf);
    }
    if (qp < 0 || qp > 51) {
        VT_FATAL("qp must be in [0, 51], got ", qp);
    }
    if (refs < 1 || refs > 16) {
        VT_FATAL("refs must be in [1, 16], got ", refs);
    }
    if (merange < 4 || merange > 64) {
        VT_FATAL("merange must be in [4, 64], got ", merange);
    }
    if (subme < 0 || subme > 11) {
        VT_FATAL("subme must be in [0, 11], got ", subme);
    }
    if (trellis < 0 || trellis > 2) {
        VT_FATAL("trellis must be in [0, 2], got ", trellis);
    }
    if (bframes < 0 || bframes > 16) {
        VT_FATAL("bframes must be in [0, 16], got ", bframes);
    }
    if (b_adapt < 0 || b_adapt > 2) {
        VT_FATAL("b_adapt must be in [0, 2], got ", b_adapt);
    }
    if (scenecut < 0 || scenecut > 100) {
        VT_FATAL("scenecut must be in [0, 100], got ", scenecut);
    }
    if (aq_mode < 0 || aq_mode > 1) {
        VT_FATAL("aq_mode must be 0 or 1, got ", aq_mode);
    }
    if (keyint < 1) {
        VT_FATAL("keyint must be >= 1, got ", keyint);
    }
    if ((rc == RateControl::ABR || rc == RateControl::TwoPass
         || rc == RateControl::CBR)
        && bitrate_kbps <= 0.0) {
        VT_FATAL("bitrate target must be positive for ", toString(rc));
    }
    if (rc == RateControl::VBV
        && (vbv_maxrate_kbps <= 0.0 || vbv_buffer_kbits <= 0.0)) {
        VT_FATAL("VBV requires positive maxrate and buffer size");
    }
}

const std::vector<std::string>&
presetNames()
{
    static const std::vector<std::string> names = {
        "ultrafast", "superfast", "veryfast", "faster", "fast",
        "medium",    "slow",      "slower",   "veryslow", "placebo",
    };
    return names;
}

EncoderParams
presetParams(const std::string& name, bool preset_refs)
{
    // Table II of the paper, column by column.
    EncoderParams p;
    p.preset = name;
    int table_refs = 3;

    if (name == "ultrafast") {
        p.aq_mode = 0;
        p.b_adapt = 0;
        p.bframes = 0;
        p.deblock = false;
        p.deblock_alpha = 0;
        p.deblock_beta = 0;
        p.me = MeMethod::Dia;
        p.merange = 16;
        p.partitions = {false, false, false};
        table_refs = 1;
        p.scenecut = 0;
        p.subme = 0;
        p.trellis = 0;
    } else if (name == "superfast") {
        p.me = MeMethod::Dia;
        p.partitions = {false, true, true}; // +i8x8,+i4x4 (intra only)
        table_refs = 1;
        p.subme = 1;
        p.trellis = 0;
    } else if (name == "veryfast") {
        p.me = MeMethod::Hex;
        p.partitions = {true, true, true}; // -p4x4 (we have no p4x4)
        table_refs = 1;
        p.subme = 2;
        p.trellis = 0;
    } else if (name == "faster") {
        p.me = MeMethod::Hex;
        table_refs = 2;
        p.subme = 4;
        p.trellis = 1;
    } else if (name == "fast") {
        p.me = MeMethod::Hex;
        table_refs = 2;
        p.subme = 6;
        p.trellis = 1;
    } else if (name == "medium") {
        // All defaults.
        table_refs = 3;
    } else if (name == "slow") {
        p.me = MeMethod::Hex;
        table_refs = 5;
        p.subme = 8;
        p.trellis = 2;
    } else if (name == "slower") {
        p.b_adapt = 2;
        p.me = MeMethod::Umh;
        p.partitions = {true, true, true}; // all
        table_refs = 8;
        p.subme = 9;
        p.trellis = 2;
    } else if (name == "veryslow") {
        p.b_adapt = 2;
        p.bframes = 8;
        p.me = MeMethod::Umh;
        p.merange = 24;
        table_refs = 16;
        p.subme = 10;
        p.trellis = 2;
    } else if (name == "placebo") {
        p.b_adapt = 2;
        p.bframes = 16;
        p.me = MeMethod::Tesa;
        p.merange = 24;
        table_refs = 16;
        p.subme = 11;
        p.trellis = 2;
    } else {
        VT_FATAL("unknown preset: ", name);
    }

    if (preset_refs) {
        p.refs = table_refs;
    }
    return p;
}

namespace {

/** Shortest round-trip rendering of a double (canonical, locale-free). */
std::string
canonNumber(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

std::string
canonicalString(const EncoderParams& p)
{
    // Fixed order, one `tag=value;` per active field. Inert fields are
    // omitted entirely (not rendered with defaults) so their values can
    // never split configs that encode identically. The preset label is
    // deliberately absent — presetParams("medium") and a hand-built
    // default EncoderParams are the same encoding.
    std::ostringstream out;
    out << "rc=" << toString(p.rc) << ';';
    switch (p.rc) {
      case RateControl::CQP:
        out << "qp=" << p.qp << ';';
        break;
      case RateControl::CRF:
        out << "crf=" << p.crf << ';';
        break;
      case RateControl::ABR:
      case RateControl::TwoPass:
      case RateControl::CBR:
        out << "kbps=" << canonNumber(p.bitrate_kbps) << ';';
        break;
      case RateControl::VBV:
        out << "crf=" << p.crf << ';'
            << "vbv=" << canonNumber(p.vbv_maxrate_kbps) << ','
            << canonNumber(p.vbv_buffer_kbits) << ';';
        break;
    }
    out << "refs=" << p.refs << ';' << "keyint=" << p.keyint << ';'
        << "bframes=" << p.bframes << ';';
    if (p.bframes > 0) {
        out << "badapt=" << p.b_adapt << ';';
    }
    out << "scenecut=" << p.scenecut << ';' << "me=" << toString(p.me)
        << ';' << "merange=" << p.merange << ';' << "subme=" << p.subme
        << ';' << "parts=" << int(p.partitions.p8x8)
        << int(p.partitions.i4x4) << int(p.partitions.i8x8) << ';'
        << "trellis=" << p.trellis << ';' << "aq=" << p.aq_mode << ';';
    if (p.aq_mode != 0) {
        out << "aqs=" << canonNumber(p.aq_strength) << ';';
    }
    out << "deblock=" << int(p.deblock) << ';';
    if (p.deblock) {
        out << "dbab=" << p.deblock_alpha << ',' << p.deblock_beta << ';';
    }
    return out.str();
}

uint64_t
canonicalDigest(const EncoderParams& p)
{
    const std::string canon = canonicalString(p);
    uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : canon) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
toString(RateControl rc)
{
    switch (rc) {
      case RateControl::CQP:
        return "CQP";
      case RateControl::CRF:
        return "CRF";
      case RateControl::ABR:
        return "ABR";
      case RateControl::TwoPass:
        return "2-Pass ABR";
      case RateControl::CBR:
        return "CBR";
      case RateControl::VBV:
        return "VBV";
    }
    return "?";
}

std::string
toString(MeMethod me)
{
    switch (me) {
      case MeMethod::Dia:
        return "dia";
      case MeMethod::Hex:
        return "hex";
      case MeMethod::Umh:
        return "umh";
      case MeMethod::Esa:
        return "esa";
      case MeMethod::Tesa:
        return "tesa";
    }
    return "?";
}

std::string
toString(FrameType type)
{
    switch (type) {
      case FrameType::I:
        return "I";
      case FrameType::P:
        return "P";
      case FrameType::B:
        return "B";
    }
    return "?";
}

} // namespace vtrans::codec

#ifndef VTRANS_CODEC_ME_H_
#define VTRANS_CODEC_ME_H_

/**
 * @file
 * Motion estimation (paper §II-B2) — "the most complex and time-consuming
 * component of the x264 encoding process". Implements the four integer-pel
 * search patterns the paper studies (dia, hex, umh, esa; tesa adds an SATD
 * re-rank) plus sub-pel refinement controlled by `subme`, and per-ref
 * search over the reference list controlled by `refs`.
 */

#include <cstdint>
#include <vector>

#include "codec/mv.h"
#include "codec/params.h"
#include "video/frame.h"

namespace vtrans::codec {

/** Result of a motion search for one block. */
struct MeResult
{
    Mv mv;                 ///< Best MV, quarter-pel.
    int ref = 0;           ///< Index into the reference list.
    int cost = INT32_MAX;  ///< Distortion + lambda * rate.
    int sad = INT32_MAX;   ///< Raw distortion of the best candidate.
};

/** Inputs shared by every search in a frame. */
struct MeContext
{
    const video::Frame* cur = nullptr;
    const std::vector<const video::Frame*>* refs = nullptr;
    MeMethod method = MeMethod::Hex;
    int merange = 16;
    int subme = 7;
    int lambda_fp = 16;    ///< Fixed-point lambda (tables.h).

    /** Counters for the characterization harness. */
    mutable uint64_t candidates_evaluated = 0;
};

/**
 * Searches a w x h luma block at (cx, cy) in one reference frame.
 * @param pred_mv The MV predictor (rate costs are relative to it).
 * @param ref_idx Which reference to search (cost includes ref signalling).
 * @return Best MV and cost for this reference.
 */
MeResult searchOneRef(const MeContext& ctx, int cx, int cy, int w, int h,
                      const Mv& pred_mv, int ref_idx,
                      int cost_bound = INT32_MAX);

/**
 * Searches every reference in the list and returns the overall best
 * (ref signalling bits included in the cost comparison).
 */
MeResult searchAllRefs(const MeContext& ctx, int cx, int cy, int w, int h,
                       const Mv& pred_mv);

} // namespace vtrans::codec

#endif // VTRANS_CODEC_ME_H_

#ifndef VTRANS_CODEC_LOOPFLAGS_H_
#define VTRANS_CODEC_LOOPFLAGS_H_

/**
 * @file
 * Loop-optimization switches for the codec's hot pixel loops — the
 * concrete transformations the Graphite polyhedral pass applies when
 * FFmpeg is compiled with -floop-interchange -ftree-loop-distribution
 * -floop-block (paper §III-D1). Each switch selects a semantically
 * identical loop schedule with better locality:
 *
 *  - interchange_deblock: the vertical-edge deblocking pass walks the
 *    frame column-major by default (edge-by-edge); interchanged, it walks
 *    row-major, turning a strided miss storm into sequential reuse.
 *  - fuse_lookahead: the lookahead computes intra and inter cost proxies
 *    in two separate passes over the half-resolution planes; fused, each
 *    block's pixels are loaded once for both.
 *
 * The schedules are verified legal by the loopopt dependence test (see
 * tests/test_loopopt.cc) and produce bit-identical output either way.
 */

namespace vtrans::codec {

/** Which Graphite-style loop transformations are active. */
struct LoopOptFlags
{
    bool interchange_deblock = false;
    bool fuse_lookahead = false;
};

/** Sets the process-wide loop-optimization flags. */
void setLoopOptFlags(const LoopOptFlags& flags);

/** Reads the current flags. */
const LoopOptFlags& loopOptFlags();

} // namespace vtrans::codec

#endif // VTRANS_CODEC_LOOPFLAGS_H_

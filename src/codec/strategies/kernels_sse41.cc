/**
 * @file
 * SSE4.1 strategy kernels (PSADBW SAD, 8-lane Hadamard SATD, 32-bit-lane
 * transform/quant). Compiled with -msse4.1 on x86-64 only and gated at
 * runtime by __builtin_cpu_supports, so the binary stays runnable on any
 * x86-64 CPU.
 *
 * Exactness notes (the differential suite enforces all of these):
 *  - SAD: psadbw accumulates |a-b| over unsigned bytes — exactly the
 *    scalar sum for any input.
 *  - SATD: all Hadamard intermediates are bounded by 16 x 255 = 4080, so
 *    16-bit lanes never wrap; the per-lane |.| sum is reduced through
 *    pmaddwd into 32-bit before it can exceed int16.
 *  - DCT/quant/dequant: computed in 32-bit lanes like the scalar int
 *    intermediates; the final int16 narrowing copies the low 16 bits
 *    (scalar's static_cast wrap), except dequantize where packs_epi32
 *    saturation IS the scalar clamp.
 */

#if defined(__x86_64__) || defined(_M_X64)

#include <cstring>
#include <smmintrin.h>

#include "codec/strategies/kernels_internal.h"
#include "codec/strategies/strategies.h"

namespace vtrans::codec::strategies {

namespace {

/** Horizontal sum of the two 64-bit psadbw accumulators. */
inline int
sadReduce(__m128i acc)
{
    return static_cast<int>(_mm_cvtsi128_si32(acc)
                            + _mm_extract_epi32(acc, 2));
}

/** Unaligned 4-byte load into lane 0 (strict-aliasing safe). */
inline __m128i
load4(const uint8_t* p)
{
    int32_t v;
    std::memcpy(&v, p, 4);
    return _mm_cvtsi32_si128(v);
}

/** Unaligned 8-byte load into the low half. */
inline __m128i
load8(const uint8_t* p)
{
    int64_t v;
    std::memcpy(&v, p, 8);
    return _mm_cvtsi64_si128(v);
}

int
sadRowsSse41(const uint8_t* cur, int cstride, const uint8_t* ref,
             int rstride, int w, int rows)
{
    __m128i acc = _mm_setzero_si128();
    if (w == 16) {
        for (int y = 0; y < rows; ++y) {
            const __m128i c = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(cur));
            const __m128i r = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(ref));
            acc = _mm_add_epi64(acc, _mm_sad_epu8(c, r));
            cur += cstride;
            ref += rstride;
        }
    } else if (w == 8) {
        for (int y = 0; y < rows; ++y) {
            acc = _mm_add_epi64(acc,
                                _mm_sad_epu8(load8(cur), load8(ref)));
            cur += cstride;
            ref += rstride;
        }
    } else { // w == 4
        for (int y = 0; y < rows; ++y) {
            acc = _mm_add_epi64(acc,
                                _mm_sad_epu8(load4(cur), load4(ref)));
            cur += cstride;
            ref += rstride;
        }
    }
    return sadReduce(acc);
}

/** Swaps the two 64-bit halves. */
inline __m128i
swap64(__m128i v)
{
    return _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2));
}

/**
 * One 2-stage 4-point butterfly over a 16-bit matrix held as two
 * row-pair registers x = [r0|r1], y = [r2|r3]: returns [r0+r1 | r0-r1] op
 * [r2+r3 | r2-r3] combined to [u0+u2 | u1+u3] and [u0-u2 | u1-u3].
 */
inline void
hadamardPairs(__m128i& x, __m128i& y)
{
    const __m128i sx = _mm_add_epi16(x, swap64(x)); // [r0+r1 | r1+r0]
    const __m128i dx = _mm_sub_epi16(x, swap64(x)); // [r0-r1 | r1-r0]
    const __m128i sy = _mm_add_epi16(y, swap64(y));
    const __m128i dy = _mm_sub_epi16(y, swap64(y));
    const __m128i tx = _mm_unpacklo_epi64(sx, dx); // [r0+r1 | r0-r1]
    const __m128i ty = _mm_unpacklo_epi64(sy, dy); // [r2+r3 | r2-r3]
    x = _mm_add_epi16(tx, ty);
    y = _mm_sub_epi16(tx, ty);
}

int
satd4x4Sse41(const uint8_t* cur, int cstride, const uint8_t* pred,
             int pstride)
{
    // Row-pair difference registers: d01 = [row0 | row1], d23 = [row2 |
    // row3], 16-bit lanes.
    const __m128i c01 = _mm_unpacklo_epi32(load4(cur),
                                           load4(cur + cstride));
    const __m128i c23 = _mm_unpacklo_epi32(load4(cur + 2 * cstride),
                                           load4(cur + 3 * cstride));
    const __m128i p01 = _mm_unpacklo_epi32(load4(pred),
                                           load4(pred + pstride));
    const __m128i p23 = _mm_unpacklo_epi32(load4(pred + 2 * pstride),
                                           load4(pred + 3 * pstride));
    const __m128i zero = _mm_setzero_si128();
    __m128i d01 = _mm_sub_epi16(_mm_unpacklo_epi8(c01, zero),
                                _mm_unpacklo_epi8(p01, zero));
    __m128i d23 = _mm_sub_epi16(_mm_unpacklo_epi8(c23, zero),
                                _mm_unpacklo_epi8(p23, zero));

    // Vertical Hadamard across rows (the scalar column stage; the two
    // separable stages commute, so any order gives the same matrix).
    hadamardPairs(d01, d23);

    // Transpose the 4x4 (held as row pairs) into column pairs.
    const __m128i i02 = _mm_unpacklo_epi16(d01, d23); // rows 0,2 interleave
    const __m128i i13 = _mm_unpackhi_epi16(d01, d23); // rows 1,3 interleave
    __m128i t01 = _mm_unpacklo_epi16(i02, i13); // [col0 | col1]
    __m128i t23 = _mm_unpackhi_epi16(i02, i13); // [col2 | col3]

    // Vertical Hadamard across what were columns (the scalar row stage).
    hadamardPairs(t01, t23);

    // Sum of |lanes| via pmaddwd (32-bit partial sums; lane values are
    // bounded by 4080, so the 16-bit |.| never wraps).
    const __m128i ones = _mm_set1_epi16(1);
    const __m128i sum =
        _mm_add_epi32(_mm_madd_epi16(_mm_abs_epi16(t01), ones),
                      _mm_madd_epi16(_mm_abs_epi16(t23), ones));
    const __m128i hi = _mm_add_epi32(sum, swap64(sum));
    const int satd = _mm_cvtsi128_si32(hi)
                     + _mm_extract_epi32(hi, 1);
    return (satd + 1) / 2;
}

/** Loads 4 int16 into 4 int32 lanes. */
inline __m128i
load4x32(const int16_t* p)
{
    return _mm_cvtepi16_epi32(load8(reinterpret_cast<const uint8_t*>(p)));
}

/** 4x4 transpose of 32-bit lanes. */
inline void
transpose4x32(__m128i& a, __m128i& b, __m128i& c, __m128i& d)
{
    const __m128i t0 = _mm_unpacklo_epi32(a, b);
    const __m128i t1 = _mm_unpackhi_epi32(a, b);
    const __m128i t2 = _mm_unpacklo_epi32(c, d);
    const __m128i t3 = _mm_unpackhi_epi32(c, d);
    a = _mm_unpacklo_epi64(t0, t2);
    b = _mm_unpackhi_epi64(t0, t2);
    c = _mm_unpacklo_epi64(t1, t3);
    d = _mm_unpackhi_epi64(t1, t3);
}

/** Stores two 4-lane int32 vectors as 8 int16, wrapping like
 *  static_cast<int16_t> (keep low 16 bits of each lane). */
inline void
storeWrap8(int16_t* p, __m128i lo, __m128i hi)
{
    const __m128i mask = _mm_setr_epi8(0, 1, 4, 5, 8, 9, 12, 13, -1, -1,
                                       -1, -1, -1, -1, -1, -1);
    const __m128i w =
        _mm_unpacklo_epi64(_mm_shuffle_epi8(lo, mask),
                           _mm_shuffle_epi8(hi, mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), w);
}

/** Forward core butterfly on 4 column vectors (lane = row). */
inline void
forwardButterfly(__m128i& s0, __m128i& s1, __m128i& s2, __m128i& s3)
{
    const __m128i a = _mm_add_epi32(s0, s3);
    const __m128i b = _mm_add_epi32(s1, s2);
    const __m128i c = _mm_sub_epi32(s1, s2);
    const __m128i d = _mm_sub_epi32(s0, s3);
    s0 = _mm_add_epi32(a, b);
    s1 = _mm_add_epi32(_mm_add_epi32(d, d), c);
    s2 = _mm_sub_epi32(a, b);
    s3 = _mm_sub_epi32(d, _mm_add_epi32(c, c));
}

void
forwardDct4x4Sse41(int16_t block[16])
{
    __m128i r0 = load4x32(block);
    __m128i r1 = load4x32(block + 4);
    __m128i r2 = load4x32(block + 8);
    __m128i r3 = load4x32(block + 12);
    // Row stage: transpose so row elements s0..s3 become vertical, then
    // butterfly lane-wise (each lane is one row).
    transpose4x32(r0, r1, r2, r3);
    forwardButterfly(r0, r1, r2, r3);
    // Column stage: transpose back (vectors = rows of the row-transformed
    // matrix) and butterfly again.
    transpose4x32(r0, r1, r2, r3);
    forwardButterfly(r0, r1, r2, r3);
    storeWrap8(block, r0, r1);
    storeWrap8(block + 8, r2, r3);
}

/** Inverse core butterfly on 4 vectors (>>1 lane-wise via srai). */
inline void
inverseButterfly(__m128i& s0, __m128i& s1, __m128i& s2, __m128i& s3)
{
    const __m128i a = _mm_add_epi32(s0, s2);
    const __m128i b = _mm_sub_epi32(s0, s2);
    const __m128i c = _mm_sub_epi32(_mm_srai_epi32(s1, 1), s3);
    const __m128i d = _mm_add_epi32(s1, _mm_srai_epi32(s3, 1));
    s0 = _mm_add_epi32(a, d);
    s1 = _mm_add_epi32(b, c);
    s2 = _mm_sub_epi32(b, c);
    s3 = _mm_sub_epi32(a, d);
}

void
inverseDct4x4Sse41(int16_t block[16])
{
    __m128i r0 = load4x32(block);
    __m128i r1 = load4x32(block + 4);
    __m128i r2 = load4x32(block + 8);
    __m128i r3 = load4x32(block + 12);
    transpose4x32(r0, r1, r2, r3);
    inverseButterfly(r0, r1, r2, r3);
    transpose4x32(r0, r1, r2, r3);
    inverseButterfly(r0, r1, r2, r3);
    // >> 6 with rounding, then wrap to int16 like the scalar cast.
    const __m128i round = _mm_set1_epi32(32);
    r0 = _mm_srai_epi32(_mm_add_epi32(r0, round), 6);
    r1 = _mm_srai_epi32(_mm_add_epi32(r1, round), 6);
    r2 = _mm_srai_epi32(_mm_add_epi32(r2, round), 6);
    r3 = _mm_srai_epi32(_mm_add_epi32(r3, round), 6);
    storeWrap8(block, r0, r1);
    storeWrap8(block + 8, r2, r3);
}

int
quantize4x4Sse41(int16_t block[16], const int32_t mf[16], int32_t f,
                 int shift)
{
    const __m128i vf = _mm_set1_epi32(f);
    const __m128i vshift = _mm_cvtsi32_si128(shift);
    int nzmask = 0;
    for (int i = 0; i < 16; i += 4) {
        const __m128i coef = load4x32(block + i);
        const __m128i m = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(mf + i));
        // level = (|coef| * mf + f) >> shift, then restore the sign.
        // srl (logical) matches scalar: the shifted value is nonnegative.
        const __m128i level = _mm_srl_epi32(
            _mm_add_epi32(_mm_mullo_epi32(_mm_abs_epi32(coef), m), vf),
            vshift);
        // sign_epi32 zeroes where coef == 0; level is 0 there anyway
        // because f < 2^shift.
        const __m128i signed_level = _mm_sign_epi32(level, coef);
        // Levels are bounded by (32768 * 13107 + f) >> 15 < 2^15, so
        // packs_epi32 cannot saturate here.
        const __m128i packed = _mm_packs_epi32(signed_level, signed_level);
        _mm_storel_epi64(reinterpret_cast<__m128i*>(block + i), packed);
        const int zero_lanes = _mm_movemask_ps(_mm_castsi128_ps(
            _mm_cmpeq_epi32(level, _mm_setzero_si128())));
        nzmask |= ((~zero_lanes) & 0xf) << i;
    }
    return __builtin_popcount(static_cast<unsigned>(nzmask));
}

void
dequantize4x4Sse41(int16_t block[16], const int32_t v[16], int scale)
{
    const __m128i vscale = _mm_cvtsi32_si128(scale);
    for (int i = 0; i < 16; i += 8) {
        const __m128i lo = load4x32(block + i);
        const __m128i hi = load4x32(block + i + 4);
        const __m128i vlo = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(v + i));
        const __m128i vhi = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(v + i + 4));
        const __m128i plo =
            _mm_sll_epi32(_mm_mullo_epi32(lo, vlo), vscale);
        const __m128i phi =
            _mm_sll_epi32(_mm_mullo_epi32(hi, vhi), vscale);
        // packs_epi32 saturates into int16 — exactly the scalar clamp.
        _mm_storeu_si128(reinterpret_cast<__m128i*>(block + i),
                         _mm_packs_epi32(plo, phi));
    }
}

/**
 * Bilinear row helper: interpolates `w` pixels (w = 4, 8 or 16) of one
 * output row from source rows s0/s1 with weights (4-fx, fx) x (4-fy, fy).
 * All intermediates fit 16-bit lanes: h <= 4*255, out <= 4*1020 + 8.
 */
inline void
bilinearRow(uint8_t* dst, const uint8_t* s0, const uint8_t* s1, int w,
            __m128i wx0, __m128i wx1, __m128i wy0, __m128i wy1)
{
    const __m128i zero = _mm_setzero_si128();
    const __m128i bias = _mm_set1_epi16(8);
    for (int x = 0; x < w; x += 8) {
        const int n = w - x >= 8 ? 8 : w - x; // 8 or 4 (w is 4, 8, 16)
        __m128i a0;
        __m128i a1;
        __m128i b0;
        __m128i b1;
        if (n == 8) {
            a0 = _mm_unpacklo_epi8(load8(s0 + x), zero);
            a1 = _mm_unpacklo_epi8(load8(s0 + x + 1), zero);
            b0 = _mm_unpacklo_epi8(load8(s1 + x), zero);
            b1 = _mm_unpacklo_epi8(load8(s1 + x + 1), zero);
        } else {
            a0 = _mm_unpacklo_epi8(load4(s0 + x), zero);
            a1 = _mm_unpacklo_epi8(load4(s0 + x + 1), zero);
            b0 = _mm_unpacklo_epi8(load4(s1 + x), zero);
            b1 = _mm_unpacklo_epi8(load4(s1 + x + 1), zero);
        }
        const __m128i h0 = _mm_add_epi16(_mm_mullo_epi16(a0, wx0),
                                         _mm_mullo_epi16(a1, wx1));
        const __m128i h1 = _mm_add_epi16(_mm_mullo_epi16(b0, wx0),
                                         _mm_mullo_epi16(b1, wx1));
        const __m128i out = _mm_srli_epi16(
            _mm_add_epi16(_mm_add_epi16(_mm_mullo_epi16(h0, wy0),
                                        _mm_mullo_epi16(h1, wy1)),
                          bias),
            4);
        const __m128i packed = _mm_packus_epi16(out, out);
        if (n == 8) {
            _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + x), packed);
        } else {
            const int32_t lane0 = _mm_cvtsi128_si32(packed);
            std::memcpy(dst + x, &lane0, 4);
        }
    }
}

void
mcBilinearSse41(uint8_t* dst, int dstride, const uint8_t* src, int sstride,
                int w, int h, int fx, int fy)
{
    const __m128i wx0 = _mm_set1_epi16(static_cast<int16_t>(4 - fx));
    const __m128i wx1 = _mm_set1_epi16(static_cast<int16_t>(fx));
    const __m128i wy0 = _mm_set1_epi16(static_cast<int16_t>(4 - fy));
    const __m128i wy1 = _mm_set1_epi16(static_cast<int16_t>(fy));
    for (int y = 0; y < h; ++y) {
        bilinearRow(dst + y * dstride, src + y * sstride,
                    src + (y + 1) * sstride, w, wx0, wx1, wy0, wy1);
    }
}

void
averageSse41(uint8_t* dst, const uint8_t* a, const uint8_t* b, int n)
{
    int i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i va = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(a + i));
        const __m128i vb = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(b + i));
        // pavgb computes (a + b + 1) >> 1 exactly.
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                         _mm_avg_epu8(va, vb));
    }
    for (; i < n; ++i) {
        dst[i] = static_cast<uint8_t>((a[i] + b[i] + 1) >> 1);
    }
}

} // namespace

} // namespace vtrans::codec::strategies

namespace vtrans::codec {

const KernelOps*
sse41Kernels()
{
    using namespace strategies;
    if (!__builtin_cpu_supports("sse4.1")) {
        return nullptr;
    }
    static const KernelOps ops = {
        "sse41",
        sadRowsSse41,
        satd4x4Sse41,
        forwardDct4x4Sse41,
        inverseDct4x4Sse41,
        quantize4x4Sse41,
        dequantize4x4Sse41,
        scalarMcCopy, // row memcpy is already optimal
        mcBilinearSse41,
        averageSse41,
    };
    return &ops;
}

} // namespace vtrans::codec

#else // !x86-64: no SSE4.1 backend in this build.

#include "codec/strategies/strategies.h"

namespace vtrans::codec {

const KernelOps*
sse41Kernels()
{
    return nullptr;
}

} // namespace vtrans::codec

#endif

/**
 * @file
 * Scalar reference implementations of the strategy kernels. These carry
 * the exact integer semantics every vector backend must reproduce: the
 * math here is the pre-strategies code of pixel.cc / dct.cc, hoisted onto
 * raw pointers (no Frame, no clamping, no probes).
 */

#include "codec/strategies/kernels_internal.h"

#include <cstdlib>
#include <cstring>

#include "codec/strategies/strategies.h"

namespace vtrans::codec::strategies {

int
scalarSadRows(const uint8_t* cur, int cstride, const uint8_t* ref,
              int rstride, int w, int rows)
{
    int sad = 0;
    for (int y = 0; y < rows; ++y) {
        for (int x = 0; x < w; ++x) {
            sad += std::abs(static_cast<int>(cur[x])
                            - static_cast<int>(ref[x]));
        }
        cur += cstride;
        ref += rstride;
    }
    return sad;
}

int
scalarSatd4x4(const uint8_t* cur, int cstride, const uint8_t* pred,
              int pstride)
{
    int d[16];
    for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) {
            d[y * 4 + x] = static_cast<int>(cur[y * cstride + x])
                           - pred[y * pstride + x];
        }
    }
    // 4-point Hadamard on rows then columns.
    for (int y = 0; y < 4; ++y) {
        int* r = d + y * 4;
        const int a = r[0] + r[1];
        const int b = r[0] - r[1];
        const int c = r[2] + r[3];
        const int e = r[2] - r[3];
        r[0] = a + c;
        r[1] = b + e;
        r[2] = a - c;
        r[3] = b - e;
    }
    int satd = 0;
    for (int x = 0; x < 4; ++x) {
        const int a = d[x] + d[4 + x];
        const int b = d[x] - d[4 + x];
        const int c = d[8 + x] + d[12 + x];
        const int e = d[8 + x] - d[12 + x];
        satd += std::abs(a + c) + std::abs(b + e) + std::abs(a - c)
                + std::abs(b - e);
    }
    return (satd + 1) / 2;
}

void
scalarForwardDct4x4(int16_t block[16])
{
    int tmp[16];
    // Rows: butterfly with the [1 1 1 1; 2 1 -1 -2; ...] core matrix.
    for (int i = 0; i < 4; ++i) {
        const int s0 = block[i * 4 + 0];
        const int s1 = block[i * 4 + 1];
        const int s2 = block[i * 4 + 2];
        const int s3 = block[i * 4 + 3];
        const int a = s0 + s3;
        const int b = s1 + s2;
        const int c = s1 - s2;
        const int d = s0 - s3;
        tmp[i * 4 + 0] = a + b;
        tmp[i * 4 + 1] = 2 * d + c;
        tmp[i * 4 + 2] = a - b;
        tmp[i * 4 + 3] = d - 2 * c;
    }
    // Columns.
    for (int i = 0; i < 4; ++i) {
        const int s0 = tmp[0 * 4 + i];
        const int s1 = tmp[1 * 4 + i];
        const int s2 = tmp[2 * 4 + i];
        const int s3 = tmp[3 * 4 + i];
        const int a = s0 + s3;
        const int b = s1 + s2;
        const int c = s1 - s2;
        const int d = s0 - s3;
        block[0 * 4 + i] = static_cast<int16_t>(a + b);
        block[1 * 4 + i] = static_cast<int16_t>(2 * d + c);
        block[2 * 4 + i] = static_cast<int16_t>(a - b);
        block[3 * 4 + i] = static_cast<int16_t>(d - 2 * c);
    }
}

void
scalarInverseDct4x4(int16_t block[16])
{
    int tmp[16];
    // Rows: inverse core with half-weights implemented as shifts.
    for (int i = 0; i < 4; ++i) {
        const int s0 = block[i * 4 + 0];
        const int s1 = block[i * 4 + 1];
        const int s2 = block[i * 4 + 2];
        const int s3 = block[i * 4 + 3];
        const int a = s0 + s2;
        const int b = s0 - s2;
        const int c = (s1 >> 1) - s3;
        const int d = s1 + (s3 >> 1);
        tmp[i * 4 + 0] = a + d;
        tmp[i * 4 + 1] = b + c;
        tmp[i * 4 + 2] = b - c;
        tmp[i * 4 + 3] = a - d;
    }
    // Columns, then >> 6 with rounding.
    for (int i = 0; i < 4; ++i) {
        const int s0 = tmp[0 * 4 + i];
        const int s1 = tmp[1 * 4 + i];
        const int s2 = tmp[2 * 4 + i];
        const int s3 = tmp[3 * 4 + i];
        const int a = s0 + s2;
        const int b = s0 - s2;
        const int c = (s1 >> 1) - s3;
        const int d = s1 + (s3 >> 1);
        block[0 * 4 + i] = static_cast<int16_t>((a + d + 32) >> 6);
        block[1 * 4 + i] = static_cast<int16_t>((b + c + 32) >> 6);
        block[2 * 4 + i] = static_cast<int16_t>((b - c + 32) >> 6);
        block[3 * 4 + i] = static_cast<int16_t>((a - d + 32) >> 6);
    }
}

int
scalarQuantize4x4(int16_t block[16], const int32_t mf[16], int32_t f,
                  int shift)
{
    int nonzero = 0;
    for (int i = 0; i < 16; ++i) {
        const int coef = block[i];
        const int level = (std::abs(coef) * mf[i] + f) >> shift;
        block[i] = static_cast<int16_t>(coef < 0 ? -level : level);
        if (level != 0) {
            ++nonzero;
        }
    }
    return nonzero;
}

void
scalarDequantize4x4(int16_t block[16], const int32_t v[16], int scale)
{
    for (int i = 0; i < 16; ++i) {
        // Clamp into int16; encoder and decoder share this exact path, so
        // reconstruction stays bit-identical even when clamping fires.
        const int val = (static_cast<int>(block[i]) * v[i]) << scale;
        block[i] = static_cast<int16_t>(
            val > 32767 ? 32767 : (val < -32768 ? -32768 : val));
    }
}

void
scalarMcCopy(uint8_t* dst, int dstride, const uint8_t* src, int sstride,
             int w, int h)
{
    for (int y = 0; y < h; ++y) {
        std::memcpy(dst, src, static_cast<size_t>(w));
        dst += dstride;
        src += sstride;
    }
}

void
scalarMcBilinear(uint8_t* dst, int dstride, const uint8_t* src, int sstride,
                 int w, int h, int fx, int fy)
{
    for (int y = 0; y < h; ++y) {
        const uint8_t* s0 = src + y * sstride;
        const uint8_t* s1 = s0 + sstride;
        for (int x = 0; x < w; ++x) {
            const int p00 = s0[x];
            const int p10 = s0[x + 1];
            const int p01 = s1[x];
            const int p11 = s1[x + 1];
            dst[y * dstride + x] = static_cast<uint8_t>(
                ((4 - fx) * (4 - fy) * p00 + fx * (4 - fy) * p10
                 + (4 - fx) * fy * p01 + fx * fy * p11 + 8)
                >> 4);
        }
    }
}

void
scalarAverage(uint8_t* dst, const uint8_t* a, const uint8_t* b, int n)
{
    for (int i = 0; i < n; ++i) {
        dst[i] = static_cast<uint8_t>((a[i] + b[i] + 1) >> 1);
    }
}

} // namespace vtrans::codec::strategies

namespace vtrans::codec {

const KernelOps&
scalarKernels()
{
    using namespace strategies;
    static const KernelOps ops = {
        "scalar",
        scalarSadRows,
        scalarSatd4x4,
        scalarForwardDct4x4,
        scalarInverseDct4x4,
        scalarQuantize4x4,
        scalarDequantize4x4,
        scalarMcCopy,
        scalarMcBilinear,
        scalarAverage,
    };
    return ops;
}

} // namespace vtrans::codec

#ifndef VTRANS_CODEC_STRATEGIES_KERNELS_INTERNAL_H_
#define VTRANS_CODEC_STRATEGIES_KERNELS_INTERNAL_H_

/**
 * @file
 * Internal declarations shared between the strategy backends: the scalar
 * reference implementations (used directly by the scalar table and as
 * fallback entries for ops a vector backend does not specialize) and the
 * per-ISA table getters strategies.cc dispatches over.
 *
 * x86 vector backends are compiled only on x86-64 (see
 * codec/CMakeLists.txt); their getters return nullptr when the build
 * lacks them or the CPU lacks the ISA.
 */

#include <cstdint>

namespace vtrans::codec::strategies {

int scalarSadRows(const uint8_t* cur, int cstride, const uint8_t* ref,
                  int rstride, int w, int rows);
int scalarSatd4x4(const uint8_t* cur, int cstride, const uint8_t* pred,
                  int pstride);
void scalarForwardDct4x4(int16_t block[16]);
void scalarInverseDct4x4(int16_t block[16]);
int scalarQuantize4x4(int16_t block[16], const int32_t mf[16], int32_t f,
                      int shift);
void scalarDequantize4x4(int16_t block[16], const int32_t v[16], int scale);
void scalarMcCopy(uint8_t* dst, int dstride, const uint8_t* src,
                  int sstride, int w, int h);
void scalarMcBilinear(uint8_t* dst, int dstride, const uint8_t* src,
                      int sstride, int w, int h, int fx, int fy);
void scalarAverage(uint8_t* dst, const uint8_t* a, const uint8_t* b, int n);

} // namespace vtrans::codec::strategies

#endif // VTRANS_CODEC_STRATEGIES_KERNELS_INTERNAL_H_

#ifndef VTRANS_CODEC_STRATEGIES_STRATEGIES_H_
#define VTRANS_CODEC_STRATEGIES_STRATEGIES_H_

/**
 * @file
 * Per-ISA kernel strategies for the codec's hot loops, after kvazaar's
 * src/strategies pattern: every pixel/transform kernel exists as a scalar
 * reference plus vector variants (SSE4.1, AVX2), collected into a
 * function-pointer table that is selected once at startup and consulted by
 * the public kernels in pixel.cc / dct.cc.
 *
 * The contract is **integer exactness**: every variant of every kernel
 * returns bit-identical results to the scalar reference for every input
 * (differential-tested in tests/test_kernels.cc), so encoded bitstreams,
 * decoded frames, and instrumented-run fingerprints do not depend on the
 * selected backend. Probe events are emitted by the public wrappers, never
 * by the ops below, so the simulated event stream is backend-invariant
 * too.
 *
 * Selection: `VTRANS_KERNEL_ISA` (env) or `setKernelIsa()` (the benches'
 * `--kernels` flag) with values `scalar`, `sse41`, `avx2`, or `auto`
 * (default: best ISA the CPU supports). Vector tables fall back to the
 * scalar entry for ops a backend does not specialize.
 *
 * Separately from the *native* backend, `setKernelModel()` switches the
 * *simulated* cost model of the kernels between their scalar and vector
 * forms (see uarch/simdcost.h); the default is the scalar model, which is
 * bit-identical to the pre-strategies probe stream.
 */

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace vtrans::codec {

/**
 * One backend's kernel implementations. All functions operate on raw
 * pixel/coefficient pointers with explicit strides and perform no edge
 * clamping and no probing — callers (the public kernels) handle frame
 * borders with the scalar clamped path and emit the probe events.
 */
struct KernelOps
{
    const char* name; ///< Backend name ("scalar", "sse41", "avx2").

    /**
     * SAD of a fully in-frame `w x rows` region (w = 4, 8 or 16) between
     * `cur` (stride `cstride`) and `ref` (stride `rstride`).
     */
    int (*sad_rows)(const uint8_t* cur, int cstride, const uint8_t* ref,
                    int rstride, int w, int rows);

    /**
     * 4x4 Hadamard-transformed SAD between a source block and a
     * prediction block, both fully in bounds. Returns (sum|H d H|+1)/2.
     */
    int (*satd4x4)(const uint8_t* cur, int cstride, const uint8_t* pred,
                   int pstride);

    /** Forward 4x4 core transform, in place (same math as dct.h). */
    void (*forward_dct4x4)(int16_t block[16]);

    /** Inverse 4x4 core transform with >> 6 normalization, in place. */
    void (*inverse_dct4x4)(int16_t block[16]);

    /**
     * Dead-zone quantization with per-position multipliers `mf`
     * (quantMfRow), rounding offset `f` and shift `shift` (quantShift).
     * @return Number of non-zero levels.
     */
    int (*quantize4x4)(int16_t block[16], const int32_t mf[16], int32_t f,
                       int shift);

    /**
     * Dequantization with per-position multipliers `v` (dequantVRow) and
     * left shift `scale` (= qp/6), saturating into int16.
     */
    void (*dequantize4x4)(int16_t block[16], const int32_t v[16],
                          int scale);

    /** Full-pel motion compensation: copies a w x h region. */
    void (*mc_copy)(uint8_t* dst, int dstride, const uint8_t* src,
                    int sstride, int w, int h);

    /**
     * Quarter-pel bilinear motion compensation of a w x h block whose
     * (w+1) x (h+1) source window is fully in bounds. (fx, fy) are the
     * quarter-pel phases in 0..3, not both zero.
     */
    void (*mc_bilinear)(uint8_t* dst, int dstride, const uint8_t* src,
                        int sstride, int w, int h, int fx, int fy);

    /** Rounded average of two length-n buffers ((a+b+1)>>1). */
    void (*average)(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                    int n);
};

/** The scalar reference table (always available; the exactness oracle). */
const KernelOps& scalarKernels();

/** The SSE4.1 table, or nullptr when unsupported (arch or CPU). */
const KernelOps* sse41Kernels();

/** The AVX2 table, or nullptr when unsupported (arch or CPU). */
const KernelOps* avx2Kernels();

namespace detail {

/** Active table; null until first use (lazy env-based init). */
extern std::atomic<const KernelOps*> g_kernels;

/** True when the simulated cost model uses the vector kernel forms. */
extern std::atomic<bool> g_vector_model;

/** Resolves VTRANS_KERNEL_ISA (default auto) and publishes the table. */
const KernelOps* initKernels();

} // namespace detail

/** The active kernel table (initialized from VTRANS_KERNEL_ISA on first
 *  use; `auto`/unset selects the best ISA this CPU supports). */
inline const KernelOps&
kernels()
{
    const KernelOps* k = detail::g_kernels.load(std::memory_order_relaxed);
    return k != nullptr ? *k : *detail::initKernels();
}

/**
 * Forces the kernel backend: "scalar", "sse41", "avx2" or "auto".
 * @return false (and leaves the selection unchanged) if `name` is unknown
 *         or names an ISA this CPU cannot run.
 *
 * Selection is process-wide; switch it at startup or between runs, not
 * while worker threads are encoding.
 */
bool setKernelIsa(const std::string& name);

/** Name of the active backend ("scalar", "sse41", "avx2"). */
std::string kernelIsa();

/** Backends this build + CPU can run, in increasing ISA order
 *  (always starts with "scalar"). */
std::vector<std::string> availableKernelIsas();

/**
 * Simulated kernel cost model: Scalar emits exactly the historical probe
 * sites (default; bit-identical fingerprints), Vector emits the SIMD-form
 * sites — fewer, wider retired ops per block, costs from uarch/simdcost.h
 * — so instrumented runs show the Top-down shift of vectorization.
 */
enum class KernelModel : uint8_t { Scalar, Vector };

/** True when the vector probe model is active (hot-path accessor). */
inline bool
vectorKernelModel()
{
    return detail::g_vector_model.load(std::memory_order_relaxed);
}

/** Selects the simulated kernel cost model (process-wide). */
void setKernelModel(KernelModel model);

/** Parses "scalar" / "vector" (the --kernel-model flag values).
 *  @return false on an unknown name (selection unchanged). */
bool setKernelModel(const std::string& name);

/** The active simulated kernel cost model. */
KernelModel kernelModel();

} // namespace vtrans::codec

#endif // VTRANS_CODEC_STRATEGIES_STRATEGIES_H_

/**
 * @file
 * Strategy selection: resolves VTRANS_KERNEL_ISA / setKernelIsa() to one
 * of the backend tables and publishes it for the hot-path kernels()
 * accessor. Also owns the simulated kernel cost model knob (scalar vs
 * vector probe sites).
 */

#include "codec/strategies/strategies.h"

#include <cstdlib>

#include "common/status.h"

namespace vtrans::codec {

namespace detail {

std::atomic<const KernelOps*> g_kernels{nullptr};
std::atomic<bool> g_vector_model{false};

namespace {

/** Best table this build + CPU supports. */
const KernelOps*
bestKernels()
{
    if (const KernelOps* avx2 = avx2Kernels()) {
        return avx2;
    }
    if (const KernelOps* sse41 = sse41Kernels()) {
        return sse41;
    }
    return &scalarKernels();
}

/** Maps a backend name to its table; nullptr when unknown/unsupported. */
const KernelOps*
lookupKernels(const std::string& name)
{
    if (name == "auto") {
        return bestKernels();
    }
    if (name == "scalar") {
        return &scalarKernels();
    }
    if (name == "sse41") {
        return sse41Kernels();
    }
    if (name == "avx2") {
        return avx2Kernels();
    }
    return nullptr;
}

} // namespace

const KernelOps*
initKernels()
{
    const char* env = std::getenv("VTRANS_KERNEL_ISA");
    const KernelOps* table = nullptr;
    if (env != nullptr && env[0] != '\0') {
        table = lookupKernels(env);
        if (table == nullptr) {
            VT_WARN("VTRANS_KERNEL_ISA=", env,
                    " unknown or unsupported; using auto");
        }
    }
    if (table == nullptr) {
        table = bestKernels();
    }
    // First-wins under concurrent first use: both threads computed the
    // same env-derived answer, so either store is fine.
    const KernelOps* expected = nullptr;
    g_kernels.compare_exchange_strong(expected, table,
                                      std::memory_order_relaxed);
    return g_kernels.load(std::memory_order_relaxed);
}

} // namespace detail

bool
setKernelIsa(const std::string& name)
{
    const KernelOps* table = detail::lookupKernels(name);
    if (table == nullptr) {
        return false;
    }
    detail::g_kernels.store(table, std::memory_order_relaxed);
    return true;
}

std::string
kernelIsa()
{
    return kernels().name;
}

std::vector<std::string>
availableKernelIsas()
{
    std::vector<std::string> isas{"scalar"};
    if (sse41Kernels() != nullptr) {
        isas.emplace_back("sse41");
    }
    if (avx2Kernels() != nullptr) {
        isas.emplace_back("avx2");
    }
    return isas;
}

void
setKernelModel(KernelModel model)
{
    detail::g_vector_model.store(model == KernelModel::Vector,
                                 std::memory_order_relaxed);
}

bool
setKernelModel(const std::string& name)
{
    if (name == "scalar") {
        setKernelModel(KernelModel::Scalar);
        return true;
    }
    if (name == "vector") {
        setKernelModel(KernelModel::Vector);
        return true;
    }
    return false;
}

KernelModel
kernelModel()
{
    return vectorKernelModel() ? KernelModel::Vector : KernelModel::Scalar;
}

} // namespace vtrans::codec

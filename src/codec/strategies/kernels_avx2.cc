/**
 * @file
 * AVX2 strategy kernels: the bandwidth-bound ops (SAD, bilinear MC,
 * averaging) processed 32 bytes / two rows at a time. The 4x4 transform
 * and quant kernels stay on the SSE4.1 forms — a single 4x4 block does
 * not fill a 256-bit lane, so the AVX2 table reuses those entries (see
 * avx2Kernels()). Compiled with -mavx2 on x86-64 only and runtime-gated
 * by __builtin_cpu_supports("avx2").
 *
 * Exactness: VPSADBW and VPAVGB are exact by construction; the bilinear
 * path is the SSE4.1 16-bit-lane math on wider registers. The
 * differential suite covers every op against the scalar reference.
 */

#if defined(__x86_64__) || defined(_M_X64)

#include <cstring>
#include <immintrin.h>

#include "codec/strategies/kernels_internal.h"
#include "codec/strategies/strategies.h"

namespace vtrans::codec::strategies {

namespace {

inline __m128i
load8x(const uint8_t* p)
{
    int64_t v;
    std::memcpy(&v, p, 8);
    return _mm_cvtsi64_si128(v);
}

inline __m128i
load4x(const uint8_t* p)
{
    int32_t v;
    std::memcpy(&v, p, 4);
    return _mm_cvtsi32_si128(v);
}

/** Sums the four 64-bit psadbw accumulators of a 256-bit register. */
inline int
sadReduce256(__m256i acc)
{
    const __m128i lo = _mm256_castsi256_si128(acc);
    const __m128i hi = _mm256_extracti128_si256(acc, 1);
    const __m128i sum = _mm_add_epi64(lo, hi);
    return static_cast<int>(_mm_cvtsi128_si32(sum)
                            + _mm_extract_epi32(sum, 2));
}

int
sadRowsAvx2(const uint8_t* cur, int cstride, const uint8_t* ref,
            int rstride, int w, int rows)
{
    int sad = 0;
    if (w == 16) {
        __m256i acc = _mm256_setzero_si256();
        int y = 0;
        for (; y + 2 <= rows; y += 2) {
            const __m256i c = _mm256_inserti128_si256(
                _mm256_castsi128_si256(_mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(cur))),
                _mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(cur + cstride)),
                1);
            const __m256i r = _mm256_inserti128_si256(
                _mm256_castsi128_si256(_mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(ref))),
                _mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(ref + rstride)),
                1);
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(c, r));
            cur += 2 * cstride;
            ref += 2 * rstride;
        }
        sad = sadReduce256(acc);
        if (y < rows) {
            const __m128i d = _mm_sad_epu8(
                _mm_loadu_si128(reinterpret_cast<const __m128i*>(cur)),
                _mm_loadu_si128(reinterpret_cast<const __m128i*>(ref)));
            sad += _mm_cvtsi128_si32(d) + _mm_extract_epi32(d, 2);
        }
        return sad;
    }
    // w == 8 / w == 4: pack two rows into one 128-bit psadbw.
    __m128i acc = _mm_setzero_si128();
    int y = 0;
    for (; y + 2 <= rows; y += 2) {
        __m128i c;
        __m128i r;
        if (w == 8) {
            c = _mm_unpacklo_epi64(load8x(cur), load8x(cur + cstride));
            r = _mm_unpacklo_epi64(load8x(ref), load8x(ref + rstride));
        } else {
            c = _mm_unpacklo_epi32(load4x(cur), load4x(cur + cstride));
            r = _mm_unpacklo_epi32(load4x(ref), load4x(ref + rstride));
        }
        acc = _mm_add_epi64(acc, _mm_sad_epu8(c, r));
        cur += 2 * cstride;
        ref += 2 * rstride;
    }
    if (y < rows) {
        const __m128i c = w == 8 ? load8x(cur) : load4x(cur);
        const __m128i r = w == 8 ? load8x(ref) : load4x(ref);
        acc = _mm_add_epi64(acc, _mm_sad_epu8(c, r));
    }
    return _mm_cvtsi128_si32(acc) + _mm_extract_epi32(acc, 2);
}

void
mcBilinearAvx2(uint8_t* dst, int dstride, const uint8_t* src, int sstride,
               int w, int h, int fx, int fy)
{
    if (w < 16) {
        // Narrow blocks do not fill a 256-bit lane; the SSE4.1 form is
        // integer-exact and as fast.
        sse41Kernels()->mc_bilinear(dst, dstride, src, sstride, w, h, fx,
                                    fy);
        return;
    }
    const __m256i wx0 = _mm256_set1_epi16(static_cast<int16_t>(4 - fx));
    const __m256i wx1 = _mm256_set1_epi16(static_cast<int16_t>(fx));
    const __m256i wy0 = _mm256_set1_epi16(static_cast<int16_t>(4 - fy));
    const __m256i wy1 = _mm256_set1_epi16(static_cast<int16_t>(fy));
    const __m256i bias = _mm256_set1_epi16(8);
    for (int y = 0; y < h; ++y) {
        const uint8_t* s0 = src + y * sstride;
        const uint8_t* s1 = s0 + sstride;
        const __m256i a0 = _mm256_cvtepu8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(s0)));
        const __m256i a1 = _mm256_cvtepu8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(s0 + 1)));
        const __m256i b0 = _mm256_cvtepu8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(s1)));
        const __m256i b1 = _mm256_cvtepu8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(s1 + 1)));
        const __m256i h0 = _mm256_add_epi16(_mm256_mullo_epi16(a0, wx0),
                                            _mm256_mullo_epi16(a1, wx1));
        const __m256i h1 = _mm256_add_epi16(_mm256_mullo_epi16(b0, wx0),
                                            _mm256_mullo_epi16(b1, wx1));
        const __m256i out = _mm256_srli_epi16(
            _mm256_add_epi16(
                _mm256_add_epi16(_mm256_mullo_epi16(h0, wy0),
                                 _mm256_mullo_epi16(h1, wy1)),
                bias),
            4);
        const __m128i packed =
            _mm_packus_epi16(_mm256_castsi256_si128(out),
                             _mm256_extracti128_si256(out, 1));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + y * dstride),
                         packed);
    }
}

void
averageAvx2(uint8_t* dst, const uint8_t* a, const uint8_t* b, int n)
{
    int i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(a + i));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(b + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_avg_epu8(va, vb));
    }
    for (; i < n; ++i) {
        dst[i] = static_cast<uint8_t>((a[i] + b[i] + 1) >> 1);
    }
}

} // namespace

} // namespace vtrans::codec::strategies

namespace vtrans::codec {

const KernelOps*
avx2Kernels()
{
    using namespace strategies;
    if (!__builtin_cpu_supports("avx2")) {
        return nullptr;
    }
    const KernelOps* sse41 = sse41Kernels();
    if (sse41 == nullptr) {
        return nullptr; // AVX2 implies SSE4.1; defensive.
    }
    static const KernelOps ops = {
        "avx2",
        sadRowsAvx2,
        sse41->satd4x4,          // 4x4 blocks do not fill 256-bit lanes
        sse41->forward_dct4x4,
        sse41->inverse_dct4x4,
        sse41->quantize4x4,
        sse41->dequantize4x4,
        sse41->mc_copy,
        mcBilinearAvx2,
        averageAvx2,
    };
    return &ops;
}

} // namespace vtrans::codec

#else // !x86-64: no AVX2 backend in this build.

#include "codec/strategies/strategies.h"

namespace vtrans::codec {

const KernelOps*
avx2Kernels()
{
    return nullptr;
}

} // namespace vtrans::codec

#endif

#ifndef VTRANS_CODEC_LOOKAHEAD_H_
#define VTRANS_CODEC_LOOKAHEAD_H_

/**
 * @file
 * Lookahead analysis: cheap downsampled-domain cost estimation that feeds
 * frame-type decision (I/P/B, paper §II-B3), scene-cut detection, adaptive
 * B-frame placement (`b-adapt` 0/1/2 in Table II), and the complexity
 * signal used by CRF/ABR rate control.
 */

#include <vector>

#include "codec/params.h"
#include "video/frame.h"

namespace vtrans::codec {

/** Per-frame costs estimated by the lookahead. */
struct FrameCosts
{
    int64_t intra_cost = 0;  ///< Estimated bits-proxy for intra coding.
    int64_t inter_cost = 0;  ///< Estimated bits-proxy vs previous frame.
};

/** A planned frame: its type plus the display index it refers to. */
struct PlannedFrame
{
    int display_index = 0;
    FrameType type = FrameType::P;
};

/**
 * Estimates intra and inter (vs `prev`, nullptr for the first frame)
 * cost proxies for a frame, using half-resolution 8x8 SAD analysis with a
 * +-2 diamond search, as x264's lookahead does.
 */
FrameCosts estimateFrameCosts(const video::Frame& frame,
                              const video::Frame* prev);

/**
 * Plans the frame types of an input sequence in display order.
 *
 * Rules, following §II and Table II:
 *  - frame 0 and every keyint-th anchor is I;
 *  - a frame whose inter cost exceeds (scenecut/100) x intra cost opens a
 *    new scene as I (scenecut=0 disables detection);
 *  - up to `bframes` consecutive B frames are placed between anchors,
 *    fixed pattern for b_adapt=0, greedy cost test for b_adapt=1, and a
 *    windowed Viterbi over run lengths for b_adapt=2.
 */
std::vector<PlannedFrame> planFrameTypes(
    const std::vector<video::Frame>& frames, const EncoderParams& params,
    std::vector<FrameCosts>* costs_out = nullptr);

/**
 * Converts a display-order plan into coded order: each B frame is emitted
 * after the anchor (I/P) it references on both sides.
 */
std::vector<PlannedFrame> codedOrder(const std::vector<PlannedFrame>& plan);

} // namespace vtrans::codec

#endif // VTRANS_CODEC_LOOKAHEAD_H_

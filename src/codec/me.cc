#include "codec/me.h"

#include <algorithm>

#include "codec/pixel.h"
#include "common/status.h"
#include "trace/probe.h"

namespace vtrans::codec {

using video::Frame;

namespace {

/** Internal full-pel search state for one block in one reference. */
struct Search
{
    const MeContext* ctx;
    const Frame* ref;
    int cx, cy, w, h;
    Mv pred_mv;        ///< Quarter-pel predictor for rate costs.
    int best_cost = INT32_MAX;
    int best_sad = INT32_MAX;
    int bx = 0, by = 0; ///< Best full-pel displacement.

    /** Rate-biased cost of a full-pel displacement. */
    int
    mvCost(int dx, int dy) const
    {
        Mv mv{static_cast<int16_t>(dx * 4), static_cast<int16_t>(dy * 4)};
        return (ctx->lambda_fp * mvdBits(mv, pred_mv)) >> 4;
    }

    /** Evaluates one full-pel candidate; updates the best. */
    void
    tryCandidate(int dx, int dy)
    {
        if (std::abs(dx) > ctx->merange || std::abs(dy) > ctx->merange) {
            return;
        }
        ++ctx->candidates_evaluated;
        const int rate = mvCost(dx, dy);
        if (rate >= best_cost) {
            return;
        }
        const int sad = sadBlock(*ctx->cur, cx, cy, *ref, cx + dx, cy + dy,
                                 w, h, best_cost - rate);
        const int cost = sad + rate;
        VT_SITE(site_cmp, "me.cand.cmp", 16, 2, BranchLoadDep);
        const bool better = cost < best_cost;
        trace::branch(site_cmp, better);
        if (better) {
            best_cost = cost;
            best_sad = sad;
            bx = dx;
            by = dy;
        }
    }
};

/** Small-diamond iterative descent (the `dia` method). */
void
searchDia(Search& s)
{
    static const int kDia[4][2] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
    bool moved = true;
    int steps = 0;
    while (moved && steps++ < 2 * s.ctx->merange) {
        VT_SITE(site_iter, "me.dia.iter", 40, 8, Block);
        trace::block(site_iter);
        moved = false;
        const int cx0 = s.bx;
        const int cy0 = s.by;
        for (const auto& d : kDia) {
            s.tryCandidate(cx0 + d[0], cy0 + d[1]);
        }
        VT_SITE(site_move, "me.dia.move", 12, 1, BranchLoadDep);
        moved = (s.bx != cx0 || s.by != cy0);
        trace::branch(site_move, moved);
    }
}

/** Hexagon descent plus small-diamond refinement (the `hex` method). */
void
searchHex(Search& s)
{
    static const int kHex[6][2] = {{2, 0},  {-2, 0}, {1, 2},
                                   {-1, 2}, {1, -2}, {-1, -2}};
    bool moved = true;
    int steps = 0;
    while (moved && steps++ < s.ctx->merange) {
        VT_SITE(site_iter, "me.hex.iter", 48, 9, Block);
        trace::block(site_iter);
        moved = false;
        const int cx0 = s.bx;
        const int cy0 = s.by;
        for (const auto& d : kHex) {
            s.tryCandidate(cx0 + d[0], cy0 + d[1]);
        }
        VT_SITE(site_move, "me.hex.move", 12, 1, BranchLoadDep);
        moved = (s.bx != cx0 || s.by != cy0);
        trace::branch(site_move, moved);
    }
    // Final small-diamond polish.
    static const int kDia[4][2] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
    const int cx0 = s.bx;
    const int cy0 = s.by;
    for (const auto& d : kDia) {
        s.tryCandidate(cx0 + d[0], cy0 + d[1]);
    }
}

/** Uneven multi-hexagon search (the `umh` method). */
void
searchUmh(Search& s)
{
    // Stage 1: unsymmetrical cross — horizontal reach is the full range,
    // vertical reach is half (motion is mostly horizontal in video).
    VT_SITE(site_cross, "me.umh.cross", 64, 12, Block);
    trace::block(site_cross);
    const int cx0 = s.bx;
    const int cy0 = s.by;
    for (int d = 2; d <= s.ctx->merange; d += 2) {
        s.tryCandidate(cx0 + d, cy0);
        s.tryCandidate(cx0 - d, cy0);
        if (d <= s.ctx->merange / 2) {
            s.tryCandidate(cx0, cy0 + d);
            s.tryCandidate(cx0, cy0 - d);
        }
    }

    // Stage 2: 5x5 full search around the current best.
    VT_SITE(site_sq, "me.umh.square", 56, 10, Block);
    trace::block(site_sq);
    const int sx = s.bx;
    const int sy = s.by;
    for (int dy = -2; dy <= 2; ++dy) {
        for (int dx = -2; dx <= 2; ++dx) {
            if (dx == 0 && dy == 0) {
                continue;
            }
            s.tryCandidate(sx + dx, sy + dy);
        }
    }

    // Stage 3: uneven hexagon rings at growing scales.
    static const int kRing[16][2] = {
        {-4, 2},  {-4, 1},  {-4, 0}, {-4, -1}, {-4, -2}, {4, 2},
        {4, 1},   {4, 0},   {4, -1}, {4, -2},  {-2, 3},  {2, 3},
        {0, 4},   {-2, -3}, {2, -3}, {0, -4},
    };
    const int hx = s.bx;
    const int hy = s.by;
    for (int scale = 1; scale * 4 <= s.ctx->merange; ++scale) {
        VT_SITE(site_ring, "me.umh.ring", 72, 14, Block);
        trace::block(site_ring);
        for (const auto& d : kRing) {
            s.tryCandidate(hx + d[0] * scale, hy + d[1] * scale);
        }
    }

    // Stage 4: hexagon descent to converge.
    searchHex(s);
}

/** Exhaustive search over the window (the `esa`/`tesa` methods). */
void
searchEsa(Search& s)
{
    const int range = s.ctx->merange;
    for (int dy = -range; dy <= range; ++dy) {
        VT_SITE(site_row, "me.esa.row", 48, 8, Block);
        trace::block(site_row);
        for (int dx = -range; dx <= range; ++dx) {
            s.tryCandidate(dx, dy);
        }
    }
}

/** SATD re-rank of near-best candidates (the `tesa` refinement). */
void
tesaRefine(Search& s)
{
    // Re-evaluate a 3x3 neighborhood of the SAD winner with SATD; mirrors
    // tesa's transform-aware re-ranking without a second full sweep.
    uint8_t pred[256];
    int best_satd = INT32_MAX;
    int best_dx = s.bx;
    int best_dy = s.by;
    for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
            const int px = s.bx + dx;
            const int py = s.by + dy;
            if (std::abs(px) > s.ctx->merange
                || std::abs(py) > s.ctx->merange) {
                continue;
            }
            ++s.ctx->candidates_evaluated;
            mcLumaBlock(pred, s.w, *s.ref, s.cx, s.cy, px * 4, py * 4, s.w,
                        s.h, static_cast<uint64_t>(Scratch::Pred));
            const int satd =
                satdBlock(*s.ctx->cur, s.cx, s.cy, pred, s.w, s.w, s.h,
                          static_cast<uint64_t>(Scratch::Pred))
                + s.mvCost(px, py);
            VT_SITE(site_cmp, "me.tesa.cmp", 16, 2, BranchLoadDep);
            const bool better = satd < best_satd;
            trace::branch(site_cmp, better);
            if (better) {
                best_satd = satd;
                best_dx = px;
                best_dy = py;
            }
        }
    }
    s.bx = best_dx;
    s.by = best_dy;
}

/**
 * Sub-pel refinement: iterative 8-neighbor descent at half-pel then
 * quarter-pel step, SAD metric below subme 7, SATD at or above.
 */
void
subpelRefine(const MeContext& ctx, const Frame& ref, int cx, int cy, int w,
             int h, const Mv& pred_mv, Mv& mv, int& cost)
{
    if (ctx.subme == 0) {
        return;
    }
    const bool use_satd = ctx.subme >= 7;
    // Refinement depth grows with subme: more half-pel rounds at >= 3,
    // quarter-pel at >= 5, extra RD rounds at 8/9+, exhaustive-feeling
    // polish at 10+ (the x264 ladder's "slow" through "placebo" steps).
    const int half_rounds =
        ctx.subme >= 10 ? 4 : (ctx.subme >= 8 ? 3 : (ctx.subme >= 3 ? 2 : 1));
    const int quarter_rounds =
        ctx.subme >= 5 ? (ctx.subme >= 9 ? (ctx.subme >= 11 ? 3 : 2) : 1)
                       : 0;

    uint8_t pred[256];
    auto evalAt = [&](const Mv& cand, int bound) {
        ++ctx.candidates_evaluated;
        const int rate = (ctx.lambda_fp * mvdBits(cand, pred_mv)) >> 4;
        int dist;
        if (use_satd) {
            mcLumaBlock(pred, w, ref, cx, cy, cand.x, cand.y, w, h,
                        static_cast<uint64_t>(Scratch::Pred));
            dist = satdBlock(*ctx.cur, cx, cy, pred, w, w, h,
                             static_cast<uint64_t>(Scratch::Pred));
        } else {
            dist = sadSubpel(*ctx.cur, cx, cy, ref, cand.x, cand.y, w, h,
                             bound - rate);
        }
        return dist + rate;
    };

    auto round = [&](int step, int iterations) {
        for (int it = 0; it < iterations; ++it) {
            VT_SITE(site_iter, "me.subpel.iter", 56, 10, Block);
            trace::block(site_iter);
            const Mv center = mv;
            bool moved = false;
            for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                    if (dx == 0 && dy == 0) {
                        continue;
                    }
                    Mv cand{static_cast<int16_t>(center.x + dx * step),
                            static_cast<int16_t>(center.y + dy * step)};
                    const int c = evalAt(cand, cost);
                    VT_SITE(site_cmp, "me.subpel.cmp", 16, 2, BranchLoadDep);
                    const bool better = c < cost;
                    trace::branch(site_cmp, better);
                    if (better) {
                        cost = c;
                        mv = cand;
                        moved = true;
                    }
                }
            }
            if (!moved) {
                break;
            }
        }
    };

    // Re-anchor the cost in the chosen metric so comparisons are
    // consistent within the refinement.
    cost = evalAt(mv, INT32_MAX);
    round(2, half_rounds);
    if (quarter_rounds > 0) {
        round(1, quarter_rounds);
    }
}

} // namespace

MeResult
searchOneRef(const MeContext& ctx, int cx, int cy, int w, int h,
             const Mv& pred_mv, int ref_idx, int cost_bound)
{
    VT_ASSERT(ctx.cur && ctx.refs && ref_idx < static_cast<int>(
                  ctx.refs->size()),
              "invalid ME context");
    const Frame& ref = *(*ctx.refs)[ref_idx];

    Search s;
    // As in x264, the best cost found in earlier references bounds the
    // search in later ones: candidates that cannot beat it terminate
    // their SAD early, so extra references cost progressively less
    // compute while still touching fresh reference data.
    s.best_cost = cost_bound;
    s.ctx = &ctx;
    s.ref = &ref;
    s.cx = cx;
    s.cy = cy;
    s.w = w;
    s.h = h;
    s.pred_mv = pred_mv;

    // Seed candidates: the MV predictor (rounded to full-pel) and zero.
    VT_SITE(site_seed, "me.seed", 48, 10, Block);
    trace::block(site_seed);
    s.tryCandidate(0, 0);
    const int px = (pred_mv.x + (pred_mv.x >= 0 ? 2 : -2)) / 4;
    const int py = (pred_mv.y + (pred_mv.y >= 0 ? 2 : -2)) / 4;
    if (px != 0 || py != 0) {
        s.bx = 0;
        s.by = 0;
        s.tryCandidate(px, py);
    }
    // Descend from wherever the seeds left the best.
    switch (ctx.method) {
      case MeMethod::Dia:
        searchDia(s);
        break;
      case MeMethod::Hex:
        searchHex(s);
        break;
      case MeMethod::Umh:
        searchUmh(s);
        break;
      case MeMethod::Esa:
        searchEsa(s);
        break;
      case MeMethod::Tesa:
        searchEsa(s);
        tesaRefine(s);
        break;
    }

    MeResult result;
    result.ref = ref_idx;
    result.mv = Mv{static_cast<int16_t>(s.bx * 4),
                   static_cast<int16_t>(s.by * 4)};
    result.cost = s.best_cost;
    result.sad = s.best_sad;

    // Sub-pel refinement is only worth doing for references that beat the
    // carried-over bound (x264 behaves the same way).
    if (result.cost >= cost_bound) {
        result.cost = INT32_MAX;
        return result;
    }
    subpelRefine(ctx, ref, cx, cy, w, h, pred_mv, result.mv, result.cost);

    // Reference-index signalling cost.
    result.cost += (ctx.lambda_fp * ueBits(ref_idx)) >> 4;
    return result;
}

MeResult
searchAllRefs(const MeContext& ctx, int cx, int cy, int w, int h,
              const Mv& pred_mv)
{
    MeResult best;
    const int nrefs = static_cast<int>(ctx.refs->size());
    for (int r = 0; r < nrefs; ++r) {
        VT_SITE(site_ref, "me.refloop", 32, 6, Block);
        trace::block(site_ref);
        MeResult cand = searchOneRef(ctx, cx, cy, w, h, pred_mv, r,
                                     best.cost);
        VT_SITE(site_cmp, "me.refloop.cmp", 16, 2, BranchLoadDep);
        const bool better = cand.cost < best.cost;
        trace::branch(site_cmp, better);
        if (better) {
            best = cand;
        }
    }
    return best;
}

} // namespace vtrans::codec

#ifndef VTRANS_CODEC_TABLES_H_
#define VTRANS_CODEC_TABLES_H_

/**
 * @file
 * Quantization and scan tables for the 4x4 integer transform, following
 * the H.264 design x264 implements: the forward multiplier table MF and
 * dequantization table V indexed by QP%6 and coefficient position class,
 * with 2^(QP/6) scaling. Also QP-derived rate-distortion lambda.
 */

#include <cstdint>

namespace vtrans::codec {

/** Number of QP values (0..51, as in H.264/x264). */
constexpr int kQpCount = 52;

/** Quantization step size for a QP (doubles every 6 QP). */
double qpToQstep(int qp);

/** Inverse mapping: nearest QP for a quantization step. */
int qstepToQp(double qstep);

/**
 * Rate-distortion lambda for SAD-based decisions at a QP, in fixed-point
 * (returned value is lambda * 16, so costs combine as
 * sad + (lambdaFp(qp) * bits >> 4)).
 */
int lambdaFp(int qp);

/** Forward quant multiplier for (qp, zigzag position). Quantization is
 *  level = (|coef| * mf + deadzone) >> (15 + qp/6). */
int quantMf(int qp, int pos);

/** Dequant multiplier for (qp, zigzag position). Reconstruction is
 *  coef = level * v << (qp/6). */
int dequantV(int qp, int pos);

/**
 * The full 16-entry forward-quant multiplier row for a QP (raster order).
 * Same values as quantMf(qp, 0..15), laid out contiguously so vector
 * kernels can load the whole row (see codec/strategies).
 */
const int32_t* quantMfRow(int qp);

/** The full 16-entry dequant multiplier row for a QP (raster order). */
const int32_t* dequantVRow(int qp);

/** Shift used with quantMf for a QP. */
inline int
quantShift(int qp)
{
    return 15 + qp / 6;
}

/** Zigzag scan order of a 4x4 block (raster index per scan position). */
extern const uint8_t kZigzag4x4[16];

/** Inverse zigzag: scan position of a raster index. */
extern const uint8_t kZigzag4x4Inv[16];

} // namespace vtrans::codec

#endif // VTRANS_CODEC_TABLES_H_

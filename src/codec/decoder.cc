#include "codec/decoder.h"

#include <algorithm>
#include <memory>

#include "codec/bitstream.h"
#include "codec/dct.h"
#include "codec/deblock.h"
#include "codec/intra.h"
#include "codec/mv.h"
#include "codec/params.h"
#include "codec/pixel.h"
#include "codec/tables.h"
#include "codec/syntax.h"
#include "common/status.h"
#include "trace/probe.h"

namespace vtrans::codec {

using video::Frame;
using video::Plane;

namespace {

/** Parsed residual of one macroblock. */
struct ParsedResidual
{
    int16_t luma[16][16] = {};
    int16_t chroma[2][4][16] = {};
    int cbp = 0;
};

/** Per-MB decoded motion state (mirrors the encoder's MbState). */
struct MbState
{
    Mv mv0, mv1;
    bool intra = true;
};

class StreamDecoder
{
  public:
    explicit StreamDecoder(const std::vector<uint8_t>& bytes) : br_(bytes) {}

    DecodeResult
    run()
    {
        DecodeResult out;
        const uint32_t magic = br_.getBits(32);
        if (magic != kMagic) {
            VT_FATAL("not a VX1 stream (bad magic)");
        }
        mb_w_ = static_cast<int>(br_.getUe());
        mb_h_ = static_cast<int>(br_.getUe());
        out.fps = static_cast<int>(br_.getUe());
        const int frame_count = static_cast<int>(br_.getUe());
        deblock_.enabled = br_.getUe() != 0;
        deblock_.alpha_offset = br_.getSe();
        deblock_.beta_offset = br_.getSe();
        VT_ASSERT(mb_w_ > 0 && mb_h_ > 0, "corrupt stream geometry");
        out.width = mb_w_ * 16;
        out.height = mb_h_ * 16;

        std::vector<std::pair<int, std::unique_ptr<Frame>>> decoded;
        for (int i = 0; i < frame_count; ++i) {
            auto [display, frame] = decodeFrame(out.width, out.height);
            decoded.emplace_back(display, std::move(frame));
        }
        std::sort(decoded.begin(), decoded.end(),
                  [](const auto& a, const auto& b) {
                      return a.first < b.first;
                  });
        for (auto& [display, frame] : decoded) {
            out.frames.push_back(std::move(*frame));
        }
        return out;
    }

  private:
    // ---- Reference lists (mirrors the encoder) -------------------------

    struct DpbEntry
    {
        int display = 0;
        std::shared_ptr<Frame> recon;
    };

    std::vector<const Frame*>
    list0(int display, int count) const
    {
        std::vector<const Frame*> refs;
        for (auto it = dpb_.rbegin(); it != dpb_.rend(); ++it) {
            if (it->display < display
                && static_cast<int>(refs.size()) < count) {
                refs.push_back(it->recon.get());
            }
        }
        return refs;
    }

    const Frame*
    list1(int display) const
    {
        for (const auto& e : dpb_) {
            if (e.display > display) {
                return e.recon.get();
            }
        }
        return nullptr;
    }

    Mv
    predictMv(int mbx, int mby, int list) const
    {
        auto fetch = [&](int x, int y) -> Mv {
            if (x < 0 || y < 0 || x >= mb_w_) {
                return Mv{};
            }
            const MbState& st = mb_state_[y * mb_w_ + x];
            if (st.intra) {
                return Mv{};
            }
            return list == 0 ? st.mv0 : st.mv1;
        };
        const Mv left = fetch(mbx - 1, mby);
        const Mv top = fetch(mbx, mby - 1);
        const Mv topright = (mbx + 1 < mb_w_) ? fetch(mbx + 1, mby - 1)
                                              : fetch(mbx - 1, mby - 1);
        return medianMv(left, top, topright);
    }

    // ---- Frame decode ----------------------------------------------------

    std::pair<int, std::unique_ptr<Frame>>
    decodeFrame(int width, int height)
    {
        VT_SITE(site, "dec.frameheader", 64, 14, Block);
        trace::block(site);

        const auto type = static_cast<FrameType>(br_.getUe());
        const int display = static_cast<int>(br_.getUe());
        frame_qp_ = static_cast<int>(br_.getUe());
        const int num_ref = static_cast<int>(br_.getUe());

        refs0_ = list0(display, num_ref);
        ref1_ = type == FrameType::B ? list1(display) : nullptr;
        VT_ASSERT(static_cast<int>(refs0_.size()) == num_ref,
                  "reference list drift: stream says ", num_ref,
                  " refs, DPB has ", refs0_.size());

        auto recon = std::make_unique<Frame>(width, height);
        mb_state_.assign(static_cast<size_t>(mb_w_) * mb_h_, MbState{});
        qp_map_.assign(static_cast<size_t>(mb_w_) * mb_h_, frame_qp_);

        for (int mby = 0; mby < mb_h_; ++mby) {
            for (int mbx = 0; mbx < mb_w_; ++mbx) {
                decodeMacroblock(*recon, type, mbx, mby);
            }
        }

        deblockFrame(*recon, deblock_, qp_map_.data(), mb_w_, mb_h_);

        if (type != FrameType::B) {
            auto shared = std::make_shared<Frame>(width, height);
            shared->copyFrom(*recon);
            dpb_.push_back({display, shared});
            std::sort(dpb_.begin(), dpb_.end(),
                      [](const DpbEntry& a, const DpbEntry& b) {
                          return a.display < b.display;
                      });
            while (dpb_.size() > 17) { // max refs (16) + future anchor
                dpb_.erase(dpb_.begin());
            }
        }
        return {display, std::move(recon)};
    }

    // ---- Residual parsing ------------------------------------------------

    void
    parseBlock(int16_t levels[16])
    {
        VT_SITE(site, "dec.parseblock", 80, 18, Block);
        trace::block(site);
        std::fill(levels, levels + 16, static_cast<int16_t>(0));
        const int nnz = static_cast<int>(br_.getUe());
        VT_ASSERT(nnz <= 16, "corrupt residual block (nnz=", nnz, ")");
        int pos = -1;
        for (int i = 0; i < nnz; ++i) {
            const int run = static_cast<int>(br_.getUe());
            const int level = br_.getSe();
            pos += run + 1;
            VT_ASSERT(pos < 16, "corrupt residual block (run overflow)");
            VT_SITE(site_c, "dec.coeff", 24, 4, BranchLoadDep);
            trace::branch(site_c, level != 0);
            levels[kZigzag4x4[pos]] = static_cast<int16_t>(level);
        }
    }

    void
    parseResidual(ParsedResidual* res)
    {
        for (int g = 0; g < 4; ++g) {
            if ((res->cbp >> g) & 1) {
                for (int i = 0; i < 4; ++i) {
                    parseBlock(res->luma[lumaBlockInGroup(g, i)]);
                }
            }
        }
        for (int c = 0; c < 2; ++c) {
            if ((res->cbp >> (4 + c)) & 1) {
                for (int b = 0; b < 4; ++b) {
                    parseBlock(res->chroma[c][b]);
                }
            }
        }
    }

    // ---- Reconstruction (identical arithmetic to the encoder) -----------

    void
    addResidual4x4(Frame& recon, Plane plane, int px, int py,
                   const int16_t levels[16], int qp, const uint8_t* pred,
                   int pstride)
    {
        int16_t blk[16];
        std::copy(levels, levels + 16, blk);
        dequantize4x4(blk, qp);
        inverseDct4x4(blk);
        VT_SITE(site, "dec.recon4", 56, 14, Block);
        trace::block(site);
        for (int y = 0; y < 4; ++y) {
            trace::store(recon.simAddr(plane, px, py + y), 4);
            for (int x = 0; x < 4; ++x) {
                const int v = pred[y * pstride + x] + blk[y * 4 + x];
                recon.at(plane, px + x, py + y) =
                    static_cast<uint8_t>(std::clamp(v, 0, 255));
            }
        }
    }

    void
    copyPred(Frame& recon, Plane plane, int px, int py, const uint8_t* pred,
             int pstride, int w, int h)
    {
        VT_SITE(site, "dec.copypred", 40, 8, Block);
        trace::block(site);
        for (int y = 0; y < h; ++y) {
            trace::store(recon.simAddr(plane, px, py + y), w);
            for (int x = 0; x < w; ++x) {
                recon.at(plane, px + x, py + y) = pred[y * pstride + x];
            }
        }
    }

    void
    reconstructInterMb(Frame& recon, int mx, int my, const uint8_t* predY,
                       const uint8_t* predCb, const uint8_t* predCr, int qp,
                       const ParsedResidual& res)
    {
        for (int b = 0; b < 16; ++b) {
            const int bx = (b & 3) * 4;
            const int by = (b >> 2) * 4;
            if ((res.cbp >> lumaCbpGroup(b)) & 1) {
                addResidual4x4(recon, Plane::Y, mx + bx, my + by,
                               res.luma[b], qp, predY + by * 16 + bx, 16);
            } else {
                copyPred(recon, Plane::Y, mx + bx, my + by,
                         predY + by * 16 + bx, 16, 4, 4);
            }
        }
        const int cqp = std::max(0, qp - 2);
        for (int c = 0; c < 2; ++c) {
            const Plane plane = c == 0 ? Plane::Cb : Plane::Cr;
            const uint8_t* pred = c == 0 ? predCb : predCr;
            for (int b = 0; b < 4; ++b) {
                const int bx = (b & 1) * 4;
                const int by = (b >> 1) * 4;
                if ((res.cbp >> (4 + c)) & 1) {
                    addResidual4x4(recon, plane, mx / 2 + bx, my / 2 + by,
                                   res.chroma[c][b], cqp,
                                   pred + by * 8 + bx, 8);
                } else {
                    copyPred(recon, plane, mx / 2 + bx, my / 2 + by,
                             pred + by * 8 + bx, 8, 4, 4);
                }
            }
        }
    }

    /** Motion compensation into MB-sized prediction buffers. */
    void
    mcInto(const Frame& ref, int mx, int my, const Mv& mv, uint8_t* py,
           uint8_t* pcb, uint8_t* pcr, Scratch base)
    {
        mcLumaBlock(py, 16, ref, mx, my, mv.x, mv.y, 16, 16,
                    static_cast<uint64_t>(base));
        mcChromaBlock(pcb, 8, ref, Plane::Cb, mx / 2, my / 2, mv.x, mv.y, 8,
                      8, static_cast<uint64_t>(base) + 256);
        mcChromaBlock(pcr, 8, ref, Plane::Cr, mx / 2, my / 2, mv.x, mv.y, 8,
                      8, static_cast<uint64_t>(base) + 320);
    }

    // ---- Macroblock decode -----------------------------------------------

    void
    decodeMacroblock(Frame& recon, FrameType type, int mbx, int mby)
    {
        const int mx = mbx * 16;
        const int my = mby * 16;
        const int mb_index = mby * mb_w_ + mbx;

        MbMode mode;
        if (type == FrameType::I) {
            mode = br_.getUe() == 0 ? MbMode::Intra16 : MbMode::Intra4;
        } else {
            mode = static_cast<MbMode>(br_.getUe());
        }

        const Mv pred0 = predictMv(mbx, mby, 0);
        const Mv pred1 = predictMv(mbx, mby, 1);

        uint8_t predY[256];
        uint8_t predCb[64];
        uint8_t predCr[64];

        if (mode == MbMode::Skip) {
            // P-Skip: MC at the predictor on ref 0. B-Skip: bi "direct".
            if (type == FrameType::B && ref1_ != nullptr) {
                uint8_t fy[256], fcb[64], fcr[64];
                uint8_t by[256], bcb[64], bcr[64];
                mcInto(*refs0_[0], mx, my, pred0, fy, fcb, fcr,
                       Scratch::Pred);
                mcInto(*ref1_, mx, my, pred1, by, bcb, bcr, Scratch::Pred2);
                averageBlocks(predY, fy, by, 256,
                              static_cast<uint64_t>(Scratch::Pred));
                averageBlocks(predCb, fcb, bcb, 64,
                              static_cast<uint64_t>(Scratch::Pred) + 256);
                averageBlocks(predCr, fcr, bcr, 64,
                              static_cast<uint64_t>(Scratch::Pred) + 320);
            } else {
                mcInto(*refs0_[0], mx, my, pred0, predY, predCb, predCr,
                       Scratch::Pred);
            }
            copyPred(recon, Plane::Y, mx, my, predY, 16, 16, 16);
            copyPred(recon, Plane::Cb, mx / 2, my / 2, predCb, 8, 8, 8);
            copyPred(recon, Plane::Cr, mx / 2, my / 2, predCr, 8, 8, 8);

            MbState st;
            st.intra = false;
            st.mv0 = pred0;
            st.mv1 = (type == FrameType::B) ? pred1 : Mv{};
            mb_state_[mb_index] = st;
            return;
        }

        // Parse the mode payload.
        BDir dir = BDir::Fwd;
        Mv mv0, mv1;
        int ref0 = 0;
        Mv mv8[4];
        int ref8[4] = {};
        Intra16Mode i16 = Intra16Mode::DC;
        Intra4Mode i4[16] = {};

        switch (mode) {
          case MbMode::Inter16: {
            if (type == FrameType::B) {
                dir = static_cast<BDir>(br_.getUe());
            }
            if (dir == BDir::Fwd || dir == BDir::Bi) {
                ref0 = static_cast<int>(br_.getUe());
                mv0.x = static_cast<int16_t>(pred0.x + br_.getSe());
                mv0.y = static_cast<int16_t>(pred0.y + br_.getSe());
            }
            if (type == FrameType::B
                && (dir == BDir::Bwd || dir == BDir::Bi)) {
                mv1.x = static_cast<int16_t>(pred1.x + br_.getSe());
                mv1.y = static_cast<int16_t>(pred1.y + br_.getSe());
            }
            break;
          }
          case MbMode::Inter8x8: {
            if (type == FrameType::B) {
                dir = static_cast<BDir>(br_.getUe());
            }
            for (int p = 0; p < 4; ++p) {
                ref8[p] = static_cast<int>(br_.getUe());
                mv8[p].x = static_cast<int16_t>(pred0.x + br_.getSe());
                mv8[p].y = static_cast<int16_t>(pred0.y + br_.getSe());
            }
            break;
          }
          case MbMode::Intra16: {
            i16 = static_cast<Intra16Mode>(br_.getUe());
            break;
          }
          case MbMode::Intra4: {
            for (int b = 0; b < 16; ++b) {
                i4[b] = static_cast<Intra4Mode>(br_.getUe());
            }
            break;
          }
          case MbMode::Skip:
            VT_PANIC("unreachable");
        }

        const int qp_delta = br_.getSe();
        const int qp = std::clamp(frame_qp_ + qp_delta, 0, 51);
        ParsedResidual res;
        res.cbp = static_cast<int>(br_.getUe());
        VT_ASSERT(res.cbp < 64, "corrupt cbp");
        parseResidual(&res);
        qp_map_[mb_index] = qp;

        // Reconstruct.
        if (mode == MbMode::Intra4) {
            // Sequential per-block reconstruction against live recon.
            uint8_t pred[16];
            for (int b = 0; b < 16; ++b) {
                const int px = mx + (b & 3) * 4;
                const int py = my + (b >> 2) * 4;
                predictIntra4(recon, px, py, i4[b], pred);
                if ((res.cbp >> lumaCbpGroup(b)) & 1) {
                    addResidual4x4(recon, Plane::Y, px, py, res.luma[b], qp,
                                   pred, 4);
                } else {
                    copyPred(recon, Plane::Y, px, py, pred, 4, 4, 4);
                }
            }
            uint8_t cpred[64];
            const int cqp = std::max(0, qp - 2);
            for (int c = 0; c < 2; ++c) {
                const Plane plane = c == 0 ? Plane::Cb : Plane::Cr;
                predictChromaDc(recon, plane, mx / 2, my / 2, cpred);
                for (int b = 0; b < 4; ++b) {
                    const int bx = (b & 1) * 4;
                    const int by = (b >> 1) * 4;
                    if ((res.cbp >> (4 + c)) & 1) {
                        addResidual4x4(recon, plane, mx / 2 + bx,
                                       my / 2 + by, res.chroma[c][b], cqp,
                                       cpred + by * 8 + bx, 8);
                    } else {
                        copyPred(recon, plane, mx / 2 + bx, my / 2 + by,
                                 cpred + by * 8 + bx, 8, 4, 4);
                    }
                }
            }
            mb_state_[mb_index] = {Mv{}, Mv{}, true};
            return;
        }

        if (mode == MbMode::Intra16) {
            predictIntra16(recon, mx, my, i16, predY);
            predictChromaDc(recon, Plane::Cb, mx / 2, my / 2, predCb);
            predictChromaDc(recon, Plane::Cr, mx / 2, my / 2, predCr);
            reconstructInterMb(recon, mx, my, predY, predCb, predCr, qp,
                               res);
            mb_state_[mb_index] = {Mv{}, Mv{}, true};
            return;
        }

        // Inter modes.
        if (mode == MbMode::Inter8x8) {
            for (int p = 0; p < 4; ++p) {
                const int ox = (p & 1) * 8;
                const int oy = (p >> 1) * 8;
                const Frame& ref = *refs0_[ref8[p]];
                mcLumaBlock(predY + oy * 16 + ox, 16, ref, mx + ox, my + oy,
                            mv8[p].x, mv8[p].y, 8, 8,
                            static_cast<uint64_t>(Scratch::Pred) + oy * 16
                                + ox);
                mcChromaBlock(predCb + (oy / 2) * 8 + ox / 2, 8, ref,
                              Plane::Cb, mx / 2 + ox / 2, my / 2 + oy / 2,
                              mv8[p].x, mv8[p].y, 4, 4,
                              static_cast<uint64_t>(Scratch::Pred) + 256);
                mcChromaBlock(predCr + (oy / 2) * 8 + ox / 2, 8, ref,
                              Plane::Cr, mx / 2 + ox / 2, my / 2 + oy / 2,
                              mv8[p].x, mv8[p].y, 4, 4,
                              static_cast<uint64_t>(Scratch::Pred) + 320);
            }
        } else if (dir == BDir::Fwd || ref1_ == nullptr) {
            mcInto(*refs0_[ref0], mx, my, mv0, predY, predCb, predCr,
                   Scratch::Pred);
        } else if (dir == BDir::Bwd) {
            mcInto(*ref1_, mx, my, mv1, predY, predCb, predCr,
                   Scratch::Pred);
        } else {
            uint8_t fy[256], fcb[64], fcr[64];
            uint8_t by[256], bcb[64], bcr[64];
            mcInto(*refs0_[ref0], mx, my, mv0, fy, fcb, fcr, Scratch::Pred);
            mcInto(*ref1_, mx, my, mv1, by, bcb, bcr, Scratch::Pred2);
            averageBlocks(predY, fy, by, 256,
                          static_cast<uint64_t>(Scratch::Pred));
            averageBlocks(predCb, fcb, bcb, 64,
                          static_cast<uint64_t>(Scratch::Pred) + 256);
            averageBlocks(predCr, fcr, bcr, 64,
                          static_cast<uint64_t>(Scratch::Pred) + 320);
        }
        reconstructInterMb(recon, mx, my, predY, predCb, predCr, qp, res);

        MbState st;
        st.intra = false;
        st.mv0 = mode == MbMode::Inter8x8 ? mv8[0] : mv0;
        st.mv1 = mv1;
        mb_state_[mb_index] = st;
    }

    // ---- Members ---------------------------------------------------------

    BitReader br_;
    int mb_w_ = 0;
    int mb_h_ = 0;
    int frame_qp_ = 26;
    DeblockConfig deblock_;
    std::vector<DpbEntry> dpb_;
    std::vector<const Frame*> refs0_;
    const Frame* ref1_ = nullptr;
    std::vector<MbState> mb_state_;
    std::vector<int> qp_map_;
};

} // namespace

DecodeResult
decode(const std::vector<uint8_t>& bytes)
{
    StreamDecoder dec(bytes);
    return dec.run();
}

} // namespace vtrans::codec

#include "codec/pixel.h"

#include <algorithm>
#include <cstdlib>

#include "common/status.h"
#include "trace/probe.h"

namespace vtrans::codec {

using video::Frame;
using video::Plane;

namespace {

/** Clamped read of a luma pixel (edge extension for out-of-frame MVs). */
inline int
refPixel(const Frame& ref, int x, int y)
{
    x = std::clamp(x, 0, ref.width() - 1);
    y = std::clamp(y, 0, ref.height() - 1);
    return ref.at(Plane::Y, x, y);
}

/** Clamped read of a chroma pixel. */
inline int
refChroma(const Frame& ref, Plane p, int x, int y)
{
    x = std::clamp(x, 0, ref.chromaWidth() - 1);
    y = std::clamp(y, 0, ref.chromaHeight() - 1);
    return ref.at(p, x, y);
}

/** Quarter-pel bilinear sample of the luma plane at (x4, y4)/4. */
inline int
sampleQpel(const Frame& ref, int x4, int y4)
{
    const int xi = x4 >> 2;
    const int yi = y4 >> 2;
    const int dx = x4 & 3;
    const int dy = y4 & 3;
    if (dx == 0 && dy == 0) {
        return refPixel(ref, xi, yi);
    }
    const int p00 = refPixel(ref, xi, yi);
    const int p10 = refPixel(ref, xi + 1, yi);
    const int p01 = refPixel(ref, xi, yi + 1);
    const int p11 = refPixel(ref, xi + 1, yi + 1);
    return ((4 - dx) * (4 - dy) * p00 + dx * (4 - dy) * p10
            + (4 - dx) * dy * p01 + dx * dy * p11 + 8)
           >> 4;
}

} // namespace

int
sadBlock(const Frame& cur, int cx, int cy, const Frame& ref, int rx, int ry,
         int w, int h, int best)
{
    VT_ASSERT(w == 4 || w == 8 || w == 16, "unsupported SAD width");
    // SIMD SAD works in 8-row chunks; early termination is only checked
    // between chunks, as in x264's pixel_sad ladders.
    const int chunk = h >= 8 ? 8 : h;
    int sad = 0;
    for (int y0 = 0; y0 < h; y0 += chunk) {
        VT_SITE(site_rows, "pixel.sad.rows8", 104, 16, BlockLoadDep);
        trace::block(site_rows);
        for (int dy = 0; dy < chunk; ++dy) {
            const int y = y0 + dy;
            // Guarded so native (sink-less) runs skip the simulated-address
            // math entirely; load() would drop the events anyway.
            if (trace::active()) {
                trace::load(cur.simAddr(Plane::Y, cx, cy + y), w);
                trace::load(
                    ref.simAddr(Plane::Y, std::clamp(rx, 0, ref.width() - 1),
                                std::clamp(ry + y, 0, ref.height() - 1)),
                    w);
            }
            for (int x = 0; x < w; ++x) {
                sad += std::abs(static_cast<int>(cur.at(Plane::Y, cx + x,
                                                        cy + y))
                                - refPixel(ref, rx + x, ry + y));
            }
        }
        // Early termination: data-dependent branch against the best cost.
        VT_SITE(site_early, "pixel.sad.early_exit", 12, 1, BranchLoadDep);
        const bool bail = sad >= best;
        trace::branch(site_early, bail);
        if (bail) {
            return sad;
        }
    }
    return sad;
}

int
sadSubpel(const Frame& cur, int cx, int cy, const Frame& ref, int mvx,
          int mvy, int w, int h, int best)
{
    const int bx4 = cx * 4 + mvx;
    const int by4 = cy * 4 + mvy;
    int sad = 0;
    for (int y0 = 0; y0 < h; y0 += 4) {
        // Interpolating SAD touches two reference rows per output row.
        VT_SITE(site_rows, "pixel.sadsub.rows4", 72, 14, BlockLoadDep);
        trace::block(site_rows);
        for (int dy = 0; dy < 4; ++dy) {
            const int y = y0 + dy;
            if (trace::active()) {
                trace::load(cur.simAddr(Plane::Y, cx, cy + y), w);
                const int ry =
                    std::clamp((by4 >> 2) + y, 0, ref.height() - 1);
                const int rx = std::clamp(bx4 >> 2, 0, ref.width() - 1);
                trace::load(ref.simAddr(Plane::Y, rx, ry), w + 1);
                trace::load(ref.simAddr(Plane::Y, rx,
                                        std::min(ry + 1, ref.height() - 1)),
                            w + 1);
            }
            for (int x = 0; x < w; ++x) {
                const int pred = sampleQpel(ref, bx4 + x * 4, by4 + y * 4);
                sad += std::abs(
                    static_cast<int>(cur.at(Plane::Y, cx + x, cy + y))
                    - pred);
            }
        }
        VT_SITE(site_early, "pixel.sadsub.early_exit", 12, 1, BranchLoadDep);
        const bool bail = sad >= best;
        trace::branch(site_early, bail);
        if (bail) {
            return sad;
        }
    }
    return sad;
}

int
satd4x4(const Frame& cur, int cx, int cy, const uint8_t* pred, int pstride,
        uint64_t pred_sim)
{
    VT_SITE(site, "pixel.satd4x4", 128, 26, BlockLoadDep);
    trace::block(site);

    int d[16];
    for (int y = 0; y < 4; ++y) {
        if (trace::active()) {
            trace::load(cur.simAddr(Plane::Y, cx, cy + y), 4);
            trace::load(pred_sim + static_cast<uint64_t>(y) * pstride, 4);
        }
        for (int x = 0; x < 4; ++x) {
            d[y * 4 + x] = static_cast<int>(cur.at(Plane::Y, cx + x, cy + y))
                           - pred[y * pstride + x];
        }
    }

    // 4-point Hadamard on rows then columns.
    for (int y = 0; y < 4; ++y) {
        int* r = d + y * 4;
        const int a = r[0] + r[1];
        const int b = r[0] - r[1];
        const int c = r[2] + r[3];
        const int e = r[2] - r[3];
        r[0] = a + c;
        r[1] = b + e;
        r[2] = a - c;
        r[3] = b - e;
    }
    int satd = 0;
    for (int x = 0; x < 4; ++x) {
        const int a = d[x] + d[4 + x];
        const int b = d[x] - d[4 + x];
        const int c = d[8 + x] + d[12 + x];
        const int e = d[8 + x] - d[12 + x];
        satd += std::abs(a + c) + std::abs(b + e) + std::abs(a - c)
                + std::abs(b - e);
    }
    return (satd + 1) / 2;
}

int
satdBlock(const Frame& cur, int cx, int cy, const uint8_t* pred, int pstride,
          int w, int h, uint64_t pred_sim)
{
    int total = 0;
    for (int y = 0; y < h; y += 4) {
        for (int x = 0; x < w; x += 4) {
            total += satd4x4(cur, cx + x, cy + y, pred + y * pstride + x,
                             pstride,
                             pred_sim + static_cast<uint64_t>(y) * pstride
                                 + x);
        }
    }
    return total;
}

void
mcLumaBlock(uint8_t* dst, int dstride, const Frame& ref, int cx, int cy,
            int mvx, int mvy, int w, int h, uint64_t dst_sim)
{
    const int bx4 = cx * 4 + mvx;
    const int by4 = cy * 4 + mvy;
    const bool subpel = (mvx & 3) || (mvy & 3);
    for (int y = 0; y < h; ++y) {
        VT_SITE(site_row, "pixel.mc.row", 48, 6, Block);
        trace::block(site_row);
        if (trace::active()) {
            const int ry = std::clamp((by4 >> 2) + y, 0, ref.height() - 1);
            const int rx = std::clamp(bx4 >> 2, 0, ref.width() - 1);
            trace::load(ref.simAddr(Plane::Y, rx, ry), w + 1);
            if (subpel) {
                trace::load(ref.simAddr(Plane::Y, rx,
                                        std::min(ry + 1, ref.height() - 1)),
                            w + 1);
            }
            trace::store(dst_sim + static_cast<uint64_t>(y) * dstride, w);
        }
        for (int x = 0; x < w; ++x) {
            dst[y * dstride + x] =
                static_cast<uint8_t>(sampleQpel(ref, bx4 + x * 4,
                                                by4 + y * 4));
        }
    }
}

void
mcChromaBlock(uint8_t* dst, int dstride, const Frame& ref, Plane plane,
              int cx, int cy, int mvx, int mvy, int w, int h,
              uint64_t dst_sim)
{
    // Chroma plane is half resolution; a luma quarter-pel MV becomes an
    // eighth-pel chroma MV. We round to chroma quarter-pel and sample
    // bilinearly at half the displacement.
    const int cmvx = mvx / 2;
    const int cmvy = mvy / 2;
    const int bx4 = cx * 4 + cmvx;
    const int by4 = cy * 4 + cmvy;
    for (int y = 0; y < h; ++y) {
        VT_SITE(site_row, "pixel.mcchroma.row", 44, 4, Block);
        trace::block(site_row);
        if (trace::active()) {
            const int ry =
                std::clamp((by4 >> 2) + y, 0, ref.chromaHeight() - 1);
            const int rx = std::clamp(bx4 >> 2, 0, ref.chromaWidth() - 1);
            trace::load(ref.simAddr(plane, rx, ry), w + 1);
            trace::store(dst_sim + static_cast<uint64_t>(y) * dstride, w);
        }
        for (int x = 0; x < w; ++x) {
            const int x4 = bx4 + x * 4;
            const int y4 = by4 + y * 4;
            const int xi = x4 >> 2;
            const int yi = y4 >> 2;
            const int dx = x4 & 3;
            const int dy = y4 & 3;
            const int p00 = refChroma(ref, plane, xi, yi);
            const int p10 = refChroma(ref, plane, xi + 1, yi);
            const int p01 = refChroma(ref, plane, xi, yi + 1);
            const int p11 = refChroma(ref, plane, xi + 1, yi + 1);
            dst[y * dstride + x] = static_cast<uint8_t>(
                ((4 - dx) * (4 - dy) * p00 + dx * (4 - dy) * p10
                 + (4 - dx) * dy * p01 + dx * dy * p11 + 8)
                >> 4);
        }
    }
}

void
averageBlocks(uint8_t* dst, const uint8_t* a, const uint8_t* b, int n,
              uint64_t dst_sim)
{
    VT_SITE(site, "pixel.average", 40, 8, Block);
    trace::block(site);
    trace::load(static_cast<uint64_t>(Scratch::Pred), n);
    trace::load(static_cast<uint64_t>(Scratch::Pred2), n);
    trace::store(dst_sim, n);
    for (int i = 0; i < n; ++i) {
        dst[i] = static_cast<uint8_t>((a[i] + b[i] + 1) >> 1);
    }
}

} // namespace vtrans::codec

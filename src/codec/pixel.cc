#include "codec/pixel.h"

#include <algorithm>
#include <cstdlib>

#include "codec/strategies/strategies.h"
#include "common/status.h"
#include "trace/probe.h"
#include "uarch/simdcost.h"

namespace vtrans::codec {

using video::Frame;
using video::Plane;

namespace {

/** Clamped read of a luma pixel (edge extension for out-of-frame MVs). */
inline int
refPixel(const Frame& ref, int x, int y)
{
    x = std::clamp(x, 0, ref.width() - 1);
    y = std::clamp(y, 0, ref.height() - 1);
    return ref.at(Plane::Y, x, y);
}

/** Clamped read of a chroma pixel. */
inline int
refChroma(const Frame& ref, Plane p, int x, int y)
{
    x = std::clamp(x, 0, ref.chromaWidth() - 1);
    y = std::clamp(y, 0, ref.chromaHeight() - 1);
    return ref.at(p, x, y);
}

/** Quarter-pel bilinear sample of the luma plane at (x4, y4)/4. */
inline int
sampleQpel(const Frame& ref, int x4, int y4)
{
    const int xi = x4 >> 2;
    const int yi = y4 >> 2;
    const int dx = x4 & 3;
    const int dy = y4 & 3;
    if (dx == 0 && dy == 0) {
        return refPixel(ref, xi, yi);
    }
    const int p00 = refPixel(ref, xi, yi);
    const int p10 = refPixel(ref, xi + 1, yi);
    const int p01 = refPixel(ref, xi, yi + 1);
    const int p11 = refPixel(ref, xi + 1, yi + 1);
    return ((4 - dx) * (4 - dy) * p00 + dx * (4 - dy) * p10
            + (4 - dx) * dy * p01 + dx * dy * p11 + 8)
           >> 4;
}

/**
 * True when the w x h *full-pel* window at (x, y) lies inside the luma
 * plane, so edge clamping is the identity and the strategy kernels (which
 * take raw pointers, no clamping) compute the same values.
 */
inline bool
fullpelInterior(const Frame& ref, int x, int y, int w, int h)
{
    return x >= 0 && y >= 0 && x + w <= ref.width() && y + h <= ref.height();
}

/**
 * True when the bilinear window at full-pel (x, y) — which also reads
 * column x+w-1+1 and row y+h-1+1 — lies inside the luma plane.
 */
inline bool
subpelInterior(const Frame& ref, int x, int y, int w, int h)
{
    return x >= 0 && y >= 0 && x + w < ref.width() && y + h < ref.height();
}

} // namespace

int
sadBlock(const Frame& cur, int cx, int cy, const Frame& ref, int rx, int ry,
         int w, int h, int best)
{
    VT_ASSERT(w == 4 || w == 8 || w == 16, "unsupported SAD width");
    // SIMD SAD works in 8-row chunks; early termination is only checked
    // between chunks, as in x264's pixel_sad ladders.
    const int chunk = h >= 8 ? 8 : h;
    const KernelOps& ops = kernels();
    const bool interior = fullpelInterior(ref, rx, ry, w, h);
    const uint8_t* cur_row = cur.data(Plane::Y)
                             + static_cast<ptrdiff_t>(cy) * cur.stride(Plane::Y)
                             + cx;
    const uint8_t* ref_row =
        interior ? ref.data(Plane::Y)
                       + static_cast<ptrdiff_t>(ry) * ref.stride(Plane::Y) + rx
                 : nullptr;
    int sad = 0;
    for (int y0 = 0; y0 < h; y0 += chunk) {
        if (vectorKernelModel()) {
            VT_SITE(site_vec, "pixel.sad.rows8.vec",
                    uarch::kVecSadRows8.bytes,
                    uarch::kVecSadRows8.instructions, BlockLoadDep);
            trace::block(site_vec);
        } else {
            VT_SITE(site_rows, "pixel.sad.rows8", 104, 16, BlockLoadDep);
            trace::block(site_rows);
        }
        // Guarded so native (sink-less) runs skip the simulated-address
        // math entirely; load() would drop the events anyway.
        if (trace::active()) {
            for (int dy = 0; dy < chunk; ++dy) {
                const int y = y0 + dy;
                trace::load(cur.simAddr(Plane::Y, cx, cy + y), w);
                trace::load(
                    ref.simAddr(Plane::Y, std::clamp(rx, 0, ref.width() - 1),
                                std::clamp(ry + y, 0, ref.height() - 1)),
                    w);
            }
        }
        if (interior) {
            sad += ops.sad_rows(cur_row + y0 * cur.stride(Plane::Y),
                                cur.stride(Plane::Y),
                                ref_row + y0 * ref.stride(Plane::Y),
                                ref.stride(Plane::Y), w, chunk);
        } else {
            // Edge-clamped fallback: identical math to the scalar kernel
            // with refPixel() supplying the clamped reads.
            for (int dy = 0; dy < chunk; ++dy) {
                const int y = y0 + dy;
                for (int x = 0; x < w; ++x) {
                    sad += std::abs(static_cast<int>(cur.at(Plane::Y, cx + x,
                                                            cy + y))
                                    - refPixel(ref, rx + x, ry + y));
                }
            }
        }
        // Early termination: data-dependent branch against the best cost.
        VT_SITE(site_early, "pixel.sad.early_exit", 12, 1, BranchLoadDep);
        const bool bail = sad >= best;
        trace::branch(site_early, bail);
        if (bail) {
            return sad;
        }
    }
    return sad;
}

int
sadSubpel(const Frame& cur, int cx, int cy, const Frame& ref, int mvx,
          int mvy, int w, int h, int best)
{
    const int bx4 = cx * 4 + mvx;
    const int by4 = cy * 4 + mvy;
    const int xi0 = bx4 >> 2;
    const int yi0 = by4 >> 2;
    const int fx = bx4 & 3;
    const int fy = by4 & 3;
    const KernelOps& ops = kernels();
    const int cstride = cur.stride(Plane::Y);
    const int rstride = ref.stride(Plane::Y);
    const uint8_t* cur_row =
        cur.data(Plane::Y) + static_cast<ptrdiff_t>(cy) * cstride + cx;
    // Full-pel MVs compare directly against reference rows; fractional MVs
    // interpolate into a stack tile first (both via the strategy kernels).
    const bool fullpel = fx == 0 && fy == 0;
    const bool vectorizable =
        w <= 16
        && (fullpel ? fullpelInterior(ref, xi0, yi0, w, h)
                    : subpelInterior(ref, xi0, yi0, w, h));
    const uint8_t* ref_row =
        vectorizable
            ? ref.data(Plane::Y) + static_cast<ptrdiff_t>(yi0) * rstride + xi0
            : nullptr;
    int sad = 0;
    for (int y0 = 0; y0 < h; y0 += 4) {
        // Interpolating SAD touches two reference rows per output row.
        if (vectorKernelModel()) {
            VT_SITE(site_vec, "pixel.sadsub.rows4.vec",
                    uarch::kVecSadSubRows4.bytes,
                    uarch::kVecSadSubRows4.instructions, BlockLoadDep);
            trace::block(site_vec);
        } else {
            VT_SITE(site_rows, "pixel.sadsub.rows4", 72, 14, BlockLoadDep);
            trace::block(site_rows);
        }
        if (trace::active()) {
            for (int dy = 0; dy < 4; ++dy) {
                const int y = y0 + dy;
                trace::load(cur.simAddr(Plane::Y, cx, cy + y), w);
                const int ry =
                    std::clamp((by4 >> 2) + y, 0, ref.height() - 1);
                const int rx = std::clamp(bx4 >> 2, 0, ref.width() - 1);
                trace::load(ref.simAddr(Plane::Y, rx, ry), w + 1);
                trace::load(ref.simAddr(Plane::Y, rx,
                                        std::min(ry + 1, ref.height() - 1)),
                            w + 1);
            }
        }
        if (vectorizable && fullpel) {
            sad += ops.sad_rows(cur_row + y0 * cstride, cstride,
                                ref_row + y0 * rstride, rstride, w, 4);
        } else if (vectorizable) {
            uint8_t tile[16 * 4];
            ops.mc_bilinear(tile, w, ref_row + y0 * rstride, rstride, w, 4,
                            fx, fy);
            sad += ops.sad_rows(cur_row + y0 * cstride, cstride, tile, w, w,
                                4);
        } else {
            for (int dy = 0; dy < 4; ++dy) {
                const int y = y0 + dy;
                for (int x = 0; x < w; ++x) {
                    const int pred =
                        sampleQpel(ref, bx4 + x * 4, by4 + y * 4);
                    sad += std::abs(
                        static_cast<int>(cur.at(Plane::Y, cx + x, cy + y))
                        - pred);
                }
            }
        }
        VT_SITE(site_early, "pixel.sadsub.early_exit", 12, 1, BranchLoadDep);
        const bool bail = sad >= best;
        trace::branch(site_early, bail);
        if (bail) {
            return sad;
        }
    }
    return sad;
}

int
satd4x4(const Frame& cur, int cx, int cy, const uint8_t* pred, int pstride,
        uint64_t pred_sim)
{
    if (vectorKernelModel()) {
        VT_SITE(site_vec, "pixel.satd4x4.vec", uarch::kVecSatd4x4.bytes,
                uarch::kVecSatd4x4.instructions, BlockLoadDep);
        trace::block(site_vec);
    } else {
        VT_SITE(site, "pixel.satd4x4", 128, 26, BlockLoadDep);
        trace::block(site);
    }
    if (trace::active()) {
        for (int y = 0; y < 4; ++y) {
            trace::load(cur.simAddr(Plane::Y, cx, cy + y), 4);
            trace::load(pred_sim + static_cast<uint64_t>(y) * pstride, 4);
        }
    }
    // Current-frame 4x4 tiles are always in-plane and pred is a raw tile,
    // so the strategy kernel applies unconditionally.
    return kernels().satd4x4(cur.data(Plane::Y)
                                 + static_cast<ptrdiff_t>(cy)
                                       * cur.stride(Plane::Y)
                                 + cx,
                             cur.stride(Plane::Y), pred, pstride);
}

int
satdBlock(const Frame& cur, int cx, int cy, const uint8_t* pred, int pstride,
          int w, int h, uint64_t pred_sim)
{
    int total = 0;
    for (int y = 0; y < h; y += 4) {
        for (int x = 0; x < w; x += 4) {
            total += satd4x4(cur, cx + x, cy + y, pred + y * pstride + x,
                             pstride,
                             pred_sim + static_cast<uint64_t>(y) * pstride
                                 + x);
        }
    }
    return total;
}

void
mcLumaBlock(uint8_t* dst, int dstride, const Frame& ref, int cx, int cy,
            int mvx, int mvy, int w, int h, uint64_t dst_sim)
{
    const int bx4 = cx * 4 + mvx;
    const int by4 = cy * 4 + mvy;
    const bool subpel = (mvx & 3) || (mvy & 3);
    for (int y = 0; y < h; ++y) {
        if (vectorKernelModel()) {
            // Vector MC emits one block per *pair* of rows: the SIMD loop
            // body processes two rows per iteration.
            if ((y & 1) == 0) {
                VT_SITE(site_pair, "pixel.mc.rowpair.vec",
                        uarch::kVecMcRowPair.bytes,
                        uarch::kVecMcRowPair.instructions, Block);
                trace::block(site_pair);
            }
        } else {
            VT_SITE(site_row, "pixel.mc.row", 48, 6, Block);
            trace::block(site_row);
        }
        if (trace::active()) {
            const int ry = std::clamp((by4 >> 2) + y, 0, ref.height() - 1);
            const int rx = std::clamp(bx4 >> 2, 0, ref.width() - 1);
            trace::load(ref.simAddr(Plane::Y, rx, ry), w + 1);
            if (subpel) {
                trace::load(ref.simAddr(Plane::Y, rx,
                                        std::min(ry + 1, ref.height() - 1)),
                            w + 1);
            }
            trace::store(dst_sim + static_cast<uint64_t>(y) * dstride, w);
        }
    }
    const int xi0 = bx4 >> 2;
    const int yi0 = by4 >> 2;
    const int sstride = ref.stride(Plane::Y);
    const uint8_t* src =
        ref.data(Plane::Y) + static_cast<ptrdiff_t>(yi0) * sstride + xi0;
    const KernelOps& ops = kernels();
    if (!subpel && fullpelInterior(ref, xi0, yi0, w, h)) {
        ops.mc_copy(dst, dstride, src, sstride, w, h);
    } else if (subpel && subpelInterior(ref, xi0, yi0, w, h)) {
        ops.mc_bilinear(dst, dstride, src, sstride, w, h, bx4 & 3, by4 & 3);
    } else {
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                dst[y * dstride + x] = static_cast<uint8_t>(
                    sampleQpel(ref, bx4 + x * 4, by4 + y * 4));
            }
        }
    }
}

void
mcChromaBlock(uint8_t* dst, int dstride, const Frame& ref, Plane plane,
              int cx, int cy, int mvx, int mvy, int w, int h,
              uint64_t dst_sim)
{
    // Chroma plane is half resolution; a luma quarter-pel MV becomes an
    // eighth-pel chroma MV. We round to chroma quarter-pel and sample
    // bilinearly at half the displacement. The halving must floor (>> 1),
    // not truncate toward zero: a luma MV of -3 must round the same
    // distance left as +3 rounds right, or negative-MV chroma prediction
    // is biased one eighth-pel toward zero relative to luma.
    const int cmvx = mvx >> 1;
    const int cmvy = mvy >> 1;
    const int bx4 = cx * 4 + cmvx;
    const int by4 = cy * 4 + cmvy;
    for (int y = 0; y < h; ++y) {
        VT_SITE(site_row, "pixel.mcchroma.row", 44, 4, Block);
        trace::block(site_row);
        if (trace::active()) {
            const int ry =
                std::clamp((by4 >> 2) + y, 0, ref.chromaHeight() - 1);
            const int rx = std::clamp(bx4 >> 2, 0, ref.chromaWidth() - 1);
            trace::load(ref.simAddr(plane, rx, ry), w + 1);
            trace::store(dst_sim + static_cast<uint64_t>(y) * dstride, w);
        }
    }
    const int xi0 = bx4 >> 2;
    const int yi0 = by4 >> 2;
    // Chroma always evaluates the 4-tap bilinear form (no full-pel
    // shortcut), so the interior window needs the +1 column and row even
    // at zero fractions.
    if (xi0 >= 0 && yi0 >= 0 && xi0 + w < ref.chromaWidth()
        && yi0 + h < ref.chromaHeight()) {
        const int sstride = ref.stride(plane);
        kernels().mc_bilinear(
            dst, dstride,
            ref.data(plane) + static_cast<ptrdiff_t>(yi0) * sstride + xi0,
            sstride, w, h, bx4 & 3, by4 & 3);
        return;
    }
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            const int x4 = bx4 + x * 4;
            const int y4 = by4 + y * 4;
            const int xi = x4 >> 2;
            const int yi = y4 >> 2;
            const int dx = x4 & 3;
            const int dy = y4 & 3;
            const int p00 = refChroma(ref, plane, xi, yi);
            const int p10 = refChroma(ref, plane, xi + 1, yi);
            const int p01 = refChroma(ref, plane, xi, yi + 1);
            const int p11 = refChroma(ref, plane, xi + 1, yi + 1);
            dst[y * dstride + x] = static_cast<uint8_t>(
                ((4 - dx) * (4 - dy) * p00 + dx * (4 - dy) * p10
                 + (4 - dx) * dy * p01 + dx * dy * p11 + 8)
                >> 4);
        }
    }
}

void
averageBlocks(uint8_t* dst, const uint8_t* a, const uint8_t* b, int n,
              uint64_t dst_sim)
{
    VT_SITE(site, "pixel.average", 40, 8, Block);
    trace::block(site);
    trace::load(static_cast<uint64_t>(Scratch::Pred), n);
    trace::load(static_cast<uint64_t>(Scratch::Pred2), n);
    trace::store(dst_sim, n);
    kernels().average(dst, a, b, n);
}

} // namespace vtrans::codec

#ifndef VTRANS_CODEC_PIXEL_H_
#define VTRANS_CODEC_PIXEL_H_

/**
 * @file
 * Pixel-domain cost kernels and motion compensation: SAD with early
 * termination, Hadamard SATD, and quarter-pel interpolation. These are the
 * transcoding hot loops whose instruction/memory/branch stream dominates
 * the microarchitectural profile, so they carry the densest probes.
 *
 * Simulated scratch buffers (prediction blocks, residuals) live at fixed
 * addresses in a dedicated region so they behave like x264's hot stack and
 * stay L1-resident — distinct from the streaming frame planes.
 */

#include <cstdint>

#include "video/frame.h"

namespace vtrans::codec {

/** Base simulated address of the encoder's hot scratch buffers. */
constexpr uint64_t kScratchBase = 0x80000000ull;

/** Simulated addresses of well-known scratch buffers. */
enum class Scratch : uint64_t {
    Pred = kScratchBase,            ///< Prediction block (<= 256 B).
    Pred2 = kScratchBase + 0x400,   ///< Second prediction (bi-dir).
    Residual = kScratchBase + 0x800, ///< Residual block (int16).
    Coeff = kScratchBase + 0xc00,   ///< Transform coefficients (int16).
    Dequant = kScratchBase + 0x1000, ///< Dequantized coefficients.
    Recon = kScratchBase + 0x1400,  ///< Reconstruction staging.
    Lookahead = kScratchBase + 0x1800, ///< Lookahead downsampled rows.
};

/** Returns the simulated address of `offset` bytes into a scratch. */
inline uint64_t
scratchAddr(Scratch s, uint32_t offset)
{
    return static_cast<uint64_t>(s) + offset;
}

/**
 * Sum of absolute differences between a w x h block of `cur` at (cx, cy)
 * and of `ref` at (rx, ry), with edge clamping on the reference and early
 * termination against `best` between 8-row chunks. The chunk size matches
 * the SIMD SAD ladders (x264-style), which accumulate 8 rows per PSADBW
 * pass; checking `best` more often than the vector kernel computes would
 * change results across backends. sadSubpel, whose interpolation works in
 * 4-row tiles, checks every 4 rows instead. w must be 4, 8 or 16.
 */
int sadBlock(const video::Frame& cur, int cx, int cy, const video::Frame& ref,
             int rx, int ry, int w, int h, int best);

/**
 * SAD between the current block and a quarter-pel interpolated reference
 * block. (mvx, mvy) are in quarter-pel units relative to (cx, cy).
 */
int sadSubpel(const video::Frame& cur, int cx, int cy,
              const video::Frame& ref, int mvx, int mvy, int w, int h,
              int best);

/**
 * 4x4 Hadamard-transformed SAD between the source block at (cx, cy) and a
 * prediction buffer (stride `pstride`). Used for subme >= 7 decisions.
 */
int satd4x4(const video::Frame& cur, int cx, int cy, const uint8_t* pred,
            int pstride, uint64_t pred_sim);

/**
 * SATD over a w x h block (multiple of 4) against a prediction buffer.
 */
int satdBlock(const video::Frame& cur, int cx, int cy, const uint8_t* pred,
              int pstride, int w, int h, uint64_t pred_sim);

/**
 * Motion-compensates a w x h luma block from `ref` into `dst`:
 * quarter-pel bilinear interpolation with edge clamping. (mvx, mvy) are
 * quarter-pel displacements of the block whose top-left is (cx, cy).
 */
void mcLumaBlock(uint8_t* dst, int dstride, const video::Frame& ref, int cx,
                 int cy, int mvx, int mvy, int w, int h, uint64_t dst_sim);

/**
 * Motion-compensates a w x h chroma block (plane Cb or Cr); the motion
 * vector is the luma vector (chroma is subsampled 2x, handled inside).
 */
void mcChromaBlock(uint8_t* dst, int dstride, const video::Frame& ref,
                   video::Plane plane, int cx, int cy, int mvx, int mvy,
                   int w, int h, uint64_t dst_sim);

/** Averages two prediction buffers (bi-directional prediction). */
void averageBlocks(uint8_t* dst, const uint8_t* a, const uint8_t* b, int n,
                   uint64_t dst_sim);

} // namespace vtrans::codec

#endif // VTRANS_CODEC_PIXEL_H_

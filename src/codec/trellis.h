#ifndef VTRANS_CODEC_TRELLIS_H_
#define VTRANS_CODEC_TRELLIS_H_

/**
 * @file
 * Trellis quantization (paper §II-B4): rate-distortion-optimal rounding of
 * transform coefficients via dynamic programming over the (run, level)
 * entropy-coding states, as introduced for H.263+/H.264 and used by x264.
 * Level 1 applies it to the final encode of each block; level 2 also to
 * candidate evaluations during mode decision.
 */

#include <cstdint>

namespace vtrans::codec {

/**
 * Rate-distortion optimal quantization of one 4x4 coefficient block.
 *
 * For each zigzag position the quantizer considers the rounded-down level,
 * one above, and zero, and picks the path minimizing
 * distortion + lambda * rate, where rate mirrors the (run, level)
 * exp-Golomb coding the bitstream writer emits.
 *
 * @param coef   Transform coefficients (overwritten with chosen levels).
 * @param qp     Quantization parameter.
 * @param intra  Intra blocks use the larger dead-zone baseline.
 * @param lambda_fp Fixed-point lambda (tables.h).
 * @return Number of non-zero levels chosen.
 */
int trellisQuantize4x4(int16_t coef[16], int qp, bool intra, int lambda_fp);

} // namespace vtrans::codec

#endif // VTRANS_CODEC_TRELLIS_H_

#ifndef VTRANS_CODEC_MV_H_
#define VTRANS_CODEC_MV_H_

/**
 * @file
 * Motion vectors and their rate cost. MVs are in quarter-pel units
 * throughout the codec; rate costs mirror the exp-Golomb lengths the
 * bitstream writer will actually emit for the MV difference.
 */

#include <cstdint>
#include <cstdlib>

namespace vtrans::codec {

/** A motion vector in quarter-pel units. */
struct Mv
{
    int16_t x = 0;
    int16_t y = 0;

    bool operator==(const Mv& o) const { return x == o.x && y == o.y; }
    bool operator!=(const Mv& o) const { return !(*this == o); }
};

/** Exp-Golomb code length in bits of an unsigned value. */
inline int
ueBits(uint32_t value)
{
    const uint64_t code = static_cast<uint64_t>(value) + 1;
    int len = 0;
    while ((code >> len) > 1) {
        ++len;
    }
    return 2 * len + 1;
}

/** Exp-Golomb code length in bits of a signed value. */
inline int
seBits(int32_t value)
{
    const uint32_t mapped = value > 0
                                ? static_cast<uint32_t>(value) * 2 - 1
                                : static_cast<uint32_t>(-value) * 2;
    return ueBits(mapped);
}

/** Bits to encode the MV difference (mv - pred), both in quarter-pel. */
inline int
mvdBits(const Mv& mv, const Mv& pred)
{
    return seBits(mv.x - pred.x) + seBits(mv.y - pred.y);
}

/** Median of three values (the H.264 MV predictor combinator). */
inline int
median3(int a, int b, int c)
{
    const int mx = a > b ? a : b;
    const int mn = a > b ? b : a;
    return c > mx ? mx : (c < mn ? mn : c);
}

/** Median MV predictor from left/top/top-right neighbor MVs. */
inline Mv
medianMv(const Mv& left, const Mv& top, const Mv& topright)
{
    Mv out;
    out.x = static_cast<int16_t>(median3(left.x, top.x, topright.x));
    out.y = static_cast<int16_t>(median3(left.y, top.y, topright.y));
    return out;
}

} // namespace vtrans::codec

#endif // VTRANS_CODEC_MV_H_

#include "codec/loopflags.h"

namespace vtrans::codec {

namespace {
LoopOptFlags g_flags;
} // namespace

void
setLoopOptFlags(const LoopOptFlags& flags)
{
    g_flags = flags;
}

const LoopOptFlags&
loopOptFlags()
{
    return g_flags;
}

} // namespace vtrans::codec

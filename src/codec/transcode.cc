#include "codec/transcode.h"

#include "codec/decoder.h"
#include "common/status.h"
#include "video/generate.h"

namespace vtrans::codec {

EncoderParams
mezzanineParams()
{
    // High-quality mezzanine: near-lossless CRF with solid analysis but
    // bounded cost (this runs outside the measured region in benches).
    EncoderParams params = presetParams("medium");
    params.rc = RateControl::CRF;
    params.crf = 10;
    params.refs = 2;
    params.subme = 4;
    return params;
}

std::vector<uint8_t>
makeSourceStream(const video::VideoSpec& spec)
{
    const EncoderParams params = mezzanineParams();
    const auto frames = video::generateVideo(spec);
    Encoder encoder(params, spec.fps);
    return encoder.encode(frames);
}

TranscodeResult
transcode(const std::vector<uint8_t>& input, const EncoderParams& params)
{
    DecodeResult decoded = decode(input);
    VT_ASSERT(!decoded.frames.empty(), "input stream decoded to no frames");

    TranscodeResult result;
    result.width = decoded.width;
    result.height = decoded.height;
    result.fps = decoded.fps;
    result.frame_count = static_cast<int>(decoded.frames.size());

    Encoder encoder(params, static_cast<double>(decoded.fps));
    result.output = encoder.encode(decoded.frames, &result.stats);
    return result;
}

} // namespace vtrans::codec

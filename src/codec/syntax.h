#ifndef VTRANS_CODEC_SYNTAX_H_
#define VTRANS_CODEC_SYNTAX_H_

/**
 * @file
 * The VX1 bitstream syntax shared by encoder and decoder.
 *
 * Sequence header:
 *   u(32) magic "VX10" | ue(mb_w) ue(mb_h) ue(fps) ue(frame_count)
 *   ue(deblock_flag) se(alpha_offset) se(beta_offset)
 *
 * Frame header (one per coded frame, in coded order):
 *   ue(frame_type: 0=I 1=P 2=B) ue(display_index) ue(qp_base)
 *   ue(num_ref_active)
 *
 * Macroblock (raster order):
 *   I frames:  ue(imode: 0=Intra16 1=Intra4)
 *   P frames:  ue(mode: 0=Skip 1=Inter16 2=Inter8x8 3=Intra16 4=Intra4)
 *   B frames:  same mode alphabet; Inter modes are followed by
 *              ue(dir: 0=fwd 1=bwd 2=bi)
 *   Inter16 fwd: ue(ref) se(mvdx) se(mvdy)
 *   Inter16 bwd: se(mvdx) se(mvdy)          (single backward reference)
 *   Inter16 bi : ue(ref) se*2 (fwd) then se*2 (bwd)
 *   Inter8x8   : 4 x [ue(ref) se(mvdx) se(mvdy)]   (P frames only)
 *   Intra16    : ue(mode 0..3)
 *   Intra4     : 16 x ue(mode 0..4)
 *   Non-skip MBs then carry: se(qp_delta vs frame qp_base), ue(cbp 0..63)
 *   For each set cbp bit (luma groups 0..3, then Cb=4, Cr=5), 4 blocks:
 *     ue(nnz 0..16); nnz x [ue(run_before) se(level)] in zigzag order.
 *
 * Skip semantics: P-Skip reconstructs from the median MV predictor on
 * ref 0; B-Skip is bi-directional "direct" prediction from both median
 * predictors with no residual.
 */

#include <cstdint>

namespace vtrans::codec {

/** Stream magic number ("VX10"). */
constexpr uint32_t kMagic = 0x56583130;

/** Macroblock coding modes (P/B alphabet). */
enum class MbMode : uint8_t {
    Skip = 0,
    Inter16 = 1,
    Inter8x8 = 2,
    Intra16 = 3,
    Intra4 = 4,
};

/** Inter prediction direction in B frames. */
enum class BDir : uint8_t { Fwd = 0, Bwd = 1, Bi = 2 };

/** Luma 4x4 block index (0..15) -> 8x8 cbp group (0..3). */
inline int
lumaCbpGroup(int block4)
{
    const int bx = block4 & 3;
    const int by = block4 >> 2;
    return (by >> 1) * 2 + (bx >> 1);
}

/** Raster order of 4x4 luma blocks within an 8x8 cbp group. */
inline int
lumaBlockInGroup(int group, int idx)
{
    const int gx = (group & 1) * 2;
    const int gy = (group >> 1) * 2;
    const int bx = gx + (idx & 1);
    const int by = gy + (idx >> 1);
    return by * 4 + bx;
}

} // namespace vtrans::codec

#endif // VTRANS_CODEC_SYNTAX_H_

#include "codec/ratecontrol.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"
#include "trace/probe.h"

namespace vtrans::codec {

namespace {

/** Frame-type QP offsets (x264's ip/pb factors expressed in QP). */
int
typeOffset(FrameType type)
{
    switch (type) {
      case FrameType::I:
        return -3;
      case FrameType::P:
        return 0;
      case FrameType::B:
        return 2;
    }
    return 0;
}

/** Initial QP guess for a bitrate target from bits-per-pixel. */
int
qpFromBpp(double bits_per_mb)
{
    // Empirical anchor: ~200 bits/MB around QP 30 for this codec, halving
    // every 6 QP.
    const double qp = 30.0 - 6.0 * std::log2(bits_per_mb / 200.0);
    return static_cast<int>(std::lround(std::clamp(qp, 4.0, 48.0)));
}

} // namespace

RateController::RateController(const EncoderParams& params, double fps,
                               int mb_count, int total_frames,
                               std::vector<PassStats> pass1)
    : params_(params),
      fps_(fps),
      mb_count_(mb_count),
      total_frames_(total_frames),
      pass1_(std::move(pass1))
{
    VT_ASSERT(fps_ > 0 && mb_count_ > 0 && total_frames_ > 0,
              "invalid rate-control geometry");
    if (params_.rc == RateControl::TwoPass) {
        VT_ASSERT(static_cast<int>(pass1_.size()) == total_frames_,
                  "two-pass rate control needs pass-1 stats for every "
                  "frame, got ", pass1_.size(), " of ", total_frames_);
        for (const auto& ps : pass1_) {
            pass1_cost_sum_ += std::pow(static_cast<double>(ps.bits), 0.6);
        }
    }
    if (params_.rc == RateControl::VBV) {
        buffer_rate_ = params_.vbv_maxrate_kbps * 1000.0 / fps_;
        buffer_size_ = params_.vbv_buffer_kbits * 1000.0;
        buffer_fullness_ = buffer_size_ * 0.9;
    }
    if (params_.rc == RateControl::CBR) {
        buffer_rate_ = params_.bitrate_kbps * 1000.0 / fps_;
        buffer_size_ = buffer_rate_ * 8.0; // ~8 frame buffer
        buffer_fullness_ = buffer_size_ / 2.0;
    }
}

int
RateController::clampQp(double qp) const
{
    return static_cast<int>(
        std::lround(std::clamp(qp, 0.0, 51.0)));
}

int
RateController::startFrame(FrameType type, double complexity)
{
    VT_SITE(site, "rc.startframe", 96, 24, Block);
    trace::block(site);

    frame_type_ = type;
    const double target_bits_per_frame =
        params_.bitrate_kbps * 1000.0 / fps_;

    if (complexity_ema_ <= 0.0) {
        complexity_ema_ = complexity;
    }
    complexity_ema_ = 0.9 * complexity_ema_ + 0.1 * complexity;

    double qp = params_.crf;
    switch (params_.rc) {
      case RateControl::CQP: {
        qp = params_.qp;
        break;
      }
      case RateControl::CRF:
      case RateControl::VBV: {
        // Quality-targeted: deviate from crf by frame complexity relative
        // to the running average (qcomp = 0.6 -> exponent 0.4).
        const double rel =
            complexity / std::max(1.0, complexity_ema_);
        qp = params_.crf + 6.0 * std::log2(std::max(rel, 1e-3)) * 0.4;
        if (params_.rc == RateControl::VBV) {
            // Pressure term: as the buffer drains, raise QP.
            const double fullness =
                buffer_fullness_ / std::max(1.0, buffer_size_);
            if (fullness < 0.5) {
                qp += (0.5 - fullness) * 16.0;
            }
        }
        break;
      }
      case RateControl::ABR:
      case RateControl::CBR: {
        const double bits_per_mb = target_bits_per_frame / mb_count_;
        qp = qpFromBpp(bits_per_mb);
        // Feedback: compare accumulated bits against the pro-rata target.
        if (frame_index_ > 0) {
            const double target_so_far =
                target_bits_per_frame * frame_index_;
            const double ratio =
                static_cast<double>(total_bits_)
                / std::max(1.0, target_so_far);
            qp += std::clamp(6.0 * std::log2(std::max(ratio, 1e-3)),
                             -8.0, 8.0);
        }
        break;
      }
      case RateControl::TwoPass: {
        const auto& ps = pass1_[frame_index_];
        const double total_target =
            params_.bitrate_kbps * 1000.0 * total_frames_ / fps_;
        const double share =
            std::pow(static_cast<double>(ps.bits), 0.6)
            / std::max(1e-9, pass1_cost_sum_);
        const double alloc = total_target * share;
        // Pass-1 rate model: bits halve every +6 QP from the pass-1 QP.
        qp = ps.qp
             + 6.0 * std::log2(static_cast<double>(ps.bits)
                               / std::max(1.0, alloc));
        // Mild feedback against drift.
        if (frame_index_ > 0) {
            const double target_so_far =
                total_target * frame_index_ / total_frames_;
            const double ratio = static_cast<double>(total_bits_)
                                 / std::max(1.0, target_so_far);
            qp += std::clamp(3.0 * std::log2(std::max(ratio, 1e-3)),
                             -4.0, 4.0);
        }
        break;
      }
    }

    qp += typeOffset(type);
    frame_qp_ = clampQp(qp);
    frame_bit_budget_ = static_cast<uint64_t>(
        params_.rc == RateControl::CBR ? buffer_rate_
                                       : target_bits_per_frame);
    return frame_qp_;
}

int
RateController::mbQp(int mb_index, uint64_t bits_so_far, double variance)
{
    VT_SITE(site, "rc.mbqp", 64, 14, Block);
    trace::block(site);

    double qp = frame_qp_;

    // Adaptive quantization: flat blocks get finer quantization, textured
    // blocks coarser (variance masking), as x264 aq-mode 1.
    if (params_.aq_mode == 1) {
        avg_variance_ = 0.999 * avg_variance_ + 0.001 * variance;
        const double delta =
            params_.aq_strength * 1.2
            * (std::log2(variance + 1.0) - std::log2(avg_variance_ + 1.0));
        qp += std::clamp(delta, -6.0, 6.0);
    }

    // CBR is the one mode applied at macroblock granularity (paper
    // §II-B1): steer within the frame toward the per-frame budget.
    if (params_.rc == RateControl::CBR && mb_index > 0) {
        const double expected = static_cast<double>(frame_bit_budget_)
                                * mb_index / mb_count_;
        const double ratio =
            static_cast<double>(bits_so_far) / std::max(1.0, expected);
        VT_SITE(site_b, "rc.cbr.adjust", 24, 4, BranchLoadDep);
        const bool over = ratio > 1.0;
        trace::branch(site_b, over);
        qp += std::clamp(4.0 * std::log2(std::max(ratio, 1e-3)), -3.0, 3.0);
    }

    return clampQp(qp);
}

void
RateController::endFrame(uint64_t bits)
{
    VT_SITE(site, "rc.endframe", 48, 10, Block);
    trace::block(site);

    total_bits_ += bits;
    ++frame_index_;

    if (params_.rc == RateControl::VBV || params_.rc == RateControl::CBR) {
        buffer_fullness_ += buffer_rate_ - static_cast<double>(bits);
        if (buffer_fullness_ < 0.0) {
            ++vbv_violations_;
            buffer_fullness_ = 0.0;
        }
        buffer_fullness_ = std::min(buffer_fullness_, buffer_size_);
    }
}

} // namespace vtrans::codec

#include "codec/lookahead.h"

#include <algorithm>
#include <cstdlib>

#include "codec/loopflags.h"
#include "codec/pixel.h"
#include "common/status.h"
#include "trace/probe.h"

namespace vtrans::codec {

using video::Frame;
using video::Plane;

namespace {

/** Half-resolution luma sample (2x2 box filter). */
inline int
halfPixel(const Frame& f, int hx, int hy)
{
    const int x = hx * 2;
    const int y = hy * 2;
    return (f.at(Plane::Y, x, y) + f.at(Plane::Y, x + 1, y)
            + f.at(Plane::Y, x, y + 1) + f.at(Plane::Y, x + 1, y + 1) + 2)
           >> 2;
}

/** 8x8 SAD between half-res blocks of two frames with displacement. */
int
halfSad8x8(const Frame& cur, int bx, int by, const Frame& prev, int dx,
           int dy)
{
    VT_SITE(site, "lookahead.sad8", 96, 18, BlockLoadDep);
    trace::block(site);
    const int hw = cur.width() / 2;
    const int hh = cur.height() / 2;
    int sad = 0;
    for (int y = 0; y < 8; ++y) {
        trace::load(cur.simAddr(Plane::Y, bx * 2, (by + y) * 2), 16);
        trace::load(prev.simAddr(
                        Plane::Y,
                        std::clamp((bx + dx) * 2, 0, cur.width() - 2),
                        std::clamp((by + dy + y) * 2, 0, cur.height() - 2)),
                    16);
        for (int x = 0; x < 8; ++x) {
            const int px = std::clamp(bx + dx + x, 0, hw - 1);
            const int py = std::clamp(by + dy + y, 0, hh - 1);
            sad += std::abs(halfPixel(cur, bx + x, by + y)
                            - halfPixel(prev, px, py));
        }
    }
    return sad;
}

/** Intra cost proxy of an 8x8 half-res block: deviation from its DC. */
int
halfIntra8x8(const Frame& cur, int bx, int by)
{
    VT_SITE(site, "lookahead.intra8", 80, 24, Block);
    trace::block(site);
    int sum = 0;
    int vals[64];
    for (int y = 0; y < 8; ++y) {
        trace::load(cur.simAddr(Plane::Y, bx * 2, (by + y) * 2), 16);
        for (int x = 0; x < 8; ++x) {
            vals[y * 8 + x] = halfPixel(cur, bx + x, by + y);
            sum += vals[y * 8 + x];
        }
    }
    const int dc = (sum + 32) >> 6;
    int cost = 0;
    for (int i = 0; i < 64; ++i) {
        cost += std::abs(vals[i] - dc);
    }
    // Flat intra floor: even a perfectly flat block costs header bits.
    return cost + 64;
}

} // namespace

namespace {

/**
 * Fused per-block analysis (Graphite's loop fusion / distribution
 * inverse, see loopflags.h): the current block's half-res pixels are
 * computed once into a register block and reused by both the intra cost
 * and every inter candidate, instead of being re-loaded per pass.
 * Arithmetic is identical to the unfused path.
 */
void
analyzeBlockFused(const Frame& frame, const Frame* prev, int bx, int by,
                  int64_t* intra_out, int64_t* inter_out)
{
    static const int kDia[5][2] = {
        {0, 0}, {2, 0}, {-2, 0}, {0, 2}, {0, -2}};
    VT_SITE(site, "lookahead.fused8", 128, 30, BlockLoadDep);
    trace::block(site);
    const int hw = frame.width() / 2;
    const int hh = frame.height() / 2;

    int vals[64];
    int sum = 0;
    for (int y = 0; y < 8; ++y) {
        trace::load(frame.simAddr(Plane::Y, bx * 2, (by + y) * 2), 16);
        for (int x = 0; x < 8; ++x) {
            vals[y * 8 + x] = halfPixel(frame, bx + x, by + y);
            sum += vals[y * 8 + x];
        }
    }
    const int dc = (sum + 32) >> 6;
    int intra = 0;
    for (int i = 0; i < 64; ++i) {
        intra += std::abs(vals[i] - dc);
    }
    intra += 64;
    *intra_out = intra;

    if (prev == nullptr) {
        *inter_out = intra;
        return;
    }
    int best = INT32_MAX;
    for (const auto& d : kDia) {
        VT_SITE(site_c, "lookahead.cand.fused", 24, 4, Block);
        trace::block(site_c);
        int sad = 0;
        for (int y = 0; y < 8; ++y) {
            trace::load(
                prev->simAddr(
                    Plane::Y,
                    std::clamp((bx + d[0]) * 2, 0, frame.width() - 2),
                    std::clamp((by + d[1] + y) * 2, 0,
                               frame.height() - 2)),
                16);
            for (int x = 0; x < 8; ++x) {
                const int px = std::clamp(bx + d[0] + x, 0, hw - 1);
                const int py = std::clamp(by + d[1] + y, 0, hh - 1);
                sad += std::abs(vals[y * 8 + x] - halfPixel(*prev, px, py));
            }
        }
        best = std::min(best, sad);
    }
    *inter_out = std::min(static_cast<int64_t>(best) + 16,
                          static_cast<int64_t>(intra));
}

} // namespace

FrameCosts
estimateFrameCosts(const Frame& frame, const Frame* prev)
{
    FrameCosts costs;
    const int hbw = frame.width() / 2 / 8;
    const int hbh = frame.height() / 2 / 8;
    static const int kDia[5][2] = {
        {0, 0}, {2, 0}, {-2, 0}, {0, 2}, {0, -2}};
    const bool fused = loopOptFlags().fuse_lookahead;

    for (int by = 0; by < hbh; ++by) {
        for (int bx = 0; bx < hbw; ++bx) {
            if (fused) {
                int64_t intra = 0;
                int64_t inter = 0;
                analyzeBlockFused(frame, prev, bx * 8, by * 8, &intra,
                                  &inter);
                costs.intra_cost += intra;
                costs.inter_cost += prev != nullptr ? inter : 0;
                continue;
            }
            const int intra = halfIntra8x8(frame, bx * 8, by * 8);
            costs.intra_cost += intra;
            if (prev != nullptr) {
                int best = INT32_MAX;
                for (const auto& d : kDia) {
                    VT_SITE(site_c, "lookahead.cand", 24, 4, Block);
                    trace::block(site_c);
                    best = std::min(
                        best, halfSad8x8(frame, bx * 8, by * 8, *prev,
                                         d[0], d[1]));
                }
                // Inter blocks can fall back to intra coding.
                costs.inter_cost += std::min(best + 16, intra);
            }
        }
    }
    if (prev == nullptr) {
        costs.inter_cost = costs.intra_cost;
    }
    return costs;
}

std::vector<PlannedFrame>
planFrameTypes(const std::vector<Frame>& frames, const EncoderParams& params,
               std::vector<FrameCosts>* costs_out)
{
    VT_ASSERT(!frames.empty(), "cannot plan an empty sequence");
    const int n = static_cast<int>(frames.size());

    std::vector<FrameCosts> costs(n);
    for (int i = 0; i < n; ++i) {
        costs[i] = estimateFrameCosts(frames[i], i > 0 ? &frames[i - 1]
                                                       : nullptr);
    }
    if (costs_out != nullptr) {
        *costs_out = costs;
    }

    // Pass 1: anchors. I frames at GOP starts and scene cuts.
    std::vector<FrameType> types(n, FrameType::P);
    int since_idr = 0;
    for (int i = 0; i < n; ++i) {
        bool is_idr = (i == 0) || (since_idr >= params.keyint - 1);
        if (!is_idr && params.scenecut > 0 && i > 0) {
            const double ratio =
                static_cast<double>(costs[i].inter_cost)
                / std::max<int64_t>(1, costs[i].intra_cost);
            // High inter/intra ratio means prediction from the previous
            // frame buys little: a scene change.
            is_idr = ratio > (1.0 - params.scenecut / 100.0);
        }
        if (is_idr) {
            types[i] = FrameType::I;
            since_idr = 0;
        } else {
            ++since_idr;
        }
    }

    // Pass 2: B placement between anchors.
    if (params.bframes > 0) {
        // Work GOP by GOP (between consecutive I frames and sequence ends).
        int start = 0;
        while (start < n) {
            int end = start + 1;
            while (end < n && types[end] != FrameType::I) {
                ++end;
            }
            // Within [start, end): the first frame is the anchor; decide
            // B runs among the following frames. The final frame of a GOP
            // segment must be a P (or the GOP's closing I at `end`).
            int i = start + 1;
            while (i < end) {
                int max_run =
                    std::min(params.bframes, end - i - (end == n ? 1 : 0));
                if (max_run <= 0) {
                    types[i] = FrameType::P;
                    ++i;
                    continue;
                }
                int run = 0;
                if (params.b_adapt == 0) {
                    run = max_run;
                } else if (params.b_adapt == 1) {
                    // Greedy: extend while the candidate's inter cost stays
                    // below half of its intra cost (cheap-to-interpolate).
                    while (run < max_run) {
                        const auto& c = costs[i + run];
                        if (c.inter_cost * 2 < c.intra_cost) {
                            ++run;
                        } else {
                            break;
                        }
                    }
                } else {
                    // Windowed exhaustive (Viterbi-style): choose the run
                    // length minimizing the estimated cost of the mini-GOP.
                    int64_t best_cost = INT64_MAX;
                    int best_run = 0;
                    for (int r = 0; r <= max_run; ++r) {
                        if (i + r >= end) {
                            break;
                        }
                        int64_t total = 0;
                        for (int k = 0; k < r; ++k) {
                            // B frames are roughly half the cost of P.
                            total += costs[i + k].inter_cost / 2;
                        }
                        total += costs[i + r].inter_cost;
                        // Longer runs push the anchor further from its
                        // reference; penalize by distance.
                        total += static_cast<int64_t>(r) * r * 16;
                        if (total < best_cost) {
                            best_cost = total;
                            best_run = r;
                        }
                    }
                    run = best_run;
                }
                for (int k = 0; k < run && i + k < end; ++k) {
                    types[i + k] = FrameType::B;
                }
                const int anchor = i + run;
                if (anchor < end) {
                    types[anchor] = FrameType::P;
                }
                i = anchor + 1;
            }
            // A trailing B at the end of the sequence has no backward
            // anchor; demote it (and any run) ending at n-1 to P.
            if (end == n && types[n - 1] == FrameType::B) {
                types[n - 1] = FrameType::P;
            }
            start = end;
        }
    }

    std::vector<PlannedFrame> plan(n);
    for (int i = 0; i < n; ++i) {
        plan[i] = {i, types[i]};
    }
    return plan;
}

std::vector<PlannedFrame>
codedOrder(const std::vector<PlannedFrame>& plan)
{
    std::vector<PlannedFrame> coded;
    coded.reserve(plan.size());
    std::vector<PlannedFrame> pending_b;
    for (const auto& pf : plan) {
        if (pf.type == FrameType::B) {
            pending_b.push_back(pf);
        } else {
            coded.push_back(pf);
            for (const auto& b : pending_b) {
                coded.push_back(b);
            }
            pending_b.clear();
        }
    }
    // Trailing Bs without a backward anchor are emitted last (the encoder
    // demotes them, but stay safe).
    for (const auto& b : pending_b) {
        coded.push_back(b);
    }
    return coded;
}

} // namespace vtrans::codec

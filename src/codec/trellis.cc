#include "codec/trellis.h"

#include <algorithm>
#include <cstdlib>

#include "codec/mv.h"
#include "codec/pixel.h"
#include "codec/tables.h"
#include "trace/probe.h"

namespace vtrans::codec {

namespace {

/** Bits to entropy-code a (run, level) pair in the VX1 residual format. */
inline int
runLevelBits(int run, int level)
{
    return ueBits(static_cast<uint32_t>(run))
           + seBits(static_cast<int32_t>(level));
}

} // namespace

int
trellisQuantize4x4(int16_t coef[16], int qp, bool intra, int lambda_fp)
{
    VT_SITE(site, "trellis.quant4x4", 320, 90, Block);
    trace::block(site);
    trace::load(static_cast<uint64_t>(Scratch::Coeff), 32);
    trace::store(static_cast<uint64_t>(Scratch::Coeff), 32);

    const int shift = quantShift(qp);
    const int f = (1 << shift) / (intra ? 3 : 6);

    // Rate-distortion weight. Distortion below is measured in the
    // (4x-scaled) transform domain, which sits ~10x above pixel-domain
    // SSD for this transform's gains; the matching Lagrangian is the
    // SSD lambda (the *square* of the SAD lambda carried in lambda_fp,
    // which stores lambda*16). lambda_rate ~= lambda_sad^2 * 10.
    const int64_t lambda_rate =
        (static_cast<int64_t>(lambda_fp) * lambda_fp * 10) >> 8;

    // Path state per zigzag position: cumulative cost and the run length
    // of zeros since the last non-zero level. Because rate only depends on
    // the run, a single best-cost entry per run value suffices.
    struct PathState
    {
        int64_t cost = 0;
        int16_t levels[16] = {};
    };
    // states[run] = best path arriving at the current position with `run`
    // zeros pending. Run is capped at 15 (a 4x4 block).
    constexpr int64_t kInf = INT64_MAX / 4;
    PathState states[17];
    for (auto& s : states) {
        s.cost = kInf;
    }
    states[0].cost = 0;

    for (int pos = 0; pos < 16; ++pos) {
        const int raster = kZigzag4x4[pos];
        const int c = coef[raster];
        const int mf = quantMf(qp, raster);
        const int v = dequantV(qp, raster) << (qp / 6);
        const int abs_c = std::abs(c);
        const int base_level = (abs_c * mf + f) >> shift;

        // Candidate levels at this position: 0, base, base-1 (when > 0).
        int cands[3];
        int n_cands = 0;
        cands[n_cands++] = 0;
        if (base_level > 0) {
            cands[n_cands++] = base_level;
            if (base_level > 1) {
                cands[n_cands++] = base_level - 1;
            }
        }

        PathState next[17];
        for (auto& s : next) {
            s.cost = kInf;
        }

        for (int run = 0; run <= pos && run <= 16; ++run) {
            if (states[run].cost >= kInf) {
                continue;
            }
            VT_SITE(site_state, "trellis.state", 48, 10, Block);
            trace::block(site_state);
            for (int k = 0; k < n_cands; ++k) {
                const int level = cands[k];
                // Distortion in the transform domain (squared error of
                // the reconstructed coefficient), scaled down to keep the
                // magnitudes comparable with rate * lambda.
                // Dequantized coefficients sit at ~4x the forward-transform
                // scale (MF*V ~= 2^17), so compare against 4*c.
                const int64_t diff =
                    static_cast<int64_t>(c) * 4
                    - (c < 0 ? -static_cast<int64_t>(level) * v
                             : static_cast<int64_t>(level) * v);
                const int64_t dist = (diff * diff) >> 6;

                int64_t cost = states[run].cost + dist;
                int new_run;
                if (level == 0) {
                    new_run = std::min(run + 1, 16);
                } else {
                    cost += lambda_rate
                            * runLevelBits(run, c < 0 ? -level : level);
                    new_run = 0;
                }
                VT_SITE(site_cmp, "trellis.cmp", 16, 2, BranchLoadDep);
                const bool better = cost < next[new_run].cost;
                trace::branch(site_cmp, better);
                if (better) {
                    next[new_run] = states[run];
                    next[new_run].cost = cost;
                    next[new_run].levels[pos] = static_cast<int16_t>(
                        c < 0 ? -level : level);
                }
            }
        }
        for (int run = 0; run <= 16; ++run) {
            states[run] = next[run];
        }
    }

    // Choose the cheapest terminal state; trailing zeros cost nothing
    // extra in VX1 (the block's nonzero count is coded up front).
    const PathState* best = &states[0];
    for (int run = 1; run <= 16; ++run) {
        if (states[run].cost < best->cost) {
            best = &states[run];
        }
    }

    int nonzero = 0;
    for (int pos = 0; pos < 16; ++pos) {
        coef[kZigzag4x4[pos]] = best->levels[pos];
        if (best->levels[pos] != 0) {
            ++nonzero;
        }
    }
    return nonzero;
}

} // namespace vtrans::codec

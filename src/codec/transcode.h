#ifndef VTRANS_CODEC_TRANSCODE_H_
#define VTRANS_CODEC_TRANSCODE_H_

/**
 * @file
 * Transcoding (paper §II-A): decode an encoded video into raw frames,
 * then re-encode those frames with different parameters. This is the
 * workload every experiment in the paper profiles.
 */

#include <cstdint>
#include <vector>

#include "codec/encoder.h"
#include "codec/params.h"
#include "video/spec.h"

namespace vtrans::codec {

/** Outcome of one transcode operation. */
struct TranscodeResult
{
    EncodeStats stats;            ///< Re-encode statistics (bits, PSNR...).
    std::vector<uint8_t> output;  ///< The transcoded bitstream.
    int width = 0;
    int height = 0;
    int fps = 0;
    int frame_count = 0;

    /** Transcoded video quality: PSNR of output vs the decoded input. */
    double psnr() const { return stats.psnr; }
    /** Transcoded file size in kilobits per second. */
    double bitrateKbps() const { return stats.bitrate_kbps; }
};

/**
 * The near-lossless parameter set mezzanine streams are encoded with
 * (crf 10, bounded analysis cost) — shared by `makeSourceStream` and the
 * chunk splitter's per-segment slice encodes so chunk inputs match the
 * whole-clip mezzanine grade.
 */
EncoderParams mezzanineParams();

/**
 * Produces a "mezzanine" source stream for a video spec: the synthetic
 * clip encoded at high quality (crf 10, veryslow-ish analysis), standing
 * in for the high-quality uploads streaming providers transcode from.
 */
std::vector<uint8_t> makeSourceStream(const video::VideoSpec& spec);

/** Decodes `input` and re-encodes it with `params`. */
TranscodeResult transcode(const std::vector<uint8_t>& input,
                          const EncoderParams& params);

} // namespace vtrans::codec

#endif // VTRANS_CODEC_TRANSCODE_H_

#include "codec/bitstream.h"

#include "common/status.h"
#include "trace/probe.h"

namespace vtrans::codec {

namespace {
// Virtual capacity reserved per bitstream buffer; simulated addresses are
// free, so this just keeps store addresses monotone within one stream.
constexpr uint64_t kStreamSimCapacity = 16ull << 20;
} // namespace

BitWriter::BitWriter() : sim_base_(trace::arena().alloc(kStreamSimCapacity))
{
}

void
BitWriter::flushByte()
{
    VT_SITE(site, "bitstream.write.byte", 40, 6, Block);
    trace::block(site);
    trace::store(sim_base_ + buffer_.size(), 1);
    buffer_.push_back(static_cast<uint8_t>(acc_));
    acc_ = 0;
    acc_bits_ = 0;
}

void
BitWriter::putBits(uint32_t value, int count)
{
    VT_ASSERT(count >= 0 && count <= 32, "bit count out of range");
    VT_ASSERT(!finished_, "write after finish()");
    if (count < 32) {
        value &= (1u << count) - 1;
    }
    bits_written_ += count;
    while (count > 0) {
        const int space = 8 - acc_bits_;
        const int take = count < space ? count : space;
        acc_ = (acc_ << take)
               | ((value >> (count - take)) & ((1u << take) - 1));
        acc_bits_ += take;
        count -= take;
        if (acc_bits_ == 8) {
            flushByte();
        }
    }
}

void
BitWriter::putUe(uint32_t value)
{
    VT_SITE(site, "bitstream.write.ue", 56, 8, Block);
    trace::block(site);
    const uint64_t code = static_cast<uint64_t>(value) + 1;
    int len = 0;
    while ((code >> len) > 1) {
        ++len;
    }
    putBits(0, len);
    putBits(static_cast<uint32_t>(code), len + 1);
}

void
BitWriter::putSe(int32_t value)
{
    const uint32_t mapped =
        value > 0 ? static_cast<uint32_t>(value) * 2 - 1
                  : static_cast<uint32_t>(-value) * 2;
    putUe(mapped);
}

void
BitWriter::align()
{
    if (acc_bits_ > 0) {
        const int pad = 8 - acc_bits_;
        bits_written_ += pad;
        acc_ <<= pad;
        acc_bits_ = 8;
        flushByte();
    }
}

const std::vector<uint8_t>&
BitWriter::finish()
{
    if (!finished_) {
        align();
        finished_ = true;
    }
    return buffer_;
}

BitReader::BitReader(const std::vector<uint8_t>& data)
    : data_(data), sim_base_(trace::arena().alloc(kStreamSimCapacity))
{
}

uint32_t
BitReader::getBits(int count)
{
    VT_ASSERT(count >= 0 && count <= 32, "bit count out of range");
    uint32_t result = 0;
    for (int i = 0; i < count; ++i) {
        const uint64_t byte_index = bit_pos_ >> 3;
        VT_ASSERT(byte_index < data_.size(), "bitstream underrun");
        if ((bit_pos_ & 7) == 0) {
            VT_SITE(site, "bitstream.read.byte", 40, 5, Block);
            trace::block(site);
            trace::load(sim_base_ + byte_index, 1);
        }
        const int shift = 7 - static_cast<int>(bit_pos_ & 7);
        result = (result << 1) | ((data_[byte_index] >> shift) & 1);
        ++bit_pos_;
    }
    return result;
}

uint32_t
BitReader::getUe()
{
    VT_SITE(site, "bitstream.read.ue", 56, 8, Block);
    trace::block(site);
    int zeros = 0;
    while (getBits(1) == 0) {
        ++zeros;
        VT_ASSERT(zeros <= 48, "malformed exp-Golomb code");
    }
    uint32_t value = 1;
    if (zeros > 0) {
        value = (1u << zeros) | getBits(zeros);
    }
    return value - 1;
}

int32_t
BitReader::getSe()
{
    const uint32_t mapped = getUe();
    if (mapped == 0) {
        return 0;
    }
    const int32_t magnitude = static_cast<int32_t>((mapped + 1) / 2);
    return (mapped & 1) ? magnitude : -magnitude;
}

void
BitReader::align()
{
    bit_pos_ = (bit_pos_ + 7) & ~7ull;
}

bool
BitReader::exhausted() const
{
    return (bit_pos_ >> 3) >= data_.size();
}

} // namespace vtrans::codec

#include "codec/dct.h"

#include <cstdlib>

#include "codec/pixel.h"
#include "codec/strategies/strategies.h"
#include "codec/tables.h"
#include "trace/probe.h"
#include "uarch/simdcost.h"

namespace vtrans::codec {

void
forwardDct4x4(int16_t block[16])
{
    if (vectorKernelModel()) {
        VT_SITE(site_vec, "dct.forward4x4.vec", uarch::kVecDctForward.bytes,
                uarch::kVecDctForward.instructions, BlockLoadDep);
        trace::block(site_vec);
    } else {
        VT_SITE(site, "dct.forward4x4", 160, 40, BlockLoadDep);
        trace::block(site);
    }
    trace::load(static_cast<uint64_t>(Scratch::Residual), 32);
    trace::store(static_cast<uint64_t>(Scratch::Coeff), 32);

    kernels().forward_dct4x4(block);
}

void
inverseDct4x4(int16_t block[16])
{
    if (vectorKernelModel()) {
        VT_SITE(site_vec, "dct.inverse4x4.vec", uarch::kVecDctInverse.bytes,
                uarch::kVecDctInverse.instructions, Block);
        trace::block(site_vec);
    } else {
        VT_SITE(site, "dct.inverse4x4", 160, 40, Block);
        trace::block(site);
    }
    trace::load(static_cast<uint64_t>(Scratch::Dequant), 32);
    trace::store(static_cast<uint64_t>(Scratch::Residual), 32);

    kernels().inverse_dct4x4(block);
}

int
quantize4x4(int16_t block[16], int qp, bool intra)
{
    if (vectorKernelModel()) {
        VT_SITE(site_vec, "dct.quant4x4.vec", uarch::kVecQuant.bytes,
                uarch::kVecQuant.instructions, Block);
        trace::block(site_vec);
    } else {
        VT_SITE(site, "dct.quant4x4", 120, 34, Block);
        trace::block(site);
    }
    trace::load(static_cast<uint64_t>(Scratch::Coeff), 32);
    trace::store(static_cast<uint64_t>(Scratch::Coeff), 32);

    const int shift = quantShift(qp);
    // Dead zone: intra f = 2^shift / 3, inter f = 2^shift / 6.
    const int f = (1 << shift) / (intra ? 3 : 6);
    return kernels().quantize4x4(block, quantMfRow(qp), f, shift);
}

void
dequantize4x4(int16_t block[16], int qp)
{
    if (vectorKernelModel()) {
        VT_SITE(site_vec, "dct.dequant4x4.vec", uarch::kVecDequant.bytes,
                uarch::kVecDequant.instructions, Block);
        trace::block(site_vec);
    } else {
        VT_SITE(site, "dct.dequant4x4", 96, 24, Block);
        trace::block(site);
    }
    trace::load(static_cast<uint64_t>(Scratch::Coeff), 32);
    trace::store(static_cast<uint64_t>(Scratch::Dequant), 32);

    kernels().dequantize4x4(block, dequantVRow(qp), qp / 6);
}

} // namespace vtrans::codec

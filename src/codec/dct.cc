#include "codec/dct.h"

#include <cstdlib>

#include "codec/pixel.h"
#include "codec/tables.h"
#include "trace/probe.h"

namespace vtrans::codec {

void
forwardDct4x4(int16_t block[16])
{
    VT_SITE(site, "dct.forward4x4", 160, 40, BlockLoadDep);
    trace::block(site);
    trace::load(static_cast<uint64_t>(Scratch::Residual), 32);
    trace::store(static_cast<uint64_t>(Scratch::Coeff), 32);

    int tmp[16];
    // Rows: butterfly with the [1 1 1 1; 2 1 -1 -2; ...] core matrix.
    for (int i = 0; i < 4; ++i) {
        const int s0 = block[i * 4 + 0];
        const int s1 = block[i * 4 + 1];
        const int s2 = block[i * 4 + 2];
        const int s3 = block[i * 4 + 3];
        const int a = s0 + s3;
        const int b = s1 + s2;
        const int c = s1 - s2;
        const int d = s0 - s3;
        tmp[i * 4 + 0] = a + b;
        tmp[i * 4 + 1] = 2 * d + c;
        tmp[i * 4 + 2] = a - b;
        tmp[i * 4 + 3] = d - 2 * c;
    }
    // Columns.
    for (int i = 0; i < 4; ++i) {
        const int s0 = tmp[0 * 4 + i];
        const int s1 = tmp[1 * 4 + i];
        const int s2 = tmp[2 * 4 + i];
        const int s3 = tmp[3 * 4 + i];
        const int a = s0 + s3;
        const int b = s1 + s2;
        const int c = s1 - s2;
        const int d = s0 - s3;
        block[0 * 4 + i] = static_cast<int16_t>(a + b);
        block[1 * 4 + i] = static_cast<int16_t>(2 * d + c);
        block[2 * 4 + i] = static_cast<int16_t>(a - b);
        block[3 * 4 + i] = static_cast<int16_t>(d - 2 * c);
    }
}

void
inverseDct4x4(int16_t block[16])
{
    VT_SITE(site, "dct.inverse4x4", 160, 40, Block);
    trace::block(site);
    trace::load(static_cast<uint64_t>(Scratch::Dequant), 32);
    trace::store(static_cast<uint64_t>(Scratch::Residual), 32);

    int tmp[16];
    // Rows: inverse core with half-weights implemented as shifts.
    for (int i = 0; i < 4; ++i) {
        const int s0 = block[i * 4 + 0];
        const int s1 = block[i * 4 + 1];
        const int s2 = block[i * 4 + 2];
        const int s3 = block[i * 4 + 3];
        const int a = s0 + s2;
        const int b = s0 - s2;
        const int c = (s1 >> 1) - s3;
        const int d = s1 + (s3 >> 1);
        tmp[i * 4 + 0] = a + d;
        tmp[i * 4 + 1] = b + c;
        tmp[i * 4 + 2] = b - c;
        tmp[i * 4 + 3] = a - d;
    }
    // Columns, then >> 6 with rounding.
    for (int i = 0; i < 4; ++i) {
        const int s0 = tmp[0 * 4 + i];
        const int s1 = tmp[1 * 4 + i];
        const int s2 = tmp[2 * 4 + i];
        const int s3 = tmp[3 * 4 + i];
        const int a = s0 + s2;
        const int b = s0 - s2;
        const int c = (s1 >> 1) - s3;
        const int d = s1 + (s3 >> 1);
        block[0 * 4 + i] = static_cast<int16_t>((a + d + 32) >> 6);
        block[1 * 4 + i] = static_cast<int16_t>((b + c + 32) >> 6);
        block[2 * 4 + i] = static_cast<int16_t>((b - c + 32) >> 6);
        block[3 * 4 + i] = static_cast<int16_t>((a - d + 32) >> 6);
    }
}

int
quantize4x4(int16_t block[16], int qp, bool intra)
{
    VT_SITE(site, "dct.quant4x4", 120, 34, Block);
    trace::block(site);
    trace::load(static_cast<uint64_t>(Scratch::Coeff), 32);
    trace::store(static_cast<uint64_t>(Scratch::Coeff), 32);

    const int shift = quantShift(qp);
    // Dead zone: intra f = 2^shift / 3, inter f = 2^shift / 6.
    const int f = (1 << shift) / (intra ? 3 : 6);
    int nonzero = 0;
    for (int i = 0; i < 16; ++i) {
        const int coef = block[i];
        const int mf = quantMf(qp, i);
        const int level = (std::abs(coef) * mf + f) >> shift;
        block[i] = static_cast<int16_t>(coef < 0 ? -level : level);
        if (level != 0) {
            ++nonzero;
        }
    }
    return nonzero;
}

void
dequantize4x4(int16_t block[16], int qp)
{
    VT_SITE(site, "dct.dequant4x4", 96, 24, Block);
    trace::block(site);
    trace::load(static_cast<uint64_t>(Scratch::Coeff), 32);
    trace::store(static_cast<uint64_t>(Scratch::Dequant), 32);

    const int scale = qp / 6;
    for (int i = 0; i < 16; ++i) {
        // Clamp into int16; encoder and decoder share this exact path, so
        // reconstruction stays bit-identical even when clamping fires.
        const int v = (static_cast<int>(block[i]) * dequantV(qp, i))
                      << scale;
        block[i] = static_cast<int16_t>(
            v > 32767 ? 32767 : (v < -32768 ? -32768 : v));
    }
}

} // namespace vtrans::codec

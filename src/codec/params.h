#ifndef VTRANS_CODEC_PARAMS_H_
#define VTRANS_CODEC_PARAMS_H_

/**
 * @file
 * Encoder configuration: every tunable the paper varies — crf, refs, the
 * rate-control modes of §II-B1, the motion-estimation methods of §II-B2,
 * partition/mode-decision options, trellis levels, and the ten x264
 * presets of Table II.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace vtrans::codec {

/** Rate-control modes (paper §II-B1). */
enum class RateControl : uint8_t {
    CQP,      ///< Constant quantization parameter.
    CRF,      ///< Constant rate factor (quality-targeted); x264 default.
    ABR,      ///< Single-pass average bitrate.
    TwoPass,  ///< Two-pass average bitrate (first pass estimates).
    CBR,      ///< Constant bitrate, enforced at macroblock granularity.
    VBV,      ///< CRF constrained by a decoder buffer model.
};

/** Integer-pixel motion estimation methods (paper §II-B2). */
enum class MeMethod : uint8_t {
    Dia,   ///< Small diamond descent.
    Hex,   ///< Hexagon descent plus diamond refinement.
    Umh,   ///< Uneven multi-hexagon (cross + square + hex rings).
    Esa,   ///< Exhaustive search over the full range.
    Tesa,  ///< Exhaustive with an extra SATD pass on near-best candidates.
};

/** Frame types (paper §II-A). */
enum class FrameType : uint8_t { I = 0, P = 1, B = 2 };

/** Macroblock partitioning features a preset may enable. */
struct Partitions
{
    bool p8x8 = true;  ///< Inter 8x8 partitions in P/B frames.
    bool i4x4 = true;  ///< Intra 4x4 prediction.
    bool i8x8 = true;  ///< Intra 8x8 (folded into the i4x4 path here).
};

/**
 * Full encoder parameter set.
 *
 * Defaults correspond to the paper's default operating point: the
 * `medium` preset with crf=23 and refs=3.
 */
struct EncoderParams
{
    // Rate control.
    RateControl rc = RateControl::CRF;
    int crf = 23;              ///< 0 (lossless-ish) .. 51 (worst).
    int qp = 23;               ///< For CQP mode.
    double bitrate_kbps = 1000.0;  ///< Target for ABR/TwoPass/CBR.
    double vbv_maxrate_kbps = 0.0; ///< VBV cap (0 = off).
    double vbv_buffer_kbits = 0.0; ///< VBV buffer size.

    // Reference frames & GOP structure.
    int refs = 3;              ///< 1..16 reference frames.
    int keyint = 250;          ///< Maximum GOP length.
    int bframes = 3;           ///< Max consecutive B frames.
    int b_adapt = 1;           ///< 0 fixed, 1 greedy, 2 lookahead-trellis.
    int scenecut = 40;         ///< Threshold (0 disables detection).

    // Analysis.
    MeMethod me = MeMethod::Hex;
    int merange = 16;          ///< Full-pel search range.
    int subme = 7;             ///< Sub-pixel refinement level 0..11.
    Partitions partitions;
    int trellis = 1;           ///< 0 off, 1 final-encode, 2 all decisions.

    // Adaptive quantization & deblocking.
    int aq_mode = 1;           ///< 0 off, 1 variance AQ.
    double aq_strength = 1.0;
    bool deblock = true;
    int deblock_alpha = 1;     ///< Alpha offset (Table II "deblock [a:b]").
    int deblock_beta = 0;      ///< Beta offset.

    std::string preset = "medium";

    /** Validates ranges; fatal error on invalid user input. */
    void validate() const;
};

/** Names of the ten x264 presets, fastest first. */
const std::vector<std::string>& presetNames();

/**
 * Returns the parameter set for a named preset (Table II), with the
 * default crf=23. Per the paper's methodology (§III-C2), `refs` is NOT
 * taken from the preset by default — the paper studies crf/refs separately
 * and pins refs=3 for the preset sweep. Pass `preset_refs=true` to use the
 * preset's own refs value (Table II bottom row).
 */
EncoderParams presetParams(const std::string& name, bool preset_refs = false);

/**
 * Canonical serialization of a parameter set: a fixed-order, tagged
 * rendering of exactly the fields that influence the encoded bitstream
 * under the set's active modes. Fields that are inert for the current
 * configuration are omitted — `qp` matters only under CQP, the bitrate
 * target only under ABR/2-pass/CBR, the VBV pair only under VBV,
 * `aq_strength` only when AQ is on, the deblock offsets only when the
 * filter is enabled, `b_adapt` only when B-frames exist — and the
 * `preset` *name* is never included (it is a label, not a parameter).
 * Two parameter sets that encode identically therefore canonicalize
 * identically, however they were constructed.
 */
std::string canonicalString(const EncoderParams& params);

/**
 * Stable 64-bit FNV-1a digest of `canonicalString(params)` — the
 * encoder-parameter component of the farm's content-addressed cache
 * keys. Order- and default-insensitive per canonicalString's contract.
 */
uint64_t canonicalDigest(const EncoderParams& params);

/** Human-readable name of a rate-control mode. */
std::string toString(RateControl rc);
/** Human-readable name of an ME method. */
std::string toString(MeMethod me);
/** Human-readable name of a frame type ("I"/"P"/"B"). */
std::string toString(FrameType type);

} // namespace vtrans::codec

#endif // VTRANS_CODEC_PARAMS_H_

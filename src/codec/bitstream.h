#ifndef VTRANS_CODEC_BITSTREAM_H_
#define VTRANS_CODEC_BITSTREAM_H_

/**
 * @file
 * Bit-level serialization with unsigned/signed exp-Golomb codes — the
 * entropy-coding substrate of the VX1 bitstream. Writer and reader are
 * instrumented so the simulator observes the byte-granular store/load
 * traffic of bitstream packing, one of the branchy store-heavy phases the
 * paper identifies in the encode pipeline.
 */

#include <cstdint>
#include <vector>

namespace vtrans::codec {

/** Serializes bits MSB-first into a byte buffer. */
class BitWriter
{
  public:
    BitWriter();

    /** Appends `count` bits (<= 32) from the low bits of `value`. */
    void putBits(uint32_t value, int count);

    /** Appends an unsigned exp-Golomb code. */
    void putUe(uint32_t value);

    /** Appends a signed exp-Golomb code. */
    void putSe(int32_t value);

    /** Pads with zero bits to the next byte boundary. */
    void align();

    /** Total bits written so far (including pending partial byte). */
    uint64_t bitCount() const { return bits_written_; }

    /** Finishes (aligns) and returns the byte buffer. */
    const std::vector<uint8_t>& finish();

    /** Read-only view of the bytes flushed so far. */
    const std::vector<uint8_t>& bytes() const { return buffer_; }

  private:
    void flushByte();

    std::vector<uint8_t> buffer_;
    uint32_t acc_ = 0;       ///< Pending bits, left-aligned in 8-bit window.
    int acc_bits_ = 0;       ///< Number of pending bits (< 8).
    uint64_t bits_written_ = 0;
    uint64_t sim_base_;      ///< Simulated address of buffer_[0].
    bool finished_ = false;
};

/** Deserializes bits written by BitWriter. */
class BitReader
{
  public:
    /** Wraps a byte buffer (not owned; must outlive the reader). */
    explicit BitReader(const std::vector<uint8_t>& data);

    /** Reads `count` bits (<= 32), MSB-first. */
    uint32_t getBits(int count);

    /** Reads an unsigned exp-Golomb code. */
    uint32_t getUe();

    /** Reads a signed exp-Golomb code. */
    int32_t getSe();

    /** Skips to the next byte boundary. */
    void align();

    /** True when all bytes have been consumed. */
    bool exhausted() const;

    /** Bits consumed so far. */
    uint64_t bitPosition() const { return bit_pos_; }

  private:
    const std::vector<uint8_t>& data_;
    uint64_t bit_pos_ = 0;
    uint64_t sim_base_; ///< Simulated address of data_[0].
};

} // namespace vtrans::codec

#endif // VTRANS_CODEC_BITSTREAM_H_

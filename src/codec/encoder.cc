#include "codec/encoder.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "codec/bitstream.h"
#include "codec/dct.h"
#include "codec/deblock.h"
#include "codec/intra.h"
#include "codec/lookahead.h"
#include "codec/me.h"
#include "codec/pixel.h"
#include "codec/syntax.h"
#include "codec/tables.h"
#include "codec/trellis.h"
#include "common/status.h"
#include "trace/probe.h"
#include "video/quality.h"

namespace vtrans::codec {

using video::Frame;
using video::Plane;

namespace {

/** Quantized residual of one macroblock: 16 luma + 2x4 chroma blocks. */
struct MbResidual
{
    int16_t luma[16][16] = {};
    int16_t chroma[2][4][16] = {};
    int cbp = 0;
    int total_nnz = 0;
};

/** Everything needed to emit and reconstruct one macroblock. */
struct MbCoding
{
    MbMode mode = MbMode::Intra16;
    BDir dir = BDir::Fwd;
    Mv mv0, mv1;
    int ref0 = 0;
    Mv mv8[4];
    int ref8[4] = {0, 0, 0, 0};
    Intra16Mode i16 = Intra16Mode::DC;
    Intra4Mode i4[16] = {};
    int qp = 26;
    MbResidual res;
};

/** Per-macroblock motion/mode state of the frame being coded. */
struct MbState
{
    Mv mv0, mv1;
    bool intra = true;
};

/** Luma variance of a 16x16 macroblock (adaptive quantization input). */
double
mbVariance(const Frame& f, int mx, int my)
{
    VT_SITE(site, "enc.mbvar", 72, 20, BlockLoadDep);
    trace::block(site);
    int64_t sum = 0;
    int64_t sq = 0;
    for (int y = 0; y < 16; ++y) {
        trace::load(f.simAddr(Plane::Y, mx, my + y), 16);
        for (int x = 0; x < 16; ++x) {
            const int v = f.at(Plane::Y, mx + x, my + y);
            sum += v;
            sq += static_cast<int64_t>(v) * v;
        }
    }
    const double mean = sum / 256.0;
    return sq / 256.0 - mean * mean;
}

/**
 * The sequence encoder: owns the DPB, rate controller, bit writer, and
 * per-frame MB state for one encode() call.
 */
class SequenceEncoder
{
  public:
    SequenceEncoder(const EncoderParams& params, double fps, int width,
                    int height, int total_frames,
                    std::vector<PassStats> pass1)
        : params_(params),
          fps_(fps),
          w_(width),
          h_(height),
          mb_w_(width / 16),
          mb_h_(height / 16),
          rc_(params, fps, (width / 16) * (height / 16), total_frames,
              std::move(pass1))
    {
    }

    std::vector<uint8_t>
    run(const std::vector<Frame>& frames, EncodeStats* stats,
        std::vector<PassStats>* pass_out)
    {
        std::vector<FrameCosts> costs;
        const auto plan = planFrameTypes(frames, params_, &costs);
        const auto order = codedOrder(plan);

        writeSequenceHeader(static_cast<int>(frames.size()));

        EncodeStats local;
        for (const auto& pf : order) {
            const Frame& src = frames[pf.display_index];
            const uint64_t bits_before = bw_.bitCount();
            FrameType effective = pf.type;
            const double frame_psnr = encodeFrame(
                src, effective, pf.display_index,
                static_cast<double>(costs[pf.display_index].inter_cost));
            const uint64_t frame_bits = bw_.bitCount() - bits_before;
            rc_.endFrame(frame_bits);

            FrameStat fs;
            fs.display_index = pf.display_index;
            fs.type = effective;
            fs.qp = frame_qp_;
            fs.bits = frame_bits;
            fs.psnr = frame_psnr;
            local.frames.push_back(fs);
            switch (effective) {
              case FrameType::I:
                ++local.i_frames;
                break;
              case FrameType::P:
                ++local.p_frames;
                break;
              case FrameType::B:
                ++local.b_frames;
                break;
            }
            if (pass_out != nullptr) {
                PassStats ps;
                ps.type = pf.type;
                ps.qp = frame_qp_;
                ps.bits = frame_bits;
                ps.complexity =
                    static_cast<double>(costs[pf.display_index].inter_cost);
                pass_out->push_back(ps);
            }
        }

        const auto& bytes = bw_.finish();
        local.total_bits = bw_.bitCount();
        const double seconds = frames.size() / fps_;
        local.bitrate_kbps = local.total_bits / seconds / 1000.0;
        double psnr_sum = 0.0;
        for (const auto& fs : local.frames) {
            psnr_sum += fs.psnr;
        }
        local.psnr = psnr_sum / std::max<size_t>(1, local.frames.size());
        local.mb_skip = mb_skip_;
        local.mb_inter16 = mb_inter16_;
        local.mb_inter8x8 = mb_inter8x8_;
        local.mb_intra16 = mb_intra16_;
        local.mb_intra4 = mb_intra4_;
        local.me_candidates = me_candidates_;
        local.vbv_violations = rc_.vbvViolations();
        if (stats != nullptr) {
            *stats = local;
        }
        return bytes;
    }

  private:
    // ---- Stream-level syntax ------------------------------------------

    void
    writeSequenceHeader(int frame_count)
    {
        bw_.putBits(kMagic, 32);
        bw_.putUe(static_cast<uint32_t>(mb_w_));
        bw_.putUe(static_cast<uint32_t>(mb_h_));
        bw_.putUe(static_cast<uint32_t>(std::lround(fps_)));
        bw_.putUe(static_cast<uint32_t>(frame_count));
        bw_.putUe(params_.deblock ? 1 : 0);
        bw_.putSe(params_.deblock_alpha);
        bw_.putSe(params_.deblock_beta);
    }

    // ---- Reference list management ------------------------------------

    struct DpbEntry
    {
        int display = 0;
        std::unique_ptr<Frame> recon;
    };

    /** List-0 references for a frame at `display`: nearest past first. */
    std::vector<const Frame*>
    list0(int display) const
    {
        std::vector<const Frame*> refs;
        for (auto it = dpb_.rbegin(); it != dpb_.rend(); ++it) {
            if (it->display < display
                && static_cast<int>(refs.size()) < params_.refs) {
                refs.push_back(it->recon.get());
            }
        }
        return refs;
    }

    /** The single backward reference for a B frame (nearest future). */
    const Frame*
    list1(int display) const
    {
        for (const auto& e : dpb_) {
            if (e.display > display) {
                return e.recon.get();
            }
        }
        return nullptr;
    }

    // ---- Per-frame encode ----------------------------------------------

    double
    encodeFrame(const Frame& src, FrameType& type, int display,
                double complexity)
    {
        // Resolve the effective type from reference availability before
        // any header bit is written. The DPB is never flushed on I frames
        // (open-GOP): stale anchors age out of the trimmed DPB naturally,
        // and B frames played before a scene-cut I keep their past anchor.
        refs0_ = type != FrameType::I ? list0(display)
                                      : std::vector<const Frame*>{};
        ref1_ = type == FrameType::B ? list1(display) : nullptr;
        if (type == FrameType::B && ref1_ == nullptr) {
            // No backward anchor (can happen at sequence tail): demote.
            type = FrameType::P;
        }
        if (type != FrameType::I && refs0_.empty()) {
            type = FrameType::I; // nothing to predict from
            refs0_.clear();
        }

        frame_qp_ = rc_.startFrame(type, complexity);
        bw_.putUe(static_cast<uint32_t>(type));
        bw_.putUe(static_cast<uint32_t>(display));
        bw_.putUe(static_cast<uint32_t>(frame_qp_));
        bw_.putUe(static_cast<uint32_t>(refs0_.size()));

        auto recon = std::make_unique<Frame>(w_, h_);
        mb_state_.assign(static_cast<size_t>(mb_w_) * mb_h_, MbState{});
        qp_map_.assign(static_cast<size_t>(mb_w_) * mb_h_, frame_qp_);

        const uint64_t frame_start_bits = bw_.bitCount();
        for (int mby = 0; mby < mb_h_; ++mby) {
            for (int mbx = 0; mbx < mb_w_; ++mbx) {
                encodeMacroblock(src, *recon, type, mbx, mby,
                                 bw_.bitCount() - frame_start_bits);
            }
        }

        deblockFrame(*recon,
                     {params_.deblock, params_.deblock_alpha,
                      params_.deblock_beta},
                     qp_map_.data(), mb_w_, mb_h_);

        const double psnr = video::framePsnr(src, *recon);

        if (type != FrameType::B) {
            dpb_.push_back({display, std::move(recon)});
            std::sort(dpb_.begin(), dpb_.end(),
                      [](const DpbEntry& a, const DpbEntry& b) {
                          return a.display < b.display;
                      });
            // Keep refs past anchors plus one future anchor slot.
            while (static_cast<int>(dpb_.size()) > params_.refs + 1) {
                dpb_.erase(dpb_.begin());
            }
        }
        return psnr;
    }

    // ---- MV prediction --------------------------------------------------

    Mv
    predictMv(int mbx, int mby, int list) const
    {
        auto fetch = [&](int x, int y) -> Mv {
            if (x < 0 || y < 0 || x >= mb_w_) {
                return Mv{};
            }
            const MbState& st = mb_state_[y * mb_w_ + x];
            if (st.intra) {
                return Mv{};
            }
            return list == 0 ? st.mv0 : st.mv1;
        };
        const Mv left = fetch(mbx - 1, mby);
        const Mv top = fetch(mbx, mby - 1);
        const Mv topright = (mbx + 1 < mb_w_) ? fetch(mbx + 1, mby - 1)
                                              : fetch(mbx - 1, mby - 1);
        return medianMv(left, top, topright);
    }

    // ---- Residual helpers ----------------------------------------------

    /** Loads a residual 4x4 into `blk` from source minus prediction. */
    void
    residual4x4(const Frame& src, int px, int py, const uint8_t* pred,
                int pstride, int16_t blk[16])
    {
        VT_SITE(site, "enc.residual4", 64, 16, Block);
        trace::block(site);
        trace::store(static_cast<uint64_t>(Scratch::Residual), 32);
        for (int y = 0; y < 4; ++y) {
            trace::load(src.simAddr(Plane::Y, px, py + y), 4);
            for (int x = 0; x < 4; ++x) {
                blk[y * 4 + x] = static_cast<int16_t>(
                    static_cast<int>(src.at(Plane::Y, px + x, py + y))
                    - pred[y * pstride + x]);
            }
        }
    }

    /** Chroma flavor of residual4x4. */
    void
    residualChroma4x4(const Frame& src, Plane plane, int px, int py,
                      const uint8_t* pred, int pstride, int16_t blk[16])
    {
        VT_SITE(site, "enc.residual4c", 64, 16, Block);
        trace::block(site);
        trace::store(static_cast<uint64_t>(Scratch::Residual), 32);
        for (int y = 0; y < 4; ++y) {
            trace::load(src.simAddr(plane, px, py + y), 4);
            for (int x = 0; x < 4; ++x) {
                blk[y * 4 + x] = static_cast<int16_t>(
                    static_cast<int>(src.at(plane, px + x, py + y))
                    - pred[y * pstride + x]);
            }
        }
    }

    /** Transform + quantization with the configured trellis level. */
    int
    transformQuant(int16_t blk[16], int qp, bool intra)
    {
        forwardDct4x4(blk);
        if (params_.trellis >= 1) {
            return trellisQuantize4x4(blk, qp, intra, lambdaFp(qp));
        }
        return quantize4x4(blk, qp, intra);
    }

    /** Adds the reconstructed residual of `levels` onto pred -> recon. */
    void
    reconstruct4x4(Frame& recon, Plane plane, int px, int py,
                   const int16_t levels[16], int qp, const uint8_t* pred,
                   int pstride)
    {
        int16_t blk[16];
        std::copy(levels, levels + 16, blk);
        dequantize4x4(blk, qp);
        inverseDct4x4(blk);
        VT_SITE(site, "enc.recon4", 56, 14, Block);
        trace::block(site);
        for (int y = 0; y < 4; ++y) {
            trace::store(recon.simAddr(plane, px, py + y), 4);
            for (int x = 0; x < 4; ++x) {
                const int v = pred[y * pstride + x] + blk[y * 4 + x];
                recon.at(plane, px + x, py + y) =
                    static_cast<uint8_t>(std::clamp(v, 0, 255));
            }
        }
    }

    /** Copies prediction straight into recon (zero residual / skip). */
    void
    copyPred(Frame& recon, Plane plane, int px, int py, const uint8_t* pred,
             int pstride, int w, int h)
    {
        VT_SITE(site, "enc.copypred", 40, 8, Block);
        trace::block(site);
        for (int y = 0; y < h; ++y) {
            trace::store(recon.simAddr(plane, px, py + y), w);
            for (int x = 0; x < w; ++x) {
                recon.at(plane, px + x, py + y) = pred[y * pstride + x];
            }
        }
    }

    /**
     * Quantizes the full macroblock residual against a prediction.
     * The prediction buffers must already be motion-compensated/intra
     * predicted: predY 16x16 (stride 16), predCb/predCr 8x8 (stride 8).
     */
    void
    buildResidual(const Frame& src, int mx, int my, const uint8_t* predY,
                  const uint8_t* predCb, const uint8_t* predCr, int qp,
                  bool intra, MbResidual* out)
    {
        out->cbp = 0;
        out->total_nnz = 0;
        for (int b = 0; b < 16; ++b) {
            const int bx = (b & 3) * 4;
            const int by = (b >> 2) * 4;
            residual4x4(src, mx + bx, my + by, predY + by * 16 + bx, 16,
                        out->luma[b]);
            const int nnz = transformQuant(out->luma[b], qp, intra);
            if (nnz > 0) {
                out->cbp |= 1 << lumaCbpGroup(b);
                out->total_nnz += nnz;
            }
        }
        const int cqp = std::max(0, qp - 2); // chroma QP offset
        for (int c = 0; c < 2; ++c) {
            const Plane plane = c == 0 ? Plane::Cb : Plane::Cr;
            const uint8_t* pred = c == 0 ? predCb : predCr;
            for (int b = 0; b < 4; ++b) {
                const int bx = (b & 1) * 4;
                const int by = (b >> 1) * 4;
                residualChroma4x4(src, plane, mx / 2 + bx, my / 2 + by,
                                  pred + by * 8 + bx, 8,
                                  out->chroma[c][b]);
                const int nnz =
                    transformQuant(out->chroma[c][b], cqp, intra);
                if (nnz > 0) {
                    out->cbp |= 1 << (4 + c);
                    out->total_nnz += nnz;
                }
            }
        }
    }

    /** Writes one quantized 4x4 block as ue(nnz) + (run, level) pairs. */
    void
    writeBlock(const int16_t levels[16])
    {
        int nnz = 0;
        for (int i = 0; i < 16; ++i) {
            // The per-coefficient significance test: the branchy,
            // data-dependent heart of entropy coding.
            VT_SITE(site_sig, "entropy.sig", 16, 2, BranchLoadDep);
            const bool sig = levels[kZigzag4x4[i]] != 0;
            trace::branch(site_sig, sig);
            if (sig) {
                ++nnz;
            }
        }
        bw_.putUe(static_cast<uint32_t>(nnz));
        int run = 0;
        for (int i = 0; i < 16 && nnz > 0; ++i) {
            const int16_t level = levels[kZigzag4x4[i]];
            if (level == 0) {
                ++run;
            } else {
                bw_.putUe(static_cast<uint32_t>(run));
                bw_.putSe(level);
                run = 0;
                --nnz;
            }
        }
    }

    /** Writes the residual section (cbp already written). */
    void
    writeResidual(const MbResidual& res)
    {
        for (int g = 0; g < 4; ++g) {
            if ((res.cbp >> g) & 1) {
                for (int i = 0; i < 4; ++i) {
                    writeBlock(res.luma[lumaBlockInGroup(g, i)]);
                }
            }
        }
        for (int c = 0; c < 2; ++c) {
            if ((res.cbp >> (4 + c)) & 1) {
                for (int b = 0; b < 4; ++b) {
                    writeBlock(res.chroma[c][b]);
                }
            }
        }
    }

    /** Reconstructs the macroblock from prediction + quantized residual. */
    void
    reconstructMb(Frame& recon, int mx, int my, const uint8_t* predY,
                  const uint8_t* predCb, const uint8_t* predCr, int qp,
                  const MbResidual& res)
    {
        for (int b = 0; b < 16; ++b) {
            const int bx = (b & 3) * 4;
            const int by = (b >> 2) * 4;
            if ((res.cbp >> lumaCbpGroup(b)) & 1) {
                reconstruct4x4(recon, Plane::Y, mx + bx, my + by,
                               res.luma[b], qp, predY + by * 16 + bx, 16);
            } else {
                copyPred(recon, Plane::Y, mx + bx, my + by,
                         predY + by * 16 + bx, 16, 4, 4);
            }
        }
        const int cqp = std::max(0, qp - 2);
        for (int c = 0; c < 2; ++c) {
            const Plane plane = c == 0 ? Plane::Cb : Plane::Cr;
            const uint8_t* pred = c == 0 ? predCb : predCr;
            for (int b = 0; b < 4; ++b) {
                const int bx = (b & 1) * 4;
                const int by = (b >> 1) * 4;
                if ((res.cbp >> (4 + c)) & 1) {
                    reconstruct4x4(recon, plane, mx / 2 + bx, my / 2 + by,
                                   res.chroma[c][b], cqp,
                                   pred + by * 8 + bx, 8);
                } else {
                    copyPred(recon, plane, mx / 2 + bx, my / 2 + by,
                             pred + by * 8 + bx, 8, 4, 4);
                }
            }
        }
    }

    // ---- Prediction builders --------------------------------------------

    /** Motion-compensates the full MB prediction for an inter decision. */
    void
    interPredict(const MbCoding& mc, int mx, int my, uint8_t* predY,
                 uint8_t* predCb, uint8_t* predCr)
    {
        auto mcInto = [&](const Frame& ref, const Mv& mv, uint8_t* py,
                          uint8_t* pcb, uint8_t* pcr, Scratch base) {
            mcLumaBlock(py, 16, ref, mx, my, mv.x, mv.y, 16, 16,
                        static_cast<uint64_t>(base));
            mcChromaBlock(pcb, 8, ref, Plane::Cb, mx / 2, my / 2, mv.x,
                          mv.y, 8, 8, static_cast<uint64_t>(base) + 256);
            mcChromaBlock(pcr, 8, ref, Plane::Cr, mx / 2, my / 2, mv.x,
                          mv.y, 8, 8, static_cast<uint64_t>(base) + 320);
        };

        if (mc.mode == MbMode::Inter8x8) {
            for (int p = 0; p < 4; ++p) {
                const int ox = (p & 1) * 8;
                const int oy = (p >> 1) * 8;
                const Frame& ref = *refs0_[mc.ref8[p]];
                mcLumaBlock(predY + oy * 16 + ox, 16, ref, mx + ox, my + oy,
                            mc.mv8[p].x, mc.mv8[p].y, 8, 8,
                            static_cast<uint64_t>(Scratch::Pred) + oy * 16
                                + ox);
                mcChromaBlock(predCb + (oy / 2) * 8 + ox / 2, 8, ref,
                              Plane::Cb, mx / 2 + ox / 2, my / 2 + oy / 2,
                              mc.mv8[p].x, mc.mv8[p].y, 4, 4,
                              static_cast<uint64_t>(Scratch::Pred) + 256);
                mcChromaBlock(predCr + (oy / 2) * 8 + ox / 2, 8, ref,
                              Plane::Cr, mx / 2 + ox / 2, my / 2 + oy / 2,
                              mc.mv8[p].x, mc.mv8[p].y, 4, 4,
                              static_cast<uint64_t>(Scratch::Pred) + 320);
            }
            return;
        }

        if (mc.dir == BDir::Fwd || ref1_ == nullptr) {
            mcInto(*refs0_[mc.ref0], mc.mv0, predY, predCb, predCr,
                   Scratch::Pred);
        } else if (mc.dir == BDir::Bwd) {
            mcInto(*ref1_, mc.mv1, predY, predCb, predCr, Scratch::Pred);
        } else {
            uint8_t fy[256], fcb[64], fcr[64];
            uint8_t by[256], bcb[64], bcr[64];
            mcInto(*refs0_[mc.ref0], mc.mv0, fy, fcb, fcr, Scratch::Pred);
            mcInto(*ref1_, mc.mv1, by, bcb, bcr, Scratch::Pred2);
            averageBlocks(predY, fy, by, 256,
                          static_cast<uint64_t>(Scratch::Pred));
            averageBlocks(predCb, fcb, bcb, 64,
                          static_cast<uint64_t>(Scratch::Pred) + 256);
            averageBlocks(predCr, fcr, bcr, 64,
                          static_cast<uint64_t>(Scratch::Pred) + 320);
        }
    }

    // ---- Macroblock encode ----------------------------------------------

    void
    encodeMacroblock(const Frame& src, Frame& recon, FrameType type,
                     int mbx, int mby, uint64_t bits_so_far)
    {
        cur_mbx_ = mbx;
        cur_mby_ = mby;
        const int mx = mbx * 16;
        const int my = mby * 16;
        const int mb_index = mby * mb_w_ + mbx;
        const double variance = mbVariance(src, mx, my);
        const int qp = rc_.mbQp(mb_index, bits_so_far, variance);
        const int lambda = lambdaFp(qp);
        const bool use_satd = params_.subme >= 7;

        MbCoding mc;
        mc.qp = qp;

        const bool is_inter_frame = type != FrameType::I && !refs0_.empty();

        // --- Mode decision -------------------------------------------
        int best_cost = INT32_MAX;

        // Intra 16x16 (always a candidate).
        {
            int cost = 0;
            const Intra16Mode mode = chooseIntra16(
                src, recon, mx, my, use_satd, lambda, &cost);
            cost += (lambda * 4) >> 4; // mode signalling
            mc.mode = MbMode::Intra16;
            mc.i16 = mode;
            best_cost = cost;
        }

        // Intra 4x4 (estimated against source-neighbor proxies; the final
        // coding pass re-chooses modes against true reconstruction). At
        // subme >= 8 (the "slow"+ analysis depth) the estimate is always
        // completed instead of early-bailing against the running best —
        // the RD-refinement flavour of x264's deeper mode decision.
        if (params_.partitions.i4x4 || params_.partitions.i8x8) {
            const bool full_eval = params_.subme >= 8;
            int cost = (lambda * (5 + 16 * 3)) >> 4;
            for (int b = 0; b < 16 && (full_eval || cost < best_cost);
                 ++b) {
                int bc = 0;
                chooseIntra4(src, src, mx + (b & 3) * 4, my + (b >> 2) * 4,
                             use_satd, lambda, &bc);
                cost += bc;
            }
            VT_SITE(site_i4, "enc.mode.i4cmp", 16, 2, BranchLoadDep);
            const bool better = cost < best_cost;
            trace::branch(site_i4, better);
            if (better) {
                best_cost = cost;
                mc.mode = MbMode::Intra4;
            }
        }

        MeContext ctx;
        if (is_inter_frame) {
            ctx.cur = &src;
            ctx.refs = &refs0_;
            ctx.method = params_.me;
            ctx.merange = params_.merange;
            ctx.subme = params_.subme;
            ctx.lambda_fp = lambda;

            const Mv pred0 = predictMv(mbx, mby, 0);

            // Inter 16x16 forward.
            MeResult fwd = searchAllRefs(ctx, mx, my, 16, 16, pred0);
            {
                const int cost = fwd.cost + ((lambda * 1) >> 4);
                VT_SITE(site_cmp, "enc.mode.fwdcmp", 16, 2, BranchLoadDep);
                const bool better = cost < best_cost;
                trace::branch(site_cmp, better);
                if (better) {
                    best_cost = cost;
                    mc.mode = MbMode::Inter16;
                    mc.dir = BDir::Fwd;
                    mc.mv0 = fwd.mv;
                    mc.ref0 = fwd.ref;
                }
            }

            // B-frame directions.
            if (type == FrameType::B && ref1_ != nullptr) {
                const Mv pred1 = predictMv(mbx, mby, 1);
                std::vector<const Frame*> bwd_list{ref1_};
                MeContext bctx = ctx;
                bctx.refs = &bwd_list;
                MeResult bwd = searchOneRef(bctx, mx, my, 16, 16, pred1, 0);
                me_candidates_ += bctx.candidates_evaluated;
                {
                    const int cost = bwd.cost + ((lambda * 2) >> 4);
                    VT_SITE(site_cmp, "enc.mode.bwdcmp", 16, 2,
                            BranchLoadDep);
                    const bool better = cost < best_cost;
                    trace::branch(site_cmp, better);
                    if (better) {
                        best_cost = cost;
                        mc.mode = MbMode::Inter16;
                        mc.dir = BDir::Bwd;
                        mc.mv1 = bwd.mv;
                    }
                }
                // Bi-directional: average the two best single predictions.
                {
                    uint8_t fy[256], by2[256], avg[256];
                    mcLumaBlock(fy, 16, *refs0_[fwd.ref], mx, my, fwd.mv.x,
                                fwd.mv.y, 16, 16,
                                static_cast<uint64_t>(Scratch::Pred));
                    mcLumaBlock(by2, 16, *ref1_, mx, my, bwd.mv.x, bwd.mv.y,
                                16, 16,
                                static_cast<uint64_t>(Scratch::Pred2));
                    averageBlocks(avg, fy, by2, 256,
                                  static_cast<uint64_t>(Scratch::Pred));
                    const int dist = use_satd
                                         ? satdBlock(src, mx, my, avg, 16,
                                                     16, 16,
                                                     static_cast<uint64_t>(
                                                         Scratch::Pred))
                                         : [&] {
                                               int s = 0;
                                               for (int i = 0; i < 256; ++i) {
                                                   const int x = i & 15;
                                                   const int y = i >> 4;
                                                   s += std::abs(
                                                       static_cast<int>(
                                                           src.at(Plane::Y,
                                                                  mx + x,
                                                                  my + y))
                                                       - avg[i]);
                                               }
                                               return s;
                                           }();
                    const int rate = mvdBits(fwd.mv, pred0)
                                     + mvdBits(bwd.mv, pred1)
                                     + ueBits(fwd.ref) + 2;
                    const int cost = dist + ((lambda * rate) >> 4);
                    VT_SITE(site_cmp, "enc.mode.bicmp", 16, 2,
                            BranchLoadDep);
                    const bool better = cost < best_cost;
                    trace::branch(site_cmp, better);
                    if (better) {
                        best_cost = cost;
                        mc.mode = MbMode::Inter16;
                        mc.dir = BDir::Bi;
                        mc.mv0 = fwd.mv;
                        mc.ref0 = fwd.ref;
                        mc.mv1 = bwd.mv;
                    }
                }
            }

            // Inter 8x8 partitions (P frames).
            if (type == FrameType::P && params_.partitions.p8x8) {
                MeContext sctx = ctx;
                sctx.merange = std::max(4, params_.merange / 2);
                int total = (lambda * 3) >> 4;
                MbCoding cand;
                for (int p = 0; p < 4 && total < best_cost; ++p) {
                    const int ox = (p & 1) * 8;
                    const int oy = (p >> 1) * 8;
                    MeResult r = searchAllRefs(sctx, mx + ox, my + oy, 8, 8,
                                               mc.mode == MbMode::Inter16
                                                   ? mc.mv0
                                                   : pred0);
                    cand.mv8[p] = r.mv;
                    cand.ref8[p] = r.ref;
                    total += r.cost;
                }
                me_candidates_ += sctx.candidates_evaluated;
                VT_SITE(site_cmp, "enc.mode.p8cmp", 16, 2, BranchLoadDep);
                const bool better = total < best_cost;
                trace::branch(site_cmp, better);
                if (better) {
                    best_cost = total;
                    mc.mode = MbMode::Inter8x8;
                    std::copy(cand.mv8, cand.mv8 + 4, mc.mv8);
                    std::copy(cand.ref8, cand.ref8 + 4, mc.ref8);
                }
            }

            me_candidates_ += ctx.candidates_evaluated;
        }

        // --- Final coding of the chosen mode --------------------------
        uint8_t predY[256];
        uint8_t predCb[64];
        uint8_t predCr[64];

        if (mc.mode == MbMode::Intra4) {
            codeIntra4Mb(src, recon, type, mbx, mby, qp, mc);
            return;
        }

        if (mc.mode == MbMode::Intra16) {
            predictIntra16(recon, mx, my, mc.i16, predY);
            predictChromaDc(recon, Plane::Cb, mx / 2, my / 2, predCb);
            predictChromaDc(recon, Plane::Cr, mx / 2, my / 2, predCr);
            buildResidual(src, mx, my, predY, predCb, predCr, qp, true,
                          &mc.res);
            writeMbHeader(type, mc);
            writeResidual(mc.res);
            reconstructMb(recon, mx, my, predY, predCb, predCr, qp, mc.res);
            mb_state_[mb_index] = {Mv{}, Mv{}, true};
            qp_map_[mb_index] = qp;
            ++mb_intra16_;
            return;
        }

        // Inter path.
        interPredict(mc, mx, my, predY, predCb, predCr);
        buildResidual(src, mx, my, predY, predCb, predCr, qp, false,
                      &mc.res);

        // Skip conversion: a costless MB collapses to Skip/Direct.
        const Mv pred0 = predictMv(mbx, mby, 0);
        const Mv pred1 = predictMv(mbx, mby, 1);
        bool skip = false;
        if (mc.res.cbp == 0 && mc.mode == MbMode::Inter16) {
            if (type == FrameType::P) {
                skip = mc.ref0 == 0 && mc.mv0 == pred0;
            } else {
                skip = mc.dir == BDir::Bi && mc.ref0 == 0
                       && mc.mv0 == pred0 && mc.mv1 == pred1;
            }
        }
        VT_SITE(site_skip, "enc.mode.skip", 16, 2, BranchLoadDep);
        trace::branch(site_skip, skip);
        if (skip) {
            mc.mode = MbMode::Skip;
            bw_.putUe(0);
            ++mb_skip_;
            // Skip MBs code no qp_delta: the decoder assumes the frame QP
            // for deblocking, so the encoder must do the same.
            mc.qp = frame_qp_;
        } else {
            writeMbHeader(type, mc);
            writeResidual(mc.res);
            if (mc.mode == MbMode::Inter16) {
                ++mb_inter16_;
            } else {
                ++mb_inter8x8_;
            }
        }
        reconstructMb(recon, mx, my, predY, predCb, predCr, mc.qp, mc.res);

        MbState st;
        st.intra = false;
        st.mv0 = mc.mode == MbMode::Inter8x8 ? mc.mv8[0] : mc.mv0;
        st.mv1 = mc.mv1;
        mb_state_[mb_index] = st;
        qp_map_[mb_index] = mc.qp;
    }

    /** Writes the macroblock header (mode, MVs, intra modes, qp, cbp). */
    void
    writeMbHeader(FrameType type, const MbCoding& mc)
    {
        VT_SITE(site, "enc.writembheader", 96, 20, Block);
        trace::block(site);

        if (type == FrameType::I) {
            bw_.putUe(mc.mode == MbMode::Intra16 ? 0u : 1u);
        } else {
            bw_.putUe(static_cast<uint32_t>(mc.mode));
            if (mc.mode == MbMode::Inter16 || mc.mode == MbMode::Inter8x8) {
                if (type == FrameType::B) {
                    bw_.putUe(static_cast<uint32_t>(mc.dir));
                }
            }
        }

        const Mv pred0 = predictMv(cur_mbx_, cur_mby_, 0);
        const Mv pred1 = predictMv(cur_mbx_, cur_mby_, 1);

        switch (mc.mode) {
          case MbMode::Inter16: {
            if (type != FrameType::B || mc.dir == BDir::Fwd
                || mc.dir == BDir::Bi) {
                bw_.putUe(static_cast<uint32_t>(mc.ref0));
                bw_.putSe(mc.mv0.x - pred0.x);
                bw_.putSe(mc.mv0.y - pred0.y);
            }
            if (type == FrameType::B
                && (mc.dir == BDir::Bwd || mc.dir == BDir::Bi)) {
                bw_.putSe(mc.mv1.x - pred1.x);
                bw_.putSe(mc.mv1.y - pred1.y);
            }
            break;
          }
          case MbMode::Inter8x8: {
            for (int p = 0; p < 4; ++p) {
                bw_.putUe(static_cast<uint32_t>(mc.ref8[p]));
                bw_.putSe(mc.mv8[p].x - pred0.x);
                bw_.putSe(mc.mv8[p].y - pred0.y);
            }
            break;
          }
          case MbMode::Intra16: {
            bw_.putUe(static_cast<uint32_t>(mc.i16));
            break;
          }
          case MbMode::Intra4: {
            for (int b = 0; b < 16; ++b) {
                bw_.putUe(static_cast<uint32_t>(mc.i4[b]));
            }
            break;
          }
          case MbMode::Skip:
            return;
        }

        bw_.putSe(mc.qp - frame_qp_);
        bw_.putUe(static_cast<uint32_t>(mc.res.cbp));
    }

    /** Intra-4x4 macroblocks code block-by-block against live recon. */
    void
    codeIntra4Mb(const Frame& src, Frame& recon, FrameType type, int mbx,
                 int mby, int qp, MbCoding& mc)
    {
        const int mx = mbx * 16;
        const int my = mby * 16;
        const int lambda = lambdaFp(qp);
        const bool use_satd = params_.subme >= 7;

        // Phase 1: per-block mode choice + residual, writing recon as we
        // go so later blocks predict from true neighbors.
        uint8_t pred[16];
        for (int b = 0; b < 16; ++b) {
            const int px = mx + (b & 3) * 4;
            const int py = my + (b >> 2) * 4;
            int cost = 0;
            mc.i4[b] = chooseIntra4(src, recon, px, py, use_satd, lambda,
                                    &cost);
            predictIntra4(recon, px, py, mc.i4[b], pred);
            residual4x4(src, px, py, pred, 4, mc.res.luma[b]);
            const int nnz = transformQuant(mc.res.luma[b], qp, true);
            if (nnz > 0) {
                mc.res.cbp |= 1 << lumaCbpGroup(b);
                mc.res.total_nnz += nnz;
            }
            // Reconstruct immediately (prediction stride is 4 here).
            if (nnz > 0) {
                reconstruct4x4(recon, Plane::Y, px, py, mc.res.luma[b], qp,
                               pred, 4);
            } else {
                copyPred(recon, Plane::Y, px, py, pred, 4, 4, 4);
            }
        }

        // Chroma: DC prediction as in Intra16.
        uint8_t predCb[64];
        uint8_t predCr[64];
        predictChromaDc(recon, Plane::Cb, mx / 2, my / 2, predCb);
        predictChromaDc(recon, Plane::Cr, mx / 2, my / 2, predCr);
        const int cqp = std::max(0, qp - 2);
        for (int c = 0; c < 2; ++c) {
            const Plane plane = c == 0 ? Plane::Cb : Plane::Cr;
            const uint8_t* cpred = c == 0 ? predCb : predCr;
            for (int b = 0; b < 4; ++b) {
                const int bx = (b & 1) * 4;
                const int by = (b >> 1) * 4;
                residualChroma4x4(src, plane, mx / 2 + bx, my / 2 + by,
                                  cpred + by * 8 + bx, 8,
                                  mc.res.chroma[c][b]);
                const int nnz =
                    transformQuant(mc.res.chroma[c][b], cqp, true);
                if (nnz > 0) {
                    mc.res.cbp |= 1 << (4 + c);
                }
            }
            for (int b = 0; b < 4; ++b) {
                const int bx = (b & 1) * 4;
                const int by = (b >> 1) * 4;
                if ((mc.res.cbp >> (4 + c)) & 1) {
                    reconstruct4x4(recon, plane, mx / 2 + bx, my / 2 + by,
                                   mc.res.chroma[c][b], cqp,
                                   cpred + by * 8 + bx, 8);
                } else {
                    copyPred(recon, plane, mx / 2 + bx, my / 2 + by,
                             cpred + by * 8 + bx, 8, 4, 4);
                }
            }
        }

        // Phase 2: emit syntax.
        writeMbHeader(type, mc);
        writeResidual(mc.res);

        const int mb_index = mby * mb_w_ + mbx;
        mb_state_[mb_index] = {Mv{}, Mv{}, true};
        qp_map_[mb_index] = qp;
        ++mb_intra4_;
    }

    // ---- Members ---------------------------------------------------------

    EncoderParams params_;
    double fps_;
    int w_;
    int h_;
    int mb_w_;
    int mb_h_;
    RateController rc_;
    BitWriter bw_;
    std::vector<DpbEntry> dpb_;
    std::vector<const Frame*> refs0_;
    const Frame* ref1_ = nullptr;
    std::vector<MbState> mb_state_;
    std::vector<int> qp_map_;
    int frame_qp_ = 26;
    int cur_mbx_ = 0;
    int cur_mby_ = 0;

    uint64_t mb_skip_ = 0;
    uint64_t mb_inter16_ = 0;
    uint64_t mb_inter8x8_ = 0;
    uint64_t mb_intra16_ = 0;
    uint64_t mb_intra4_ = 0;
    uint64_t me_candidates_ = 0;
};

} // namespace

Encoder::Encoder(const EncoderParams& params, double fps)
    : params_(params), fps_(fps)
{
    params_.validate();
    VT_ASSERT(fps > 0.0, "fps must be positive");
}

std::vector<uint8_t>
Encoder::encode(const std::vector<Frame>& frames, EncodeStats* stats)
{
    VT_ASSERT(!frames.empty(), "cannot encode an empty sequence");
    const int w = frames[0].width();
    const int h = frames[0].height();

    std::vector<PassStats> pass1;
    if (params_.rc == RateControl::TwoPass) {
        // Fast first pass, as x264 does: cheap analysis, ABR control.
        EncoderParams p1 = params_;
        p1.rc = RateControl::ABR;
        p1.me = MeMethod::Dia;
        p1.subme = std::min(p1.subme, 2);
        p1.trellis = 0;
        p1.partitions.p8x8 = false;
        SequenceEncoder pass1_enc(p1, fps_, w, h,
                                  static_cast<int>(frames.size()), {});
        std::vector<PassStats> collected;
        pass1_enc.run(frames, nullptr, &collected);
        pass1 = std::move(collected);
    }

    SequenceEncoder enc(params_, fps_, w, h,
                        static_cast<int>(frames.size()), std::move(pass1));
    return enc.run(frames, stats, nullptr);
}

} // namespace vtrans::codec

#ifndef VTRANS_CODEC_ENCODER_H_
#define VTRANS_CODEC_ENCODER_H_

/**
 * @file
 * The VX1 encoder: the x264 stand-in whose option surface (crf, refs,
 * presets, rate-control modes, ME methods, partitions, trellis, aq,
 * deblock) mirrors the parameters the paper sweeps. See DESIGN.md §2.
 */

#include <cstdint>
#include <vector>

#include "codec/params.h"
#include "codec/ratecontrol.h"
#include "video/frame.h"

namespace vtrans::codec {

/** Per-frame encode record. */
struct FrameStat
{
    int display_index = 0;
    FrameType type = FrameType::P;
    int qp = 0;
    uint64_t bits = 0;
    double psnr = 0.0;
};

/** Aggregate statistics of one encode. */
struct EncodeStats
{
    uint64_t total_bits = 0;
    double bitrate_kbps = 0.0;   ///< total_bits / clip duration.
    double psnr = 0.0;           ///< Mean reconstruction PSNR (dB).
    int i_frames = 0;
    int p_frames = 0;
    int b_frames = 0;
    uint64_t mb_skip = 0;
    uint64_t mb_inter16 = 0;
    uint64_t mb_inter8x8 = 0;
    uint64_t mb_intra16 = 0;
    uint64_t mb_intra4 = 0;
    uint64_t me_candidates = 0;  ///< Full+sub-pel candidates evaluated.
    int vbv_violations = 0;
    std::vector<FrameStat> frames;
};

/**
 * Encodes raw YUV420 frame sequences into VX1 bitstreams.
 *
 * A single Encoder instance encodes one sequence per call; TwoPass rate
 * control internally runs a fast first pass (dia / subme 2 / no trellis,
 * as x264's fast first pass does) to gather per-frame statistics.
 */
class Encoder
{
  public:
    /**
     * @param params Validated encoder parameters.
     * @param fps Frame rate of the sequence (rate control budgeting).
     */
    Encoder(const EncoderParams& params, double fps);

    /**
     * Encodes a sequence.
     * @param frames Input frames in display order (all same geometry).
     * @param stats Optional aggregate statistics out-param.
     * @return The coded bitstream.
     */
    std::vector<uint8_t> encode(const std::vector<video::Frame>& frames,
                                EncodeStats* stats = nullptr);

  private:
    EncoderParams params_;
    double fps_;
};

} // namespace vtrans::codec

#endif // VTRANS_CODEC_ENCODER_H_

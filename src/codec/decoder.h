#ifndef VTRANS_CODEC_DECODER_H_
#define VTRANS_CODEC_DECODER_H_

/**
 * @file
 * The VX1 decoder: parses bitstreams produced by Encoder and reconstructs
 * frames bit-identically to the encoder's reference reconstruction (the
 * deterministic first stage of transcoding, paper §II-A).
 */

#include <cstdint>
#include <vector>

#include "video/frame.h"

namespace vtrans::codec {

/** Output of a decode: frames restored to display order plus metadata. */
struct DecodeResult
{
    int width = 0;
    int height = 0;
    int fps = 0;
    std::vector<video::Frame> frames;  ///< Display order.
};

/**
 * Decodes a complete VX1 stream.
 * Fatal error on malformed input (magic mismatch, truncated stream).
 */
DecodeResult decode(const std::vector<uint8_t>& bytes);

} // namespace vtrans::codec

#endif // VTRANS_CODEC_DECODER_H_

#ifndef VTRANS_CODEC_RATECONTROL_H_
#define VTRANS_CODEC_RATECONTROL_H_

/**
 * @file
 * Rate control (paper §II-B1): the six modes — CQP, CRF, ABR, two-pass
 * ABR, CBR (macroblock-granular, the only mode applied below picture
 * level), and VBV-constrained encoding — plus variance-based adaptive
 * quantization (`aq-mode`).
 */

#include <cstdint>
#include <vector>

#include "codec/params.h"

namespace vtrans::codec {

/** Per-frame statistics recorded by a first pass (two-pass ABR). */
struct PassStats
{
    FrameType type = FrameType::P;
    int qp = 0;
    uint64_t bits = 0;
    double complexity = 0.0;
};

/**
 * Chooses frame- and macroblock-level QPs for one encode.
 *
 * Usage per frame: startFrame() -> (per MB: mbQp()) -> endFrame(). CBR
 * additionally adapts within the frame through mbQp's feedback arguments;
 * VBV tracks a leaky-bucket decoder buffer and raises QP under pressure.
 */
class RateController
{
  public:
    /**
     * @param params Encoder parameters (mode, targets, aq).
     * @param fps Frames per second (buffer/bit budgeting).
     * @param mb_count Macroblocks per frame.
     * @param total_frames Frames in the sequence.
     * @param pass1 First-pass stats for TwoPass mode (empty otherwise).
     */
    RateController(const EncoderParams& params, double fps, int mb_count,
                   int total_frames, std::vector<PassStats> pass1 = {});

    /**
     * Begins a frame and returns its base QP.
     * @param type Frame type (I/P/B offsets apply).
     * @param complexity Lookahead complexity signal (inter cost proxy).
     */
    int startFrame(FrameType type, double complexity);

    /**
     * Returns the QP for a macroblock.
     * @param mb_index Raster index of the MB in the frame.
     * @param bits_so_far Bits produced so far in this frame.
     * @param variance Luma variance of the MB (adaptive quantization).
     */
    int mbQp(int mb_index, uint64_t bits_so_far, double variance);

    /** Completes a frame with its actual coded size. */
    void endFrame(uint64_t bits);

    /** The decoder-buffer fullness in bits (VBV/CBR modes). */
    double bufferFullness() const { return buffer_fullness_; }

    /** Number of frames whose coded size violated the VBV constraint. */
    int vbvViolations() const { return vbv_violations_; }

    /** Running average luma variance (AQ reference level). */
    double averageVariance() const { return avg_variance_; }

  private:
    int clampQp(double qp) const;

    EncoderParams params_;
    double fps_;
    int mb_count_;
    int total_frames_;
    std::vector<PassStats> pass1_;

    int frame_index_ = 0;
    int frame_qp_ = 23;
    FrameType frame_type_ = FrameType::P;
    uint64_t frame_bit_budget_ = 0;

    double complexity_ema_ = 0.0;
    uint64_t total_bits_ = 0;
    double buffer_fullness_ = 0.0;
    double buffer_size_ = 0.0;
    double buffer_rate_ = 0.0;
    int vbv_violations_ = 0;
    double avg_variance_ = 256.0;
    double pass1_cost_sum_ = 0.0;
};

} // namespace vtrans::codec

#endif // VTRANS_CODEC_RATECONTROL_H_

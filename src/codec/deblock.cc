#include "codec/deblock.h"

#include <algorithm>
#include <cmath>

#include "codec/loopflags.h"
#include "common/status.h"
#include "trace/probe.h"

namespace vtrans::codec {

using video::Frame;
using video::Plane;

int
deblockAlpha(int qp, int offset)
{
    const int q = std::clamp(qp + offset * 2, 0, 51);
    if (q < 16) {
        return 0;
    }
    // Exponential ramp approximating the H.264 alpha table.
    const double a = 0.8 * std::pow(2.0, q / 6.0);
    return std::min(255, static_cast<int>(a));
}

int
deblockBeta(int qp, int offset)
{
    const int q = std::clamp(qp + offset * 2, 0, 51);
    if (q < 16) {
        return 0;
    }
    return std::min(18, q / 4 - 2);
}

namespace {

/** Filters one 1-D edge sample quartet (p1 p0 | q0 q1) in place. */
inline void
filterSamples(uint8_t& p1, uint8_t& p0, uint8_t& q0, uint8_t& q1, int alpha,
              int beta, int c0)
{
    const int dp0q0 = std::abs(static_cast<int>(p0) - q0);
    const int dp1p0 = std::abs(static_cast<int>(p1) - p0);
    const int dq1q0 = std::abs(static_cast<int>(q1) - q0);
    if (dp0q0 >= alpha || dp1p0 >= beta || dq1q0 >= beta) {
        return;
    }
    const int delta = std::clamp(
        (((static_cast<int>(q0) - p0) * 4 + (p1 - q1) + 4) >> 3), -c0, c0);
    p0 = static_cast<uint8_t>(std::clamp(p0 + delta, 0, 255));
    q0 = static_cast<uint8_t>(std::clamp(q0 - delta, 0, 255));
}

} // namespace

void
deblockFrame(Frame& frame, const DeblockConfig& config, const int* qp_map,
             int mb_w, int mb_h)
{
    if (!config.enabled) {
        return;
    }
    VT_ASSERT(qp_map != nullptr, "deblock requires a QP map");

    auto qpAt = [&](int mbx, int mby) {
        mbx = std::clamp(mbx, 0, mb_w - 1);
        mby = std::clamp(mby, 0, mb_h - 1);
        return qp_map[mby * mb_w + mbx];
    };

    const int w = frame.width();
    const int h = frame.height();

    // Vertical edges (filter across columns) at x = 8, 16, 24, ... Edges
    // at MB boundaries use the average QP of the two MBs. The per-sample
    // work at (x, y) is independent of every other edge sample, so the
    // two loop orders below are semantically identical; the interchanged
    // order (Graphite's -floop-interchange, see loopflags.h) walks the
    // frame row-major instead of column-major.
    auto vertical_sample = [&](int x, int y) {
        const int mbx_r = x / 16;
        const int qp = (x % 16 == 0)
                           ? (qpAt(mbx_r - 1, y / 16)
                              + qpAt(mbx_r, y / 16) + 1) / 2
                           : qpAt(x / 16, y / 16);
        const int alpha = deblockAlpha(qp, config.alpha_offset);
        const int beta = deblockBeta(qp, config.beta_offset);
        if (alpha == 0 || beta == 0) {
            return;
        }
        const int c0 = 1 + qp / 10;
        trace::load(frame.simAddr(Plane::Y, x - 2, y), 4);
        uint8_t& p1 = frame.at(Plane::Y, x - 2, y);
        uint8_t& p0 = frame.at(Plane::Y, x - 1, y);
        uint8_t& q0 = frame.at(Plane::Y, x, y);
        uint8_t& q1 = frame.at(Plane::Y, x + 1, y);
        VT_SITE(site_f, "deblock.filter", 48, 12, BranchLoadDep);
        const bool active = std::abs(static_cast<int>(p0) - q0) < alpha;
        trace::branch(site_f, active);
        filterSamples(p1, p0, q0, q1, alpha, beta, c0);
        trace::store(frame.simAddr(Plane::Y, x - 1, y), 2);
    };
    auto vertical_sample_branchless = [&](int x, int y) {
        const int mbx_r = x / 16;
        const int qp = (x % 16 == 0)
                           ? (qpAt(mbx_r - 1, y / 16)
                              + qpAt(mbx_r, y / 16) + 1) / 2
                           : qpAt(x / 16, y / 16);
        const int alpha = deblockAlpha(qp, config.alpha_offset);
        const int beta = deblockBeta(qp, config.beta_offset);
        if (alpha == 0 || beta == 0) {
            return;
        }
        const int c0 = 1 + qp / 10;
        trace::load(frame.simAddr(Plane::Y, x - 2, y), 4);
        uint8_t& p1 = frame.at(Plane::Y, x - 2, y);
        uint8_t& p0 = frame.at(Plane::Y, x - 1, y);
        uint8_t& q0 = frame.at(Plane::Y, x, y);
        uint8_t& q1 = frame.at(Plane::Y, x + 1, y);
        filterSamples(p1, p0, q0, q1, alpha, beta, c0);
        trace::store(frame.simAddr(Plane::Y, x - 1, y), 2);
    };
    if (loopOptFlags().interchange_deblock) {
        // Interchanged row-major schedule. Walking the row lets the
        // compiler vectorize the filter (masked select instead of the
        // per-sample branch), so the restructured loop carries a block
        // probe per edge-group and no data-dependent branch; loads and
        // stores (and the arithmetic) are unchanged.
        for (int y = 0; y < h; ++y) {
            for (int x = 8; x < w; x += 8) {
                if (((x - 8) & 31) == 0) {
                    VT_SITE(site, "deblock.vedge.simd4", 96, 9,
                            BlockLoadDep);
                    trace::block(site);
                }
                vertical_sample_branchless(x, y);
            }
        }
    } else {
        for (int x = 8; x < w; x += 8) {
            for (int y = 0; y < h; ++y) {
                if ((y & 15) == 0) {
                    VT_SITE(site, "deblock.vedge.rows16", 64, 14, Block);
                    trace::block(site);
                }
                vertical_sample(x, y);
            }
        }
    }

    // Horizontal edges (filter across rows) at y = 8, 16, 24, ...
    for (int y = 8; y < h; y += 8) {
        for (int x = 0; x < w; ++x) {
            if ((x & 15) == 0) {
                VT_SITE(site, "deblock.hedge.cols16", 64, 14, Block);
                trace::block(site);
                trace::load(frame.simAddr(Plane::Y, x, y - 2), 16);
                trace::load(frame.simAddr(Plane::Y, x, y - 1), 16);
                trace::load(frame.simAddr(Plane::Y, x, y), 16);
                trace::load(frame.simAddr(Plane::Y, x, y + 1), 16);
                trace::store(frame.simAddr(Plane::Y, x, y - 1), 16);
                trace::store(frame.simAddr(Plane::Y, x, y), 16);
            }
            const int mby_b = y / 16;
            const int qp = (y % 16 == 0)
                               ? (qpAt(x / 16, mby_b - 1)
                                  + qpAt(x / 16, mby_b) + 1) / 2
                               : qpAt(x / 16, y / 16);
            const int alpha = deblockAlpha(qp, config.alpha_offset);
            const int beta = deblockBeta(qp, config.beta_offset);
            if (alpha == 0 || beta == 0) {
                continue;
            }
            const int c0 = 1 + qp / 10;
            uint8_t& p1 = frame.at(Plane::Y, x, y - 2);
            uint8_t& p0 = frame.at(Plane::Y, x, y - 1);
            uint8_t& q0 = frame.at(Plane::Y, x, y);
            uint8_t& q1 = frame.at(Plane::Y, x, y + 1);
            VT_SITE(site_f, "deblock.filter.h", 48, 12, BranchLoadDep);
            const bool active =
                std::abs(static_cast<int>(p0) - q0) < alpha;
            trace::branch(site_f, active);
            filterSamples(p1, p0, q0, q1, alpha, beta, c0);
        }
    }

    // Chroma: macroblock edges only, both planes.
    for (const Plane plane : {Plane::Cb, Plane::Cr}) {
        const int cw = frame.chromaWidth();
        const int ch = frame.chromaHeight();
        auto chroma_vertical = [&](int x, int y, bool probe) {
            if (probe) {
                VT_SITE(site, "deblock.chroma.v", 56, 10, Block);
                trace::block(site);
            }
            trace::load(frame.simAddr(plane, x - 2, y), 4);
            trace::store(frame.simAddr(plane, x - 1, y), 2);
            const int qp = (qpAt(x / 8 - 1, y / 8) + qpAt(x / 8, y / 8)
                            + 1) / 2;
            const int alpha = deblockAlpha(qp, config.alpha_offset);
            const int beta = deblockBeta(qp, config.beta_offset);
            if (alpha == 0 || beta == 0) {
                return;
            }
            uint8_t& p1 = frame.at(plane, x - 2, y);
            uint8_t& p0 = frame.at(plane, x - 1, y);
            uint8_t& q0 = frame.at(plane, x, y);
            uint8_t& q1 = frame.at(plane, x + 1, y);
            filterSamples(p1, p0, q0, q1, alpha, beta, 1 + qp / 12);
        };
        if (loopOptFlags().interchange_deblock) {
            // Same interchange as the luma vertical pass: row-major walk.
            for (int y = 0; y < ch; ++y) {
                for (int x = 8; x < cw; x += 8) {
                    chroma_vertical(x, y, ((x - 8) & 15) == 0);
                }
            }
        } else {
            for (int x = 8; x < cw; x += 8) {
                for (int y = 0; y < ch; ++y) {
                    chroma_vertical(x, y, (y & 7) == 0);
                }
            }
        }
        for (int y = 8; y < ch; y += 8) {
            for (int x = 0; x < cw; ++x) {
                if ((x & 7) == 0) {
                    VT_SITE(site, "deblock.chroma.h", 56, 10, Block);
                    trace::block(site);
                    trace::load(frame.simAddr(plane, x, y - 2), 8);
                    trace::load(frame.simAddr(plane, x, y), 8);
                    trace::store(frame.simAddr(plane, x, y - 1), 8);
                }
                const int qp =
                    (qpAt(x / 8, y / 8 - 1) + qpAt(x / 8, y / 8) + 1) / 2;
                const int alpha = deblockAlpha(qp, config.alpha_offset);
                const int beta = deblockBeta(qp, config.beta_offset);
                if (alpha == 0 || beta == 0) {
                    continue;
                }
                uint8_t& p1 = frame.at(plane, x, y - 2);
                uint8_t& p0 = frame.at(plane, x, y - 1);
                uint8_t& q0 = frame.at(plane, x, y);
                uint8_t& q1 = frame.at(plane, x, y + 1);
                filterSamples(p1, p0, q0, q1, alpha, beta, 1 + qp / 12);
            }
        }
    }
}

} // namespace vtrans::codec

#ifndef VTRANS_CODEC_DEBLOCK_H_
#define VTRANS_CODEC_DEBLOCK_H_

/**
 * @file
 * In-loop deblocking filter. Runs identically in the encoder's
 * reconstruction loop and in the decoder, smoothing block-boundary
 * discontinuities as a function of QP and the Table II alpha/beta offsets.
 */

#include "video/frame.h"

namespace vtrans::codec {

/** Per-frame deblocking configuration. */
struct DeblockConfig
{
    bool enabled = true;
    int alpha_offset = 0;  ///< Table II "deblock [a:b]" first value.
    int beta_offset = 0;   ///< Second value.
};

/** Edge-detection threshold alpha for a QP (clamped table approximation). */
int deblockAlpha(int qp, int offset);

/** Flatness threshold beta for a QP. */
int deblockBeta(int qp, int offset);

/**
 * Filters all macroblock and internal 8x8 edges of the luma plane and the
 * macroblock edges of both chroma planes, in place.
 * @param qp_map Per-macroblock QP values (row-major, mb_w x mb_h).
 */
void deblockFrame(video::Frame& frame, const DeblockConfig& config,
                  const int* qp_map, int mb_w, int mb_h);

} // namespace vtrans::codec

#endif // VTRANS_CODEC_DEBLOCK_H_

#ifndef VTRANS_OBS_HOTSPOTS_H_
#define VTRANS_OBS_HOTSPOTS_H_

/**
 * @file
 * The hotspot profiler: a pure-observer ProbeSink that attributes the
 * dynamic instruction stream to code sites, the software analogue of the
 * paper's VTune hotspot analysis (§III-B). Where VTune samples a PMU and
 * maps IPs back to functions, this profiler watches the exact probe-bus
 * event stream the core timing model consumes — attached alongside the
 * model through a trace::TeeSink so the measured run is not perturbed —
 * and rolls leaf sites up into hierarchical prefixes and codec kernel
 * families ("motion estimation", "entropy coding", ...).
 *
 * Accounting mirrors uarch::CoreModel exactly: a block retires
 * `site.instructions` instructions, and each branch, load, and store
 * retires one more. Per-site instruction totals therefore sum to the
 * model's `CoreStats::instructions` counter bit-for-bit.
 */

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "trace/probe.h"

namespace vtrans::obs {

/** Event tallies attributed to one code site (or rollup bucket). */
struct SiteCounters
{
    uint64_t blocks = 0;       ///< Block executions (incl. branch blocks).
    uint64_t instructions = 0; ///< Retired instructions (model-exact).
    uint64_t code_bytes = 0;   ///< Code bytes fetched (site bytes × blocks).
    uint64_t branches = 0;     ///< Conditional branches executed.
    uint64_t taken = 0;        ///< Branches taken (after layout polarity).
    uint64_t loads = 0;        ///< Data loads attributed to the site.
    uint64_t stores = 0;       ///< Data stores attributed to the site.
    uint64_t load_bytes = 0;   ///< Bytes loaded.
    uint64_t store_bytes = 0;  ///< Bytes stored.

    // µarch attribution, filled only from uarch::CoreModel per-site
    // accounting (CoreParams::attribute_sites); all zero on
    // instruction-profiler-only runs. The model also tallies branches
    // per site, but that field is NOT copied here — the instruction
    // profiler merged alongside already counts the identical value.
    uint64_t cycles = 0;               ///< Core cycles charged to the site.
    uint64_t slots_retiring = 0;       ///< Dispatch slots, Top-down class.
    uint64_t slots_frontend = 0;
    uint64_t slots_bad_spec = 0;
    uint64_t slots_backend_memory = 0;
    uint64_t slots_backend_core = 0;
    uint64_t branch_mispredicts = 0;
    uint64_t l1d_accesses = 0;
    uint64_t l1d_misses = 0;
    uint64_t l2_misses = 0;
    uint64_t l3_misses = 0;
    uint64_t l1i_accesses = 0;
    uint64_t l1i_misses = 0;
    uint64_t itlb_misses = 0;
    uint64_t btb_misses = 0;

    void merge(const SiteCounters& other);

    /** True when any field (event or µarch) is non-zero. */
    bool any() const;

    // Derived per-site metrics (0 when the inputs are missing).
    double cpi() const;           ///< cycles / instructions.
    uint64_t slotsTotal() const;  ///< Sum of the five slot classes.
    double retiringShare() const;
    double frontendShare() const;
    double badSpecShare() const;
    double backendMemoryShare() const;
    double backendCoreShare() const;
    double branchMpki() const;    ///< Mispredicts per kilo-instruction.
    double l1dMpki() const;
    double l2Mpki() const;
    double l3Mpki() const;
    double l1iMpki() const;
};

/**
 * Per-run, per-thread instruction-attribution sink.
 *
 * Loads and stores carry no site on the probe bus; they are attributed
 * to the most recently executed block's site ("current site"), matching
 * how a sampling profiler attributes memory traffic to the enclosing
 * function. Events arriving before any block land in an unattributed
 * bucket.
 *
 * Not thread-safe (like every sink, it is owned by one thread's run);
 * merge finished profilers into a HotspotReport for cross-run totals.
 */
class HotspotProfiler : public trace::ProbeSink
{
  public:
    void onBlock(const trace::CodeSite& site) override;
    void onBranch(const trace::CodeSite& site, bool taken) override;
    void onLoad(uint64_t addr, uint32_t bytes) override;
    void onStore(uint64_t addr, uint32_t bytes) override;

    /** Consumes a batch directly (no per-event virtual dispatch); records
     *  are tallied in order by the same member functions, so totals are
     *  bit-identical to the per-event path. */
    void onBatch(const trace::ProbeEvent* events, size_t count) override;

    /** Counters indexed by site id (absent ids have all-zero tallies). */
    const std::vector<SiteCounters>& perSite() const { return per_site_; }

    /** Events observed before the first block of the run. */
    const SiteCounters& unattributed() const { return unattributed_; }

    /** Total instructions across all sites plus the unattributed bucket;
     *  equals the core model's CoreStats::instructions for the same run. */
    uint64_t totalInstructions() const;

    /** Clears all tallies (new measurement run). */
    void reset();

  private:
    SiteCounters& at(uint32_t site_id);

    std::vector<SiteCounters> per_site_;
    SiteCounters unattributed_;
    int64_t current_site_ = -1; ///< Site id of the last block; -1 = none.
};

/** One row of a hotspot table: a name (site / prefix / family) + tallies. */
struct HotspotRow
{
    std::string name;
    SiteCounters counters;
};

/**
 * Maps a site name to its codec kernel family, mirroring the paper's
 * function-level hotspot grouping of x264: SAD/SATD cost kernels belong
 * to motion estimation (their dominant caller), sub-pel filters to
 * interpolation, CABAC/bitstream to entropy coding, and so on.
 */
std::string kernelFamily(const std::string& site_name);

/**
 * Aggregated hotspot totals across runs and threads.
 *
 * Thread-safe: worker threads merge their finished per-run profilers
 * concurrently. Rollups are computed on demand from the merged per-site
 * tallies.
 */
class HotspotReport
{
  public:
    /** Accumulates one finished profiler's tallies (thread-safe). */
    void merge(const HotspotProfiler& profiler);

    /** Accumulates per-site counter deltas keyed by registry site id,
     *  plus an unattributed bucket (thread-safe). This is the bridge the
     *  µarch attribution merge uses (obs/uarch.h); rows that are all
     *  zero are skipped. */
    void mergeBySiteId(const std::vector<SiteCounters>& per_site,
                       const SiteCounters& unattributed);

    /** Per-site rows sorted by instructions, descending. */
    std::vector<HotspotRow> bySite() const;

    /** Rows rolled up by leading name component ("me.sad.row" → "me.*"),
     *  sorted by instructions descending. */
    std::vector<HotspotRow> byPrefix() const;

    /** Rows rolled up by kernelFamily(), sorted by instructions desc. */
    std::vector<HotspotRow> byFamily() const;

    /** Grand totals (including the unattributed bucket). */
    SiteCounters totals() const;

    /** True if any event has been merged. */
    bool empty() const;

    /** VTune-hotspots-style text table of the top `limit` rows per
     *  rollup level (family, prefix, leaf site), with instruction
     *  percentages against the grand total. */
    std::string table(size_t limit = 10) const;

    /** VTune-style µarch attribution table: cycles, CPI, the five
     *  Top-down slot shares, and MPKIs per row, sorted by cycles
     *  descending — the paper's "hotspot function × µarch signature"
     *  view. Meaningful only after a run with per-site attribution
     *  (uarch::CoreParams::attribute_sites) has been merged. */
    std::string uarchTable(size_t limit = 10) const;

    /** The full report as a JSON document (totals + all three rollups). */
    std::string toJson() const;

    /** Writes toJson() to `path`; false (not fatal) on I/O failure. */
    bool writeJson(const std::string& path) const;

    /** Clears all merged tallies. */
    void reset();

  private:
    std::map<std::string, SiteCounters> snapshot() const;

    mutable std::mutex mu_;
    std::map<std::string, SiteCounters> by_name_;
    SiteCounters unattributed_;
};

/** Process-wide report that instrumented runs merge into when hotspot
 *  collection is enabled (see setHotspotsEnabled). */
HotspotReport& hotspotReport();

/** Turns process-wide hotspot collection on/off (default off). */
void setHotspotsEnabled(bool enabled);

/** True when instrumented runs should attach a profiler. */
bool hotspotsEnabled();

} // namespace vtrans::obs

#endif // VTRANS_OBS_HOTSPOTS_H_

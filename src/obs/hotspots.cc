#include "obs/hotspots.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <sstream>

#include "common/table.h"

namespace vtrans::obs {

void
SiteCounters::merge(const SiteCounters& other)
{
    blocks += other.blocks;
    instructions += other.instructions;
    code_bytes += other.code_bytes;
    branches += other.branches;
    taken += other.taken;
    loads += other.loads;
    stores += other.stores;
    load_bytes += other.load_bytes;
    store_bytes += other.store_bytes;
    cycles += other.cycles;
    slots_retiring += other.slots_retiring;
    slots_frontend += other.slots_frontend;
    slots_bad_spec += other.slots_bad_spec;
    slots_backend_memory += other.slots_backend_memory;
    slots_backend_core += other.slots_backend_core;
    branch_mispredicts += other.branch_mispredicts;
    l1d_accesses += other.l1d_accesses;
    l1d_misses += other.l1d_misses;
    l2_misses += other.l2_misses;
    l3_misses += other.l3_misses;
    l1i_accesses += other.l1i_accesses;
    l1i_misses += other.l1i_misses;
    itlb_misses += other.itlb_misses;
    btb_misses += other.btb_misses;
}

bool
SiteCounters::any() const
{
    return (blocks | instructions | code_bytes | branches | taken | loads
            | stores | load_bytes | store_bytes | cycles | slots_retiring
            | slots_frontend | slots_bad_spec | slots_backend_memory
            | slots_backend_core | branch_mispredicts | l1d_accesses
            | l1d_misses | l2_misses | l3_misses | l1i_accesses
            | l1i_misses | itlb_misses | btb_misses)
           != 0;
}

namespace {

double
perKiloInstructions(uint64_t events, uint64_t instructions)
{
    return instructions == 0
               ? 0.0
               : 1000.0 * static_cast<double>(events)
                     / static_cast<double>(instructions);
}

double
slotShare(uint64_t slots, uint64_t total)
{
    return total == 0 ? 0.0
                      : static_cast<double>(slots)
                            / static_cast<double>(total);
}

} // namespace

double
SiteCounters::cpi() const
{
    return instructions == 0 ? 0.0
                             : static_cast<double>(cycles)
                                   / static_cast<double>(instructions);
}

uint64_t
SiteCounters::slotsTotal() const
{
    return slots_retiring + slots_frontend + slots_bad_spec
           + slots_backend_memory + slots_backend_core;
}

double
SiteCounters::retiringShare() const
{
    return slotShare(slots_retiring, slotsTotal());
}

double
SiteCounters::frontendShare() const
{
    return slotShare(slots_frontend, slotsTotal());
}

double
SiteCounters::badSpecShare() const
{
    return slotShare(slots_bad_spec, slotsTotal());
}

double
SiteCounters::backendMemoryShare() const
{
    return slotShare(slots_backend_memory, slotsTotal());
}

double
SiteCounters::backendCoreShare() const
{
    return slotShare(slots_backend_core, slotsTotal());
}

double
SiteCounters::branchMpki() const
{
    return perKiloInstructions(branch_mispredicts, instructions);
}

double
SiteCounters::l1dMpki() const
{
    return perKiloInstructions(l1d_misses, instructions);
}

double
SiteCounters::l2Mpki() const
{
    return perKiloInstructions(l2_misses, instructions);
}

double
SiteCounters::l3Mpki() const
{
    return perKiloInstructions(l3_misses, instructions);
}

double
SiteCounters::l1iMpki() const
{
    return perKiloInstructions(l1i_misses, instructions);
}

SiteCounters&
HotspotProfiler::at(uint32_t site_id)
{
    if (site_id >= per_site_.size()) {
        per_site_.resize(site_id + 1);
    }
    return per_site_[site_id];
}

void
HotspotProfiler::onBlock(const trace::CodeSite& site)
{
    SiteCounters& c = at(site.id);
    ++c.blocks;
    c.instructions += site.instructions;
    c.code_bytes += site.bytes;
    current_site_ = site.id;
}

void
HotspotProfiler::onBranch(const trace::CodeSite& site, bool taken)
{
    SiteCounters& c = at(site.id);
    c.instructions += 1;
    c.branches += 1;
    c.taken += taken ? 1 : 0;
    current_site_ = site.id;
}

void
HotspotProfiler::onLoad(uint64_t addr, uint32_t bytes)
{
    (void)addr;
    SiteCounters& c = current_site_ >= 0
                          ? at(static_cast<uint32_t>(current_site_))
                          : unattributed_;
    c.instructions += 1;
    c.loads += 1;
    c.load_bytes += bytes;
}

void
HotspotProfiler::onStore(uint64_t addr, uint32_t bytes)
{
    (void)addr;
    SiteCounters& c = current_site_ >= 0
                          ? at(static_cast<uint32_t>(current_site_))
                          : unattributed_;
    c.instructions += 1;
    c.stores += 1;
    c.store_bytes += bytes;
}

void
HotspotProfiler::onBatch(const trace::ProbeEvent* events, size_t count)
{
    // Direct batch consumption mirroring the per-event handlers exactly
    // (qualified calls — no virtual dispatch), so every tally matches the
    // per-event path bit-for-bit.
    trace::SiteRegistry& reg = trace::registry();
    for (size_t i = 0; i < count; ++i) {
        const trace::ProbeEvent& e = events[i];
        switch (e.kind) {
        case trace::ProbeEvent::kBlock:
            HotspotProfiler::onBlock(reg.site(e.aux));
            break;
        case trace::ProbeEvent::kBlockBranch: {
            const trace::CodeSite& site = reg.site(e.aux);
            HotspotProfiler::onBlock(site);
            HotspotProfiler::onBranch(site, (e.flags & 1) != 0);
            break;
        }
        case trace::ProbeEvent::kLoad:
            HotspotProfiler::onLoad(e.addr, e.aux);
            break;
        case trace::ProbeEvent::kStore:
            HotspotProfiler::onStore(e.addr, e.aux);
            break;
        default:
            break; // Unknown kinds are rejected by the default replay.
        }
    }
}

uint64_t
HotspotProfiler::totalInstructions() const
{
    uint64_t total = unattributed_.instructions;
    for (const SiteCounters& c : per_site_) {
        total += c.instructions;
    }
    return total;
}

void
HotspotProfiler::reset()
{
    per_site_.clear();
    unattributed_ = SiteCounters{};
    current_site_ = -1;
}

std::string
kernelFamily(const std::string& site_name)
{
    auto starts = [&site_name](const char* prefix) {
        return site_name.rfind(prefix, 0) == 0;
    };
    // SAD/SATD cost kernels are charged to motion estimation, their
    // dominant caller, as a sampling profiler with inlining does.
    if (starts("me.") || starts("pixel.sad") || starts("pixel.satd")) {
        return "motion estimation";
    }
    if (starts("pixel.mc") || starts("pixel.average")) {
        return "interpolation";
    }
    if (starts("dct.") || starts("trellis.")) {
        return "transform/quant";
    }
    if (starts("arith.") || starts("bitstream.") || starts("entropy.")) {
        return "entropy coding";
    }
    if (starts("deblock.")) {
        return "deblocking";
    }
    if (starts("intra.")) {
        return "intra prediction";
    }
    if (starts("lookahead.")) {
        return "lookahead";
    }
    if (starts("rc.")) {
        return "rate control";
    }
    if (starts("dec.")) {
        return "decode";
    }
    if (starts("enc.")) {
        return "macroblock encode";
    }
    const size_t dot = site_name.find('.');
    return dot == std::string::npos ? site_name : site_name.substr(0, dot);
}

namespace {

std::string
leadingPrefix(const std::string& site_name)
{
    const size_t dot = site_name.find('.');
    return dot == std::string::npos ? site_name
                                    : site_name.substr(0, dot) + ".*";
}

std::vector<HotspotRow>
sortedRows(std::map<std::string, SiteCounters> rollup)
{
    std::vector<HotspotRow> rows;
    rows.reserve(rollup.size());
    for (auto& [name, counters] : rollup) {
        rows.push_back(HotspotRow{name, counters});
    }
    std::sort(rows.begin(), rows.end(),
              [](const HotspotRow& a, const HotspotRow& b) {
                  if (a.counters.instructions != b.counters.instructions) {
                      return a.counters.instructions >
                             b.counters.instructions;
                  }
                  return a.name < b.name; // deterministic tie-break
              });
    return rows;
}

void
appendRows(Table* t, const std::vector<HotspotRow>& rows, size_t limit,
           uint64_t total_instructions)
{
    for (size_t i = 0; i < rows.size() && i < limit; ++i) {
        const HotspotRow& row = rows[i];
        t->beginRow();
        t->cell(row.name);
        t->cell(row.counters.instructions);
        const double share =
            total_instructions == 0
                ? 0.0
                : static_cast<double>(row.counters.instructions) /
                      static_cast<double>(total_instructions);
        t->cell(formatPercent(share));
        t->cell(row.counters.blocks);
        t->cell(row.counters.branches);
        t->cell(row.counters.loads);
        t->cell(row.counters.stores);
        t->cell(row.counters.load_bytes);
        t->cell(row.counters.store_bytes);
    }
}

/** Rows re-sorted by cycles descending (instructions, then name, break
 *  ties) for the µarch attribution view. */
std::vector<HotspotRow>
sortedByCycles(std::vector<HotspotRow> rows)
{
    std::sort(rows.begin(), rows.end(),
              [](const HotspotRow& a, const HotspotRow& b) {
                  if (a.counters.cycles != b.counters.cycles) {
                      return a.counters.cycles > b.counters.cycles;
                  }
                  if (a.counters.instructions != b.counters.instructions) {
                      return a.counters.instructions >
                             b.counters.instructions;
                  }
                  return a.name < b.name;
              });
    return rows;
}

void
appendUarchRows(Table* t, const std::vector<HotspotRow>& rows, size_t limit,
                uint64_t total_cycles)
{
    for (size_t i = 0; i < rows.size() && i < limit; ++i) {
        const SiteCounters& c = rows[i].counters;
        t->beginRow();
        t->cell(rows[i].name);
        t->cell(c.cycles);
        const double share =
            total_cycles == 0 ? 0.0
                              : static_cast<double>(c.cycles)
                                    / static_cast<double>(total_cycles);
        t->cell(formatPercent(share));
        t->cell(c.cpi(), 2);
        t->cell(formatPercent(c.retiringShare()));
        t->cell(formatPercent(c.frontendShare()));
        t->cell(formatPercent(c.badSpecShare()));
        t->cell(formatPercent(c.backendMemoryShare()));
        t->cell(formatPercent(c.backendCoreShare()));
        t->cell(c.branchMpki(), 2);
        t->cell(c.l1dMpki(), 2);
        t->cell(c.l2Mpki(), 2);
        t->cell(c.l3Mpki(), 2);
        t->cell(c.l1iMpki(), 2);
    }
}

void
appendCountersJson(std::ostringstream* os, const SiteCounters& c)
{
    *os << "\"instructions\":" << c.instructions
        << ",\"blocks\":" << c.blocks << ",\"code_bytes\":" << c.code_bytes
        << ",\"branches\":" << c.branches << ",\"taken\":" << c.taken
        << ",\"loads\":" << c.loads << ",\"stores\":" << c.stores
        << ",\"load_bytes\":" << c.load_bytes
        << ",\"store_bytes\":" << c.store_bytes
        << ",\"cycles\":" << c.cycles
        << ",\"slots_retiring\":" << c.slots_retiring
        << ",\"slots_frontend\":" << c.slots_frontend
        << ",\"slots_bad_spec\":" << c.slots_bad_spec
        << ",\"slots_backend_memory\":" << c.slots_backend_memory
        << ",\"slots_backend_core\":" << c.slots_backend_core
        << ",\"branch_mispredicts\":" << c.branch_mispredicts
        << ",\"l1d_accesses\":" << c.l1d_accesses
        << ",\"l1d_misses\":" << c.l1d_misses
        << ",\"l2_misses\":" << c.l2_misses
        << ",\"l3_misses\":" << c.l3_misses
        << ",\"l1i_accesses\":" << c.l1i_accesses
        << ",\"l1i_misses\":" << c.l1i_misses
        << ",\"itlb_misses\":" << c.itlb_misses
        << ",\"btb_misses\":" << c.btb_misses;
}

void
appendRowsJson(std::ostringstream* os, const char* key,
               const std::vector<HotspotRow>& rows)
{
    *os << "\"" << key << "\":[";
    for (size_t i = 0; i < rows.size(); ++i) {
        if (i > 0) {
            *os << ",";
        }
        *os << "{\"name\":\"" << rows[i].name << "\",";
        appendCountersJson(os, rows[i].counters);
        *os << "}";
    }
    *os << "]";
}

} // namespace

void
HotspotReport::merge(const HotspotProfiler& profiler)
{
    mergeBySiteId(profiler.perSite(), profiler.unattributed());
}

void
HotspotReport::mergeBySiteId(const std::vector<SiteCounters>& per_site,
                             const SiteCounters& unattributed)
{
    const auto& sites = trace::registry().sites();
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t id = 0; id < per_site.size() && id < sites.size(); ++id) {
        const SiteCounters& c = per_site[id];
        if (!c.any()) {
            continue;
        }
        by_name_[sites[id]->name].merge(c);
    }
    unattributed_.merge(unattributed);
}

std::map<std::string, SiteCounters>
HotspotReport::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return by_name_;
}

std::vector<HotspotRow>
HotspotReport::bySite() const
{
    return sortedRows(snapshot());
}

std::vector<HotspotRow>
HotspotReport::byPrefix() const
{
    std::map<std::string, SiteCounters> rollup;
    for (const auto& [name, counters] : snapshot()) {
        rollup[leadingPrefix(name)].merge(counters);
    }
    return sortedRows(std::move(rollup));
}

std::vector<HotspotRow>
HotspotReport::byFamily() const
{
    std::map<std::string, SiteCounters> rollup;
    for (const auto& [name, counters] : snapshot()) {
        rollup[kernelFamily(name)].merge(counters);
    }
    return sortedRows(std::move(rollup));
}

SiteCounters
HotspotReport::totals() const
{
    SiteCounters total;
    for (const auto& [name, counters] : snapshot()) {
        total.merge(counters);
    }
    std::lock_guard<std::mutex> lock(mu_);
    total.merge(unattributed_);
    return total;
}

bool
HotspotReport::empty() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return by_name_.empty() && unattributed_.instructions == 0;
}

std::string
HotspotReport::table(size_t limit) const
{
    const SiteCounters total = totals();
    std::ostringstream os;

    Table families({"kernel family", "instructions", "share", "blocks",
                    "branches", "loads", "stores", "ld bytes", "st bytes"});
    appendRows(&families, byFamily(), limit, total.instructions);
    os << "hotspots by kernel family\n" << families.toText() << "\n";

    Table prefixes({"site prefix", "instructions", "share", "blocks",
                    "branches", "loads", "stores", "ld bytes", "st bytes"});
    appendRows(&prefixes, byPrefix(), limit, total.instructions);
    os << "hotspots by site prefix\n" << prefixes.toText() << "\n";

    Table sites({"code site", "instructions", "share", "blocks", "branches",
                 "loads", "stores", "ld bytes", "st bytes"});
    appendRows(&sites, bySite(), limit, total.instructions);
    os << "hotspots by code site (top " << limit << ")\n" << sites.toText();
    return os.str();
}

std::string
HotspotReport::uarchTable(size_t limit) const
{
    const SiteCounters total = totals();
    std::ostringstream os;
    const std::vector<std::string> headers = {
        "", "cycles", "share", "CPI", "retire", "frontend", "bad spec",
        "be-mem", "be-core", "brMPKI", "l1dMPKI", "l2MPKI", "l3MPKI",
        "l1iMPKI"};

    auto section = [&](const char* title, const char* name_header,
                       std::vector<HotspotRow> rows, bool last) {
        std::vector<std::string> h = headers;
        h[0] = name_header;
        Table t(h);
        appendUarchRows(&t, sortedByCycles(std::move(rows)), limit,
                        total.cycles);
        os << title << "\n" << t.toText() << (last ? "" : "\n");
    };
    section("uarch attribution by kernel family", "kernel family",
            byFamily(), false);
    section("uarch attribution by site prefix", "site prefix", byPrefix(),
            false);
    const std::string sites_title =
        "uarch attribution by code site (top " + std::to_string(limit) + ")";
    section(sites_title.c_str(), "code site", bySite(), true);
    return os.str();
}

std::string
HotspotReport::toJson() const
{
    const SiteCounters total = totals();
    std::ostringstream os;
    os << "{\"totals\":{";
    appendCountersJson(&os, total);
    os << "},";
    appendRowsJson(&os, "by_family", byFamily());
    os << ",";
    appendRowsJson(&os, "by_prefix", byPrefix());
    os << ",";
    appendRowsJson(&os, "by_site", bySite());
    os << ",\"unattributed\":{";
    {
        std::lock_guard<std::mutex> lock(mu_);
        appendCountersJson(&os, unattributed_);
    }
    os << "}}";
    return os.str();
}

bool
HotspotReport::writeJson(const std::string& path) const
{
    std::ofstream out(path);
    if (!out) {
        return false;
    }
    out << toJson() << "\n";
    return static_cast<bool>(out.flush());
}

void
HotspotReport::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    by_name_.clear();
    unattributed_ = SiteCounters{};
}

namespace {
std::atomic<bool> g_hotspots_enabled{false};
} // namespace

HotspotReport&
hotspotReport()
{
    static HotspotReport report;
    return report;
}

void
setHotspotsEnabled(bool enabled)
{
    g_hotspots_enabled.store(enabled, std::memory_order_relaxed);
}

bool
hotspotsEnabled()
{
    return g_hotspots_enabled.load(std::memory_order_relaxed);
}

} // namespace vtrans::obs

#ifndef VTRANS_OBS_SPANS_H_
#define VTRANS_OBS_SPANS_H_

/**
 * @file
 * Span tracing: begin/end intervals over the farm job lifecycle and the
 * parallel sweep's stages, exported as Chrome trace-event JSON (viewable
 * in Perfetto / chrome://tracing).
 *
 * Two time domains coexist in one trace, mirroring the farm's split
 * between its deterministic discrete-event plan and its wall-clock
 * execution: farm job spans carry *simulated* time (the dispatch plan's
 * seconds, scaled to microseconds), while sweep stage spans carry *wall*
 * time from a process-relative steady clock. Tracks (pid/tid) keep the
 * domains apart, so overlap within a track is always meaningful.
 */

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace vtrans::obs {

/** One recorded interval / marker in a trace. */
struct Span
{
    /** Chrome trace-event phase of the record. */
    enum class Kind : uint8_t {
        Complete,   ///< "X": an interval with ts + dur.
        AsyncBegin, ///< "b": start of an async interval, paired by id.
        AsyncEnd,   ///< "e": end of an async interval, paired by id.
        Instant,    ///< "i": a point marker.
        Counter,    ///< "C": a counter sample; `values` plot as series.
    };

    Kind kind = Kind::Complete;
    std::string category; ///< e.g. "farm", "sweep".
    std::string name;     ///< e.g. "attempt", "queue", "fan-out".
    uint64_t id = 0;      ///< Async pairing id (e.g. job id).
    int64_t pid = 1;      ///< Trace process (track group).
    int64_t tid = 1;      ///< Trace thread (track within the group).
    double ts_us = 0.0;   ///< Start timestamp, microseconds.
    double dur_us = 0.0;  ///< Duration, microseconds (Complete only).
    /** String key/value annotations, rendered into the event's "args". */
    std::vector<std::pair<std::string, std::string>> args;
    /** Numeric annotations, rendered into "args" as numbers. For a
     *  Counter event each entry is one stacked series on the counter
     *  track (the Chrome trace-event "C" phase plots every numeric arg);
     *  non-finite values are clamped to 0 to keep the JSON valid. */
    std::vector<std::pair<std::string, double>> values;
};

/**
 * Collects spans into per-thread buffers and exports Chrome trace JSON.
 *
 * Thread-safe: each record appends to the calling thread's buffer under
 * a registry mutex (record rates here are per-job/per-stage, not
 * per-event, so one uncontended lock per record is cheap and keeps the
 * structure simple and TSan-clean). Per-thread ordering is preserved;
 * export concatenates buffers and the viewer orders by timestamp.
 */
class SpanTracer
{
  public:
    /** Records an "X" interval with explicit timestamps. */
    void recordComplete(Span span);

    /** Records a "b"/"e" async pair endpoint or an "i" marker. */
    void recordEvent(Span span);

    /** Records a "C" counter sample: `values` become the plotted series
     *  on the (pid, tid, name) counter track at ts_us. */
    void recordCounter(Span span);

    /** Names a (pid, tid) track in the exported trace. */
    void setTrackName(int64_t pid, int64_t tid, const std::string& name);

    /** All recorded spans, concatenated per-thread buffers (copy). */
    std::vector<Span> spans() const;

    /** Number of recorded spans across all threads. */
    size_t size() const;

    /** Discards all recorded spans and track names. */
    void clear();

    /** The trace as a Chrome trace-event JSON document. */
    std::string toChromeTrace() const;

    /** Writes toChromeTrace() to `path`; false (not fatal) on failure. */
    bool writeChromeTrace(const std::string& path) const;

    /**
     * RAII wall-clock span: captures wallNowUs() at construction and
     * records a Complete span on the current thread at destruction.
     */
    class Scoped
    {
      public:
        Scoped(SpanTracer* tracer, std::string category, std::string name);
        ~Scoped();
        Scoped(const Scoped&) = delete;
        Scoped& operator=(const Scoped&) = delete;

        /** Adds a string annotation to the span being timed. */
        void arg(std::string key, std::string value);

      private:
        SpanTracer* tracer_; ///< May be null: span becomes a no-op.
        Span span_;
    };

  private:
    std::vector<Span>& bufferLocked();

    mutable std::mutex mu_;
    std::map<std::thread::id, std::vector<Span>> buffers_;
    std::map<std::pair<int64_t, int64_t>, std::string> track_names_;
};

/** Microseconds of wall time since the first call in this process
 *  (steady clock, so spans are monotonic and diff-friendly). */
double wallNowUs();

/** A stable, small integer id for the calling thread (1, 2, ... in
 *  first-use order), used as the wall-time track id. */
int64_t threadTid();

/** Installs the process-wide tracer that instrumented phases (e.g.
 *  core::parallelSweep) record into; nullptr uninstalls. */
void setGlobalTracer(SpanTracer* tracer);

/** The installed process-wide tracer, or nullptr when tracing is off. */
SpanTracer* globalTracer();

} // namespace vtrans::obs

#endif // VTRANS_OBS_SPANS_H_

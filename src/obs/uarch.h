#ifndef VTRANS_OBS_UARCH_H_
#define VTRANS_OBS_UARCH_H_

/**
 * @file
 * The bridge between the core timing model's per-site µarch attribution
 * (uarch::CoreModel with CoreParams::attribute_sites) and the obs
 * reporting layer: process-wide enable toggles that instrumented runs
 * consult (like setHotspotsEnabled), the merge that folds a finished
 * model's SiteUarch tallies into the HotspotReport, and the phase
 * time-series exporter that renders PhaseSamples as Chrome trace-event
 * counter tracks ("ph":"C") next to the job-lifecycle spans.
 */

#include <cstdint>
#include <string>

#include "obs/hotspots.h"
#include "obs/spans.h"
#include "uarch/core.h"

namespace vtrans::obs {

/** Turns process-wide per-site µarch attribution on/off (default off).
 *  When on, core::runInstrumented sets CoreParams::attribute_sites and
 *  merges the finished model's tallies into hotspotReport(); hotspot
 *  collection rides along so the report also has the per-site
 *  instruction denominators for CPI/MPKI. */
void setUarchAttributionEnabled(bool enabled);

/** True when instrumented runs should attribute µarch events to sites. */
bool uarchAttributionEnabled();

/** Process-wide default phase-sampling window in retired instructions
 *  (0 = off, the default). Instrumented runs whose own
 *  CoreParams::phase_window is 0 inherit this value. */
void setPhaseWindow(uint64_t instructions);
uint64_t phaseWindow();

/** Merges a finished model's per-site attribution into `report`, keyed
 *  by registry site name (thread-safe through the report's lock). The
 *  model's per-site `branches` tally is intentionally dropped: the
 *  instruction profiler merged alongside counts the identical value,
 *  and double-merging would break the exactness contract. */
void mergeAttribution(HotspotReport* report, const uarch::CoreModel& model);

/** The trace process id phase counter tracks are grouped under (clear
 *  of the farm's simulated-time and the sweep's wall-time pids). */
inline constexpr int64_t kPhaseTrackPid = 9;

/** Emits the model's phase time-series as Chrome counter events on
 *  `tracer`, timestamped in simulated microseconds: per window, a
 *  "topdown <label>" event with the five slot-class shares (stacked)
 *  and a "rates <label>" event with IPC and the MPKIs. No-op when the
 *  model has no samples or `tracer` is null. */
void emitPhaseCounters(SpanTracer* tracer, const uarch::CoreModel& model,
                       const std::string& label);

} // namespace vtrans::obs

#endif // VTRANS_OBS_UARCH_H_

#ifndef VTRANS_OBS_JSON_H_
#define VTRANS_OBS_JSON_H_

/**
 * @file
 * A minimal recursive-descent JSON reader. The observability layer
 * *emits* JSON (Chrome trace events, hotspot reports, JSON-lines run
 * logs); this reader exists so the exports can be validated — by the
 * test suite and by `tools/check.sh`, which reuses the test binary as
 * its artifact validator — without any external dependency.
 *
 * Supports the full JSON grammar except `\uXXXX` surrogate pairs (the
 * escape is decoded as a single code point truncated to one byte, which
 * covers everything our own escaper emits). Numbers are doubles.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace vtrans::obs {

/** One parsed JSON value (a small tagged tree). */
class JsonValue
{
  public:
    enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Value accessors; fatal if the kind does not match. */
    bool boolean() const;
    double number() const;
    const std::string& str() const;
    const std::vector<JsonValue>& array() const;
    const std::map<std::string, JsonValue>& object() const;

    /** Object member lookup; nullptr when absent (or not an object). */
    const JsonValue* find(const std::string& key) const;

    /** Convenience: member's number/string with a default. */
    double numberOr(const std::string& key, double def) const;
    std::string strOr(const std::string& key,
                      const std::string& def) const;

    static JsonValue makeNull();
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double n);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue makeObject(std::map<std::string, JsonValue> members);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::map<std::string, JsonValue> object_;
};

/**
 * Parses one JSON document. Returns nullptr and fills `error` (if
 * non-null) with a position-annotated message on malformed input;
 * trailing non-whitespace after the document is an error.
 */
std::unique_ptr<JsonValue> parseJson(const std::string& text,
                                     std::string* error = nullptr);

} // namespace vtrans::obs

#endif // VTRANS_OBS_JSON_H_

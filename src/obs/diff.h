#ifndef VTRANS_OBS_DIFF_H_
#define VTRANS_OBS_DIFF_H_

/**
 * @file
 * Differential comparison of two exported hotspot/µarch reports
 * (HotspotReport::toJson documents): load both, align rows by name at
 * every rollup level, and rank per-site / per-family deltas — the
 * one-command answer to "where did the AVX2 kernels / preset change /
 * layout pass win?". Consumed by `tools/uarch_diff` and the benches'
 * `--uarch-baseline` flag.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "obs/hotspots.h"

namespace vtrans::obs {

/** One loaded report: totals plus the three name-keyed rollups. */
struct ReportData
{
    SiteCounters totals;
    SiteCounters unattributed;
    std::vector<HotspotRow> by_family;
    std::vector<HotspotRow> by_prefix;
    std::vector<HotspotRow> by_site;
};

/** Parses a HotspotReport::toJson() document. Reports from before a
 *  field existed load that field as zero. False + `error` on malformed
 *  or wrongly-shaped input. */
bool parseReport(const std::string& json, ReportData* out,
                 std::string* error);

/** Reads `path` and parses it with parseReport. */
bool loadReport(const std::string& path, ReportData* out,
                std::string* error);

/** One aligned row of a differential comparison (candidate minus
 *  baseline; a row absent on one side compares against all-zero). */
struct DiffRow
{
    std::string name;
    SiteCounters baseline;
    SiteCounters candidate;

    int64_t deltaCycles() const
    {
        return static_cast<int64_t>(candidate.cycles)
               - static_cast<int64_t>(baseline.cycles);
    }

    int64_t deltaInstructions() const
    {
        return static_cast<int64_t>(candidate.instructions)
               - static_cast<int64_t>(baseline.instructions);
    }
};

/** A full differential report: totals plus the three rollup levels,
 *  each sorted by |cycle delta| (then |instruction delta|, then name)
 *  descending. */
struct ReportDiff
{
    DiffRow totals;
    std::vector<DiffRow> by_family;
    std::vector<DiffRow> by_prefix;
    std::vector<DiffRow> by_site;
};

/** Aligns `baseline` and `candidate` by row name at every level. */
ReportDiff diffReports(const ReportData& baseline,
                       const ReportData& candidate);

/** Text tables (family, prefix, top-`limit` sites) of the deltas:
 *  cycles and instructions on both sides, the deltas, the relative
 *  cycle change, and the CPI movement. */
std::string diffTable(const ReportDiff& diff, size_t limit = 12);

} // namespace vtrans::obs

#endif // VTRANS_OBS_DIFF_H_

#ifndef VTRANS_OBS_METRICS_H_
#define VTRANS_OBS_METRICS_H_

/**
 * @file
 * A process-wide metrics registry with Prometheus-style text exposition:
 * counters (monotonic), gauges (set-to-latest), and histograms (sample
 * sets summarised by the shared vtrans::percentile, the same semantics
 * the farm run log uses for its latency percentiles).
 *
 * Instruments are created once by name and live for the process; the
 * hot operations (inc/set/observe) are cheap and thread-safe, so the
 * farm's workers, the dispatcher, and the parallel sweep all record
 * into one registry without coordination.
 */

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"

namespace vtrans::obs {

/** A monotonically increasing counter (lock-free increments). */
class Counter
{
  public:
    void inc(uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/** A gauge holding the latest set value (lock-free). */
class Gauge
{
  public:
    void set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * A histogram of double observations, summarised on exposition as
 * Prometheus summary quantiles (p50/p90/p99 via vtrans::percentile)
 * plus `_sum` and `_count`.
 *
 * Memory is bounded: the first kMaxSamples observations are retained
 * exactly (exact percentiles, consistent with farm::RunLog); past the
 * cap, a deterministic uniform reservoir (Vitter's algorithm R driven
 * by a fixed-seed vtrans::Rng) keeps every observation equally likely
 * to be retained, so percentiles become unbiased estimates while
 * count() and sum() stay exact. A long-running farm service can
 * therefore observe() forever without growing.
 */
class Histogram
{
  public:
    /** Retention cap: exact percentiles up to here, reservoir beyond. */
    static constexpr size_t kMaxSamples = 4096;

    void observe(double value);

    /** Number of observations so far (exact, never capped). */
    uint64_t count() const;

    /** Sum of all observations (exact, never capped). */
    double sum() const;

    /** The p-th percentile (0..100) of retained observations; 0 if
     *  none. Exact while count() <= kMaxSamples, estimated after. */
    double percentile(double p) const;

    /** Observations currently retained: min(count(), kMaxSamples). */
    size_t retained() const;

  private:
    mutable std::mutex mu_;
    std::vector<double> samples_;
    double sum_ = 0.0;
    uint64_t count_ = 0;
    Rng rng_{0x8157065a3ull}; ///< Fixed seed: deterministic reservoir.
};

/**
 * Named instrument registry with Prometheus text exposition.
 *
 * Lookup-or-create is mutex-guarded; returned references are stable for
 * the registry's lifetime. Re-requesting a name returns the existing
 * instrument (the help string of the first registration wins); a name
 * may only ever be one instrument kind.
 */
class MetricsRegistry
{
  public:
    /** Looks up or creates a counter. Name must be metric-legal
     *  ([a-zA-Z_][a-zA-Z0-9_]*), conventionally `*_total`. */
    Counter& counter(const std::string& name, const std::string& help);

    /** Looks up or creates a gauge. */
    Gauge& gauge(const std::string& name, const std::string& help);

    /** Looks up or creates a histogram. */
    Histogram& histogram(const std::string& name, const std::string& help);

    /** Prometheus text exposition (# HELP / # TYPE + samples), metrics
     *  in name order. Histograms render as summaries with quantile
     *  labels plus _sum and _count. */
    std::string exposition() const;

    /** Removes every instrument (test isolation). */
    void reset();

  private:
    struct Instrument
    {
        enum class Kind : uint8_t { Counter, Gauge, Histogram } kind;
        std::string help;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Instrument& instrument(const std::string& name, Instrument::Kind kind,
                           const std::string& help);

    mutable std::mutex mu_;
    std::map<std::string, Instrument> instruments_;
};

/** The process-wide registry the farm, worker pool, and sweep record
 *  into. */
MetricsRegistry& metrics();

} // namespace vtrans::obs

#endif // VTRANS_OBS_METRICS_H_

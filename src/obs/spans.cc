#include "obs/spans.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>

namespace vtrans::obs {

void
SpanTracer::recordComplete(Span span)
{
    span.kind = Span::Kind::Complete;
    std::lock_guard<std::mutex> lock(mu_);
    bufferLocked().push_back(std::move(span));
}

void
SpanTracer::recordEvent(Span span)
{
    std::lock_guard<std::mutex> lock(mu_);
    bufferLocked().push_back(std::move(span));
}

void
SpanTracer::recordCounter(Span span)
{
    span.kind = Span::Kind::Counter;
    std::lock_guard<std::mutex> lock(mu_);
    bufferLocked().push_back(std::move(span));
}

void
SpanTracer::setTrackName(int64_t pid, int64_t tid, const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    track_names_[{pid, tid}] = name;
}

std::vector<Span>&
SpanTracer::bufferLocked()
{
    return buffers_[std::this_thread::get_id()];
}

std::vector<Span>
SpanTracer::spans() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Span> all;
    for (const auto& [tid, buffer] : buffers_) {
        all.insert(all.end(), buffer.begin(), buffer.end());
    }
    return all;
}

size_t
SpanTracer::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    for (const auto& [tid, buffer] : buffers_) {
        n += buffer.size();
    }
    return n;
}

void
SpanTracer::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.clear();
    track_names_.clear();
}

namespace {

void
appendEscaped(std::ostringstream* os, const std::string& s)
{
    for (char c : s) {
        switch (c) {
        case '"': *os << "\\\""; break;
        case '\\': *os << "\\\\"; break;
        case '\n': *os << "\\n"; break;
        case '\t': *os << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                // Other control characters never appear in our names;
                // drop them rather than emit invalid JSON.
                break;
            }
            *os << c;
        }
    }
}

void
appendSpanJson(std::ostringstream* os, const Span& span)
{
    const char* ph = "X";
    switch (span.kind) {
    case Span::Kind::Complete: ph = "X"; break;
    case Span::Kind::AsyncBegin: ph = "b"; break;
    case Span::Kind::AsyncEnd: ph = "e"; break;
    case Span::Kind::Instant: ph = "i"; break;
    case Span::Kind::Counter: ph = "C"; break;
    }
    *os << "{\"ph\":\"" << ph << "\",\"cat\":\"";
    appendEscaped(os, span.category);
    *os << "\",\"name\":\"";
    appendEscaped(os, span.name);
    *os << "\",\"pid\":" << span.pid << ",\"tid\":" << span.tid
        << ",\"ts\":" << span.ts_us;
    if (span.kind == Span::Kind::Complete) {
        *os << ",\"dur\":" << span.dur_us;
    }
    if (span.kind == Span::Kind::AsyncBegin ||
        span.kind == Span::Kind::AsyncEnd) {
        *os << ",\"id\":" << span.id;
    }
    if (span.kind == Span::Kind::Instant) {
        *os << ",\"s\":\"t\"";
    }
    *os << ",\"args\":{";
    bool first_arg = true;
    for (const auto& [key, value] : span.values) {
        if (!first_arg) {
            *os << ",";
        }
        first_arg = false;
        *os << "\"";
        appendEscaped(os, key);
        // Non-finite doubles are not representable in JSON.
        *os << "\":" << (std::isfinite(value) ? value : 0.0);
    }
    for (const auto& [key, value] : span.args) {
        if (!first_arg) {
            *os << ",";
        }
        first_arg = false;
        *os << "\"";
        appendEscaped(os, key);
        *os << "\":\"";
        appendEscaped(os, value);
        *os << "\"";
    }
    *os << "}}";
}

} // namespace

std::string
SpanTracer::toChromeTrace() const
{
    std::map<std::pair<int64_t, int64_t>, std::string> names;
    std::vector<Span> all;
    {
        std::lock_guard<std::mutex> lock(mu_);
        names = track_names_;
        for (const auto& [tid, buffer] : buffers_) {
            all.insert(all.end(), buffer.begin(), buffer.end());
        }
    }
    std::ostringstream os;
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const auto& [track, name] : names) {
        if (!first) {
            os << ",";
        }
        first = false;
        os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":"
           << track.first << ",\"tid\":" << track.second
           << ",\"args\":{\"name\":\"";
        appendEscaped(&os, name);
        os << "\"}}";
    }
    for (const Span& span : all) {
        if (!first) {
            os << ",";
        }
        first = false;
        appendSpanJson(&os, span);
    }
    os << "],\"displayTimeUnit\":\"ms\"}";
    return os.str();
}

bool
SpanTracer::writeChromeTrace(const std::string& path) const
{
    std::ofstream out(path);
    if (!out) {
        return false;
    }
    out << toChromeTrace() << "\n";
    return static_cast<bool>(out.flush());
}

SpanTracer::Scoped::Scoped(SpanTracer* tracer, std::string category,
                           std::string name)
    : tracer_(tracer)
{
    if (tracer_ == nullptr) {
        return;
    }
    span_.category = std::move(category);
    span_.name = std::move(name);
    span_.tid = threadTid();
    span_.ts_us = wallNowUs();
}

SpanTracer::Scoped::~Scoped()
{
    if (tracer_ == nullptr) {
        return;
    }
    span_.dur_us = wallNowUs() - span_.ts_us;
    tracer_->recordComplete(std::move(span_));
}

void
SpanTracer::Scoped::arg(std::string key, std::string value)
{
    if (tracer_ == nullptr) {
        return;
    }
    span_.args.emplace_back(std::move(key), std::move(value));
}

double
wallNowUs()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point epoch = clock::now();
    return std::chrono::duration<double, std::micro>(clock::now() - epoch)
        .count();
}

int64_t
threadTid()
{
    static std::atomic<int64_t> next{1};
    thread_local int64_t tid = next.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

namespace {
std::atomic<SpanTracer*> g_tracer{nullptr};
} // namespace

void
setGlobalTracer(SpanTracer* tracer)
{
    g_tracer.store(tracer, std::memory_order_release);
}

SpanTracer*
globalTracer()
{
    return g_tracer.load(std::memory_order_acquire);
}

} // namespace vtrans::obs

#include "obs/diff.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "common/table.h"
#include "obs/json.h"

namespace vtrans::obs {

namespace {

uint64_t
fieldU64(const JsonValue& obj, const char* key)
{
    // Counters are emitted as integer-valued doubles; missing keys (a
    // report written before the field existed) read as zero.
    const double v = obj.numberOr(key, 0.0);
    return v <= 0.0 ? 0 : static_cast<uint64_t>(v);
}

SiteCounters
parseCounters(const JsonValue& obj)
{
    SiteCounters c;
    c.blocks = fieldU64(obj, "blocks");
    c.instructions = fieldU64(obj, "instructions");
    c.code_bytes = fieldU64(obj, "code_bytes");
    c.branches = fieldU64(obj, "branches");
    c.taken = fieldU64(obj, "taken");
    c.loads = fieldU64(obj, "loads");
    c.stores = fieldU64(obj, "stores");
    c.load_bytes = fieldU64(obj, "load_bytes");
    c.store_bytes = fieldU64(obj, "store_bytes");
    c.cycles = fieldU64(obj, "cycles");
    c.slots_retiring = fieldU64(obj, "slots_retiring");
    c.slots_frontend = fieldU64(obj, "slots_frontend");
    c.slots_bad_spec = fieldU64(obj, "slots_bad_spec");
    c.slots_backend_memory = fieldU64(obj, "slots_backend_memory");
    c.slots_backend_core = fieldU64(obj, "slots_backend_core");
    c.branch_mispredicts = fieldU64(obj, "branch_mispredicts");
    c.l1d_accesses = fieldU64(obj, "l1d_accesses");
    c.l1d_misses = fieldU64(obj, "l1d_misses");
    c.l2_misses = fieldU64(obj, "l2_misses");
    c.l3_misses = fieldU64(obj, "l3_misses");
    c.l1i_accesses = fieldU64(obj, "l1i_accesses");
    c.l1i_misses = fieldU64(obj, "l1i_misses");
    c.itlb_misses = fieldU64(obj, "itlb_misses");
    c.btb_misses = fieldU64(obj, "btb_misses");
    return c;
}

bool
parseRows(const JsonValue& doc, const char* key,
          std::vector<HotspotRow>* out, std::string* error)
{
    const JsonValue* rows = doc.find(key);
    if (rows == nullptr || !rows->isArray()) {
        if (error != nullptr) {
            *error = std::string("report has no \"") + key + "\" array";
        }
        return false;
    }
    for (const JsonValue& row : rows->array()) {
        if (!row.isObject()) {
            if (error != nullptr) {
                *error = std::string(key) + " row is not an object";
            }
            return false;
        }
        out->push_back(
            HotspotRow{row.strOr("name", ""), parseCounters(row)});
    }
    return true;
}

} // namespace

bool
parseReport(const std::string& json, ReportData* out, std::string* error)
{
    const std::unique_ptr<JsonValue> doc = parseJson(json, error);
    if (doc == nullptr) {
        return false;
    }
    if (!doc->isObject()) {
        if (error != nullptr) {
            *error = "report is not a JSON object";
        }
        return false;
    }
    const JsonValue* totals = doc->find("totals");
    if (totals == nullptr || !totals->isObject()) {
        if (error != nullptr) {
            *error = "report has no \"totals\" object";
        }
        return false;
    }
    *out = ReportData{};
    out->totals = parseCounters(*totals);
    if (const JsonValue* un = doc->find("unattributed");
        un != nullptr && un->isObject()) {
        out->unattributed = parseCounters(*un);
    }
    return parseRows(*doc, "by_family", &out->by_family, error)
           && parseRows(*doc, "by_prefix", &out->by_prefix, error)
           && parseRows(*doc, "by_site", &out->by_site, error);
}

bool
loadReport(const std::string& path, ReportData* out, std::string* error)
{
    std::ifstream in(path);
    if (!in) {
        if (error != nullptr) {
            *error = "cannot open " + path;
        }
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseReport(buf.str(), out, error);
}

namespace {

std::vector<DiffRow>
diffRows(const std::vector<HotspotRow>& baseline,
         const std::vector<HotspotRow>& candidate)
{
    std::map<std::string, DiffRow> aligned;
    for (const HotspotRow& row : baseline) {
        DiffRow& d = aligned[row.name];
        d.name = row.name;
        d.baseline.merge(row.counters);
    }
    for (const HotspotRow& row : candidate) {
        DiffRow& d = aligned[row.name];
        d.name = row.name;
        d.candidate.merge(row.counters);
    }
    std::vector<DiffRow> rows;
    rows.reserve(aligned.size());
    for (auto& [name, row] : aligned) {
        rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end(),
              [](const DiffRow& a, const DiffRow& b) {
                  const int64_t ac = std::llabs(a.deltaCycles());
                  const int64_t bc = std::llabs(b.deltaCycles());
                  if (ac != bc) {
                      return ac > bc;
                  }
                  const int64_t ai = std::llabs(a.deltaInstructions());
                  const int64_t bi = std::llabs(b.deltaInstructions());
                  if (ai != bi) {
                      return ai > bi;
                  }
                  return a.name < b.name;
              });
    return rows;
}

void
appendDiffRows(Table* t, const std::vector<DiffRow>& rows, size_t limit)
{
    for (size_t i = 0; i < rows.size() && i < limit; ++i) {
        const DiffRow& row = rows[i];
        t->beginRow();
        t->cell(row.name);
        t->cell(row.baseline.cycles);
        t->cell(row.candidate.cycles);
        t->cell(row.deltaCycles());
        const double rel =
            row.baseline.cycles == 0
                ? 0.0
                : static_cast<double>(row.deltaCycles())
                      / static_cast<double>(row.baseline.cycles);
        t->cell(formatPercent(rel));
        t->cell(row.deltaInstructions());
        t->cell(row.baseline.cpi(), 2);
        t->cell(row.candidate.cpi(), 2);
    }
}

} // namespace

ReportDiff
diffReports(const ReportData& baseline, const ReportData& candidate)
{
    ReportDiff diff;
    diff.totals.name = "totals";
    diff.totals.baseline = baseline.totals;
    diff.totals.candidate = candidate.totals;
    diff.by_family = diffRows(baseline.by_family, candidate.by_family);
    diff.by_prefix = diffRows(baseline.by_prefix, candidate.by_prefix);
    diff.by_site = diffRows(baseline.by_site, candidate.by_site);
    return diff;
}

std::string
diffTable(const ReportDiff& diff, size_t limit)
{
    std::ostringstream os;
    os << "totals: cycles " << diff.totals.baseline.cycles << " -> "
       << diff.totals.candidate.cycles << " ("
       << (diff.totals.deltaCycles() >= 0 ? "+" : "")
       << diff.totals.deltaCycles() << "), instructions "
       << diff.totals.baseline.instructions << " -> "
       << diff.totals.candidate.instructions << ", CPI "
       << formatDouble(diff.totals.baseline.cpi(), 3) << " -> "
       << formatDouble(diff.totals.candidate.cpi(), 3) << "\n\n";

    auto section = [&](const char* title, const char* name_header,
                       const std::vector<DiffRow>& rows, bool last) {
        Table t({name_header, "cycles (base)", "cycles (new)", "d-cycles",
                 "d-rel", "d-instr", "CPI base", "CPI new"});
        appendDiffRows(&t, rows, limit);
        os << title << "\n" << t.toText() << (last ? "" : "\n");
    };
    section("delta by kernel family", "kernel family", diff.by_family,
            false);
    section("delta by site prefix", "site prefix", diff.by_prefix, false);
    const std::string sites_title =
        "delta by code site (top " + std::to_string(limit) + ")";
    section(sites_title.c_str(), "code site", diff.by_site, true);
    return os.str();
}

} // namespace vtrans::obs

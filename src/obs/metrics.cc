#include "obs/metrics.h"

#include <sstream>

#include "common/status.h"
#include "common/stats.h"

namespace vtrans::obs {

void
Histogram::observe(double value)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++count_;
    sum_ += value;
    if (samples_.size() < kMaxSamples) {
        samples_.push_back(value);
        return;
    }
    // Algorithm R: replace a random slot with probability cap/count, so
    // every observation so far is retained with equal probability.
    const uint64_t slot = rng_.below(count_);
    if (slot < kMaxSamples) {
        samples_[slot] = value;
    }
}

uint64_t
Histogram::count() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
}

size_t
Histogram::retained() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return samples_.size();
}

double
Histogram::sum() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sum_;
}

double
Histogram::percentile(double p) const
{
    std::vector<double> samples;
    {
        std::lock_guard<std::mutex> lock(mu_);
        samples = samples_;
    }
    return vtrans::percentile(std::move(samples), p);
}

MetricsRegistry::Instrument&
MetricsRegistry::instrument(const std::string& name, Instrument::Kind kind,
                            const std::string& help)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = instruments_.find(name);
    if (it != instruments_.end()) {
        VT_ASSERT(it->second.kind == kind,
                  "metric re-registered as a different kind: ", name);
        return it->second;
    }
    Instrument inst;
    inst.kind = kind;
    inst.help = help;
    switch (kind) {
    case Instrument::Kind::Counter:
        inst.counter = std::make_unique<Counter>();
        break;
    case Instrument::Kind::Gauge:
        inst.gauge = std::make_unique<Gauge>();
        break;
    case Instrument::Kind::Histogram:
        inst.histogram = std::make_unique<Histogram>();
        break;
    }
    return instruments_.emplace(name, std::move(inst)).first->second;
}

Counter&
MetricsRegistry::counter(const std::string& name, const std::string& help)
{
    return *instrument(name, Instrument::Kind::Counter, help).counter;
}

Gauge&
MetricsRegistry::gauge(const std::string& name, const std::string& help)
{
    return *instrument(name, Instrument::Kind::Gauge, help).gauge;
}

Histogram&
MetricsRegistry::histogram(const std::string& name, const std::string& help)
{
    return *instrument(name, Instrument::Kind::Histogram, help).histogram;
}

std::string
MetricsRegistry::exposition() const
{
    // Copy instrument pointers out so sample reads do not nest the
    // registry lock inside histogram locks.
    struct Row
    {
        std::string name;
        const Instrument* inst;
    };
    std::vector<Row> rows;
    {
        std::lock_guard<std::mutex> lock(mu_);
        rows.reserve(instruments_.size());
        for (const auto& [name, inst] : instruments_) {
            rows.push_back(Row{name, &inst});
        }
    }
    std::ostringstream os;
    for (const Row& row : rows) {
        os << "# HELP " << row.name << " " << row.inst->help << "\n";
        switch (row.inst->kind) {
        case Instrument::Kind::Counter:
            os << "# TYPE " << row.name << " counter\n";
            os << row.name << " " << row.inst->counter->value() << "\n";
            break;
        case Instrument::Kind::Gauge:
            os << "# TYPE " << row.name << " gauge\n";
            os << row.name << " " << row.inst->gauge->value() << "\n";
            break;
        case Instrument::Kind::Histogram: {
            const Histogram& h = *row.inst->histogram;
            os << "# TYPE " << row.name << " summary\n";
            for (double q : {50.0, 90.0, 99.0}) {
                os << row.name << "{quantile=\"" << q / 100.0 << "\"} "
                   << h.percentile(q) << "\n";
            }
            os << row.name << "_sum " << h.sum() << "\n";
            os << row.name << "_count " << h.count() << "\n";
            break;
        }
        }
    }
    return os.str();
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    instruments_.clear();
}

MetricsRegistry&
metrics()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace vtrans::obs

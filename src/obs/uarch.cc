#include "obs/uarch.h"

#include <atomic>
#include <vector>

namespace vtrans::obs {

namespace {
std::atomic<bool> g_uarch_attribution{false};
std::atomic<uint64_t> g_phase_window{0};

SiteCounters
toSiteCounters(const uarch::SiteUarch& u)
{
    SiteCounters c;
    c.cycles = u.cycles;
    c.slots_retiring = u.slots_retiring;
    c.slots_frontend = u.slots_frontend;
    c.slots_bad_spec = u.slots_bad_spec;
    c.slots_backend_memory = u.slots_backend_memory;
    c.slots_backend_core = u.slots_backend_core;
    // u.branches is deliberately not copied (see header).
    c.branch_mispredicts = u.branch_mispredicts;
    c.l1d_accesses = u.l1d_accesses;
    c.l1d_misses = u.l1d_misses;
    c.l2_misses = u.l2_misses;
    c.l3_misses = u.l3_misses;
    c.l1i_accesses = u.l1i_accesses;
    c.l1i_misses = u.l1i_misses;
    c.itlb_misses = u.itlb_misses;
    c.btb_misses = u.btb_misses;
    return c;
}

double
perKilo(uint64_t events, uint64_t instructions)
{
    return instructions == 0
               ? 0.0
               : 1000.0 * static_cast<double>(events)
                     / static_cast<double>(instructions);
}

} // namespace

void
setUarchAttributionEnabled(bool enabled)
{
    g_uarch_attribution.store(enabled, std::memory_order_relaxed);
}

bool
uarchAttributionEnabled()
{
    return g_uarch_attribution.load(std::memory_order_relaxed);
}

void
setPhaseWindow(uint64_t instructions)
{
    g_phase_window.store(instructions, std::memory_order_relaxed);
}

uint64_t
phaseWindow()
{
    return g_phase_window.load(std::memory_order_relaxed);
}

void
mergeAttribution(HotspotReport* report, const uarch::CoreModel& model)
{
    if (report == nullptr || !model.attributionEnabled()) {
        return;
    }
    const std::vector<uarch::SiteUarch>& per_site = model.attributionPerSite();
    std::vector<SiteCounters> converted;
    converted.reserve(per_site.size());
    for (const uarch::SiteUarch& u : per_site) {
        converted.push_back(toSiteCounters(u));
    }
    report->mergeBySiteId(converted,
                          toSiteCounters(model.attributionUnattributed()));
}

void
emitPhaseCounters(SpanTracer* tracer, const uarch::CoreModel& model,
                  const std::string& label)
{
    const std::vector<uarch::PhaseSample>& samples = model.phaseSamples();
    if (tracer == nullptr || samples.empty()) {
        return;
    }
    const double freq_ghz = model.params().freq_ghz;
    // cycles -> simulated microseconds (cycles / (GHz * 1e9) * 1e6).
    const double us_per_cycle = 1.0 / (freq_ghz * 1e3);
    const int64_t tid = threadTid();
    tracer->setTrackName(kPhaseTrackPid, tid,
                         "uarch phase (sim time, thread "
                             + std::to_string(tid) + ")");

    uarch::PhaseSample prev; // zero: the first window starts at t=0.
    for (const uarch::PhaseSample& s : samples) {
        const uint64_t d_cycles = s.cycles - prev.cycles;
        const uint64_t d_instr = s.instructions - prev.instructions;
        if (d_cycles == 0 && d_instr == 0) {
            prev = s;
            continue;
        }
        // Counter steps plot from their timestamp onward, so each window
        // is stamped at its *start* to span the window in the viewer.
        const double ts_us = static_cast<double>(prev.cycles) * us_per_cycle;
        const uint64_t d_slots =
            (s.slots_retiring - prev.slots_retiring)
            + (s.slots_frontend - prev.slots_frontend)
            + (s.slots_bad_spec - prev.slots_bad_spec)
            + (s.slots_backend_memory - prev.slots_backend_memory)
            + (s.slots_backend_core - prev.slots_backend_core);
        const double slot_total =
            d_slots == 0 ? 1.0 : static_cast<double>(d_slots);

        Span topdown;
        topdown.category = "uarch";
        topdown.name = "topdown " + label;
        topdown.pid = kPhaseTrackPid;
        topdown.tid = tid;
        topdown.ts_us = ts_us;
        topdown.values = {
            {"retiring",
             (s.slots_retiring - prev.slots_retiring) / slot_total},
            {"frontend",
             (s.slots_frontend - prev.slots_frontend) / slot_total},
            {"bad_spec",
             (s.slots_bad_spec - prev.slots_bad_spec) / slot_total},
            {"backend_memory",
             (s.slots_backend_memory - prev.slots_backend_memory)
                 / slot_total},
            {"backend_core",
             (s.slots_backend_core - prev.slots_backend_core) / slot_total},
        };
        tracer->recordCounter(std::move(topdown));

        Span rates;
        rates.category = "uarch";
        rates.name = "rates " + label;
        rates.pid = kPhaseTrackPid;
        rates.tid = tid;
        rates.ts_us = ts_us;
        rates.values = {
            {"ipc", d_cycles == 0 ? 0.0
                                  : static_cast<double>(d_instr)
                                        / static_cast<double>(d_cycles)},
            {"branch_mpki",
             perKilo(s.branch_mispredicts - prev.branch_mispredicts,
                     d_instr)},
            {"l1d_mpki", perKilo(s.l1d_misses - prev.l1d_misses, d_instr)},
            {"l2_mpki", perKilo(s.l2_misses - prev.l2_misses, d_instr)},
            {"l3_mpki", perKilo(s.l3_misses - prev.l3_misses, d_instr)},
            {"l1i_mpki", perKilo(s.l1i_misses - prev.l1i_misses, d_instr)},
        };
        tracer->recordCounter(std::move(rates));
        prev = s;
    }
}

} // namespace vtrans::obs

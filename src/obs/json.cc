#include "obs/json.h"

#include <cctype>
#include <cstdlib>

#include "common/status.h"

namespace vtrans::obs {

bool
JsonValue::boolean() const
{
    VT_ASSERT(isBool(), "JSON value is not a bool");
    return bool_;
}

double
JsonValue::number() const
{
    VT_ASSERT(isNumber(), "JSON value is not a number");
    return number_;
}

const std::string&
JsonValue::str() const
{
    VT_ASSERT(isString(), "JSON value is not a string");
    return string_;
}

const std::vector<JsonValue>&
JsonValue::array() const
{
    VT_ASSERT(isArray(), "JSON value is not an array");
    return array_;
}

const std::map<std::string, JsonValue>&
JsonValue::object() const
{
    VT_ASSERT(isObject(), "JSON value is not an object");
    return object_;
}

const JsonValue*
JsonValue::find(const std::string& key) const
{
    if (!isObject()) {
        return nullptr;
    }
    auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
}

double
JsonValue::numberOr(const std::string& key, double def) const
{
    const JsonValue* v = find(key);
    return (v != nullptr && v->isNumber()) ? v->number() : def;
}

std::string
JsonValue::strOr(const std::string& key, const std::string& def) const
{
    const JsonValue* v = find(key);
    return (v != nullptr && v->isString()) ? v->str() : def;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue{};
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double n)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.number_ = n;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.string_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue v;
    v.kind_ = Kind::Array;
    v.array_ = std::move(items);
    return v;
}

JsonValue
JsonValue::makeObject(std::map<std::string, JsonValue> members)
{
    JsonValue v;
    v.kind_ = Kind::Object;
    v.object_ = std::move(members);
    return v;
}

namespace {

/** Recursive-descent parser over an in-memory document. */
class Parser
{
  public:
    explicit Parser(const std::string& text) : text_(text) {}

    bool
    parse(JsonValue* out)
    {
        skipSpace();
        if (!parseValue(out)) {
            return false;
        }
        skipSpace();
        if (pos_ != text_.size()) {
            return fail("trailing characters after JSON document");
        }
        return true;
    }

    const std::string& error() const { return error_; }

  private:
    bool
    fail(const std::string& what)
    {
        error_ = what + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool
    literal(const char* word)
    {
        size_t n = 0;
        while (word[n] != '\0') {
            ++n;
        }
        if (text_.compare(pos_, n, word) != 0) {
            return fail(std::string("expected '") + word + "'");
        }
        pos_ += n;
        return true;
    }

    bool
    parseValue(JsonValue* out)
    {
        if (pos_ >= text_.size()) {
            return fail("unexpected end of document");
        }
        switch (text_[pos_]) {
        case '{':
            return parseObject(out);
        case '[':
            return parseArray(out);
        case '"':
            return parseString(out);
        case 't':
            if (!literal("true")) {
                return false;
            }
            *out = JsonValue::makeBool(true);
            return true;
        case 'f':
            if (!literal("false")) {
                return false;
            }
            *out = JsonValue::makeBool(false);
            return true;
        case 'n':
            if (!literal("null")) {
                return false;
            }
            *out = JsonValue::makeNull();
            return true;
        default:
            return parseNumber(out);
        }
    }

    bool
    parseNumber(JsonValue* out)
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            ++pos_;
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) {
            return fail("expected a JSON value");
        }
        const std::string token = text_.substr(start, pos_ - start);
        char* end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            pos_ = start;
            return fail("malformed number '" + token + "'");
        }
        *out = JsonValue::makeNumber(value);
        return true;
    }

    bool
    parseString(JsonValue* out)
    {
        std::string s;
        if (!parseRawString(&s)) {
            return false;
        }
        *out = JsonValue::makeString(std::move(s));
        return true;
    }

    bool
    parseRawString(std::string* out)
    {
        if (text_[pos_] != '"') {
            return fail("expected '\"'");
        }
        ++pos_;
        std::string s;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_];
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size()) {
                    return fail("unterminated escape");
                }
                switch (text_[pos_]) {
                case '"': s += '"'; break;
                case '\\': s += '\\'; break;
                case '/': s += '/'; break;
                case 'b': s += '\b'; break;
                case 'f': s += '\f'; break;
                case 'n': s += '\n'; break;
                case 'r': s += '\r'; break;
                case 't': s += '\t'; break;
                case 'u': {
                    if (pos_ + 4 >= text_.size()) {
                        return fail("truncated \\u escape");
                    }
                    unsigned code = 0;
                    for (int i = 1; i <= 4; ++i) {
                        const char h = text_[pos_ + i];
                        code <<= 4;
                        if (h >= '0' && h <= '9') {
                            code |= static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        } else if (h >= 'A' && h <= 'F') {
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        } else {
                            return fail("bad hex digit in \\u escape");
                        }
                    }
                    pos_ += 4;
                    s += static_cast<char>(code & 0xff);
                    break;
                }
                default:
                    return fail("unknown escape");
                }
                ++pos_;
            } else {
                s += c;
                ++pos_;
            }
        }
        if (pos_ >= text_.size()) {
            return fail("unterminated string");
        }
        ++pos_; // closing quote
        *out = std::move(s);
        return true;
    }

    bool
    parseArray(JsonValue* out)
    {
        ++pos_; // '['
        std::vector<JsonValue> items;
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            *out = JsonValue::makeArray(std::move(items));
            return true;
        }
        while (true) {
            JsonValue item;
            skipSpace();
            if (!parseValue(&item)) {
                return false;
            }
            items.push_back(std::move(item));
            skipSpace();
            if (pos_ >= text_.size()) {
                return fail("unterminated array");
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                break;
            }
            return fail("expected ',' or ']' in array");
        }
        *out = JsonValue::makeArray(std::move(items));
        return true;
    }

    bool
    parseObject(JsonValue* out)
    {
        ++pos_; // '{'
        std::map<std::string, JsonValue> members;
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            *out = JsonValue::makeObject(std::move(members));
            return true;
        }
        while (true) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                return fail("expected object key");
            }
            std::string key;
            if (!parseRawString(&key)) {
                return false;
            }
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':') {
                return fail("expected ':' after object key");
            }
            ++pos_;
            skipSpace();
            JsonValue value;
            if (!parseValue(&value)) {
                return false;
            }
            members.emplace(std::move(key), std::move(value));
            skipSpace();
            if (pos_ >= text_.size()) {
                return fail("unterminated object");
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                break;
            }
            return fail("expected ',' or '}' in object");
        }
        *out = JsonValue::makeObject(std::move(members));
        return true;
    }

    const std::string& text_;
    size_t pos_ = 0;
    std::string error_;
};

} // namespace

std::unique_ptr<JsonValue>
parseJson(const std::string& text, std::string* error)
{
    Parser parser(text);
    auto value = std::make_unique<JsonValue>();
    if (!parser.parse(value.get())) {
        if (error != nullptr) {
            *error = parser.error();
        }
        return nullptr;
    }
    return value;
}

} // namespace vtrans::obs

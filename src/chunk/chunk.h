#ifndef VTRANS_CHUNK_CHUNK_H_
#define VTRANS_CHUNK_CHUNK_H_

/**
 * @file
 * GOP-chunked transcoding: split a mezzanine source into independently
 * encodable segments at the lookahead's I-frame boundaries, and stitch
 * per-chunk output bitstreams back into one stream — the unit-of-work
 * transformation that lets the farm dispatch one upload as a dependent
 * job graph (split -> N chunk encodes -> stitch) instead of pinning one
 * server with the whole video (the segment-level dispatch production VOD
 * pipelines use; see Li et al. in PAPERS.md).
 *
 * ## Determinism
 *
 * The atom of chunked encoding is the *segment*: the frame run between
 * two consecutive planned I frames. Every segment is always encoded as an
 * independent closed-GOP unit, whatever chunk it lands in; a chunk is
 * just a contiguous group of segments processed by one job. Because
 * grouping never changes what is encoded — only which job encodes it —
 * the stitched stream is bit-identical for any chunk count and any
 * worker count. The residual gap to the unchunked open-GOP encode (which
 * may reference across the boundaries chunking seals) is the *boundary
 * cost*, reported as delta-PSNR / delta-bitrate, never hidden.
 *
 * The stitcher is a pure bitstream-level remux: it walks the VX1 frame
 * syntax (see codec/syntax.h) element by element and re-emits it through
 * canonical exp-Golomb, rebasing only each frame's display index. No
 * pixel is touched, so stitching cannot perturb reconstruction; and the
 * remux is associative — stitch(stitch(a,b), c) == stitch(a,b,c) — which
 * is what makes the output independent of segment grouping.
 */

#include <cstdint>
#include <utility>
#include <vector>

#include "codec/params.h"

namespace vtrans::chunk {

/** How to chunk one transcode request. */
struct ChunkOptions
{
    /**
     * Boundary spacing in frames: overrides the target keyint when
     * planning split points (smaller = more segments). 0 = use the
     * target's own keyint.
     */
    int chunk_frames = 0;

    /**
     * Group segments into at most this many chunk jobs (contiguous,
     * balanced). 0 = one chunk per segment.
     */
    int max_chunks = 0;

    /** True if any chunking was requested; false = whole-video path. */
    bool enabled() const { return chunk_frames > 0 || max_chunks > 0; }
};

/** One independently encodable piece of the source. */
struct Segment
{
    int first_frame = 0;          ///< Display index in the full clip.
    int frame_count = 0;
    std::vector<uint8_t> source;  ///< Self-contained mezzanine-grade slice.
};

/** The full split of one source stream. */
struct SplitPlan
{
    int width = 0;
    int height = 0;
    int fps = 0;
    int total_frames = 0;
    std::vector<Segment> segments;  ///< Contiguous, covering the clip.
    std::vector<int> boundaries;    ///< Segment-start display indices.
};

/**
 * Splits a mezzanine stream at GOP/scenecut boundaries: decodes it, runs
 * the lookahead frame-type plan (`codec::planFrameTypes`) with the
 * chunking keyint, and re-encodes each segment as a self-contained
 * mezzanine-grade slice (every chunk therefore starts at an IDR).
 * `target` supplies the planning parameters (scenecut, bframes, b_adapt);
 * `opts.chunk_frames` overrides its keyint when non-zero.
 */
SplitPlan split(const std::vector<uint8_t>& mezzanine,
                const codec::EncoderParams& target,
                const ChunkOptions& opts);

/**
 * Groups `segments` into at most `max_chunks` contiguous, evenly sized
 * (first_segment, segment_count) runs; max_chunks <= 0 or >= segments
 * yields one chunk per segment.
 */
std::vector<std::pair<int, int>> groupSegments(size_t segments,
                                               int max_chunks);

/**
 * Stitches VX1 streams into one by syntax-level remux: sequence headers
 * must agree on geometry/fps/deblock; frame payloads are copied element
 * by element with display indices rebased past the preceding streams.
 * Fatal on malformed or mismatched inputs.
 */
std::vector<uint8_t> stitch(
    const std::vector<const std::vector<uint8_t>*>& streams);

/**
 * Display indices of the I frames of a stream, by syntax walk (no pixel
 * reconstruction) — the IDR set the boundary-determinism checks compare.
 */
std::vector<int> iFrameDisplays(const std::vector<uint8_t>& stream);

/** FNV-1a content fingerprint over the raw stream bytes. */
uint64_t streamFingerprint(const std::vector<uint8_t>& stream);

/**
 * Deterministic simulated service time of a stitch, as a pure function
 * of the stitched byte count (the remux is byte-bandwidth bound). Also
 * used at dispatch time as the prediction, fed the mezzanine byte count
 * as the pre-run size estimate.
 */
double stitchSeconds(size_t stream_bytes);

} // namespace vtrans::chunk

#endif // VTRANS_CHUNK_CHUNK_H_

#include "chunk/chunk.h"

#include <algorithm>

#include "codec/bitstream.h"
#include "codec/syntax.h"
#include "common/status.h"

namespace vtrans::chunk {

namespace {

using codec::BitReader;
using codec::BitWriter;
using codec::FrameType;
using codec::MbMode;

/** Parsed VX1 sequence header. */
struct StreamHeader
{
    int mb_w = 0;
    int mb_h = 0;
    int fps = 0;
    int frame_count = 0;
    uint32_t deblock_flag = 0;
    int32_t alpha_offset = 0;
    int32_t beta_offset = 0;
};

StreamHeader
readHeader(BitReader& br)
{
    StreamHeader h;
    const uint32_t magic = br.getBits(32);
    VT_ASSERT(magic == codec::kMagic, "stitch input is not a VX1 stream");
    h.mb_w = static_cast<int>(br.getUe());
    h.mb_h = static_cast<int>(br.getUe());
    h.fps = static_cast<int>(br.getUe());
    h.frame_count = static_cast<int>(br.getUe());
    h.deblock_flag = br.getUe();
    h.alpha_offset = br.getSe();
    h.beta_offset = br.getSe();
    VT_ASSERT(h.mb_w > 0 && h.mb_h > 0, "corrupt stream geometry");
    return h;
}

/**
 * Element-by-element copy of the VX1 syntax (codec/syntax.h). Every
 * value is re-emitted exactly as read — exp-Golomb is canonical, so the
 * copy is bit-exact — except the frame's display index, which is the
 * one field the remux rebases.
 */
class SyntaxRemux
{
  public:
    SyntaxRemux(BitReader& br, BitWriter& bw) : br_(br), bw_(bw) {}

    /** Type and original (pre-rebase) display index of a copied frame. */
    struct CopiedFrame
    {
        FrameType type = FrameType::I;
        int display = 0;
    };

    /** Copies one coded frame, rebasing its display index. */
    CopiedFrame
    copyFrame(int mb_count, int display_offset)
    {
        CopiedFrame out;
        out.type = static_cast<FrameType>(copyUe());
        out.display = static_cast<int>(br_.getUe());
        bw_.putUe(static_cast<uint32_t>(out.display + display_offset));
        copyUe(); // qp_base
        copyUe(); // num_ref_active
        for (int mb = 0; mb < mb_count; ++mb) {
            copyMacroblock(out.type);
        }
        return out;
    }

  private:
    uint32_t
    copyUe()
    {
        const uint32_t v = br_.getUe();
        bw_.putUe(v);
        return v;
    }

    int32_t
    copySe()
    {
        const int32_t v = br_.getSe();
        bw_.putSe(v);
        return v;
    }

    void
    copyBlock()
    {
        const uint32_t nnz = copyUe();
        VT_ASSERT(nnz <= 16, "corrupt residual block in stitch input");
        for (uint32_t i = 0; i < nnz; ++i) {
            copyUe(); // run_before
            copySe(); // level
        }
    }

    void
    copyMacroblock(FrameType type)
    {
        MbMode mode;
        if (type == FrameType::I) {
            // I frames use the two-symbol intra alphabet.
            mode = copyUe() == 0 ? MbMode::Intra16 : MbMode::Intra4;
        } else {
            mode = static_cast<MbMode>(copyUe());
            if (mode == MbMode::Skip) {
                return; // Skip carries no payload.
            }
        }

        switch (mode) {
          case MbMode::Inter16: {
            auto dir = codec::BDir::Fwd;
            if (type == FrameType::B) {
                dir = static_cast<codec::BDir>(copyUe());
            }
            if (dir == codec::BDir::Fwd || dir == codec::BDir::Bi) {
                copyUe(); // ref
                copySe(); // mvdx
                copySe(); // mvdy
            }
            if (type == FrameType::B
                && (dir == codec::BDir::Bwd || dir == codec::BDir::Bi)) {
                copySe(); // mvdx (backward)
                copySe(); // mvdy
            }
            break;
          }
          case MbMode::Inter8x8: {
            if (type == FrameType::B) {
                copyUe(); // dir
            }
            for (int p = 0; p < 4; ++p) {
                copyUe(); // ref
                copySe(); // mvdx
                copySe(); // mvdy
            }
            break;
          }
          case MbMode::Intra16:
            copyUe(); // prediction mode
            break;
          case MbMode::Intra4:
            for (int b = 0; b < 16; ++b) {
                copyUe(); // per-block prediction mode
            }
            break;
          case MbMode::Skip:
            VT_PANIC("unreachable");
        }

        copySe(); // qp_delta
        const uint32_t cbp = copyUe();
        VT_ASSERT(cbp < 64, "corrupt cbp in stitch input");
        for (int g = 0; g < 4; ++g) {
            if ((cbp >> g) & 1) {
                for (int b = 0; b < 4; ++b) {
                    copyBlock();
                }
            }
        }
        for (int c = 0; c < 2; ++c) {
            if ((cbp >> (4 + c)) & 1) {
                for (int b = 0; b < 4; ++b) {
                    copyBlock();
                }
            }
        }
    }

    BitReader& br_;
    BitWriter& bw_;
};

} // namespace

std::vector<uint8_t>
stitch(const std::vector<const std::vector<uint8_t>*>& streams)
{
    VT_ASSERT(!streams.empty(), "nothing to stitch");

    // Pass 1: headers must agree on everything but the frame count.
    std::vector<StreamHeader> headers;
    int total_frames = 0;
    for (const auto* stream : streams) {
        BitReader br(*stream);
        headers.push_back(readHeader(br));
        const StreamHeader& h = headers.back();
        const StreamHeader& first = headers.front();
        VT_ASSERT(h.mb_w == first.mb_w && h.mb_h == first.mb_h
                      && h.fps == first.fps
                      && h.deblock_flag == first.deblock_flag
                      && h.alpha_offset == first.alpha_offset
                      && h.beta_offset == first.beta_offset,
                  "stitch inputs disagree on stream parameters");
        total_frames += h.frame_count;
    }

    // Pass 2: one output header, then every frame of every input in
    // order, displays rebased by the frames of the preceding inputs.
    const StreamHeader& first = headers.front();
    BitWriter bw;
    bw.putBits(codec::kMagic, 32);
    bw.putUe(static_cast<uint32_t>(first.mb_w));
    bw.putUe(static_cast<uint32_t>(first.mb_h));
    bw.putUe(static_cast<uint32_t>(first.fps));
    bw.putUe(static_cast<uint32_t>(total_frames));
    bw.putUe(first.deblock_flag);
    bw.putSe(first.alpha_offset);
    bw.putSe(first.beta_offset);

    const int mb_count = first.mb_w * first.mb_h;
    int display_offset = 0;
    for (size_t s = 0; s < streams.size(); ++s) {
        BitReader br(*streams[s]);
        readHeader(br); // Skip past the header; validated in pass 1.
        SyntaxRemux remux(br, bw);
        for (int f = 0; f < headers[s].frame_count; ++f) {
            remux.copyFrame(mb_count, display_offset);
        }
        display_offset += headers[s].frame_count;
    }
    return bw.finish();
}

std::vector<int>
iFrameDisplays(const std::vector<uint8_t>& stream)
{
    BitReader br(stream);
    const StreamHeader h = readHeader(br);
    const int mb_count = h.mb_w * h.mb_h;

    // Walk the syntax through a throwaway writer (the remux machinery is
    // the parser); collect display indices of I frames.
    std::vector<int> displays;
    BitWriter scratch;
    SyntaxRemux remux(br, scratch);
    for (int f = 0; f < h.frame_count; ++f) {
        const auto frame = remux.copyFrame(mb_count, 0);
        if (frame.type == FrameType::I) {
            displays.push_back(frame.display);
        }
    }
    std::sort(displays.begin(), displays.end());
    return displays;
}

uint64_t
streamFingerprint(const std::vector<uint8_t>& stream)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (uint8_t byte : stream) {
        h ^= byte;
        h *= 0x100000001b3ull;
    }
    return h;
}

double
stitchSeconds(size_t stream_bytes)
{
    // Byte-bandwidth model of the remux: a small fixed header cost plus
    // ~250 MB/s of syntax copy. Pure function of the size, so stitch
    // service times are as deterministic as everything else on the farm.
    return 2.0e-5 + static_cast<double>(stream_bytes) * 4.0e-9;
}

} // namespace vtrans::chunk

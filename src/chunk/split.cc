#include "chunk/chunk.h"

#include <algorithm>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "codec/lookahead.h"
#include "codec/transcode.h"
#include "common/status.h"

namespace vtrans::chunk {

SplitPlan
split(const std::vector<uint8_t>& mezzanine,
      const codec::EncoderParams& target, const ChunkOptions& opts)
{
    const codec::DecodeResult decoded = codec::decode(mezzanine);
    VT_ASSERT(!decoded.frames.empty(), "mezzanine decoded to no frames");

    SplitPlan plan;
    plan.width = decoded.width;
    plan.height = decoded.height;
    plan.fps = decoded.fps;
    plan.total_frames = static_cast<int>(decoded.frames.size());

    // Boundary decision: the target's own lookahead rules (scenecut,
    // B-frame adaptation), with the chunking spacing as the keyint. The
    // plan is computed once, on the full clip, so the boundary set is by
    // construction identical for every chunk count.
    codec::EncoderParams planning = target;
    if (opts.chunk_frames > 0) {
        planning.keyint = opts.chunk_frames;
    }
    const auto types = codec::planFrameTypes(decoded.frames, planning);
    for (const auto& f : types) {
        if (f.type == codec::FrameType::I) {
            plan.boundaries.push_back(f.display_index);
        }
    }
    VT_ASSERT(!plan.boundaries.empty() && plan.boundaries.front() == 0,
              "frame-type plan must open with an I frame");

    // Re-encode each segment as a self-contained mezzanine-grade slice:
    // the same near-lossless parameter set the whole-clip mezzanine uses,
    // so chunk jobs stay pure bitstream-in/bitstream-out work with no
    // shared pixel state.
    const codec::EncoderParams slice_params = codec::mezzanineParams();
    for (size_t b = 0; b < plan.boundaries.size(); ++b) {
        Segment seg;
        seg.first_frame = plan.boundaries[b];
        const int end = b + 1 < plan.boundaries.size()
                            ? plan.boundaries[b + 1]
                            : plan.total_frames;
        seg.frame_count = end - seg.first_frame;
        VT_ASSERT(seg.frame_count > 0, "empty segment at frame ",
                  seg.first_frame);
        std::vector<video::Frame> frames(
            decoded.frames.begin() + seg.first_frame,
            decoded.frames.begin() + end);
        codec::Encoder encoder(slice_params,
                               static_cast<double>(decoded.fps));
        seg.source = encoder.encode(frames);
        plan.segments.push_back(std::move(seg));
    }
    return plan;
}

std::vector<std::pair<int, int>>
groupSegments(size_t segments, int max_chunks)
{
    std::vector<std::pair<int, int>> groups;
    if (segments == 0) {
        return groups;
    }
    size_t chunks = max_chunks <= 0 ? segments
                                    : static_cast<size_t>(max_chunks);
    chunks = std::min(chunks, segments);
    const size_t base = segments / chunks;
    const size_t extra = segments % chunks;
    int first = 0;
    for (size_t c = 0; c < chunks; ++c) {
        const int count = static_cast<int>(base + (c < extra ? 1 : 0));
        groups.emplace_back(first, count);
        first += count;
    }
    return groups;
}

} // namespace vtrans::chunk

#include "sched/scheduler.h"

#include <algorithm>
#include <numeric>

#include "common/status.h"

namespace vtrans::sched {

codec::EncoderParams
Task::params() const
{
    codec::EncoderParams p = codec::presetParams(preset);
    p.crf = crf;
    p.refs = refs;
    return p;
}

std::vector<Task>
tableIIITasks()
{
    // Table III of the paper.
    return {
        {"desktop", 30, 8, "veryfast"},
        {"holi", 10, 1, "slow"},
        {"presentation", 35, 6, "veryfast"},
        {"game2", 15, 2, "medium"},
    };
}

namespace {

/** Exhaustive permutation search; exact reference for tiny pools. */
Assignment
solveExhaustive(const std::vector<std::vector<double>>& scores)
{
    const int n_tasks = static_cast<int>(scores.size());
    const int n_servers = static_cast<int>(scores[0].size());
    std::vector<int> perm(n_servers);
    std::iota(perm.begin(), perm.end(), 0);

    Assignment best_assignment(n_tasks, 0);
    double best_score = -1e300;
    do {
        double score = 0.0;
        for (int t = 0; t < n_tasks; ++t) {
            score += scores[t][perm[t]];
        }
        if (score > best_score) {
            best_score = score;
            best_assignment.assign(perm.begin(), perm.begin() + n_tasks);
        }
    } while (std::next_permutation(perm.begin(), perm.end()));
    return best_assignment;
}

} // namespace

Assignment
solveAssignmentHungarian(const std::vector<std::vector<double>>& scores)
{
    const int n_tasks = static_cast<int>(scores.size());
    VT_ASSERT(n_tasks > 0, "empty assignment problem");
    const int n_servers = static_cast<int>(scores[0].size());
    VT_ASSERT(n_servers >= n_tasks, "need at least one server per task");

    // Max-sum -> min-cost on a padded square matrix (potentials method,
    // O(n^3); the classic 1-indexed formulation).
    const int n = n_servers;
    double max_score = 0.0;
    for (const auto& row : scores) {
        for (double v : row) {
            max_score = std::max(max_score, v);
        }
    }
    auto cost = [&](int t, int s) {
        // Padded (dummy) tasks cost nothing everywhere.
        return t < n_tasks ? max_score - scores[t][s] : 0.0;
    };

    std::vector<double> u(n + 1, 0.0);
    std::vector<double> v(n + 1, 0.0);
    std::vector<int> p(n + 1, 0);    // p[col]: row matched to col
    std::vector<int> way(n + 1, 0);
    for (int i = 1; i <= n; ++i) {
        p[0] = i;
        int j0 = 0;
        std::vector<double> minv(n + 1, 1e300);
        std::vector<char> used(n + 1, false);
        do {
            used[j0] = true;
            const int i0 = p[j0];
            double delta = 1e300;
            int j1 = 0;
            for (int j = 1; j <= n; ++j) {
                if (used[j]) {
                    continue;
                }
                const double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                if (cur < minv[j]) {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if (minv[j] < delta) {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for (int j = 0; j <= n; ++j) {
                if (used[j]) {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
        } while (p[j0] != 0);
        do {
            const int j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
        } while (j0 != 0);
    }

    Assignment out(n_tasks, -1);
    for (int j = 1; j <= n; ++j) {
        if (p[j] >= 1 && p[j] <= n_tasks) {
            out[p[j] - 1] = j - 1;
        }
    }
    for (int t = 0; t < n_tasks; ++t) {
        VT_ASSERT(out[t] >= 0, "Hungarian left a task unassigned");
    }
    return out;
}

Assignment
solveAssignment(const std::vector<std::vector<double>>& scores)
{
    const int n_tasks = static_cast<int>(scores.size());
    VT_ASSERT(n_tasks > 0, "empty assignment problem");
    const int n_servers = static_cast<int>(scores[0].size());
    VT_ASSERT(n_servers >= n_tasks, "need at least one server per task");
    if (n_servers <= 8) {
        return solveExhaustive(scores);
    }
    return solveAssignmentHungarian(scores);
}

namespace {

/** The Top-down category a Table IV variant attacks. */
double
targetCategory(const uarch::TopDown& profile, const std::string& name)
{
    if (name == "fe_op") {
        return profile.frontend;
    }
    if (name == "be_op1") {
        return profile.backend_memory;
    }
    if (name == "be_op2") {
        // A bigger window helps both core-resource and memory stalls.
        return profile.backend_core + 0.5 * profile.backend_memory;
    }
    if (name == "bs_op") {
        return profile.bad_speculation;
    }
    VT_FATAL("no fit model for config: ", name);
}

} // namespace

double
fitScore(const uarch::TopDown& baseline_profile, const std::string& name,
         double relief)
{
    // Each Table IV variant attacks one Top-down category; the predicted
    // benefit of running a task there is the weight of that category in
    // the task's baseline profile, scaled by how effectively the variant
    // removes it.
    return relief * targetCategory(baseline_profile, name);
}

std::vector<double>
calibrateRelief(const uarch::TopDown& baseline_profile,
                double baseline_seconds,
                const std::vector<std::string>& config_names,
                const std::vector<double>& config_seconds)
{
    VT_ASSERT(config_names.size() == config_seconds.size(),
              "calibration inputs disagree");
    std::vector<double> relief;
    for (size_t c = 0; c < config_names.size(); ++c) {
        const double gain =
            std::max(0.0, 1.0 - config_seconds[c] / baseline_seconds);
        const double category =
            std::max(1e-3, targetCategory(baseline_profile,
                                          config_names[c]));
        relief.push_back(gain / category);
    }
    return relief;
}

double
SchedulerStudyResult::randomSpeedup() const
{
    double total = 0.0;
    for (size_t t = 0; t < tasks.size(); ++t) {
        double mean = 0.0;
        for (double s : seconds[t]) {
            mean += s;
        }
        mean /= seconds[t].size();
        total += baseline_seconds[t] / mean;
    }
    return total / tasks.size();
}

double
SchedulerStudyResult::smartSpeedup() const
{
    double total = 0.0;
    for (size_t t = 0; t < tasks.size(); ++t) {
        total += baseline_seconds[t] / seconds[t][smart[t]];
    }
    return total / tasks.size();
}

double
SchedulerStudyResult::bestSpeedup() const
{
    double total = 0.0;
    for (size_t t = 0; t < tasks.size(); ++t) {
        total += baseline_seconds[t] / seconds[t][best[t]];
    }
    return total / tasks.size();
}

int
SchedulerStudyResult::smartMatchesBest() const
{
    int matches = 0;
    for (size_t t = 0; t < tasks.size(); ++t) {
        if (smart[t] == best[t]) {
            ++matches;
        }
    }
    return matches;
}

SchedulerStudyResult
evaluateSchedulers(const std::vector<Task>& tasks,
                   const std::vector<std::string>& config_names,
                   const std::vector<double>& baseline_seconds,
                   const std::vector<std::vector<double>>& seconds,
                   const std::vector<uarch::TopDown>& baseline_profiles,
                   const std::vector<double>& relief)
{
    VT_ASSERT(tasks.size() == baseline_seconds.size()
                  && tasks.size() == seconds.size()
                  && tasks.size() == baseline_profiles.size(),
              "scheduler study inputs disagree on task count");

    SchedulerStudyResult result;
    result.tasks = tasks;
    result.config_names = config_names;
    result.baseline_seconds = baseline_seconds;
    result.seconds = seconds;

    // Smart: optimal one-to-one assignment over *predicted* fit scores
    // (the scheduler does not see the tasks' measured times — only its
    // calibration reference and the tasks' baseline profiles).
    std::vector<std::vector<double>> predicted(tasks.size());
    for (size_t t = 0; t < tasks.size(); ++t) {
        for (size_t c = 0; c < config_names.size(); ++c) {
            const double r = c < relief.size() ? relief[c] : 1.0;
            predicted[t].push_back(
                fitScore(baseline_profiles[t], config_names[c], r));
        }
    }
    result.smart = solveAssignment(predicted);

    // Best: per-task argmin of measured time, unconstrained.
    for (size_t t = 0; t < tasks.size(); ++t) {
        int best = 0;
        for (size_t c = 1; c < seconds[t].size(); ++c) {
            if (seconds[t][c] < seconds[t][best]) {
                best = static_cast<int>(c);
            }
        }
        result.best.push_back(best);
    }
    return result;
}

} // namespace vtrans::sched

#ifndef VTRANS_SCHED_SCHEDULER_H_
#define VTRANS_SCHED_SCHEDULER_H_

/**
 * @file
 * The transcoding-task scheduler study (paper §III-D2, Table III, Fig 9):
 * assigning transcoding tasks to servers with different microarchitecture
 * configurations. Three policies are compared —
 *  - random: any server; expected time is the mean over the pool;
 *  - smart: characterization-driven best-fit under a one-to-one
 *    constraint (each task to a different server), solved optimally over
 *    the profile-predicted fit scores;
 *  - best: per-task best server with no constraint (the oracle-ish bound).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "codec/params.h"
#include "uarch/core.h"

namespace vtrans::sched {

/** One transcoding task (a Table III row). */
struct Task
{
    std::string video;   ///< vbench short name.
    int crf = 23;
    int refs = 3;
    std::string preset = "medium";

    /** Expands into the encoder parameter set. */
    codec::EncoderParams params() const;
};

/** The four tasks of Table III. */
std::vector<Task> tableIIITasks();

/** A task -> server assignment (index into the server/config list). */
using Assignment = std::vector<int>;

/**
 * Solves max-sum one-to-one assignment exactly.
 * Dispatches to exhaustive permutation search for tiny pools and to the
 * O(n^3) Hungarian algorithm for larger ones.
 * @param scores scores[task][server]; tasks <= servers.
 */
Assignment solveAssignment(const std::vector<std::vector<double>>& scores);

/**
 * The O(n^3) Hungarian (Kuhn-Munkres) algorithm for max-sum assignment;
 * handles rectangular problems (tasks <= servers) by padding.
 */
Assignment solveAssignmentHungarian(
    const std::vector<std::vector<double>>& scores);

/**
 * Predicts how well a microarchitecture variant fits a task from the
 * task's baseline Top-down profile: each Table IV variant relieves one
 * stall category, so the predicted benefit is the weight of the category
 * it attacks, scaled by the variant's relief effectiveness.
 * @param relief How much of its target category the variant removes
 *        (1.0 = all of it); calibrated from a reference workload.
 */
double fitScore(const uarch::TopDown& baseline_profile,
                const std::string& config_name, double relief = 1.0);

/**
 * Calibrates per-config relief coefficients from one reference workload:
 * relief = (measured speedup fraction) / (target category weight). This
 * is the "profiling results used as a reference" of paper §III-D2.
 * @param baseline_profile Top-down profile of the reference on baseline.
 * @param baseline_seconds Reference runtime on the baseline config.
 * @param config_seconds Reference runtimes per config (pool order).
 */
std::vector<double> calibrateRelief(
    const uarch::TopDown& baseline_profile, double baseline_seconds,
    const std::vector<std::string>& config_names,
    const std::vector<double>& config_seconds);

/** Outcome of the scheduler comparison. */
struct SchedulerStudyResult
{
    std::vector<Task> tasks;
    std::vector<std::string> config_names;      ///< Server pool (size 4).
    std::vector<double> baseline_seconds;       ///< Per task.
    std::vector<std::vector<double>> seconds;   ///< [task][server].
    Assignment smart;                            ///< One-to-one.
    Assignment best;                             ///< Unconstrained.

    /** Mean per-task speedup of the random policy over baseline. */
    double randomSpeedup() const;
    /** Mean per-task speedup of the smart policy. */
    double smartSpeedup() const;
    /** Mean per-task speedup of the best policy. */
    double bestSpeedup() const;
    /** Tasks where smart picked the same server as best. */
    int smartMatchesBest() const;
};

/**
 * Evaluates the three schedulers given measured times and baseline
 * profiles (the simulation itself is driven by core::schedulerStudy).
 */
SchedulerStudyResult evaluateSchedulers(
    const std::vector<Task>& tasks,
    const std::vector<std::string>& config_names,
    const std::vector<double>& baseline_seconds,
    const std::vector<std::vector<double>>& seconds,
    const std::vector<uarch::TopDown>& baseline_profiles,
    const std::vector<double>& relief = {});

} // namespace vtrans::sched

#endif // VTRANS_SCHED_SCHEDULER_H_

#include "farm/dispatch.h"

#include <algorithm>

#include "common/status.h"

namespace vtrans::farm {

std::string
toString(DispatchPolicy policy)
{
    switch (policy) {
      case DispatchPolicy::RoundRobin:
        return "round_robin";
      case DispatchPolicy::Random:
        return "random";
      case DispatchPolicy::Smart:
        return "smart";
      case DispatchPolicy::SmartDeadline:
        return "smart_deadline";
    }
    return "?";
}

DispatchPolicy
dispatchPolicyFromName(const std::string& name)
{
    if (name == "round_robin") {
        return DispatchPolicy::RoundRobin;
    }
    if (name == "random") {
        return DispatchPolicy::Random;
    }
    if (name == "smart") {
        return DispatchPolicy::Smart;
    }
    if (name == "smart_deadline") {
        return DispatchPolicy::SmartDeadline;
    }
    VT_FATAL("unknown dispatch policy: ", name,
             " (round_robin, random, smart, smart_deadline)");
}

void
Predictor::setRelief(const std::vector<std::string>& config_names,
                     const std::vector<double>& relief)
{
    VT_ASSERT(config_names.size() == relief.size(),
              "relief calibration inputs disagree");
    for (size_t i = 0; i < config_names.size(); ++i) {
        relief_[config_names[i]] = relief[i];
    }
}

void
Predictor::learn(const std::string& task_key, double baseline_seconds,
                 const uarch::TopDown& profile)
{
    tasks_[task_key] = TaskProfile{baseline_seconds, profile};
}

bool
Predictor::knows(const std::string& task_key) const
{
    return tasks_.count(task_key) > 0;
}

const Predictor::TaskProfile&
Predictor::profileFor(const std::string& task_key) const
{
    auto it = tasks_.find(task_key);
    VT_ASSERT(it != tasks_.end(),
              "no baseline characterization for task: ", task_key);
    return it->second;
}

double
Predictor::fit(const std::string& task_key,
               const std::string& config_name) const
{
    auto relief = relief_.find(config_name);
    if (relief == relief_.end()) {
        return 0.0; // Baseline or uncalibrated config: no predicted gain.
    }
    const double f = sched::fitScore(profileFor(task_key).profile,
                                     config_name, relief->second);
    // A variant cannot remove more than (almost) all of the runtime.
    return std::clamp(f, 0.0, 0.9);
}

double
Predictor::predict(const std::string& task_key,
                   const std::string& config_name) const
{
    const TaskProfile& tp = profileFor(task_key);
    return tp.baseline_seconds * (1.0 - fit(task_key, config_name));
}

double
Predictor::baselineSeconds(const std::string& task_key) const
{
    return profileFor(task_key).baseline_seconds;
}

namespace {

/** Idle server with the highest predicted fit (ties: lowest id). */
int
bestFitServer(const Job& job, const Predictor& predictor,
              const std::vector<Server>& fleet,
              const std::vector<int>& idle)
{
    int best = idle.front();
    double best_fit = -1.0;
    for (int id : idle) {
        const double f = predictor.fit(job.key(), fleet[id].config);
        if (f > best_fit) {
            best_fit = f;
            best = id;
        }
    }
    return best;
}

/** Idle server with the smallest predicted time (ties: lowest id). */
int
fastestServer(const Job& job, const Predictor& predictor,
              const std::vector<Server>& fleet,
              const std::vector<int>& idle)
{
    int best = idle.front();
    double best_time = predictor.predict(job.key(), fleet[best].config);
    for (int id : idle) {
        const double t = predictor.predict(job.key(), fleet[id].config);
        if (t < best_time) {
            best_time = t;
            best = id;
        }
    }
    return best;
}

} // namespace

int
pickServerForJob(DispatchPolicy policy, const Job& job,
                 const Predictor& predictor,
                 const std::vector<Server>& fleet,
                 const std::vector<int>& idle, double now, Rng& rng,
                 size_t& rr_cursor)
{
    VT_ASSERT(!idle.empty(), "dispatch needs at least one idle server");
    switch (policy) {
      case DispatchPolicy::RoundRobin: {
        // Advance the cursor over fleet ids until it lands on an idle one.
        for (size_t step = 0; step < fleet.size(); ++step) {
            const int id = static_cast<int>(rr_cursor % fleet.size());
            rr_cursor = (rr_cursor + 1) % fleet.size();
            if (std::binary_search(idle.begin(), idle.end(), id)) {
                return id;
            }
        }
        return idle.front(); // Unreachable: idle is non-empty.
      }
      case DispatchPolicy::Random:
        return idle[rng.below(idle.size())];
      case DispatchPolicy::Smart:
        return bestFitServer(job, predictor, fleet, idle);
      case DispatchPolicy::SmartDeadline: {
        const int preferred = bestFitServer(job, predictor, fleet, idle);
        if (job.deadline <= 0.0) {
            return preferred;
        }
        const double finish =
            now + predictor.predict(job.key(), fleet[preferred].config);
        if (finish <= job.deadline) {
            return preferred;
        }
        // The fit choice misses the deadline: fall back to the fastest
        // predicted idle server if one is strictly faster.
        const int fastest = fastestServer(job, predictor, fleet, idle);
        if (predictor.predict(job.key(), fleet[fastest].config)
            < predictor.predict(job.key(), fleet[preferred].config)) {
            return fastest;
        }
        return preferred;
      }
    }
    return idle.front();
}

} // namespace vtrans::farm

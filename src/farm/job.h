#ifndef VTRANS_FARM_JOB_H_
#define VTRANS_FARM_JOB_H_

/**
 * @file
 * The unit of work of the transcoding-farm service layer: a `Job` wraps a
 * `sched::Task` (what to transcode) with the service-level attributes a
 * streaming provider attaches to it — submit time, an optional delivery
 * deadline, a priority class, and a retry budget for transient failures.
 *
 * All farm timestamps are in *simulated* seconds: the same clock the core
 * model's `transcode_seconds` uses, so queue waits, deadlines and service
 * times are directly comparable to the per-run measurements.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sched/scheduler.h"

namespace vtrans::farm {

/** Lifecycle state of a job, as reported by the run log. */
enum class JobState : uint8_t {
    Pending, ///< Submitted, not yet dispatched.
    Running, ///< Dispatched to a server (transient, planning only).
    Done,    ///< Completed successfully.
    Failed,  ///< Exhausted its retry budget.
    Shed,    ///< Rejected by admission control (queue over capacity).
};

/** Human-readable name of a job state ("done", "failed", ...). */
std::string toString(JobState state);

/** A transcode request submitted to the farm. */
struct Job
{
    uint64_t id = 0;          ///< Assigned by the farm at submit time.
    sched::Task task;         ///< What to transcode (video/crf/refs/preset).
    double submit_time = 0.0; ///< Arrival, simulated seconds since start.
    double deadline = 0.0;    ///< Absolute simulated deadline; 0 = none.
    int priority = 0;         ///< Higher runs sooner under Priority policy.
    int retry_budget = 0;     ///< Re-dispatches allowed after a failure.

    // Job-graph edges (chunked transcodes; empty/zero for plain jobs).
    uint64_t parent_id = 0;   ///< Stitch job this chunk feeds; 0 = none.
    int chunk_index = -1;     ///< Position among sibling chunks; -1 = none.
    int chunk_first = 0;      ///< First source frame covered by the chunk.
    int chunk_frames = 0;     ///< Source frames covered by the chunk.
    int chunk_gop = 0;        ///< Boundary spacing the graph was split at.
    int chunk_count = 0;      ///< On a stitch job: number of chunk deps.
    std::vector<uint64_t> blocked_by; ///< Must be Done before dispatch.

    /** >0: known deterministic service time (stitch jobs), bypassing the
     *  characterization-driven predictor. */
    double fixed_seconds = 0.0;

    // Scheduling bookkeeping (maintained by the farm, not the submitter).
    double ready_time = 0.0;  ///< Eligible for dispatch (submit or retry).
    int attempts = 0;         ///< Dispatches so far.

    /** True for a chunk of a split transcode (has a stitch parent). */
    bool isChunk() const { return parent_id != 0; }
    /** True for a stitch job (waits on chunk dependencies). */
    bool isStitch() const { return !blocked_by.empty(); }

    /**
     * Unique task signature: same key -> identical transcode work. Chunk
     * jobs fold their graph geometry (index, frame span, boundary
     * spacing) into the key, so two chunks of the same task — or the
     * same span split at different spacings — never alias in the result
     * cache or the characterization profiles.
     */
    std::string key() const;
};

/**
 * Deterministic fault injection: fails a configurable fraction of run
 * attempts so retry/backoff and graceful-degradation paths can be
 * exercised reproducibly. The verdict for a given (job, attempt) pair is
 * a pure function of the seed — independent of dispatch order, worker
 * count, and wall-clock — so a faulty farm is exactly as deterministic
 * as a healthy one.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(double rate = 0.0, uint64_t seed = 0x5eedull)
        : rate_(rate), seed_(seed)
    {
    }

    /** True if attempt number `attempt` (0-based) of `job_id` fails. */
    bool
    fails(uint64_t job_id, int attempt) const
    {
        if (rate_ <= 0.0) {
            return false;
        }
        // Derive an independent stream per (job, attempt) so the verdict
        // does not depend on evaluation order.
        Rng rng(seed_ ^ (job_id * 0x9e3779b97f4a7c15ull)
                ^ (static_cast<uint64_t>(attempt) * 0xbf58476d1ce4e5b9ull));
        return rng.chance(rate_);
    }

    /** The configured failure probability per attempt. */
    double rate() const { return rate_; }

  private:
    double rate_;
    uint64_t seed_;
};

} // namespace vtrans::farm

#endif // VTRANS_FARM_JOB_H_

#include "farm/job.h"

namespace vtrans::farm {

std::string
toString(JobState state)
{
    switch (state) {
      case JobState::Pending:
        return "pending";
      case JobState::Running:
        return "running";
      case JobState::Done:
        return "done";
      case JobState::Failed:
        return "failed";
      case JobState::Shed:
        return "shed";
    }
    return "?";
}

std::string
Job::key() const
{
    return task.video + "/" + task.preset + "/c" + std::to_string(task.crf)
           + "/r" + std::to_string(task.refs);
}

} // namespace vtrans::farm

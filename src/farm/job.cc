#include "farm/job.h"

namespace vtrans::farm {

std::string
toString(JobState state)
{
    switch (state) {
      case JobState::Pending:
        return "pending";
      case JobState::Running:
        return "running";
      case JobState::Done:
        return "done";
      case JobState::Failed:
        return "failed";
      case JobState::Shed:
        return "shed";
    }
    return "?";
}

std::string
Job::key() const
{
    std::string key = task.video + "/" + task.preset + "/c"
                      + std::to_string(task.crf) + "/r"
                      + std::to_string(task.refs);
    if (isChunk()) {
        key += "/g" + std::to_string(chunk_gop) + "/k"
               + std::to_string(chunk_index) + "@"
               + std::to_string(chunk_first) + "+"
               + std::to_string(chunk_frames);
    }
    if (isStitch()) {
        key += "/g" + std::to_string(chunk_gop) + "/stitch"
               + std::to_string(chunk_count);
    }
    return key;
}

} // namespace vtrans::farm

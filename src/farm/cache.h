#ifndef VTRANS_FARM_CACHE_H_
#define VTRANS_FARM_CACHE_H_

/**
 * @file
 * Sharded, content-addressed result cache for the transcoding farm.
 *
 * At millions-of-users scale the same (video, config) request recurs
 * constantly, and every recurrence the farm re-encodes is paid-for work a
 * cache hit makes free. The cache stores one immutable `core::RunResult`
 * per *content digest* — a `CacheKey` derived from the source video's
 * byte fingerprint, the canonicalized encoder parameters (see
 * `codec::canonicalDigest`), and the simulated server class the result
 * was measured on — never from raw `Job::key()` strings. Two jobs that
 * describe identical work therefore alias to one entry regardless of how
 * their requests were spelled, which graph they belong to, or which
 * drain window submitted them.
 *
 * ## Structure
 *
 * The store is N-way sharded by key hash. Each shard owns a mutex, an
 * LRU list (most-recent first; the entry nodes themselves carry the
 * links via `std::list` splicing, so a touch is O(1) and allocation
 * free), and a hash index into that list. Byte and entry budgets are
 * enforced per shard (total budget / shard count): inserting past the
 * budget evicts from the LRU tail until the shard fits again, so
 * `stats().bytes` is within budget after every eviction. An entry whose
 * own footprint exceeds a whole shard's budget is returned to the caller
 * but not retained (`rejected` in the stats).
 *
 * ## Single-flight
 *
 * `getOrCompute` guarantees *exactly one* execution of the compute
 * function per key, even under concurrent identical requests: the first
 * caller becomes the computer, later callers block on the in-flight
 * entry and receive the computer's value (`inflight_waits` counts them).
 * There is no thundering herd and no duplicate encode. If the computer
 * throws, one waiter takes over; the exception propagates only to the
 * thrower.
 *
 * ## Time
 *
 * TTL expiry runs on an explicit logical clock (`advance`), not wall
 * time: the farm advances it by each drain's simulated makespan, tests
 * drive it directly. Every cache decision is therefore a pure function
 * of the operation sequence — deterministic at any thread count for any
 * serial sequence of operations.
 *
 * Values are returned as `shared_ptr<const RunResult>` pins: eviction
 * removes an entry from the cache's index and byte accounting, but a
 * drain that already holds the pin keeps using the value safely.
 */

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/workload.h"

namespace vtrans::farm {

/**
 * A 128-bit content digest. Built by `makeCacheKey` from independent
 * FNV-1a streams over the components, so distinct work practically
 * never collides and the low word doubles as the shard/index hash.
 */
struct CacheKey
{
    uint64_t hi = 0;
    uint64_t lo = 0;

    bool operator==(const CacheKey& o) const
    {
        return hi == o.hi && lo == o.lo;
    }
    bool operator!=(const CacheKey& o) const { return !(*this == o); }
    bool operator<(const CacheKey& o) const
    {
        return hi != o.hi ? hi < o.hi : lo < o.lo;
    }
};

struct CacheKeyHash
{
    size_t operator()(const CacheKey& k) const
    {
        return static_cast<size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ull));
    }
};

/** FNV-1a 64 over a byte buffer (the cache's content fingerprint). */
uint64_t fnv1a(const uint8_t* data, size_t size,
               uint64_t seed = 0xcbf29ce484222325ull);

/** FNV-1a 64 over a string (key components, config names). */
uint64_t fnv1a(const std::string& text,
               uint64_t seed = 0xcbf29ce484222325ull);

/**
 * Derives the content digest of one unit of farm work:
 * @param source_fp fingerprint of the exact source bytes the job
 *        encodes (whole mezzanine, or the chunk's slice set);
 * @param params_digest `codec::canonicalDigest` of the encoder
 *        parameters (order- and default-insensitive);
 * @param server_class the simulated core-config name the result was
 *        measured on. The encoded bytes are class-invariant by
 *        construction, but a `RunResult` also carries the per-class
 *        microarchitectural counters, so the class is part of the
 *        result's identity.
 */
CacheKey makeCacheKey(uint64_t source_fp, uint64_t params_digest,
                      const std::string& server_class);

/** Sizing and lifetime policy of a ResultCache. */
struct CacheOptions
{
    size_t shards = 8;            ///< Rounded up to a power of two.
    size_t max_bytes = 256 << 20; ///< Total byte budget (split per shard).
    size_t max_entries = 4096;    ///< Total entry budget (split per shard).
    double ttl_seconds = 0.0;     ///< Age limit on the logical clock;
                                  ///< 0 = entries never expire.
};

/** Aggregate counters over all shards (hits + misses == lookups). */
struct CacheStats
{
    uint64_t lookups = 0;        ///< Resolved getOrCompute/peek calls.
    uint64_t hits = 0;           ///< Served from a ready entry.
    uint64_t misses = 0;         ///< Required a compute.
    uint64_t inflight_waits = 0; ///< Callers that blocked on a compute.
    uint64_t evictions = 0;      ///< Entries evicted for budget.
    uint64_t expirations = 0;    ///< Entries dropped past their TTL.
    uint64_t rejected = 0;       ///< Values too large to retain.
    uint64_t bytes = 0;          ///< Current retained bytes.
    uint64_t entries = 0;        ///< Current retained entries.
};

/** The sharded, single-flight result store. Thread-safe throughout. */
class ResultCache
{
  public:
    using Value = std::shared_ptr<const core::RunResult>;
    using ComputeFn = std::function<core::RunResult()>;

    explicit ResultCache(CacheOptions options = {});

    ResultCache(const ResultCache&) = delete;
    ResultCache& operator=(const ResultCache&) = delete;

    /**
     * Returns the cached value for `key`, computing it at most once:
     * a ready entry is served (LRU-touched); an in-flight entry is
     * waited on; an absent entry makes this caller the single computer.
     * The returned pin stays valid regardless of later eviction.
     */
    Value getOrCompute(const CacheKey& key, const ComputeFn& compute);

    /**
     * Returns the ready value for `key` or nullptr, counting the lookup
     * (hit or miss) and touching the LRU. Does not wait on in-flight
     * computes and never computes.
     */
    Value peek(const CacheKey& key);

    /**
     * True if a ready, unexpired entry exists. Quiet: no stats, no LRU
     * touch — the farm planner snapshots prior contents with this.
     */
    bool contains(const CacheKey& key) const;

    /** Advances the logical TTL clock by `seconds` (>= 0). */
    void advance(double seconds);

    /** The logical clock (sum of all `advance` calls). */
    double now() const;

    /** Aggregated counters over all shards. */
    CacheStats stats() const;

    const CacheOptions& options() const { return options_; }

    /** Shard count after power-of-two rounding. */
    size_t shardCount() const { return shards_.size(); }

    /**
     * The retained footprint of a value: the result struct itself plus
     * its owned buffers (encoded output, per-frame statistics).
     */
    static size_t entryBytes(const core::RunResult& result);

  private:
    struct Entry
    {
        CacheKey key;
        Value value;
        size_t bytes = 0;
        double inserted = 0.0; ///< Logical-clock time of insertion.
    };

    /** Single-flight rendezvous: waiters hold the Flight and sleep on
     *  the shard cv until the computer publishes or aborts. */
    struct Flight
    {
        bool done = false;
        bool aborted = false;
        Value value;
    };

    struct Shard
    {
        mutable std::mutex mu;
        std::condition_variable cv;
        std::list<Entry> lru; ///< Front = most recently used.
        std::unordered_map<CacheKey, std::list<Entry>::iterator,
                           CacheKeyHash>
            index;
        std::unordered_map<CacheKey, std::shared_ptr<Flight>, CacheKeyHash>
            inflight;
        size_t bytes = 0;

        uint64_t lookups = 0;
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t inflight_waits = 0;
        uint64_t evictions = 0;
        uint64_t expirations = 0;
        uint64_t rejected = 0;
    };

    Shard& shardFor(const CacheKey& key);
    const Shard& shardFor(const CacheKey& key) const;

    /** True if the entry is past its TTL at logical time `now`. */
    bool expired(const Entry& entry, double now) const;

    /** Drops `it` from the shard (no stats; caller counts). */
    static void dropEntry(Shard& shard,
                          std::list<Entry>::iterator it);

    /** Evicts from the LRU tail until the shard is within budget. */
    void evictToFit(Shard& shard);

    /** Locked lookup: returns the ready value (touching the LRU) or
     *  nullptr, dropping the entry if expired. */
    Value lookupLocked(Shard& shard, const CacheKey& key, double now);

    CacheOptions options_;
    size_t shard_bytes_ = 0;   ///< Per-shard byte budget.
    size_t shard_entries_ = 0; ///< Per-shard entry budget.
    size_t shard_mask_ = 0;
    std::vector<std::unique_ptr<Shard>> shards_;

    mutable std::mutex clock_mu_;
    double clock_ = 0.0;
};

} // namespace vtrans::farm

#endif // VTRANS_FARM_CACHE_H_

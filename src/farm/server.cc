#include "farm/server.h"

#include <chrono>

#include "common/status.h"
#include "obs/metrics.h"

namespace vtrans::farm {

namespace {

/** Runs one pool task, recording wall time + count into the process
 *  metrics registry (shared by the inline and threaded paths). */
void
runPoolTask(const std::function<void()>& task)
{
    const auto start = std::chrono::steady_clock::now();
    task();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - start)
            .count();
    obs::metrics()
        .counter("pool_tasks_total", "Tasks executed by the worker pool")
        .inc();
    obs::metrics()
        .histogram("pool_task_wall_seconds",
                   "Wall-clock duration of worker-pool tasks")
        .observe(seconds);
}

} // namespace

std::vector<Server>
makeFleet(const std::vector<uarch::CoreParams>& pool, int replicas)
{
    VT_ASSERT(!pool.empty(), "farm fleet needs at least one config");
    VT_ASSERT(replicas >= 1, "farm fleet needs at least one replica");
    std::vector<Server> fleet;
    int id = 0;
    for (const auto& core : pool) {
        for (int r = 0; r < replicas; ++r) {
            Server s;
            s.id = id++;
            s.config = core.name;
            s.name = core.name + "#" + std::to_string(r);
            s.replica = r;
            s.core = core;
            fleet.push_back(std::move(s));
        }
    }
    return fleet;
}

core::RunResult
runOnServer(const Server& server, const sched::Task& task,
            double clip_seconds)
{
    core::RunConfig run;
    run.video = task.video;
    run.seconds = clip_seconds;
    run.params = task.params();
    run.core = server.core;
    return core::runInstrumented(run);
}

WorkerPool::WorkerPool(int workers) : workers_(workers < 1 ? 1 : workers)
{
    // A single-worker pool runs batches inline: no threads, and the
    // execution order is exactly the batch order (the serial reference).
    if (workers_ == 1) {
        return;
    }
    threads_.reserve(workers_);
    for (int i = 0; i < workers_; ++i) {
        threads_.emplace_back([this] { workerMain(); });
    }
}

WorkerPool::~WorkerPool()
{
    stop();
}

void
WorkerPool::workerMain()
{
    std::unique_lock<std::mutex> lock(mu_);
    uint64_t seen_generation = 0;
    while (true) {
        work_cv_.wait(lock, [&] {
            return stopping_
                   || (batch_ != nullptr && generation_ != seen_generation);
        });
        if (stopping_) {
            return;
        }
        seen_generation = generation_;
        while (batch_ != nullptr && next_ < batch_->size()) {
            auto& task = (*batch_)[next_++];
            ++running_;
            lock.unlock();
            runPoolTask(task);
            lock.lock();
            --running_;
        }
        if (batch_ != nullptr && next_ >= batch_->size() && running_ == 0) {
            done_cv_.notify_all();
        }
    }
}

void
WorkerPool::run(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty()) {
        return;
    }
    obs::metrics()
        .counter("pool_batches_total", "Task batches run on the worker pool")
        .inc();
    if (threads_.empty()) {
        for (auto& task : tasks) {
            runPoolTask(task);
        }
        return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    batch_ = &tasks;
    next_ = 0;
    ++generation_;
    work_cv_.notify_all();
    done_cv_.wait(lock,
                  [&] { return next_ >= tasks.size() && running_ == 0; });
    batch_ = nullptr;
}

void
WorkerPool::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
        work_cv_.notify_all();
    }
    for (auto& t : threads_) {
        if (t.joinable()) {
            t.join();
        }
    }
    threads_.clear();
}

} // namespace vtrans::farm

#ifndef VTRANS_FARM_QUEUE_H_
#define VTRANS_FARM_QUEUE_H_

/**
 * @file
 * A thread-safe bounded MPMC job queue with admission control and
 * pluggable ordering policies:
 *  - Fifo: by ready time (arrival order; retries re-enter when ready);
 *  - Priority: higher priority first, FIFO within a class;
 *  - Edf: earliest absolute deadline first (deadline-less jobs last).
 *
 * Two usage modes share one implementation:
 *  - MPMC mode: producers `waitPush`/`tryPush`, consumers `waitPop`;
 *    `close()` releases all waiters (a pop on a closed empty queue
 *    returns nullopt). This is the concurrent submission path.
 *  - Simulation mode: the farm's discrete-event dispatcher uses the
 *    time-aware calls (`tryPop(now)`, `peekWindow`, `nextReadyAfter`) to
 *    pop only jobs whose ready time has arrived in simulated time.
 *
 * ## Job graphs
 *
 * A job whose `blocked_by` list is non-empty is held until every listed
 * dependency has been reported Done via `markDone` — it is invisible to
 * every pop/peek call until then (a stitch job can never dispatch before
 * its chunks). If any dependency is reported Failed via `markFailed`,
 * the blocked job is dead: it stays held and must be collected with
 * `takeDead` so the caller can fail the graph.
 */

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "farm/job.h"

namespace vtrans::farm {

/** Orderings a queue can serve jobs in. */
enum class QueuePolicy : uint8_t { Fifo, Priority, Edf };

/** Human-readable policy name ("fifo", "priority", "edf"). */
std::string toString(QueuePolicy policy);
/** Parses a policy name; fatal error on an unknown name. */
QueuePolicy queuePolicyFromName(const std::string& name);

/** Thread-safe bounded MPMC queue of jobs (see file comment). */
class JobQueue
{
  public:
    /** Creates a queue serving `policy` with room for `capacity` jobs. */
    JobQueue(QueuePolicy policy, size_t capacity);

    /** Enqueues if there is room; false = shed (queue full or closed). */
    bool tryPush(Job job);

    /** Blocks while full; false only if the queue was closed. */
    bool waitPush(Job job);

    /** Pops the best job per policy, ignoring ready times. */
    std::optional<Job> tryPop();

    /** Pops the best job per policy with ready_time <= now. */
    std::optional<Job> tryPop(double now);

    /** Blocks until a job is available or the queue is closed and empty. */
    std::optional<Job> waitPop();

    /**
     * The first `limit` eligible jobs (ready_time <= now) in policy
     * order — the dispatcher's matching window. Returns copies.
     */
    std::vector<Job> peekWindow(double now, size_t limit) const;

    /** Removes the job with the given id; false if not present. */
    bool remove(uint64_t id);

    /** Records a dependency as completed; jobs blocked only on Done
     *  dependencies become eligible (waiters are woken). */
    void markDone(uint64_t id);

    /** Records a dependency as failed; jobs blocked on it become dead
     *  (collectable via `takeDead`; waiters are woken). */
    void markFailed(uint64_t id);

    /** Removes and returns every held job with a failed dependency. */
    std::vector<Job> takeDead();

    /** Smallest ready_time strictly greater than `now` (or nullopt). */
    std::optional<double> nextReadyAfter(double now) const;

    /** Marks the queue closed: pushes fail, waiters wake. */
    void close();

    size_t size() const;
    bool empty() const;
    size_t capacity() const { return capacity_; }
    QueuePolicy policy() const { return policy_; }
    bool closed() const;

  private:
    /** True if `a` should be served before `b` under the policy. */
    bool before(const Job& a, const Job& b) const;

    /** Ready and unblocked: every dependency Done, none failed, and
     *  ready_time <= now (mu_ must be held). */
    bool eligible(const Job& job, double now) const;

    /** True if any dependency of `job` has failed (mu_ must be held). */
    bool deadlocked(const Job& job) const;

    /** Index of the best eligible job, or -1 (mu_ must be held). */
    int bestIndex(double now) const;

    QueuePolicy policy_;
    size_t capacity_;

    mutable std::mutex mu_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::vector<Job> jobs_;
    std::set<uint64_t> done_;    ///< Dependency ids reported complete.
    std::set<uint64_t> failed_;  ///< Dependency ids reported failed.
    bool closed_ = false;
};

} // namespace vtrans::farm

#endif // VTRANS_FARM_QUEUE_H_

#ifndef VTRANS_FARM_DISPATCH_H_
#define VTRANS_FARM_DISPATCH_H_

/**
 * @file
 * Online dispatch: which idle server gets the next job.
 *
 * The paper's §III-D2 smart scheduler solves a one-shot assignment from
 * profile-predicted fit scores. The farm generalizes it to continuous
 * operation: at every dispatch opportunity the policy sees the idle
 * subset of the fleet and the job at hand, and decides from *predicted*
 * times only — a real dispatcher cannot observe a job's actual runtime
 * before running it. Predictions come from the `Predictor`: per-task
 * baseline profiles (the characterization step) combined with per-config
 * relief coefficients calibrated from a reference workload, exactly the
 * machinery of `sched::fitScore`/`sched::calibrateRelief`.
 */

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "farm/job.h"
#include "farm/server.h"
#include "sched/scheduler.h"
#include "uarch/core.h"

namespace vtrans::farm {

/** Server-selection policies for online dispatch. */
enum class DispatchPolicy : uint8_t {
    RoundRobin,    ///< Next idle server in rotation.
    Random,        ///< Uniform over the idle subset (seeded).
    Smart,         ///< Highest predicted fit among idle servers.
    SmartDeadline, ///< Smart, but prefers a faster-predicted idle server
                   ///< when the fit choice would miss the job's deadline.
};

/** Human-readable policy name ("round_robin", "random", ...). */
std::string toString(DispatchPolicy policy);
/** Parses a policy name; fatal error on an unknown name. */
DispatchPolicy dispatchPolicyFromName(const std::string& name);

/**
 * Calibrated per-(task, config) transcode-time prediction.
 *
 * `learn()` records a task signature's baseline characterization (runtime
 * and Top-down profile on the baseline config); `setRelief()` installs
 * the per-config relief coefficients calibrated from a reference
 * workload. `predict()` then projects the baseline runtime through the
 * fit model: a config that relieves fraction f of its target stall
 * category is predicted to run the task in baseline * (1 - f).
 */
class Predictor
{
  public:
    /** Installs calibrated relief coefficients, one per config name. */
    void setRelief(const std::vector<std::string>& config_names,
                   const std::vector<double>& relief);

    /** Records a task signature's baseline characterization. */
    void learn(const std::string& task_key, double baseline_seconds,
               const uarch::TopDown& profile);

    /** True once `learn()` has seen this task signature. */
    bool knows(const std::string& task_key) const;

    /**
     * Predicted fractional speedup of `config_name` over baseline for
     * this task (0 for the baseline config or an unknown config).
     */
    double fit(const std::string& task_key,
               const std::string& config_name) const;

    /** Predicted transcode seconds of the task on the config. */
    double predict(const std::string& task_key,
                   const std::string& config_name) const;

    /** The task's measured baseline seconds (fatal if unknown). */
    double baselineSeconds(const std::string& task_key) const;

  private:
    struct TaskProfile
    {
        double baseline_seconds = 0.0;
        uarch::TopDown profile;
    };

    const TaskProfile& profileFor(const std::string& task_key) const;

    std::map<std::string, TaskProfile> tasks_;
    std::map<std::string, double> relief_;
};

/**
 * Picks a server for `job` from the idle subset (`idle` holds fleet ids;
 * must be non-empty and sorted ascending). Deterministic given the rng
 * state and round-robin cursor, which the caller owns and threads through
 * successive calls.
 */
int pickServerForJob(DispatchPolicy policy, const Job& job,
                     const Predictor& predictor,
                     const std::vector<Server>& fleet,
                     const std::vector<int>& idle, double now, Rng& rng,
                     size_t& rr_cursor);

} // namespace vtrans::farm

#endif // VTRANS_FARM_DISPATCH_H_

#ifndef VTRANS_FARM_RUNLOG_H_
#define VTRANS_FARM_RUNLOG_H_

/**
 * @file
 * Run-log observability for the farm: one structured record per job
 * (JSON-lines serializable) plus aggregate service metrics — throughput,
 * latency percentiles, per-server utilization, shed/failed counts, and
 * prediction error — printable via the common table writer.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/workload.h"
#include "farm/job.h"
#include "farm/server.h"
#include "uarch/core.h"

namespace vtrans::farm {

/**
 * A stable 64-bit FNV-1a digest over every scalar a run produced (core
 * counters, Top-down slots, encode statistics, derived rates). Two runs
 * fingerprint equal iff their results are bit-identical — the check the
 * determinism-under-concurrency tests rely on.
 */
uint64_t fingerprint(const core::RunResult& result);

/** Everything the farm logs about one job. */
struct JobRecord
{
    uint64_t id = 0;
    std::string video;
    std::string preset;
    int crf = 0;
    int refs = 0;
    int priority = 0;
    JobState state = JobState::Pending;

    // Job-graph fields (chunked transcodes; defaults for plain jobs).
    std::string kind = "transcode"; ///< "transcode", "chunk" or "stitch".
    uint64_t parent_id = 0;   ///< Stitch job a chunk feeds (0 = none).
    int chunk_index = 0;      ///< Position among sibling chunks.
    int chunk_count = 0;      ///< On a stitch record: chunks in the graph.

    int server = -1;          ///< Fleet id of the final attempt (-1: shed).
    std::string server_name;  ///< "be_op1#0" (empty: shed).
    int attempts = 0;         ///< Dispatches, including the final one.
    bool cache_hit = false;   ///< Final attempt served from the result
                              ///< cache (ready entry or in-flight wait).

    // Simulated-time trajectory (seconds since farm start).
    double submit = 0.0;
    double start = 0.0;       ///< First dispatch.
    double finish = 0.0;      ///< Final attempt completed (or failed).
    double queue_wait = 0.0;  ///< start - submit.
    double deadline = 0.0;    ///< 0 = none.

    double predicted_seconds = 0.0; ///< Dispatch-time prediction (final).
    double actual_seconds = 0.0;    ///< Measured simulated transcode time.

    // Measured outcome of the final successful attempt.
    double psnr = 0.0;
    double bitrate_kbps = 0.0;
    uarch::TopDown topdown;
    uint64_t result_fingerprint = 0;

    // Stitch records only: boundary cost vs the unchunked whole-video
    // encode of the same task (stitched minus unchunked).
    double delta_psnr_db = 0.0;
    double delta_bitrate_kbps = 0.0;

    /** finish - submit (the service latency). */
    double latency() const { return finish - submit; }
    /** True if the job completed and made its deadline (or had none). */
    bool deadlineMet() const;
};

/** Aggregate farm service metrics derived from the records. */
struct FarmMetrics
{
    size_t submitted = 0;
    size_t completed = 0;
    size_t failed = 0;
    size_t shed = 0;
    size_t retries = 0;         ///< Extra attempts beyond the first.

    double makespan = 0.0;      ///< Last finish (simulated seconds).
    double throughput = 0.0;    ///< Completed jobs per simulated second.
    double mean_latency = 0.0;
    double p50_latency = 0.0;
    double p95_latency = 0.0;
    double p99_latency = 0.0;
    double mean_queue_wait = 0.0;
    double mean_prediction_error = 0.0; ///< Mean |pred - actual| / actual.
    size_t deadline_misses = 0;

    std::vector<double> server_busy;        ///< Busy sim-seconds per server.
    std::vector<size_t> server_jobs;        ///< Attempts per server.
    std::vector<std::string> server_names;

    /** Busy fraction of a server over the makespan. */
    double utilization(size_t server) const;
};

/** The farm's structured run log. */
class RunLog
{
  public:
    /** Appends one job record. */
    void add(JobRecord record);

    /** All records, in completion order. */
    const std::vector<JobRecord>& records() const { return records_; }

    /** The record of a job id (fatal if absent). */
    const JobRecord& record(uint64_t job_id) const;

    /** Computes aggregate metrics over the fleet. */
    FarmMetrics metrics(const std::vector<Server>& fleet) const;

    /** One JSON object per record, newline separated. */
    std::string toJsonl() const;

    /** Writes the JSON-lines log to a file. Returns false on I/O error
     *  (unwritable path, disk full) instead of aborting — losing a log
     *  must not lose the run's results. */
    [[nodiscard]] bool writeJsonl(const std::string& path) const;

    /** Renders the aggregate metrics as a printable table. */
    Table metricsTable(const std::vector<Server>& fleet) const;

    /** The p-th percentile (0..100) of a sample by linear interpolation
     *  (delegates to vtrans::percentile, the shared definition also used
     *  by the observability metrics histograms). */
    static double percentile(std::vector<double> values, double p);

  private:
    std::vector<JobRecord> records_;
};

} // namespace vtrans::farm

#endif // VTRANS_FARM_RUNLOG_H_

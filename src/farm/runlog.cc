#include "farm/runlog.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/stats.h"
#include "common/status.h"

namespace vtrans::farm {

namespace {

/** FNV-1a over the bytes of one 64-bit word. */
void
mix(uint64_t& h, uint64_t word)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (word >> (8 * i)) & 0xffu;
        h *= 0x100000001b3ull;
    }
}

void
mix(uint64_t& h, double value)
{
    uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    mix(h, bits);
}

} // namespace

uint64_t
fingerprint(const core::RunResult& result)
{
    uint64_t h = 0xcbf29ce484222325ull;
    const auto& c = result.core;
    mix(h, c.instructions);
    mix(h, c.cycles);
    mix(h, c.branches);
    mix(h, c.branch_mispredicts);
    mix(h, c.l1d_accesses);
    mix(h, c.l1d_misses);
    mix(h, c.l2_misses);
    mix(h, c.l3_misses);
    mix(h, c.l1i_accesses);
    mix(h, c.l1i_misses);
    mix(h, c.itlb_misses);
    mix(h, c.btb_misses);
    mix(h, c.slots_total);
    mix(h, c.slots_retiring);
    mix(h, c.slots_frontend);
    mix(h, c.slots_bad_spec);
    mix(h, c.slots_backend_memory);
    mix(h, c.slots_backend_core);
    mix(h, c.slots_rob_stall);
    mix(h, c.slots_rs_stall);
    mix(h, c.slots_sb_stall);
    const auto& e = result.encode;
    mix(h, e.total_bits);
    mix(h, e.bitrate_kbps);
    mix(h, e.psnr);
    mix(h, static_cast<uint64_t>(e.i_frames));
    mix(h, static_cast<uint64_t>(e.p_frames));
    mix(h, static_cast<uint64_t>(e.b_frames));
    mix(h, e.mb_skip);
    mix(h, e.mb_inter16);
    mix(h, e.mb_inter8x8);
    mix(h, e.mb_intra16);
    mix(h, e.mb_intra4);
    mix(h, e.me_candidates);
    mix(h, result.transcode_seconds);
    mix(h, result.psnr);
    mix(h, result.bitrate_kbps);
    return h;
}

bool
JobRecord::deadlineMet() const
{
    if (state != JobState::Done || deadline <= 0.0) {
        return state == JobState::Done;
    }
    return finish <= deadline;
}

double
FarmMetrics::utilization(size_t server) const
{
    if (server >= server_busy.size() || makespan <= 0.0) {
        return 0.0;
    }
    return server_busy[server] / makespan;
}

void
RunLog::add(JobRecord record)
{
    records_.push_back(std::move(record));
}

const JobRecord&
RunLog::record(uint64_t job_id) const
{
    for (const auto& r : records_) {
        if (r.id == job_id) {
            return r;
        }
    }
    VT_FATAL("no run-log record for job ", job_id);
}

double
RunLog::percentile(std::vector<double> values, double p)
{
    return vtrans::percentile(std::move(values), p);
}

FarmMetrics
RunLog::metrics(const std::vector<Server>& fleet) const
{
    FarmMetrics m;
    m.server_busy.assign(fleet.size(), 0.0);
    m.server_jobs.assign(fleet.size(), 0);
    for (const auto& s : fleet) {
        m.server_names.push_back(s.name);
    }

    std::vector<double> latencies;
    double wait_total = 0.0;
    double err_total = 0.0;
    size_t err_count = 0;
    for (const auto& r : records_) {
        ++m.submitted;
        switch (r.state) {
          case JobState::Shed:
            ++m.shed;
            continue;
          case JobState::Failed:
            ++m.failed;
            break;
          case JobState::Done:
            ++m.completed;
            latencies.push_back(r.latency());
            if (!r.deadlineMet()) {
                ++m.deadline_misses;
            }
            break;
          default:
            break;
        }
        m.retries += r.attempts > 0 ? r.attempts - 1 : 0;
        wait_total += r.queue_wait;
        m.makespan = std::max(m.makespan, r.finish);
        if (r.server >= 0
            && static_cast<size_t>(r.server) < fleet.size()) {
            // Busy time of the *final* attempt; earlier attempts may have
            // run elsewhere and are folded into the retry count.
            m.server_busy[r.server] += r.actual_seconds;
            m.server_jobs[r.server] += 1;
        }
        if (r.state == JobState::Done && r.actual_seconds > 0.0) {
            err_total += std::abs(r.predicted_seconds - r.actual_seconds)
                         / r.actual_seconds;
            ++err_count;
        }
    }
    const size_t serviced = m.completed + m.failed;
    if (serviced > 0) {
        m.mean_queue_wait = wait_total / serviced;
    }
    if (!latencies.empty()) {
        double total = 0.0;
        for (double l : latencies) {
            total += l;
        }
        m.mean_latency = total / latencies.size();
        m.p50_latency = percentile(latencies, 50.0);
        m.p95_latency = percentile(latencies, 95.0);
        m.p99_latency = percentile(latencies, 99.0);
    }
    if (m.makespan > 0.0) {
        m.throughput = m.completed / m.makespan;
    }
    if (err_count > 0) {
        m.mean_prediction_error = err_total / err_count;
    }
    return m;
}

namespace {

/** Minimal JSON string escaping (quotes, backslashes, control chars). */
std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        if (ch == '"' || ch == '\\') {
            out.push_back('\\');
            out.push_back(ch);
        } else if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
            out += buf;
        } else {
            out.push_back(ch);
        }
    }
    return out;
}

void
field(std::ostringstream& os, const char* name, const std::string& value,
      bool first = false)
{
    os << (first ? "" : ",") << '"' << name << "\":\"" << jsonEscape(value)
       << '"';
}

void
field(std::ostringstream& os, const char* name, double value)
{
    os << ",\"" << name << "\":" << formatDouble(value, 6);
}

void
field(std::ostringstream& os, const char* name, int64_t value)
{
    os << ",\"" << name << "\":" << value;
}

} // namespace

std::string
RunLog::toJsonl() const
{
    std::ostringstream os;
    for (const auto& r : records_) {
        std::ostringstream line;
        line << "{\"job\":" << r.id;
        field(line, "video", r.video);
        field(line, "preset", r.preset);
        field(line, "crf", static_cast<int64_t>(r.crf));
        field(line, "refs", static_cast<int64_t>(r.refs));
        field(line, "priority", static_cast<int64_t>(r.priority));
        field(line, "kind", r.kind);
        field(line, "parent_id", static_cast<int64_t>(r.parent_id));
        field(line, "chunk_index", static_cast<int64_t>(r.chunk_index));
        field(line, "chunk_count", static_cast<int64_t>(r.chunk_count));
        line << ",\"state\":\"" << toString(r.state) << '"';
        field(line, "server", static_cast<int64_t>(r.server));
        line << ",\"server_name\":\"" << jsonEscape(r.server_name) << '"';
        field(line, "attempts", static_cast<int64_t>(r.attempts));
        field(line, "submit", r.submit);
        field(line, "start", r.start);
        field(line, "finish", r.finish);
        field(line, "queue_wait", r.queue_wait);
        field(line, "deadline", r.deadline);
        line << ",\"deadline_met\":"
             << (r.deadlineMet() ? "true" : "false");
        field(line, "predicted_seconds", r.predicted_seconds);
        field(line, "actual_seconds", r.actual_seconds);
        field(line, "psnr", r.psnr);
        field(line, "bitrate_kbps", r.bitrate_kbps);
        field(line, "delta_psnr_db", r.delta_psnr_db);
        field(line, "delta_bitrate_kbps", r.delta_bitrate_kbps);
        field(line, "retiring", r.topdown.retiring);
        field(line, "frontend_bound", r.topdown.frontend);
        field(line, "bad_speculation", r.topdown.bad_speculation);
        field(line, "backend_memory", r.topdown.backend_memory);
        field(line, "backend_core", r.topdown.backend_core);
        line << ",\"fingerprint\":\"" << std::hex << r.result_fingerprint
             << std::dec << '"';
        line << ",\"cache_hit\":" << (r.cache_hit ? "true" : "false")
             << '}';
        os << line.str() << '\n';
    }
    return os.str();
}

bool
RunLog::writeJsonl(const std::string& path) const
{
    std::ofstream out(path);
    if (!out) {
        return false;
    }
    out << toJsonl();
    return static_cast<bool>(out.flush());
}

Table
RunLog::metricsTable(const std::vector<Server>& fleet) const
{
    const FarmMetrics m = metrics(fleet);
    Table t({"metric", "value"});
    auto row = [&](const std::string& name, const std::string& value) {
        t.beginRow();
        t.cell(name);
        t.cell(value);
    };
    row("jobs submitted", std::to_string(m.submitted));
    row("jobs completed", std::to_string(m.completed));
    row("jobs failed", std::to_string(m.failed));
    row("jobs shed", std::to_string(m.shed));
    row("retries", std::to_string(m.retries));
    row("deadline misses", std::to_string(m.deadline_misses));
    row("makespan (sim ms)", formatDouble(m.makespan * 1000.0, 3));
    row("throughput (jobs/sim s)", formatDouble(m.throughput, 2));
    row("mean latency (sim ms)", formatDouble(m.mean_latency * 1000.0, 3));
    row("p50 latency (sim ms)", formatDouble(m.p50_latency * 1000.0, 3));
    row("p95 latency (sim ms)", formatDouble(m.p95_latency * 1000.0, 3));
    row("p99 latency (sim ms)", formatDouble(m.p99_latency * 1000.0, 3));
    row("mean queue wait (sim ms)",
        formatDouble(m.mean_queue_wait * 1000.0, 3));
    row("mean |pred-actual|/actual",
        formatPercent(m.mean_prediction_error, 1));
    for (size_t s = 0; s < fleet.size(); ++s) {
        row("util " + m.server_names[s],
            formatPercent(m.utilization(s), 1) + " ("
                + std::to_string(m.server_jobs[s]) + " jobs)");
    }
    return t;
}

} // namespace vtrans::farm

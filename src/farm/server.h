#ifndef VTRANS_FARM_SERVER_H_
#define VTRANS_FARM_SERVER_H_

/**
 * @file
 * The farm's fleet and execution engine.
 *
 * A `Server` is one simulated machine: a Table IV microarchitecture
 * variant (or a replica of one) identified by a stable id. `makeFleet`
 * builds the heterogeneous pool the paper's scheduler study assumes —
 * K replicas of each configuration.
 *
 * `WorkerPool` owns N real threads and executes batches of independent
 * closures. Because every instrumented run uses a thread-local probe sink
 * and simulated heap (see trace/probe.h), runs on different workers are
 * embarrassingly parallel and produce bit-identical results regardless of
 * worker count or interleaving.
 */

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/workload.h"
#include "sched/scheduler.h"
#include "uarch/core.h"

namespace vtrans::farm {

/** One simulated machine of the fleet. */
struct Server
{
    int id = 0;            ///< Stable index into the fleet.
    std::string name;      ///< "be_op1#0" — config name + replica.
    std::string config;    ///< The underlying CoreParams name.
    int replica = 0;       ///< Replica number within the config.
    uarch::CoreParams core;
};

/**
 * Builds a fleet of `replicas` servers per pool configuration, in pool
 * order (all replicas of pool[0] first, ids dense from 0).
 */
std::vector<Server> makeFleet(const std::vector<uarch::CoreParams>& pool,
                              int replicas);

/**
 * Executes one instrumented transcode of `task` on `server`'s core —
 * the worker-side unit of real work. Deterministic per (task, config,
 * clip length); safe to call concurrently from multiple workers.
 */
core::RunResult runOnServer(const Server& server, const sched::Task& task,
                            double clip_seconds);

/**
 * A pool of N persistent worker threads executing batches of closures.
 *
 * `run()` hands every closure in the batch to the pool (workers claim
 * them via an atomic cursor, so the batch self-balances) and blocks until
 * all have finished. Batches are serialized; closures within one batch
 * must be independent. With `workers == 1` the batch runs inline on the
 * calling thread — the serial reference the determinism tests compare
 * against.
 */
class WorkerPool
{
  public:
    explicit WorkerPool(int workers);
    ~WorkerPool();

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    /** Number of worker threads (>= 1). */
    int workers() const { return workers_; }

    /** Executes every task in the batch; returns when all are done. */
    void run(std::vector<std::function<void()>> tasks);

    /** Joins all workers; further run() calls execute inline. */
    void stop();

  private:
    void workerMain();

    int workers_;
    std::vector<std::thread> threads_;

    std::mutex mu_;
    std::condition_variable work_cv_;  ///< Workers wait for a batch.
    std::condition_variable done_cv_;  ///< run() waits for completion.
    std::vector<std::function<void()>>* batch_ = nullptr;
    size_t next_ = 0;      ///< Next unclaimed task in the batch.
    size_t running_ = 0;   ///< Tasks claimed but not yet finished.
    uint64_t generation_ = 0;
    bool stopping_ = false;
};

} // namespace vtrans::farm

#endif // VTRANS_FARM_SERVER_H_

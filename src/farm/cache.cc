#include "farm/cache.h"

#include <algorithm>

#include "common/status.h"

namespace vtrans::farm {

uint64_t
fnv1a(const uint8_t* data, size_t size, uint64_t seed)
{
    uint64_t h = seed;
    for (size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

uint64_t
fnv1a(const std::string& text, uint64_t seed)
{
    return fnv1a(reinterpret_cast<const uint8_t*>(text.data()),
                 text.size(), seed);
}

namespace {

/** Folds a 64-bit word into an FNV-1a stream byte by byte. */
uint64_t
fnvWord(uint64_t h, uint64_t word)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (word >> (8 * i)) & 0xffu;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

CacheKey
makeCacheKey(uint64_t source_fp, uint64_t params_digest,
             const std::string& server_class)
{
    // Two independent streams (distinct seeds) over the same components
    // give the 128-bit digest; the class name is hashed, not appended,
    // so no component can smear into another.
    const uint64_t class_fp = fnv1a(server_class);
    CacheKey key;
    key.hi = fnvWord(fnvWord(fnvWord(0xcbf29ce484222325ull, source_fp),
                             params_digest),
                     class_fp);
    key.lo = fnvWord(fnvWord(fnvWord(0x84222325cbf29ce4ull, source_fp),
                             params_digest),
                     class_fp);
    return key;
}

ResultCache::ResultCache(CacheOptions options) : options_(options)
{
    size_t shards = 1;
    while (shards < std::max<size_t>(options_.shards, 1)) {
        shards <<= 1;
    }
    shard_mask_ = shards - 1;
    shard_bytes_ = std::max<size_t>(options_.max_bytes / shards, 1);
    shard_entries_ = std::max<size_t>(options_.max_entries / shards, 1);
    shards_.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
        shards_.push_back(std::make_unique<Shard>());
    }
}

ResultCache::Shard&
ResultCache::shardFor(const CacheKey& key)
{
    return *shards_[static_cast<size_t>(key.lo) & shard_mask_];
}

const ResultCache::Shard&
ResultCache::shardFor(const CacheKey& key) const
{
    return *shards_[static_cast<size_t>(key.lo) & shard_mask_];
}

size_t
ResultCache::entryBytes(const core::RunResult& result)
{
    return sizeof(core::RunResult) + result.output.size()
           + result.encode.frames.size()
                 * sizeof(result.encode.frames[0]);
}

double
ResultCache::now() const
{
    std::lock_guard<std::mutex> lock(clock_mu_);
    return clock_;
}

void
ResultCache::advance(double seconds)
{
    VT_ASSERT(seconds >= 0.0, "cache clock cannot run backwards");
    std::lock_guard<std::mutex> lock(clock_mu_);
    clock_ += seconds;
}

bool
ResultCache::expired(const Entry& entry, double now) const
{
    return options_.ttl_seconds > 0.0
           && now - entry.inserted >= options_.ttl_seconds;
}

void
ResultCache::dropEntry(Shard& shard, std::list<Entry>::iterator it)
{
    shard.bytes -= it->bytes;
    shard.index.erase(it->key);
    shard.lru.erase(it);
}

void
ResultCache::evictToFit(Shard& shard)
{
    while (!shard.lru.empty()
           && (shard.bytes > shard_bytes_
               || shard.lru.size() > shard_entries_)) {
        dropEntry(shard, std::prev(shard.lru.end()));
        ++shard.evictions;
    }
}

ResultCache::Value
ResultCache::lookupLocked(Shard& shard, const CacheKey& key, double now)
{
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
        return nullptr;
    }
    if (expired(*it->second, now)) {
        dropEntry(shard, it->second);
        ++shard.expirations;
        return nullptr;
    }
    // Touch: splice the node to the LRU front (no reallocation).
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return shard.lru.front().value;
}

ResultCache::Value
ResultCache::getOrCompute(const CacheKey& key, const ComputeFn& compute)
{
    Shard& shard = shardFor(key);
    std::unique_lock<std::mutex> lock(shard.mu);
    while (true) {
        if (Value ready = lookupLocked(shard, key, now())) {
            ++shard.lookups;
            ++shard.hits;
            return ready;
        }
        const auto fit = shard.inflight.find(key);
        if (fit == shard.inflight.end()) {
            break; // This caller becomes the computer.
        }
        // Single-flight wait: hold the Flight so the rendezvous outlives
        // any eviction, and sleep until the computer publishes.
        std::shared_ptr<Flight> flight = fit->second;
        ++shard.inflight_waits;
        shard.cv.wait(lock, [&] { return flight->done; });
        if (!flight->aborted) {
            ++shard.lookups;
            ++shard.hits;
            return flight->value;
        }
        // The computer threw; loop and contend to take over.
    }

    auto flight = std::make_shared<Flight>();
    shard.inflight.emplace(key, flight);
    ++shard.lookups;
    ++shard.misses;
    lock.unlock();

    Value value;
    try {
        value = std::make_shared<const core::RunResult>(compute());
    } catch (...) {
        lock.lock();
        flight->done = true;
        flight->aborted = true;
        shard.inflight.erase(key);
        shard.cv.notify_all();
        throw;
    }

    const size_t bytes = entryBytes(*value);
    lock.lock();
    flight->done = true;
    flight->value = value;
    shard.inflight.erase(key);
    if (bytes > shard_bytes_) {
        // Larger than a whole shard's budget: serve, don't retain.
        ++shard.rejected;
    } else {
        Entry entry;
        entry.key = key;
        entry.value = value;
        entry.bytes = bytes;
        entry.inserted = now();
        shard.lru.push_front(std::move(entry));
        shard.index[key] = shard.lru.begin();
        shard.bytes += bytes;
        evictToFit(shard);
    }
    shard.cv.notify_all();
    return value;
}

ResultCache::Value
ResultCache::peek(const CacheKey& key)
{
    Shard& shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    Value ready = lookupLocked(shard, key, now());
    ++shard.lookups;
    if (ready) {
        ++shard.hits;
    } else {
        ++shard.misses;
    }
    return ready;
}

bool
ResultCache::contains(const CacheKey& key) const
{
    const Shard& shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    return it != shard.index.end() && !expired(*it->second, now());
}

CacheStats
ResultCache::stats() const
{
    CacheStats total;
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        total.lookups += shard->lookups;
        total.hits += shard->hits;
        total.misses += shard->misses;
        total.inflight_waits += shard->inflight_waits;
        total.evictions += shard->evictions;
        total.expirations += shard->expirations;
        total.rejected += shard->rejected;
        total.bytes += shard->bytes;
        total.entries += shard->lru.size();
    }
    return total;
}

} // namespace vtrans::farm

#include "farm/farm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>

#include "codec/decoder.h"
#include "codec/params.h"
#include "common/status.h"
#include "core/workload.h"
#include "obs/metrics.h"
#include "video/quality.h"

namespace vtrans::farm {

/** One planned dispatch of a job onto a server. */
struct Farm::Attempt
{
    /** How the result cache serves this attempt (cache_serve_hits on).
     *  `None` is the serve-OFF mode: every attempt timed as a full
     *  encode, schedule bit-identical to the pre-cache farm. */
    enum class Cache : uint8_t {
        None,    ///< Hit modeling off (or fixed-time stitch).
        Compute, ///< This attempt runs the encode (or faulted mid-run).
        Hit,     ///< Ready entry: serves in cache_hit_seconds.
        Wait,    ///< Single-flight wait on an in-flight provider.
    };

    uint64_t job_id = 0;
    std::string key;          ///< Task signature of the job.
    int server = 0;           ///< Fleet id.
    int number = 0;           ///< 0-based attempt number.
    double planned_start = 0; ///< Event clock (predicted time base).
    double predicted = 0;     ///< Predicted seconds on this server.
    bool failed = false;      ///< Fault-injector verdict.
    bool fixed = false;       ///< Known service time (stitch job).
    Cache cache = Cache::None;
    int provider = -1;        ///< Attempt index this Wait rides on.
};

namespace {

/** The chunk-free task signature (Job::key() of a plain job). */
std::string
taskKey(const sched::Task& task)
{
    return task.video + "/" + task.preset + "/c" + std::to_string(task.crf)
           + "/r" + std::to_string(task.refs);
}

} // namespace

double
backoffAfter(const FarmOptions& options, int attempt_number)
{
    // The unclamped term overflows to inf past attempt ~1070; std::min
    // pins that (and every merely absurd finite value) to the ceiling.
    const double raw =
        options.backoff_base * std::pow(2.0, attempt_number);
    return std::min(raw, options.backoff_max);
}

void
Farm::warmupProcess()
{
    static std::once_flag once;
    std::call_once(once, [] {
        // One short native transcode per kernel family: the four presets
        // below span every motion-estimation method (dia/hex/umh/tesa),
        // trellis level, B-frame adaptation mode and deblock setting, so
        // every probe code site registers here — serially, in a fixed
        // order — before any worker thread can race a registration and
        // perturb the virtual code layout.
        for (const char* preset :
             {"ultrafast", "medium", "slower", "placebo"}) {
            core::RunConfig cfg;
            cfg.video = "cat"; // Smallest resolution class (480p scale).
            cfg.seconds = 0.12;
            cfg.params = codec::presetParams(preset);
            core::runNative(cfg);
        }
    });
}

Farm::Farm(FarmOptions options)
    : options_(std::move(options)),
      injector_(options_.fault_rate, options_.fault_seed)
{
    auto pool =
        options_.pool.empty() ? uarch::optimizedConfigs() : options_.pool;
    fleet_ = makeFleet(pool, options_.replicas);
    int workers = options_.workers;
    if (workers <= 0) {
        workers = static_cast<int>(std::thread::hardware_concurrency());
    }
    if (workers < 1) {
        workers = 1;
    }
    pool_ = std::make_unique<WorkerPool>(workers);
    cache_ = options_.shared_cache
                 ? options_.shared_cache
                 : std::make_shared<ResultCache>(options_.cache);
}

Farm::~Farm()
{
    stop();
}

int
Farm::workers() const
{
    return pool_->workers();
}

void
Farm::stop()
{
    pool_->stop();
}

uint64_t
Farm::submit(const JobRequest& request)
{
    std::lock_guard<std::mutex> lock(submit_mu_);
    VT_ASSERT(!drained_, "cannot submit to a drained farm");
    Job job;
    job.id = next_id_++;
    job.task = request.task;
    job.submit_time = request.submit_time;
    job.deadline = request.deadline;
    job.priority = request.priority;
    job.retry_budget = request.retry_budget;
    job.ready_time = request.submit_time;
    intake_.push_back(job);
    return job.id;
}

uint64_t
Farm::submitChunked(const JobRequest& request,
                    const chunk::ChunkOptions& chunking)
{
    if (!chunking.enabled()) {
        return submit(request);
    }
    // The split encodes segments with the codec, so probe code sites must
    // be pinned before it runs (see warmupProcess).
    warmupProcess();
    auto plan = core::cachedSplit(request.task.video, options_.clip_seconds,
                                  request.task.params(), chunking);
    const auto groups =
        chunk::groupSegments(plan->segments.size(), chunking.max_chunks);
    const int gop = chunking.chunk_frames > 0 ? chunking.chunk_frames
                                              : request.task.params().keyint;
    const double stitch_seconds = chunk::stitchSeconds(
        core::mezzanine(request.task.video, options_.clip_seconds).size());

    std::lock_guard<std::mutex> lock(submit_mu_);
    VT_ASSERT(!drained_, "cannot submit to a drained farm");
    const uint64_t stitch_id = next_id_ + groups.size();
    GraphInfo graph;
    graph.task = request.task;
    graph.plan = plan;
    for (size_t g = 0; g < groups.size(); ++g) {
        Job job;
        job.id = next_id_++;
        job.task = request.task;
        job.submit_time = request.submit_time;
        job.deadline = request.deadline;
        job.priority = request.priority;
        job.retry_budget = request.retry_budget;
        job.ready_time = request.submit_time;
        job.parent_id = stitch_id;
        job.chunk_index = static_cast<int>(g);
        const int first_segment = groups[g].first;
        const int segment_count = groups[g].second;
        job.chunk_first = plan->segments[first_segment].first_frame;
        int frames = 0;
        for (int i = 0; i < segment_count; ++i) {
            frames += plan->segments[first_segment + i].frame_count;
        }
        job.chunk_frames = frames;
        job.chunk_gop = gop;
        chunk_work_.emplace(job.key(),
                            ChunkWork{plan, first_segment, segment_count});
        graph.chunk_ids.push_back(job.id);
        intake_.push_back(job);
    }

    Job stitch;
    stitch.id = next_id_++;
    VT_ASSERT(stitch.id == stitch_id, "stitch id drifted");
    stitch.task = request.task;
    stitch.submit_time = request.submit_time;
    stitch.deadline = request.deadline;
    stitch.priority = request.priority;
    stitch.retry_budget = request.retry_budget;
    stitch.ready_time = request.submit_time;
    stitch.blocked_by = graph.chunk_ids;
    stitch.chunk_count = static_cast<int>(groups.size());
    stitch.chunk_frames = plan->total_frames;
    stitch.chunk_gop = gop;
    stitch.fixed_seconds = stitch_seconds;
    graphs_.emplace(stitch_id, std::move(graph));
    intake_.push_back(stitch);
    return stitch_id;
}

size_t
Farm::submitted() const
{
    std::lock_guard<std::mutex> lock(submit_mu_);
    return intake_.size();
}

void
Farm::digestKey(const std::string& key, const sched::Task& task)
{
    if (digests_.count(key)) {
        return;
    }
    KeyDigest d;
    d.params_digest = codec::canonicalDigest(task.params());
    const auto it = chunk_work_.find(key);
    if (it == chunk_work_.end()) {
        const auto& bytes =
            core::mezzanine(task.video, options_.clip_seconds);
        d.source_fp = fnv1a(bytes.data(), bytes.size());
    } else {
        // A chunk encodes its slice set as independent closed-GOP units,
        // so its content is the *framed* slice sequence: a "chunk" tag
        // plus each slice's length keep a one-chunk graph from aliasing
        // the whole-clip encode of the same bytes, and distinct slice
        // partitions from aliasing each other.
        const ChunkWork& work = it->second;
        uint64_t fp = fnv1a(std::string("chunk:"));
        for (int i = 0; i < work.segment_count; ++i) {
            const auto& src =
                work.plan->segments[work.first_segment + i].source;
            fp = fnv1a(std::to_string(src.size()) + "/", fp);
            fp = fnv1a(src.data(), src.size(), fp);
        }
        d.source_fp = fp;
    }
    digests_.emplace(key, d);
}

CacheKey
Farm::cacheKeyFor(const std::string& key, const std::string& config) const
{
    return makeCacheKey(digests_.at(key).source_fp,
                        digests_.at(key).params_digest, config);
}

const core::RunResult&
Farm::resultFor(const std::string& key, const std::string& config) const
{
    return *drain_results_.at(cacheKeyFor(key, config));
}

CacheStats
Farm::cacheDrainStats() const
{
    const CacheStats now = cache_->stats();
    CacheStats d;
    d.lookups = now.lookups - drain_base_.lookups;
    d.hits = now.hits - drain_base_.hits;
    d.misses = now.misses - drain_base_.misses;
    d.inflight_waits = now.inflight_waits - drain_base_.inflight_waits;
    d.evictions = now.evictions - drain_base_.evictions;
    d.expirations = now.expirations - drain_base_.expirations;
    d.rejected = now.rejected - drain_base_.rejected;
    d.bytes = now.bytes;
    d.entries = now.entries;
    return d;
}

void
Farm::characterize(const std::vector<Job>& jobs)
{
    // Unique task signatures (first job seen defines the task). Stitch
    // jobs carry a fixed, known service time and run no transcode, so
    // they need neither characterization nor a predictor profile.
    for (const Job& job : jobs) {
        if (job.fixed_seconds > 0.0) {
            continue;
        }
        key_tasks_.emplace(job.key(), job.task);
    }

    // Unique optimized config names, pool order ("baseline" servers need
    // no calibration: they predict no speedup by construction).
    std::vector<std::string> cal_names;
    for (const Server& s : fleet_) {
        if (s.config != "baseline"
            && std::find(cal_names.begin(), cal_names.end(), s.config)
                   == cal_names.end()) {
            cal_names.push_back(s.config);
        }
    }

    // The calibration reference (paper §III-D2: "profiling results used
    // as a reference"), run on baseline and on every optimized config.
    sched::Task ref;
    ref.video = options_.reference_video;
    const std::string ref_key = "reference/" + options_.reference_video;

    // Content digests of every signature, hashed serially before any
    // pool fan-out (the mezzanine/slice bytes are generated here too,
    // so workers only ever read them).
    digestKey(ref_key, ref);
    for (const auto& [key, task] : key_tasks_) {
        digestKey(key, task);
    }

    struct BaselineRun
    {
        std::string key;
        sched::Task task;
        ResultCache::Value result;
    };
    std::vector<BaselineRun> baseline_runs;
    baseline_runs.push_back({ref_key, ref, nullptr});
    for (const auto& [key, task] : key_tasks_) {
        baseline_runs.push_back({key, task, nullptr});
    }
    std::vector<ResultCache::Value> cal_runs(cal_names.size());

    // All characterization runs are independent: fan out on the pool,
    // through the cache — a warm entry (prior drain, sibling farm)
    // skips the encode entirely, and single-flight dedups identical
    // signatures racing across farms.
    std::vector<std::function<void()>> tasks;
    const uarch::CoreParams baseline = uarch::baselineConfig();
    for (auto& run : baseline_runs) {
        tasks.push_back([&run, &baseline, this] {
            const CacheKey ck = cacheKeyFor(run.key, "baseline");
            ResultCache::Value value = cache_->getOrCompute(ck, [&] {
                return runTask(run.key, run.task, baseline);
            });
            std::lock_guard<std::mutex> lock(results_mu_);
            drain_results_.emplace(ck, value);
            run.result = std::move(value);
        });
    }
    for (size_t c = 0; c < cal_names.size(); ++c) {
        tasks.push_back([this, &cal_runs, &cal_names, &ref, &ref_key, c] {
            const CacheKey ck = cacheKeyFor(ref_key, cal_names[c]);
            ResultCache::Value value = cache_->getOrCompute(ck, [&] {
                return runTask(ref_key, ref,
                               uarch::configByName(cal_names[c]));
            });
            std::lock_guard<std::mutex> lock(results_mu_);
            drain_results_.emplace(ck, value);
            cal_runs[c] = std::move(value);
        });
    }
    if (options_.verbose) {
        VT_INFORM("farm: characterizing ", baseline_runs.size(),
                  " task signatures + ", cal_names.size(),
                  " calibration configs on ", pool_->workers(),
                  " workers");
    }
    pool_->run(std::move(tasks));

    // Calibrate relief and learn every task's baseline profile.
    const auto& ref_base = *baseline_runs.front().result;
    std::vector<double> cal_seconds;
    for (const auto& r : cal_runs) {
        cal_seconds.push_back(r->transcode_seconds);
    }
    if (!cal_names.empty()) {
        predictor_.setRelief(
            cal_names,
            sched::calibrateRelief(ref_base.core.topdown(),
                                   ref_base.transcode_seconds, cal_names,
                                   cal_seconds));
    }
    for (auto& run : baseline_runs) {
        predictor_.learn(run.key, run.result->transcode_seconds,
                         run.result->core.topdown());
    }
}

core::RunResult
Farm::runTask(const std::string& key, const sched::Task& task,
              const uarch::CoreParams& server_core)
{
    core::RunConfig cfg;
    cfg.video = task.video;
    cfg.seconds = options_.clip_seconds;
    cfg.params = task.params();
    cfg.core = server_core;
    const auto it = chunk_work_.find(key);
    if (it == chunk_work_.end()) {
        return core::runInstrumented(cfg);
    }
    // A chunk job encodes its slice of the split plan — each segment an
    // independent closed-GOP unit — instead of the whole clip.
    const ChunkWork& work = it->second;
    std::vector<const std::vector<uint8_t>*> slices;
    slices.reserve(work.segment_count);
    for (int i = 0; i < work.segment_count; ++i) {
        slices.push_back(
            &work.plan->segments[work.first_segment + i].source);
    }
    cfg.keep_output = true; // The stitch job consumes the bitstream.
    return core::runInstrumentedChunk(slices, cfg);
}

std::vector<Farm::Attempt>
Farm::plan(std::vector<Job> jobs)
{
    JobQueue queue(options_.queue_policy, options_.queue_capacity);
    std::vector<Job> retries; // Waiting out their backoff.
    std::vector<double> busy(fleet_.size(), 0.0);
    Rng rng(options_.rng_seed);
    size_t rr_cursor = 0;
    size_t next_arrival = 0;
    std::vector<Attempt> attempts;

    // Final-outcome events on the event clock, feeding the queue's
    // dependency bookkeeping: a job's last attempt completing (markDone)
    // or exhausting its budget (markFailed) can unblock — or kill — a
    // dependent stitch job.
    struct Completion
    {
        double time = 0.0;
        uint64_t job_id = 0;
        bool success = false;
    };
    std::vector<Completion> completions;

    // Collects jobs whose dependency failed: they can never dispatch, so
    // they leave the queue as a dead graph (and count as failures of
    // their own, in case anything depends on them transitively).
    auto reap = [&] {
        while (true) {
            auto dead = queue.takeDead();
            if (dead.empty()) {
                return;
            }
            for (const Job& job : dead) {
                dep_failed_.insert(job.id);
                queue.markFailed(job.id);
            }
        }
    };

    const bool matching =
        options_.dispatch == DispatchPolicy::Smart
        || options_.dispatch == DispatchPolicy::SmartDeadline;

    // Cache-hit modeling (cache_serve_hits): the planner runs the same
    // state machine the store itself implements — the first dispatch of
    // a digest computes and *provides*; dispatches while the provider is
    // still running wait on it (single-flight) and serve at hit cost
    // when it lands; dispatches after it landed, or whose digest is
    // already cached from a prior drain, are plain hits. Everything is
    // decided on the event clock, so the schedule stays bit-identical
    // at any worker count.
    const bool serve = options_.cache_serve_hits;
    const double hit_cost = std::max(options_.cache_hit_seconds, 1e-9);
    struct Provider
    {
        double finish = 0.0; ///< Event-clock finish of the compute.
        int index = -1;      ///< Index into `attempts`.
    };
    std::map<CacheKey, Provider> providers;

    double t = jobs.empty() ? 0.0 : jobs.front().submit_time;
    while (true) {
        // Deliver final outcomes that have come due on the event clock
        // so dependent jobs become eligible (or dead) before dispatch.
        std::sort(completions.begin(), completions.end(),
                  [](const Completion& a, const Completion& b) {
                      return a.time != b.time ? a.time < b.time
                                              : a.job_id < b.job_id;
                  });
        while (!completions.empty() && completions.front().time <= t) {
            const Completion c = completions.front();
            completions.erase(completions.begin());
            if (c.success) {
                queue.markDone(c.job_id);
            } else {
                queue.markFailed(c.job_id);
            }
        }
        reap();

        // Re-queue retries whose backoff has expired (before admitting
        // new arrivals, so a waiting retry is not starved of queue space).
        std::sort(retries.begin(), retries.end(),
                  [](const Job& a, const Job& b) {
                      return a.ready_time != b.ready_time
                                 ? a.ready_time < b.ready_time
                                 : a.id < b.id;
                  });
        while (!retries.empty() && retries.front().ready_time <= t
               && queue.tryPush(retries.front())) {
            retries.erase(retries.begin());
        }

        // Admission control: arrivals into a full backlog are shed. A
        // shed job counts as failed for dependency purposes — a graph
        // missing a chunk can never stitch.
        while (next_arrival < jobs.size()
               && jobs[next_arrival].submit_time <= t) {
            if (!queue.tryPush(jobs[next_arrival])) {
                shed_ids_.insert(jobs[next_arrival].id);
                queue.markFailed(jobs[next_arrival].id);
            }
            ++next_arrival;
        }
        reap();

        // Dispatch onto every idle server the policy finds work for.
        std::vector<int> idle;
        for (size_t s = 0; s < fleet_.size(); ++s) {
            if (busy[s] <= t) {
                idle.push_back(static_cast<int>(s));
            }
        }
        while (!idle.empty()) {
            Job job;
            int server = -1;
            if (matching) {
                // Characterization-driven matching: among the first
                // match_window jobs in queue-policy order, take the
                // (job, idle server) pair with the best predicted fit.
                const auto window =
                    queue.peekWindow(t, options_.match_window);
                if (window.empty()) {
                    break;
                }
                double best_score = -1.0;
                for (const Job& candidate : window) {
                    // A fixed-time job (stitch) gains nothing from server
                    // matching: any idle server remuxes at the same
                    // speed, so it takes the first one at a neutral
                    // score and yields the window to real transcodes.
                    int s = 0;
                    double score = 0.0;
                    if (candidate.fixed_seconds > 0.0) {
                        s = idle.front();
                    } else {
                        s = pickServerForJob(options_.dispatch, candidate,
                                             predictor_, fleet_, idle, t,
                                             rng, rr_cursor);
                        score = predictor_.fit(candidate.key(),
                                               fleet_[s].config);
                    }
                    if (score > best_score) {
                        best_score = score;
                        job = candidate;
                        server = s;
                    }
                }
                queue.remove(job.id);
            } else {
                auto popped = queue.tryPop(t);
                if (!popped) {
                    break;
                }
                job = *popped;
                server = job.fixed_seconds > 0.0
                             ? idle.front()
                             : pickServerForJob(options_.dispatch, job,
                                                predictor_, fleet_, idle,
                                                t, rng, rr_cursor);
            }

            const bool fixed = job.fixed_seconds > 0.0;
            double predicted =
                fixed ? job.fixed_seconds
                      : predictor_.predict(job.key(), fleet_[server].config);
            const bool fails = injector_.fails(job.id, job.attempts);
            Attempt att;
            att.job_id = job.id;
            att.key = job.key();
            att.server = server;
            att.number = job.attempts;
            att.planned_start = t;
            att.failed = fails;
            att.fixed = fixed;
            if (serve && !fixed) {
                const CacheKey ck =
                    cacheKeyFor(job.key(), fleet_[server].config);
                const auto pv = providers.find(ck);
                const bool landed =
                    pv != providers.end() && pv->second.finish <= t;
                const bool warm = !options_.cache_plan_cold
                                  && pv == providers.end()
                                  && cache_->contains(ck);
                if (fails) {
                    // A faulted attempt burns the full encode and never
                    // publishes: the fault/retry pattern is identical
                    // with the cache on or off.
                    att.cache = Attempt::Cache::Compute;
                } else if (warm || landed) {
                    att.cache = Attempt::Cache::Hit;
                    predicted = hit_cost;
                } else if (pv != providers.end()) {
                    att.cache = Attempt::Cache::Wait;
                    att.provider = pv->second.index;
                    predicted = (pv->second.finish - t) + hit_cost;
                } else {
                    att.cache = Attempt::Cache::Compute;
                    providers[ck] = {t + predicted,
                                     static_cast<int>(attempts.size())};
                }
            }
            att.predicted = predicted;
            attempts.push_back(std::move(att));
            busy[server] = t + predicted;
            idle.erase(std::find(idle.begin(), idle.end(), server));

            const int number = job.attempts++;
            if (fails && number < job.retry_budget) {
                job.ready_time =
                    t + predicted + backoffAfter(options_, number);
                retries.push_back(job);
            } else {
                // Final outcome: queue the dependency event.
                completions.push_back({t + predicted, job.id, !fails});
            }
        }

        // Advance the event clock: next arrival, retry expiry, or server
        // completion — whichever comes first.
        const bool work_left = !queue.empty() || !retries.empty()
                               || next_arrival < jobs.size();
        if (!work_left) {
            break;
        }
        double next = std::numeric_limits<double>::infinity();
        if (next_arrival < jobs.size()) {
            next = std::min(next, jobs[next_arrival].submit_time);
        }
        for (const Job& r : retries) {
            next = std::min(next, r.ready_time);
        }
        if (!queue.empty()) {
            for (double b : busy) {
                if (b > t) {
                    next = std::min(next, b);
                }
            }
        }
        VT_ASSERT(next > t && std::isfinite(next),
                  "farm planner stalled at t=", t);
        t = next;
    }
    return attempts;
}

void
Farm::execute(const std::vector<Attempt>& attempts)
{
    // Unique content digests still to run; retries, replicas of the
    // same config, and aliased signatures reuse one deterministic
    // result — a warm cache entry costs no encode at all, and
    // single-flight dedups races against sibling farms on a shared
    // cache. Fixed-time stitch attempts run no transcode — but each
    // graph needs the *unchunked* whole-video encode of its task as
    // the quality reference the run log reports boundary cost against.
    std::vector<std::pair<std::string, std::string>> pending;
    std::set<CacheKey> scheduled;
    std::vector<std::pair<std::string, sched::Task>> ref_pending;
    for (const Attempt& a : attempts) {
        if (a.fixed) {
            const auto g = graphs_.find(a.job_id);
            if (g == graphs_.end()) {
                continue;
            }
            const std::string base = taskKey(g->second.task);
            if (unchunked_refs_.count(base) == 0
                && std::find_if(ref_pending.begin(), ref_pending.end(),
                                [&](const auto& p) {
                                    return p.first == base;
                                })
                       == ref_pending.end()) {
                ref_pending.push_back({base, g->second.task});
            }
            continue;
        }
        const CacheKey ck = cacheKeyFor(a.key, fleet_[a.server].config);
        if (drain_results_.count(ck) != 0 || !scheduled.insert(ck).second) {
            continue;
        }
        pending.push_back({a.key, fleet_[a.server].config});
    }
    // Longest-predicted-first keeps the pool balanced near the tail.
    std::sort(pending.begin(), pending.end(),
              [this](const auto& a, const auto& b) {
                  const double pa = predictor_.predict(a.first, a.second);
                  const double pb = predictor_.predict(b.first, b.second);
                  return pa != pb ? pa > pb : a < b;
              });

    std::vector<std::function<void()>> tasks;
    for (const auto& key : pending) {
        tasks.push_back([this, key] {
            const CacheKey ck = cacheKeyFor(key.first, key.second);
            ResultCache::Value value = cache_->getOrCompute(ck, [&] {
                return runTask(key.first, key_tasks_.at(key.first),
                               uarch::configByName(key.second));
            });
            std::lock_guard<std::mutex> lock(results_mu_);
            drain_results_.emplace(ck, std::move(value));
        });
    }
    for (const auto& ref : ref_pending) {
        tasks.push_back([this, ref] {
            // Native (uninstrumented) run: only the encode outcome
            // matters for the quality deltas, and the encode is a pure
            // function of input + params — identical on every config.
            core::RunConfig cfg;
            cfg.video = ref.second.video;
            cfg.seconds = options_.clip_seconds;
            cfg.params = ref.second.params();
            const codec::EncodeStats stats = core::runNative(cfg);
            std::lock_guard<std::mutex> lock(results_mu_);
            unchunked_refs_.emplace(ref.first,
                                    UnchunkedRef{stats.psnr,
                                                 stats.bitrate_kbps});
        });
    }
    if (options_.verbose) {
        VT_INFORM("farm: executing ", tasks.size(), " unique runs for ",
                  attempts.size(), " attempts on ", pool_->workers(),
                  " workers");
    }
    pool_->run(std::move(tasks));
}

void
Farm::account(const std::vector<Job>& jobs,
              const std::vector<Attempt>& attempts)
{
    // Replay the planned schedule against the *measured* simulated
    // durations: assignments and per-server order stay as dispatched;
    // start/finish times shift to what the fleet actually took.
    // The replay is also where the job-lifecycle spans are emitted:
    // every quantity a span needs (queue wait, attempt start/finish,
    // backoff window) is computed right here, in simulated time.
    constexpr double kUsPerSimSecond = 1e6;
    tracer_.setTrackName(1, 0, "dispatch queue");
    for (size_t s = 0; s < fleet_.size(); ++s) {
        tracer_.setTrackName(1, static_cast<int64_t>(1 + s),
                             "server " + fleet_[s].name);
    }

    std::map<uint64_t, JobRecord> records;
    std::map<uint64_t, int> budgets;
    for (const Job& job : jobs) {
        JobRecord rec;
        rec.id = job.id;
        rec.video = job.task.video;
        rec.preset = job.task.preset;
        rec.crf = job.task.crf;
        rec.refs = job.task.refs;
        rec.priority = job.priority;
        rec.parent_id = job.parent_id;
        rec.chunk_index = std::max(job.chunk_index, 0);
        rec.chunk_count = job.chunk_count;
        rec.kind = job.isStitch() ? "stitch"
                                  : (job.isChunk() ? "chunk" : "transcode");
        rec.submit = job.submit_time;
        rec.deadline = job.deadline;
        rec.state = shed_ids_.count(job.id) ? JobState::Shed
                                            : JobState::Pending;
        if (rec.state == JobState::Shed) {
            rec.finish = job.submit_time;
            obs::Span shed;
            shed.kind = obs::Span::Kind::Instant;
            shed.category = "farm";
            shed.name = "shed";
            shed.tid = 0;
            shed.ts_us = job.submit_time * kUsPerSimSecond;
            shed.args = {{"job", std::to_string(job.id)}};
            tracer_.recordEvent(std::move(shed));
        }
        records.emplace(job.id, std::move(rec));
        budgets.emplace(job.id, job.retry_budget);
    }

    std::vector<double> server_free(fleet_.size(), 0.0);
    std::map<uint64_t, double> ready;
    std::map<uint64_t, const Job*> by_id;
    for (const Job& job : jobs) {
        by_id.emplace(job.id, &job);
    }
    std::map<uint64_t, double> finish_of;       ///< Last attempt finish.
    std::map<uint64_t, std::string> done_config; ///< Config of Done run.
    std::map<std::string, codec::DecodeResult> mezz_decoded;
    auto mezzFrames = [&](const std::string& video)
        -> const std::vector<video::Frame>& {
        auto it = mezz_decoded.find(video);
        if (it == mezz_decoded.end()) {
            it = mezz_decoded
                     .emplace(video, codec::decode(core::mezzanine(
                                         video, options_.clip_seconds)))
                     .first;
        }
        return it->second.frames;
    };

    const double hit_cost = std::max(options_.cache_hit_seconds, 1e-9);
    std::vector<double> attempt_finish(attempts.size(), 0.0);
    for (size_t ai = 0; ai < attempts.size(); ++ai) {
        const Attempt& a = attempts[ai];
        JobRecord& rec = records.at(a.job_id);
        const Job& job = *by_id.at(a.job_id);

        double actual = 0.0;
        double dep_ready = 0.0;
        const core::RunResult* result = nullptr;
        std::vector<uint8_t> stitched;
        if (a.fixed) {
            // The stitch job's real work: remux the chunk bitstreams —
            // in chunk order — into the final stream. Every dependency
            // is Done here (the planner never dispatches a blocked job
            // early), and whichever server config ran a chunk produced
            // the same bytes, so the result pinned under the config of
            // the chunk's final successful attempt is authoritative.
            std::vector<const std::vector<uint8_t>*> outputs;
            for (uint64_t dep : job.blocked_by) {
                const Job& chunk_job = *by_id.at(dep);
                outputs.push_back(
                    &resultFor(chunk_job.key(), done_config.at(dep))
                         .output);
                dep_ready = std::max(dep_ready, finish_of.at(dep));
            }
            stitched = chunk::stitch(outputs);
            actual = chunk::stitchSeconds(stitched.size());
        } else {
            result = &resultFor(a.key, fleet_[a.server].config);
            actual = a.cache == Attempt::Cache::Hit
                         ? hit_cost
                         : result->transcode_seconds;
        }
        const double r = ready.count(a.job_id) ? ready.at(a.job_id)
                                               : rec.submit;
        const double start =
            std::max({r, server_free[a.server], dep_ready});
        double finish = start + actual;
        if (a.cache == Attempt::Cache::Wait) {
            // Single-flight replay with *measured* times: this attempt
            // rides its provider — it serves at hit cost once the
            // provider's (measured) compute lands, however that differs
            // from the planned timeline.
            finish = std::max(attempt_finish[a.provider], start) + hit_cost;
            actual = finish - start;
        }
        server_free[a.server] = finish;
        finish_of[a.job_id] = finish;
        attempt_finish[ai] = finish;
        if (!a.failed) {
            done_config[a.job_id] = fleet_[a.server].config;
        }

        if (a.number == 0) {
            rec.start = start;
            rec.queue_wait = start - rec.submit;
            // Queue wait as an async pair: submit → first dispatch.
            obs::Span qb;
            qb.kind = obs::Span::Kind::AsyncBegin;
            qb.category = "farm";
            qb.name = "queue";
            qb.id = a.job_id;
            qb.tid = 0;
            qb.ts_us = rec.submit * kUsPerSimSecond;
            qb.args = {{"job", std::to_string(a.job_id)}};
            tracer_.recordEvent(std::move(qb));
            obs::Span qe;
            qe.kind = obs::Span::Kind::AsyncEnd;
            qe.category = "farm";
            qe.name = "queue";
            qe.id = a.job_id;
            qe.tid = 0;
            qe.ts_us = start * kUsPerSimSecond;
            tracer_.recordEvent(std::move(qe));
        }
        rec.attempts = a.number + 1;
        rec.server = a.server;
        rec.server_name = fleet_[a.server].name;
        rec.cache_hit = a.cache == Attempt::Cache::Hit
                        || a.cache == Attempt::Cache::Wait;
        rec.predicted_seconds = a.predicted;
        rec.actual_seconds = actual;
        rec.finish = finish;
        if (a.fixed) {
            // Real measured quality of the stitched stream, against the
            // same reference the unchunked path uses (the decoded
            // mezzanine), so the deltas below are exact boundary cost.
            const GraphInfo& g = graphs_.at(a.job_id);
            rec.psnr = video::sequencePsnr(codec::decode(stitched).frames,
                                           mezzFrames(g.task.video));
            const double duration =
                static_cast<double>(g.plan->total_frames) / g.plan->fps;
            rec.bitrate_kbps = static_cast<double>(stitched.size()) * 8.0
                               / 1000.0 / duration;
            rec.result_fingerprint = chunk::streamFingerprint(stitched);
            const auto ref = unchunked_refs_.find(taskKey(g.task));
            if (ref != unchunked_refs_.end()) {
                rec.delta_psnr_db = rec.psnr - ref->second.psnr;
                rec.delta_bitrate_kbps =
                    rec.bitrate_kbps - ref->second.bitrate_kbps;
            }
        } else {
            rec.psnr = result->psnr;
            rec.bitrate_kbps = result->bitrate_kbps;
            rec.topdown = result->core.topdown();
            rec.result_fingerprint = fingerprint(*result);
        }

        obs::Span attempt;
        attempt.category = "farm";
        attempt.name = a.fixed ? "stitch" : "attempt";
        attempt.tid = 1 + a.server;
        attempt.ts_us = start * kUsPerSimSecond;
        attempt.dur_us = actual * kUsPerSimSecond;
        attempt.args = {{"job", std::to_string(a.job_id)},
                        {"attempt", std::to_string(a.number)},
                        {"task", a.key},
                        {"outcome", a.failed ? "fault" : "ok"}};
        if (a.cache != Attempt::Cache::None) {
            attempt.args.emplace_back(
                "cache", a.cache == Attempt::Cache::Hit
                             ? "hit"
                             : (a.cache == Attempt::Cache::Wait
                                    ? "wait"
                                    : "compute"));
        }
        if (job.isChunk()) {
            attempt.args.emplace_back("parent",
                                      std::to_string(job.parent_id));
            attempt.args.emplace_back("chunk",
                                      std::to_string(job.chunk_index));
        }
        if (a.fixed) {
            attempt.args.emplace_back("chunks",
                                      std::to_string(job.chunk_count));
        }
        tracer_.recordComplete(std::move(attempt));

        if (a.failed) {
            ready[a.job_id] = finish + backoffAfter(options_, a.number);
            rec.state = a.number < budgets.at(a.job_id)
                            ? JobState::Pending
                            : JobState::Failed;
            if (rec.state == JobState::Pending) {
                // Retry backoff window as an async pair on the queue
                // track, distinguished from the queue wait by name.
                obs::Span bb;
                bb.kind = obs::Span::Kind::AsyncBegin;
                bb.category = "farm";
                bb.name = "backoff";
                bb.id = a.job_id;
                bb.tid = 0;
                bb.ts_us = finish * kUsPerSimSecond;
                bb.args = {{"attempt", std::to_string(a.number)}};
                tracer_.recordEvent(std::move(bb));
                obs::Span be;
                be.kind = obs::Span::Kind::AsyncEnd;
                be.category = "farm";
                be.name = "backoff";
                be.id = a.job_id;
                be.tid = 0;
                be.ts_us = ready[a.job_id] * kUsPerSimSecond;
                tracer_.recordEvent(std::move(be));
            }
        } else {
            rec.state = JobState::Done;
        }
    }

    // Jobs killed by a failed dependency never dispatched: record the
    // graph failure at the moment the last dependency resolved.
    for (const Job& job : jobs) {
        if (dep_failed_.count(job.id) == 0) {
            continue;
        }
        JobRecord& rec = records.at(job.id);
        if (rec.state == JobState::Shed) {
            continue; // Shed at admission: already accounted.
        }
        rec.state = JobState::Failed;
        double fin = rec.submit;
        for (uint64_t dep : job.blocked_by) {
            const auto it = finish_of.find(dep);
            if (it != finish_of.end()) {
                fin = std::max(fin, it->second);
            }
        }
        rec.finish = fin;
        obs::Span dead;
        dead.kind = obs::Span::Kind::Instant;
        dead.category = "farm";
        dead.name = "dep-failed";
        dead.tid = 0;
        dead.ts_us = fin * kUsPerSimSecond;
        dead.args = {{"job", std::to_string(job.id)}};
        tracer_.recordEvent(std::move(dead));
    }

    for (const Job& job : jobs) {
        log_.add(records.at(job.id));
    }
}

const RunLog&
Farm::drain()
{
    {
        std::lock_guard<std::mutex> lock(submit_mu_);
        if (drained_) {
            return log_;
        }
        drained_ = true;
    }
    warmupProcess();
    drain_base_ = cache_->stats();

    std::vector<Job> jobs;
    {
        std::lock_guard<std::mutex> lock(submit_mu_);
        jobs = intake_;
    }
    std::sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
        return a.submit_time != b.submit_time
                   ? a.submit_time < b.submit_time
                   : a.id < b.id;
    });

    if (!jobs.empty()) {
        characterize(jobs);
        const auto attempts = plan(jobs);
        execute(attempts);
        account(jobs, attempts);
    }
    recordMetrics();
    // Age the cache by the drain's simulated duration: TTL expiry runs
    // on the same clock every other farm decision does.
    cache_->advance(log_.metrics(fleet_).makespan);
    return log_;
}

void
Farm::recordMetrics() const
{
    auto& reg = obs::metrics();
    const FarmMetrics m = log_.metrics(fleet_);
    reg.counter("farm_jobs_submitted_total", "Jobs submitted to the farm")
        .inc(m.submitted);
    reg.counter("farm_jobs_completed_total", "Jobs completed successfully")
        .inc(m.completed);
    reg.counter("farm_jobs_failed_total",
                "Jobs that exhausted their retry budget")
        .inc(m.failed);
    reg.counter("farm_jobs_shed_total", "Jobs shed at admission control")
        .inc(m.shed);
    reg.counter("farm_retries_total", "Extra dispatch attempts beyond the first")
        .inc(m.retries);
    reg.counter("farm_deadline_misses_total",
                "Completed jobs that missed their deadline")
        .inc(m.deadline_misses);
    reg.gauge("farm_makespan_sim_seconds",
              "Simulated makespan of the last drained farm")
        .set(m.makespan);
    reg.gauge("farm_throughput_jobs_per_sim_second",
              "Completed jobs per simulated second of the last drain")
        .set(m.throughput);
    const CacheStats cs = cacheDrainStats();
    if (cs.lookups > 0 || cs.entries > 0) {
        reg.counter("cache_hits_total",
                    "Result-cache lookups served from a ready entry")
            .inc(cs.hits);
        reg.counter("cache_misses_total",
                    "Result-cache lookups that required a compute")
            .inc(cs.misses);
        reg.counter("cache_inflight_waits_total",
                    "Lookups that blocked on an in-flight compute")
            .inc(cs.inflight_waits);
        reg.counter("cache_evictions_total",
                    "Entries evicted for the byte/entry budget")
            .inc(cs.evictions);
        reg.counter("cache_expirations_total",
                    "Entries dropped past their TTL")
            .inc(cs.expirations);
        reg.gauge("cache_bytes", "Bytes retained in the result cache")
            .set(static_cast<double>(cs.bytes));
        reg.gauge("cache_entries", "Entries retained in the result cache")
            .set(static_cast<double>(cs.entries));
    }
    auto& latency = reg.histogram(
        "farm_job_latency_sim_seconds",
        "Submit-to-finish latency of completed jobs (simulated seconds)");
    auto& wait = reg.histogram(
        "farm_job_queue_wait_sim_seconds",
        "Submit-to-first-dispatch wait of serviced jobs (simulated seconds)");
    size_t chunk_jobs = 0;
    size_t graphs = 0;
    for (const JobRecord& r : log_.records()) {
        if (r.state == JobState::Done) {
            latency.observe(r.latency());
        }
        if (r.state == JobState::Done || r.state == JobState::Failed) {
            wait.observe(r.queue_wait);
        }
        chunk_jobs += r.kind == "chunk" ? 1 : 0;
        graphs += r.kind == "stitch" ? 1 : 0;
    }
    if (chunk_jobs == 0 && graphs == 0) {
        return; // Plain farm: don't register empty chunk metrics.
    }
    reg.counter("chunk_jobs_total", "Chunk encode jobs of split transcodes")
        .inc(chunk_jobs);
    reg.counter("chunk_graphs_total",
                "Chunked transcode graphs (stitch jobs) submitted")
        .inc(graphs);
    auto& per_graph = reg.histogram("chunk_chunks_per_graph",
                                    "Chunk jobs per transcode graph");
    auto& stitch_latency = reg.histogram(
        "chunk_stitch_latency_sim_seconds",
        "Service time of stitch jobs (simulated seconds)");
    auto& delta_psnr = reg.histogram(
        "chunk_boundary_delta_psnr_db",
        "Stitched minus unchunked PSNR (chunk-boundary quality cost)");
    auto& delta_bitrate = reg.histogram(
        "chunk_boundary_delta_bitrate_kbps",
        "Stitched minus unchunked bitrate (chunk-boundary size cost)");
    for (const JobRecord& r : log_.records()) {
        if (r.kind != "stitch") {
            continue;
        }
        per_graph.observe(r.chunk_count);
        if (r.state == JobState::Done) {
            stitch_latency.observe(r.actual_seconds);
            delta_psnr.observe(r.delta_psnr_db);
            delta_bitrate.observe(r.delta_bitrate_kbps);
        }
    }
}

} // namespace vtrans::farm

#ifndef VTRANS_FARM_FARM_H_
#define VTRANS_FARM_FARM_H_

/**
 * @file
 * The transcoding-farm service façade: submit jobs, drain the farm, read
 * the run log — the paper's one-shot scheduler study (§III-D2) grown into
 * a continuous multi-server service.
 *
 * ## Time and determinism model
 *
 * The farm operates on two clocks:
 *
 *  - *Simulated* time: the core model's clock. Job arrivals, deadlines,
 *    queue waits, service times and every run-log timestamp live here.
 *  - *Wall-clock* time: the worker pool executes the actual instrumented
 *    transcodes on real threads, in parallel.
 *
 * Dispatch is an online discrete-event simulation driven by *predicted*
 * service times (a real dispatcher cannot observe a job's runtime before
 * running it — the paper's smart scheduler likewise sees only its
 * calibration reference plus each task's baseline profile). Predictions
 * are calibrated from a reference workload and per-task baseline
 * characterizations, both measured with real instrumented runs. The
 * planned assignment and per-server order are then executed on the
 * worker pool, and the final timeline is re-accounted with the measured
 * simulated durations; the run log reports predicted vs. actual per job.
 *
 * Because every scheduling decision depends only on seeds, predictions
 * and submit order — never on wall-clock — the run log and every per-job
 * `RunResult` are bit-identical for any worker count. `drain()` with
 * `workers = 1` is the serial reference the tests compare against.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "chunk/chunk.h"
#include "farm/cache.h"
#include "farm/dispatch.h"
#include "farm/job.h"
#include "farm/queue.h"
#include "farm/runlog.h"
#include "farm/server.h"
#include "obs/spans.h"
#include "uarch/config.h"

namespace vtrans::farm {

/** Configuration of a farm instance. */
struct FarmOptions
{
    /** Server pool; empty = the four Table IV variants. Config names must
     *  be Table IV names ("baseline" servers predict no speedup). */
    std::vector<uarch::CoreParams> pool;
    int replicas = 1;          ///< Servers per pool configuration.
    int workers = 0;           ///< Worker threads; 0 = hardware concurrency.

    QueuePolicy queue_policy = QueuePolicy::Fifo;
    DispatchPolicy dispatch = DispatchPolicy::Smart;
    size_t queue_capacity = 256;  ///< Backlog bound (admission control).
    size_t match_window = 8;      ///< Jobs the smart matcher may look at.

    double clip_seconds = 0.4;    ///< Clip length of every transcode.
    std::string reference_video = "bbb"; ///< Relief-calibration workload.

    double fault_rate = 0.0;      ///< Probability an attempt fails.
    uint64_t fault_seed = 0x5eedull;
    double backoff_base = 0.02;   ///< Simulated seconds; doubles per retry.
    double backoff_max = 2.0;     ///< Backoff ceiling (simulated seconds);
                                  ///< keeps deep retry budgets from pushing
                                  ///< retry expiry off the event clock.

    uint64_t rng_seed = 0x7a57ull; ///< Seed of the Random dispatch policy.
    bool verbose = false;

    // Content-addressed result cache (see farm/cache.h). The cache is
    // always the farm's result store — it replaces the old per-drain
    // results map, deduplicating identical work safely at any worker
    // count. Whether cache hits also *shorten the schedule* is a
    // separate, explicitly-opted-in modeling choice:
    CacheOptions cache;          ///< Sizing/TTL of the farm's own cache.
    /** Share an external cache instead of owning one: results persist
     *  across drain windows and across farms (warm starts, cross-farm
     *  single-flight). Null = the farm builds its own from `cache`. */
    std::shared_ptr<ResultCache> shared_cache;
    /** Model hit service times in the schedule: an attempt whose digest
     *  is already cached serves in `cache_hit_seconds`; one whose digest
     *  is being computed by an earlier in-flight attempt waits for that
     *  provider, then serves at hit cost (single-flight). OFF keeps the
     *  seed schedule bit-identical: every attempt is timed as a full
     *  encode even though the store already dedups the real work. */
    bool cache_serve_hits = false;
    double cache_hit_seconds = 5e-5; ///< Simulated service time of a hit
                                     ///< (result handoff; same scale as
                                     ///< the stitch remux byte model).
    /** Plan as if the cache started this drain empty: pre-existing
     *  entries are ignored by the scheduler (intra-drain hits still
     *  model), while execution still reuses them as a memo. This is the
     *  A/B lever — the bench's "cached" arm models a cold cache filling
     *  under load without re-encoding work a previous arm measured. */
    bool cache_plan_cold = false;
};

/**
 * Simulated-seconds backoff before retry `attempt_number + 1`:
 * exponential (`backoff_base * 2^attempt_number`) clamped to
 * `backoff_max`, so retry expiry stays bounded — and finite — for any
 * retry budget.
 */
double backoffAfter(const FarmOptions& options, int attempt_number);

/** A job as submitted by a client (the farm assigns ids and bookkeeping). */
struct JobRequest
{
    sched::Task task;
    double submit_time = 0.0; ///< Simulated arrival (seconds since start).
    double deadline = 0.0;    ///< Absolute simulated deadline; 0 = none.
    int priority = 0;
    int retry_budget = 0;
};

/** The transcoding-farm service. */
class Farm
{
  public:
    explicit Farm(FarmOptions options = {});
    ~Farm();

    Farm(const Farm&) = delete;
    Farm& operator=(const Farm&) = delete;

    /**
     * Submits a job (thread-safe) and returns its id. Submission is
     * open until `drain()`; admission control applies in simulated time
     * (jobs arriving into a full backlog are shed and logged as such).
     */
    uint64_t submit(const JobRequest& request);

    /**
     * Submits a request as a *job graph*: the source is split at
     * lookahead GOP/scenecut boundaries (see chunk/chunk.h), each chunk
     * becomes an independent encode job, and one dependent stitch job —
     * blocked on every chunk — remuxes the per-chunk bitstreams into the
     * final stream. Returns the stitch job's id (the graph's root); the
     * chunk jobs occupy the ids immediately below it. If chunking is
     * disabled (`!chunking.enabled()`), falls back to a plain `submit`.
     *
     * A failed chunk fails (or, within `retry_budget`, retries) the whole
     * graph: the stitch job is only dispatched once every chunk is Done,
     * and is recorded Failed if any chunk exhausts its budget.
     */
    uint64_t submitChunked(const JobRequest& request,
                           const chunk::ChunkOptions& chunking);

    /** Jobs submitted so far. */
    size_t submitted() const;

    /**
     * Runs the farm to completion: characterizes, plans, executes every
     * attempt on the worker pool, and builds the run log. Idempotent —
     * repeated calls return the same log.
     */
    const RunLog& drain();

    /** The run log (empty before `drain()`). */
    const RunLog& log() const { return log_; }

    /** Aggregate service metrics over the fleet (post-drain). */
    FarmMetrics metrics() const { return log_.metrics(fleet_); }

    /** The fleet, in id order. */
    const std::vector<Server>& fleet() const { return fleet_; }

    /** The calibrated predictor (fully populated after `drain()`). */
    const Predictor& predictor() const { return predictor_; }

    /**
     * Simulated-time spans over the job lifecycle (queue wait, dispatch
     * attempts, retry backoff, shed markers), recorded while `account()`
     * replays the measured timeline. Timestamps are the run log's
     * simulated seconds scaled to microseconds; attempt spans live on
     * one track per server, so in-track overlap would mean a broken
     * schedule. Empty before `drain()`.
     */
    const obs::SpanTracer& spans() const { return tracer_; }

    /** Mutable tracer access, so a caller can route additional tracks
     *  (e.g. the µarch phase counters, via obs::setGlobalTracer) into
     *  the same exported trace file. */
    obs::SpanTracer& tracer() { return tracer_; }

    /** Writes the job-lifecycle spans as Chrome trace-event JSON
     *  (Perfetto-viewable); false on I/O error. */
    [[nodiscard]] bool writeTrace(const std::string& path) const
    {
        return tracer_.writeChromeTrace(path);
    }

    /** The result cache (the farm's own, or the shared one). */
    ResultCache& cache() { return *cache_; }
    const ResultCache& cache() const { return *cache_; }

    /** Cache activity attributable to this farm's `drain()`: the
     *  counter deltas between drain start and end (gauge-like fields
     *  `bytes`/`entries` are the end-of-drain values). */
    CacheStats cacheDrainStats() const;

    /** Effective worker count. */
    int workers() const;

    /**
     * Stops the worker pool. A subsequent `drain()` executes inline on
     * the calling thread (the serial path); already-drained farms are
     * unaffected.
     */
    void stop();

    const FarmOptions& options() const { return options_; }

    /**
     * Registers every probe code site the codec can emit by running a
     * short warm-up transcode per kernel family, once per process.
     * Called by `drain()`; exposed so benchmarks can pre-warm outside
     * the timed region. Site registration order — and therefore the
     * virtual code layout — must not depend on worker interleaving, so
     * all registration happens here, serially, before any parallelism.
     */
    static void warmupProcess();

  private:
    struct Attempt; // Planning/execution record (internal).

    /** The slice of a split plan one chunk job encodes. */
    struct ChunkWork
    {
        std::shared_ptr<const chunk::SplitPlan> plan;
        int first_segment = 0;
        int segment_count = 0;
    };

    /** One chunked submission (keyed by its stitch job id). */
    struct GraphInfo
    {
        sched::Task task;
        std::shared_ptr<const chunk::SplitPlan> plan;
        std::vector<uint64_t> chunk_ids;
    };

    /** The whole-video (unchunked) quality reference of a graph's task. */
    struct UnchunkedRef
    {
        double psnr = 0.0;
        double bitrate_kbps = 0.0;
    };

    void characterize(const std::vector<Job>& jobs);
    std::vector<Attempt> plan(std::vector<Job> jobs);
    void execute(const std::vector<Attempt>& attempts);
    void account(const std::vector<Job>& jobs,
                 const std::vector<Attempt>& attempts);
    void recordMetrics() const;

    /** Runs the instrumented work behind a task signature on `core`:
     *  chunk keys encode their plan slice, plain keys the whole clip. */
    core::RunResult runTask(const std::string& key, const sched::Task& task,
                            const uarch::CoreParams& core);

    /** Computes (and memoizes) the content components of a task
     *  signature: the fingerprint of the exact source bytes the job
     *  encodes and the canonical digest of its encoder parameters.
     *  Serial-phase only (characterize), before any pool fan-out. */
    void digestKey(const std::string& key, const sched::Task& task);

    /** The content-addressed key of one unit of work: digestKey's
     *  components plus the executing server class. */
    CacheKey cacheKeyFor(const std::string& key,
                         const std::string& config) const;

    /** The pinned result of an executed (task, config) pair (fatal if
     *  execute() never scheduled it). */
    const core::RunResult& resultFor(const std::string& key,
                                     const std::string& config) const;

    FarmOptions options_;
    std::vector<Server> fleet_;
    std::unique_ptr<WorkerPool> pool_;
    Predictor predictor_;
    FaultInjector injector_;
    RunLog log_;
    obs::SpanTracer tracer_;

    mutable std::mutex submit_mu_;
    std::vector<Job> intake_;
    uint64_t next_id_ = 1;
    bool drained_ = false;

    std::map<std::string, sched::Task> key_tasks_; ///< Signature -> task.
    std::set<uint64_t> shed_ids_;                  ///< Rejected at admission.

    // Job-graph state (chunked submissions).
    std::map<std::string, ChunkWork> chunk_work_;  ///< Chunk key -> slice.
    std::map<uint64_t, GraphInfo> graphs_;         ///< Stitch id -> graph.
    std::set<uint64_t> dep_failed_;   ///< Jobs killed by a failed dep.
    std::map<std::string, UnchunkedRef> unchunked_refs_; ///< Task key -> ref.

    // The content-addressed result store (owned or shared; see
    // FarmOptions) and the digest components of every task signature.
    std::shared_ptr<ResultCache> cache_;
    CacheStats drain_base_; ///< Cache counters at drain start.
    struct KeyDigest
    {
        uint64_t source_fp = 0;     ///< FNV-1a of the exact source bytes.
        uint64_t params_digest = 0; ///< codec::canonicalDigest of params.
    };
    std::map<std::string, KeyDigest> digests_; ///< Signature -> content.

    // Pins of every value this drain used: eviction can drop an entry
    // from the cache while account() still needs its bytes. Written by
    // the execute()/characterize() pool fan-outs under results_mu_,
    // read serially after the pool barrier.
    std::map<CacheKey, ResultCache::Value> drain_results_;
    std::mutex results_mu_;
};

} // namespace vtrans::farm

#endif // VTRANS_FARM_FARM_H_

#include "farm/queue.h"

#include <algorithm>
#include <limits>

#include "common/status.h"

namespace vtrans::farm {

std::string
toString(QueuePolicy policy)
{
    switch (policy) {
      case QueuePolicy::Fifo:
        return "fifo";
      case QueuePolicy::Priority:
        return "priority";
      case QueuePolicy::Edf:
        return "edf";
    }
    return "?";
}

QueuePolicy
queuePolicyFromName(const std::string& name)
{
    if (name == "fifo") {
        return QueuePolicy::Fifo;
    }
    if (name == "priority") {
        return QueuePolicy::Priority;
    }
    if (name == "edf") {
        return QueuePolicy::Edf;
    }
    VT_FATAL("unknown queue policy: ", name, " (fifo, priority, edf)");
}

namespace {

/** Deadline key: deadline-less jobs sort after every real deadline. */
double
deadlineKey(const Job& job)
{
    return job.deadline > 0.0 ? job.deadline
                              : std::numeric_limits<double>::infinity();
}

} // namespace

JobQueue::JobQueue(QueuePolicy policy, size_t capacity)
    : policy_(policy), capacity_(capacity)
{
    // Capacity 0 is legal: an always-full queue, which the farm planner
    // uses (via tryPush) to model a service that sheds every arrival.
    // waitPush on such a queue would block forever, so blocking
    // producers must use a non-zero capacity.
}

bool
JobQueue::before(const Job& a, const Job& b) const
{
    switch (policy_) {
      case QueuePolicy::Priority:
        if (a.priority != b.priority) {
            return a.priority > b.priority;
        }
        break;
      case QueuePolicy::Edf:
        if (deadlineKey(a) != deadlineKey(b)) {
            return deadlineKey(a) < deadlineKey(b);
        }
        break;
      case QueuePolicy::Fifo:
        break;
    }
    if (a.ready_time != b.ready_time) {
        return a.ready_time < b.ready_time;
    }
    return a.id < b.id;
}

int
JobQueue::bestIndex(double now) const
{
    int best = -1;
    for (size_t i = 0; i < jobs_.size(); ++i) {
        if (jobs_[i].ready_time > now) {
            continue;
        }
        if (best < 0 || before(jobs_[i], jobs_[best])) {
            best = static_cast<int>(i);
        }
    }
    return best;
}

bool
JobQueue::tryPush(Job job)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || jobs_.size() >= capacity_) {
        return false;
    }
    jobs_.push_back(std::move(job));
    not_empty_.notify_one();
    return true;
}

bool
JobQueue::waitPush(Job job)
{
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || jobs_.size() < capacity_; });
    if (closed_) {
        return false;
    }
    jobs_.push_back(std::move(job));
    not_empty_.notify_one();
    return true;
}

std::optional<Job>
JobQueue::tryPop()
{
    return tryPop(std::numeric_limits<double>::infinity());
}

std::optional<Job>
JobQueue::tryPop(double now)
{
    std::lock_guard<std::mutex> lock(mu_);
    const int best = bestIndex(now);
    if (best < 0) {
        return std::nullopt;
    }
    Job job = std::move(jobs_[best]);
    jobs_.erase(jobs_.begin() + best);
    not_full_.notify_one();
    return job;
}

std::optional<Job>
JobQueue::waitPop()
{
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !jobs_.empty(); });
    const int best =
        bestIndex(std::numeric_limits<double>::infinity());
    if (best < 0) {
        return std::nullopt; // Closed and drained.
    }
    Job job = std::move(jobs_[best]);
    jobs_.erase(jobs_.begin() + best);
    not_full_.notify_one();
    return job;
}

std::vector<Job>
JobQueue::peekWindow(double now, size_t limit) const
{
    std::lock_guard<std::mutex> lock(mu_);
    // Select the first `limit` jobs in policy order without copying (or
    // fully sorting) every eligible job: this runs on the dispatch hot
    // path once per planner tick, against a potentially deep backlog.
    std::vector<const Job*> eligible;
    for (const Job& job : jobs_) {
        if (job.ready_time <= now) {
            eligible.push_back(&job);
        }
    }
    const size_t take = std::min(limit, eligible.size());
    std::partial_sort(eligible.begin(), eligible.begin() + take,
                      eligible.end(),
                      [this](const Job* a, const Job* b) {
                          return before(*a, *b);
                      });
    std::vector<Job> window;
    window.reserve(take);
    for (size_t i = 0; i < take; ++i) {
        window.push_back(*eligible[i]);
    }
    return window;
}

bool
JobQueue::remove(uint64_t id)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < jobs_.size(); ++i) {
        if (jobs_[i].id == id) {
            jobs_.erase(jobs_.begin() + i);
            not_full_.notify_one();
            return true;
        }
    }
    return false;
}

std::optional<double>
JobQueue::nextReadyAfter(double now) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::optional<double> next;
    for (const Job& job : jobs_) {
        if (job.ready_time > now
            && (!next || job.ready_time < *next)) {
            next = job.ready_time;
        }
    }
    return next;
}

void
JobQueue::close()
{
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
}

size_t
JobQueue::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return jobs_.size();
}

bool
JobQueue::empty() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return jobs_.empty();
}

bool
JobQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
}

} // namespace vtrans::farm

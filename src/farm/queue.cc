#include "farm/queue.h"

#include <algorithm>
#include <limits>

#include "common/status.h"

namespace vtrans::farm {

std::string
toString(QueuePolicy policy)
{
    switch (policy) {
      case QueuePolicy::Fifo:
        return "fifo";
      case QueuePolicy::Priority:
        return "priority";
      case QueuePolicy::Edf:
        return "edf";
    }
    return "?";
}

QueuePolicy
queuePolicyFromName(const std::string& name)
{
    if (name == "fifo") {
        return QueuePolicy::Fifo;
    }
    if (name == "priority") {
        return QueuePolicy::Priority;
    }
    if (name == "edf") {
        return QueuePolicy::Edf;
    }
    VT_FATAL("unknown queue policy: ", name, " (fifo, priority, edf)");
}

namespace {

/** Deadline key: deadline-less jobs sort after every real deadline. */
double
deadlineKey(const Job& job)
{
    return job.deadline > 0.0 ? job.deadline
                              : std::numeric_limits<double>::infinity();
}

} // namespace

JobQueue::JobQueue(QueuePolicy policy, size_t capacity)
    : policy_(policy), capacity_(capacity)
{
    // Capacity 0 is legal: an always-full queue, which the farm planner
    // uses (via tryPush) to model a service that sheds every arrival.
    // waitPush on such a queue would block forever, so blocking
    // producers must use a non-zero capacity.
}

bool
JobQueue::before(const Job& a, const Job& b) const
{
    switch (policy_) {
      case QueuePolicy::Priority:
        if (a.priority != b.priority) {
            return a.priority > b.priority;
        }
        break;
      case QueuePolicy::Edf:
        if (deadlineKey(a) != deadlineKey(b)) {
            return deadlineKey(a) < deadlineKey(b);
        }
        break;
      case QueuePolicy::Fifo:
        break;
    }
    if (a.ready_time != b.ready_time) {
        return a.ready_time < b.ready_time;
    }
    return a.id < b.id;
}

bool
JobQueue::deadlocked(const Job& job) const
{
    for (uint64_t dep : job.blocked_by) {
        if (failed_.count(dep) != 0) {
            return true;
        }
    }
    return false;
}

bool
JobQueue::eligible(const Job& job, double now) const
{
    if (job.ready_time > now) {
        return false;
    }
    for (uint64_t dep : job.blocked_by) {
        if (done_.count(dep) == 0) {
            return false; // Unfinished or failed dependency: held.
        }
    }
    return true;
}

int
JobQueue::bestIndex(double now) const
{
    int best = -1;
    for (size_t i = 0; i < jobs_.size(); ++i) {
        if (!eligible(jobs_[i], now)) {
            continue;
        }
        if (best < 0 || before(jobs_[i], jobs_[best])) {
            best = static_cast<int>(i);
        }
    }
    return best;
}

bool
JobQueue::tryPush(Job job)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || jobs_.size() >= capacity_) {
        return false;
    }
    jobs_.push_back(std::move(job));
    not_empty_.notify_one();
    return true;
}

bool
JobQueue::waitPush(Job job)
{
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || jobs_.size() < capacity_; });
    if (closed_) {
        return false;
    }
    jobs_.push_back(std::move(job));
    not_empty_.notify_one();
    return true;
}

std::optional<Job>
JobQueue::tryPop()
{
    return tryPop(std::numeric_limits<double>::infinity());
}

std::optional<Job>
JobQueue::tryPop(double now)
{
    std::lock_guard<std::mutex> lock(mu_);
    const int best = bestIndex(now);
    if (best < 0) {
        return std::nullopt;
    }
    Job job = std::move(jobs_[best]);
    jobs_.erase(jobs_.begin() + best);
    not_full_.notify_one();
    return job;
}

std::optional<Job>
JobQueue::waitPop()
{
    std::unique_lock<std::mutex> lock(mu_);
    // Wake on closure or on an *eligible* job: a queue holding only
    // dependency-blocked jobs keeps consumers parked until markDone.
    int best = -1;
    not_empty_.wait(lock, [&] {
        best = bestIndex(std::numeric_limits<double>::infinity());
        return closed_ || best >= 0;
    });
    if (best < 0) {
        return std::nullopt; // Closed and drained (or only held jobs).
    }
    Job job = std::move(jobs_[best]);
    jobs_.erase(jobs_.begin() + best);
    not_full_.notify_one();
    return job;
}

std::vector<Job>
JobQueue::peekWindow(double now, size_t limit) const
{
    std::lock_guard<std::mutex> lock(mu_);
    // Select the first `limit` jobs in policy order without copying (or
    // fully sorting) every eligible job: this runs on the dispatch hot
    // path once per planner tick, against a potentially deep backlog.
    std::vector<const Job*> ready;
    for (const Job& job : jobs_) {
        if (eligible(job, now)) {
            ready.push_back(&job);
        }
    }
    const size_t take = std::min(limit, ready.size());
    std::partial_sort(ready.begin(), ready.begin() + take, ready.end(),
                      [this](const Job* a, const Job* b) {
                          return before(*a, *b);
                      });
    std::vector<Job> window;
    window.reserve(take);
    for (size_t i = 0; i < take; ++i) {
        window.push_back(*ready[i]);
    }
    return window;
}

bool
JobQueue::remove(uint64_t id)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < jobs_.size(); ++i) {
        if (jobs_[i].id == id) {
            jobs_.erase(jobs_.begin() + i);
            not_full_.notify_one();
            return true;
        }
    }
    return false;
}

void
JobQueue::markDone(uint64_t id)
{
    std::lock_guard<std::mutex> lock(mu_);
    done_.insert(id);
    // A dependency completing can make any number of held jobs eligible.
    not_empty_.notify_all();
}

void
JobQueue::markFailed(uint64_t id)
{
    std::lock_guard<std::mutex> lock(mu_);
    failed_.insert(id);
    // Wake waiters so dead graphs are noticed (takeDead) promptly.
    not_empty_.notify_all();
}

std::vector<Job>
JobQueue::takeDead()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Job> dead;
    for (size_t i = 0; i < jobs_.size();) {
        if (deadlocked(jobs_[i])) {
            dead.push_back(std::move(jobs_[i]));
            jobs_.erase(jobs_.begin() + i);
            not_full_.notify_one();
        } else {
            ++i;
        }
    }
    return dead;
}

std::optional<double>
JobQueue::nextReadyAfter(double now) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::optional<double> next;
    for (const Job& job : jobs_) {
        if (job.ready_time > now
            && (!next || job.ready_time < *next)) {
            next = job.ready_time;
        }
    }
    return next;
}

void
JobQueue::close()
{
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
}

size_t
JobQueue::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return jobs_.size();
}

bool
JobQueue::empty() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return jobs_.empty();
}

bool
JobQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
}

} // namespace vtrans::farm

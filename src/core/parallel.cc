#include "core/parallel.h"

#include <chrono>
#include <mutex>
#include <thread>

#include "codec/params.h"
#include "common/status.h"
#include "farm/farm.h"
#include "farm/server.h"
#include "obs/metrics.h"
#include "obs/spans.h"
#include "video/vbench.h"

namespace vtrans::core {

namespace {

/**
 * Serialized progress logging: worker threads report grid points as they
 * claim them, one VT_INFORM at a time (stderr writes from concurrent
 * workers would otherwise interleave mid-line).
 */
void
progress(bool verbose, const std::string& message)
{
    if (!verbose) {
        return;
    }
    static std::mutex mu;
    std::lock_guard<std::mutex> lock(mu);
    VT_INFORM(message);
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now()
                                         - start)
        .count();
}

} // namespace

int
resolveJobs(int jobs)
{
    if (jobs >= 1) {
        return jobs;
    }
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    return hw >= 1 ? hw : 1;
}

SweepStats
parallelSweep(size_t count, int jobs,
              const std::function<void(size_t)>& run_point)
{
    // Wall-time stage spans land in the process-wide tracer when one is
    // installed (Scoped is a no-op otherwise).
    obs::SpanTracer* tracer = obs::globalTracer();

    // All probe code sites must be registered — serially, in a fixed
    // order — before any worker can race a registration and perturb the
    // virtual code layout (see farm/farm.h).
    {
        obs::SpanTracer::Scoped warmup(tracer, "sweep", "warmup");
        farm::Farm::warmupProcess();
    }

    SweepStats stats;
    stats.jobs = resolveJobs(jobs);
    stats.points = count;
    if (count == 0) {
        return stats;
    }

    // Per-point wall times land in distinct slots: no cross-worker
    // sharing, summed only after the pool joins the batch.
    std::vector<double> point_seconds(count, 0.0);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        tasks.push_back([&run_point, &point_seconds, tracer, i] {
            obs::SpanTracer::Scoped span(tracer, "sweep", "point");
            span.arg("index", std::to_string(i));
            const auto start = std::chrono::steady_clock::now();
            run_point(i);
            point_seconds[i] = secondsSince(start);
        });
    }

    const auto batch_start = std::chrono::steady_clock::now();
    {
        obs::SpanTracer::Scoped fanout(tracer, "sweep", "fan-out");
        fanout.arg("points", std::to_string(count));
        fanout.arg("jobs", std::to_string(stats.jobs));
        farm::WorkerPool pool(stats.jobs);
        pool.run(std::move(tasks));
    }
    stats.wall_seconds = secondsSince(batch_start);
    {
        obs::SpanTracer::Scoped collect(tracer, "sweep", "collect");
        for (double s : point_seconds) {
            stats.busy_seconds += s;
        }
    }

    auto& reg = obs::metrics();
    reg.counter("sweep_points_total", "Grid points run by parallel sweeps")
        .inc(count);
    reg.counter("sweep_batches_total", "Parallel sweep invocations").inc();
    auto& point_hist = reg.histogram(
        "sweep_point_wall_seconds", "Wall-clock duration of sweep points");
    for (double s : point_seconds) {
        point_hist.observe(s);
    }
    reg.gauge("sweep_last_speedup",
              "busy/wall ratio of the most recent parallel sweep")
        .set(stats.wall_seconds > 0.0
                 ? stats.busy_seconds / stats.wall_seconds
                 : 0.0);
    return stats;
}

std::vector<SweepPoint>
parallelCrfRefsSweep(const std::vector<int>& crf_values,
                     const std::vector<int>& refs_values,
                     const StudyOptions& options, SweepStats* stats)
{
    // Grid order is fixed up front; workers only fill in `run`.
    std::vector<SweepPoint> points;
    points.reserve(crf_values.size() * refs_values.size());
    for (int crf : crf_values) {
        for (int refs : refs_values) {
            SweepPoint point;
            point.crf = crf;
            point.refs = refs;
            points.push_back(point);
        }
    }

    const SweepStats s = parallelSweep(
        points.size(), options.jobs, [&](size_t i) {
            SweepPoint& point = points[i];
            progress(options.verbose,
                     "sweep crf=" + std::to_string(point.crf)
                         + " refs=" + std::to_string(point.refs));
            point.run = runInstrumented(
                sweepPointConfig(options, point.crf, point.refs));
        });
    if (stats != nullptr) {
        *stats = s;
    }
    return points;
}

std::vector<PresetResult>
parallelPresetStudy(const StudyOptions& options, SweepStats* stats)
{
    std::vector<PresetResult> results;
    for (const auto& preset : codec::presetNames()) {
        PresetResult result;
        result.preset = preset;
        results.push_back(std::move(result));
    }

    const SweepStats s = parallelSweep(
        results.size(), options.jobs, [&](size_t i) {
            PresetResult& result = results[i];
            progress(options.verbose, "preset " + result.preset);
            result.run = runInstrumented(
                presetPointConfig(options, result.preset));
        });
    if (stats != nullptr) {
        *stats = s;
    }
    return results;
}

std::vector<VideoResult>
parallelVideoStudy(const StudyOptions& options, SweepStats* stats)
{
    std::vector<VideoResult> results;
    for (const auto& spec : video::vbenchCorpus()) {
        VideoResult result;
        result.video = spec.name;
        result.resolution_class = spec.resolution_class;
        result.entropy = spec.entropy;
        results.push_back(std::move(result));
    }

    const SweepStats s = parallelSweep(
        results.size(), options.jobs, [&](size_t i) {
            VideoResult& result = results[i];
            progress(options.verbose, "video " + result.video);
            result.run = runInstrumented(
                videoPointConfig(options, result.video));
        });
    if (stats != nullptr) {
        *stats = s;
    }
    return results;
}

} // namespace vtrans::core

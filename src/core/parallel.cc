#include "core/parallel.h"

#include <chrono>
#include <mutex>
#include <thread>

#include "codec/decoder.h"
#include "codec/params.h"
#include "codec/transcode.h"
#include "common/status.h"
#include "farm/farm.h"
#include "farm/server.h"
#include "obs/metrics.h"
#include "obs/spans.h"
#include "video/quality.h"
#include "video/vbench.h"

namespace vtrans::core {

namespace {

/**
 * Serialized progress logging: worker threads report grid points as they
 * claim them, one VT_INFORM at a time (stderr writes from concurrent
 * workers would otherwise interleave mid-line).
 */
void
progress(bool verbose, const std::string& message)
{
    if (!verbose) {
        return;
    }
    static std::mutex mu;
    std::lock_guard<std::mutex> lock(mu);
    VT_INFORM(message);
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now()
                                         - start)
        .count();
}

} // namespace

int
resolveJobs(int jobs)
{
    if (jobs >= 1) {
        return jobs;
    }
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    return hw >= 1 ? hw : 1;
}

SweepStats
parallelSweep(size_t count, int jobs,
              const std::function<void(size_t)>& run_point)
{
    // Wall-time stage spans land in the process-wide tracer when one is
    // installed (Scoped is a no-op otherwise).
    obs::SpanTracer* tracer = obs::globalTracer();

    // All probe code sites must be registered — serially, in a fixed
    // order — before any worker can race a registration and perturb the
    // virtual code layout (see farm/farm.h).
    {
        obs::SpanTracer::Scoped warmup(tracer, "sweep", "warmup");
        farm::Farm::warmupProcess();
    }

    SweepStats stats;
    stats.jobs = resolveJobs(jobs);
    stats.points = count;
    if (count == 0) {
        return stats;
    }

    // Per-point wall times land in distinct slots: no cross-worker
    // sharing, summed only after the pool joins the batch.
    std::vector<double> point_seconds(count, 0.0);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        tasks.push_back([&run_point, &point_seconds, tracer, i] {
            obs::SpanTracer::Scoped span(tracer, "sweep", "point");
            span.arg("index", std::to_string(i));
            const auto start = std::chrono::steady_clock::now();
            run_point(i);
            point_seconds[i] = secondsSince(start);
        });
    }

    const auto batch_start = std::chrono::steady_clock::now();
    {
        obs::SpanTracer::Scoped fanout(tracer, "sweep", "fan-out");
        fanout.arg("points", std::to_string(count));
        fanout.arg("jobs", std::to_string(stats.jobs));
        farm::WorkerPool pool(stats.jobs);
        pool.run(std::move(tasks));
    }
    stats.wall_seconds = secondsSince(batch_start);
    {
        obs::SpanTracer::Scoped collect(tracer, "sweep", "collect");
        for (double s : point_seconds) {
            stats.busy_seconds += s;
        }
    }

    auto& reg = obs::metrics();
    reg.counter("sweep_points_total", "Grid points run by parallel sweeps")
        .inc(count);
    reg.counter("sweep_batches_total", "Parallel sweep invocations").inc();
    auto& point_hist = reg.histogram(
        "sweep_point_wall_seconds", "Wall-clock duration of sweep points");
    for (double s : point_seconds) {
        point_hist.observe(s);
    }
    reg.gauge("sweep_last_speedup",
              "busy/wall ratio of the most recent parallel sweep")
        .set(stats.wall_seconds > 0.0
                 ? stats.busy_seconds / stats.wall_seconds
                 : 0.0);
    return stats;
}

std::vector<SweepPoint>
parallelCrfRefsSweep(const std::vector<int>& crf_values,
                     const std::vector<int>& refs_values,
                     const StudyOptions& options, SweepStats* stats)
{
    // Grid order is fixed up front; workers only fill in `run`.
    std::vector<SweepPoint> points;
    points.reserve(crf_values.size() * refs_values.size());
    for (int crf : crf_values) {
        for (int refs : refs_values) {
            SweepPoint point;
            point.crf = crf;
            point.refs = refs;
            points.push_back(point);
        }
    }

    const SweepStats s = parallelSweep(
        points.size(), options.jobs, [&](size_t i) {
            SweepPoint& point = points[i];
            progress(options.verbose,
                     "sweep crf=" + std::to_string(point.crf)
                         + " refs=" + std::to_string(point.refs));
            point.run = runInstrumented(
                sweepPointConfig(options, point.crf, point.refs));
        });
    if (stats != nullptr) {
        *stats = s;
    }
    return points;
}

std::vector<PresetResult>
parallelPresetStudy(const StudyOptions& options, SweepStats* stats)
{
    std::vector<PresetResult> results;
    for (const auto& preset : codec::presetNames()) {
        PresetResult result;
        result.preset = preset;
        results.push_back(std::move(result));
    }

    const SweepStats s = parallelSweep(
        results.size(), options.jobs, [&](size_t i) {
            PresetResult& result = results[i];
            progress(options.verbose, "preset " + result.preset);
            result.run = runInstrumented(
                presetPointConfig(options, result.preset));
        });
    if (stats != nullptr) {
        *stats = s;
    }
    return results;
}

ChunkedResult
chunkedTranscode(const ChunkedOptions& options, SweepStats* stats)
{
    ChunkedResult out;
    if (!options.chunking.enabled()) {
        // Chunking off: the ordinary whole-video path, byte-identical to
        // a plain instrumented run (no split, no remux).
        farm::Farm::warmupProcess();
        RunConfig cfg;
        cfg.video = options.video;
        cfg.seconds = options.seconds;
        cfg.params = options.params;
        cfg.core = options.core;
        cfg.keep_output = true;
        RunResult run = runInstrumented(cfg);
        out.chunks = 1;
        out.psnr = run.psnr;
        out.bitrate_kbps = run.bitrate_kbps;
        out.total_sim_seconds = run.transcode_seconds;
        out.stitched = run.output;
        out.stream_fingerprint = chunk::streamFingerprint(out.stitched);
        out.chunk_runs.push_back(std::move(run));
        if (stats != nullptr) {
            *stats = SweepStats{};
            stats->jobs = resolveJobs(options.jobs);
            stats->points = 1;
        }
        return out;
    }

    // Split once, globally (boundaries come from the whole-clip
    // lookahead), then fan the chunk encodes out like any other sweep:
    // results land in pre-sized slots, so ordering never depends on
    // completion order. warmupProcess runs inside parallelSweep before
    // the fan-out; cachedSplit's segment encodes happen after it here.
    farm::Farm::warmupProcess();
    const auto plan = cachedSplit(options.video, options.seconds,
                                  options.params, options.chunking);
    const auto groups = chunk::groupSegments(plan->segments.size(),
                                             options.chunking.max_chunks);
    out.segments = plan->segments.size();
    out.chunks = groups.size();
    out.chunk_runs.resize(groups.size());

    const SweepStats s = parallelSweep(
        groups.size(), options.jobs, [&](size_t i) {
            std::vector<const std::vector<uint8_t>*> slices;
            slices.reserve(groups[i].second);
            for (int k = 0; k < groups[i].second; ++k) {
                slices.push_back(
                    &plan->segments[groups[i].first + k].source);
            }
            RunConfig cfg;
            cfg.video = options.video;
            cfg.seconds = options.seconds;
            cfg.params = options.params;
            cfg.core = options.core;
            out.chunk_runs[i] = runInstrumentedChunk(slices, cfg);
        });
    if (stats != nullptr) {
        *stats = s;
    }

    // Ordered collect: stitch the per-chunk bitstreams left to right.
    std::vector<const std::vector<uint8_t>*> outputs;
    outputs.reserve(out.chunk_runs.size());
    for (const RunResult& run : out.chunk_runs) {
        outputs.push_back(&run.output);
        out.total_sim_seconds += run.transcode_seconds;
    }
    out.stitched = chunk::stitch(outputs);
    out.stream_fingerprint = chunk::streamFingerprint(out.stitched);
    out.stitch_seconds = chunk::stitchSeconds(out.stitched.size());
    out.total_sim_seconds += out.stitch_seconds;

    // Measured quality of the final stream, against the same reference
    // the unchunked path uses (the decoded mezzanine).
    const auto& source = mezzanine(options.video, options.seconds);
    out.psnr = video::sequencePsnr(codec::decode(out.stitched).frames,
                                   codec::decode(source).frames);
    out.bitrate_kbps =
        static_cast<double>(out.stitched.size()) * 8.0 / 1000.0
        / (static_cast<double>(plan->total_frames) / plan->fps);

    auto& reg = obs::metrics();
    reg.counter("chunk_jobs_total",
                "Chunk encode jobs of split transcodes")
        .inc(out.chunks);
    reg.counter("chunk_graphs_total",
                "Chunked transcode graphs (stitch jobs) submitted")
        .inc();
    reg.histogram("chunk_chunks_per_graph",
                  "Chunk jobs per transcode graph")
        .observe(static_cast<double>(out.chunks));
    reg.histogram("chunk_stitch_latency_sim_seconds",
                  "Service time of stitch jobs (simulated seconds)")
        .observe(out.stitch_seconds);

    if (options.compare_unchunked) {
        // The boundary cost: closed-GOP chunk starts vs the open-GOP
        // whole-video encode (native run; the encode outcome is a pure
        // function of input + params, so no core model is needed).
        const codec::TranscodeResult whole =
            codec::transcode(source, options.params);
        out.delta_psnr_db = out.psnr - whole.psnr();
        out.delta_bitrate_kbps = out.bitrate_kbps - whole.bitrateKbps();
        reg.histogram(
               "chunk_boundary_delta_psnr_db",
               "Stitched minus unchunked PSNR (chunk-boundary quality "
               "cost)")
            .observe(out.delta_psnr_db);
        reg.histogram(
               "chunk_boundary_delta_bitrate_kbps",
               "Stitched minus unchunked bitrate (chunk-boundary size "
               "cost)")
            .observe(out.delta_bitrate_kbps);
    }
    return out;
}

std::vector<VideoResult>
parallelVideoStudy(const StudyOptions& options, SweepStats* stats)
{
    std::vector<VideoResult> results;
    for (const auto& spec : video::vbenchCorpus()) {
        VideoResult result;
        result.video = spec.name;
        result.resolution_class = spec.resolution_class;
        result.entropy = spec.entropy;
        results.push_back(std::move(result));
    }

    const SweepStats s = parallelSweep(
        results.size(), options.jobs, [&](size_t i) {
            VideoResult& result = results[i];
            progress(options.verbose, "video " + result.video);
            result.run = runInstrumented(
                videoPointConfig(options, result.video));
        });
    if (stats != nullptr) {
        *stats = s;
    }
    return results;
}

} // namespace vtrans::core

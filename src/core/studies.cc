#include "core/studies.h"

#include <algorithm>

#include "codec/loopflags.h"
#include "codec/transcode.h"
#include "common/status.h"
#include "layout/profile.h"
#include "layout/relayout.h"
#include "trace/probe.h"
#include "uarch/config.h"
#include "video/vbench.h"

namespace vtrans::core {

namespace {

void
progress(bool verbose, const std::string& message)
{
    if (verbose) {
        VT_INFORM(message);
    }
}

} // namespace

std::vector<int>
defaultCrfGrid()
{
    std::vector<int> crf;
    for (int v = 1; v <= 51; v += 5) {
        crf.push_back(v);
    }
    return crf;
}

std::vector<int>
defaultRefsGrid()
{
    return {1, 2, 3, 4, 6, 8, 12, 16};
}

std::vector<int>
fullCrfGrid()
{
    std::vector<int> crf;
    for (int v = 1; v <= 51; ++v) {
        crf.push_back(v);
    }
    return crf;
}

std::vector<int>
fullRefsGrid()
{
    std::vector<int> refs;
    for (int v = 1; v <= 16; ++v) {
        refs.push_back(v);
    }
    return refs;
}

RunConfig
sweepPointConfig(const StudyOptions& options, int crf, int refs)
{
    RunConfig config;
    config.video = options.video;
    config.seconds = options.seconds;
    config.params = codec::presetParams("medium");
    config.params.crf = crf;
    config.params.refs = refs;
    config.core = uarch::baselineConfig();
    return config;
}

RunConfig
presetPointConfig(const StudyOptions& options, const std::string& preset)
{
    RunConfig config;
    config.video = options.video;
    config.seconds = options.seconds;
    // §III-C2: presets with the default crf (23) and refs (3).
    config.params = codec::presetParams(preset);
    config.core = uarch::baselineConfig();
    return config;
}

RunConfig
videoPointConfig(const StudyOptions& options, const std::string& video)
{
    RunConfig config;
    config.video = video;
    config.seconds = options.seconds;
    config.params = codec::presetParams("medium"); // crf 23, refs 3
    config.core = uarch::baselineConfig();
    return config;
}

std::vector<SweepPoint>
crfRefsSweep(const std::vector<int>& crf_values,
             const std::vector<int>& refs_values,
             const StudyOptions& options)
{
    std::vector<SweepPoint> points;
    points.reserve(crf_values.size() * refs_values.size());
    for (int crf : crf_values) {
        for (int refs : refs_values) {
            progress(options.verbose,
                     "sweep crf=" + std::to_string(crf)
                         + " refs=" + std::to_string(refs));
            SweepPoint point;
            point.crf = crf;
            point.refs = refs;
            point.run = runInstrumented(sweepPointConfig(options, crf, refs));
            points.push_back(std::move(point));
        }
    }
    return points;
}

std::vector<PresetResult>
presetStudy(const StudyOptions& options)
{
    std::vector<PresetResult> results;
    for (const auto& preset : codec::presetNames()) {
        progress(options.verbose, "preset " + preset);
        PresetResult result;
        result.preset = preset;
        result.run = runInstrumented(presetPointConfig(options, preset));
        results.push_back(std::move(result));
    }
    return results;
}

std::vector<VideoResult>
videoStudy(const StudyOptions& options)
{
    std::vector<VideoResult> results;
    for (const auto& spec : video::vbenchCorpus()) {
        progress(options.verbose, "video " + spec.name);
        VideoResult result;
        result.video = spec.name;
        result.resolution_class = spec.resolution_class;
        result.entropy = spec.entropy;
        result.run = runInstrumented(videoPointConfig(options, spec.name));
        results.push_back(std::move(result));
    }
    return results;
}

std::vector<OptResult>
optimizationStudy(const OptStudyOptions& options)
{
    std::vector<std::string> videos = options.videos;
    if (videos.empty()) {
        for (const auto& spec : video::vbenchCorpus()) {
            videos.push_back(spec.name);
        }
    }

    // Make sure every code site is registered and the layout is pristine
    // before profiling (one warm-up run touches all kernels).
    trace::registry().resetLayout();
    codec::setLoopOptFlags({});

    // --- Training: profile collection over all study videos -----------
    layout::ProfileCollector profile;
    trace::setSink(&profile, trace::defaultBatchCapacity());
    for (const auto& video : videos) {
        const auto& source = mezzanine(video, options.seconds);
        trace::arena().reset();
        codec::EncoderParams params = codec::presetParams("medium");
        codec::transcode(source, params);
    }
    trace::setSink(nullptr); // Flushes any pending batched events.

    auto measure = [&](const std::string& video) {
        double total = 0.0;
        int combos = 0;
        for (int crf : options.crf_values) {
            for (int refs : options.refs_values) {
                RunConfig config;
                config.video = video;
                config.seconds = options.seconds;
                config.params = codec::presetParams("medium");
                config.params.crf = crf;
                config.params.refs = refs;
                config.core = uarch::baselineConfig();
                total += runInstrumented(config).transcode_seconds;
                ++combos;
            }
        }
        return total / combos;
    };

    std::vector<OptResult> results;
    for (const auto& video : videos) {
        progress(options.verbose, "optimization study: " + video);
        OptResult r;
        r.video = video;

        // Baseline: default layout, no loop restructuring.
        trace::registry().resetLayout();
        codec::setLoopOptFlags({});
        r.baseline_seconds = measure(video);

        // AutoFDO stand-in: profile-guided relayout.
        layout::applyProfileGuidedLayout(profile);
        const double fdo_seconds = measure(video);
        trace::registry().resetLayout();
        r.autofdo_speedup = r.baseline_seconds / fdo_seconds - 1.0;

        // Graphite stand-in: loop restructuring, default layout.
        codec::setLoopOptFlags({true, true});
        const double graphite_seconds = measure(video);
        codec::setLoopOptFlags({});
        r.graphite_speedup = r.baseline_seconds / graphite_seconds - 1.0;

        results.push_back(std::move(r));
    }
    return results;
}

sched::SchedulerStudyResult
schedulerStudy(double seconds, bool verbose)
{
    const auto tasks = sched::tableIIITasks();
    const auto pool = uarch::optimizedConfigs();

    std::vector<std::string> config_names;
    for (const auto& p : pool) {
        config_names.push_back(p.name);
    }

    std::vector<double> baseline_seconds;
    std::vector<std::vector<double>> times(tasks.size());
    std::vector<uarch::TopDown> profiles;

    for (size_t t = 0; t < tasks.size(); ++t) {
        RunConfig config;
        config.video = tasks[t].video;
        config.seconds = seconds;
        config.params = tasks[t].params();

        config.core = uarch::baselineConfig();
        progress(verbose, "scheduler study: task " + std::to_string(t + 1)
                              + " (" + tasks[t].video + ") on baseline");
        const RunResult base = runInstrumented(config);
        baseline_seconds.push_back(base.transcode_seconds);
        profiles.push_back(base.core.topdown());

        for (const auto& core : pool) {
            config.core = core;
            progress(verbose, "scheduler study: task "
                                  + std::to_string(t + 1) + " on "
                                  + core.name);
            times[t].push_back(runInstrumented(config).transcode_seconds);
        }
    }

    // Calibrate per-config relief effectiveness on a reference workload
    // (Big Buck Bunny) that is not one of the scheduled tasks.
    RunConfig cal;
    cal.video = "bbb";
    cal.seconds = seconds;
    cal.params = codec::presetParams("medium");
    cal.core = uarch::baselineConfig();
    progress(verbose, "scheduler study: calibrating on bbb");
    const RunResult cal_base = runInstrumented(cal);
    std::vector<double> cal_seconds;
    for (const auto& core : pool) {
        cal.core = core;
        cal_seconds.push_back(runInstrumented(cal).transcode_seconds);
    }
    const auto relief = sched::calibrateRelief(
        cal_base.core.topdown(), cal_base.transcode_seconds, config_names,
        cal_seconds);

    return sched::evaluateSchedulers(tasks, config_names, baseline_seconds,
                                     times, profiles, relief);
}

} // namespace vtrans::core

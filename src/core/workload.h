#ifndef VTRANS_CORE_WORKLOAD_H_
#define VTRANS_CORE_WORKLOAD_H_

/**
 * @file
 * The measured unit of every experiment: one instrumented transcode —
 * decode a mezzanine stream, re-encode with the parameters under study —
 * simulated on a chosen core configuration. Mirrors the paper's
 * methodology of profiling `ffmpeg -i in.mkv ... out.mkv` runs under
 * VTune/perf or Sniper.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chunk/chunk.h"
#include "codec/encoder.h"
#include "codec/params.h"
#include "uarch/core.h"

namespace vtrans::core {

/** What to run and where to run it. */
struct RunConfig
{
    std::string video = "bbb";   ///< vbench short name (or "bbb").
    double seconds = 0.0;        ///< Clip length; 0 = full 5 s clip.
    codec::EncoderParams params; ///< Transcode parameters under study.
    uarch::CoreParams core;      ///< Simulated machine.

    /** Input stream override (not owned; must outlive the run). When
     *  set, `video`/`seconds` are bookkeeping only. nullptr = use the
     *  cached mezzanine of `video`. */
    const std::vector<uint8_t>* input = nullptr;

    /** Keep the transcoded bitstream in RunResult::output (chunk jobs
     *  always keep theirs — the stitcher needs the bytes). */
    bool keep_output = false;
};

/** Everything measured from one run. */
struct RunResult
{
    uarch::CoreStats core;       ///< Counters + Top-down + derived rates.
    codec::EncodeStats encode;   ///< Bits, PSNR, frame/MB statistics.
    double transcode_seconds = 0.0; ///< Simulated wall time of the run.
    double psnr = 0.0;           ///< Transcoded quality (dB).
    double bitrate_kbps = 0.0;   ///< Transcoded size rate.
    std::vector<uint8_t> output; ///< Bitstream (only if keep_output).
};

/**
 * Returns the cached mezzanine stream for a video at a clip length
 * (generated and high-quality encoded on first use; pure bytes, safe to
 * cache across arena resets). Thread-safe: the cache is mutex-guarded and
 * returned references stay valid for the process lifetime.
 */
const std::vector<uint8_t>& mezzanine(const std::string& video,
                                      double seconds);

/**
 * Runs one instrumented transcode under the configured core model.
 * Resets the simulated heap first so results are exactly reproducible
 * regardless of what ran before.
 */
RunResult runInstrumented(const RunConfig& config);

/**
 * Runs the same transcode natively (no simulation) and returns only the
 * encode statistics — used where microarchitectural data is not needed.
 */
codec::EncodeStats runNative(const RunConfig& config);

/**
 * Runs one *chunk job* under the core model: transcodes every slice as
 * an independent closed-GOP encode, then remuxes the slice outputs into
 * the chunk's bitstream — all within a single instrumented session, so
 * `transcode_seconds` covers the chunk's full service time. The result's
 * `output` always holds the chunk bitstream; `encode`/`psnr`/`bitrate`
 * aggregate over the slices (frame-weighted).
 */
RunResult runInstrumentedChunk(
    const std::vector<const std::vector<uint8_t>*>& slices,
    const RunConfig& config);

/**
 * Returns the (process-cached) split of a video's mezzanine at a clip
 * length under the given target parameters and chunk options. Splitting
 * decodes and re-encodes the clip once per distinct boundary plan, so
 * every submitter of the same chunked task shares one plan. Thread-safe;
 * the returned plan is immutable for the process lifetime.
 */
std::shared_ptr<const chunk::SplitPlan> cachedSplit(
    const std::string& video, double seconds,
    const codec::EncoderParams& target, const chunk::ChunkOptions& opts);

} // namespace vtrans::core

#endif // VTRANS_CORE_WORKLOAD_H_

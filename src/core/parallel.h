#ifndef VTRANS_CORE_PARALLEL_H_
#define VTRANS_CORE_PARALLEL_H_

/**
 * @file
 * Parallel execution of the sweep-style studies on the farm's worker
 * pool. Every grid point of `crfRefsSweep` / `presetStudy` / `videoStudy`
 * is an independent instrumented run (thread-local probe sinks and
 * simulated heaps, see trace/probe.h), so the studies shard across
 * threads the same way the cloud-transcoding literature shards
 * parameter-space exploration across machines.
 *
 * ## Determinism
 *
 * Results are collected by grid index into a pre-sized vector, so output
 * ordering never depends on completion order. Probe code-site
 * registration — the one piece of cross-run shared state, since it pins
 * the virtual code layout — happens once per process inside
 * `farm::Farm::warmupProcess()`, serially, before any fan-out. After
 * that, each point's `RunResult` (and therefore its `farm::fingerprint`)
 * is a pure function of its `RunConfig`: the parallel sweep is
 * bit-identical to the serial path at any worker count, and
 * `jobs == 1` runs the batch inline on the calling thread as the serial
 * reference.
 */

#include <cstddef>
#include <functional>
#include <vector>

#include "core/studies.h"

namespace vtrans::core {

/** Wall-clock accounting of one parallel sweep. */
struct SweepStats
{
    int jobs = 1;               ///< Worker threads used.
    size_t points = 0;          ///< Grid points executed.
    double wall_seconds = 0.0;  ///< Wall-clock time of the whole batch.
    double busy_seconds = 0.0;  ///< Sum of per-point wall times (the
                                ///< serial-equivalent cost).

    /** Measured wall-clock speedup over the serial-equivalent cost. */
    double speedup() const
    {
        return wall_seconds > 0.0 ? busy_seconds / wall_seconds : 0.0;
    }
};

/** Resolves a jobs request: values < 1 mean hardware concurrency. */
int resolveJobs(int jobs);

/**
 * Executes `count` independent, index-addressed grid points on a shared
 * `farm::WorkerPool` with `jobs` workers: pre-warms probe code sites via
 * `farm::Farm::warmupProcess()`, fans the points out (workers claim them
 * through the pool's atomic cursor), and returns once all have run.
 * `run_point(i)` must write its result into slot `i` of a caller-owned,
 * pre-sized container and touch no other shared state. Returns the
 * wall-clock accounting of the batch.
 */
SweepStats parallelSweep(size_t count, int jobs,
                         const std::function<void(size_t)>& run_point);

/**
 * Figures 3/4/5 on the worker pool: `crfRefsSweep` with
 * `options.jobs` workers. Point order — and every per-point result —
 * is bit-identical to the serial path.
 */
std::vector<SweepPoint>
parallelCrfRefsSweep(const std::vector<int>& crf_values,
                     const std::vector<int>& refs_values,
                     const StudyOptions& options,
                     SweepStats* stats = nullptr);

/** Figure 6 on the worker pool: `presetStudy` with `options.jobs`. */
std::vector<PresetResult> parallelPresetStudy(const StudyOptions& options,
                                              SweepStats* stats = nullptr);

/** Figure 7 on the worker pool: `videoStudy` with `options.jobs`. */
std::vector<VideoResult> parallelVideoStudy(const StudyOptions& options,
                                            SweepStats* stats = nullptr);

/** Options of a GOP-chunked transcode (see chunk/chunk.h). */
struct ChunkedOptions
{
    std::string video = "bbb";   ///< vbench short name (or "bbb").
    double seconds = 0.0;        ///< Clip length; 0 = full 5 s clip.
    codec::EncoderParams params; ///< Target transcode parameters.
    uarch::CoreParams core;      ///< Simulated machine per chunk run.
    chunk::ChunkOptions chunking; ///< Boundary spacing / chunk count.
    int jobs = 1;                ///< Worker threads; < 1 = hardware.
    bool compare_unchunked = false; ///< Also run the whole-video encode
                                    ///< and report the boundary deltas.
};

/** Outcome of a chunked transcode. */
struct ChunkedResult
{
    size_t segments = 0;         ///< Closed-GOP units in the split plan.
    size_t chunks = 0;           ///< Encode jobs the segments grouped into.
    std::vector<RunResult> chunk_runs; ///< Per-chunk instrumented runs.
    std::vector<uint8_t> stitched;     ///< The final remuxed stream.
    uint64_t stream_fingerprint = 0;   ///< FNV-1a over `stitched`.

    double psnr = 0.0;           ///< Stitched stream vs decoded mezzanine.
    double bitrate_kbps = 0.0;   ///< Of the stitched stream.
    double stitch_seconds = 0.0; ///< Simulated remux service time.
    double total_sim_seconds = 0.0; ///< Sum of chunk runs + stitch.

    // Boundary cost (only when `compare_unchunked`): stitched minus
    // whole-video encode of the same source and parameters.
    double delta_psnr_db = 0.0;
    double delta_bitrate_kbps = 0.0;
};

/**
 * Splits `options.video` at lookahead GOP/scenecut boundaries, encodes
 * the chunks as independent instrumented runs on the worker pool
 * (`parallelSweep` shape: warmup, fan-out, ordered collect), and
 * stitches the per-chunk bitstreams into one stream. The stitched bytes
 * — and `stream_fingerprint` — are identical for any `jobs` and any
 * chunk count (see chunk/chunk.h). With chunking disabled the whole
 * video runs as a single ordinary instrumented transcode and the output
 * is byte-identical to that path.
 */
ChunkedResult chunkedTranscode(const ChunkedOptions& options,
                               SweepStats* stats = nullptr);

} // namespace vtrans::core

#endif // VTRANS_CORE_PARALLEL_H_

#ifndef VTRANS_CORE_STUDIES_H_
#define VTRANS_CORE_STUDIES_H_

/**
 * @file
 * The paper's experiments as reusable studies. Each corresponds to one or
 * more tables/figures (see DESIGN.md's per-experiment index):
 *  - crfRefsSweep      -> Figures 3, 4, 5
 *  - presetStudy       -> Figure 6 (a-d)
 *  - videoStudy        -> Figure 7 (a-c)
 *  - optimizationStudy -> Figure 8 (AutoFDO & Graphite)
 *  - schedulerStudy    -> Figure 9 (+ Tables III & IV)
 */

#include <string>
#include <vector>

#include "core/workload.h"
#include "sched/scheduler.h"

namespace vtrans::core {

/** One grid point of the crf x refs sweep. */
struct SweepPoint
{
    int crf = 0;
    int refs = 0;
    RunResult run;
};

/** Options common to the sweep-style studies. */
struct StudyOptions
{
    std::string video = "funny"; ///< Sweep video (1080p class by default).
    double seconds = 1.0;        ///< Clip length per point.
    bool verbose = false;        ///< Progress to stderr.
    int jobs = 1;                ///< Worker threads for the parallel
                                 ///< runners (core/parallel.h); < 1 means
                                 ///< hardware concurrency.
};

/**
 * The `RunConfig` of one crf x refs sweep point (medium preset, baseline
 * core). The serial and parallel sweep runners both build their points
 * through this, so the two paths run bit-identical configurations.
 */
RunConfig sweepPointConfig(const StudyOptions& options, int crf, int refs);

/** The `RunConfig` of one preset-study point (crf 23, refs 3). */
RunConfig presetPointConfig(const StudyOptions& options,
                            const std::string& preset);

/** The `RunConfig` of one video-study point (medium, crf 23, refs 3). */
RunConfig videoPointConfig(const StudyOptions& options,
                           const std::string& video);

/** Figures 3/4/5: sweep crf x refs at the medium preset. */
std::vector<SweepPoint> crfRefsSweep(const std::vector<int>& crf_values,
                                     const std::vector<int>& refs_values,
                                     const StudyOptions& options);

/** The default subsampled grid (Delta-crf 5; refs 1,2,3,4,6,8,12,16). */
std::vector<int> defaultCrfGrid();
std::vector<int> defaultRefsGrid();
/** The paper's full 816-point grid (crf 1..51, refs 1..16). */
std::vector<int> fullCrfGrid();
std::vector<int> fullRefsGrid();

/** One preset's measurements (Figure 6). */
struct PresetResult
{
    std::string preset;
    RunResult run;
};

/** Figure 6: all ten presets at crf 23, refs 3. */
std::vector<PresetResult> presetStudy(const StudyOptions& options);

/** One video's measurements (Figure 7). */
struct VideoResult
{
    std::string video;
    std::string resolution_class;
    double entropy = 0.0;
    RunResult run;
};

/** Figure 7: all vbench videos at medium/23/3, Table I order. */
std::vector<VideoResult> videoStudy(const StudyOptions& options);

/** Per-video outcome of the compiler-optimization study (Figure 8). */
struct OptResult
{
    std::string video;
    double autofdo_speedup = 0.0;   ///< e.g. 0.046 = 4.6%.
    double graphite_speedup = 0.0;
    double baseline_seconds = 0.0;
};

/** Options for the compiler-optimization study. */
struct OptStudyOptions
{
    std::vector<std::string> videos;      ///< Default: the vbench 15.
    std::vector<int> crf_values{17, 30};  ///< Parameter combinations
    std::vector<int> refs_values{3};      ///< averaged per video (paper
                                          ///< used 32 combos; see docs).
    double seconds = 1.0;
    bool verbose = false;
};

/**
 * Figure 8: measures the speedup of profile-guided relayout (AutoFDO
 * stand-in) and loop restructuring (Graphite stand-in) per video,
 * averaged over the parameter combinations. Training profiles are
 * collected on all study videos, as the paper does ("transcode multiple
 * videos and collect execution profiles").
 */
std::vector<OptResult> optimizationStudy(const OptStudyOptions& options);

/**
 * Figure 9: simulates the Table III tasks on the Table IV configurations
 * and evaluates the random/smart/best schedulers.
 */
sched::SchedulerStudyResult schedulerStudy(double seconds = 1.0,
                                           bool verbose = false);

} // namespace vtrans::core

#endif // VTRANS_CORE_STUDIES_H_

#include "core/workload.h"

#include <map>
#include <mutex>

#include "codec/transcode.h"
#include "common/status.h"
#include "obs/hotspots.h"
#include "trace/probe.h"
#include "video/vbench.h"

namespace vtrans::core {

const std::vector<uint8_t>&
mezzanine(const std::string& video, double seconds)
{
    // Shared across farm worker threads: the whole lookup-or-build is
    // mutex-guarded (map node references stay valid after later inserts,
    // so callers may keep the returned reference lock-free).
    static std::mutex mu;
    static std::map<std::pair<std::string, int>, std::vector<uint8_t>>
        cache;
    std::lock_guard<std::mutex> lock(mu);
    const int centi = static_cast<int>(seconds * 100.0 + 0.5);
    const auto key = std::make_pair(video, centi);
    auto it = cache.find(key);
    if (it != cache.end()) {
        return it->second;
    }

    video::VideoSpec spec = video::findVideo(video);
    if (seconds > 0.0) {
        spec.seconds = seconds;
    }
    VT_INFORM("building mezzanine for ", video, " (", spec.seconds, "s, ",
              spec.width, "x", spec.height, ")");
    auto stream = codec::makeSourceStream(spec);
    return cache.emplace(key, std::move(stream)).first->second;
}

RunResult
runInstrumented(const RunConfig& config)
{
    const auto& source = mezzanine(config.video, config.seconds);

    // Deterministic data addresses for this run, whatever ran before.
    trace::arena().reset();

    // When hotspot collection is on, tap the event stream through a tee
    // so the profiler observes exactly what the model accounts; the model
    // stays first in the chain and sees an unchanged stream either way.
    uarch::CoreModel model(config.core);
    obs::HotspotProfiler profiler;
    trace::TeeSink tee({&model, &profiler});
    const bool profiled = obs::hotspotsEnabled();
    trace::setSink(profiled ? static_cast<trace::ProbeSink*>(&tee)
                            : &model,
                   trace::defaultBatchCapacity());
    codec::TranscodeResult transcoded =
        codec::transcode(source, config.params);
    trace::setSink(nullptr); // Flushes any pending batched events.
    if (profiled) {
        obs::hotspotReport().merge(profiler);
    }

    RunResult result;
    result.core = model.finish();
    result.encode = transcoded.stats;
    result.transcode_seconds = result.core.seconds();
    result.psnr = transcoded.psnr();
    result.bitrate_kbps = transcoded.bitrateKbps();
    return result;
}

codec::EncodeStats
runNative(const RunConfig& config)
{
    const auto& source = mezzanine(config.video, config.seconds);
    trace::arena().reset();
    codec::TranscodeResult transcoded =
        codec::transcode(source, config.params);
    return transcoded.stats;
}

} // namespace vtrans::core

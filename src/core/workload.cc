#include "core/workload.h"

#include <map>
#include <mutex>

#include "codec/transcode.h"
#include "common/status.h"
#include "obs/hotspots.h"
#include "obs/spans.h"
#include "obs/uarch.h"
#include "trace/probe.h"
#include "video/vbench.h"

namespace vtrans::core {

namespace {

/** Applies the process-wide obs toggles to a run's core parameters:
 *  global attribution enables CoreParams::attribute_sites, and a global
 *  phase window fills in a zero per-run one. */
uarch::CoreParams
effectiveCoreParams(const RunConfig& config)
{
    uarch::CoreParams params = config.core;
    params.attribute_sites =
        params.attribute_sites || obs::uarchAttributionEnabled();
    if (params.phase_window == 0) {
        params.phase_window = obs::phaseWindow();
    }
    return params;
}

/** Counter-track label identifying the run in the phase time-series. */
std::string
phaseLabel(const RunConfig& config)
{
    return config.video + " crf" + std::to_string(config.params.crf) + " r"
           + std::to_string(config.params.refs);
}

/** Post-finish() obs export: fold per-site attribution into the global
 *  report and render phase samples as counter events on the global
 *  tracer. Must run after finish() — the drain charges cycles. */
void
exportModelObservability(const uarch::CoreModel& model,
                         const RunConfig& config)
{
    if (model.attributionEnabled()) {
        obs::mergeAttribution(&obs::hotspotReport(), model);
    }
    if (!model.phaseSamples().empty()) {
        obs::emitPhaseCounters(obs::globalTracer(), model,
                               phaseLabel(config));
    }
}

} // namespace

const std::vector<uint8_t>&
mezzanine(const std::string& video, double seconds)
{
    // Shared across farm worker threads: the whole lookup-or-build is
    // mutex-guarded (map node references stay valid after later inserts,
    // so callers may keep the returned reference lock-free).
    static std::mutex mu;
    static std::map<std::pair<std::string, int>, std::vector<uint8_t>>
        cache;
    std::lock_guard<std::mutex> lock(mu);
    const int centi = static_cast<int>(seconds * 100.0 + 0.5);
    const auto key = std::make_pair(video, centi);
    auto it = cache.find(key);
    if (it != cache.end()) {
        return it->second;
    }

    video::VideoSpec spec = video::findVideo(video);
    if (seconds > 0.0) {
        spec.seconds = seconds;
    }
    VT_INFORM("building mezzanine for ", video, " (", spec.seconds, "s, ",
              spec.width, "x", spec.height, ")");
    auto stream = codec::makeSourceStream(spec);
    return cache.emplace(key, std::move(stream)).first->second;
}

RunResult
runInstrumented(const RunConfig& config)
{
    const auto& source = config.input != nullptr
                             ? *config.input
                             : mezzanine(config.video, config.seconds);

    // Deterministic data addresses for this run, whatever ran before.
    trace::arena().reset();

    // When hotspot collection is on, tap the event stream through a tee
    // so the profiler observes exactly what the model accounts; the model
    // stays first in the chain and sees an unchanged stream either way.
    // µarch attribution implies profiling: the report needs the
    // profiler's per-site instruction counts as CPI/MPKI denominators.
    uarch::CoreModel model(effectiveCoreParams(config));
    obs::HotspotProfiler profiler;
    trace::TeeSink tee({&model, &profiler});
    const bool profiled =
        obs::hotspotsEnabled() || model.attributionEnabled();
    trace::setSink(profiled ? static_cast<trace::ProbeSink*>(&tee)
                            : &model,
                   trace::defaultBatchCapacity());
    codec::TranscodeResult transcoded =
        codec::transcode(source, config.params);
    trace::setSink(nullptr); // Flushes any pending batched events.
    if (profiled) {
        obs::hotspotReport().merge(profiler);
    }

    RunResult result;
    result.core = model.finish();
    exportModelObservability(model, config);
    result.encode = transcoded.stats;
    result.transcode_seconds = result.core.seconds();
    result.psnr = transcoded.psnr();
    result.bitrate_kbps = transcoded.bitrateKbps();
    if (config.keep_output) {
        result.output = std::move(transcoded.output);
    }
    return result;
}

codec::EncodeStats
runNative(const RunConfig& config)
{
    const auto& source = config.input != nullptr
                             ? *config.input
                             : mezzanine(config.video, config.seconds);
    trace::arena().reset();
    codec::TranscodeResult transcoded =
        codec::transcode(source, config.params);
    return transcoded.stats;
}

RunResult
runInstrumentedChunk(
    const std::vector<const std::vector<uint8_t>*>& slices,
    const RunConfig& config)
{
    VT_ASSERT(!slices.empty(), "chunk run with no slices");
    trace::arena().reset();

    uarch::CoreModel model(effectiveCoreParams(config));
    obs::HotspotProfiler profiler;
    trace::TeeSink tee({&model, &profiler});
    const bool profiled =
        obs::hotspotsEnabled() || model.attributionEnabled();
    trace::setSink(profiled ? static_cast<trace::ProbeSink*>(&tee)
                            : &model,
                   trace::defaultBatchCapacity());

    // Each slice is an independent closed-GOP transcode (its own encoder
    // state) — the segment-atom contract that makes the stitched stream
    // independent of how segments are grouped into chunks.
    std::vector<codec::TranscodeResult> parts;
    parts.reserve(slices.size());
    for (const auto* slice : slices) {
        parts.push_back(codec::transcode(*slice, config.params));
    }
    // The in-chunk remux is part of the chunk's work and is itself
    // instrumented (the bitstream reader/writer trace their traffic).
    std::vector<const std::vector<uint8_t>*> outputs;
    outputs.reserve(parts.size());
    for (const auto& part : parts) {
        outputs.push_back(&part.output);
    }
    std::vector<uint8_t> stitched = chunk::stitch(outputs);

    trace::setSink(nullptr);
    if (profiled) {
        obs::hotspotReport().merge(profiler);
    }

    RunResult result;
    result.core = model.finish();
    exportModelObservability(model, config);
    result.transcode_seconds = result.core.seconds();
    result.output = std::move(stitched);

    // Aggregate the per-slice encode statistics (frame-weighted means
    // for the rates, plain sums for the counters).
    int total_frames = 0;
    double psnr_weighted = 0.0;
    int display_offset = 0;
    codec::EncodeStats& agg = result.encode;
    for (const auto& part : parts) {
        const codec::EncodeStats& e = part.stats;
        agg.total_bits += e.total_bits;
        agg.i_frames += e.i_frames;
        agg.p_frames += e.p_frames;
        agg.b_frames += e.b_frames;
        agg.mb_skip += e.mb_skip;
        agg.mb_inter16 += e.mb_inter16;
        agg.mb_inter8x8 += e.mb_inter8x8;
        agg.mb_intra16 += e.mb_intra16;
        agg.mb_intra4 += e.mb_intra4;
        agg.me_candidates += e.me_candidates;
        agg.vbv_violations += e.vbv_violations;
        for (codec::FrameStat f : e.frames) {
            f.display_index += display_offset;
            agg.frames.push_back(f);
        }
        psnr_weighted += e.psnr * part.frame_count;
        total_frames += part.frame_count;
        display_offset += part.frame_count;
    }
    const int fps = parts.front().fps;
    if (total_frames > 0) {
        agg.psnr = psnr_weighted / total_frames;
        agg.bitrate_kbps = static_cast<double>(agg.total_bits) / 1000.0
                           / (static_cast<double>(total_frames) / fps);
    }
    result.psnr = agg.psnr;
    result.bitrate_kbps = agg.bitrate_kbps;
    return result;
}

std::shared_ptr<const chunk::SplitPlan>
cachedSplit(const std::string& video, double seconds,
            const codec::EncoderParams& target,
            const chunk::ChunkOptions& opts)
{
    // Keyed by everything the boundary plan depends on: the clip and the
    // planning parameters (effective keyint, scenecut, B placement). The
    // slice encodes use the fixed mezzanine grade, so nothing else in
    // `target` can change the split.
    const int centi = static_cast<int>(seconds * 100.0 + 0.5);
    const int eff_keyint =
        opts.chunk_frames > 0 ? opts.chunk_frames : target.keyint;
    std::string key = video + "/" + std::to_string(centi) + "/k"
                      + std::to_string(eff_keyint) + "/s"
                      + std::to_string(target.scenecut) + "/b"
                      + std::to_string(target.bframes) + "/a"
                      + std::to_string(target.b_adapt);

    static std::mutex mu;
    static std::map<std::string, std::shared_ptr<const chunk::SplitPlan>>
        cache;
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(key);
    if (it != cache.end()) {
        return it->second;
    }
    const auto& source = mezzanine(video, seconds);
    auto plan = std::make_shared<chunk::SplitPlan>(
        chunk::split(source, target, opts));
    cache.emplace(key, plan);
    return plan;
}

} // namespace vtrans::core

#include "uarch/core.h"

#include <algorithm>

#include "common/status.h"

namespace vtrans::uarch {

// ---- Derived metrics ------------------------------------------------------

double
CoreStats::ipc() const
{
    return cycles == 0
               ? 0.0
               : static_cast<double>(instructions) / cycles;
}

namespace {

double
perKilo(uint64_t events, uint64_t instructions)
{
    return instructions == 0
               ? 0.0
               : 1000.0 * static_cast<double>(events) / instructions;
}

/** Resource-stall slots -> stall cycles per kilo-instruction. The
 *  slots-to-cycles conversion divides in floating point: an integer
 *  `slots / width` would drop up to (width - 1) slots of every partial
 *  stall cycle from the reported rate. */
double
perKiloStallCycles(uint64_t slots, int width, uint64_t instructions)
{
    return instructions == 0 || width <= 0
               ? 0.0
               : 1000.0 * (static_cast<double>(slots) / width)
                     / static_cast<double>(instructions);
}

} // namespace

double
CoreStats::seconds() const
{
    return static_cast<double>(cycles) / (freq_ghz * 1e9);
}

double
CoreStats::branchMpki() const
{
    return perKilo(branch_mispredicts, instructions);
}

double
CoreStats::l1dMpki() const
{
    return perKilo(l1d_misses, instructions);
}

double
CoreStats::l2Mpki() const
{
    return perKilo(l2_misses, instructions);
}

double
CoreStats::l3Mpki() const
{
    return perKilo(l3_misses, instructions);
}

double
CoreStats::l1iMpki() const
{
    return perKilo(l1i_misses, instructions);
}

TopDown
CoreStats::topdown() const
{
    TopDown td;
    if (slots_total == 0) {
        return td;
    }
    const double total = static_cast<double>(slots_total);
    td.retiring = slots_retiring / total;
    td.frontend = slots_frontend / total;
    td.bad_speculation = slots_bad_spec / total;
    td.backend_memory = slots_backend_memory / total;
    td.backend_core = slots_backend_core / total;
    return td;
}

double
CoreStats::robStallsPki() const
{
    return perKiloStallCycles(slots_rob_stall, width, instructions);
}

double
CoreStats::rsStallsPki() const
{
    return perKiloStallCycles(slots_rs_stall, width, instructions);
}

double
CoreStats::sbStallsPki() const
{
    return perKiloStallCycles(slots_sb_stall, width, instructions);
}

double
CoreStats::anyResourceStallsPki() const
{
    return perKiloStallCycles(
        slots_rob_stall + slots_rs_stall + slots_sb_stall, width,
        instructions);
}

// ---- SiteUarch -------------------------------------------------------------

void
SiteUarch::add(const SiteUarch& other)
{
    cycles += other.cycles;
    slots_retiring += other.slots_retiring;
    slots_frontend += other.slots_frontend;
    slots_bad_spec += other.slots_bad_spec;
    slots_backend_memory += other.slots_backend_memory;
    slots_backend_core += other.slots_backend_core;
    branches += other.branches;
    branch_mispredicts += other.branch_mispredicts;
    l1d_accesses += other.l1d_accesses;
    l1d_misses += other.l1d_misses;
    l2_misses += other.l2_misses;
    l3_misses += other.l3_misses;
    l1i_accesses += other.l1i_accesses;
    l1i_misses += other.l1i_misses;
    itlb_misses += other.itlb_misses;
    btb_misses += other.btb_misses;
}

// ---- CoreModel -------------------------------------------------------------

CoreModel::CoreModel(const CoreParams& params)
    : params_(params),
      caches_(params.l1d, params.l1i, params.l2, params.l3, params.l4_size,
              params.latencies),
      itlb_(params.itlb_entries),
      predictor_(makePredictor(params.predictor)),
      btb_(),
      // Window rings hold at most one coalesced entry per occupant, so
      // reserving the modelled structure size up front means steady-state
      // pushes never reallocate — even with the fast-forward path's lazy
      // draining, occupancy (and thus entry count) stays bounded by the
      // structure size via ensure*Space().
      rob_(static_cast<size_t>(std::max(params.rob_size, 1))),
      rs_(static_cast<size_t>(std::max(params.rs_size, 1))),
      sb_(static_cast<size_t>(std::max(params.sb_size, 1))),
      mshr_(static_cast<size_t>(std::max(params.mshr_entries, 1)) * 2)
{
    reference_stepping_ = params_.reference_stepping;
    VT_ASSERT(params_.width > 0 && params_.rob_size > 0
                  && params_.rs_size > 0 && params_.sb_size > 0,
              "invalid core parameters");
    stats_.width = params_.width;
    stats_.freq_ghz = params_.freq_ghz;
    if (params_.attribute_sites) {
        attr_cur_ = &attr_unattributed_;
    }
    if (params_.phase_window > 0) {
        next_phase_ = params_.phase_window;
    }
}

SiteUarch&
CoreModel::attrAt(uint32_t site_id)
{
    if (site_id >= attr_sites_.size()) {
        attr_sites_.resize(site_id + 1);
    }
    return attr_sites_[site_id];
}

void
CoreModel::capturePhase()
{
    PhaseSample s;
    s.instructions = stats_.instructions;
    s.cycles = cur_cycle_;
    s.slots_retiring = stats_.slots_retiring;
    s.slots_frontend = stats_.slots_frontend;
    s.slots_bad_spec = stats_.slots_bad_spec;
    s.slots_backend_memory = stats_.slots_backend_memory;
    s.slots_backend_core = stats_.slots_backend_core;
    s.branches = stats_.branches;
    s.branch_mispredicts = stats_.branch_mispredicts;
    s.l1d_misses = stats_.l1d_misses;
    s.l2_misses = stats_.l2_misses;
    s.l3_misses = stats_.l3_misses;
    s.l1i_misses = stats_.l1i_misses;
    phase_.push_back(s);
    next_phase_ += params_.phase_window;
}

void
CoreModel::advanceTo(uint64_t target_cycle, StallCause cause)
{
    if (target_cycle <= cur_cycle_) {
        return;
    }
    const uint64_t empty =
        (target_cycle - cur_cycle_) * params_.width - slots_in_cycle_;
    switch (cause) {
      case StallCause::Frontend:
        stats_.slots_frontend += empty;
        break;
      case StallCause::BadSpeculation:
        stats_.slots_bad_spec += empty;
        break;
      case StallCause::BackendMemory:
        stats_.slots_backend_memory += empty;
        break;
      case StallCause::BackendCore:
        stats_.slots_backend_core += empty;
        break;
    }
    if (attr_cur_ != nullptr) {
        attr_cur_->cycles += target_cycle - cur_cycle_;
        switch (cause) {
          case StallCause::Frontend:
            attr_cur_->slots_frontend += empty;
            break;
          case StallCause::BadSpeculation:
            attr_cur_->slots_bad_spec += empty;
            break;
          case StallCause::BackendMemory:
            attr_cur_->slots_backend_memory += empty;
            break;
          case StallCause::BackendCore:
            attr_cur_->slots_backend_core += empty;
            break;
        }
    }
    cur_cycle_ = target_cycle;
    slots_in_cycle_ = 0;
}

void
CoreModel::drain()
{
    while (!rob_.empty() && rob_.front().time <= cur_cycle_) {
        rob_count_ -= rob_.front().count;
        rob_.pop_front();
    }
    while (!rs_.empty() && rs_.front().time <= cur_cycle_) {
        rs_count_ -= rs_.front().count;
        rs_.pop_front();
    }
    while (!sb_.empty() && sb_.front().time <= cur_cycle_) {
        sb_count_ -= sb_.front().count;
        sb_.pop_front();
    }
}

void
CoreModel::dispatch(uint32_t count)
{
    // Event-driven fast-forward (DESIGN.md §13). Two facts make a
    // closed-form advance bit-exact vs the stepped reference loop:
    //
    //  1. fetch_ready_ is invariant across this call and cur_cycle_ only
    //     grows, so the per-instruction frontend check can fire at most
    //     once — on the first instruction. Hoist it.
    //  2. drain() only pops window entries whose time has passed, and an
    //     entry expired at cycle T is still expired at every later cycle;
    //     nothing in dispatch reads window occupancy, and every consumer
    //     of occupancy (ensure*Space, which also charges the stalls)
    //     drains before deciding. So the stepped loop's per-rollover
    //     drains commute past the whole span, and one drain at the end
    //     frees the same entries with the same counters.
    //
    // What remains is pure arithmetic on (cur_cycle_, slots_in_cycle_,
    // slots_retiring, instructions): advance it in closed form.
    if (reference_stepping_) {
        referenceDispatch(count);
        return;
    }
    if (fetch_ready_ > cur_cycle_) {
        advanceTo(fetch_ready_, fetch_reason_);
        drain();
    }
    const uint32_t width = static_cast<uint32_t>(params_.width);
    const uint64_t slots0 = slots_in_cycle_;
    // slots_in_cycle_ < width always holds between calls, so single-
    // instruction events (every load, store, and branch) never need the
    // hardware divide: the span either stays inside the current cycle or
    // fills it exactly.
    const uint64_t total = slots0 + count;
    uint64_t rolled;
    uint32_t rem;
    if (total < width) {
        rolled = 0;
        rem = static_cast<uint32_t>(total);
    } else if (count == 1) {
        rolled = 1; // slots0 + 1 == width exactly.
        rem = 0;
    } else {
        rolled = total / width;
        rem = static_cast<uint32_t>(total % width);
    }
    if (attr_cur_ == nullptr && next_phase_ == UINT64_MAX) {
        // Hot path: attribution and phase sampling both off.
        stats_.slots_retiring += count;
        stats_.instructions += count;
        cur_cycle_ += rolled;
        slots_in_cycle_ = rem;
        if (rolled > 0) {
            drain();
        }
        return;
    }
    // Instrumented path. The attribution bucket cannot change inside
    // dispatch (only the block/branch probes retarget attr_cur_), so the
    // per-site charges post once; phase samples must land exactly on
    // window boundaries, so the span splits there — O(captures), not
    // O(instructions).
    const uint64_t cycle0 = cur_cycle_;
    if (next_phase_ == UINT64_MAX) {
        stats_.slots_retiring += count;
        stats_.instructions += count;
    } else {
        uint64_t done = 0;
        while (done < count) {
            const uint64_t to_boundary = next_phase_ - stats_.instructions;
            const uint64_t span =
                std::min<uint64_t>(count - done, to_boundary);
            stats_.slots_retiring += span;
            stats_.instructions += span;
            done += span;
            if (span == to_boundary) {
                // The reference loop samples after the boundary
                // instruction's retire/instruction increments but before
                // its dispatch slot is consumed: position the clock at
                // the cycle the first (done - 1) slots of this call
                // reached, then capture.
                cur_cycle_ = cycle0 + (slots0 + done - 1) / width;
                capturePhase();
            }
        }
    }
    cur_cycle_ = cycle0 + rolled;
    slots_in_cycle_ = rem;
    if (attr_cur_ != nullptr) {
        attr_cur_->slots_retiring += count;
        attr_cur_->cycles += rolled;
    }
    if (rolled > 0) {
        drain();
    }
}

void
CoreModel::referenceDispatch(uint32_t count)
{
    if (attr_cur_ == nullptr && next_phase_ == UINT64_MAX) {
        // The pre-fast-forward hot path: one step per retired
        // instruction (retained for the differential suite).
        for (uint32_t i = 0; i < count; ++i) {
            // Frontend availability gates dispatch.
            if (fetch_ready_ > cur_cycle_) {
                advanceTo(fetch_ready_, fetch_reason_);
                drain();
            }
            ++stats_.slots_retiring;
            ++stats_.instructions;
            ++slots_in_cycle_;
            if (slots_in_cycle_ == static_cast<uint32_t>(params_.width)) {
                ++cur_cycle_;
                slots_in_cycle_ = 0;
                drain();
            }
        }
        return;
    }
    // Instrumented reference path: per-site charges accumulate in locals
    // and post once after the loop; the phase check stays per
    // instruction so samples land on window boundaries.
    uint64_t cycles_rolled = 0;
    for (uint32_t i = 0; i < count; ++i) {
        if (fetch_ready_ > cur_cycle_) {
            advanceTo(fetch_ready_, fetch_reason_);
            drain();
        }
        ++stats_.slots_retiring;
        ++stats_.instructions;
        if (stats_.instructions >= next_phase_) {
            capturePhase();
        }
        ++slots_in_cycle_;
        if (slots_in_cycle_ == static_cast<uint32_t>(params_.width)) {
            ++cur_cycle_;
            slots_in_cycle_ = 0;
            ++cycles_rolled;
            drain();
        }
    }
    if (attr_cur_ != nullptr) {
        attr_cur_->slots_retiring += count;
        attr_cur_->cycles += cycles_rolled;
    }
}

void
CoreModel::ensureRobSpace(uint32_t count)
{
    while (rob_count_ + count > static_cast<uint64_t>(params_.rob_size)) {
        VT_ASSERT(!rob_.empty(), "ROB accounting broke");
        const WindowEntry& head = rob_.front();
        if (head.time > cur_cycle_) {
            const uint64_t before =
                stats_.slots_backend_memory + stats_.slots_backend_core;
            advanceTo(head.time, head.is_mem ? StallCause::BackendMemory
                                             : StallCause::BackendCore);
            stats_.slots_rob_stall +=
                stats_.slots_backend_memory + stats_.slots_backend_core
                - before;
        }
        drain();
    }
}

void
CoreModel::robPush(uint64_t complete, uint32_t count, bool is_mem)
{
    // In-order retirement: completion times are made monotone so an entry
    // cannot retire before its predecessors.
    complete = std::max(complete, rob_last_complete_);
    rob_last_complete_ = complete;
    if (!rob_.empty() && rob_.back().time == complete
        && rob_.back().is_mem == is_mem) {
        rob_.back().count += count;
    } else {
        rob_.push_back({complete, count, is_mem});
    }
    rob_count_ += count;
}

void
CoreModel::ensureRsSpace(uint32_t count)
{
    if (params_.issue_at_dispatch) {
        return;
    }
    while (rs_count_ + count > static_cast<uint64_t>(params_.rs_size)) {
        VT_ASSERT(!rs_.empty(), "RS accounting broke");
        const WindowEntry& head = rs_.front();
        if (head.time > cur_cycle_) {
            const uint64_t before =
                stats_.slots_backend_memory + stats_.slots_backend_core;
            advanceTo(head.time, head.is_mem ? StallCause::BackendMemory
                                             : StallCause::BackendCore);
            stats_.slots_rs_stall +=
                stats_.slots_backend_memory + stats_.slots_backend_core
                - before;
        }
        drain();
    }
}

void
CoreModel::rsPush(uint64_t free, uint32_t count, bool is_mem)
{
    if (params_.issue_at_dispatch) {
        return; // be_op2: instructions leave the RS immediately.
    }
    free = std::max(free, rs_last_free_);
    rs_last_free_ = free;
    if (!rs_.empty() && rs_.back().time == free
        && rs_.back().is_mem == is_mem) {
        rs_.back().count += count;
    } else {
        rs_.push_back({free, count, is_mem});
    }
    rs_count_ += count;
}

void
CoreModel::ensureSbSpace(uint32_t count)
{
    while (sb_count_ + count > static_cast<uint64_t>(params_.sb_size)) {
        VT_ASSERT(!sb_.empty(), "SB accounting broke");
        const WindowEntry& head = sb_.front();
        if (head.time > cur_cycle_) {
            const uint64_t before =
                stats_.slots_backend_memory + stats_.slots_backend_core;
            // The paper groups store-buffer stalls under core bound
            // (Fig 5e-h discussion).
            advanceTo(head.time, StallCause::BackendCore);
            stats_.slots_sb_stall +=
                stats_.slots_backend_memory + stats_.slots_backend_core
                - before;
        }
        drain();
    }
}

void
CoreModel::sbPush(uint64_t drain_time, uint32_t count)
{
    // Stores drain in order: drain times are made monotone like ROB
    // completion times, and same-cycle drains coalesce into one entry.
    const uint64_t t = std::max(drain_time, sb_last_drain_);
    sb_last_drain_ = t;
    if (!sb_.empty() && sb_.back().time == t) {
        sb_.back().count += count;
    } else {
        sb_.push_back({t, count, true});
    }
    sb_count_ += count;
}

void
CoreModel::resolveFrontend()
{
    if (fetch_ready_ > cur_cycle_) {
        advanceTo(fetch_ready_, fetch_reason_);
        drain();
    }
}

CoreModel::SiteFetchPlan&
CoreModel::planFor(const trace::CodeSite& site)
{
    if (site.id >= plans_.size()) {
        plans_.resize(site.id + 1);
    }
    SiteFetchPlan& plan = plans_[site.id];
    if (plan.address != site.address) {
        // First sighting, or a relayout pass moved the block.
        rebuildPlan(plan, site);
    }
    return plan;
}

void
CoreModel::rebuildPlan(SiteFetchPlan& plan, const trace::CodeSite& site)
{
    const uint32_t line_bytes = params_.l1i.line_bytes;
    const uint64_t first = site.address / line_bytes;
    const uint64_t last = (site.address + site.bytes - 1) / line_bytes;
    plan.address = site.address;
    plan.first_line = first;
    plan.page = site.address >> 12;
    plan.line_count = static_cast<uint32_t>(last - first + 1);
    plan.slots.resize(plan.line_count);
    for (uint32_t k = 0; k < plan.line_count; ++k) {
        // Seed every hint with way 0 of the line's own set: same-set by
        // construction, so touchIfResident()'s tag compare is sound from
        // the first use.
        plan.slots[k] = caches_.l1i().setBaseSlot(first + k);
    }
}

void
CoreModel::onBlock(const trace::CodeSite& site)
{
    if (reference_stepping_) {
        referenceOnBlock(site);
        return;
    }
    if (attr_cur_ != nullptr) {
        attr_cur_ = &attrAt(site.id);
    }
    // Frontend: fetch the block's cache lines through L1i and the iTLB,
    // walking the site's precomputed fetch plan. A line whose resident-
    // way hint still holds it takes the inline hit arm; anything else
    // falls back to the full access and refreshes the hint. Counter
    // order within the fetch phase is not observable (the next possible
    // observation point is dispatch), so the access tallies post in bulk.
    SiteFetchPlan& plan = planFor(site);
    Cache& l1i = caches_.l1i();
    const uint32_t lines = plan.line_count;
    stats_.l1i_accesses += lines;
    if (attr_cur_ != nullptr) {
        attr_cur_->l1i_accesses += lines;
    }
    int fetch_penalty = 0;
    uint32_t* slots = plan.slots.data();
    for (uint32_t k = 0; k < lines; ++k) {
        const uint64_t l = plan.first_line + k;
        if (l1i.touchIfResident(l, slots[k])) {
            continue; // L1i hit with exact hit-arm bookkeeping.
        }
        const AccessResult r = caches_.fetchLineAccess(l);
        slots[k] = l1i.mruSlot();
        if (r.l1_miss) {
            ++stats_.l1i_misses;
            if (attr_cur_ != nullptr) {
                ++attr_cur_->l1i_misses;
            }
            fetch_penalty =
                std::max(fetch_penalty,
                         r.latency - params_.latencies.l1);
        }
    }
    if (!itlb_.accessPage(plan.page)) {
        ++stats_.itlb_misses;
        if (attr_cur_ != nullptr) {
            ++attr_cur_->itlb_misses;
        }
        fetch_penalty += params_.latencies.itlb_miss;
    }
    if (fetch_penalty > 0) {
        const uint64_t ready = cur_cycle_ + fetch_penalty;
        if (ready > fetch_ready_) {
            fetch_ready_ = ready;
            fetch_reason_ = StallCause::Frontend;
        }
    }

    // Backend: the block's ALU instructions complete one cycle after
    // dispatch and issue immediately — unless the block consumes
    // just-loaded data (BlockLoadDep), in which case its work dwells in
    // the reservation station until the feeding load returns. Batches
    // larger than a window structure flow through in chunks.
    const bool load_dep = site.kind == trace::SiteKind::BlockLoadDep;
    uint32_t remaining = site.instructions;
    const uint32_t max_chunk = static_cast<uint32_t>(
        std::min(params_.rob_size, params_.rs_size));
    while (remaining > 0) {
        const uint32_t chunk = std::min(remaining, max_chunk);
        resolveFrontend();
        ensureRobSpace(chunk);
        ensureRsSpace(chunk);
        uint64_t issue = cur_cycle_ + 1;
        if (load_dep && last_load_complete_ > issue) {
            issue = last_load_complete_;
        }
        robPush(issue, chunk, load_dep);
        // RS dwell is bounded (entries leave at issue; the scheduler does
        // not hold them for a full memory round trip).
        rsPush(std::min(issue, cur_cycle_ + 15), chunk, load_dep);
        dispatch(chunk);
        remaining -= chunk;
    }
}

void
CoreModel::referenceOnBlock(const trace::CodeSite& site)
{
    // Pre-fast-forward implementation: recompute the line span per event
    // and walk every line through the full cache access path.
    if (attr_cur_ != nullptr) {
        attr_cur_ = &attrAt(site.id);
    }
    const uint32_t line = params_.l1i.line_bytes;
    const uint64_t first = site.address / line;
    const uint64_t last = (site.address + site.bytes - 1) / line;
    int fetch_penalty = 0;
    for (uint64_t l = first; l <= last; ++l) {
        ++stats_.l1i_accesses;
        const AccessResult r = caches_.fetchAccess(l * line);
        if (attr_cur_ != nullptr) {
            ++attr_cur_->l1i_accesses;
        }
        if (r.l1_miss) {
            ++stats_.l1i_misses;
            if (attr_cur_ != nullptr) {
                ++attr_cur_->l1i_misses;
            }
            fetch_penalty =
                std::max(fetch_penalty,
                         r.latency - params_.latencies.l1);
        }
    }
    if (!itlb_.access(site.address)) {
        ++stats_.itlb_misses;
        if (attr_cur_ != nullptr) {
            ++attr_cur_->itlb_misses;
        }
        fetch_penalty += params_.latencies.itlb_miss;
    }
    if (fetch_penalty > 0) {
        const uint64_t ready = cur_cycle_ + fetch_penalty;
        if (ready > fetch_ready_) {
            fetch_ready_ = ready;
            fetch_reason_ = StallCause::Frontend;
        }
    }

    const bool load_dep = site.kind == trace::SiteKind::BlockLoadDep;
    uint32_t remaining = site.instructions;
    const uint32_t max_chunk = static_cast<uint32_t>(
        std::min(params_.rob_size, params_.rs_size));
    while (remaining > 0) {
        const uint32_t chunk = std::min(remaining, max_chunk);
        resolveFrontend();
        ensureRobSpace(chunk);
        ensureRsSpace(chunk);
        uint64_t issue = cur_cycle_ + 1;
        if (load_dep && last_load_complete_ > issue) {
            issue = last_load_complete_;
        }
        robPush(issue, chunk, load_dep);
        rsPush(std::min(issue, cur_cycle_ + 15), chunk, load_dep);
        dispatch(chunk);
        remaining -= chunk;
    }
}

void
CoreModel::onBranch(const trace::CodeSite& site, bool taken)
{
    if (reference_stepping_) {
        referenceOnBranch(site, taken);
        return;
    }
    if (attr_cur_ != nullptr) {
        attr_cur_ = &attrAt(site.id);
        ++attr_cur_->branches;
    }
    ++stats_.branches;
    // One devirtualizable call per branch instead of the predict() +
    // update() virtual pair; behaviour is identical by construction.
    const bool predicted =
        predictor_->predictAndUpdate(site.address, taken);

    resolveFrontend();
    ensureRobSpace(1);
    ensureRsSpace(1);

    // The branch resolves when its inputs are ready; load-dependent
    // branches resolve only after the feeding load returns.
    uint64_t resolve = cur_cycle_ + 1;
    if (site.kind == trace::SiteKind::BranchLoadDep) {
        resolve = std::max(resolve, last_load_complete_);
    }

    robPush(resolve, 1, false);
    rsPush(std::min(resolve, cur_cycle_ + 15), 1,
           site.kind == trace::SiteKind::BranchLoadDep);
    dispatch(1);

    if (predicted != taken) {
        ++stats_.branch_mispredicts;
        if (attr_cur_ != nullptr) {
            ++attr_cur_->branch_mispredicts;
        }
        const uint64_t ready =
            resolve + static_cast<uint64_t>(params_.mispredict_penalty);
        if (ready > fetch_ready_) {
            fetch_ready_ = ready;
            fetch_reason_ = StallCause::BadSpeculation;
        }
    } else if (taken) {
        // Correctly predicted taken: redirect bubble, larger on BTB miss.
        const bool btb_hit = btb_.access(site.address);
        if (!btb_hit) {
            ++stats_.btb_misses;
            if (attr_cur_ != nullptr) {
                ++attr_cur_->btb_misses;
            }
        }
        const int bubble =
            btb_hit ? params_.taken_bubble : params_.btb_miss_penalty;
        const uint64_t ready = cur_cycle_ + bubble;
        if (ready > fetch_ready_) {
            fetch_ready_ = ready;
            fetch_reason_ = StallCause::Frontend;
        }
    }
}

void
CoreModel::referenceOnBranch(const trace::CodeSite& site, bool taken)
{
    // Pre-fast-forward implementation: separate predict() and update()
    // virtual calls.
    if (attr_cur_ != nullptr) {
        attr_cur_ = &attrAt(site.id);
        ++attr_cur_->branches;
    }
    ++stats_.branches;
    const bool predicted = predictor_->predict(site.address);
    predictor_->update(site.address, taken);

    resolveFrontend();
    ensureRobSpace(1);
    ensureRsSpace(1);

    uint64_t resolve = cur_cycle_ + 1;
    if (site.kind == trace::SiteKind::BranchLoadDep) {
        resolve = std::max(resolve, last_load_complete_);
    }

    robPush(resolve, 1, false);
    rsPush(std::min(resolve, cur_cycle_ + 15), 1,
           site.kind == trace::SiteKind::BranchLoadDep);
    dispatch(1);

    if (predicted != taken) {
        ++stats_.branch_mispredicts;
        if (attr_cur_ != nullptr) {
            ++attr_cur_->branch_mispredicts;
        }
        const uint64_t ready =
            resolve + static_cast<uint64_t>(params_.mispredict_penalty);
        if (ready > fetch_ready_) {
            fetch_ready_ = ready;
            fetch_reason_ = StallCause::BadSpeculation;
        }
    } else if (taken) {
        const bool btb_hit = btb_.access(site.address);
        if (!btb_hit) {
            ++stats_.btb_misses;
            if (attr_cur_ != nullptr) {
                ++attr_cur_->btb_misses;
            }
        }
        const int bubble =
            btb_hit ? params_.taken_bubble : params_.btb_miss_penalty;
        const uint64_t ready = cur_cycle_ + bubble;
        if (ready > fetch_ready_) {
            fetch_ready_ = ready;
            fetch_reason_ = StallCause::Frontend;
        }
    }
}

void
CoreModel::onLoad(uint64_t addr, uint32_t bytes)
{
    if (reference_stepping_) {
        referenceOnLoad(addr, bytes);
        return;
    }
    resolveFrontend();
    ensureRobSpace(1);
    ensureRsSpace(1);
    // Line span via shifts: line sizes are asserted powers of two, and
    // unsigned divide/multiply by 2^k is exactly shift by k — this only
    // dodges the hardware divide the / form costs per event.
    const uint32_t shift = caches_.l1d().lineShift();
    const uint64_t first = addr >> shift;
    const uint64_t last = (addr + (bytes == 0 ? 0 : bytes - 1)) >> shift;
    int latency = params_.latencies.l1;
    for (uint64_t l = first; l <= last; ++l) {
        ++stats_.l1d_accesses;
        const AccessResult r = caches_.dataAccess(l << shift);
        if (attr_cur_ != nullptr) {
            ++attr_cur_->l1d_accesses;
            attr_cur_->l1d_misses += r.l1_miss ? 1 : 0;
            attr_cur_->l2_misses += r.l2_miss ? 1 : 0;
            attr_cur_->l3_misses += r.l3_miss ? 1 : 0;
        }
        if (r.l1_miss) {
            ++stats_.l1d_misses;
        }
        if (r.l2_miss) {
            ++stats_.l2_misses;
        }
        if (r.l3_miss) {
            ++stats_.l3_misses;
        }
        latency = std::max(latency, r.latency);
    }

    // Miss-status-holding registers bound memory-level parallelism: a
    // miss beyond the outstanding limit starts only when the oldest one
    // completes. mshr_head_ caches the oldest outstanding completion
    // (UINT64_MAX when empty), so the common no-expiry case skips the
    // pruning scan entirely; the queue itself is untouched until a head
    // actually expires, which pops the same entries the stepped loop
    // would.
    uint64_t complete = cur_cycle_ + latency;
    if (latency > params_.latencies.l1) {
        if (mshr_head_ <= cur_cycle_) {
            while (!mshr_.empty() && mshr_.front() <= cur_cycle_) {
                mshr_.pop_front();
            }
            mshr_head_ = mshr_.empty() ? UINT64_MAX : mshr_.front();
        }
        if (static_cast<int>(mshr_.size()) >= params_.mshr_entries) {
            complete = mshr_.front() + latency;
        }
        mshr_.push_back(complete);
        mshr_head_ = mshr_.front();
    }
    last_load_complete_ = complete;
    robPush(complete, 1, true);
    // Loads leave the reservation station at issue (address generation),
    // not at data return; only a bounded scheduler dwell is charged. The
    // in-order-retire ROB carries the full miss latency.
    rsPush(cur_cycle_ + std::min(latency, 15), 1, true);
    dispatch(1);
}

void
CoreModel::referenceOnLoad(uint64_t addr, uint32_t bytes)
{
    // Pre-fast-forward implementation: unconditional MSHR pruning scan.
    resolveFrontend();
    ensureRobSpace(1);
    ensureRsSpace(1);
    const uint32_t line = params_.l1d.line_bytes;
    const uint64_t first = addr / line;
    const uint64_t last = (addr + (bytes == 0 ? 0 : bytes - 1)) / line;
    int latency = params_.latencies.l1;
    for (uint64_t l = first; l <= last; ++l) {
        ++stats_.l1d_accesses;
        const AccessResult r = caches_.dataAccess(l * line);
        if (attr_cur_ != nullptr) {
            ++attr_cur_->l1d_accesses;
            attr_cur_->l1d_misses += r.l1_miss ? 1 : 0;
            attr_cur_->l2_misses += r.l2_miss ? 1 : 0;
            attr_cur_->l3_misses += r.l3_miss ? 1 : 0;
        }
        if (r.l1_miss) {
            ++stats_.l1d_misses;
        }
        if (r.l2_miss) {
            ++stats_.l2_misses;
        }
        if (r.l3_miss) {
            ++stats_.l3_misses;
        }
        latency = std::max(latency, r.latency);
    }

    uint64_t complete = cur_cycle_ + latency;
    if (latency > params_.latencies.l1) {
        while (!mshr_.empty() && mshr_.front() <= cur_cycle_) {
            mshr_.pop_front();
        }
        if (static_cast<int>(mshr_.size()) >= params_.mshr_entries) {
            complete = mshr_.front() + latency;
        }
        mshr_.push_back(complete);
    }
    last_load_complete_ = complete;
    robPush(complete, 1, true);
    rsPush(cur_cycle_ + std::min(latency, 15), 1, true);
    dispatch(1);
}

void
CoreModel::onStore(uint64_t addr, uint32_t bytes)
{
    if (reference_stepping_) {
        referenceOnStore(addr, bytes);
        return;
    }
    resolveFrontend();
    ensureRobSpace(1);
    ensureRsSpace(1);
    ensureSbSpace(1);
    // Same shift-based line math as onLoad (line sizes are 2^k).
    const uint32_t shift = caches_.l1d().lineShift();
    const uint64_t first = addr >> shift;
    const uint64_t last = (addr + (bytes == 0 ? 0 : bytes - 1)) >> shift;
    int latency = params_.latencies.l1;
    for (uint64_t l = first; l <= last; ++l) {
        ++stats_.l1d_accesses;
        const AccessResult r = caches_.dataAccess(l << shift); // write-alloc
        if (attr_cur_ != nullptr) {
            ++attr_cur_->l1d_accesses;
            attr_cur_->l1d_misses += r.l1_miss ? 1 : 0;
            attr_cur_->l2_misses += r.l2_miss ? 1 : 0;
            attr_cur_->l3_misses += r.l3_miss ? 1 : 0;
        }
        if (r.l1_miss) {
            ++stats_.l1d_misses;
        }
        if (r.l2_miss) {
            ++stats_.l2_misses;
        }
        if (r.l3_miss) {
            ++stats_.l3_misses;
        }
        latency = std::max(latency, r.latency);
    }

    // Stores retire promptly but occupy the store buffer until the line
    // is written; a full SB blocks dispatch (space reserved above).
    sbPush(cur_cycle_ + latency, 1);

    robPush(cur_cycle_ + 1, 1, false);
    rsPush(cur_cycle_ + 1, 1, false);
    dispatch(1);
}

void
CoreModel::referenceOnStore(uint64_t addr, uint32_t bytes)
{
    // Pre-fast-forward implementation: division-based line math and the
    // store-buffer push open-coded (pre-sbPush).
    resolveFrontend();
    ensureRobSpace(1);
    ensureRsSpace(1);
    ensureSbSpace(1);
    const uint32_t line = params_.l1d.line_bytes;
    const uint64_t first = addr / line;
    const uint64_t last = (addr + (bytes == 0 ? 0 : bytes - 1)) / line;
    int latency = params_.latencies.l1;
    for (uint64_t l = first; l <= last; ++l) {
        ++stats_.l1d_accesses;
        const AccessResult r = caches_.dataAccess(l * line); // write-alloc
        if (attr_cur_ != nullptr) {
            ++attr_cur_->l1d_accesses;
            attr_cur_->l1d_misses += r.l1_miss ? 1 : 0;
            attr_cur_->l2_misses += r.l2_miss ? 1 : 0;
            attr_cur_->l3_misses += r.l3_miss ? 1 : 0;
        }
        if (r.l1_miss) {
            ++stats_.l1d_misses;
        }
        if (r.l2_miss) {
            ++stats_.l2_misses;
        }
        if (r.l3_miss) {
            ++stats_.l3_misses;
        }
        latency = std::max(latency, r.latency);
    }

    const uint64_t drain_time = cur_cycle_ + latency;
    const uint64_t drain_monotone = std::max(drain_time, sb_last_drain_);
    sb_last_drain_ = drain_monotone;
    if (!sb_.empty() && sb_.back().time == drain_monotone) {
        sb_.back().count += 1;
    } else {
        sb_.push_back({drain_monotone, 1, true});
    }
    ++sb_count_;

    robPush(cur_cycle_ + 1, 1, false);
    rsPush(cur_cycle_ + 1, 1, false);
    dispatch(1);
}

void
CoreModel::onBatch(const trace::ProbeEvent* events, size_t count)
{
    // Direct batch consumption: the same member functions handle each
    // record in emission order (qualified calls — no virtual dispatch),
    // so the resulting stats are bit-identical to the per-event path.
    // Loop-heavy streams repeat the same site id back to back, so a
    // one-entry cache skips the registry lookup for the repeat case
    // (CodeSite objects are stable once defined).
    trace::SiteRegistry& reg = trace::registry();
    const trace::CodeSite* last_site = nullptr;
    uint32_t last_aux = 0;
    for (size_t i = 0; i < count; ++i) {
        const trace::ProbeEvent& e = events[i];
        switch (e.kind) {
        case trace::ProbeEvent::kBlock:
        case trace::ProbeEvent::kBlockBranch: {
            if (last_site == nullptr || e.aux != last_aux) {
                last_site = &reg.site(e.aux);
                last_aux = e.aux;
            }
            CoreModel::onBlock(*last_site);
            if (e.kind == trace::ProbeEvent::kBlockBranch) {
                CoreModel::onBranch(*last_site, (e.flags & 1) != 0);
            }
            break;
        }
        case trace::ProbeEvent::kLoad:
            CoreModel::onLoad(e.addr, e.aux);
            break;
        case trace::ProbeEvent::kStore:
            CoreModel::onStore(e.addr, e.aux);
            break;
        default:
            VT_PANIC("corrupt probe event kind ", static_cast<int>(e.kind));
        }
    }
}

CoreStats
CoreModel::finish()
{
    VT_ASSERT(!finished_, "finish() called twice");
    finished_ = true;

    // Let the machine drain: run the clock to the last retirement.
    uint64_t end = std::max(cur_cycle_, fetch_ready_);
    if (!rob_.empty()) {
        end = std::max(end, rob_.back().time);
    }
    if (!sb_.empty()) {
        end = std::max(end, sb_.back().time);
    }
    if (slots_in_cycle_ > 0) {
        // Fill the partial cycle's leftover slots as backend-core.
        stats_.slots_backend_core += params_.width - slots_in_cycle_;
        if (attr_cur_ != nullptr) {
            attr_cur_->slots_backend_core += params_.width - slots_in_cycle_;
            ++attr_cur_->cycles;
        }
        ++cur_cycle_;
        slots_in_cycle_ = 0;
    }
    advanceTo(end, StallCause::BackendMemory);

    stats_.cycles = cur_cycle_;
    stats_.slots_total =
        stats_.cycles * static_cast<uint64_t>(params_.width);
    if (next_phase_ != UINT64_MAX
        && (phase_.empty() || phase_.back().instructions != stats_.instructions
            || phase_.back().cycles != stats_.cycles)) {
        // Close the time-series with the post-drain totals.
        capturePhase();
    }
    return stats_;
}

} // namespace vtrans::uarch

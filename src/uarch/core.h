#ifndef VTRANS_UARCH_CORE_H_
#define VTRANS_UARCH_CORE_H_

/**
 * @file
 * The out-of-order core timing model: an interval-style simulator (the
 * fidelity class of Sniper, §III-B5) that consumes the probe event stream
 * and produces cycles, Top-down pipeline-slot breakdown (Yasin's method,
 * as VTune reports it, §III-B1), and the fine-grained event rates Linux
 * perf would report (MPKI, resource stalls; §III-B2).
 *
 * Model summary: a width-W dispatch front consumes one slot per
 * instruction; empty slots are attributed to the stall that caused them —
 * frontend (L1i/iTLB misses, taken-branch redirects), bad speculation
 * (mispredict flush bubbles), or backend (ROB/RS/SB full, split into
 * memory-bound and core-bound by the blocking instruction). Loads get
 * their latency from a functional cache hierarchy; retirement is in-order
 * via monotone completion times.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/probe.h"
#include "uarch/branch.h"
#include "uarch/cache.h"
#include "uarch/ringbuf.h"
#include "uarch/tlb.h"

namespace vtrans::uarch {

/** Full configuration of a simulated core (a Table IV row). */
struct CoreParams
{
    std::string name = "baseline";

    // Pipeline.
    int width = 4;               ///< Dispatch/issue width (slots/cycle).
    int rob_size = 128;          ///< Reorder buffer entries.
    int rs_size = 36;            ///< Reservation station entries.
    int sb_size = 32;            ///< Store buffer entries.
    bool issue_at_dispatch = false; ///< be_op2: RS dwell removed.
    int mshr_entries = 10;       ///< Max outstanding L1d misses (MLP cap).
    int mispredict_penalty = 12; ///< Refill cycles after branch resolve.
    int btb_miss_penalty = 3;    ///< Redirect bubble on BTB miss.
    int taken_bubble = 1;        ///< Redirect bubble on predicted-taken.
    double freq_ghz = 3.5;       ///< §III: 3.5 GHz Xeon E3.

    // Memory system.
    CacheParams l1d{32 * 1024, 8, 64};
    CacheParams l1i{32 * 1024, 8, 64};
    CacheParams l2{256 * 1024, 8, 64};
    CacheParams l3{8192 * 1024, 16, 64};
    uint32_t l4_size = 0;        ///< 0 = no L4 (baseline).
    uint32_t itlb_entries = 128;
    LatencyParams latencies;

    // Branch prediction.
    std::string predictor = "pentium_m";

    // Observability (pure accounting; never changes timing, event
    // handling order, or any CoreStats value).
    bool attribute_sites = false; ///< Charge cycles/slots/misses to the
                                  ///< current trace::CodeSite.
    uint64_t phase_window = 0;    ///< Cumulative-counter snapshot every N
                                  ///< retired instructions (0 = off).

    /** Test-only: step the model one retired instruction at a time and
     *  walk every fetch line through the full cache path, as the model
     *  did before the event-driven fast-forward (DESIGN.md §13). The
     *  differential suite and the microbench's model-sink gate run the
     *  same stream through both paths and require bit-identical
     *  CoreStats/SiteUarch; production code never sets this. */
    bool reference_stepping = false;
};

/**
 * Per-site µarch tallies, filled only when CoreParams::attribute_sites
 * is on. Every charge mirrors the exact CoreStats increment it shadows,
 * so summing any field across all sites plus the unattributed bucket
 * reproduces the corresponding CoreStats counter bit for bit
 * (slots_total has no per-site mirror; it is cycles * width).
 */
struct SiteUarch
{
    uint64_t cycles = 0;
    uint64_t slots_retiring = 0;
    uint64_t slots_frontend = 0;
    uint64_t slots_bad_spec = 0;
    uint64_t slots_backend_memory = 0;
    uint64_t slots_backend_core = 0;
    uint64_t branches = 0;
    uint64_t branch_mispredicts = 0;
    uint64_t l1d_accesses = 0;
    uint64_t l1d_misses = 0;
    uint64_t l2_misses = 0;
    uint64_t l3_misses = 0;
    uint64_t l1i_accesses = 0;
    uint64_t l1i_misses = 0;
    uint64_t itlb_misses = 0;
    uint64_t btb_misses = 0;

    void add(const SiteUarch& other);
};

/** One cumulative counter snapshot of the phase time-series, taken every
 *  CoreParams::phase_window retired instructions (plus a final one at
 *  finish()). Consumers difference adjacent samples for window rates. */
struct PhaseSample
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    uint64_t slots_retiring = 0;
    uint64_t slots_frontend = 0;
    uint64_t slots_bad_spec = 0;
    uint64_t slots_backend_memory = 0;
    uint64_t slots_backend_core = 0;
    uint64_t branches = 0;
    uint64_t branch_mispredicts = 0;
    uint64_t l1d_misses = 0;
    uint64_t l2_misses = 0;
    uint64_t l3_misses = 0;
    uint64_t l1i_misses = 0;
};

/** Top-down pipeline-slot breakdown (fractions sum to 1). */
struct TopDown
{
    double retiring = 0.0;
    double frontend = 0.0;
    double bad_speculation = 0.0;
    double backend_memory = 0.0;
    double backend_core = 0.0;

    double backend() const { return backend_memory + backend_core; }
};

/** Raw and derived counters of one simulation. */
struct CoreStats
{
    // Raw counters.
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    uint64_t branches = 0;
    uint64_t branch_mispredicts = 0;
    uint64_t l1d_accesses = 0;
    uint64_t l1d_misses = 0;
    uint64_t l2_misses = 0;   ///< Data-side L2 misses.
    uint64_t l3_misses = 0;   ///< Data-side L3 misses.
    uint64_t l1i_accesses = 0;
    uint64_t l1i_misses = 0;
    uint64_t itlb_misses = 0;
    uint64_t btb_misses = 0;

    // Stall slots by cause (units: dispatch slots).
    uint64_t slots_total = 0;
    uint64_t slots_retiring = 0;
    uint64_t slots_frontend = 0;
    uint64_t slots_bad_spec = 0;
    uint64_t slots_backend_memory = 0;
    uint64_t slots_backend_core = 0;

    // Resource-specific stall slots (subset of backend slots).
    uint64_t slots_rob_stall = 0;
    uint64_t slots_rs_stall = 0;
    uint64_t slots_sb_stall = 0;

    int width = 4;
    double freq_ghz = 3.5;

    // Derived metrics.
    double ipc() const;
    double seconds() const;
    double branchMpki() const;
    double l1dMpki() const;
    double l2Mpki() const;
    double l3Mpki() const;
    double l1iMpki() const;
    TopDown topdown() const;
    /** Resource stall cycles per kilo-instruction. */
    double robStallsPki() const;
    double rsStallsPki() const;
    double sbStallsPki() const;
    double anyResourceStallsPki() const;
};

/**
 * The core model; attach with trace::setSink(&model), run the workload,
 * then call finish().
 */
class CoreModel : public trace::ProbeSink
{
  public:
    explicit CoreModel(const CoreParams& params);

    // ProbeSink interface.
    void onBlock(const trace::CodeSite& site) override;
    void onBranch(const trace::CodeSite& site, bool taken) override;
    void onLoad(uint64_t addr, uint32_t bytes) override;
    void onStore(uint64_t addr, uint32_t bytes) override;

    /** Consumes a batch directly (no per-event virtual dispatch); the
     *  records are handled in order by the same member functions, so the
     *  resulting CoreStats are bit-identical to the per-event path. */
    void onBatch(const trace::ProbeEvent* events, size_t count) override;

    /** Finalizes accounting and returns the statistics. */
    CoreStats finish();

    const CoreParams& params() const { return params_; }

    /** Per-site attribution, indexed by trace::CodeSite::id (shorter than
     *  the registry if trailing sites saw no events). Totals are exact
     *  only after finish() has charged the drain. Empty when
     *  CoreParams::attribute_sites is off. */
    const std::vector<SiteUarch>& attributionPerSite() const
    {
        return attr_sites_;
    }

    /** Charges that predate the first block probe (attribution on). */
    const SiteUarch& attributionUnattributed() const
    {
        return attr_unattributed_;
    }

    bool attributionEnabled() const { return params_.attribute_sites; }

    /** Cumulative snapshots every CoreParams::phase_window retired
     *  instructions; finish() appends a final end-of-run sample. Empty
     *  when phase_window is 0. */
    const std::vector<PhaseSample>& phaseSamples() const { return phase_; }

  private:
    enum class StallCause : uint8_t
    {
        Frontend,
        BadSpeculation,
        BackendMemory,
        BackendCore,
    };

    /**
     * Precomputed instruction-fetch geometry of one code site. The
     * block's L1i line span and iTLB page are pure functions of the
     * site's (immutable) size and its layout address, so they are
     * computed once per site — and rebuilt only if a relayout pass
     * rewrites the address (`address` is the validity key). `slots`
     * additionally remembers, per line, the cache way the line was last
     * resident in; Cache::touchIfResident() re-validates the hint on
     * every use, so a stale slot costs one failed tag compare, never a
     * wrong result.
     */
    struct SiteFetchPlan
    {
        /// No site ever lands at this address (layout starts at
        /// SiteRegistry::kTextBase and grows).
        static constexpr uint64_t kNoAddress = UINT64_MAX;

        uint64_t address = kNoAddress; ///< site.address at build time.
        uint64_t first_line = 0;       ///< First L1i line index.
        uint64_t page = 0;             ///< iTLB page (address >> 12).
        uint32_t line_count = 0;       ///< Lines spanned by the block.
        std::vector<uint32_t> slots;   ///< Resident-way hint per line.
    };

    /** Advances dispatch to `target_cycle`, attributing empty slots. */
    void advanceTo(uint64_t target_cycle, StallCause cause);

    /** Dispatches `count` retiring instructions (handles cycle rollover
     *  and frontend-availability stalls). Event-driven: the whole span
     *  advances in closed form — see DESIGN.md §13 for the argument
     *  that this is bit-exact vs the stepped reference path. */
    void dispatch(uint32_t count);

    /** The pre-fast-forward implementations, retained verbatim for the
     *  differential suite (CoreParams::reference_stepping). */
    void referenceDispatch(uint32_t count);
    void referenceOnBlock(const trace::CodeSite& site);
    void referenceOnBranch(const trace::CodeSite& site, bool taken);
    void referenceOnLoad(uint64_t addr, uint32_t bytes);
    void referenceOnStore(uint64_t addr, uint32_t bytes);

    /** The fetch plan for `site` (built or rebuilt on demand). */
    SiteFetchPlan& planFor(const trace::CodeSite& site);
    void rebuildPlan(SiteFetchPlan& plan, const trace::CodeSite& site);

    /** Stalls dispatch until the frontend has instructions available. */
    void resolveFrontend();

    /** Stalls dispatch until the window has room for `count` entries. */
    void ensureRobSpace(uint32_t count);
    void ensureRsSpace(uint32_t count);
    void ensureSbSpace(uint32_t count);

    /** Pushes `count` instructions completing at `complete` into the ROB
     *  (space must have been ensured). */
    void robPush(uint64_t complete, uint32_t count, bool is_mem);

    /** Pushes an RS entry freed at `free` (space must have been ensured). */
    void rsPush(uint64_t free, uint32_t count, bool is_mem);

    /** Pushes `count` store-buffer entries draining at `drain_time`
     *  (space must have been ensured; completion times made monotone). */
    void sbPush(uint64_t drain_time, uint32_t count);

    /** Frees entries whose time has passed. */
    void drain();

    /** Per-site bucket for `site_id` (grows the table on demand). */
    SiteUarch& attrAt(uint32_t site_id);

    /** Records a cumulative PhaseSample and arms the next window. */
    void capturePhase();

    uint64_t now() const { return cur_cycle_; }

    CoreParams params_;
    CacheHierarchy caches_;
    Tlb itlb_;
    std::unique_ptr<BranchPredictor> predictor_;
    Btb btb_;

    struct WindowEntry
    {
        uint64_t time;   ///< Retire/issue/drain cycle.
        uint32_t count;  ///< Instructions coalesced into this entry.
        bool is_mem;     ///< Blocking on memory (stall attribution).
    };

    // Dispatch state.
    uint64_t cur_cycle_ = 0;
    uint32_t slots_in_cycle_ = 0;

    // Frontend availability.
    uint64_t fetch_ready_ = 0;
    StallCause fetch_reason_ = StallCause::Frontend;

    // Window occupancy. Ring buffers instead of deques: coalescing keeps
    // the entry count far below the modelled structure size, so in steady
    // state these never allocate (see uarch/ringbuf.h).
    RingBuffer<WindowEntry> rob_;
    RingBuffer<WindowEntry> rs_;
    RingBuffer<WindowEntry> sb_;
    uint64_t rob_count_ = 0;
    uint64_t rs_count_ = 0;
    uint64_t sb_count_ = 0;
    uint64_t rob_last_complete_ = 0;
    uint64_t rs_last_free_ = 0;
    uint64_t sb_last_drain_ = 0;

    uint64_t last_load_complete_ = 0;
    RingBuffer<uint64_t> mshr_; ///< Completion times of in-flight misses.

    /** mshr_.front() (UINT64_MAX when empty), cached so onLoad skips the
     *  head-pruning loop entirely while the oldest miss is still in the
     *  future — the common case on a streaming miss train. */
    uint64_t mshr_head_ = UINT64_MAX;

    /** Per-site fetch plans, indexed by trace::CodeSite::id (grown on
     *  demand like attr_sites_). */
    std::vector<SiteFetchPlan> plans_;

    /** CoreParams::reference_stepping, hoisted (one predictable branch
     *  at the top of each event handler selects the retained path). */
    bool reference_stepping_ = false;

    CoreStats stats_;
    bool finished_ = false;

    // Per-site attribution (CoreParams::attribute_sites). attr_cur_ is
    // null when attribution is off — a single predictable branch guards
    // every mirrored charge — and otherwise always points at a live
    // bucket (initially the unattributed one). It is refreshed on every
    // block/branch probe, the only operations that can grow attr_sites_,
    // so it never dangles across intervening loads/stores.
    std::vector<SiteUarch> attr_sites_;
    SiteUarch attr_unattributed_;
    SiteUarch* attr_cur_ = nullptr;

    // Phase time-series (CoreParams::phase_window). next_phase_ stays at
    // UINT64_MAX when sampling is off, so the hot dispatch loop pays one
    // never-taken compare per instruction.
    std::vector<PhaseSample> phase_;
    uint64_t next_phase_ = UINT64_MAX;
};

/** Runs a callable under this core model and returns its stats. The model
 *  attaches with the process default batch capacity (see
 *  trace::defaultBatchCapacity); detaching flushes any pending events
 *  before finish() reads the state. */
template <typename Workload>
CoreStats
simulate(const CoreParams& params, Workload&& workload)
{
    CoreModel model(params);
    trace::setSink(&model, trace::defaultBatchCapacity());
    workload();
    trace::setSink(nullptr);
    return model.finish();
}

} // namespace vtrans::uarch

#endif // VTRANS_UARCH_CORE_H_

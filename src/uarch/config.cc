#include "uarch/config.h"

#include "common/status.h"

namespace vtrans::uarch {

// Scaled-simulation methodology (DESIGN.md §5): the synthetic videos are
// 1/12-scale in area, so cache capacities are scaled down to keep the
// working-set-to-capacity ratios of the paper's machine. Divisors:
// L1d /8 (a frame column pass must exceed it, as 1080 rows exceed 32K),
// L1i /4, L2 /8, L3 /64, iTLB /8. All *relationships* of Table IV are preserved
// exactly: fe_op doubles L1i and the iTLB; be_op1 doubles L1d and L2,
// halves L3, and adds an L4 of twice the baseline L3; be_op2 doubles the
// ROB and RS and issues at dispatch; bs_op swaps the predictor for TAGE.

CoreParams
baselineConfig()
{
    CoreParams p;
    p.name = "baseline";
    // Table IV baseline (Gainestown): 32K L1d/L1i -> 8K scaled, 256K L2
    // -> 32K, 8192K L3 -> 128K, no L4, 128-entry iTLB -> 16, 128 ROB,
    // 36 RS, no issue-at-dispatch, Pentium M predictor.
    p.l1d = {4 * 1024, 8, 64};
    p.l1i = {8 * 1024, 8, 64};
    p.l2 = {32 * 1024, 8, 64};
    p.l3 = {128 * 1024, 16, 64};
    p.l4_size = 0;
    p.itlb_entries = 16;
    return p;
}

CoreParams
feOpConfig()
{
    CoreParams p = baselineConfig();
    p.name = "fe_op";
    p.l1i.size_bytes *= 2;   // Table IV: 32K -> 64K
    p.itlb_entries *= 2;     // Table IV: 128 -> 256
    return p;
}

CoreParams
beOp1Config()
{
    CoreParams p = baselineConfig();
    p.name = "be_op1";
    p.l1d.size_bytes *= 2;          // Table IV: 32K -> 64K
    p.l2.size_bytes *= 2;           // Table IV: 256K -> 512K
    p.l3.size_bytes /= 2;           // Table IV: 8192K -> 4096K
    p.l4_size = 2 * baselineConfig().l3.size_bytes; // Table IV: 16384K
    return p;
}

CoreParams
beOp2Config()
{
    CoreParams p = baselineConfig();
    p.name = "be_op2";
    p.rob_size = 256;        // Table IV: 128 -> 256
    p.rs_size = 72;          // Table IV: 36 -> 72
    p.issue_at_dispatch = true;
    return p;
}

CoreParams
bsOpConfig()
{
    CoreParams p = baselineConfig();
    p.name = "bs_op";
    p.predictor = "tage";
    return p;
}

std::vector<CoreParams>
tableIVConfigs()
{
    return {baselineConfig(), feOpConfig(), beOp1Config(), beOp2Config(),
            bsOpConfig()};
}

std::vector<CoreParams>
optimizedConfigs()
{
    return {feOpConfig(), beOp1Config(), beOp2Config(), bsOpConfig()};
}

CoreParams
configByName(const std::string& name)
{
    for (const auto& p : tableIVConfigs()) {
        if (p.name == name) {
            return p;
        }
    }
    VT_FATAL("unknown microarchitecture config: ", name,
             " (known: baseline, fe_op, be_op1, be_op2, bs_op)");
}

} // namespace vtrans::uarch

#ifndef VTRANS_UARCH_CACHE_H_
#define VTRANS_UARCH_CACHE_H_

/**
 * @file
 * Set-associative caches with LRU replacement and a multi-level hierarchy,
 * modelling the Intel Xeon E3 memory system of the paper's test machine
 * (§III: 32K L1i + 32K L1d, 256K L2, 8M L3) and the enlarged variants of
 * Table IV (incl. an L4 for be_op1).
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace vtrans::uarch {

/** Geometry of one cache level. */
struct CacheParams
{
    uint32_t size_bytes = 32 * 1024;
    uint32_t assoc = 8;
    uint32_t line_bytes = 64;
};

/**
 * One set-associative cache level with true-LRU replacement.
 * Tag-only (no data): the simulator needs hit/miss, not contents.
 *
 * Lookups take an MRU fast path: the line and way of the most recent
 * access are cached, so the streaming re-references that dominate the
 * codec's access pattern skip the set scan entirely. The fast path
 * performs the identical counter and LRU updates as the full scan, so
 * every statistic and every replacement decision is bit-identical.
 */
class Cache
{
  public:
    Cache(std::string name, const CacheParams& params);

    /**
     * Looks up the line containing `addr`, filling on miss.
     * @return true on hit.
     *
     * The MRU check is inline so L1-hit streams pay no out-of-line call;
     * the set scan and fill live in scanLine() (cache.cc).
     */
    bool
    access(uint64_t addr)
    {
        return accessLine(addr >> line_shift_);
    }

    /** access() with the line number already computed (callers holding a
     *  precomputed fetch plan skip the shift). */
    bool
    accessLine(uint64_t line)
    {
        ++accesses_;
        ++tick_;
        if (line == mru_line_) {
            // Same line as the previous access: it is resident in
            // mru_way_ (just hit or just filled there, and nothing
            // evicted it since — any eviction goes through accessLine(),
            // which retargets the MRU). Identical bookkeeping to the
            // scan's hit arm.
            mru_way_->lru = tick_;
            return true;
        }
        return scanLine(line);
    }

    /**
     * Hit-arm bookkeeping for `line` if it is still resident in way
     * `slot` (a value previously obtained from mruSlot() right after an
     * access to the same line). Returns false — performing *no*
     * bookkeeping — when the slot has since been refilled with another
     * line, in which case the caller falls back to accessLine().
     *
     * Exactness: a slot recorded for `line` always lies in `line`'s set,
     * and at most one way of a set can hold a given tag, so a valid tag
     * match here identifies the same way the full scan would hit; the
     * counter/LRU/MRU updates below mirror that hit arm exactly.
     */
    bool
    touchIfResident(uint64_t line, uint32_t slot)
    {
        Way& way = ways_[slot];
        if (!way.valid || way.tag != (line >> tag_shift_)) {
            return false;
        }
        ++accesses_;
        ++tick_;
        way.lru = tick_;
        mru_line_ = line;
        mru_way_ = &way;
        return true;
    }

    /** Index of the way holding the line just accessed (valid until the
     *  next miss fills over it; touchIfResident() re-validates). */
    uint32_t
    mruSlot() const
    {
        return static_cast<uint32_t>(mru_way_ - ways_.data());
    }

    /** Way index of way 0 of the set `line` maps to — the safe initial
     *  value for a fetch-plan slot (same-set, so a tag match in
     *  touchIfResident() is sound). */
    uint32_t
    setBaseSlot(uint64_t line) const
    {
        return (static_cast<uint32_t>(line) & set_mask_) * params_.assoc;
    }

    /** Probes without updating LRU or filling (testing aid). */
    bool contains(uint64_t addr) const;

    /** Invalidates everything. */
    void reset();

    const std::string& name() const { return name_; }
    uint64_t accesses() const { return accesses_; }
    uint64_t misses() const { return misses_; }
    uint32_t sets() const { return sets_; }
    uint32_t assoc() const { return params_.assoc; }
    uint32_t lineBytes() const { return params_.line_bytes; }
    uint32_t lineShift() const { return line_shift_; }

  private:
    struct Way
    {
        uint64_t tag = 0;
        uint64_t lru = 0;
        bool valid = false;
    };

    /** Set scan + fill after an MRU miss (the cold half of accessLine). */
    bool scanLine(uint64_t line);

    /// Sentinel for "no MRU line cached" (never a real line number).
    static constexpr uint64_t kNoLine = UINT64_MAX;

    std::string name_;
    CacheParams params_;
    uint32_t sets_;
    uint32_t line_shift_;  ///< log2(line_bytes): addr -> line without divide.
    uint32_t set_mask_;    ///< sets_ - 1, precomputed.
    uint32_t tag_shift_;   ///< log2(sets_), precomputed.
    std::vector<Way> ways_; ///< sets_ x assoc, row-major (stable storage).
    uint64_t mru_line_ = kNoLine; ///< Line of the most recent access.
    Way* mru_way_ = nullptr;      ///< Its resident way.
    uint64_t tick_ = 0;
    uint64_t accesses_ = 0;
    uint64_t misses_ = 0;
};

/** Access latencies (cycles) of each level of the hierarchy. */
struct LatencyParams
{
    int l1 = 4;
    int l2 = 12;
    int l3 = 38;
    int l4 = 55;
    int memory = 230;
    int itlb_miss = 30;
};

/** Result of a hierarchy access: total latency plus the miss path. */
struct AccessResult
{
    int latency = 0;
    bool l1_miss = false;
    bool l2_miss = false;
    bool l3_miss = false;
    bool l4_miss = false;
};

/**
 * The full data/instruction hierarchy: split L1s, unified L2/L3 and an
 * optional L4. Inclusive-enough behaviour for MPKI purposes: each miss
 * falls through to the next level and fills every level on the way back.
 */
class CacheHierarchy
{
  public:
    /**
     * @param l4_size 0 disables the L4 level (the baseline config).
     */
    CacheHierarchy(const CacheParams& l1d, const CacheParams& l1i,
                   const CacheParams& l2, const CacheParams& l3,
                   uint32_t l4_size, const LatencyParams& lat);

    /** A data-side access (loads and stores: write-allocate). The L1-hit
     *  arm — by far the common case — is inline; misses walk the shared
     *  levels out of line. */
    AccessResult
    dataAccess(uint64_t addr)
    {
        if (l1d_.access(addr)) {
            return {lat_.l1, false, false, false, false};
        }
        return dataMiss(addr);
    }

    /** An instruction-fetch access. */
    AccessResult
    fetchAccess(uint64_t addr)
    {
        if (l1i_.access(addr)) {
            return {lat_.l1, false, false, false, false};
        }
        return fetchMiss(addr);
    }

    /** fetchAccess() with the L1i line number already computed (per-site
     *  fetch plans precompute it once per site). */
    AccessResult
    fetchLineAccess(uint64_t line)
    {
        if (l1i_.accessLine(line)) {
            return {lat_.l1, false, false, false, false};
        }
        return fetchMiss(line << l1i_.lineShift());
    }

    /** Spans an access over cache lines: one access per touched line. */
    int dataAccessBytes(uint64_t addr, uint32_t bytes, AccessResult* worst);

    Cache& l1d() { return l1d_; }
    Cache& l1i() { return l1i_; }
    Cache& l2() { return l2_; }
    Cache& l3() { return l3_; }
    bool hasL4() const { return l4_ != nullptr; }
    Cache& l4() { return *l4_; }
    const LatencyParams& latencies() const { return lat_; }

    void reset();

  private:
    AccessResult missPath(uint64_t addr);

    /** L1d-miss continuation of dataAccess (L2 -> L3 -> L4 -> memory). */
    AccessResult dataMiss(uint64_t addr);

    /** L1i-miss continuation of fetchAccess/fetchLineAccess. */
    AccessResult fetchMiss(uint64_t addr);

    Cache l1d_;
    Cache l1i_;
    Cache l2_;
    Cache l3_;
    std::unique_ptr<Cache> l4_;
    LatencyParams lat_;
};

} // namespace vtrans::uarch

#endif // VTRANS_UARCH_CACHE_H_

#ifndef VTRANS_UARCH_BRANCH_H_
#define VTRANS_UARCH_BRANCH_H_

/**
 * @file
 * Branch direction predictors. The baseline is a Pentium-M-style hybrid
 * (bimodal + global gshare + chooser), Sniper's default for Gainestown;
 * Table IV's bs_op replaces it with TAGE. A small BTB models taken-branch
 * redirect bubbles in the frontend.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace vtrans::uarch {

/** Direction predictor interface. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predicts the direction of the branch at `pc`. */
    virtual bool predict(uint64_t pc) = 0;

    /** Trains with the resolved direction. */
    virtual void update(uint64_t pc, bool taken) = 0;

    /**
     * Fused predict-then-train: returns what predict(pc) would have
     * returned, then trains with `taken` — the core model's per-branch
     * call. The default composes the two virtuals; concrete predictors
     * override it with a single `final` implementation whose internal
     * calls devirtualize and inline, so the hot path pays one virtual
     * dispatch per branch instead of two. Behaviour (prediction and
     * post-update table state) is identical by construction.
     */
    virtual bool
    predictAndUpdate(uint64_t pc, bool taken)
    {
        const bool predicted = predict(pc);
        update(pc, taken);
        return predicted;
    }

    /** Predictor family name ("pentium_m", "tage"). */
    virtual std::string name() const = 0;
};

/**
 * Pentium-M-like hybrid: a 4K-entry bimodal table, a gshare component
 * with 12 bits of global history, and a 4K-entry chooser trained toward
 * whichever component was right.
 */
class PentiumMPredictor : public BranchPredictor
{
  public:
    PentiumMPredictor();

    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken) override;
    bool predictAndUpdate(uint64_t pc, bool taken) final;
    std::string name() const override { return "pentium_m"; }

  private:
    static constexpr int kTableBits = 12;
    static constexpr uint32_t kTableSize = 1u << kTableBits;
    static constexpr uint32_t kIndexMask = kTableSize - 1; ///< Precomputed.
    static constexpr uint64_t kNoPc = UINT64_MAX;

    uint32_t bimodalIndex(uint64_t pc) const;
    uint32_t gshareIndex(uint64_t pc) const;

    std::vector<uint8_t> bimodal_;
    std::vector<uint8_t> gshare_;
    std::vector<uint8_t> chooser_;
    uint32_t ghr_ = 0;

    // Indices computed by predict(), reused by the paired update() call
    // (ghr_ only shifts at the end of update, so they stay valid).
    uint64_t last_pc_ = kNoPc;
    uint32_t last_bi_ = 0;
    uint32_t last_gi_ = 0;
};

/**
 * TAGE: a bimodal base predictor plus N partially-tagged tables indexed
 * with geometrically growing global-history lengths; longest matching
 * tag wins, with useful-bit guided allocation on mispredicts.
 */
class TagePredictor : public BranchPredictor
{
  public:
    TagePredictor();

    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken) override;
    bool predictAndUpdate(uint64_t pc, bool taken) final;
    std::string name() const override { return "tage"; }

  private:
    static constexpr int kTables = 4;
    static constexpr int kTableBits = 10;
    static constexpr uint32_t kTableSize = 1u << kTableBits;
    static constexpr int kHistLengths[kTables] = {5, 15, 44, 130};

    struct Entry
    {
        uint16_t tag = 0;
        int8_t ctr = 0;   ///< Signed saturating [-4, 3]; >= 0 means taken.
        uint8_t useful = 0;
    };

    uint32_t index(uint64_t pc, int table) const;
    uint16_t tag(uint64_t pc, int table) const;
    uint64_t foldedHistory(int bits, int length) const;

    std::vector<uint8_t> base_; ///< Bimodal 2-bit counters.
    uint32_t base_mask_;        ///< base_.size() - 1, precomputed.
    std::vector<Entry> tables_[kTables];
    uint64_t ghist_[4] = {}; ///< 256 bits of global history.
    uint64_t rng_state_ = 0x12345678;

    // Prediction bookkeeping between predict() and update(). The per-table
    // indices and tags are pure functions of (pc, ghist) and ghist only
    // shifts at the end of update(), so predict() computes each folded
    // history once and the paired update() reuses it.
    int provider_ = -1;
    int altpred_table_ = -1;
    bool provider_pred_ = false;
    bool altpred_ = false;
    uint64_t last_pc_ = 0;
    uint32_t base_idx_ = 0;
    uint32_t idx_[kTables] = {};
    uint16_t tag_[kTables] = {};
};

/** Creates a predictor by family name. */
std::unique_ptr<BranchPredictor> makePredictor(const std::string& name);

/**
 * Branch target buffer, modelled as tag presence only: a taken branch
 * whose PC misses the BTB costs a frontend redirect bubble.
 */
class Btb
{
  public:
    Btb(uint32_t entries = 2048, uint32_t ways = 4);

    /** Looks up `pc`, inserting on miss. @return hit? */
    bool access(uint64_t pc);

    uint64_t accesses() const { return accesses_; }
    uint64_t misses() const { return misses_; }

  private:
    struct Entry
    {
        uint64_t tag = 0;
        uint64_t lru = 0;
        bool valid = false;
    };

    /// Sentinel for "no MRU key cached" (pc >> 2 never reaches this).
    static constexpr uint64_t kNoKey = UINT64_MAX;

    uint32_t sets_;
    uint32_t ways_;
    uint32_t set_mask_;          ///< sets_ - 1, precomputed.
    std::vector<Entry> slots_;   ///< Stable storage (sized in the ctor).
    uint64_t mru_key_ = kNoKey;  ///< Key of the most recent access.
    Entry* mru_entry_ = nullptr; ///< Its resident entry.
    uint64_t tick_ = 0;
    uint64_t accesses_ = 0;
    uint64_t misses_ = 0;
};

} // namespace vtrans::uarch

#endif // VTRANS_UARCH_BRANCH_H_

#include "uarch/cache.h"

#include <memory>

#include "common/status.h"

namespace vtrans::uarch {

namespace {

bool
isPowerOfTwo(uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(std::string name, const CacheParams& params)
    : name_(std::move(name)), params_(params)
{
    VT_ASSERT(isPowerOfTwo(params_.line_bytes), "line size must be 2^k");
    VT_ASSERT(params_.assoc > 0, "associativity must be positive");
    VT_ASSERT(params_.size_bytes % (params_.line_bytes * params_.assoc)
                  == 0,
              "cache size must be a whole number of sets: ", name_);
    sets_ = params_.size_bytes / (params_.line_bytes * params_.assoc);
    VT_ASSERT(isPowerOfTwo(sets_), "set count must be 2^k: ", name_);
    line_shift_ = static_cast<uint32_t>(__builtin_ctz(params_.line_bytes));
    set_mask_ = sets_ - 1;
    tag_shift_ = static_cast<uint32_t>(__builtin_ctz(sets_));
    ways_.resize(static_cast<size_t>(sets_) * params_.assoc);
}

bool
Cache::scanLine(uint64_t line)
{
    // accesses_/tick_ were already bumped by the inline accessLine().
    const uint32_t set = static_cast<uint32_t>(line) & set_mask_;
    const uint64_t tag = line >> tag_shift_;

    Way* base = &ways_[static_cast<size_t>(set) * params_.assoc];
    // One fused pass: look for the tag while tracking the victim a
    // second pass would pick — the first invalid way if any, else the
    // first way with the minimum lru (strict < keeps the earliest).
    // Replacement is decided only on a miss, and the hit arm returns
    // without touching lru state, so the fused scan picks the identical
    // victim the two-pass version did.
    Way* invalid = nullptr;
    Way* lru_way = base;
    for (uint32_t w = 0; w < params_.assoc; ++w) {
        Way& way = base[w];
        if (!way.valid) {
            if (invalid == nullptr) {
                invalid = &way;
            }
            continue;
        }
        if (way.tag == tag) {
            way.lru = tick_;
            mru_line_ = line;
            mru_way_ = &way;
            return true;
        }
        if (way.lru < lru_way->lru) {
            lru_way = &way;
        }
    }
    Way* victim = invalid != nullptr ? invalid : lru_way;
    ++misses_;
    victim->valid = true;
    victim->tag = tag;
    victim->lru = tick_;
    mru_line_ = line;
    mru_way_ = victim;
    return false;
}

bool
Cache::contains(uint64_t addr) const
{
    const uint64_t line = addr >> line_shift_;
    const uint32_t set = static_cast<uint32_t>(line) & set_mask_;
    const uint64_t tag = line >> tag_shift_;
    const Way* base = &ways_[static_cast<size_t>(set) * params_.assoc];
    for (uint32_t w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            return true;
        }
    }
    return false;
}

void
Cache::reset()
{
    for (auto& way : ways_) {
        way.valid = false;
    }
    mru_line_ = kNoLine;
    mru_way_ = nullptr;
    tick_ = 0;
    accesses_ = 0;
    misses_ = 0;
}

CacheHierarchy::CacheHierarchy(const CacheParams& l1d,
                               const CacheParams& l1i, const CacheParams& l2,
                               const CacheParams& l3, uint32_t l4_size,
                               const LatencyParams& lat)
    : l1d_("L1d", l1d),
      l1i_("L1i", l1i),
      l2_("L2", l2),
      l3_("L3", l3),
      lat_(lat)
{
    if (l4_size > 0) {
        CacheParams p;
        p.size_bytes = l4_size;
        p.assoc = 16;
        l4_ = std::make_unique<Cache>("L4", p);
    }
}

AccessResult
CacheHierarchy::missPath(uint64_t addr)
{
    // Shared L2 -> L3 -> (L4) -> memory walk after an L1 miss.
    AccessResult r;
    if (l2_.access(addr)) {
        r.latency = lat_.l2;
        return r;
    }
    r.l2_miss = true;
    if (l3_.access(addr)) {
        r.latency = lat_.l3;
        return r;
    }
    r.l3_miss = true;
    if (l4_ != nullptr) {
        if (l4_->access(addr)) {
            r.latency = lat_.l4;
            return r;
        }
        r.l4_miss = true;
    }
    r.latency = lat_.memory;
    return r;
}

AccessResult
CacheHierarchy::dataMiss(uint64_t addr)
{
    AccessResult r = missPath(addr);
    r.l1_miss = true;
    r.latency += lat_.l1;
    return r;
}

AccessResult
CacheHierarchy::fetchMiss(uint64_t addr)
{
    AccessResult r = missPath(addr);
    r.l1_miss = true;
    r.latency += lat_.l1;
    return r;
}

int
CacheHierarchy::dataAccessBytes(uint64_t addr, uint32_t bytes,
                                AccessResult* worst)
{
    const uint32_t line = l1d_.lineBytes();
    const uint64_t first = addr / line;
    const uint64_t last = (addr + (bytes == 0 ? 0 : bytes - 1)) / line;
    int max_latency = 0;
    for (uint64_t l = first; l <= last; ++l) {
        const AccessResult r = dataAccess(l * line);
        if (r.latency > max_latency) {
            max_latency = r.latency;
            if (worst != nullptr) {
                *worst = r;
            }
        }
    }
    return max_latency;
}

void
CacheHierarchy::reset()
{
    l1d_.reset();
    l1i_.reset();
    l2_.reset();
    l3_.reset();
    if (l4_ != nullptr) {
        l4_->reset();
    }
}

} // namespace vtrans::uarch

#include "uarch/branch.h"

#include <algorithm>

#include "common/status.h"

namespace vtrans::uarch {

namespace {

/** Saturating 2-bit counter update. */
inline void
train2bit(uint8_t& ctr, bool taken)
{
    if (taken) {
        if (ctr < 3) {
            ++ctr;
        }
    } else if (ctr > 0) {
        --ctr;
    }
}

} // namespace

// ---- Pentium-M-style hybrid ------------------------------------------------

PentiumMPredictor::PentiumMPredictor()
    : bimodal_(kTableSize, 2), gshare_(kTableSize, 2),
      chooser_(kTableSize, 2)
{
}

uint32_t
PentiumMPredictor::bimodalIndex(uint64_t pc) const
{
    return static_cast<uint32_t>(pc >> 2) & kIndexMask;
}

uint32_t
PentiumMPredictor::gshareIndex(uint64_t pc) const
{
    return (static_cast<uint32_t>(pc >> 2) ^ ghr_) & kIndexMask;
}

bool
PentiumMPredictor::predict(uint64_t pc)
{
    const uint32_t bi = bimodalIndex(pc);
    const uint32_t gi = gshareIndex(pc);
    last_pc_ = pc;
    last_bi_ = bi;
    last_gi_ = gi;
    const bool bim = bimodal_[bi] >= 2;
    const bool gsh = gshare_[gi] >= 2;
    const bool use_gshare = chooser_[bi] >= 2;
    return use_gshare ? gsh : bim;
}

void
PentiumMPredictor::update(uint64_t pc, bool taken)
{
    // The core model always pairs update() with the predict() just made
    // for the same pc; reuse its indices (ghr_ has not shifted yet).
    const bool paired = pc == last_pc_;
    const uint32_t bi = paired ? last_bi_ : bimodalIndex(pc);
    const uint32_t gi = paired ? last_gi_ : gshareIndex(pc);
    const bool bim_correct = (bimodal_[bi] >= 2) == taken;
    const bool gsh_correct = (gshare_[gi] >= 2) == taken;
    if (bim_correct != gsh_correct) {
        train2bit(chooser_[bi], gsh_correct);
    }
    train2bit(bimodal_[bi], taken);
    train2bit(gshare_[gi], taken);
    ghr_ = ((ghr_ << 1) | (taken ? 1 : 0)) & 0xfff;
    last_pc_ = kNoPc; // gshare index is stale once the history shifts.
}

bool
PentiumMPredictor::predictAndUpdate(uint64_t pc, bool taken)
{
    // Qualified calls devirtualize and inline within this TU; the
    // predict-side index/table reads feed the update arm directly, with
    // the exact sequence of table mutations the two-call path performs.
    const bool predicted = PentiumMPredictor::predict(pc);
    PentiumMPredictor::update(pc, taken);
    return predicted;
}

// ---- TAGE ---------------------------------------------------------------

constexpr int TagePredictor::kHistLengths[TagePredictor::kTables];

TagePredictor::TagePredictor() : base_(1u << 12, 2)
{
    base_mask_ = static_cast<uint32_t>(base_.size()) - 1;
    for (auto& t : tables_) {
        t.resize(kTableSize);
    }
}

uint64_t
TagePredictor::foldedHistory(int bits, int length) const
{
    // Folds `length` bits of global history into `bits` bits by XOR.
    uint64_t folded = 0;
    int consumed = 0;
    while (consumed < length) {
        const int word = consumed / 64;
        const int offset = consumed % 64;
        int chunk = std::min({64 - offset, length - consumed, bits});
        const uint64_t piece =
            (ghist_[word] >> offset) & ((chunk >= 64) ? ~0ull
                                                      : ((1ull << chunk) - 1));
        folded ^= piece;
        consumed += chunk;
    }
    return folded & ((bits >= 64) ? ~0ull : ((1ull << bits) - 1));
}

uint32_t
TagePredictor::index(uint64_t pc, int table) const
{
    const uint64_t h = foldedHistory(kTableBits, kHistLengths[table]);
    return static_cast<uint32_t>(((pc >> 2) ^ (pc >> (kTableBits + 2)) ^ h)
                                 & (kTableSize - 1));
}

uint16_t
TagePredictor::tag(uint64_t pc, int table) const
{
    const uint64_t h = foldedHistory(8, kHistLengths[table]);
    const uint64_t h2 = foldedHistory(7, kHistLengths[table]) << 1;
    return static_cast<uint16_t>(((pc >> 2) ^ h ^ h2) & 0xff);
}

bool
TagePredictor::predict(uint64_t pc)
{
    last_pc_ = pc;
    provider_ = -1;
    altpred_table_ = -1;

    // Fold each table's history exactly once per branch; the match scan
    // below and the paired update() both reuse these (ghist_ shifts only
    // at the end of update(), so they stay valid until then).
    base_idx_ = static_cast<uint32_t>(pc >> 2) & base_mask_;
    for (int t = 0; t < kTables; ++t) {
        idx_[t] = index(pc, t);
        tag_[t] = tag(pc, t);
    }

    const bool base_pred = base_[base_idx_] >= 2;
    altpred_ = base_pred;
    provider_pred_ = base_pred;

    for (int t = kTables - 1; t >= 0; --t) {
        const Entry& e = tables_[t][idx_[t]];
        if (e.tag == tag_[t]) {
            if (provider_ < 0) {
                provider_ = t;
                provider_pred_ = e.ctr >= 0;
            } else if (altpred_table_ < 0) {
                altpred_table_ = t;
                altpred_ = e.ctr >= 0;
                break;
            }
        }
    }
    if (provider_ >= 0 && altpred_table_ < 0) {
        altpred_ = base_pred;
    }
    return provider_ >= 0 ? provider_pred_ : base_pred;
}

void
TagePredictor::update(uint64_t pc, bool taken)
{
    VT_ASSERT(pc == last_pc_, "update() must follow predict() for same pc");

    const bool prediction =
        provider_ >= 0 ? provider_pred_ : (base_[base_idx_] >= 2);

    // Train the provider (or the base table).
    if (provider_ >= 0) {
        Entry& e = tables_[provider_][idx_[provider_]];
        if (taken) {
            if (e.ctr < 3) {
                ++e.ctr;
            }
        } else if (e.ctr > -4) {
            --e.ctr;
        }
        // Useful counter: provider differed from altpred and was right.
        if (provider_pred_ != altpred_) {
            if (provider_pred_ == taken) {
                if (e.useful < 3) {
                    ++e.useful;
                }
            } else if (e.useful > 0) {
                --e.useful;
            }
        }
    } else {
        train2bit(base_[base_idx_], taken);
    }

    // Allocate a longer-history entry on a mispredict.
    if (prediction != taken && provider_ < kTables - 1) {
        // Simple xorshift for the allocation tie-break.
        rng_state_ ^= rng_state_ << 13;
        rng_state_ ^= rng_state_ >> 7;
        rng_state_ ^= rng_state_ << 17;

        bool allocated = false;
        for (int t = provider_ + 1; t < kTables; ++t) {
            Entry& e = tables_[t][idx_[t]];
            if (e.useful == 0) {
                e.tag = tag_[t];
                e.ctr = taken ? 0 : -1;
                allocated = true;
                break;
            }
        }
        if (!allocated) {
            // Decay useful bits on the candidate path.
            for (int t = provider_ + 1; t < kTables; ++t) {
                Entry& e = tables_[t][idx_[t]];
                if (e.useful > 0) {
                    --e.useful;
                }
            }
        }
    }

    // Shift global history (256 bits across four words).
    const uint64_t carry3 = ghist_[2] >> 63;
    const uint64_t carry2 = ghist_[1] >> 63;
    const uint64_t carry1 = ghist_[0] >> 63;
    ghist_[3] = (ghist_[3] << 1) | carry3;
    ghist_[2] = (ghist_[2] << 1) | carry2;
    ghist_[1] = (ghist_[1] << 1) | carry1;
    ghist_[0] = (ghist_[0] << 1) | (taken ? 1 : 0);
}

bool
TagePredictor::predictAndUpdate(uint64_t pc, bool taken)
{
    const bool predicted = TagePredictor::predict(pc);
    TagePredictor::update(pc, taken);
    return predicted;
}

std::unique_ptr<BranchPredictor>
makePredictor(const std::string& name)
{
    if (name == "pentium_m") {
        return std::make_unique<PentiumMPredictor>();
    }
    if (name == "tage") {
        return std::make_unique<TagePredictor>();
    }
    VT_FATAL("unknown branch predictor: ", name,
             " (known: pentium_m, tage)");
}

// ---- BTB ------------------------------------------------------------------

Btb::Btb(uint32_t entries, uint32_t ways) : ways_(ways)
{
    VT_ASSERT(entries % ways == 0, "BTB entries must divide into ways");
    sets_ = entries / ways;
    VT_ASSERT((sets_ & (sets_ - 1)) == 0, "BTB set count must be 2^k");
    set_mask_ = sets_ - 1;
    slots_.resize(entries);
}

bool
Btb::access(uint64_t pc)
{
    ++accesses_;
    ++tick_;
    const uint64_t key = pc >> 2;
    if (key == mru_key_) {
        // Same branch as the previous lookup: still resident (only
        // access() evicts, and it retargets the MRU). Same bookkeeping
        // as the scan's hit arm, so stats and LRU are bit-identical.
        mru_entry_->lru = tick_;
        return true;
    }
    const uint32_t set = static_cast<uint32_t>(key) & set_mask_;
    Entry* base = &slots_[static_cast<size_t>(set) * ways_];
    // Fused hit + victim scan (same idiom as Cache::scanLine): track the
    // first invalid way, else the first minimum-lru way, while looking
    // for the tag. Identical replacement choice to the two-pass scan.
    Entry* invalid = nullptr;
    Entry* lru_entry = base;
    for (uint32_t w = 0; w < ways_; ++w) {
        Entry& e = base[w];
        if (!e.valid) {
            if (invalid == nullptr) {
                invalid = &e;
            }
            continue;
        }
        if (e.tag == key) {
            e.lru = tick_;
            mru_key_ = key;
            mru_entry_ = &e;
            return true;
        }
        if (e.lru < lru_entry->lru) {
            lru_entry = &e;
        }
    }
    ++misses_;
    Entry* victim = invalid != nullptr ? invalid : lru_entry;
    victim->valid = true;
    victim->tag = key;
    victim->lru = tick_;
    mru_key_ = key;
    mru_entry_ = victim;
    return false;
}

} // namespace vtrans::uarch

#ifndef VTRANS_UARCH_SIMDCOST_H_
#define VTRANS_UARCH_SIMDCOST_H_

/**
 * @file
 * Probe-site costs for the opt-in *vector* kernel model
 * (codec::KernelModel::Vector, --kernel-model vector).
 *
 * The default probe sites in pixel.cc / dct.cc describe the scalar
 * compiled forms of the hot kernels: one basic block per row group with
 * a static size and instruction count matching -O2 scalar codegen. When
 * the encoder actually runs a SIMD backend the executed binary looks
 * different — the same work retires far fewer, wider instructions from
 * smaller blocks, and loop bodies that processed one row now process
 * two. The vector model swaps in the alternate sites below so the
 * simulated frontend (L1i footprint, fetch bandwidth) and retire stream
 * reflect vectorized codegen; Top-down shifts from Frontend/Retiring
 * toward Backend.Memory, which is the signature the paper reports for
 * SIMD-heavy transcode kernels.
 *
 * Counts are informed by uops.info latency/throughput tables and by
 * eyeballing -msse4.1 codegen of the strategy kernels:
 *  - SAD collapses 4 ops/pixel (2 loads are modelled separately; abs,
 *    add) to ~3 PSADBW + 2 PADD per 16x2 pixels.
 *  - SATD 4x4 is ~30 instructions of PUNPCK/PADD/PSUB/PABSW/PMADDWD
 *    against ~130 scalar.
 *  - The 4x4 DCT butterflies vectorize column-parallel: 4 adds per
 *    stage instead of 16.
 *  - Quant/dequant become PMULLD/PSRLD/PACKSSDW streams.
 * The numbers are deliberately coarse (this is a layout/footprint model,
 * not a pipeline trace); what matters is the *ratio* to the scalar
 * sites, which tracks the measured instruction-count reduction of the
 * real kernels (see BENCH_kernels.json).
 *
 * Sites registered here-from must only be *declared* on the vector-model
 * path (VT_SITE inside the `if (vectorKernelModel())` branch): sites
 * register on first execution and registration order defines the default
 * code layout, so an unconditionally-declared vector site would perturb
 * default-model fingerprints.
 */

#include <cstdint>

namespace vtrans::uarch {

/** Static size/instruction cost of one vector-model probe site. */
struct SimdSiteCost
{
    uint32_t bytes;        ///< Static code bytes of the block.
    uint32_t instructions; ///< Non-memory, non-branch instructions.
};

/** 8 rows of SAD: PSADBW ladder (vs scalar 104B/16i). */
inline constexpr SimdSiteCost kVecSadRows8{64, 6};

/** 4 rows of interpolating SAD: bilinear + PSADBW (vs 72B/14i). */
inline constexpr SimdSiteCost kVecSadSubRows4{48, 6};

/** One 4x4 SATD: packed Hadamard + PMADDWD reduce (vs 128B/26i). */
inline constexpr SimdSiteCost kVecSatd4x4{72, 9};

/** One *pair* of MC rows: vector MC processes two rows per iteration,
 *  so the vector model emits one block per two rows (vs 48B/6i per
 *  single row). */
inline constexpr SimdSiteCost kVecMcRowPair{40, 5};

/** Forward 4x4 DCT: column-parallel butterflies (vs 160B/40i). */
inline constexpr SimdSiteCost kVecDctForward{96, 14};

/** Inverse 4x4 DCT (vs 160B/40i). */
inline constexpr SimdSiteCost kVecDctInverse{96, 14};

/** 4x4 quant: PMULLD/PSRLD/PACKSSDW + nonzero mask (vs 120B/34i). */
inline constexpr SimdSiteCost kVecQuant{72, 10};

/** 4x4 dequant: PMULLD/PSLLD/PACKSSDW (vs 96B/24i). */
inline constexpr SimdSiteCost kVecDequant{56, 8};

} // namespace vtrans::uarch

#endif // VTRANS_UARCH_SIMDCOST_H_

#ifndef VTRANS_UARCH_RINGBUF_H_
#define VTRANS_UARCH_RINGBUF_H_

/**
 * @file
 * A minimal FIFO ring buffer for the core model's instruction windows.
 *
 * The ROB/RS/store-buffer occupancy queues only ever push at the back and
 * pop at the front, and their steady-state depth is bounded by the modelled
 * structure size — `std::deque` pays chunked allocation and an extra
 * indirection per access for generality none of that needs. This ring keeps
 * entries in one contiguous power-of-two array with wrap-around indexing,
 * so front()/back()/push/pop are a mask and a load.
 *
 * Capacity grows by doubling when full (the MSHR queue can legitimately
 * exceed its nominal entry count: completions in the future are pushed
 * without popping), so the container is unbounded like the deque it
 * replaces — "fixed-capacity" refers to the steady state, where no
 * allocation ever happens on the hot path.
 */

#include <cstddef>
#include <utility>
#include <vector>

namespace vtrans::uarch {

template <typename T>
class RingBuffer
{
  public:
    /** Rounds `min_capacity` up to a power of two (at least 4). */
    explicit RingBuffer(size_t min_capacity = 16)
    {
        size_t capacity = 4;
        while (capacity < min_capacity) {
            capacity *= 2;
        }
        slots_.resize(capacity);
        mask_ = capacity - 1;
    }

    bool empty() const { return count_ == 0; }
    size_t size() const { return count_; }
    size_t capacity() const { return slots_.size(); }

    T& front() { return slots_[head_]; }
    const T& front() const { return slots_[head_]; }
    T& back() { return slots_[(head_ + count_ - 1) & mask_]; }
    const T& back() const { return slots_[(head_ + count_ - 1) & mask_]; }

    /** Element `i` positions from the front (0 == front()). */
    const T& operator[](size_t i) const { return slots_[(head_ + i) & mask_]; }

    void
    push_back(const T& value)
    {
        if (count_ == slots_.size()) {
            grow();
        }
        slots_[(head_ + count_) & mask_] = value;
        ++count_;
    }

    void
    pop_front()
    {
        head_ = (head_ + 1) & mask_;
        --count_;
    }

    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

  private:
    void
    grow()
    {
        std::vector<T> bigger(slots_.size() * 2);
        for (size_t i = 0; i < count_; ++i) {
            bigger[i] = std::move(slots_[(head_ + i) & mask_]);
        }
        slots_ = std::move(bigger);
        head_ = 0;
        mask_ = slots_.size() - 1;
    }

    std::vector<T> slots_;
    size_t mask_ = 0;
    size_t head_ = 0;
    size_t count_ = 0;
};

} // namespace vtrans::uarch

#endif // VTRANS_UARCH_RINGBUF_H_

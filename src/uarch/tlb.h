#ifndef VTRANS_UARCH_TLB_H_
#define VTRANS_UARCH_TLB_H_

/**
 * @file
 * A set-associative TLB model (4-way, LRU, 4 KiB pages) — the practical
 * approximation of the fully-associative structures real cores use.
 * Table IV's fe_op doubles the iTLB from 128 to 256 entries.
 */

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace vtrans::uarch {

/** 4-way set-associative LRU TLB over 4 KiB pages. */
class Tlb
{
  public:
    static constexpr uint32_t kWays = 4;

    explicit Tlb(uint32_t entries) : entries_(entries)
    {
        VT_ASSERT(entries % kWays == 0, "TLB entries must be a multiple of ",
                  kWays);
        sets_ = entries / kWays;
        VT_ASSERT((sets_ & (sets_ - 1)) == 0, "TLB set count must be 2^k");
        set_mask_ = sets_ - 1;
        slots_.resize(entries);
    }

    /** Looks up the page of `addr`, filling on miss. @return hit?
     *
     *  Consecutive accesses to the same page (one per instrumented basic
     *  block — by far the common case) take an MRU fast path that skips
     *  the set scan; its bookkeeping is identical to the scan's hit arm,
     *  so stats and replacement stay bit-identical. */
    bool
    access(uint64_t addr)
    {
        return accessPage(addr >> 12);
    }

    /** access() with the page number already computed (per-site fetch
     *  plans precompute it once per site). Same bookkeeping. */
    bool
    accessPage(uint64_t page)
    {
        ++accesses_;
        ++tick_;
        if (page == mru_page_) {
            mru_entry_->lru = tick_;
            return true;
        }
        const uint32_t set = static_cast<uint32_t>(page) & set_mask_;
        Entry* base = &slots_[static_cast<size_t>(set) * kWays];
        // Fused hit + victim scan (same idiom as Cache::scanLine): track
        // the first invalid way, else the first minimum-lru way, while
        // looking for the page. Identical replacement to two passes.
        Entry* invalid = nullptr;
        Entry* lru_entry = base;
        for (uint32_t w = 0; w < kWays; ++w) {
            Entry& e = base[w];
            if (!e.valid) {
                if (invalid == nullptr) {
                    invalid = &e;
                }
                continue;
            }
            if (e.page == page) {
                e.lru = tick_;
                mru_page_ = page;
                mru_entry_ = &e;
                return true;
            }
            if (e.lru < lru_entry->lru) {
                lru_entry = &e;
            }
        }
        ++misses_;
        Entry* victim = invalid != nullptr ? invalid : lru_entry;
        victim->valid = true;
        victim->page = page;
        victim->lru = tick_;
        mru_page_ = page;
        mru_entry_ = victim;
        return false;
    }

    void
    reset()
    {
        for (auto& e : slots_) {
            e.valid = false;
        }
        mru_page_ = kNoPage;
        mru_entry_ = nullptr;
        tick_ = 0;
        accesses_ = 0;
        misses_ = 0;
    }

    uint64_t accesses() const { return accesses_; }
    uint64_t misses() const { return misses_; }
    uint32_t entries() const { return entries_; }

  private:
    struct Entry
    {
        uint64_t page = 0;
        uint64_t lru = 0;
        bool valid = false;
    };

    /// Sentinel for "no MRU page cached" (addr >> 12 never reaches this).
    static constexpr uint64_t kNoPage = UINT64_MAX;

    uint32_t entries_;
    uint32_t sets_;
    uint32_t set_mask_;           ///< sets_ - 1, precomputed.
    std::vector<Entry> slots_;    ///< Stable storage (sized in the ctor).
    uint64_t mru_page_ = kNoPage; ///< Page of the most recent access.
    Entry* mru_entry_ = nullptr;  ///< Its resident entry.
    uint64_t tick_ = 0;
    uint64_t accesses_ = 0;
    uint64_t misses_ = 0;
};

} // namespace vtrans::uarch

#endif // VTRANS_UARCH_TLB_H_

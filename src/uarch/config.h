#ifndef VTRANS_UARCH_CONFIG_H_
#define VTRANS_UARCH_CONFIG_H_

/**
 * @file
 * The microarchitecture configurations of paper Table IV: the baseline
 * (Sniper's default Gainestown) and the four targeted variants — fe_op
 * (bigger L1i + iTLB), be_op1 (bigger data caches + L4), be_op2 (bigger
 * window, issue-at-dispatch), bs_op (TAGE branch predictor).
 */

#include <vector>

#include "uarch/core.h"

namespace vtrans::uarch {

/** The baseline configuration (Table IV row "baseline"). */
CoreParams baselineConfig();

/** fe_op: 64K L1i, 256-entry iTLB — attacks front-end stalls. */
CoreParams feOpConfig();

/** be_op1: 64K L1d, 512K L2, 4M L3, 16M L4 — attacks memory stalls. */
CoreParams beOp1Config();

/** be_op2: 256 ROB, 72 RS, issue-at-dispatch — attacks core stalls. */
CoreParams beOp2Config();

/** bs_op: TAGE branch predictor — attacks bad-speculation stalls. */
CoreParams bsOpConfig();

/** All five Table IV rows, baseline first. */
std::vector<CoreParams> tableIVConfigs();

/** The four optimized rows only (the scheduler study's server pool). */
std::vector<CoreParams> optimizedConfigs();

/** Looks a config up by name; fatal error if unknown. */
CoreParams configByName(const std::string& name);

} // namespace vtrans::uarch

#endif // VTRANS_UARCH_CONFIG_H_

#include "loopopt/nest.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/status.h"

namespace vtrans::loopopt {

namespace {

/**
 * Enumerates every distance vector k with sum(coeff[d] * k[d]) == delta
 * and |k[d]| < extent[d] — i.e. every way two same-coefficient accesses
 * can touch the same element. Exact: candidates per level are bounded by
 * the reach of the finer levels. Returns false (inconclusive) if the
 * solution count exceeds the cap.
 */
bool
enumerateDistances(int64_t delta, const std::vector<int64_t>& coeffs,
                   const std::vector<int64_t>& extents,
                   std::vector<std::vector<int64_t>>* out)
{
    constexpr size_t kMaxSolutions = 64;
    const size_t n = coeffs.size();
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return std::llabs(coeffs[a]) > std::llabs(coeffs[b]);
    });

    // reach[i]: max |sum over order[i..]| the finer levels can absorb.
    std::vector<int64_t> reach(n + 1, 0);
    for (size_t i = n; i-- > 0;) {
        reach[i] = reach[i + 1]
                   + std::llabs(coeffs[order[i]]) * (extents[order[i]] - 1);
    }

    std::vector<int64_t> k(n, 0);
    bool ok = true;
    auto recurse = [&](auto&& self, size_t i, int64_t rem) -> void {
        if (!ok) {
            return;
        }
        if (i == n) {
            if (rem == 0) {
                if (out->size() >= kMaxSolutions) {
                    ok = false;
                    return;
                }
                out->push_back(k);
            }
            return;
        }
        const size_t d = order[i];
        const int64_t c = coeffs[d];
        if (c == 0) {
            if (std::llabs(rem) <= reach[i + 1]) {
                self(self, i + 1, rem);
            }
            return;
        }
        // k_d must satisfy |rem - c*k_d| <= reach[i+1]: an interval.
        const double center = static_cast<double>(rem) / c;
        const double radius =
            static_cast<double>(reach[i + 1]) / std::llabs(c);
        const int64_t lo = std::max<int64_t>(
            -(extents[d] - 1),
            static_cast<int64_t>(std::floor(center - radius)));
        const int64_t hi = std::min<int64_t>(
            extents[d] - 1,
            static_cast<int64_t>(std::ceil(center + radius)));
        for (int64_t cand = lo; cand <= hi; ++cand) {
            if (std::llabs(rem - c * cand) <= reach[i + 1]) {
                k[d] = cand;
                self(self, i + 1, rem - c * cand);
                k[d] = 0;
            }
        }
    };
    recurse(recurse, 0, delta);
    return ok;
}

} // namespace

LoopNest::LoopNest(std::string name, std::vector<int64_t> extents)
    : name_(std::move(name)), extents_(std::move(extents))
{
    VT_ASSERT(!extents_.empty(), "loop nest needs at least one level");
    for (size_t d = 0; d < extents_.size(); ++d) {
        VT_ASSERT(extents_[d] > 0, "loop extent must be positive");
        schedule_.push_back({extents_[d], static_cast<int>(d), 0});
    }
}

void
LoopNest::addStatement(Statement statement)
{
    for (const auto& a : statement.accesses) {
        VT_ASSERT(a.index.coeffs.size() == extents_.size(),
                  "access coefficients must match nest depth: ",
                  statement.name);
    }
    statements_.push_back(std::move(statement));
}

uint64_t
LoopNest::iterations() const
{
    uint64_t total = 1;
    for (int64_t e : extents_) {
        total *= static_cast<uint64_t>(e);
    }
    return total;
}

std::vector<Dependence>
LoopNest::dependences() const
{
    std::vector<Dependence> out;
    const size_t depth_n = extents_.size();

    std::vector<const Access*> all;
    for (const auto& st : statements_) {
        for (const auto& a : st.accesses) {
            all.push_back(&a);
        }
    }

    for (size_t i = 0; i < all.size(); ++i) {
        for (size_t j = 0; j < all.size(); ++j) {
            const Access& a = *all[i];
            const Access& b = *all[j];
            if (a.array != b.array || (!a.is_write && !b.is_write)) {
                continue;
            }
            if (a.index.coeffs == b.index.coeffs) {
                std::vector<std::vector<int64_t>> distances;
                if (enumerateDistances(
                        a.index.constant - b.index.constant,
                        a.index.coeffs, extents_, &distances)) {
                    for (const auto& k : distances) {
                        bool first_nonzero_negative = false;
                        bool any_nonzero = false;
                        Dependence dep;
                        dep.array = a.array;
                        dep.directions.resize(depth_n);
                        for (size_t d = 0; d < depth_n; ++d) {
                            if (k[d] != 0 && !any_nonzero) {
                                any_nonzero = true;
                                first_nonzero_negative = k[d] < 0;
                            }
                            dep.directions[d] =
                                k[d] == 0 ? Direction::Eq
                                : k[d] > 0 ? Direction::Lt
                                           : Direction::Gt;
                        }
                        if (any_nonzero && first_nonzero_negative) {
                            // The lexicographically-positive twin comes
                            // from the (j, i) pair.
                            continue;
                        }
                        if (!any_nonzero && i >= j) {
                            continue; // loop-independent: record once
                        }
                        out.push_back(std::move(dep));
                    }
                    continue;
                }
                // Enumeration overflowed: fall through to conservative.
            }
            Dependence dep;
            dep.array = a.array;
            dep.directions.assign(depth_n, Direction::Unknown);
            out.push_back(std::move(dep));
        }
    }
    return out;
}

bool
LoopNest::canInterchange(int a, int b) const
{
    VT_ASSERT(a >= 0 && b >= 0 && a < depth() && b < depth(),
              "interchange levels out of range");
    // Interchange permutes the *source* levels a and b. Legal iff every
    // dependence's direction vector stays lexicographically non-negative.
    for (const auto& dep : dependences()) {
        std::vector<Direction> dirs = dep.directions;
        std::swap(dirs[a], dirs[b]);
        for (Direction dir : dirs) {
            if (dir == Direction::Unknown) {
                return false;
            }
            if (dir == Direction::Lt) {
                break; // carried at an outer level: fine
            }
            if (dir == Direction::Gt) {
                return false; // backwards dependence after the swap
            }
        }
    }
    return true;
}

void
LoopNest::interchange(int a, int b)
{
    if (!canInterchange(a, b)) {
        VT_FATAL("illegal interchange of levels ", a, " and ", b, " in ",
                 name_);
    }
    // Swap the schedule positions driving sources a and b.
    int pos_a = -1;
    int pos_b = -1;
    for (size_t i = 0; i < schedule_.size(); ++i) {
        if (schedule_[i].tile_size == 0) {
            if (schedule_[i].source_level == a) {
                pos_a = static_cast<int>(i);
            }
            if (schedule_[i].source_level == b) {
                pos_b = static_cast<int>(i);
            }
        }
    }
    VT_ASSERT(pos_a >= 0 && pos_b >= 0, "schedule lost a point loop");
    std::swap(schedule_[pos_a], schedule_[pos_b]);
}

bool
LoopNest::canTile() const
{
    for (const auto& dep : dependences()) {
        for (Direction dir : dep.directions) {
            if (dir == Direction::Unknown || dir == Direction::Gt) {
                return false;
            }
        }
    }
    return true;
}

void
LoopNest::tile(int level, int64_t tile_size)
{
    VT_ASSERT(level >= 0 && level < depth(), "tile level out of range");
    VT_ASSERT(tile_size > 0, "tile size must be positive");
    if (!canTile()) {
        VT_FATAL("nest ", name_, " is not fully permutable: tiling illegal");
    }
    // Shrink the point loop to the tile size...
    for (auto& l : schedule_) {
        if (l.tile_size == 0 && l.source_level == level) {
            l.extent = std::min<int64_t>(tile_size, extents_[level]);
        }
    }
    // ...and hoist a tile loop to the outermost position.
    const int64_t tiles =
        (extents_[level] + tile_size - 1) / tile_size;
    schedule_.insert(schedule_.begin(), {tiles, level, tile_size});
}

std::vector<LoopNest>
LoopNest::distribute() const
{
    // Legal when every cross-statement dependence is loop-independent
    // (all-Eq): splitting then preserves the per-iteration order.
    for (const auto& dep : dependences()) {
        for (Direction dir : dep.directions) {
            if (dir == Direction::Unknown || dir == Direction::Gt
                || dir == Direction::Lt) {
                VT_FATAL("nest ", name_,
                         " has loop-carried dependences: distribution "
                         "illegal");
            }
        }
    }
    std::vector<LoopNest> out;
    for (const auto& st : statements_) {
        LoopNest nest(name_ + "." + st.name, extents_);
        nest.addStatement(st);
        out.push_back(std::move(nest));
    }
    return out;
}

void
LoopNest::executeRecursive(std::vector<int64_t>& iv,
                           std::vector<int64_t>& original_iv,
                           int level) const
{
    if (level == static_cast<int>(schedule_.size())) {
        for (const auto& st : statements_) {
            if (st.site != nullptr) {
                trace::block(*st.site);
            }
            for (const auto& a : st.accesses) {
                const uint64_t addr =
                    a.sim_base
                    + static_cast<uint64_t>(a.index.eval(original_iv))
                          * a.element_bytes;
                if (a.is_write) {
                    trace::store(addr, a.element_bytes);
                } else {
                    trace::load(addr, a.element_bytes);
                }
            }
        }
        return;
    }

    const Level& l = schedule_[level];
    for (int64_t i = 0; i < l.extent; ++i) {
        iv[level] = i;
        const int64_t contribution =
            l.tile_size > 0 ? i * l.tile_size : i;
        original_iv[l.source_level] += contribution;
        if (original_iv[l.source_level] < extents_[l.source_level]) {
            executeRecursive(iv, original_iv, level + 1);
        }
        original_iv[l.source_level] -= contribution;
    }
}

void
LoopNest::execute() const
{
    std::vector<int64_t> iv(schedule_.size(), 0);
    std::vector<int64_t> original_iv(extents_.size(), 0);
    executeRecursive(iv, original_iv, 0);
}

std::string
LoopNest::describe() const
{
    std::ostringstream os;
    os << name_ << ": ";
    for (const auto& l : schedule_) {
        os << (l.tile_size > 0 ? "tile(" : "for(")
           << "iv" << l.source_level << ":" << l.extent;
        if (l.tile_size > 0) {
            os << "x" << l.tile_size;
        }
        os << ") ";
    }
    os << "{ " << statements_.size() << " statements }";
    return os.str();
}

} // namespace vtrans::loopopt

#ifndef VTRANS_LOOPOPT_NEST_H_
#define VTRANS_LOOPOPT_NEST_H_

/**
 * @file
 * A polyhedral-lite loop-nest IR — the Graphite stand-in (paper §III-B4).
 *
 * Models perfect rectangular loop nests whose statements make affine
 * array accesses. Supports the transformations Graphite applies to
 * FFmpeg's pixel loops (-floop-interchange, -floop-block/tiling,
 * -ftree-loop-distribution), each guarded by a distance-vector dependence
 * legality test. Executing a nest emits probe events, so the cache effect
 * of a transformation is directly measurable in the simulator.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "trace/probe.h"

namespace vtrans::loopopt {

/** An affine function of the loop induction variables. */
struct Affine
{
    int64_t constant = 0;
    std::vector<int64_t> coeffs;  ///< One per loop depth.

    int64_t
    eval(const std::vector<int64_t>& iv) const
    {
        int64_t v = constant;
        for (size_t d = 0; d < coeffs.size() && d < iv.size(); ++d) {
            v += coeffs[d] * iv[d];
        }
        return v;
    }
};

/** One array access inside the loop body. */
struct Access
{
    std::string array;     ///< Array identity (dependences are per-array).
    uint64_t sim_base = 0; ///< Simulated base address of the array.
    Affine index;          ///< Element index as a function of the ivs.
    uint32_t element_bytes = 4;
    bool is_write = false;
};

/** A statement: its accesses plus an instruction weight and code site. */
struct Statement
{
    std::string name;
    std::vector<Access> accesses;
    uint32_t instructions = 4;
    trace::CodeSite* site = nullptr; ///< Optional probe site.
};

/** A dependence direction at one loop level. */
enum class Direction : uint8_t { Lt, Eq, Gt, Unknown };

/** A dependence between two accesses, one direction entry per level. */
struct Dependence
{
    std::string array;
    std::vector<Direction> directions;
};

/**
 * A perfect rectangular loop nest. Iteration executes every statement in
 * order for each point of the iteration space (row-major over `extents`).
 */
class LoopNest
{
  public:
    /** Creates a nest with the given per-level trip counts. */
    LoopNest(std::string name, std::vector<int64_t> extents);

    /** Adds a statement to the body. */
    void addStatement(Statement statement);

    int depth() const { return static_cast<int>(extents_.size()); }
    const std::vector<int64_t>& extents() const { return extents_; }
    const std::vector<Statement>& statements() const { return statements_; }
    const std::string& name() const { return name_; }

    /** Total iterations of the body. */
    uint64_t iterations() const;

    /** All dependences between accesses to the same array. */
    std::vector<Dependence> dependences() const;

    /** True if swapping levels `a` and `b` preserves every dependence. */
    bool canInterchange(int a, int b) const;

    /** Swaps levels `a` and `b` (fatal if illegal). */
    void interchange(int a, int b);

    /** True if the whole nest is fully permutable (tiling-safe). */
    bool canTile() const;

    /**
     * Tiles level `level` with the given tile size: the level is
     * strip-mined into (tile, intra-tile) and the tile loop is hoisted to
     * the outermost position. Fatal if the nest is not permutable.
     */
    void tile(int level, int64_t tile_size);

    /**
     * Distributes the nest: one new single-statement nest per statement,
     * in statement order. Legal when no statement pair has a
     * loop-carried dependence in both directions; fatal otherwise.
     */
    std::vector<LoopNest> distribute() const;

    /** Runs the nest, emitting block/load/store probe events. */
    void execute() const;

    /** Renders the schedule for debugging ("for i0 in 0..N: ..."). */
    std::string describe() const;

  private:
    struct Level
    {
        int64_t extent;
        int source_level;   ///< Which original iv this level drives.
        int64_t tile_size;  ///< 0: drives the iv directly; >0: tile loop.
    };

    void executeRecursive(std::vector<int64_t>& iv,
                          std::vector<int64_t>& original_iv,
                          int level) const;

    std::string name_;
    std::vector<int64_t> extents_;  ///< Original per-iv trip counts.
    std::vector<Level> schedule_;   ///< Current loop order (transformed).
    std::vector<Statement> statements_;
};

} // namespace vtrans::loopopt

#endif // VTRANS_LOOPOPT_NEST_H_

/**
 * @file
 * Tests of the microarchitecture models: caches, TLB, branch predictors,
 * BTB, the core timing model's stall accounting, and the Table IV
 * configurations.
 */

#include <gtest/gtest.h>

#include <deque>

#include "common/rng.h"
#include "trace/probe.h"
#include "uarch/branch.h"
#include "uarch/cache.h"
#include "uarch/config.h"
#include "uarch/core.h"
#include "uarch/ringbuf.h"
#include "uarch/tlb.h"

namespace vtrans {
namespace {

using namespace uarch;

// ---- Cache ---------------------------------------------------------------

TEST(Cache, HitAfterFill)
{
    Cache c("t", {1024, 2, 64});
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1001)); // same line
    EXPECT_EQ(c.accesses(), 3u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEviction)
{
    // 2-way, 64B lines, 1024B => 8 sets. Three lines mapping to set 0.
    Cache c("t", {1024, 2, 64});
    const uint64_t a = 0 * 8 * 64;      // set 0
    const uint64_t b = 1 * 8 * 64;      // set 0
    const uint64_t d = 2 * 8 * 64;      // set 0
    c.access(a);
    c.access(b);
    c.access(a);    // a more recent than b
    c.access(d);    // evicts b
    EXPECT_TRUE(c.contains(a));
    EXPECT_FALSE(c.contains(b));
    EXPECT_TRUE(c.contains(d));
}

TEST(Cache, CapacityMissesOnBigWorkingSet)
{
    Cache c("t", {32 * 1024, 8, 64});
    // Touch 64 KiB twice: second pass must still miss (capacity).
    for (int pass = 0; pass < 2; ++pass) {
        for (uint64_t addr = 0; addr < 64 * 1024; addr += 64) {
            c.access(addr);
        }
    }
    EXPECT_GT(c.misses(), 1024u + 512u)
        << "second pass should keep missing on a 2x working set";
}

TEST(Cache, FitsWorkingSetAfterWarmup)
{
    Cache c("t", {32 * 1024, 8, 64});
    for (uint64_t addr = 0; addr < 16 * 1024; addr += 64) {
        c.access(addr);
    }
    const uint64_t warm_misses = c.misses();
    for (uint64_t addr = 0; addr < 16 * 1024; addr += 64) {
        EXPECT_TRUE(c.access(addr));
    }
    EXPECT_EQ(c.misses(), warm_misses);
}

TEST(Hierarchy, MissFallsThroughLevels)
{
    CacheHierarchy h({32768, 8, 64}, {32768, 8, 64}, {262144, 8, 64},
                     {8388608, 16, 64}, 0, LatencyParams{});
    const AccessResult cold = h.dataAccess(0x10000);
    EXPECT_TRUE(cold.l1_miss);
    EXPECT_TRUE(cold.l2_miss);
    EXPECT_TRUE(cold.l3_miss);
    EXPECT_EQ(cold.latency, LatencyParams{}.memory + LatencyParams{}.l1);

    const AccessResult warm = h.dataAccess(0x10000);
    EXPECT_FALSE(warm.l1_miss);
    EXPECT_EQ(warm.latency, LatencyParams{}.l1);
}

TEST(Hierarchy, L4ServicesL3Misses)
{
    CacheHierarchy h({32768, 8, 64}, {32768, 8, 64}, {262144, 8, 64},
                     {1 << 20, 16, 64}, 16 << 20, LatencyParams{});
    ASSERT_TRUE(h.hasL4());
    h.dataAccess(0x40000);          // cold fill through all levels
    // Evict from L1/L2/L3 by sweeping >L3-sized data; L4 keeps it.
    for (uint64_t a = 1 << 24; a < (1 << 24) + (2 << 20); a += 64) {
        h.dataAccess(a);
    }
    const AccessResult r = h.dataAccess(0x40000);
    EXPECT_TRUE(r.l3_miss);
    EXPECT_FALSE(r.l4_miss);
    EXPECT_EQ(r.latency, LatencyParams{}.l4 + LatencyParams{}.l1);
}

TEST(Hierarchy, MultiLineAccessTouchesBothLines)
{
    CacheHierarchy h({32768, 8, 64}, {32768, 8, 64}, {262144, 8, 64},
                     {8388608, 16, 64}, 0, LatencyParams{});
    AccessResult worst;
    h.dataAccessBytes(60, 8, &worst); // crosses the line boundary at 64
    EXPECT_TRUE(h.l1d().contains(0));
    EXPECT_TRUE(h.l1d().contains(64));
    EXPECT_EQ(h.l1d().accesses(), 2u);
}

// ---- TLB ----------------------------------------------------------------

TEST(Tlb, HitsSamePage)
{
    Tlb tlb(128);
    EXPECT_FALSE(tlb.access(0x400000));
    EXPECT_TRUE(tlb.access(0x400abc));
    EXPECT_FALSE(tlb.access(0x401000)); // next page
    EXPECT_EQ(tlb.misses(), 2u);
}

TEST(Tlb, LargerTlbMissesLessOnWideCode)
{
    // A code footprint of 192 pages: fits in 256 entries, thrashes 128.
    auto missesFor = [](uint32_t entries) {
        Tlb tlb(entries);
        for (int pass = 0; pass < 4; ++pass) {
            for (uint64_t page = 0; page < 192; ++page) {
                tlb.access(0x400000 + page * 4096);
            }
        }
        return tlb.misses();
    };
    EXPECT_GT(missesFor(128), missesFor(256) * 2);
}

// ---- Branch predictors ------------------------------------------------------

TEST(Branch, PentiumMLearnsBias)
{
    PentiumMPredictor p;
    // Warm up a strongly taken branch.
    for (int i = 0; i < 16; ++i) {
        p.predict(0x4000);
        p.update(0x4000, true);
    }
    EXPECT_TRUE(p.predict(0x4000));
}

TEST(Branch, PentiumMLearnsAlternating)
{
    PentiumMPredictor p;
    int correct = 0;
    for (int i = 0; i < 2000; ++i) {
        const bool taken = (i & 1) != 0;
        if (p.predict(0x8000) == taken) {
            ++correct;
        }
        p.update(0x8000, taken);
    }
    // The gshare component must capture the period-2 pattern eventually.
    EXPECT_GT(correct, 1700);
}

TEST(Branch, TageLearnsLongPattern)
{
    TagePredictor tage;
    PentiumMPredictor pm;
    // Period-24 pattern: beyond a 12-bit gshare's comfortable reach but
    // well within TAGE's 44-bit history table.
    auto pattern = [](int i) { return (i % 24) < 5; };
    int tage_correct = 0;
    int pm_correct = 0;
    for (int i = 0; i < 20000; ++i) {
        const bool taken = pattern(i);
        if (tage.predict(0xc000) == taken) {
            ++tage_correct;
        }
        tage.update(0xc000, taken);
        if (pm.predict(0xc000) == taken) {
            ++pm_correct;
        }
        pm.update(0xc000, taken);
    }
    EXPECT_GT(tage_correct, pm_correct)
        << "TAGE must beat the hybrid on long-period patterns";
    EXPECT_GT(tage_correct, 17000);
}

TEST(Branch, TageHandlesRandomGracefully)
{
    TagePredictor tage;
    Rng rng(3);
    int correct = 0;
    for (int i = 0; i < 10000; ++i) {
        const bool taken = rng.chance(0.7);
        if (tage.predict(0x2000 + (i % 16) * 64) == taken) {
            ++correct;
        }
        tage.update(0x2000 + (i % 16) * 64, taken);
    }
    // On a 70% biased random stream, a good predictor approaches 70%.
    EXPECT_GT(correct, 6000);
}

TEST(Branch, FactoryRejectsUnknown)
{
    EXPECT_DEATH(makePredictor("nonsense"), "unknown branch predictor");
}

TEST(Btb, CapacityBehaviour)
{
    Btb btb(64, 4);
    for (int pass = 0; pass < 2; ++pass) {
        for (uint64_t pc = 0; pc < 32; ++pc) {
            btb.access(0x400000 + pc * 4);
        }
    }
    // 32 distinct branches fit in 64 entries: second pass all hits.
    EXPECT_EQ(btb.misses(), 32u);
}

// ---- Core model ------------------------------------------------------------

/** Convenience: run a synthetic event stream against a core. */
class CoreHarness
{
  public:
    explicit CoreHarness(const CoreParams& p) : model_(p)
    {
        trace::setSink(&model_);
    }
    ~CoreHarness() { trace::setSink(nullptr); }

    CoreModel& model() { return model_; }

    CoreStats
    finish()
    {
        trace::setSink(nullptr);
        return model_.finish();
    }

  private:
    CoreModel model_;
};

TEST(Core, AluOnlyIsMostlyRetiring)
{
    VT_SITE(site, "coretest.alu", 64, 16, Block);
    CoreHarness h(baselineConfig());
    for (int i = 0; i < 10000; ++i) {
        trace::block(site);
    }
    const CoreStats s = h.finish();
    EXPECT_EQ(s.instructions, 160000u);
    const TopDown td = s.topdown();
    EXPECT_GT(td.retiring, 0.95)
        << "pure ALU code with a tiny footprint should retire ~all slots";
}

TEST(Core, StreamingLoadsAreMemoryBound)
{
    VT_SITE(site, "coretest.stream", 64, 2, Block);
    CoreHarness h(baselineConfig());
    uint64_t addr = 0x200000000ull;
    for (int i = 0; i < 200000; ++i) {
        trace::block(site);
        trace::load(addr, 8);
        addr += 4096; // every load a fresh page: guaranteed misses
    }
    const CoreStats s = h.finish();
    const TopDown td = s.topdown();
    EXPECT_GT(td.backend(), 0.5)
        << "a pure pointer-chase must be backend bound";
    EXPECT_GT(td.backend_memory, td.backend_core);
    EXPECT_GT(s.l1dMpki(), 100.0);
    // The smaller window structure saturates first: with a 36-entry RS in
    // front of a 128-entry ROB, load streams stall in the RS.
    EXPECT_GT(s.slots_rob_stall + s.slots_rs_stall, 0u);
}

TEST(Core, RandomBranchesCauseBadSpeculation)
{
    VT_SITE(br, "coretest.randbr", 16, 2, Branch);
    CoreHarness h(baselineConfig());
    Rng rng(1);
    for (int i = 0; i < 100000; ++i) {
        trace::branch(br, rng.chance(0.5));
    }
    const CoreStats s = h.finish();
    const TopDown td = s.topdown();
    EXPECT_GT(td.bad_speculation, 0.3)
        << "unpredictable branches must burn slots on flushes";
    EXPECT_GT(s.branchMpki(), 50.0);
}

TEST(Core, HugeCodeFootprintIsFrontendBound)
{
    // 512 sites x ~512B padded stride: far beyond a 32K L1i.
    static std::vector<trace::CodeSite*> sites;
    if (sites.empty()) {
        for (int i = 0; i < 512; ++i) {
            sites.push_back(&trace::registry().define(
                "coretest.fe." + std::to_string(i), 64, 2,
                trace::SiteKind::Block));
        }
    }
    CoreHarness h(baselineConfig());
    for (int rep = 0; rep < 200; ++rep) {
        for (auto* s : sites) {
            trace::block(*s);
        }
    }
    const CoreStats s = h.finish();
    const TopDown td = s.topdown();
    EXPECT_GT(td.frontend, 0.2)
        << "thrashing the L1i must show up as frontend bound";
    EXPECT_GT(s.l1iMpki(), 10.0);
}

TEST(Core, SmallStoreBufferStalls)
{
    CoreParams p = baselineConfig();
    p.sb_size = 4;
    VT_SITE(site, "coretest.sbstall", 32, 1, Block);
    CoreHarness h(p);
    uint64_t addr = 0x300000000ull;
    for (int i = 0; i < 50000; ++i) {
        trace::block(site);
        trace::store(addr, 8);
        addr += 4096; // misses: slow drains back up the tiny SB
    }
    const CoreStats s = h.finish();
    EXPECT_GT(s.slots_sb_stall, 0u);
    EXPECT_GT(s.sbStallsPki(), 1.0);
}

TEST(Core, BiggerRobReducesMemoryStalls)
{
    auto run = [](const CoreParams& p) {
        VT_SITE(site, "coretest.rob", 48, 6, Block);
        CoreHarness h(p);
        uint64_t addr = 0x400000000ull;
        for (int i = 0; i < 100000; ++i) {
            trace::block(site);
            trace::load(addr, 8);
            addr += 256;
        }
        return h.finish();
    };
    const CoreStats small = run(baselineConfig());
    const CoreStats big = run(beOp2Config());
    EXPECT_LT(big.cycles, small.cycles)
        << "be_op2's larger window must absorb more memory latency";
}

TEST(Core, TopdownSumsToOne)
{
    VT_SITE(site, "coretest.sum", 48, 4, Block);
    VT_SITE(br, "coretest.sum.br", 16, 1, Branch);
    CoreHarness h(baselineConfig());
    Rng rng(9);
    uint64_t addr = 0x500000000ull;
    for (int i = 0; i < 30000; ++i) {
        trace::block(site);
        trace::load(addr, 16);
        trace::store(addr + 64, 4);
        trace::branch(br, rng.chance(0.3));
        addr += 192;
    }
    const CoreStats s = h.finish();
    const TopDown td = s.topdown();
    EXPECT_NEAR(td.retiring + td.frontend + td.bad_speculation
                    + td.backend_memory + td.backend_core,
                1.0, 1e-9);
    EXPECT_EQ(s.slots_total, s.cycles * 4);
}

TEST(Core, SecondsScaleWithFrequency)
{
    CoreStats s;
    s.cycles = 3'500'000'000ull;
    s.freq_ghz = 3.5;
    EXPECT_NEAR(s.seconds(), 1.0, 1e-9);
}

// ---- Ring buffer ----------------------------------------------------------

TEST(RingBuffer, PushPopFifoOrder)
{
    RingBuffer<int> ring(4);
    EXPECT_TRUE(ring.empty());
    ring.push_back(1);
    ring.push_back(2);
    ring.push_back(3);
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.front(), 1);
    EXPECT_EQ(ring.back(), 3);
    EXPECT_EQ(ring[1], 2);
    ring.pop_front();
    EXPECT_EQ(ring.front(), 2);
    ring.pop_front();
    ring.pop_front();
    EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, WrapsAroundTheStorageBoundary)
{
    RingBuffer<int> ring(4);
    // Advance head past the physical end several times.
    for (int i = 0; i < 100; ++i) {
        ring.push_back(i);
        ring.push_back(i + 1000);
        EXPECT_EQ(ring.front(), i);
        ring.pop_front();
        EXPECT_EQ(ring.front(), i + 1000);
        ring.pop_front();
    }
    EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, GrowsPastNominalCapacityPreservingOrder)
{
    // The MSHR list can exceed its nominal size; the ring must grow
    // transparently, like the deque it replaced.
    RingBuffer<int> ring(4);
    for (int i = 0; i < 3; ++i) {
        ring.push_back(i);
        ring.pop_front(); // Skew head so growth happens mid-wrap.
    }
    for (int i = 0; i < 50; ++i) {
        ring.push_back(i);
    }
    ASSERT_EQ(ring.size(), 50u);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(ring[static_cast<size_t>(i)], i);
    }
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(ring.front(), i);
        ring.pop_front();
    }
}

TEST(RingBuffer, MatchesDequeUnderRandomOperations)
{
    RingBuffer<uint64_t> ring(8);
    std::deque<uint64_t> reference;
    Rng rng(42);
    for (int step = 0; step < 20000; ++step) {
        if (reference.empty() || rng.chance(0.55)) {
            const uint64_t v = rng.below(1u << 30);
            ring.push_back(v);
            reference.push_back(v);
        } else {
            ASSERT_EQ(ring.front(), reference.front()) << step;
            ring.pop_front();
            reference.pop_front();
        }
        ASSERT_EQ(ring.size(), reference.size()) << step;
        if (!reference.empty()) {
            ASSERT_EQ(ring.back(), reference.back()) << step;
            const size_t mid = reference.size() / 2;
            ASSERT_EQ(ring[mid], reference[mid]) << step;
        }
    }
    ring.clear();
    EXPECT_TRUE(ring.empty());
}

// ---- Batched dispatch vs per-event (bit-identity) -------------------------

/** The satellite regression: a branch-heavy kernel (where the fused
 *  kBlockBranch record carries the direction) must produce bit-identical
 *  CoreStats through the batched pipeline at any capacity. */
TEST(CoreBatch, BranchHeavyStatsAreBitIdentical)
{
    auto run = [](uint32_t batch_capacity) {
        VT_SITE(site, "coretest.batch.blk", 48, 6, Block);
        VT_SITE(br, "coretest.batch.br", 16, 2, Branch);
        VT_SITE(loop, "coretest.batch.loop", 12, 1, Branch);
        CoreModel model(baselineConfig());
        trace::setSink(&model, batch_capacity);
        Rng rng(7);
        uint64_t addr = 0x600000000ull;
        for (int i = 0; i < 60000; ++i) {
            trace::block(site);
            trace::load(addr, 16);
            trace::branch(br, rng.chance(0.4));  // Hard to predict.
            trace::branch(loop, i % 13 != 0);    // Learnable.
            trace::store(addr + 64, 8);
            addr += 192;
        }
        trace::setSink(nullptr);
        return model.finish();
    };

    const CoreStats per_event = run(0);
    EXPECT_GT(per_event.branches, 100000u);
    EXPECT_GT(per_event.branch_mispredicts, 0u);
    // Capacity 3: constant wraparound; 256: the production default.
    for (uint32_t capacity : {3u, 64u, 256u}) {
        const CoreStats batched = run(capacity);
        EXPECT_EQ(batched.instructions, per_event.instructions);
        EXPECT_EQ(batched.cycles, per_event.cycles);
        EXPECT_EQ(batched.branches, per_event.branches);
        EXPECT_EQ(batched.branch_mispredicts,
                  per_event.branch_mispredicts);
        EXPECT_EQ(batched.l1d_accesses, per_event.l1d_accesses);
        EXPECT_EQ(batched.l1d_misses, per_event.l1d_misses);
        EXPECT_EQ(batched.l2_misses, per_event.l2_misses);
        EXPECT_EQ(batched.l3_misses, per_event.l3_misses);
        EXPECT_EQ(batched.l1i_accesses, per_event.l1i_accesses);
        EXPECT_EQ(batched.l1i_misses, per_event.l1i_misses);
        EXPECT_EQ(batched.itlb_misses, per_event.itlb_misses);
        EXPECT_EQ(batched.btb_misses, per_event.btb_misses);
        EXPECT_EQ(batched.slots_total, per_event.slots_total);
        EXPECT_EQ(batched.slots_retiring, per_event.slots_retiring);
        EXPECT_EQ(batched.slots_frontend, per_event.slots_frontend);
        EXPECT_EQ(batched.slots_bad_spec, per_event.slots_bad_spec);
        EXPECT_EQ(batched.slots_backend_memory,
                  per_event.slots_backend_memory);
        EXPECT_EQ(batched.slots_backend_core,
                  per_event.slots_backend_core);
        EXPECT_EQ(batched.slots_rob_stall, per_event.slots_rob_stall);
        EXPECT_EQ(batched.slots_rs_stall, per_event.slots_rs_stall);
        EXPECT_EQ(batched.slots_sb_stall, per_event.slots_sb_stall);
    }
}

// ---- Event-driven fast-forward vs stepped reference (bit-identity) --------

/** Everything one optimized/reference run pair must agree on. */
struct DiffRun
{
    CoreStats stats;
    std::vector<SiteUarch> sites;
    SiteUarch unattributed;
    std::vector<PhaseSample> phases;
};

/** Drives a deterministic pseudo-random probe stream — blocks of several
 *  sizes (some load-dependent), hard and learnable branches, loads over a
 *  wandering working set, stores — through one CoreModel. */
DiffRun
runProbeStream(CoreParams params, bool reference, uint32_t batch)
{
    VT_SITE(blk_a, "coretest.diff.blk_a", 96, 11, Block);
    VT_SITE(blk_b, "coretest.diff.blk_b", 40, 5, Block);
    VT_SITE(blk_c, "coretest.diff.blk_c", 200, 23, BlockLoadDep);
    VT_SITE(br_a, "coretest.diff.br_a", 16, 2, Branch);
    VT_SITE(br_b, "coretest.diff.br_b", 12, 1, BranchLoadDep);
    params.reference_stepping = reference;
    CoreModel model(params);
    trace::setSink(&model, batch);
    Rng rng(0xd1ffe4e57ull);
    uint64_t addr = 0x700000000ull;
    for (int i = 0; i < 12000; ++i) {
        switch (rng.below(6)) {
          case 0:
            trace::block(blk_a);
            break;
          case 1:
            trace::block(blk_b);
            break;
          case 2: // Feed the load-dependent block.
            trace::load(addr, static_cast<uint32_t>(8 + rng.below(64)));
            trace::block(blk_c);
            break;
          case 3:
            trace::branch(br_a, rng.chance(0.37)); // Hard to predict.
            break;
          case 4: // Load-dependent branch.
            trace::load(addr + rng.below(1u << 22), 4);
            trace::branch(br_b, rng.chance(0.61));
            break;
          default:
            trace::store(addr + rng.below(1u << 18), 16);
            break;
        }
        addr += 64 * rng.below(1024); // Wandering working set: mixed hits
                                      // and misses at every cache level.
    }
    trace::setSink(nullptr);
    DiffRun r;
    r.stats = model.finish();
    r.sites = model.attributionPerSite();
    r.unattributed = model.attributionUnattributed();
    r.phases = model.phaseSamples();
    return r;
}

void
expectSameSite(const SiteUarch& a, const SiteUarch& b,
               const std::string& what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.slots_retiring, b.slots_retiring) << what;
    EXPECT_EQ(a.slots_frontend, b.slots_frontend) << what;
    EXPECT_EQ(a.slots_bad_spec, b.slots_bad_spec) << what;
    EXPECT_EQ(a.slots_backend_memory, b.slots_backend_memory) << what;
    EXPECT_EQ(a.slots_backend_core, b.slots_backend_core) << what;
    EXPECT_EQ(a.branches, b.branches) << what;
    EXPECT_EQ(a.branch_mispredicts, b.branch_mispredicts) << what;
    EXPECT_EQ(a.l1d_accesses, b.l1d_accesses) << what;
    EXPECT_EQ(a.l1d_misses, b.l1d_misses) << what;
    EXPECT_EQ(a.l2_misses, b.l2_misses) << what;
    EXPECT_EQ(a.l3_misses, b.l3_misses) << what;
    EXPECT_EQ(a.l1i_accesses, b.l1i_accesses) << what;
    EXPECT_EQ(a.l1i_misses, b.l1i_misses) << what;
    EXPECT_EQ(a.itlb_misses, b.itlb_misses) << what;
    EXPECT_EQ(a.btb_misses, b.btb_misses) << what;
}

void
expectSameRun(const DiffRun& opt, const DiffRun& ref,
              const std::string& what)
{
    const CoreStats& a = opt.stats;
    const CoreStats& b = ref.stats;
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.branches, b.branches) << what;
    EXPECT_EQ(a.branch_mispredicts, b.branch_mispredicts) << what;
    EXPECT_EQ(a.l1d_accesses, b.l1d_accesses) << what;
    EXPECT_EQ(a.l1d_misses, b.l1d_misses) << what;
    EXPECT_EQ(a.l2_misses, b.l2_misses) << what;
    EXPECT_EQ(a.l3_misses, b.l3_misses) << what;
    EXPECT_EQ(a.l1i_accesses, b.l1i_accesses) << what;
    EXPECT_EQ(a.l1i_misses, b.l1i_misses) << what;
    EXPECT_EQ(a.itlb_misses, b.itlb_misses) << what;
    EXPECT_EQ(a.btb_misses, b.btb_misses) << what;
    EXPECT_EQ(a.slots_total, b.slots_total) << what;
    EXPECT_EQ(a.slots_retiring, b.slots_retiring) << what;
    EXPECT_EQ(a.slots_frontend, b.slots_frontend) << what;
    EXPECT_EQ(a.slots_bad_spec, b.slots_bad_spec) << what;
    EXPECT_EQ(a.slots_backend_memory, b.slots_backend_memory) << what;
    EXPECT_EQ(a.slots_backend_core, b.slots_backend_core) << what;
    EXPECT_EQ(a.slots_rob_stall, b.slots_rob_stall) << what;
    EXPECT_EQ(a.slots_rs_stall, b.slots_rs_stall) << what;
    EXPECT_EQ(a.slots_sb_stall, b.slots_sb_stall) << what;

    ASSERT_EQ(opt.sites.size(), ref.sites.size()) << what;
    for (size_t s = 0; s < opt.sites.size(); ++s) {
        expectSameSite(opt.sites[s], ref.sites[s],
                       what + " site " + std::to_string(s));
    }
    expectSameSite(opt.unattributed, ref.unattributed,
                   what + " unattributed");

    ASSERT_EQ(opt.phases.size(), ref.phases.size()) << what;
    for (size_t s = 0; s < opt.phases.size(); ++s) {
        const PhaseSample& p = opt.phases[s];
        const PhaseSample& q = ref.phases[s];
        const std::string ctx = what + " phase " + std::to_string(s);
        EXPECT_EQ(p.instructions, q.instructions) << ctx;
        EXPECT_EQ(p.cycles, q.cycles) << ctx;
        EXPECT_EQ(p.slots_retiring, q.slots_retiring) << ctx;
        EXPECT_EQ(p.slots_frontend, q.slots_frontend) << ctx;
        EXPECT_EQ(p.slots_bad_spec, q.slots_bad_spec) << ctx;
        EXPECT_EQ(p.slots_backend_memory, q.slots_backend_memory) << ctx;
        EXPECT_EQ(p.slots_backend_core, q.slots_backend_core) << ctx;
        EXPECT_EQ(p.branches, q.branches) << ctx;
        EXPECT_EQ(p.branch_mispredicts, q.branch_mispredicts) << ctx;
        EXPECT_EQ(p.l1d_misses, q.l1d_misses) << ctx;
        EXPECT_EQ(p.l2_misses, q.l2_misses) << ctx;
        EXPECT_EQ(p.l3_misses, q.l3_misses) << ctx;
        EXPECT_EQ(p.l1i_misses, q.l1i_misses) << ctx;
    }
}

/** The tentpole's differential suite: the fast-forward model must be
 *  bit-identical to the retained stepped reference across dispatch
 *  widths, every Table IV row, batched and per-event delivery, and all
 *  four instrumentation states (attribution x phase sampling — each
 *  selects a different dispatch code path). */
TEST(CoreDifferential, FastForwardMatchesReferenceStepping)
{
    std::vector<CoreParams> bases;
    for (int w : {1, 2, 4, 6}) {
        CoreParams p = baselineConfig();
        p.name = "baseline.w" + std::to_string(w);
        p.width = w;
        bases.push_back(p);
    }
    for (const char* name : {"fe_op", "be_op1", "be_op2", "bs_op"}) {
        bases.push_back(configByName(name));
    }

    int combo = 0;
    for (const CoreParams& base : bases) {
        for (uint32_t batch : {0u, 256u}) {
            // Cycle the instrumentation combos so each of the four
            // dispatch paths meets several widths and configs.
            CoreParams p = base;
            p.attribute_sites = (combo & 1) != 0;
            p.phase_window = (combo & 2) != 0 ? 4096 : 0;
            ++combo;
            const std::string what =
                p.name + " batch=" + std::to_string(batch)
                + " attr=" + std::to_string(p.attribute_sites)
                + " phase=" + std::to_string(p.phase_window);
            const DiffRun opt = runProbeStream(p, false, batch);
            const DiffRun ref = runProbeStream(p, true, batch);
            EXPECT_GT(opt.stats.instructions, 50000u) << what;
            expectSameRun(opt, ref, what);
        }
    }
}

/** Fully instrumented pairing on every width (the loop above cycles
 *  combos, so pin the heaviest one — attribution + phases — here). */
TEST(CoreDifferential, InstrumentedFastForwardMatchesOnAllWidths)
{
    for (int w : {1, 2, 4, 6}) {
        CoreParams p = baselineConfig();
        p.width = w;
        p.attribute_sites = true;
        p.phase_window = 1000; // Off-width-multiple boundaries.
        const std::string what = "instrumented w" + std::to_string(w);
        const DiffRun opt = runProbeStream(p, false, 256);
        const DiffRun ref = runProbeStream(p, true, 256);
        ASSERT_GT(opt.phases.size(), 50u) << what;
        expectSameRun(opt, ref, what);
    }
}

// ---- Resource-stall PKI rounding (regression) ------------------------------

/** Stall-slot counts that are not a multiple of the width must not be
 *  truncated to whole stall cycles: 6 slots at width 4 is 1.5 cycles,
 *  not 1 (the old integer slots/width division dropped the remainder
 *  before scaling to per-kilo). */
TEST(CoreStatsMetrics, ResourceStallPkiKeepsPartialCycles)
{
    CoreStats s;
    s.width = 4;
    s.instructions = 1000;
    s.slots_rob_stall = 6;  // 1.5 stall cycles.
    s.slots_rs_stall = 3;   // 0.75 — all remainder under integer division.
    s.slots_sb_stall = 5;   // 1.25.
    EXPECT_DOUBLE_EQ(s.robStallsPki(), 1.5);
    EXPECT_DOUBLE_EQ(s.rsStallsPki(), 0.75);
    EXPECT_DOUBLE_EQ(s.sbStallsPki(), 1.25);
    EXPECT_DOUBLE_EQ(s.anyResourceStallsPki(), 3.5);
}

// ---- Table IV configs ----------------------------------------------------

TEST(Config, TableIVRows)
{
    const auto configs = tableIVConfigs();
    ASSERT_EQ(configs.size(), 5u);
    EXPECT_EQ(configs[0].name, "baseline");

    // Sizes are scaled (DESIGN.md §5) but every Table IV relationship
    // must hold exactly.
    const CoreParams base = baselineConfig();
    const CoreParams fe = configByName("fe_op");
    EXPECT_EQ(fe.l1i.size_bytes, base.l1i.size_bytes * 2);
    EXPECT_EQ(fe.itlb_entries, base.itlb_entries * 2);
    EXPECT_EQ(fe.l1d.size_bytes, base.l1d.size_bytes);

    const CoreParams be1 = configByName("be_op1");
    EXPECT_EQ(be1.l1d.size_bytes, base.l1d.size_bytes * 2);
    EXPECT_EQ(be1.l2.size_bytes, base.l2.size_bytes * 2);
    EXPECT_EQ(be1.l3.size_bytes, base.l3.size_bytes / 2);
    EXPECT_EQ(be1.l4_size, base.l3.size_bytes * 2);

    const CoreParams be2 = configByName("be_op2");
    EXPECT_EQ(be2.rob_size, 256);
    EXPECT_EQ(be2.rs_size, 72);
    EXPECT_TRUE(be2.issue_at_dispatch);

    const CoreParams bs = configByName("bs_op");
    EXPECT_EQ(bs.predictor, "tage");

    EXPECT_DEATH(configByName("nope"), "unknown microarchitecture");
}

} // namespace
} // namespace vtrans

/**
 * @file
 * Tests of the sharded content-addressed result cache (farm/cache.h)
 * and its farm integration: hit/miss accounting, LRU/TTL/byte-budget
 * determinism, single-flight execution under contention, run-log
 * bit-identity of cache-served drains across worker counts, outcome
 * identity of cached vs uncached drains, cross-drain warm reuse over a
 * shared cache, concurrent drains + lookups (the old `results_` race),
 * and the fixed-seed Zipf request sampler the benches share.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench/benchutil.h"
#include "core/workload.h"
#include "farm/cache.h"
#include "farm/farm.h"
#include "farm/runlog.h"
#include "uarch/config.h"

namespace vtrans {
namespace {

using farm::CacheKey;
using farm::CacheOptions;
using farm::CacheStats;
using farm::ResultCache;

CacheKey
key(uint64_t n)
{
    return farm::makeCacheKey(n, 0x600dd16e57ull, "baseline");
}

/** A result whose retained footprint is `extra` bytes past the base
 *  struct, tagged with `marker` so tests can tell values apart. */
core::RunResult
payload(size_t extra, double marker)
{
    core::RunResult result;
    result.transcode_seconds = marker;
    result.output.assign(extra, uint8_t{0xAB});
    return result;
}

size_t
baseBytes()
{
    return ResultCache::entryBytes(core::RunResult{});
}

// ---- Store semantics ---------------------------------------------------

TEST(Cache, HitMissAndStatsReconcile)
{
    ResultCache cache(CacheOptions{});
    int computes = 0;
    const auto first = cache.getOrCompute(key(1), [&] {
        ++computes;
        return payload(0, 7.0);
    });
    const auto second = cache.getOrCompute(key(1), [&] {
        ++computes;
        return payload(0, 8.0);
    });
    EXPECT_EQ(computes, 1);
    EXPECT_EQ(first.get(), second.get());
    EXPECT_DOUBLE_EQ(second->transcode_seconds, 7.0);
    EXPECT_EQ(cache.peek(key(2)), nullptr);

    const CacheStats s = cache.stats();
    EXPECT_EQ(s.lookups, 3u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.lookups, s.hits + s.misses);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(s.bytes, baseBytes());
}

TEST(Cache, KeyDerivationSeparatesEveryComponent)
{
    const CacheKey base = farm::makeCacheKey(1, 2, "baseline");
    EXPECT_EQ(base, farm::makeCacheKey(1, 2, "baseline"));
    EXPECT_NE(base, farm::makeCacheKey(3, 2, "baseline"));
    EXPECT_NE(base, farm::makeCacheKey(1, 4, "baseline"));
    EXPECT_NE(base, farm::makeCacheKey(1, 2, "be_op1"));
}

TEST(Cache, LruEvictionIsDeterministic)
{
    CacheOptions opts;
    opts.shards = 1;
    opts.max_entries = 3;
    opts.max_bytes = size_t{1} << 30;
    ResultCache cache(opts);
    ASSERT_EQ(cache.shardCount(), 1u);

    for (uint64_t k = 1; k <= 3; ++k) {
        cache.getOrCompute(key(k), [&] { return payload(0, double(k)); });
    }
    // Touch key 1 so key 2 becomes the LRU tail, then overflow.
    ASSERT_NE(cache.peek(key(1)), nullptr);
    cache.getOrCompute(key(4), [] { return payload(0, 4.0); });

    EXPECT_TRUE(cache.contains(key(1)));
    EXPECT_FALSE(cache.contains(key(2)));
    EXPECT_TRUE(cache.contains(key(3)));
    EXPECT_TRUE(cache.contains(key(4)));

    const CacheStats s = cache.stats();
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.entries, 3u);
    EXPECT_EQ(s.lookups, s.hits + s.misses);
}

TEST(Cache, TtlExpiresOnTheLogicalClock)
{
    CacheOptions opts;
    opts.shards = 1;
    opts.ttl_seconds = 10.0;
    ResultCache cache(opts);

    int computes = 0;
    const auto compute = [&] {
        ++computes;
        return payload(0, 1.0);
    };
    cache.getOrCompute(key(1), compute);

    cache.advance(5.0); // Age 5 < TTL: still warm.
    EXPECT_TRUE(cache.contains(key(1)));
    EXPECT_NE(cache.peek(key(1)), nullptr);
    EXPECT_EQ(computes, 1);

    cache.advance(5.0); // Age 10 >= TTL: expired.
    EXPECT_FALSE(cache.contains(key(1)));
    cache.getOrCompute(key(1), compute);
    EXPECT_EQ(computes, 2);
    EXPECT_EQ(cache.stats().expirations, 1u);
    EXPECT_EQ(cache.stats().lookups,
              cache.stats().hits + cache.stats().misses);
}

TEST(Cache, ByteBudgetIsEnforcedAndOversizedValuesAreRejected)
{
    const size_t unit = baseBytes() + 1000;
    CacheOptions opts;
    opts.shards = 1;
    opts.max_entries = 100;
    opts.max_bytes = 3 * unit + 500;
    ResultCache cache(opts);

    for (uint64_t k = 1; k <= 3; ++k) {
        cache.getOrCompute(key(k), [&] { return payload(1000, double(k)); });
    }
    EXPECT_EQ(cache.stats().bytes, 3 * unit);
    EXPECT_EQ(cache.stats().entries, 3u);

    // A fourth entry overflows the byte budget: the LRU tail (key 1,
    // never touched) is evicted and accounting lands back in budget.
    cache.getOrCompute(key(4), [] { return payload(1000, 4.0); });
    EXPECT_EQ(cache.stats().bytes, 3 * unit);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_FALSE(cache.contains(key(1)));
    EXPECT_TRUE(cache.contains(key(4)));

    // A value bigger than the whole shard budget is served to the
    // caller but not retained, and does not disturb resident entries.
    const auto big =
        cache.getOrCompute(key(9), [&] { return payload(opts.max_bytes, 9.0); });
    ASSERT_NE(big, nullptr);
    EXPECT_DOUBLE_EQ(big->transcode_seconds, 9.0);
    EXPECT_EQ(cache.stats().rejected, 1u);
    EXPECT_EQ(cache.stats().entries, 3u);
    EXPECT_EQ(cache.stats().bytes, 3 * unit);
    EXPECT_FALSE(cache.contains(key(9)));
    EXPECT_LE(cache.stats().bytes, opts.max_bytes);
}

TEST(Cache, SingleFlightComputesExactlyOnceUnderContention)
{
    constexpr int kThreads = 8;
    ResultCache cache(CacheOptions{});
    std::atomic<int> computes{0};
    std::atomic<int> arrived{0};

    std::vector<std::thread> threads;
    std::vector<double> seen(kThreads, 0.0);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            arrived.fetch_add(1);
            const auto value = cache.getOrCompute(key(1), [&] {
                computes.fetch_add(1);
                // Hold the flight until every thread has at least
                // entered getOrCompute, then linger so they all reach
                // the in-flight wait.
                while (arrived.load() < kThreads) {
                    std::this_thread::yield();
                }
                std::this_thread::sleep_for(std::chrono::milliseconds(50));
                return payload(0, 42.0);
            });
            seen[t] = value->transcode_seconds;
        });
    }
    for (auto& th : threads) {
        th.join();
    }

    EXPECT_EQ(computes.load(), 1);
    for (double v : seen) {
        EXPECT_DOUBLE_EQ(v, 42.0);
    }
    const CacheStats s = cache.stats();
    EXPECT_EQ(s.lookups, uint64_t{kThreads});
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, uint64_t{kThreads - 1});
    EXPECT_EQ(s.inflight_waits, uint64_t{kThreads - 1});
}

TEST(Cache, AbortedComputeHandsTheFlightToAWaiter)
{
    ResultCache cache(CacheOptions{});
    std::atomic<bool> computing{false};
    std::atomic<bool> waiter_arrived{false};
    std::atomic<int> good_computes{0};
    bool threw = false;

    std::thread first([&] {
        try {
            cache.getOrCompute(key(1), [&]() -> core::RunResult {
                computing.store(true);
                while (!waiter_arrived.load()) {
                    std::this_thread::yield();
                }
                std::this_thread::sleep_for(std::chrono::milliseconds(20));
                throw std::runtime_error("encode exploded");
            });
        } catch (const std::runtime_error&) {
            threw = true;
        }
    });
    while (!computing.load()) {
        std::this_thread::yield();
    }
    std::thread second([&] {
        waiter_arrived.store(true);
        const auto value = cache.getOrCompute(key(1), [&] {
            good_computes.fetch_add(1);
            return payload(0, 5.0);
        });
        EXPECT_DOUBLE_EQ(value->transcode_seconds, 5.0);
    });
    first.join();
    second.join();

    EXPECT_TRUE(threw);
    EXPECT_EQ(good_computes.load(), 1);
    EXPECT_TRUE(cache.contains(key(1)));
    const CacheStats s = cache.stats();
    EXPECT_EQ(s.lookups, s.hits + s.misses);
}

TEST(Cache, ConcurrentStressStaysWithinBudgetAndReconciles)
{
    CacheOptions opts;
    opts.shards = 4;
    opts.max_entries = 16;
    opts.max_bytes = 16 * (baseBytes() + 64);
    ResultCache cache(opts);

    constexpr int kThreads = 8;
    constexpr int kOps = 400;
    constexpr uint64_t kKeys = 32;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            uint64_t state = 0x9e3779b97f4a7c15ull * uint64_t(t + 1);
            for (int i = 0; i < kOps; ++i) {
                state = state * 6364136223846793005ull + 1442695040888963407ull;
                const uint64_t k = (state >> 33) % kKeys;
                switch ((state >> 13) % 3) {
                case 0:
                    cache.getOrCompute(key(k), [&] {
                        return payload((state >> 5) % 128, double(k));
                    });
                    break;
                case 1:
                    cache.peek(key(k));
                    break;
                default:
                    cache.contains(key(k));
                    break;
                }
            }
        });
    }
    for (auto& th : threads) {
        th.join();
    }

    const CacheStats s = cache.stats();
    EXPECT_EQ(s.lookups, s.hits + s.misses);
    EXPECT_LE(s.bytes, opts.max_bytes);
    EXPECT_LE(s.entries, opts.max_entries);
    EXPECT_GT(s.hits, 0u);
}

// ---- Farm integration --------------------------------------------------

constexpr double kClipSeconds = 0.3; // 9 frames of "cat" at 29 fps.

/** A small all-baseline farm with the result cache serving hits. */
farm::FarmOptions
cachedFarm(int workers, bool serve_hits, bool plan_cold = true)
{
    farm::FarmOptions options;
    options.pool = {uarch::baselineConfig()};
    options.replicas = 2;
    options.workers = workers;
    options.clip_seconds = kClipSeconds;
    options.reference_video = "cat";
    options.cache_serve_hits = serve_hits;
    options.cache_plan_cold = plan_cold;
    return options;
}

/** `jobs` requests cycling over `distinct` crf values of one clip. */
std::vector<farm::JobRequest>
repeatedStream(int jobs, int distinct)
{
    std::vector<farm::JobRequest> requests;
    for (int i = 0; i < jobs; ++i) {
        farm::JobRequest req;
        req.task = {"cat", 30 + i % distinct, 1, "ultrafast"};
        req.submit_time = 1e-3 * i;
        requests.push_back(req);
    }
    return requests;
}

std::string
drainJsonl(farm::Farm& farm, const std::vector<farm::JobRequest>& stream)
{
    for (const auto& req : stream) {
        farm.submit(req);
    }
    return farm.drain().toJsonl();
}

TEST(CacheFarm, RunLogIdenticalAcrossWorkerCounts)
{
    const auto stream = repeatedStream(12, 3);
    std::string reference;
    for (const int workers : {1, 4}) {
        farm::Farm farm(cachedFarm(workers, /*serve_hits=*/true));
        const std::string jsonl = drainJsonl(farm, stream);
        if (reference.empty()) {
            reference = jsonl;
            // The stream repeats each distinct task, so the schedule
            // must actually exercise the cache-served paths.
            EXPECT_NE(jsonl.find("\"cache_hit\":true"), std::string::npos);
        } else {
            EXPECT_EQ(jsonl, reference)
                << "cache-served run log diverged at " << workers
                << " workers";
        }
    }
}

TEST(CacheFarm, OutcomeIdenticalCachedVsUncached)
{
    const auto stream = repeatedStream(10, 2);
    farm::Farm uncached(cachedFarm(2, /*serve_hits=*/false));
    farm::Farm cached(cachedFarm(2, /*serve_hits=*/true));
    for (const auto& req : stream) {
        uncached.submit(req);
        cached.submit(req);
    }
    const farm::RunLog& base = uncached.drain();
    const farm::RunLog& serv = cached.drain();

    std::map<uint64_t, const farm::JobRecord*> by_id;
    for (const auto& rec : base.records()) {
        by_id[rec.id] = &rec;
    }
    ASSERT_EQ(serv.records().size(), base.records().size());
    bool any_hit = false;
    for (const auto& rec : serv.records()) {
        ASSERT_TRUE(by_id.count(rec.id));
        const farm::JobRecord& ref = *by_id.at(rec.id);
        EXPECT_EQ(rec.state, ref.state);
        EXPECT_EQ(rec.kind, ref.kind);
        EXPECT_EQ(rec.attempts, ref.attempts);
        EXPECT_DOUBLE_EQ(rec.psnr, ref.psnr);
        EXPECT_DOUBLE_EQ(rec.bitrate_kbps, ref.bitrate_kbps);
        EXPECT_EQ(rec.result_fingerprint, ref.result_fingerprint);
        EXPECT_FALSE(ref.cache_hit);
        any_hit = any_hit || rec.cache_hit;
    }
    EXPECT_TRUE(any_hit);
}

TEST(CacheFarm, DrainStatsReconcileAndMetricsAreEmitted)
{
    farm::Farm farm(cachedFarm(2, /*serve_hits=*/true));
    const std::string jsonl = drainJsonl(farm, repeatedStream(12, 3));
    EXPECT_NE(jsonl.find("\"cache_hit\":"), std::string::npos);

    const farm::CacheStats s = farm.cacheDrainStats();
    EXPECT_GT(s.lookups, 0u);
    EXPECT_EQ(s.lookups, s.hits + s.misses);
    EXPECT_GT(s.entries, 0u);
    EXPECT_LE(s.bytes, farm.cache().options().max_bytes);

    int hits = 0;
    for (const auto& rec : farm.log().records()) {
        hits += rec.cache_hit ? 1 : 0;
    }
    EXPECT_GT(hits, 0);
}

TEST(CacheFarm, SharedCacheServesWarmResultsAcrossDrains)
{
    auto shared = std::make_shared<ResultCache>(CacheOptions{});
    const auto stream = repeatedStream(8, 2);

    farm::FarmOptions first = cachedFarm(2, /*serve_hits=*/false);
    first.shared_cache = shared;
    farm::Farm warmup(first);
    drainJsonl(warmup, stream);
    EXPECT_GT(warmup.cacheDrainStats().misses, 0u);

    // Second drain over the same content: every digest is warm, so the
    // farm computes nothing and every job is served as a hit.
    farm::FarmOptions second = cachedFarm(2, /*serve_hits=*/true,
                                          /*plan_cold=*/false);
    second.shared_cache = shared;
    farm::Farm reuse(second);
    drainJsonl(reuse, stream);

    const farm::CacheStats s = reuse.cacheDrainStats();
    EXPECT_EQ(s.misses, 0u);
    EXPECT_GT(s.hits, 0u);
    for (const auto& rec : reuse.log().records()) {
        EXPECT_EQ(rec.state, farm::JobState::Done);
        EXPECT_TRUE(rec.cache_hit) << "job " << rec.id;
    }
}

TEST(CacheFarm, ConcurrentDrainsOnASharedCacheMatchSerialLogs)
{
    const auto stream = repeatedStream(10, 2);

    // Reference: a serial drain with a private cache. `plan_cold` keeps
    // the schedule independent of what a sibling farm publishes, so the
    // concurrent drains below must reproduce this log exactly.
    farm::Farm reference(cachedFarm(2, /*serve_hits=*/true));
    const std::string expected = drainJsonl(reference, stream);

    auto shared = std::make_shared<ResultCache>(CacheOptions{});
    farm::FarmOptions opts = cachedFarm(2, /*serve_hits=*/true);
    opts.shared_cache = shared;
    farm::Farm a(opts);
    farm::Farm b(opts);
    for (const auto& req : stream) {
        a.submit(req);
        b.submit(req);
    }

    // Hammer lookups from outside while both farms drain — the
    // regression for the old unsynchronized `results_` map reads.
    std::atomic<bool> stop{false};
    std::thread reader([&] {
        uint64_t n = 0;
        while (!stop.load()) {
            shared->contains(key(n % 64));
            shared->peek(key((n * 7) % 64));
            ++n;
        }
    });
    std::string log_a;
    std::string log_b;
    std::thread ta([&] { log_a = a.drain().toJsonl(); });
    std::thread tb([&] { log_b = b.drain().toJsonl(); });
    ta.join();
    tb.join();
    stop.store(true);
    reader.join();

    EXPECT_EQ(log_a, expected);
    EXPECT_EQ(log_b, expected);
    const CacheStats s = shared->stats();
    EXPECT_EQ(s.lookups, s.hits + s.misses);
}

// ---- Zipf sampler ------------------------------------------------------

TEST(Zipf, DistributionMatchesTheExactProbabilities)
{
    constexpr size_t kItems = 16;
    constexpr int kDraws = 40000;
    bench::ZipfSampler zipf(kItems, 1.1, 42);

    double total = 0.0;
    for (size_t r = 0; r < kItems; ++r) {
        total += zipf.probability(r);
        if (r > 0) {
            EXPECT_LT(zipf.probability(r), zipf.probability(r - 1));
        }
    }
    EXPECT_NEAR(total, 1.0, 1e-12);

    std::vector<int> counts(kItems, 0);
    for (int i = 0; i < kDraws; ++i) {
        const size_t rank = zipf.next();
        ASSERT_LT(rank, kItems);
        ++counts[rank];
    }
    for (const size_t r : {size_t{0}, size_t{1}, size_t{7}}) {
        const double freq = double(counts[r]) / kDraws;
        EXPECT_NEAR(freq, zipf.probability(r), 0.02)
            << "rank " << r << " frequency off";
    }
    EXPECT_GT(counts[0], counts[kItems - 1]);
}

TEST(Zipf, FixedSeedIsDeterministicAndSeedsDiffer)
{
    bench::ZipfSampler a(32, 1.0, 7);
    bench::ZipfSampler b(32, 1.0, 7);
    bench::ZipfSampler c(32, 1.0, 8);
    bool any_diff = false;
    for (int i = 0; i < 200; ++i) {
        const size_t ra = a.next();
        EXPECT_EQ(ra, b.next());
        any_diff = any_diff || ra != c.next();
    }
    EXPECT_TRUE(any_diff);
}

TEST(Zipf, ArrivalGapsAverageTheRequestedRate)
{
    bench::ZipfSampler zipf(4, 1.0, 11);
    constexpr double kRate = 250.0;
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double gap = zipf.nextArrivalGap(kRate);
        ASSERT_GE(gap, 0.0);
        sum += gap;
    }
    EXPECT_NEAR(sum / 20000.0, 1.0 / kRate, 0.1 / kRate);
}

} // namespace
} // namespace vtrans

/**
 * @file
 * Odds and ends: scheduler calibration, generator scene-cut bookkeeping,
 * table/heatmap guard rails, and status helpers.
 */

#include <gtest/gtest.h>

#include "common/heatmap.h"
#include "common/status.h"
#include "common/table.h"
#include "sched/scheduler.h"
#include "video/generate.h"
#include "video/vbench.h"

namespace vtrans {
namespace {

TEST(SchedCalibration, ReliefScalesWithMeasuredGain)
{
    uarch::TopDown profile;
    profile.frontend = 0.2;
    profile.bad_speculation = 0.1;
    profile.backend_memory = 0.3;
    profile.backend_core = 0.05;

    // fe_op removed half its target category; bs_op removed none.
    const auto relief = sched::calibrateRelief(
        profile, 10.0, {"fe_op", "bs_op"}, {9.0, 10.5});
    ASSERT_EQ(relief.size(), 2u);
    EXPECT_NEAR(relief[0], 0.1 / 0.2, 1e-9);
    EXPECT_DOUBLE_EQ(relief[1], 0.0) << "slower than baseline: no gain";
}

TEST(Generator, SceneCutFlagAndDeterminism)
{
    video::VideoSpec spec = video::findVideo("hall"); // high entropy
    spec.seconds = 2.0;
    video::Generator gen(spec);
    video::Frame frame(spec.width, spec.height);
    int cuts = 0;
    for (int i = 0; i < spec.frames(); ++i) {
        gen.renderNext(frame);
        cuts += gen.lastFrameWasSceneCut() ? 1 : 0;
    }
    // hall has entropy 7.7: expect roughly entropy * (2s / 5s) cuts.
    EXPECT_GE(cuts, 1);
    EXPECT_LE(cuts, 10);
    EXPECT_EQ(gen.framesRendered(), spec.frames());

    // The first frame is never a cut.
    video::Generator gen2(spec);
    gen2.renderNext(frame);
    EXPECT_FALSE(gen2.lastFrameWasSceneCut());
}

TEST(Generator, LowEntropyRarelyCuts)
{
    video::VideoSpec spec = video::findVideo("desktop"); // entropy 0.2
    spec.seconds = 2.0;
    video::Generator gen(spec);
    video::Frame frame(spec.width, spec.height);
    int cuts = 0;
    for (int i = 0; i < spec.frames(); ++i) {
        gen.renderNext(frame);
        cuts += gen.lastFrameWasSceneCut() ? 1 : 0;
    }
    EXPECT_LE(cuts, 1);
}

TEST(Table, OverflowingRowDies)
{
    Table t({"only"});
    t.beginRow();
    t.cell(std::string("a"));
    EXPECT_DEATH(t.cell(std::string("b")), "row wider than header");
}

TEST(Table, CellBeforeRowDies)
{
    Table t({"c"});
    EXPECT_DEATH(t.cell(std::string("x")), "beginRow");
}

TEST(Heatmap, SingleCellAndFlatField)
{
    Heatmap hm("one", {"r"}, {"c"});
    hm.set(0, 0, 42.0);
    EXPECT_EQ(hm.minValue(), 42.0);
    EXPECT_EQ(hm.maxValue(), 42.0);
    // A flat field must render without dividing by zero.
    const std::string out = hm.render();
    EXPECT_NE(out.find("one"), std::string::npos);
}

TEST(Heatmap, OutOfRangeDies)
{
    Heatmap hm("b", {"r"}, {"c"});
    EXPECT_DEATH(hm.set(1, 0, 0.0), "out of range");
}

TEST(Status, VerboseToggle)
{
    setVerbose(false);
    EXPECT_FALSE(verbose());
    setVerbose(true);
    EXPECT_TRUE(verbose());
}

TEST(Vbench, BigBuckBunnyIsFindable)
{
    const auto& bbb = video::bigBuckBunny();
    EXPECT_EQ(bbb.name, "bbb");
    EXPECT_EQ(video::findVideo("bbb").resolution_class, "1080p");
    EXPECT_DEATH(video::findVideo("nonexistent"), "unknown video");
}

} // namespace
} // namespace vtrans

/**
 * @file
 * Tests of frames, the vbench corpus table, the synthetic generator's
 * entropy-driven content model, and quality metrics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "video/frame.h"
#include "video/generate.h"
#include "video/quality.h"
#include "video/vbench.h"

namespace vtrans {
namespace {

using video::Frame;
using video::Plane;
using video::VideoSpec;

TEST(Frame, GeometryAndPlanes)
{
    Frame f(64, 48);
    EXPECT_EQ(f.width(), 64);
    EXPECT_EQ(f.height(), 48);
    EXPECT_EQ(f.chromaWidth(), 32);
    EXPECT_EQ(f.chromaHeight(), 24);
    EXPECT_EQ(f.stride(Plane::Y), 64);
    EXPECT_EQ(f.stride(Plane::Cb), 32);
    EXPECT_EQ(f.byteSize(), 64u * 48 + 2u * 32 * 24);
}

TEST(Frame, PixelAccessRoundtrip)
{
    Frame f(32, 32);
    f.at(Plane::Y, 5, 7) = 200;
    f.at(Plane::Cb, 3, 2) = 64;
    EXPECT_EQ(f.at(Plane::Y, 5, 7), 200);
    EXPECT_EQ(f.at(Plane::Cb, 3, 2), 64);
}

TEST(Frame, SimAddressesAreRowLinear)
{
    Frame f(32, 32);
    EXPECT_EQ(f.simAddr(Plane::Y, 1, 0), f.simAddr(Plane::Y, 0, 0) + 1);
    EXPECT_EQ(f.simAddr(Plane::Y, 0, 1), f.simAddr(Plane::Y, 0, 0) + 32);
    // Planes must not overlap.
    EXPECT_GE(f.simAddr(Plane::Cb, 0, 0),
              f.simAddr(Plane::Y, 0, 0) + 32 * 32);
}

TEST(Frame, FillAndCopy)
{
    Frame a(32, 32);
    a.fill(10, 20, 30);
    Frame b(32, 32);
    b.copyFrom(a);
    EXPECT_EQ(b.at(Plane::Y, 31, 31), 10);
    EXPECT_EQ(b.at(Plane::Cb, 15, 15), 20);
    EXPECT_EQ(b.at(Plane::Cr, 0, 0), 30);
}

TEST(Vbench, TableIContents)
{
    const auto& corpus = video::vbenchCorpus();
    ASSERT_EQ(corpus.size(), 15u) << "Table I lists 15 vbench videos";

    // Spot-check Table I rows.
    const auto& desktop = video::findVideo("desktop");
    EXPECT_EQ(desktop.resolution_class, "720p");
    EXPECT_EQ(desktop.fps, 30);
    EXPECT_DOUBLE_EQ(desktop.entropy, 0.2);

    const auto& hall = video::findVideo("hall");
    EXPECT_EQ(hall.resolution_class, "1080p");
    EXPECT_DOUBLE_EQ(hall.entropy, 7.7);

    const auto& chicken = video::findVideo("chicken");
    EXPECT_EQ(chicken.resolution_class, "2160p");

    const auto& game3 = video::findVideo("game3");
    EXPECT_EQ(game3.fps, 59);

    for (const auto& spec : corpus) {
        EXPECT_EQ(spec.width % 16, 0) << spec.name;
        EXPECT_EQ(spec.height % 16, 0) << spec.name;
        EXPECT_NEAR(spec.seconds, 5.0, 1e-9) << "vbench clips are 5 s";
        EXPECT_GT(spec.frames(), 0);
    }
}

TEST(Vbench, ResolutionClassOrderingPreserved)
{
    const auto [w480, h480] = video::scaledResolution("480p");
    const auto [w720, h720] = video::scaledResolution("720p");
    const auto [w1080, h1080] = video::scaledResolution("1080p");
    const auto [w2160, h2160] = video::scaledResolution("2160p");
    EXPECT_LT(w480 * h480, w720 * h720);
    EXPECT_LT(w720 * h720, w1080 * h1080);
    EXPECT_LT(w1080 * h1080, w2160 * h2160);
    // 2160p has ~4x the pixels of 1080p, as in the paper.
    EXPECT_NEAR(static_cast<double>(w2160 * h2160) / (w1080 * h1080), 4.0,
                0.8);
}

TEST(Generate, DeterministicFromSeed)
{
    const auto& spec = video::findVideo("cricket");
    VideoSpec small = spec;
    small.seconds = 0.2;
    const auto a = video::generateVideo(small);
    const auto b = video::generateVideo(small);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(video::planeMse(a[i], b[i], Plane::Y), 0.0)
            << "frame " << i;
    }
}

TEST(Generate, EntropyIncreasesTemporalDifference)
{
    // Higher-entropy specs must exhibit more frame-to-frame change (the
    // motion/scene-cut axis vbench's entropy captures).
    auto temporalDiff = [](double entropy) {
        VideoSpec spec;
        spec.name = "t";
        spec.width = 80;
        spec.height = 48;
        spec.fps = 30;
        spec.seconds = 1.0;
        spec.entropy = entropy;
        spec.seed = 555;
        const auto frames = video::generateVideo(spec);
        double diff = 0.0;
        for (size_t i = 1; i < frames.size(); ++i) {
            diff += video::planeMse(frames[i], frames[i - 1], Plane::Y);
        }
        return diff / (frames.size() - 1);
    };
    const double low = temporalDiff(0.2);
    const double mid = temporalDiff(3.5);
    const double high = temporalDiff(7.7);
    EXPECT_LT(low, mid);
    EXPECT_LT(mid, high);
}

TEST(Generate, EntropyIncreasesSpatialComplexity)
{
    auto spatial = [](double entropy) {
        VideoSpec spec;
        spec.name = "s";
        spec.width = 80;
        spec.height = 48;
        spec.fps = 30;
        spec.seconds = 0.1;
        spec.entropy = entropy;
        spec.seed = 777;
        const auto frames = video::generateVideo(spec);
        return video::spatialComplexity(frames[0]);
    };
    EXPECT_LT(spatial(0.2), spatial(7.7));
}

TEST(Quality, PsnrIdenticalFramesIsCapped)
{
    Frame a(32, 32);
    a.fill(128, 128, 128);
    Frame b(32, 32);
    b.copyFrom(a);
    EXPECT_DOUBLE_EQ(video::framePsnr(a, b), 99.0);
}

TEST(Quality, PsnrKnownValue)
{
    Frame a(32, 32);
    Frame b(32, 32);
    a.fill(100, 128, 128);
    b.fill(110, 128, 128); // luma MSE = 100, chroma 0
    const double weighted_mse = (4.0 * 100.0 + 0.0 + 0.0) / 6.0;
    const double expected = 10.0 * std::log10(255.0 * 255.0 / weighted_mse);
    EXPECT_NEAR(video::framePsnr(a, b), expected, 1e-9);
}

TEST(Quality, PsnrDecreasesWithError)
{
    Frame a(32, 32);
    a.fill(100, 128, 128);
    Frame b(32, 32);
    b.fill(105, 128, 128);
    Frame c(32, 32);
    c.fill(130, 128, 128);
    EXPECT_GT(video::framePsnr(a, b), video::framePsnr(a, c));
}

} // namespace
} // namespace vtrans

/**
 * @file
 * Tests of the scheduler study machinery: Table III task definitions, the
 * exhaustive assignment solver, fit-score prediction, and the evaluation
 * of the three scheduling policies.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

#include "sched/scheduler.h"
#include "uarch/config.h"

namespace vtrans {
namespace {

using sched::Assignment;
using sched::Task;

TEST(Sched, TableIIITasks)
{
    const auto tasks = sched::tableIIITasks();
    ASSERT_EQ(tasks.size(), 4u);
    EXPECT_EQ(tasks[0].video, "desktop");
    EXPECT_EQ(tasks[0].crf, 30);
    EXPECT_EQ(tasks[0].refs, 8);
    EXPECT_EQ(tasks[0].preset, "veryfast");
    EXPECT_EQ(tasks[1].video, "holi");
    EXPECT_EQ(tasks[1].preset, "slow");
    EXPECT_EQ(tasks[2].video, "presentation");
    EXPECT_EQ(tasks[2].crf, 35);
    EXPECT_EQ(tasks[3].video, "game2");
    EXPECT_EQ(tasks[3].refs, 2);

    const auto params = tasks[0].params();
    EXPECT_EQ(params.crf, 30);
    EXPECT_EQ(params.refs, 8);
    EXPECT_EQ(params.subme, 2); // veryfast
}

TEST(Sched, AssignmentSolverFindsOptimum)
{
    // Max-sum assignment with a known unique optimum: the anti-diagonal.
    std::vector<std::vector<double>> scores = {
        {1, 2, 10},
        {1, 10, 2},
        {10, 2, 1},
    };
    const Assignment a = sched::solveAssignment(scores);
    ASSERT_EQ(a.size(), 3u);
    EXPECT_EQ(a[0], 2);
    EXPECT_EQ(a[1], 1);
    EXPECT_EQ(a[2], 0);
}

TEST(Sched, AssignmentSolverRespectsOneToOne)
{
    // All tasks prefer server 0; only one can have it.
    std::vector<std::vector<double>> scores = {
        {10, 1, 0},
        {10, 2, 0},
        {10, 0, 3},
    };
    const Assignment a = sched::solveAssignment(scores);
    std::set<int> used(a.begin(), a.end());
    EXPECT_EQ(used.size(), a.size()) << "servers must not be shared";
    // Best total is 10 + 2 + 3 = 15 with a = (0, 1, 2); every other
    // permutation scores lower.
    EXPECT_EQ(a[0], 0);
    EXPECT_EQ(a[1], 1);
    EXPECT_EQ(a[2], 2);
}

TEST(Sched, FitScoresMatchBottleneckCategories)
{
    uarch::TopDown fe_heavy;
    fe_heavy.frontend = 0.4;
    fe_heavy.backend_memory = 0.1;
    fe_heavy.bad_speculation = 0.05;
    fe_heavy.backend_core = 0.05;
    EXPECT_GT(sched::fitScore(fe_heavy, "fe_op"),
              sched::fitScore(fe_heavy, "bs_op"));

    uarch::TopDown bs_heavy;
    bs_heavy.bad_speculation = 0.3;
    bs_heavy.frontend = 0.05;
    EXPECT_GT(sched::fitScore(bs_heavy, "bs_op"),
              sched::fitScore(bs_heavy, "fe_op"));

    EXPECT_DEATH(sched::fitScore(fe_heavy, "baseline"), "no fit model");
}

TEST(Sched, EvaluateSchedulersEndToEnd)
{
    const std::vector<Task> tasks = {
        {"a", 20, 1, "medium"},
        {"b", 30, 2, "medium"},
    };
    const std::vector<std::string> configs = {"fe_op", "bs_op"};
    const std::vector<double> baseline = {10.0, 10.0};
    // Task 0 runs much faster on fe_op; task 1 on bs_op.
    const std::vector<std::vector<double>> seconds = {
        {8.0, 9.9},
        {9.9, 8.0},
    };
    uarch::TopDown td0;
    td0.frontend = 0.5;
    td0.retiring = 0.5;
    uarch::TopDown td1;
    td1.bad_speculation = 0.5;
    td1.retiring = 0.5;

    const auto result = sched::evaluateSchedulers(tasks, configs, baseline,
                                                  seconds, {td0, td1});
    ASSERT_EQ(result.smart.size(), 2u);
    EXPECT_EQ(result.smart[0], 0) << "fe-heavy task goes to fe_op";
    EXPECT_EQ(result.smart[1], 1) << "bs-heavy task goes to bs_op";
    EXPECT_EQ(result.best[0], 0);
    EXPECT_EQ(result.best[1], 1);
    EXPECT_EQ(result.smartMatchesBest(), 2);

    EXPECT_NEAR(result.smartSpeedup(), 10.0 / 8.0, 1e-9);
    EXPECT_NEAR(result.bestSpeedup(), 10.0 / 8.0, 1e-9);
    // Random averages the two servers per task.
    EXPECT_NEAR(result.randomSpeedup(), 10.0 / 8.95, 1e-9);
    EXPECT_GT(result.smartSpeedup(), result.randomSpeedup());
}

TEST(Sched, SmartCanMissBestUnderConstraint)
{
    // Both tasks' profiles prefer the same server; one-to-one forces one
    // of them elsewhere, so smart matches best only once.
    const std::vector<Task> tasks = {
        {"a", 20, 1, "medium"},
        {"b", 30, 2, "medium"},
    };
    const std::vector<std::string> configs = {"be_op1", "fe_op"};
    const std::vector<double> baseline = {10.0, 10.0};
    const std::vector<std::vector<double>> seconds = {
        {7.0, 9.5},
        {7.5, 9.5},
    };
    uarch::TopDown heavy_mem0;
    heavy_mem0.backend_memory = 0.5;
    uarch::TopDown heavy_mem1;
    heavy_mem1.backend_memory = 0.4;

    const auto result = sched::evaluateSchedulers(
        tasks, configs, baseline, seconds, {heavy_mem0, heavy_mem1});
    EXPECT_EQ(result.best[0], 0);
    EXPECT_EQ(result.best[1], 0);
    EXPECT_EQ(result.smartMatchesBest(), 1);
    EXPECT_LE(result.smartSpeedup(), result.bestSpeedup());
}

TEST(Sched, HungarianMatchesExhaustiveOnRandomProblems)
{
    Rng rng(2024);
    for (int trial = 0; trial < 200; ++trial) {
        const int tasks = 2 + static_cast<int>(rng.below(5));
        const int servers = tasks + static_cast<int>(rng.below(3));
        std::vector<std::vector<double>> scores(tasks);
        for (auto& row : scores) {
            for (int s = 0; s < servers; ++s) {
                // Integer scores dodge FP tie ambiguity between solvers.
                row.push_back(static_cast<double>(rng.below(1000)));
            }
        }
        const Assignment exact = sched::solveAssignment(scores);
        const Assignment hungarian =
            sched::solveAssignmentHungarian(scores);

        auto total = [&](const Assignment& a) {
            double sum = 0.0;
            for (int t = 0; t < tasks; ++t) {
                sum += scores[t][a[t]];
            }
            return sum;
        };
        EXPECT_DOUBLE_EQ(total(hungarian), total(exact))
            << "trial " << trial;
        std::set<int> used(hungarian.begin(), hungarian.end());
        EXPECT_EQ(used.size(), hungarian.size());
    }
}

TEST(Sched, HungarianScalesToLargerPools)
{
    Rng rng(7);
    const int n = 40;
    std::vector<std::vector<double>> scores(n);
    for (auto& row : scores) {
        for (int s = 0; s < n; ++s) {
            row.push_back(rng.uniform());
        }
    }
    const Assignment a = sched::solveAssignmentHungarian(scores);
    std::set<int> used(a.begin(), a.end());
    EXPECT_EQ(used.size(), a.size());
}

} // namespace
} // namespace vtrans
